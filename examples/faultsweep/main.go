// Faultsweep demonstrates the fault-injection subsystem: the CryoSP +
// CryoBus design is simulated healthy and then with rising H-tree
// segment failure rates. Dead segments detour over neighboring tile
// wires, so the broadcast degrades from 1 cycle to a multi-cycle span
// instead of hanging — the graceful-degradation contract.
//
//	go run ./examples/faultsweep
package main

import (
	"fmt"
	"os"

	"cryowire"
)

func main() {
	w, err := cryowire.WorkloadByName("ferret")
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultsweep:", err)
		os.Exit(1)
	}
	cryoSP := cryowire.EvaluationDesigns()[4] // CryoSP (77K, CryoBus)
	base := cryowire.SimConfig{WarmupCycles: 2000, MeasureCycles: 8000, Seed: 1}

	fmt.Println("CryoSP (77K, CryoBus) under H-tree segment failures")
	fmt.Printf("%-10s %-8s %-10s %-14s %-12s %-12s\n",
		"fail rate", "IPC", "rel. IPC", "broadcast cyc", "noc latency", "retransmits")
	var healthy float64
	for _, rate := range []float64{0, 0.02, 0.05, 0.10, 0.20} {
		cfg := base
		if rate > 0 {
			cfg.Fault = &cryowire.FaultConfig{
				Seed:               8,
				LinkFailureRate:    rate,
				FlitCorruptionRate: rate / 2,
			}
		}
		res, err := cryowire.Simulate(cryoSP, w, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultsweep:", err)
			os.Exit(1)
		}
		if rate == 0 {
			healthy = res.IPC
		}
		fmt.Printf("%-10s %-8.3f %-10.3f %-14.1f %-12.2f %-12d\n",
			fmt.Sprintf("%.0f%%", rate*100), res.IPC, res.IPC/healthy,
			res.DegradedBroadcastCycles, res.AvgNoCLatency, res.Retransmits)
	}
	fmt.Println()
	fmt.Println("Rate 0 runs with no injector and reproduces the healthy numbers")
	fmt.Println("bit-for-bit. Under faults the bus NACKs corrupted flits and")
	fmt.Println("retransmits with bounded exponential backoff; dead H-tree")
	fmt.Println("segments re-route over 2h+2-hop tile-wire detours.")
}
