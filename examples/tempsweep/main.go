// Tempsweep walks the §7.4 optimal-temperature study: performance rises
// roughly linearly while cooling overhead grows like Carnot, so
// performance-per-watt peaks above 77 K.
//
//	go run ./examples/tempsweep
package main

import (
	"fmt"
	"os"

	"cryowire"
)

func main() {
	temps := []float64{300, 250, 200, 150, 125, 110, 100, 90, 77}
	pts, err := cryowire.TemperatureSweep(temps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tempsweep:", err)
		os.Exit(1)
	}

	fmt.Println("Operating-temperature sweep (Fig 27 workflow)")
	fmt.Printf("%-8s %-10s %-8s %-8s %-10s %-10s %-12s\n",
		"T (K)", "freq(GHz)", "Vdd(V)", "CO(T)", "rel perf", "rel power", "perf/power")
	best := 0
	for i, p := range pts {
		fmt.Printf("%-8.0f %-10.2f %-8.2f %-8.2f %-10.2f %-10.2f %-12.3f\n",
			float64(p.T), p.FreqGHz, float64(p.Vdd), p.CoolingOverhead,
			p.RelPerformance, p.RelPower, p.PerfPerPower)
		if p.PerfPerPower > pts[best].PerfPerPower {
			best = i
		}
	}
	fmt.Println()
	fmt.Printf("Best performance-per-watt at %.0f K.\n", float64(pts[best].T))
	fmt.Println("The paper's observation: 100K computing beats 77K on perf/power")
	fmt.Println("because the cooling overhead grows super-linearly while performance")
	fmt.Println("scales roughly linearly with temperature (§7.4).")
}
