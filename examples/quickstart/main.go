// Quickstart: derive the paper's two microarchitectures and reproduce
// the headline system comparison on a couple of workloads.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cryowire"
)

func main() {
	cw := cryowire.New()

	// §4: derive CryoSP — superpipeline the frontend at 77 K, apply the
	// CryoCore sizing and the Vdd/Vth scaling.
	sp := cw.DeriveCryoSP()
	fmt.Println("=== CryoSP derivation (§4) ===")
	fmt.Printf("baseline:       %.2f GHz (%d-deep, %d-wide)\n",
		sp.Baseline.FreqGHz, sp.Baseline.Depth, sp.Baseline.Width)
	fmt.Printf("split stages:   %v (target: %s)\n", sp.Superpipe.SplitStages, sp.Superpipe.TargetStage)
	fmt.Printf("CryoSP:         %.2f GHz at Vdd=%.2fV/Vth=%.2fV (%d-deep)\n",
		sp.CryoSP.FreqGHz, float64(sp.CryoSP.Op.Vdd), float64(sp.CryoSP.Op.Vth), sp.CryoSP.Depth)
	fmt.Printf("gain vs 300K:   %.2fx   gain vs CHP-core: %.2fx\n\n", sp.FreqGain300K, sp.FreqGainCHP)

	// §5: design CryoBus — the H-tree snooping bus with dynamic links.
	bus := cw.DesignCryoBus()
	fmt.Println("=== CryoBus design (§5) ===")
	fmt.Printf("topology:       H-tree, %d-hop span (serpentine baseline: %d hops)\n",
		bus.MaxHops, bus.SerpentineHops)
	fmt.Printf("broadcast:      %.0f cycle(s); zero-load transaction: %.1f cycles\n\n",
		bus.BroadcastCycles, bus.ZeroLoadCycles)

	// §6: run the system-level comparison on two contrasting workloads.
	fmt.Println("=== System evaluation (§6) ===")
	cfg := cryowire.SimConfig{WarmupCycles: 3000, MeasureCycles: 12000, Seed: 1}
	designs := cryowire.EvaluationDesigns()
	for _, wl := range []string{"streamcluster", "blackscholes"} {
		w, err := cryowire.WorkloadByName(wl)
		if err != nil {
			log.Fatal(err)
		}
		var ref float64
		fmt.Printf("%s:\n", wl)
		for i, d := range designs {
			r, err := cryowire.Simulate(d, w, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if i == 1 { // normalize to CHP-core (77K, Mesh) as the paper does
				ref = r.Performance
			}
			fmt.Printf("  %-28s %8.1f instr/ns\n", d.Name, r.Performance)
		}
		last, _ := cryowire.Simulate(designs[4], w, cfg)
		fmt.Printf("  => CryoSP+CryoBus speedup vs CHP-core(77K,Mesh): %.2fx\n\n", last.Performance/ref)
	}
}
