// Validation replays the §3 model-validation discipline: the pipeline
// and router models against the LN-cooled board measurements (Fig 9),
// the wire-link model against the transient circuit solver (Fig 10),
// and the Table 4 memory latencies against the circuit-level cache and
// DRAM models.
//
//	go run ./examples/validation
package main

import (
	"fmt"
	"log"

	"cryowire"
)

func main() {
	for _, id := range []string{"fig9", "fig10", "table4-derived"} {
		rep, err := cryowire.RunExperiment(id, cryowire.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep.Render())
	}
	fmt.Println("All three validations compare a fast analytic model against an")
	fmt.Println("independent reference (published measurements, a transient RC")
	fmt.Println("solver, circuit-level cache/DRAM models) — the same discipline")
	fmt.Println("the paper applies before trusting its 77K predictions.")
}
