// Nocdesign walks the §5 design-space study: load-latency curves of the
// candidate 64-core interconnects at 77 K, showing why the paper picks
// a bus (Guideline #1) and why that bus must be as fast as possible
// (Guideline #2).
//
//	go run ./examples/nocdesign
package main

import (
	"fmt"
	"log"

	"cryowire"
)

func main() {
	rates := []float64{0.001, 0.002, 0.004, 0.006, 0.010, 0.016, 0.03}
	designs := []string{"mesh", "fbfly", "sharedbus", "cryobus", "cryobus-2way"}

	fmt.Println("Load-latency at 77K, uniform random traffic (cycles)")
	fmt.Printf("%-12s", "rate")
	for _, d := range designs {
		fmt.Printf("  %-13s", d)
	}
	fmt.Println()

	curves := map[string][]cryowire.LoadLatencyPoint{}
	for _, d := range designs {
		pts, err := cryowire.NoCLoadLatency(d, "uniform", 77, rates)
		if err != nil {
			log.Fatal(err)
		}
		curves[d] = pts
	}
	for ri, rate := range rates {
		fmt.Printf("%-12.4f", rate)
		for _, d := range designs {
			pts := curves[d]
			if ri >= len(pts) || pts[ri].Saturated {
				fmt.Printf("  %-13s", "saturated")
				continue
			}
			fmt.Printf("  %-13.1f", pts[ri].AvgLatency)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Guideline #1: the bus designs start far below the router networks'")
	fmt.Println("latency at 77K because their latency is pure (fast) wire flight.")
	fmt.Println("Guideline #2: the plain shared bus saturates first; CryoBus's H-tree")
	fmt.Println("and 1-cycle broadcast push the knee out; 2-way interleaving doubles it.")

	fmt.Println()
	fmt.Println("Same study under hotspot traffic:")
	for _, d := range []string{"mesh", "cryobus"} {
		pts, err := cryowire.NoCLoadLatency(d, "hotspot", 77, []float64{0.001, 0.004, 0.008})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s", d)
		for _, p := range pts {
			if p.Saturated {
				fmt.Printf("  saturated")
			} else {
				fmt.Printf("  %.1f", p.AvgLatency)
			}
		}
		fmt.Println()
	}
}
