// Wiresweep walks the Fig 5 workflow: how much faster do on-chip wires
// get at 77 K, as a function of length, metal class, and repeater
// insertion?
//
//	go run ./examples/wiresweep
package main

import (
	"fmt"
	"log"

	"cryowire"
)

func main() {
	fmt.Println("77K wire speed-up vs length (Fig 5 workflow)")
	fmt.Println()
	fmt.Printf("%-10s  %-12s  %-16s  %-18s  %-12s\n",
		"len (mm)", "local (raw)", "semi-global(raw)", "semi-global(rep.)", "global(rep.)")
	for _, l := range []float64{0.1, 0.3, 0.9, 2, 4, 6.22, 10} {
		row := []float64{}
		for _, q := range []struct {
			class string
			rep   bool
		}{
			{"local", false}, {"semi-global", false}, {"semi-global", true}, {"global", true},
		} {
			v, err := cryowire.WireSpeedupAt(q.class, l, 77, q.rep)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, v)
		}
		fmt.Printf("%-10.2f  %-12.2f  %-16.2f  %-18.2f  %-12.2f\n", l, row[0], row[1], row[2], row[3])
	}
	fmt.Println()
	fmt.Println("Temperature scaling of the in-core forwarding wire:")
	for _, t := range []float64{300, 200, 135, 100, 77} {
		v, err := cryowire.WireSpeedupAt("forwarding", 1.686, t, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5.0f K: %.2fx\n", t, v)
	}
	fmt.Println()
	fmt.Println("Paper anchors: 2.95x/3.69x unrepeated local/semi-global (long),")
	fmt.Println("2.25x repeated semi-global @0.9mm, 3.38x repeated global @6.22mm,")
	fmt.Println("2.81x forwarding wire @77K.")
}
