package cryowire

import (
	"strings"
	"testing"
)

func TestFacadeDeriveCryoSP(t *testing.T) {
	cw := New()
	sp := cw.DeriveCryoSP()
	if sp.CryoSP.FreqGHz < 7.6 || sp.CryoSP.FreqGHz > 8.1 {
		t.Errorf("CryoSP frequency = %v, want ≈7.84", sp.CryoSP.FreqGHz)
	}
	if sp.FreqGain300K < 1.9 || sp.FreqGain300K > 2.05 {
		t.Errorf("frequency gain vs 300K = %v, want ≈1.96", sp.FreqGain300K)
	}
}

func TestFacadeDesignCryoBus(t *testing.T) {
	bus := New().DesignCryoBus()
	if bus.BroadcastCycles != 1 {
		t.Errorf("broadcast = %v cycles, want 1", bus.BroadcastCycles)
	}
}

func TestFacadeExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 25 {
		t.Fatalf("only %d experiments exposed", len(ids))
	}
	found := map[string]bool{}
	for _, id := range ids {
		found[id] = true
	}
	for _, want := range []string{"fig5", "fig23", "table3", "abl-snoop"} {
		if !found[want] {
			t.Errorf("experiment %s missing from the facade list", want)
		}
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	r, err := RunExperiment("fig20", QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Render(), "CryoBus") {
		t.Error("fig20 render missing CryoBus row")
	}
	if _, err := RunExperiment("not-a-figure", QuickOptions()); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestFacadeSimulate(t *testing.T) {
	w, err := WorkloadByName("vips")
	if err != nil {
		t.Fatal(err)
	}
	designs := EvaluationDesigns()
	if len(designs) != 5 {
		t.Fatalf("expected the 5 Table 4 designs, got %d", len(designs))
	}
	res, err := Simulate(designs[1], w, SimConfig{WarmupCycles: 800, MeasureCycles: 3000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Performance <= 0 {
		t.Error("zero performance from a valid simulation")
	}
	if len(ParsecWorkloads()) != 13 {
		t.Error("PARSEC workload list wrong size")
	}
}

func TestFacadeWireSpeedup(t *testing.T) {
	v, err := WireSpeedupAt("semi-global", 0.9, 77, true)
	if err != nil {
		t.Fatal(err)
	}
	if v < 2.1 || v > 2.4 {
		t.Errorf("semi-global 0.9mm repeated speedup = %v, want ≈2.25", v)
	}
	if _, err := WireSpeedupAt("quantum", 1, 77, false); err == nil {
		t.Error("unknown wire class should error")
	}
	if _, err := WireSpeedupAt("local", 1, -5, false); err == nil {
		t.Error("invalid temperature should error")
	}
}

func TestFacadeNoCLoadLatency(t *testing.T) {
	pts, err := NoCLoadLatency("cryobus", "uniform", 77, []float64{0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].AvgLatency <= 0 {
		t.Fatalf("unexpected sweep result %+v", pts)
	}
	if _, err := NoCLoadLatency("hypercube", "uniform", 77, nil); err == nil {
		t.Error("unknown design should error")
	}
	if _, err := NoCLoadLatency("mesh", "fractal", 77, nil); err == nil {
		t.Error("unknown pattern should error")
	}
	if len(NoCDesignNames()) < 5 {
		t.Error("design name list too short")
	}
}

func TestFacadeTemperatureSweep(t *testing.T) {
	pts := TemperatureSweep([]float64{300, 100, 77})
	if len(pts) != 3 {
		t.Fatalf("sweep returned %d points", len(pts))
	}
	if pts[1].PerfPerPower <= pts[2].PerfPerPower {
		t.Error("100K should beat 77K on perf/power (Fig 27)")
	}
}
