package cryowire

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestFacadeDeriveCryoSP(t *testing.T) {
	cw := New()
	sp := cw.DeriveCryoSP()
	if sp.CryoSP.FreqGHz < 7.6 || sp.CryoSP.FreqGHz > 8.1 {
		t.Errorf("CryoSP frequency = %v, want ≈7.84", sp.CryoSP.FreqGHz)
	}
	if sp.FreqGain300K < 1.9 || sp.FreqGain300K > 2.05 {
		t.Errorf("frequency gain vs 300K = %v, want ≈1.96", sp.FreqGain300K)
	}
}

func TestFacadeDesignCryoBus(t *testing.T) {
	bus := New().DesignCryoBus()
	if bus.BroadcastCycles != 1 {
		t.Errorf("broadcast = %v cycles, want 1", bus.BroadcastCycles)
	}
}

func TestFacadeExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 25 {
		t.Fatalf("only %d experiments exposed", len(ids))
	}
	found := map[string]bool{}
	for _, id := range ids {
		found[id] = true
	}
	for _, want := range []string{"fig5", "fig23", "table3", "abl-snoop"} {
		if !found[want] {
			t.Errorf("experiment %s missing from the facade list", want)
		}
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	r, err := RunExperiment("fig20", QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Render(), "CryoBus") {
		t.Error("fig20 render missing CryoBus row")
	}
	if _, err := RunExperiment("not-a-figure", QuickOptions()); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestFacadeSimulate(t *testing.T) {
	w, err := WorkloadByName("vips")
	if err != nil {
		t.Fatal(err)
	}
	designs := EvaluationDesigns()
	if len(designs) != 5 {
		t.Fatalf("expected the 5 Table 4 designs, got %d", len(designs))
	}
	res, err := Simulate(designs[1], w, SimConfig{WarmupCycles: 800, MeasureCycles: 3000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Performance <= 0 {
		t.Error("zero performance from a valid simulation")
	}
	if len(ParsecWorkloads()) != 13 {
		t.Error("PARSEC workload list wrong size")
	}
}

func TestFacadeWireSpeedup(t *testing.T) {
	v, err := WireSpeedupAt("semi-global", 0.9, 77, true)
	if err != nil {
		t.Fatal(err)
	}
	if v < 2.1 || v > 2.4 {
		t.Errorf("semi-global 0.9mm repeated speedup = %v, want ≈2.25", v)
	}
	if _, err := WireSpeedupAt("quantum", 1, 77, false); err == nil {
		t.Error("unknown wire class should error")
	}
	if _, err := WireSpeedupAt("local", 1, -5, false); err == nil {
		t.Error("invalid temperature should error")
	}
}

func TestFacadeNoCLoadLatency(t *testing.T) {
	pts, err := NoCLoadLatency("cryobus", "uniform", 77, []float64{0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].AvgLatency <= 0 {
		t.Fatalf("unexpected sweep result %+v", pts)
	}
	if _, err := NoCLoadLatency("hypercube", "uniform", 77, nil); err == nil {
		t.Error("unknown design should error")
	}
	if _, err := NoCLoadLatency("mesh", "fractal", 77, nil); err == nil {
		t.Error("unknown pattern should error")
	}
	if len(NoCDesignNames()) < 5 {
		t.Error("design name list too short")
	}
}

func TestFacadeTemperatureSweep(t *testing.T) {
	pts, err := TemperatureSweep([]float64{300, 100, 77})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("sweep returned %d points", len(pts))
	}
	if pts[1].PerfPerPower <= pts[2].PerfPerPower {
		t.Error("100K should beat 77K on perf/power (Fig 27)")
	}
}

// TestPublicAPINeverPanics is the fuzz-style table test of the panic-free
// boundary: every invalid input a caller can hand the exported API must
// come back as an error, never a panic.
func TestPublicAPINeverPanics(t *testing.T) {
	mustNotPanic := func(t *testing.T, name string, f func() error) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("%s panicked: %v", name, r)
			}
		}()
		if err := f(); err == nil {
			t.Errorf("%s accepted invalid input", name)
		}
	}
	badTemps := [][]float64{{0}, {-5}, {300, -1, 77}, {math.NaN()}}
	for _, temps := range badTemps {
		temps := temps
		mustNotPanic(t, fmt.Sprintf("TemperatureSweep(%v)", temps), func() error {
			_, err := TemperatureSweep(temps)
			return err
		})
	}
	for _, tc := range []struct {
		class string
		temp  float64
	}{
		{"local", 0}, {"local", -273}, {"global", math.NaN()}, {"warp-drive", 77},
	} {
		tc := tc
		mustNotPanic(t, fmt.Sprintf("WireSpeedupAt(%q,%v)", tc.class, tc.temp), func() error {
			_, err := WireSpeedupAt(tc.class, 1, tc.temp, false)
			return err
		})
	}
	for _, tc := range []struct {
		design, pattern string
		temp            float64
	}{
		{"hypercube", "uniform", 77}, {"mesh", "fractal", 77}, {"mesh", "uniform", -4},
	} {
		tc := tc
		mustNotPanic(t, fmt.Sprintf("NoCLoadLatency(%q,%q,%v)", tc.design, tc.pattern, tc.temp), func() error {
			_, err := NoCLoadLatency(tc.design, tc.pattern, tc.temp, []float64{0.001})
			return err
		})
	}
	// Simulate over invalid designs: bad node counts, bad net kinds,
	// bad fault configs.
	w, err := WorkloadByName("vips")
	if err != nil {
		t.Fatal(err)
	}
	cfg := SimConfig{WarmupCycles: 200, MeasureCycles: 500, Seed: 1}
	mesh60 := EvaluationDesigns()[1]
	mesh60.Cores = 60
	badNet := EvaluationDesigns()[1]
	badNet.Net = 99
	oneCore := EvaluationDesigns()[0]
	oneCore.Cores = 1
	for _, tc := range []struct {
		name string
		d    Design
	}{
		{"non-square mesh", mesh60}, {"unknown net kind", badNet}, {"single core", oneCore},
	} {
		tc := tc
		mustNotPanic(t, "Simulate/"+tc.name, func() error {
			_, err := Simulate(tc.d, w, cfg)
			return err
		})
	}
	badFault := cfg
	badFault.Fault = &FaultConfig{LinkFailureRate: 2}
	mustNotPanic(t, "Simulate/invalid fault config", func() error {
		_, err := Simulate(EvaluationDesigns()[1], w, badFault)
		return err
	})
	mustNotPanic(t, "RunExperiment/unknown id", func() error {
		_, err := RunExperiment("not-a-figure", QuickOptions())
		return err
	})
	mustNotPanic(t, "WorkloadByName/unknown", func() error {
		_, err := WorkloadByName("quake3")
		return err
	})
}

// TestFaultedSimulateDegrades exercises the public fault-injection
// path: a 10% link-failure CryoBus design completes with degraded
// results rather than hanging or panicking.
func TestFaultedSimulateDegrades(t *testing.T) {
	w, err := WorkloadByName("vips")
	if err != nil {
		t.Fatal(err)
	}
	cryoSP := EvaluationDesigns()[4]
	cfg := SimConfig{WarmupCycles: 800, MeasureCycles: 3000, Seed: 1}
	healthy, err := Simulate(cryoSP, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault = &FaultConfig{Seed: 7, LinkFailureRate: 0.10}
	degraded, err := Simulate(cryoSP, w, cfg)
	if err != nil {
		t.Fatalf("faulted simulation failed instead of degrading: %v", err)
	}
	if degraded.Performance <= 0 {
		t.Fatal("faulted simulation made no progress")
	}
	if degraded.DegradedBroadcastCycles <= healthy.DegradedBroadcastCycles {
		t.Errorf("broadcast %v cycles not degraded beyond healthy %v",
			degraded.DegradedBroadcastCycles, healthy.DegradedBroadcastCycles)
	}
}

// TestWireClassesAllDocumented exercises WireSpeedupAt over every class
// WireClassNames advertises — including the previously undocumented
// "forwarding" in-core bypass wire — repeated and unrepeated, and the
// unknown-class error path.
func TestWireClassesAllDocumented(t *testing.T) {
	classes := WireClassNames()
	want := []string{"local", "semi-global", "global", "forwarding"}
	if len(classes) != len(want) {
		t.Fatalf("WireClassNames() = %v, want %v", classes, want)
	}
	for i, c := range want {
		if classes[i] != c {
			t.Fatalf("WireClassNames()[%d] = %q, want %q", i, classes[i], c)
		}
	}
	for _, class := range classes {
		for _, repeated := range []bool{false, true} {
			v, err := WireSpeedupAt(class, 1.0, 77, repeated)
			if err != nil {
				t.Fatalf("WireSpeedupAt(%q, repeated=%v): %v", class, repeated, err)
			}
			if v <= 1 {
				t.Errorf("WireSpeedupAt(%q, repeated=%v) = %v, want > 1 at 77K", class, repeated, v)
			}
		}
	}
	if _, err := WireSpeedupAt("optical", 1.0, 77, false); err == nil {
		t.Error("WireSpeedupAt accepted an unknown class")
	}
}

// TestNoCDesignNamesDriveLoadLatency confirms the advertised design
// list and the sweep entry point share one factory: every listed name
// sweeps successfully.
func TestNoCDesignNamesDriveLoadLatency(t *testing.T) {
	names := NoCDesignNames()
	if len(names) != 8 {
		t.Fatalf("NoCDesignNames() = %v, want 8 designs", names)
	}
	for _, name := range names {
		pts, err := NoCLoadLatency(name, "uniform", 77, []float64{0.001})
		if err != nil {
			t.Fatalf("NoCLoadLatency(%q): %v", name, err)
		}
		if len(pts) != 1 || pts[0].AvgLatency <= 0 {
			t.Fatalf("NoCLoadLatency(%q) = %+v, want one positive-latency point", name, pts)
		}
	}
}

// TestRunAllExperimentsOrdered checks the public RunAll wrapper returns
// sorted-ID outcomes matching ExperimentIDs.
func TestRunAllExperimentsOrdered(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry skipped in -short mode")
	}
	ocs := RunAllExperiments(QuickOptions())
	ids := ExperimentIDs()
	if len(ocs) != len(ids) {
		t.Fatalf("RunAllExperiments returned %d outcomes for %d IDs", len(ocs), len(ids))
	}
	for i, oc := range ocs {
		if oc.ID != ids[i] {
			t.Fatalf("outcome %d has ID %q, want %q", i, oc.ID, ids[i])
		}
		if oc.Err != nil {
			t.Errorf("%s: %v", oc.ID, oc.Err)
		}
	}
}
