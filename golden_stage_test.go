// Golden determinism gate for the temperature-stage subsystem: the
// staged sweep's JSON — simulation metrics plus per-stage heatload
// breakdowns and Carnot-fraction wall power — is pinned byte for byte
// in testdata/golden_stage.json. Any divergence means the device
// physics, the cable model or the cooling chain changed staged
// behavior, not just its packaging. The 4 K device-physics extension
// must also never perturb these bytes' 300 K and 77 K rows.
//
// Regenerate (only when an intentional model change lands) with:
//
//	go test -run TestGoldenStageSweep -update-golden .
package cryowire

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// goldenStageBytes renders the canonical staged-run output the golden
// file pins: the default three assignments (all-300K, 77K CryoSP,
// 77K+4K split) at quick run lengths — what `cryowire stage -quick
// -json` prints, minus the trailing newline fmt.Println adds.
func goldenStageBytes(t *testing.T, workers, lanes int) []byte {
	t.Helper()
	opt := StageSweepOptions{Sim: QuickOptions().Sim, Workers: workers, Lanes: lanes}
	res, err := StageSweep(context.Background(), nil, opt)
	if err != nil {
		t.Fatalf("stage sweep: %v", err)
	}
	b, err := res.JSON()
	if err != nil {
		t.Fatalf("stage sweep: %v", err)
	}
	return append(b, '\n')
}

// TestGoldenStageSweep gates the staged sweep against the pinned
// bytes, then re-runs it at a different worker and lane count: the
// sweep's determinism contract says scheduling knobs never change the
// bytes, so all variants must match the one golden file.
func TestGoldenStageSweep(t *testing.T) {
	path := filepath.Join("testdata", "golden_stage.json")
	got := goldenStageBytes(t, 1, 0)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden bytes to %s", len(got), path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("staged sweep diverged from %s:\n got: %s\nwant: %s", path, got, want)
	}
	if batched := goldenStageBytes(t, 2, 1); !bytes.Equal(batched, want) {
		t.Fatal("staged sweep bytes changed with worker/lane count")
	}
}
