# Tier-1 verification lives behind `make check`: vet, a full build, and
# the test suite under the race detector (the cycle-level simulator and
# the experiment runners are the concurrency-sensitive parts).
#
#   make test    - quick gate: build + tests (the ROADMAP tier-1 command)
#   make check   - full gate: vet + build + race-enabled tests (~3 min)
#   make bench   - one benchmark per reproduced table/figure

GO ?= go

.PHONY: all build test vet race check bench

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet build race

bench:
	$(GO) test -bench=. -benchmem ./...
