# Tier-1 verification lives behind `make check`: vet, a full build, and
# the test suite under the race detector with a shuffled test order (the
# cycle-level simulator, the shared platform cache and the parallel
# experiment engine are the concurrency-sensitive parts).
#
#   make test        - quick gate: build + tests (the ROADMAP tier-1 command)
#   make check       - full gate: vet + staticcheck (if installed) + build
#                      + race-enabled shuffled tests + HTTP serve smoke
#                      test (~3 min)
#   make chaos       - crash harness: build the real binary, SIGKILL it
#                      mid-job, restart, assert byte-identical recovery
#                      (forks processes; kept out of `make check`)
#   make serve-smoke - boot `cryowire serve` on a random port, probe
#                      /healthz and /metrics, and diff the experiment
#                      endpoint's JSON against the CLI's -json output
#   make shard-smoke - distributed DSE gate: run one quick grid search
#                      single-node, as two local shards, and across two
#                      real `cryowire serve` replicas; the merged
#                      frontier and journal must be byte-identical
#   make surrogate-smoke - screen-then-verify gate: grid the quick
#                      space, screen it against that journal as prior;
#                      screen must simulate >=3x fewer candidates, its
#                      journal entries must be a byte-identical subset
#                      of the grid's, and the frontiers must match
#   make bench       - Go benchmarks + serial-vs-parallel engine timing
#                      and server hot/cold throughput (writes BENCH_platform.json)
#                      + the hot-path harness below
#   make bench-sim   - hot-path perf harness: cycle-loop, solver,
#                      quick-sweep and batched-sweep numbers (writes
#                      BENCH_sim.json; see DESIGN.md "Performance").
#                      BATCH=N forces N lanes per lockstep batch
#                      (default 0 = auto).

GO ?= go
# Lanes per lockstep batch for the bench-sim batch sweep (0 = auto).
BATCH ?= 0

.PHONY: all build test vet staticcheck race check chaos bench bench-sim serve-smoke shard-smoke surrogate-smoke

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when present, skip (loudly)
# when not, so `make check` works on a bare Go toolchain.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race -shuffle=on ./...

serve-smoke: build
	sh scripts/serve_smoke.sh

shard-smoke: build
	sh scripts/shard_smoke.sh

surrogate-smoke: build
	sh scripts/surrogate_smoke.sh

# The chaos tests fork real `cryowire serve` processes and SIGKILL them
# mid-job, so they live behind a build tag and out of the -race gate.
chaos:
	$(GO) test -tags chaos -run TestChaos -v ./internal/jobs/

check: vet staticcheck build race serve-smoke

bench: bench-sim
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/benchplatform -quick -o BENCH_platform.json

bench-sim:
	$(GO) run ./cmd/benchsim -o BENCH_sim.json -batch $(BATCH)
