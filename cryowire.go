// Package cryowire is a from-scratch Go reproduction of "CryoWire:
// Wire-Driven Microarchitecture Designs for Cryogenic Computing"
// (Min, Chung, Byun, Kim, Kim — ASPLOS 2022).
//
// The package exposes the library's top-level workflow:
//
//	cw := cryowire.New()
//	sp := cw.DeriveCryoSP()        // §4: the superpipelined 77K core
//	bus := cw.DesignCryoBus()      // §5: the 1-cycle-broadcast H-tree bus
//	rep, _ := cryowire.RunExperiment("fig23", cryowire.DefaultOptions())
//
// Everything underneath lives in internal/ packages: device physics
// (internal/phys), wires and repeaters (internal/wire), a transient
// circuit solver (internal/circuit), the pipeline critical-path model
// (internal/pipeline), a cycle-level NoC simulator (internal/noc),
// MESI coherence (internal/coherence), a 64-core full-system simulator
// (internal/sim), power models (internal/power) and one experiment
// runner per paper table/figure (internal/experiments). DESIGN.md maps
// the paper to the code; EXPERIMENTS.md records reproduced numbers.
package cryowire

import (
	"context"
	"fmt"

	"cryowire/internal/core"
	"cryowire/internal/dse"
	"cryowire/internal/experiments"
	"cryowire/internal/fault"
	"cryowire/internal/noc"
	"cryowire/internal/platform"
	"cryowire/internal/power"
	"cryowire/internal/shard"
	"cryowire/internal/sim"
	"cryowire/internal/stage"
	"cryowire/internal/wire"
	"cryowire/internal/workload"
)

// CryoWire is the top-level model suite (re-exported from
// internal/core).
type CryoWire = core.CryoWire

// Reports for the two headline design derivations.
type (
	// CryoSPReport documents the §4 superpipelining flow.
	CryoSPReport = core.CryoSPReport
	// CryoBusReport documents the §5 bus design point.
	CryoBusReport = core.CryoBusReport
)

// New builds the default calibrated model suite. Every New call — and
// every other top-level entry point in this package — shares one
// process-wide Platform, a memoized derivation cache over the device
// models, so repeated calls never re-derive wire solutions, NoC timings
// or core specifications.
func New() *CryoWire { return core.New() }

// Experiment plumbing.
type (
	// Report is a reproduced table or figure.
	Report = experiments.Report
	// Options tunes experiment run lengths.
	Options = experiments.Options
)

// DefaultOptions returns CLI-grade experiment options.
func DefaultOptions() Options { return experiments.DefaultOptions() }

// QuickOptions returns fast test/bench-grade options.
func QuickOptions() Options { return experiments.QuickOptions() }

// ExperimentIDs lists every reproducible table/figure.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment reproduces one paper table/figure by ID.
func RunExperiment(id string, opt Options) (*Report, error) {
	return experiments.Run(id, opt)
}

// RunExperimentCtx is RunExperiment with cancellation: once ctx is done
// the experiment's internal fan-outs stop handing out tasks, in-flight
// simulations abort between cycles, and ctx's error is returned. This
// is what lets an abandoned HTTP request (or a Ctrl-C'd CLI run) stop
// burning workers mid-sweep.
func RunExperimentCtx(ctx context.Context, id string, opt Options) (*Report, error) {
	return experiments.RunCtx(ctx, id, opt)
}

// ExperimentOutcome is one RunAllExperiments result.
type ExperimentOutcome = experiments.Outcome

// RunAllExperiments reproduces every table and figure, in sorted-ID
// order. Set Options.Workers > 1 to fan the registry out over a bounded
// worker pool — outcomes are byte-identical to a serial run because
// every experiment seeds from its own configuration, never from
// execution order.
func RunAllExperiments(opt Options) []ExperimentOutcome {
	return experiments.RunAll(opt)
}

// RunAllExperimentsCtx is RunAllExperiments with cancellation: once ctx
// is done no further experiment starts and every unfinished outcome
// carries ctx's error, so there is always one outcome per ID.
func RunAllExperimentsCtx(ctx context.Context, opt Options) []ExperimentOutcome {
	return experiments.RunAllCtx(ctx, opt)
}

// System-simulation access for downstream users.
type (
	// Design is a full system configuration (Table 4 row).
	Design = sim.Design
	// SimConfig controls simulation length and seed.
	SimConfig = sim.Config
	// SimResult is one simulation outcome.
	SimResult = sim.Result
	// Workload is a statistical workload profile.
	Workload = workload.Profile
	// FaultConfig declares a deterministic fault-injection scenario;
	// set SimConfig.Fault to run a design degraded.
	FaultConfig = fault.Config
	// SimWatchdog configures the deadlock/livelock detector guarding
	// every simulation run.
	SimWatchdog = sim.Watchdog
	// StallError is the watchdog's cycle-stamped diagnosis of a hung
	// simulation, returned by Simulate instead of spinning forever.
	StallError = sim.StallError
)

// EvaluationDesigns returns the paper's five systems.
func EvaluationDesigns() []Design { return sim.NewFactory().Evaluation() }

// WorkloadByName finds a profile (PARSEC/SPEC/CloudSuite).
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// ParsecWorkloads returns the 13 PARSEC 2.1 profiles.
func ParsecWorkloads() []Workload { return workload.Parsec() }

// Simulate runs one design × workload pair on the full-system
// simulator. Invalid designs and hung simulations come back as errors
// (the latter as a *StallError); any residual internal panic is
// recovered into an error — this boundary never panics.
func Simulate(d Design, w Workload, cfg SimConfig) (res SimResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cryowire: simulation panicked: %v", r)
		}
	}()
	s, err := sim.New(d, w, cfg)
	if err != nil {
		return SimResult{}, err
	}
	return s.Run()
}

// SimulateCtx is Simulate with cancellation: the run aborts between
// simulated cycles once ctx is done and returns ctx's error, so callers
// holding a deadline (HTTP handlers, batch drivers) never wait for a
// doomed run to finish.
func SimulateCtx(ctx context.Context, d Design, w Workload, cfg SimConfig) (SimResult, error) {
	if ctx != nil {
		cfg = cfg.WithContext(ctx)
	}
	return Simulate(d, w, cfg)
}

// --- wire-study API (the Fig 5 workflow) ------------------------------------

// WireClassNames lists the wire classes WireSpeedupAt accepts, in
// canonical order: "local", "semi-global" and "global" are the ITRS
// interconnect tiers of the Fig 5 study; "forwarding" is the in-core
// bypass-network wire of Table 1 (the geometry behind CryoSP).
func WireClassNames() []string { return wire.ClassNames() }

// WireSpeedupAt returns the 300K→tempK speed-up of a driven wire of the
// given class (see WireClassNames) and length. With repeated=true the
// wire carries latency-optimal repeaters re-optimized at each
// temperature. Unknown classes and unphysical temperatures are errors.
// Results are memoized on the shared Platform, so sweeping the same
// class/length grid twice pays the repeater search only once.
func WireSpeedupAt(class string, lengthMM, tempK float64, repeated bool) (float64, error) {
	return platform.Default().WireSpeedupByClass(class, lengthMM, tempK, repeated)
}

// --- NoC design-space API (the Fig 21 workflow) -----------------------------

// LoadLatencyPoint is one point of a load-latency curve.
type LoadLatencyPoint = noc.SweepPoint

// NoCDesignNames lists the 64-core interconnects available to
// NoCLoadLatency. The list is read from the same factory table that
// builds the networks, so it can never drift from what NoCLoadLatency
// accepts.
func NoCDesignNames() []string { return noc.DesignNames() }

// NoCLoadLatency sweeps injection rates over a named 64-core NoC at the
// given temperature under a named traffic pattern ("uniform",
// "transpose", "hotspot", "bitreverse", "burst"). Designs are resolved
// by the shared noc factory (see NoCDesignNames); timings come memoized
// from the shared Platform.
func NoCLoadLatency(design, pattern string, tempK float64, rates []float64) ([]LoadLatencyPoint, error) {
	return NoCLoadLatencyCtx(context.Background(), design, pattern, tempK, rates)
}

// NoCLoadLatencyCtx is NoCLoadLatency with cancellation: the sweep
// stops between rates once ctx is done and returns ctx's error.
func NoCLoadLatencyCtx(ctx context.Context, design, pattern string, tempK float64, rates []float64) ([]LoadLatencyPoint, error) {
	pf := platform.Default()
	op, err := pf.OpAt(tempK)
	if err != nil {
		return nil, err
	}
	meshT := pf.MeshTiming(op, 1)
	busT := pf.BusTiming(op)
	// Probe the design name once so an unknown name fails before the
	// sweep starts instead of on the first rate.
	if _, err := noc.NewByName(design, 64, meshT, busT); err != nil {
		return nil, err
	}
	mk := func() noc.Network {
		n, err := noc.NewByName(design, 64, meshT, busT)
		if err != nil {
			// Unreachable: the probe above validated name and shape.
			panic(fmt.Sprintf("cryowire: %v", err))
		}
		return n
	}
	pat, err := noc.PatternByName(pattern)
	if err != nil {
		return nil, err
	}
	cfg := noc.SweepConfig{Pattern: pat, Rates: rates, Seed: 1, Ctx: ctx}
	pts := noc.LoadLatency(mk, cfg)
	if ctx != nil && ctx.Err() != nil {
		return nil, fmt.Errorf("cryowire: load-latency sweep: %w", ctx.Err())
	}
	return pts, nil
}

// --- temperature-sweep API (the Fig 27 workflow) ----------------------------

// TempSweepPoint is one temperature of the perf/power study.
type TempSweepPoint = power.SweepPoint

// TemperatureSweep computes frequency, power (with cooling) and
// performance-per-watt across operating temperatures. Unphysical
// (non-positive or NaN) temperatures are rejected with an error.
func TemperatureSweep(tempsK []float64) ([]TempSweepPoint, error) {
	temps := make([]power.Kelvin, len(tempsK))
	for i, t := range tempsK {
		temps[i] = power.Kelvin(t)
	}
	return platform.Default().PowerModel().TemperatureSweep(temps)
}

// Design-space exploration (internal/dse): search temperature, voltage
// mode, pipeline depth, interconnect and workload against pluggable
// objectives and extract the Pareto frontier.
type (
	// DSESpace is the searchable design space.
	DSESpace = dse.Space
	// DSEPoint is one fully specified candidate design.
	DSEPoint = dse.Point
	// DSEConfig parameterizes one search.
	DSEConfig = dse.Config
	// DSEResult is a search outcome: the evaluated count plus the
	// Pareto frontier over (performance, watts, energy).
	DSEResult = dse.Result
)

// DefaultDSESpace returns the standard search space (quick shrinks it
// for tests and fast looks).
func DefaultDSESpace(quick bool) DSESpace { return dse.DefaultSpace(quick) }

// DSEStrategies lists the built-in search strategy names.
func DSEStrategies() []string { return dse.Strategies() }

// RunDSE executes one design-space search on the shared platform; see
// dse.Run for the journaling and determinism contract.
func RunDSE(ctx context.Context, cfg DSEConfig) (*DSEResult, error) {
	return dse.Run(ctx, cfg)
}

// ShardOptions configures a sharded search: the partition count, the
// remote replica URLs (empty = in-process executors) and the failure
// policy. See shard.Options.
type ShardOptions = shard.Options

// RunShardedDSE partitions one grid search into contiguous point-index
// ranges, runs them concurrently — in-process or on remote `cryowire
// serve -jobs-dir` replicas — and merges the per-shard journals into a
// result byte-identical to RunDSE on the same config. A shard whose
// replica dies is re-dispatched locally from its journal checkpoint.
func RunShardedDSE(ctx context.Context, cfg DSEConfig, opt ShardOptions) (*DSEResult, error) {
	return shard.Run(ctx, cfg, opt)
}

// --- temperature-stage API (the multi-stage cryostat workflow) --------------

// Multi-stage system model (internal/stage): components on 300 K /
// 77 K / 4 K stages connected by cryogenic cables, each stage's
// heatload lifted to wall power by its own Carnot-fraction cooler.
type (
	// StageAssignment places the CryoSP tier and the memory hierarchy
	// on temperature stages (the host always stays at 300 K).
	StageAssignment = stage.Assignment
	// StageSweepOptions tunes a staged sweep.
	StageSweepOptions = stage.SweepOptions
	// StageSweepResult is the sweep's cooling-inclusive scorecard:
	// per-assignment simulation metrics plus per-stage heatload
	// breakdowns.
	StageSweepResult = stage.SweepResult
)

// DefaultStageAssignments returns the three canonical assignments the
// staged study compares: all-300K, the paper's 77 K CryoSP system, and
// the 77 K + 4 K split.
func DefaultStageAssignments() []StageAssignment { return stage.DefaultAssignments() }

// StageSweep simulates each assignment and prices it through its
// staged cooling chain. nil assignments run the defaults. Deterministic:
// equal inputs produce byte-identical JSON at any worker/lane count
// (the `cryowire stage -json` ↔ POST /v1/stage contract).
func StageSweep(ctx context.Context, assigns []StageAssignment, opt StageSweepOptions) (*StageSweepResult, error) {
	return stage.Sweep(ctx, assigns, opt)
}
