#!/bin/sh
# shard_smoke.sh — prove the distributed DSE path end to end: run one
# quick grid search single-node, again as two local shards, and again
# fanned out over two real `cryowire serve -jobs-dir` replicas, and
# require the merged result JSON and checkpoint journal to be
# byte-identical across all three.
#
# Used by `make shard-smoke` (part of CI).
set -eu

TMP=$(mktemp -d)
trap 'kill "$PID1" "$PID2" 2>/dev/null || true; wait "$PID1" "$PID2" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM
PID1=""
PID2=""

go build -o "$TMP/cryowire" ./cmd/cryowire

# wait_addr <logfile> <pid> — scrape `listening addr=127.0.0.1:PORT`.
wait_addr() {
    _addr=""
    for _ in $(seq 1 100); do
        _addr=$(sed -n 's/.*listening addr=\([0-9.:]*\).*/\1/p' "$1" | head -n1)
        [ -n "$_addr" ] && break
        kill -0 "$2" 2>/dev/null || { echo "shard-smoke: replica died:" >&2; cat "$1" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$_addr" ] || { echo "shard-smoke: replica never reported its address" >&2; cat "$1" >&2; exit 1; }
    echo "$_addr"
}

# The shared search: quick space, exhaustive grid, pinned quick sim
# config (so replicas journal under the coordinator's key).
DSE="dse -quick -json"

# 1. Single-node reference.
"$TMP/cryowire" $DSE -journal "$TMP/single.jsonl" >"$TMP/single.json"

# 2. Two local shards in one process.
"$TMP/cryowire" $DSE -shards 2 -shard-dir "$TMP/shards-local" \
    -journal "$TMP/local.jsonl" >"$TMP/local.json"
cmp -s "$TMP/single.json" "$TMP/local.json" || {
    echo "shard-smoke: 2-shard local result differs from single-node:"
    diff "$TMP/single.json" "$TMP/local.json" || true
    exit 1
}
cmp -s "$TMP/single.jsonl" "$TMP/local.jsonl" || {
    echo "shard-smoke: 2-shard local journal differs from single-node:"
    diff "$TMP/single.jsonl" "$TMP/local.jsonl" || true
    exit 1
}

# 3. Two shards on two real replicas over HTTP.
"$TMP/cryowire" serve -addr 127.0.0.1:0 -jobs-dir "$TMP/jobs1" 2>"$TMP/serve1.log" &
PID1=$!
"$TMP/cryowire" serve -addr 127.0.0.1:0 -jobs-dir "$TMP/jobs2" 2>"$TMP/serve2.log" &
PID2=$!
ADDR1=$(wait_addr "$TMP/serve1.log" "$PID1")
ADDR2=$(wait_addr "$TMP/serve2.log" "$PID2")
echo "shard-smoke: replicas on http://$ADDR1 http://$ADDR2"

"$TMP/cryowire" $DSE -workers-url "http://$ADDR1,http://$ADDR2" \
    -shard-dir "$TMP/shards-remote" -journal "$TMP/remote.jsonl" >"$TMP/remote.json"
cmp -s "$TMP/single.json" "$TMP/remote.json" || {
    echo "shard-smoke: 2-replica remote result differs from single-node:"
    diff "$TMP/single.json" "$TMP/remote.json" || true
    exit 1
}
cmp -s "$TMP/single.jsonl" "$TMP/remote.jsonl" || {
    echo "shard-smoke: 2-replica remote journal differs from single-node:"
    diff "$TMP/single.jsonl" "$TMP/remote.jsonl" || true
    exit 1
}

# 4. Graceful replica shutdown: SIGTERM must drain and exit cleanly.
kill -TERM "$PID1" "$PID2"
wait "$PID1" || { echo "shard-smoke: replica 1 exited non-zero"; cat "$TMP/serve1.log"; exit 1; }
wait "$PID2" || { echo "shard-smoke: replica 2 exited non-zero"; cat "$TMP/serve2.log"; exit 1; }
PID1=""
PID2=""

echo "shard-smoke: OK (2-shard local and 2-replica remote runs are byte-identical to single-node)"
