#!/bin/sh
# surrogate_smoke.sh — prove the screen-then-verify path end to end:
# grid the quick space into a journal, screen the same space against
# that journal as a prior, and require
#   1. the screen run simulates at least 3x fewer candidates,
#   2. every entry of the screen journal is byte-identical to a line of
#      the grid journal (nothing predicted ever reached disk),
#   3. both frontiers contain the 77K CryoSP+CryoBus headline point and
#      are identical.
#
# Used by `make surrogate-smoke` (part of CI).
set -eu

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/cryowire" ./cmd/cryowire

# 1. The exhaustive reference: full quick-space grid, journaled.
"$TMP/cryowire" dse -quick -json -journal "$TMP/grid.jsonl" >"$TMP/grid.json"

# 2. Screen-then-verify against the grid journal as prior.
"$TMP/cryowire" dse -quick -json -strategy screen -prior "$TMP/grid.jsonl" \
    -screen-margin 0.1 -journal "$TMP/screen.jsonl" >"$TMP/screen.json"

GRID_N=$(sed -n 's/.*"evaluated": \([0-9]*\).*/\1/p' "$TMP/grid.json" | head -n1)
SCREEN_N=$(sed -n 's/.*"evaluated": \([0-9]*\).*/\1/p' "$TMP/screen.json" | head -n1)
[ -n "$GRID_N" ] && [ -n "$SCREEN_N" ] || {
    echo "surrogate-smoke: could not read evaluated counts" >&2; exit 1; }
[ $((SCREEN_N * 3)) -le "$GRID_N" ] || {
    echo "surrogate-smoke: screen simulated $SCREEN_N of $GRID_N candidates, want at least 3x fewer" >&2
    exit 1
}

# 3. Every screen journal entry must appear verbatim in the grid
# journal: the screened search is sim-verified, not predicted. (Headers
# differ by design — the screen journal carries a strategy_key.)
tail -n +2 "$TMP/grid.jsonl" | sort >"$TMP/grid.entries"
tail -n +2 "$TMP/screen.jsonl" | sort >"$TMP/screen.entries"
if [ -n "$(comm -23 "$TMP/screen.entries" "$TMP/grid.entries")" ]; then
    echo "surrogate-smoke: screen journal entries are not a byte-identical subset of the grid journal:" >&2
    comm -23 "$TMP/screen.entries" "$TMP/grid.entries" >&2
    exit 1
fi

# 4. Identical frontiers, headline point included.
sed -n '/"frontier"/,$p' "$TMP/grid.json" >"$TMP/grid.frontier"
sed -n '/"frontier"/,$p' "$TMP/screen.json" >"$TMP/screen.frontier"
cmp -s "$TMP/grid.frontier" "$TMP/screen.frontier" || {
    echo "surrogate-smoke: screen frontier differs from the grid frontier:"
    diff "$TMP/grid.frontier" "$TMP/screen.frontier" || true
    exit 1
}
grep -q '"mode": "cryosp"' "$TMP/screen.frontier" || {
    echo "surrogate-smoke: CryoSP point missing from the screened frontier" >&2; exit 1; }
grep -q '"net": "cryobus"' "$TMP/screen.frontier" || {
    echo "surrogate-smoke: CryoBus point missing from the screened frontier" >&2; exit 1; }

echo "surrogate-smoke: OK (screen verified $SCREEN_N of $GRID_N candidates, identical frontier, journal subset byte-identical)"
