#!/bin/sh
# serve_smoke.sh — boot `cryowire serve` on a random port, probe the
# operational endpoints, and verify that the experiment endpoint's JSON
# is byte-identical to the CLI's `-json` output for the same options.
#
# Used by `make serve-smoke` (part of `make check`).
set -eu

TMP=$(mktemp -d)
trap 'kill "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/cryowire" ./cmd/cryowire

"$TMP/cryowire" serve -addr 127.0.0.1:0 2>"$TMP/serve.log" &
SERVER_PID=$!

# The server logs `listening addr=127.0.0.1:PORT`; wait for it.
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*listening addr=\([0-9.:]*\).*/\1/p' "$TMP/serve.log" | head -n1)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "serve-smoke: server died:"; cat "$TMP/serve.log"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve-smoke: server never reported its address"; cat "$TMP/serve.log"; exit 1; }
URL="http://$ADDR"

fetch() { # fetch <url> — GET with curl, falling back to wget
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

post() { # post <url> <json-body> — POST with curl, falling back to wget
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -X POST -H 'Content-Type: application/json' --data "$2" "$1"
    else
        wget -qO- --header 'Content-Type: application/json' --post-data "$2" "$1"
    fi
}

echo "serve-smoke: serving on $URL"

# 1. Operational endpoints answer. /healthz is JSON carrying the same
# build info as `cryowire -version`.
fetch "$URL/healthz" | grep -q '"status": "ok"' || { echo "serve-smoke: /healthz broken"; exit 1; }
fetch "$URL/healthz" | grep -q '"go": "go' || { echo "serve-smoke: /healthz missing build info"; exit 1; }
[ "$(fetch "$URL/readyz")" = "ready" ] || { echo "serve-smoke: /readyz broken"; exit 1; }
fetch "$URL/metrics" | grep -q cryowire_platform_cache_misses_total || {
    echo "serve-smoke: /metrics missing platform cache series"; exit 1; }

# 2. The experiment endpoint must match the CLI byte for byte.
post "$URL/v1/experiments/fig22" '{"quick":true}' >"$TMP/server.json"
"$TMP/cryowire" -quick -json fig22 >"$TMP/cli.json"
if ! cmp -s "$TMP/server.json" "$TMP/cli.json"; then
    echo "serve-smoke: /v1/experiments/fig22 differs from 'cryowire -quick -json fig22':"
    diff "$TMP/cli.json" "$TMP/server.json" || true
    exit 1
fi

# 3. The design-space endpoint must match `cryowire dse -json` too.
post "$URL/v1/dse" '{"quick":true,"budget":4,"strategy":"random","seed":7}' >"$TMP/server-dse.json"
"$TMP/cryowire" dse -quick -budget 4 -strategy random -seed 7 -json >"$TMP/cli-dse.json"
if ! cmp -s "$TMP/server-dse.json" "$TMP/cli-dse.json"; then
    echo "serve-smoke: /v1/dse differs from 'cryowire dse -quick -budget 4 -strategy random -seed 7 -json':"
    diff "$TMP/cli-dse.json" "$TMP/server-dse.json" || true
    exit 1
fi

# 4. The temperature-stage endpoint must match `cryowire stage -json`.
post "$URL/v1/stage" '{"quick":true}' >"$TMP/server-stage.json"
"$TMP/cryowire" stage -quick -json >"$TMP/cli-stage.json"
if ! cmp -s "$TMP/server-stage.json" "$TMP/cli-stage.json"; then
    echo "serve-smoke: /v1/stage differs from 'cryowire stage -quick -json':"
    diff "$TMP/cli-stage.json" "$TMP/server-stage.json" || true
    exit 1
fi

# 5. Graceful shutdown: SIGTERM must drain and exit cleanly.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "serve-smoke: server exited non-zero on SIGTERM"; cat "$TMP/serve.log"; exit 1; }
grep -q drained "$TMP/serve.log" || { echo "serve-smoke: no drain log line"; cat "$TMP/serve.log"; exit 1; }

echo "serve-smoke: OK (server JSON is byte-identical to CLI -json)"
