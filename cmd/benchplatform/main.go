// Command benchplatform measures the parallel experiment engine: it
// runs the full experiment registry serially and with a worker pool,
// checks the rendered reports are byte-identical, and writes the
// wall-times to BENCH_platform.json. The speed-up criterion only
// applies on multi-core machines, so the core count is recorded
// alongside the timings.
//
// Usage:
//
//	benchplatform [-quick] [-o BENCH_platform.json]
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"flag"

	"cryowire/internal/experiments"
	"cryowire/internal/par"
	"cryowire/internal/platform"
)

type result struct {
	Cores          int     `json:"cores"`
	Workers        int     `json:"workers"`
	Quick          bool    `json:"quick"`
	Experiments    int     `json:"experiments"`
	SerialSeconds  float64 `json:"serial_seconds"`
	ParallelSecs   float64 `json:"parallel_seconds"`
	Speedup        float64 `json:"speedup"`
	ByteIdentical  bool    `json:"byte_identical"`
	CacheHits      uint64  `json:"platform_cache_hits"`
	CacheMisses    uint64  `json:"platform_cache_misses"`
	FailedSerial   int     `json:"failed_serial"`
	FailedParallel int     `json:"failed_parallel"`
}

// runAll renders every outcome into one deterministic blob.
func runAll(opt experiments.Options) (string, int, time.Duration) {
	start := time.Now()
	ocs := experiments.RunAll(opt)
	elapsed := time.Since(start)
	blob := ""
	failed := 0
	for _, oc := range ocs {
		if oc.Err != nil {
			blob += oc.ID + ": ERROR: " + oc.Err.Error() + "\n"
			failed++
			continue
		}
		blob += oc.Report.Render()
	}
	return blob, failed, elapsed
}

func main() {
	quick := flag.Bool("quick", false, "use shrunk sweeps (what make bench runs)")
	out := flag.String("o", "BENCH_platform.json", "output file")
	flag.Parse()

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	workers := par.DefaultWorkers()

	// Fresh platforms per leg keep the comparison honest: each leg pays
	// its own derivations instead of inheriting the other's warm cache.
	opt.Platform = platform.New()
	opt.Workers = 1
	serialBlob, serialFailed, serialDur := runAll(opt)

	opt.Platform = platform.New()
	opt.Workers = workers
	parBlob, parFailed, parDur := runAll(opt)
	stats := opt.Platform.Stats()

	r := result{
		Cores:          runtime.NumCPU(),
		Workers:        workers,
		Quick:          *quick,
		Experiments:    len(experiments.IDs()),
		SerialSeconds:  serialDur.Seconds(),
		ParallelSecs:   parDur.Seconds(),
		Speedup:        serialDur.Seconds() / parDur.Seconds(),
		ByteIdentical:  serialBlob == parBlob,
		CacheHits:      stats.Hits,
		CacheMisses:    stats.Misses,
		FailedSerial:   serialFailed,
		FailedParallel: parFailed,
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchplatform: %v\n", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchplatform: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s", b)
	if !r.ByteIdentical {
		fmt.Fprintln(os.Stderr, "benchplatform: serial and parallel output differ")
		os.Exit(1)
	}
}
