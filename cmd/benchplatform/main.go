// Command benchplatform measures the parallel experiment engine: it
// runs the full experiment registry serially and with a worker pool,
// checks the rendered reports are byte-identical, and writes the
// wall-times to BENCH_platform.json. The speed-up criterion only
// applies on multi-core machines, so the core count is recorded
// alongside the timings. It also benchmarks the HTTP service layer
// in-process: one cold request (paying the model computation) versus
// sustained hot requests answered from the response LRU.
//
// Usage:
//
//	benchplatform [-quick] [-o BENCH_platform.json]
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"time"

	"flag"

	"cryowire/internal/experiments"
	"cryowire/internal/par"
	"cryowire/internal/platform"
	"cryowire/internal/server"
)

type result struct {
	Cores         int     `json:"cores"`
	Workers       int     `json:"workers"`
	Quick         bool    `json:"quick"`
	Experiments   int     `json:"experiments"`
	SerialSeconds float64 `json:"serial_seconds"`
	ParallelSecs  float64 `json:"parallel_seconds"`
	// Speedup is serial/parallel wall time. Omitted (null) when the pool
	// has a single worker — a 1-worker "parallel" leg only measures pool
	// overhead, and reporting its ratio as a speedup misled readers on
	// single-core machines. See EXPERIMENTS.md "Platform benchmark".
	Speedup        *float64 `json:"speedup,omitempty"`
	ByteIdentical  bool     `json:"byte_identical"`
	CacheHits      uint64   `json:"platform_cache_hits"`
	CacheMisses    uint64   `json:"platform_cache_misses"`
	FailedSerial   int      `json:"failed_serial"`
	FailedParallel int      `json:"failed_parallel"`

	// HTTP service layer: a cold request computes the experiment, hot
	// requests are served from the response LRU.
	ServerColdSeconds float64 `json:"server_cold_seconds"`
	ServerHotRPS      float64 `json:"server_hot_rps"`
}

// benchServer measures one cold experiment request and the sustained
// hot (LRU-served) request rate against the in-process handler.
func benchServer(quick bool) (coldSeconds, hotRPS float64, err error) {
	srv, err := server.New(server.Config{
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		return 0, 0, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"quick":%t}`, quick)
	url := ts.URL + "/v1/experiments/fig22"
	post := func() error {
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("server benchmark: status %d", resp.StatusCode)
		}
		return nil
	}

	start := time.Now()
	if err := post(); err != nil {
		return 0, 0, err
	}
	coldSeconds = time.Since(start).Seconds()

	const hotN = 2000
	start = time.Now()
	for i := 0; i < hotN; i++ {
		if err := post(); err != nil {
			return 0, 0, err
		}
	}
	hotRPS = hotN / time.Since(start).Seconds()
	return coldSeconds, hotRPS, nil
}

// runAll renders every outcome into one deterministic blob.
func runAll(opt experiments.Options) (string, int, time.Duration) {
	start := time.Now()
	ocs := experiments.RunAll(opt)
	elapsed := time.Since(start)
	blob := ""
	failed := 0
	for _, oc := range ocs {
		if oc.Err != nil {
			blob += oc.ID + ": ERROR: " + oc.Err.Error() + "\n"
			failed++
			continue
		}
		blob += oc.Report.Render()
	}
	return blob, failed, elapsed
}

func main() {
	quick := flag.Bool("quick", false, "use shrunk sweeps (what make bench runs)")
	out := flag.String("o", "BENCH_platform.json", "output file")
	flag.Parse()

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	workers := par.DefaultWorkers()

	// Fresh platforms per leg keep the comparison honest: each leg pays
	// its own derivations instead of inheriting the other's warm cache.
	opt.Platform = platform.New()
	opt.Workers = 1
	serialBlob, serialFailed, serialDur := runAll(opt)

	opt.Platform = platform.New()
	opt.Workers = workers
	parBlob, parFailed, parDur := runAll(opt)
	stats := opt.Platform.Stats()

	cold, hotRPS, err := benchServer(*quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchplatform: %v\n", err)
		os.Exit(1)
	}

	r := result{
		Cores:          runtime.NumCPU(),
		Workers:        workers,
		Quick:          *quick,
		Experiments:    len(experiments.IDs()),
		SerialSeconds:  serialDur.Seconds(),
		ParallelSecs:   parDur.Seconds(),
		ByteIdentical:  serialBlob == parBlob,
		CacheHits:      stats.Hits,
		CacheMisses:    stats.Misses,
		FailedSerial:   serialFailed,
		FailedParallel: parFailed,

		ServerColdSeconds: cold,
		ServerHotRPS:      hotRPS,
	}
	if workers > 1 {
		sp := serialDur.Seconds() / parDur.Seconds()
		r.Speedup = &sp
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchplatform: %v\n", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchplatform: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s", b)
	if !r.ByteIdentical {
		fmt.Fprintln(os.Stderr, "benchplatform: serial and parallel output differ")
		os.Exit(1)
	}
}
