package main

import (
	"reflect"
	"testing"
)

func TestSplitReplicaURLs(t *testing.T) {
	cases := []struct {
		raw  string
		want []string
		bad  bool
	}{
		{raw: "", want: nil},
		{raw: "http://127.0.0.1:8080", want: []string{"http://127.0.0.1:8080"}},
		{raw: "http://a:1, https://b:2 ,", want: []string{"http://a:1", "https://b:2"}},
		{raw: "ftp://nope", bad: true},
		{raw: "127.0.0.1:8080", bad: true}, // no scheme
		{raw: " , ", bad: true},            // nothing but separators
	}
	for _, c := range cases {
		got, err := splitReplicaURLs(c.raw)
		if c.bad {
			if err == nil {
				t.Errorf("splitReplicaURLs(%q) accepted, want error", c.raw)
			}
			continue
		}
		if err != nil {
			t.Errorf("splitReplicaURLs(%q): %v", c.raw, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitReplicaURLs(%q) = %v, want %v", c.raw, got, c.want)
		}
	}
}
