package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"cryowire"
	"cryowire/internal/experiments"
)

// stageMain runs the temperature-staged system study (`cryowire stage`).
func stageMain(args []string) int {
	fs := flag.NewFlagSet("stage", flag.ExitOnError)
	quick := fs.Bool("quick", false, "shorter simulations (quick-experiment run lengths)")
	workers := fs.Int("workers", 0, "parallel simulation fan-out (default: all CPUs)")
	jsonFlag := fs.Bool("json", false, "emit the result as JSON instead of a text report")
	workloadName := fs.String("workload", "", "workload profile to evaluate on (default x264)")
	wattsPerUnit := fs.Float64("watts-per-unit", 0, "watts one relative power-model unit represents (default 100)")
	assignSpec := fs.String("assign", "", "comma-separated name:tierK:memK assignments overriding the default three")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: cryowire stage [-quick] [-workers n] [-json] [-workload x264]
                      [-watts-per-unit w] [-assign name:tierK:memK,...]

Evaluates temperature-stage assignments of the CryoWire system — which
stage (300 K, 77 K, 4 K, ...) the CryoSP tier and the memory hierarchy
sit on — with full simulation, then prices each through its staged
cooling chain: per-stage device heat plus cryogenic-cable heat leak and
signal dissipation, every stage lifted to wall power by its own
Carnot-fraction cooler. The default assignments are all-300K, the
paper's 77 K CryoSP system, and the 77 K memory + 4 K tier split.

-json output is byte-identical to POST /v1/stage with the same
parameters.
`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "cryowire stage: unexpected arguments %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "cryowire stage: -workers must be >= 0")
		return 2
	}
	assigns, err := parseAssignments(*assignSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cryowire stage: %v\n", err)
		return 2
	}
	opt := cryowire.StageSweepOptions{
		Workload:     *workloadName,
		Workers:      *workers,
		WattsPerUnit: *wattsPerUnit,
	}
	if *quick {
		opt.Sim = experiments.QuickOptions().Sim
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := cryowire.StageSweep(ctx, assigns, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cryowire stage: %v\n", err)
		return 1
	}
	if *jsonFlag {
		b, err := res.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cryowire stage: %v\n", err)
			return 1
		}
		fmt.Println(string(b))
		return 0
	}
	fmt.Print(res.Render())
	return 0
}

// parseAssignments parses the -assign override: a comma-separated list
// of name:tierK:memK triples. Empty input returns nil (the defaults).
func parseAssignments(spec string) ([]cryowire.StageAssignment, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []cryowire.StageAssignment
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("-assign: %q is not name:tierK:memK", item)
		}
		tier, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("-assign: tier temperature %q is not a number", parts[1])
		}
		mem, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("-assign: memory temperature %q is not a number", parts[2])
		}
		out = append(out, cryowire.StageAssignment{Name: strings.TrimSpace(parts[0]), TierK: tier, MemK: mem})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-assign: no assignments in %q", spec)
	}
	return out, nil
}
