package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidateAddr(t *testing.T) {
	for _, tc := range []struct {
		addr string
		ok   bool
	}{
		{":8080", true},
		{"localhost:0", true},
		{"127.0.0.1:65535", true},
		{"no-port", false},
		{":notanumber", false},
		{":65536", false},
		{":-1", false},
	} {
		err := validateAddr(tc.addr)
		if tc.ok && err != nil {
			t.Errorf("validateAddr(%q) = %v, want nil", tc.addr, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("validateAddr(%q) = nil, want error", tc.addr)
		}
	}
}

func TestValidateProfileFlagsWritability(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "cpu.prof")
	if err := validateProfileFlags(good, "", false); err != nil {
		t.Errorf("writable path rejected: %v", err)
	}
	// Validation probes by creating the file, exactly as the profiler
	// will — so a bad parent directory is caught before any work runs.
	bad := filepath.Join(dir, "missing-subdir", "cpu.prof")
	if err := validateProfileFlags(bad, "", false); err == nil {
		t.Error("path in a missing directory accepted")
	}
	if err := validateProfileFlags("", bad, false); err == nil {
		t.Error("memprofile path in a missing directory accepted")
	}
}

func TestValidateProfileFlagsCombinations(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "out.prof")
	// CPU profiling is exclusive with serve's -pprof endpoint.
	if err := validateProfileFlags(p, "", true); err == nil || !strings.Contains(err.Error(), "-pprof") {
		t.Errorf("cpuprofile+pprof: err = %v, want -pprof conflict", err)
	}
	// The heap profile does not conflict with the pprof endpoint.
	if err := validateProfileFlags("", p, true); err != nil {
		t.Errorf("memprofile+pprof rejected: %v", err)
	}
	// Both profiles into one file would interleave two pprof streams.
	if err := validateProfileFlags(p, p, false); err == nil || !strings.Contains(err.Error(), "same file") {
		t.Errorf("same-file profiles: err = %v, want same-file conflict", err)
	}
	// No profiles requested is always fine.
	if err := validateProfileFlags("", "", true); err != nil {
		t.Errorf("empty flags rejected: %v", err)
	}
}

func TestStartProfilesWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := startProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
