package main

import (
	"context"
	"flag"
	"fmt"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"cryowire"
	"cryowire/internal/dse"
	"cryowire/internal/experiments"
	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

// dseMain runs the design-space-exploration engine (`cryowire dse`).
func dseMain(args []string) int {
	fs := flag.NewFlagSet("dse", flag.ExitOnError)
	strategy := fs.String("strategy", dse.StrategyGrid,
		fmt.Sprintf("search strategy (%s)", strings.Join(dse.Strategies(), ", ")))
	budget := fs.Int("budget", 0, "max candidates to evaluate (0 = whole space)")
	seed := fs.Int64("seed", 1, "strategy seed; equal seeds reproduce identical searches")
	quick := fs.Bool("quick", false, "shrunk space and shorter simulations")
	workers := fs.Int("workers", 0, "parallel evaluation fan-out (default: all CPUs)")
	jsonFlag := fs.Bool("json", false, "emit the result as JSON instead of a text report")
	journalPath := fs.String("journal", "", "JSON-lines checkpoint journal; a killed run resumes with -resume")
	resume := fs.Bool("resume", false, "continue an existing -journal instead of refusing to overwrite it")
	temps := fs.String("temps", "", "comma-separated temperatures (K) overriding the default axis")
	modes := fs.String("modes", "", "comma-separated voltage modes overriding the default axis")
	depths := fs.String("depths", "", "comma-separated pipeline depths overriding the default axis")
	nets := fs.String("nets", "", "comma-separated interconnects overriding the default axis")
	workloads := fs.String("workloads", "", "comma-separated workload names overriding the default axis")
	stages := fs.String("stages", "", "comma-separated memory-stage temperatures (K) enabling the multi-stage axis")
	shards := fs.Int("shards", 0, "partition the grid search into n shards run concurrently (0 = single run)")
	workersURL := fs.String("workers-url", "", "comma-separated base URLs of remote `cryowire serve -jobs-dir` replicas to run the shards on")
	shardDir := fs.String("shard-dir", "", "directory for per-shard checkpoint journals (default: a temp dir; set one to survive a coordinator crash)")
	prior := fs.String("prior", "", "comma-separated prior journals the surrogate strategies learn from before proposing")
	screenMargin := fs.Float64("screen-margin", 0, fmt.Sprintf("screen strategy's Pareto-band width in normalized objective units (0 = default %g)", dse.DefaultScreenMargin))
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: cryowire dse [-strategy grid|random|hillclimb|surrogate-hillclimb|ei|screen]
                    [-budget n] [-seed n]
                    [-quick] [-workers n] [-json] [-journal file [-resume]]
                    [-prior journal1.jsonl,journal2.jsonl] [-screen-margin x]
                    [-shards n] [-workers-url http://replica1,http://replica2]
                    [-shard-dir dir]
                    [-temps 300,77] [-modes nominal,cryosp] [-depths 14,17]
                    [-nets mesh,cryobus] [-workloads x264,...] [-stages 77,4]

Searches the cryogenic design space — temperature x voltage mode x
pipeline depth x interconnect x workload — and reports the Pareto
frontier over (performance, total watts incl. cooling, energy). With
the same seed a journaled run killed mid-search and resumed with
-resume produces byte-identical output to an uninterrupted run.

-stages adds a sixth axis: the memory-hierarchy stage temperature.
Staged candidates are priced through the multi-stage cooling chain
(cable heat leaks + per-stage Carnot-fraction overheads) instead of
the flat (1+CO) lift; without -stages the search is unchanged and old
journals keep resuming.

-shards partitions a grid search into contiguous point-index ranges
run concurrently — in this process, or on the remote replicas named by
-workers-url (which also implies sharding, one shard per replica when
-shards is 0). The merged frontier and -journal are byte-identical to
the single-run output; a shard whose replica dies is re-dispatched
locally from its journal checkpoint.

The surrogate strategies (surrogate-hillclimb, ei, screen) fit a
deterministic k-NN interpolator over the journals named by -prior (and
the run's own history) and use its predictions to decide what to
simulate. screen simulates only the predicted Pareto band — widen it
with -screen-margin — so every reported frontier point is sim-verified
with a fraction of the grid's simulate calls; predictions never enter
the output. Example:

  cryowire dse -strategy screen -prior journal1.jsonl,journal2.jsonl \
               -screen-margin 0.1
`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "cryowire dse: unexpected arguments %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if *resume && *journalPath == "" {
		fmt.Fprintln(os.Stderr, "cryowire dse: -resume requires -journal")
		return 2
	}
	if *budget < 0 || *workers < 0 {
		fmt.Fprintln(os.Stderr, "cryowire dse: -budget and -workers must be >= 0")
		return 2
	}
	if *shards < 0 {
		fmt.Fprintln(os.Stderr, "cryowire dse: -shards must be >= 0")
		return 2
	}
	replicas, err := splitReplicaURLs(*workersURL)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cryowire dse: %v\n", err)
		return 2
	}
	sharded := *shards > 0 || len(replicas) > 0
	if sharded && *strategy != dse.StrategyGrid {
		fmt.Fprintf(os.Stderr, "cryowire dse: -shards requires -strategy grid (got %q): only the exhaustive grid partitions by point index\n", *strategy)
		return 2
	}
	if *shardDir != "" && !sharded {
		fmt.Fprintln(os.Stderr, "cryowire dse: -shard-dir requires -shards or -workers-url")
		return 2
	}
	var priors []string
	for _, p := range strings.Split(*prior, ",") {
		if p = strings.TrimSpace(p); p != "" {
			priors = append(priors, p)
		}
	}
	if len(priors) > 0 && !dse.IsSurrogateStrategy(*strategy) {
		fmt.Fprintf(os.Stderr, "cryowire dse: -prior requires a surrogate strategy (surrogate-hillclimb, ei or screen), got %q\n", *strategy)
		return 2
	}
	if *screenMargin != 0 && *strategy != dse.StrategyScreen {
		fmt.Fprintf(os.Stderr, "cryowire dse: -screen-margin requires -strategy screen, got %q\n", *strategy)
		return 2
	}
	if *screenMargin < 0 {
		fmt.Fprintln(os.Stderr, "cryowire dse: -screen-margin must be >= 0")
		return 2
	}

	space := cryowire.DefaultDSESpace(*quick)
	if err := overrideSpace(&space, *temps, *modes, *depths, *nets, *workloads); err != nil {
		fmt.Fprintf(os.Stderr, "cryowire dse: %v\n", err)
		return 2
	}
	if *stages != "" {
		var ts []float64
		for _, p := range strings.Split(*stages, ",") {
			if p = strings.TrimSpace(p); p == "" {
				continue
			}
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cryowire dse: -stages: %q is not a number\n", p)
				return 2
			}
			ts = append(ts, v)
		}
		space = space.WithStages(ts)
	}
	simCfg := sim.DefaultConfig()
	if *quick {
		simCfg = experiments.QuickOptions().Sim
	}
	cfg := cryowire.DSEConfig{
		Space:        space,
		Strategy:     *strategy,
		Budget:       *budget,
		Seed:         *seed,
		Sim:          simCfg,
		Workers:      *workers,
		Journal:      *journalPath,
		Resume:       *resume,
		Priors:       priors,
		ScreenMargin: *screenMargin,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var res *cryowire.DSEResult
	if sharded {
		res, err = cryowire.RunShardedDSE(ctx, cfg, cryowire.ShardOptions{
			Shards:   *shards,
			Replicas: replicas,
			Dir:      *shardDir,
		})
	} else {
		res, err = cryowire.RunDSE(ctx, cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cryowire dse: %v\n", err)
		return 1
	}
	if *jsonFlag {
		b, err := res.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cryowire dse: %v\n", err)
			return 1
		}
		fmt.Println(string(b))
		return 0
	}
	fmt.Print(res.Render())
	return 0
}

// splitReplicaURLs parses the -workers-url list, demanding absolute
// http(s) base URLs so a typo fails here instead of as a dial error
// mid-search.
func splitReplicaURLs(raw string) ([]string, error) {
	if raw == "" {
		return nil, nil
	}
	var out []string
	for _, p := range strings.Split(raw, ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		u, err := url.Parse(p)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("-workers-url: %q is not an http(s) base URL", p)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workers-url: no replica URLs in %q", raw)
	}
	return out, nil
}

// overrideSpace replaces any axis the user supplied. Validation of the
// assembled space happens inside the engine.
func overrideSpace(s *dse.Space, temps, modes, depths, nets, workloadNames string) error {
	split := func(raw string) []string {
		parts := strings.Split(raw, ",")
		out := parts[:0]
		for _, p := range parts {
			if p = strings.TrimSpace(p); p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	if temps != "" {
		var ts []float64
		for _, p := range split(temps) {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return fmt.Errorf("-temps: %q is not a number", p)
			}
			ts = append(ts, v)
		}
		s.TempsK = ts
	}
	if modes != "" {
		s.Modes = split(modes)
	}
	if depths != "" {
		var ds []int
		for _, p := range split(depths) {
			v, err := strconv.Atoi(p)
			if err != nil {
				return fmt.Errorf("-depths: %q is not an integer", p)
			}
			ds = append(ds, v)
		}
		s.Depths = ds
	}
	if nets != "" {
		s.Nets = split(nets)
	}
	if workloadNames != "" {
		var wls []workload.Profile
		for _, n := range split(workloadNames) {
			w, err := workload.ByName(n)
			if err != nil {
				return err
			}
			wls = append(wls, w)
		}
		*s = dse.NewSpace(s.TempsK, s.Modes, s.Depths, s.Nets, wls)
		return nil
	}
	*s = dse.NewSpace(s.TempsK, s.Modes, s.Depths, s.Nets, s.Workloads)
	return nil
}
