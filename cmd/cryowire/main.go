// Command cryowire runs the CryoWire reproduction experiments: every
// table and figure of the paper has an experiment ID (fig5, table3, …).
//
// Usage:
//
//	cryowire list             # show available experiments
//	cryowire fig23            # run one experiment
//	cryowire all              # run everything
//	cryowire -quick fig21     # shrunk sweeps for a fast look
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cryowire/internal/experiments"
)

var jsonOut bool

func main() {
	quick := flag.Bool("quick", false, "use shrunk sweeps and shorter simulations")
	flag.BoolVar(&jsonOut, "json", false, "emit reports as JSON instead of text tables")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	arg := flag.Arg(0)
	switch arg {
	case "list", "all":
		// "all fig5" would silently ignore fig5 (or worse, run it
		// twice) — reject the combination outright.
		if flag.NArg() > 1 {
			fmt.Fprintf(os.Stderr, "cryowire: %q cannot be combined with other experiment IDs (got %v)\n",
				arg, flag.Args()[1:])
			usage()
			os.Exit(2)
		}
	}
	switch arg {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	case "all":
		// Keep going past failures: one broken experiment should not
		// hide the results of the other thirty. Failures are collected
		// and summarized, and the exit code is non-zero only at the end.
		var failed []string
		for _, id := range experiments.IDs() {
			if err := runOne(id, opt); err != nil {
				fmt.Fprintf(os.Stderr, "cryowire: %v\n", err)
				failed = append(failed, id)
			}
		}
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "cryowire: %d of %d experiments failed: %v\n",
				len(failed), len(experiments.IDs()), failed)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cryowire: all %d experiments completed\n", len(experiments.IDs()))
		return
	default:
		for _, id := range flag.Args() {
			if err := runOne(id, opt); err != nil {
				fmt.Fprintf(os.Stderr, "cryowire: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func runOne(id string, opt experiments.Options) error {
	r, err := experiments.Run(id, opt)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	}
	fmt.Println(r.Render())
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: cryowire [-quick] [-json] <experiment>...
       cryowire list | all

"list" and "all" stand alone and cannot be combined with experiment
IDs. "all" runs every experiment, keeps going past failures, and exits
non-zero only after printing a failure summary.

Experiments reproduce the CryoWire paper's tables and figures; see
DESIGN.md for the experiment index and EXPERIMENTS.md for results.
`)
}
