// Command cryowire runs the CryoWire reproduction experiments: every
// table and figure of the paper has an experiment ID (fig5, table3, …).
//
// Usage:
//
//	cryowire list             # show available experiments
//	cryowire fig23            # run one experiment
//	cryowire all              # run everything
//	cryowire -quick fig21     # shrunk sweeps for a fast look
//	cryowire -parallel all    # fan out over all CPUs (same output)
//	cryowire serve -addr :8080  # serve the same reports over HTTP
//	cryowire dse -strategy hillclimb  # search the cryogenic design space
//	cryowire stage -json      # price 300K/77K/4K stage assignments
//	cryowire -version         # print embedded build information
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"syscall"

	"cryowire/internal/buildinfo"
	"cryowire/internal/experiments"
	"cryowire/internal/par"
	"cryowire/internal/server"
)

var jsonOut bool

func main() {
	// "serve", "dse" and "stage" have their own flag sets; dispatch
	// before parsing the experiment flags so `cryowire serve -addr
	// :9090` and `cryowire dse -strategy hillclimb` work.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			os.Exit(serveMain(os.Args[2:]))
		case "dse":
			os.Exit(dseMain(os.Args[2:]))
		case "stage":
			os.Exit(stageMain(os.Args[2:]))
		}
	}

	quick := flag.Bool("quick", false, "use shrunk sweeps and shorter simulations")
	version := flag.Bool("version", false, "print build information and exit")
	parallel := flag.Bool("parallel", false, "fan experiments out over all CPUs (output is identical to a serial run)")
	workers := flag.Int("workers", 0, "exact worker count for -parallel (default: all CPUs)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.BoolVar(&jsonOut, "json", false, "emit reports as JSON instead of text tables")
	flag.Usage = usage
	flag.Parse()
	if *version {
		fmt.Printf("cryowire %s (built with %s", buildinfo.Version(), buildinfo.GoVersion())
		if rev := buildinfo.Revision(); rev != "" {
			fmt.Printf(", revision %s", rev)
		}
		fmt.Println(")")
		return
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "cryowire: -workers must be >= 0, got %d\n", *workers)
		usage()
		os.Exit(2)
	}
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	if err := validateProfileFlags(*cpuprofile, *memprofile, false); err != nil {
		fmt.Fprintf(os.Stderr, "cryowire: %v\n", err)
		usage()
		os.Exit(2)
	}
	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cryowire: %v\n", err)
		os.Exit(2)
	}
	// Profiles must flush even on failure exits; os.Exit skips defers.
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}
	defer stopProf()
	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	if *parallel {
		opt.Workers = par.DefaultWorkers()
	}
	if *workers > 0 {
		opt.Workers = *workers
	}

	// Ctrl-C cancels the context threaded through every experiment's
	// fan-out and cycle loop, so an interrupted run stops promptly
	// instead of finishing the whole sweep.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	arg := flag.Arg(0)
	switch arg {
	case "list", "all":
		// "all fig5" would silently ignore fig5 (or worse, run it
		// twice) — reject the combination outright.
		if flag.NArg() > 1 {
			fmt.Fprintf(os.Stderr, "cryowire: %q cannot be combined with other experiment IDs (got %v)\n",
				arg, flag.Args()[1:])
			usage()
			exit(2)
		}
	}
	switch arg {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	case "all":
		// Keep going past failures: one broken experiment should not
		// hide the results of the other thirty. Failures are collected
		// and summarized, and the exit code is non-zero only at the end.
		// RunAll returns outcomes in sorted-ID order regardless of the
		// worker count, so serial and parallel output are byte-identical.
		var failed []string
		for _, oc := range experiments.RunAllCtx(ctx, opt) {
			if oc.Err != nil {
				fmt.Fprintf(os.Stderr, "cryowire: %v\n", oc.Err)
				failed = append(failed, oc.ID)
				continue
			}
			if err := emit(oc.Report); err != nil {
				fmt.Fprintf(os.Stderr, "cryowire: %v\n", err)
				failed = append(failed, oc.ID)
			}
		}
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "cryowire: %d of %d experiments failed: %v\n",
				len(failed), len(experiments.IDs()), failed)
			exit(1)
		}
		fmt.Fprintf(os.Stderr, "cryowire: all %d experiments completed\n", len(experiments.IDs()))
		return
	default:
		for _, id := range flag.Args() {
			if err := runOne(ctx, id, opt); err != nil {
				fmt.Fprintf(os.Stderr, "cryowire: %v\n", err)
				exit(1)
			}
		}
	}
}

// validateProfileFlags rejects bad -cpuprofile/-memprofile combinations
// before any work starts: unwritable paths (probed by creating the
// file, exactly as the profiler will), the two profiles aimed at the
// same file, and CPU profiling combined with serve's -pprof endpoint —
// runtime CPU profiling is exclusive, so a /debug/pprof/profile fetch
// would fail mid-serve with the file profiler holding it.
func validateProfileFlags(cpuprofile, memprofile string, pprofEnabled bool) error {
	if cpuprofile != "" && pprofEnabled {
		return fmt.Errorf("-cpuprofile cannot be combined with -pprof (CPU profiling is exclusive; use the /debug/pprof/profile endpoint instead)")
	}
	if cpuprofile != "" && cpuprofile == memprofile {
		return fmt.Errorf("-cpuprofile and -memprofile point at the same file %q", cpuprofile)
	}
	for _, p := range []string{cpuprofile, memprofile} {
		if p == "" {
			continue
		}
		f, err := os.OpenFile(p, os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			return fmt.Errorf("profile path not writable: %v", err)
		}
		f.Close()
	}
	return nil
}

// startProfiles begins CPU profiling (if requested) and returns a stop
// function that ends it and writes the heap profile (if requested).
// Call validateProfileFlags first. The stop function is never nil and
// is safe to call once from every exit path that follows it.
func startProfiles(cpuprofile, memprofile string) (func(), error) {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %v", err)
		}
		return func() {
			pprof.StopCPUProfile()
			f.Close()
			writeHeapProfile(memprofile)
		}, nil
	}
	return func() { writeHeapProfile(memprofile) }, nil
}

// writeHeapProfile snapshots the heap after a GC (so the profile shows
// live objects, not garbage). A failure is reported but never fatal —
// the run's real output already happened.
func writeHeapProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cryowire: -memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "cryowire: -memprofile: %v\n", err)
	}
}

// serveMain runs the HTTP service layer (`cryowire serve`).
func serveMain(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently admitted /v1 requests (default: 2x CPUs)")
	cacheEntries := fs.Int("cache-entries", 0, "response cache entry bound (default 512)")
	cacheBytes := fs.Int64("cache-bytes", 0, "response cache byte bound (default 64 MiB)")
	timeout := fs.Duration("timeout", 0, "per-request computation deadline (default 10m)")
	enablePprof := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	jobsDir := fs.String("jobs-dir", "", "enable the durable async DSE job API, storing jobs under this directory (resumes interrupted jobs on startup)")
	jobRate := fs.Float64("job-rate", 0, "per-client job submissions per second (default 1; negative disables limiting)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the server's lifetime to this file (incompatible with -pprof)")
	memprofile := fs.String("memprofile", "", "write a heap profile at shutdown to this file")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: cryowire serve [-addr :8080] [-max-inflight n] [-cache-entries n]
                      [-cache-bytes n] [-timeout d] [-pprof]
                      [-jobs-dir d] [-job-rate r]
                      [-cpuprofile f] [-memprofile f]

Serves the experiment registry, the full-system simulator and the
facade sweeps as a JSON HTTP API (see README "Serving"). SIGINT/SIGTERM
drain in-flight requests before exiting. With -jobs-dir the async DSE
job API (/v1/dse/jobs) is enabled: jobs persist under that directory,
checkpoint every evaluation, and resume automatically after a crash or
restart.
`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "cryowire serve: unexpected arguments %v\n", fs.Args())
		fs.Usage()
		return 2
	}
	if err := validateAddr(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "cryowire serve: %v\n", err)
		fs.Usage()
		return 2
	}
	if *maxInflight < 0 || *cacheEntries < 0 || *cacheBytes < 0 || *timeout < 0 {
		fmt.Fprintln(os.Stderr, "cryowire serve: -max-inflight, -cache-entries, -cache-bytes and -timeout must be >= 0")
		fs.Usage()
		return 2
	}
	if err := validateProfileFlags(*cpuprofile, *memprofile, *enablePprof); err != nil {
		fmt.Fprintf(os.Stderr, "cryowire serve: %v\n", err)
		fs.Usage()
		return 2
	}
	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cryowire serve: %v\n", err)
		return 2
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv, err := server.New(server.Config{
		Addr:           *addr,
		MaxInflight:    *maxInflight,
		CacheEntries:   *cacheEntries,
		CacheBytes:     *cacheBytes,
		RequestTimeout: *timeout,
		EnablePprof:    *enablePprof,
		JobsDir:        *jobsDir,
		JobRateLimit:   *jobRate,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cryowire serve: %v\n", err)
		return 1
	}
	if err := srv.ListenAndServe(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "cryowire serve: %v\n", err)
		return 1
	}
	return 0
}

// validateAddr rejects malformed listen addresses and out-of-range
// ports before they turn into a confusing bind error.
func validateAddr(addr string) error {
	_, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("invalid -addr %q: %v", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return fmt.Errorf("invalid -addr %q: port %q is not a number", addr, portStr)
	}
	if port < 0 || port > 65535 {
		return fmt.Errorf("invalid -addr %q: port %d out of range 0-65535", addr, port)
	}
	return nil
}

func runOne(ctx context.Context, id string, opt experiments.Options) error {
	r, err := experiments.RunCtx(ctx, id, opt)
	if err != nil {
		return err
	}
	return emit(r)
}

// emit writes one report to stdout in the selected format.
func emit(r *experiments.Report) error {
	if jsonOut {
		b, err := r.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}
	fmt.Println(r.Render())
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: cryowire [-quick] [-json] [-parallel] [-workers n]
                [-cpuprofile f] [-memprofile f] <experiment>...
       cryowire list | all
       cryowire serve [-addr :8080] [flags]
       cryowire dse [flags]
       cryowire stage [flags]
       cryowire -version

"list" and "all" stand alone and cannot be combined with experiment
IDs. "all" runs every experiment, keeps going past failures, and exits
non-zero only after printing a failure summary. Ctrl-C cancels the run.

-parallel fans the experiments (and their internal sweeps) out over a
bounded worker pool; every task seeds from its own configuration, so
the output is byte-identical to a serial run.

"serve" exposes the same reports as a JSON HTTP API; see README
"Serving" and `+"`cryowire serve -h`"+` for its flags.

"dse" searches the cryogenic design space (temperature x voltage mode x
pipeline depth x interconnect x workload) and reports the Pareto
frontier; see `+"`cryowire dse -h`"+`.

"stage" evaluates temperature-stage assignments (300 K / 77 K / 4 K)
through the staged cooling chain — cable heat leaks plus per-stage
Carnot-fraction cooling overheads; see `+"`cryowire stage -h`"+`.

-cpuprofile and -memprofile write runtime/pprof profiles of the run
(CPU over the whole invocation; heap snapshotted after a GC at exit)
for inspection with `+"`go tool pprof`"+`.

-version prints the module version, Go toolchain and VCS revision
embedded by the Go build (debug.ReadBuildInfo); /healthz on the server
reports the same values.

Experiments reproduce the CryoWire paper's tables and figures; see
DESIGN.md for the experiment index and EXPERIMENTS.md for results.
`)
}
