// Command cryowire runs the CryoWire reproduction experiments: every
// table and figure of the paper has an experiment ID (fig5, table3, …).
//
// Usage:
//
//	cryowire list             # show available experiments
//	cryowire fig23            # run one experiment
//	cryowire all              # run everything
//	cryowire -quick fig21     # shrunk sweeps for a fast look
//	cryowire -parallel all    # fan out over all CPUs (same output)
package main

import (
	"flag"
	"fmt"
	"os"

	"cryowire/internal/experiments"
	"cryowire/internal/par"
)

var jsonOut bool

func main() {
	quick := flag.Bool("quick", false, "use shrunk sweeps and shorter simulations")
	parallel := flag.Bool("parallel", false, "fan experiments out over all CPUs (output is identical to a serial run)")
	workers := flag.Int("workers", 0, "exact worker count for -parallel (default: all CPUs)")
	flag.BoolVar(&jsonOut, "json", false, "emit reports as JSON instead of text tables")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	if *parallel {
		opt.Workers = par.DefaultWorkers()
	}
	if *workers > 0 {
		opt.Workers = *workers
	}
	arg := flag.Arg(0)
	switch arg {
	case "list", "all":
		// "all fig5" would silently ignore fig5 (or worse, run it
		// twice) — reject the combination outright.
		if flag.NArg() > 1 {
			fmt.Fprintf(os.Stderr, "cryowire: %q cannot be combined with other experiment IDs (got %v)\n",
				arg, flag.Args()[1:])
			usage()
			os.Exit(2)
		}
	}
	switch arg {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	case "all":
		// Keep going past failures: one broken experiment should not
		// hide the results of the other thirty. Failures are collected
		// and summarized, and the exit code is non-zero only at the end.
		// RunAll returns outcomes in sorted-ID order regardless of the
		// worker count, so serial and parallel output are byte-identical.
		var failed []string
		for _, oc := range experiments.RunAll(opt) {
			if oc.Err != nil {
				fmt.Fprintf(os.Stderr, "cryowire: %v\n", oc.Err)
				failed = append(failed, oc.ID)
				continue
			}
			if err := emit(oc.Report); err != nil {
				fmt.Fprintf(os.Stderr, "cryowire: %v\n", err)
				failed = append(failed, oc.ID)
			}
		}
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "cryowire: %d of %d experiments failed: %v\n",
				len(failed), len(experiments.IDs()), failed)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cryowire: all %d experiments completed\n", len(experiments.IDs()))
		return
	default:
		for _, id := range flag.Args() {
			if err := runOne(id, opt); err != nil {
				fmt.Fprintf(os.Stderr, "cryowire: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func runOne(id string, opt experiments.Options) error {
	r, err := experiments.Run(id, opt)
	if err != nil {
		return err
	}
	return emit(r)
}

// emit writes one report to stdout in the selected format.
func emit(r *experiments.Report) error {
	if jsonOut {
		b, err := r.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}
	fmt.Println(r.Render())
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: cryowire [-quick] [-json] [-parallel] [-workers n] <experiment>...
       cryowire list | all

"list" and "all" stand alone and cannot be combined with experiment
IDs. "all" runs every experiment, keeps going past failures, and exits
non-zero only after printing a failure summary.

-parallel fans the experiments (and their internal sweeps) out over a
bounded worker pool; every task seeds from its own configuration, so
the output is byte-identical to a serial run.

Experiments reproduce the CryoWire paper's tables and figures; see
DESIGN.md for the experiment index and EXPERIMENTS.md for results.
`)
}
