// Command cryowire runs the CryoWire reproduction experiments: every
// table and figure of the paper has an experiment ID (fig5, table3, …).
//
// Usage:
//
//	cryowire list             # show available experiments
//	cryowire fig23            # run one experiment
//	cryowire all              # run everything
//	cryowire -quick fig21     # shrunk sweeps for a fast look
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cryowire/internal/experiments"
)

var jsonOut bool

func main() {
	quick := flag.Bool("quick", false, "use shrunk sweeps and shorter simulations")
	flag.BoolVar(&jsonOut, "json", false, "emit reports as JSON instead of text tables")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	arg := flag.Arg(0)
	switch arg {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	case "all":
		for _, id := range experiments.IDs() {
			if err := runOne(id, opt); err != nil {
				fmt.Fprintf(os.Stderr, "cryowire: %v\n", err)
				os.Exit(1)
			}
		}
		return
	default:
		for _, id := range flag.Args() {
			if err := runOne(id, opt); err != nil {
				fmt.Fprintf(os.Stderr, "cryowire: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func runOne(id string, opt experiments.Options) error {
	r, err := experiments.Run(id, opt)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	}
	fmt.Println(r.Render())
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: cryowire [-quick] [-json] <experiment>...
       cryowire list | all

Experiments reproduce the CryoWire paper's tables and figures; see
DESIGN.md for the experiment index and EXPERIMENTS.md for results.
`)
}
