// Command benchsim is the perf-regression harness for the hot-path
// engine: it benchmarks the simulator cycle loop (mesh and bus), the
// transient circuit solver, and one end-to-end quick sweep of the full
// experiment registry, and writes the numbers to BENCH_sim.json.
// `make bench-sim` runs it; CI runs it non-blocking and uploads the
// JSON so regressions are visible per-commit. See DESIGN.md
// "Performance" for how to read the fields.
//
// Usage:
//
//	benchsim [-o BENCH_sim.json] [-batch N]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"cryowire/internal/circuit"
	"cryowire/internal/dse"
	"cryowire/internal/experiments"
	"cryowire/internal/phys"
	"cryowire/internal/shard"
	"cryowire/internal/sim"
	"cryowire/internal/stage"
	"cryowire/internal/wire"
	"cryowire/internal/workload"
)

// stepBench summarizes one cycle-loop benchmark.
type stepBench struct {
	// NSPerCycle is wall time per simulated NoC cycle.
	NSPerCycle float64 `json:"ns_per_cycle"`
	// AllocsPerCycle is heap allocations per simulated cycle; the pooled
	// engine holds this at (amortized) zero.
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
	Cycles         int64   `json:"cycles"`
}

type report struct {
	Cores     int    `json:"cores"`
	GoVersion string `json:"go_version"`

	// SystemStep is the flagship mesh design (CHP mesh / ferret);
	// BusStep the snooping CryoBus (streamcluster).
	SystemStep stepBench `json:"system_step"`
	BusStep    stepBench `json:"bus_step"`

	// SolverNSPerOp is one pooled Ladder.Delay50 solve of the
	// representative 40-segment repeater stage; allocs must be 0 after
	// warm-up.
	SolverNSPerOp     float64 `json:"solver_ns_per_op"`
	SolverAllocsPerOp float64 `json:"solver_allocs_per_op"`

	// QuickSweepSeconds is the end-to-end serial wall time of the full
	// experiment registry in quick mode, run on the legacy per-run
	// engine path so the number stays directly comparable to
	// BENCH_platform.json's serial_seconds and to prior releases.
	// QuickSweepFailed counts whole-experiment aborts;
	// QuickSweepLaneFailed counts per-lane simulation failures
	// (sim.LaneError) that poisoned only their own grid cell.
	QuickSweepSeconds    float64 `json:"quick_sweep_seconds"`
	QuickSweepFailed     int     `json:"quick_sweep_failed"`
	QuickSweepLaneFailed int     `json:"quick_sweep_lane_failed"`

	// BatchSweepSeconds is the wall time to run the quick sweep's
	// recorded system-simulation grid (the sim.System portion of the
	// sweep) through the lockstep batch runner with a fresh dedup
	// cache, at BatchLanes lanes per batch.
	BatchSweepSeconds float64 `json:"batch_sweep_seconds"`
	BatchLanes        int     `json:"batch_lanes"`

	// StageSweepSeconds is the wall time of one quick-mode staged sweep
	// (the three canonical 300K/77K/4K assignments simulated and priced
	// through the multi-stage cooling chain — what `cryowire stage
	// -quick` runs); StageSweepFailed is 1 when it aborted.
	StageSweepSeconds float64 `json:"stage_sweep_seconds"`
	StageSweepFailed  int     `json:"stage_sweep_failed"`

	// ShardSweepSeconds is the wall time of one quick-space grid DSE run
	// through the shard coordinator at ShardCount local shards —
	// partition, concurrent shard runs, journal merge and the replay
	// that proves byte-identity. ShardSweepFailed is 1 when it aborted.
	ShardSweepSeconds float64 `json:"shard_sweep_seconds"`
	ShardCount        int     `json:"shard_count"`
	ShardSweepFailed  int     `json:"shard_sweep_failed"`

	// SurrogateSweepSeconds is the wall time of one screen-then-verify
	// run over the quick space against a full-grid prior (grid run
	// included in the measurement: it is the prior's cost).
	// SurrogateSimsRun / SurrogateSimsSkipped split the space between
	// what the screen simulated and what the surrogate let it skip —
	// the savings the subsystem exists for. SurrogateSweepFailed is 1
	// when the sweep aborted.
	SurrogateSweepSeconds float64 `json:"surrogate_sweep_seconds"`
	SurrogateSimsRun      int     `json:"surrogate_sims_run"`
	SurrogateSimsSkipped  int     `json:"surrogate_sims_skipped"`
	SurrogateSweepFailed  int     `json:"surrogate_sweep_failed"`
}

// newSystem builds a warmed system exactly like the in-package Go
// benchmarks (internal/sim/bench_test.go) so the two harnesses agree.
func newSystem(mk func(*sim.Factory) sim.Design, wl string) (*sim.System, error) {
	p, err := workload.ByName(wl)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(mk(sim.NewFactory()), p, sim.Config{WarmupCycles: 1, MeasureCycles: 1, Seed: 1})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 4000; i++ {
		s.Step()
	}
	return s, nil
}

// benchStep measures the steady-state cycle loop of one design.
func benchStep(mk func(*sim.Factory) sim.Design, wl string) (stepBench, error) {
	s, err := newSystem(mk, wl)
	if err != nil {
		return stepBench{}, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	})
	return stepBench{
		NSPerCycle:     float64(r.NsPerOp()),
		AllocsPerCycle: float64(r.AllocsPerOp()),
		BytesPerCycle:  float64(r.AllocedBytesPerOp()),
		Cycles:         int64(r.N),
	}, nil
}

func run(out string, batch int) error {
	rep := report{Cores: runtime.NumCPU(), GoVersion: runtime.Version()}

	var err error
	rep.SystemStep, err = benchStep(func(f *sim.Factory) sim.Design { return f.CHPMesh() }, "ferret")
	if err != nil {
		return fmt.Errorf("system step: %v", err)
	}
	rep.BusStep, err = benchStep(func(f *sim.Factory) sim.Design { return f.CryoSPCryoBus() }, "streamcluster")
	if err != nil {
		return fmt.Errorf("bus step: %v", err)
	}

	// Solver: the representative repeater-stage ladder SimulateLinkDelay
	// solves thousands of times per sweep (same shape as the in-package
	// BenchmarkDelay50).
	ladder := circuit.WireLadder(
		wire.Line{Spec: wire.Global, LengthMM: 1.0, Driver: wire.CryoBusLink().Driver, DriverSize: 1},
		wire.At77(), phys.DefaultMOSFET(), 40)
	if _, err := ladder.Delay50(); err != nil {
		return fmt.Errorf("solver: %v", err)
	}
	sr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ladder.Delay50(); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.SolverNSPerOp = float64(sr.NsPerOp())
	rep.SolverAllocsPerOp = float64(sr.AllocsPerOp())

	// End-to-end: the full registry, serial, quick mode, forced onto
	// the legacy per-run engine path (Batch = -1) so the number keeps
	// meaning the same thing release over release. The observer records
	// every system-simulation the sweep asked for; the batch sweep
	// below re-runs exactly that grid through the lockstep runner.
	var mu sync.Mutex
	var specs []sim.LaneSpec
	opt := experiments.QuickOptions()
	opt.Batch = -1
	opt.SpecObserver = func(sp sim.LaneSpec) {
		mu.Lock()
		specs = append(specs, sp)
		mu.Unlock()
	}
	var firstErr error
	start := time.Now()
	for _, oc := range experiments.RunAll(opt) {
		if oc.Err != nil {
			fmt.Fprintf(os.Stderr, "benchsim: %s: %v\n", oc.ID, oc.Err)
			var le *sim.LaneError
			if errors.As(oc.Err, &le) {
				rep.QuickSweepLaneFailed++
			} else {
				rep.QuickSweepFailed++
			}
			if firstErr == nil {
				firstErr = oc.Err
			}
		}
	}
	rep.QuickSweepSeconds = time.Since(start).Seconds()

	// Batch sweep: the recorded grid through the lockstep batch runner
	// with a fresh dedup cache — the headline batching number. Results
	// are bit-identical to the per-run sweep's, so only time and
	// failures are reported.
	runner := &sim.BatchRunner{Lanes: batch, Cache: sim.NewResultCache()}
	rep.BatchLanes = runner.LanesFor(len(specs))
	start = time.Now()
	_, errs := runner.RunCtx(context.Background(), specs)
	rep.BatchSweepSeconds = time.Since(start).Seconds()
	for _, lerr := range errs {
		if lerr == nil {
			continue
		}
		fmt.Fprintf(os.Stderr, "benchsim: batch sweep: %v\n", lerr)
		rep.QuickSweepLaneFailed++
		if firstErr == nil {
			firstErr = lerr
		}
	}

	// Staged sweep: the multi-stage cooling-chain study end to end at
	// quick run lengths, serial (workers = lanes = default), so the
	// number tracks the stage subsystem's whole path: simulation,
	// cable heatloads and per-stage Carnot lifts.
	start = time.Now()
	if _, serr := stage.Sweep(context.Background(), nil, stage.SweepOptions{Sim: experiments.QuickOptions().Sim}); serr != nil {
		fmt.Fprintf(os.Stderr, "benchsim: stage sweep: %v\n", serr)
		rep.StageSweepFailed = 1
		if firstErr == nil {
			firstErr = serr
		}
	}
	rep.StageSweepSeconds = time.Since(start).Seconds()

	// Shard sweep: the quick design space through the shard coordinator
	// at two local shards — the distribution overhead (partition, merge,
	// replay) on top of the raw evaluations.
	rep.ShardCount = 2
	start = time.Now()
	if _, serr := shard.Run(context.Background(), dse.Config{
		Space:    dse.DefaultSpace(true),
		Strategy: dse.StrategyGrid,
		Sim:      experiments.QuickOptions().Sim,
	}, shard.Options{Shards: rep.ShardCount}); serr != nil {
		fmt.Fprintf(os.Stderr, "benchsim: shard sweep: %v\n", serr)
		rep.ShardSweepFailed = 1
		if firstErr == nil {
			firstErr = serr
		}
	}
	rep.ShardSweepSeconds = time.Since(start).Seconds()

	// Surrogate sweep: grid the quick space into a journal, then screen
	// the same space against that prior — the grid-vs-screen comparison
	// the screen strategy's simulate savings are quoted from.
	start = time.Now()
	if dir, derr := os.MkdirTemp("", "benchsim-surrogate-*"); derr != nil {
		fmt.Fprintf(os.Stderr, "benchsim: surrogate sweep: %v\n", derr)
		rep.SurrogateSweepFailed = 1
		if firstErr == nil {
			firstErr = derr
		}
	} else {
		defer os.RemoveAll(dir)
		prior := dir + "/grid.jsonl"
		gridCfg := dse.Config{
			Space:    dse.DefaultSpace(true),
			Strategy: dse.StrategyGrid,
			Sim:      experiments.QuickOptions().Sim,
			Journal:  prior,
		}
		screenCfg := gridCfg
		screenCfg.Strategy = dse.StrategyScreen
		screenCfg.Journal = ""
		screenCfg.Priors = []string{prior}
		gridRes, gerr := dse.Run(context.Background(), gridCfg)
		var screenRes *dse.Result
		if gerr == nil {
			screenRes, gerr = dse.Run(context.Background(), screenCfg)
		}
		if gerr != nil {
			fmt.Fprintf(os.Stderr, "benchsim: surrogate sweep: %v\n", gerr)
			rep.SurrogateSweepFailed = 1
			if firstErr == nil {
				firstErr = gerr
			}
		} else {
			rep.SurrogateSimsRun = screenRes.Evaluated
			rep.SurrogateSimsSkipped = gridRes.Evaluated - screenRes.Evaluated
		}
	}
	rep.SurrogateSweepSeconds = time.Since(start).Seconds()

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s", b)
	if firstErr != nil {
		return fmt.Errorf("%d experiments and %d lanes failed during the sweeps; first: %w",
			rep.QuickSweepFailed, rep.QuickSweepLaneFailed, firstErr)
	}
	return nil
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output file")
	batch := flag.Int("batch", 0, "lanes per lockstep batch in the batch sweep (0 = auto)")
	flag.Parse()
	if err := run(*out, *batch); err != nil {
		fmt.Fprintf(os.Stderr, "benchsim: %v\n", err)
		os.Exit(1)
	}
}
