module cryowire

go 1.22
