// Benchmarks: one per paper table/figure with data, so
// `go test -bench=.` regenerates the whole evaluation. The bench
// harness uses quick options (shrunk sweeps); the cryowire CLI runs
// the full-length versions.
package cryowire

import (
	"testing"

	"cryowire/internal/circuit"
	"cryowire/internal/noc"
	"cryowire/internal/phys"
	"cryowire/internal/pipeline"
	"cryowire/internal/wire"
)

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opt := QuickOptions()
	for i := 0; i < b.N; i++ {
		r, err := RunExperiment(id, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatalf("%s: empty report", id)
		}
	}
}

// --- pipeline / wire figures ------------------------------------------------

func BenchmarkFig2CriticalPathBreakdown(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig5WireSpeedups(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkFig9ModelValidation(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10LinkValidation(b *testing.B)       { benchExperiment(b, "fig10") }
func BenchmarkFig12StageDelays300K(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13StageDelays77K(b *testing.B)       { benchExperiment(b, "fig13") }
func BenchmarkFig14Superpipelined(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkTable1ForwardingGeometry(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkTable2ValidationHardware(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3CoreSpecs(b *testing.B)           { benchExperiment(b, "table3") }
func BenchmarkTable4EvaluationSetup(b *testing.B)     { benchExperiment(b, "table4") }

// --- NoC figures -------------------------------------------------------------

func BenchmarkFig16L3LatencyBreakdown(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig18BusLoadLatency(b *testing.B)     { benchExperiment(b, "fig18") }
func BenchmarkFig20BusBreakdown(b *testing.B)       { benchExperiment(b, "fig20") }
func BenchmarkFig21NoCLoadLatency(b *testing.B)     { benchExperiment(b, "fig21") }
func BenchmarkFig25TrafficPatterns(b *testing.B)    { benchExperiment(b, "fig25") }
func BenchmarkFig26HybridCryoBus256(b *testing.B)   { benchExperiment(b, "fig26") }

// --- system figures ----------------------------------------------------------

func BenchmarkFig3CPIStacks(b *testing.B)         { benchExperiment(b, "fig3") }
func BenchmarkFig17BusVsMeshVsIdeal(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkFig22NoCPower(b *testing.B)         { benchExperiment(b, "fig22") }
func BenchmarkFig23SystemComparison(b *testing.B) { benchExperiment(b, "fig23") }
func BenchmarkFig24SPECPrefetch(b *testing.B)     { benchExperiment(b, "fig24") }
func BenchmarkFig27TemperatureSweep(b *testing.B) { benchExperiment(b, "fig27") }

// --- micro-benchmarks of the substrates (ablation-grade) ---------------------

// BenchmarkWireRepeaterOptimizer measures the discrete repeater search.
func BenchmarkWireRepeaterOptimizer(b *testing.B) {
	m := phys.DefaultMOSFET()
	l := wire.NewLine(wire.Global, 6.22, 1)
	for i := 0; i < b.N; i++ {
		wire.OptimizeRepeaters(l, phys.Nominal45, m)
	}
}

// BenchmarkTransientSolver measures the Hspice-lite RC integration.
func BenchmarkTransientSolver(b *testing.B) {
	m := phys.DefaultMOSFET()
	l := wire.NewLine(wire.Forwarding, wire.ForwardingWireLengthMM, 50)
	for i := 0; i < b.N; i++ {
		if _, err := circuit.SimulateWireDelay(l, phys.Nominal45, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuperpipelineDerivation measures the §4.4 methodology.
func BenchmarkSuperpipelineDerivation(b *testing.B) {
	md := pipeline.NewModel(phys.DefaultMOSFET())
	for i := 0; i < b.N; i++ {
		md.Superpipeline(pipeline.BOOM(), pipeline.At77())
	}
}

// BenchmarkMeshCycle measures raw cycle-level mesh simulation speed.
func BenchmarkMeshCycle(b *testing.B) {
	m := noc.NewMesh(64, noc.MeshTiming(phys.Nominal45, phys.DefaultMOSFET(), 1))
	var id int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%8 == 0 {
			p := &noc.Packet{ID: id, Src: int(id) % 64, Dst: int(id+31) % 64, Flits: 1, InjectedAt: m.Cycle()}
			id++
			m.TryInject(p)
		}
		m.Step()
	}
}

// BenchmarkCryoBusCycle measures raw bus simulation speed.
func BenchmarkCryoBusCycle(b *testing.B) {
	bus := noc.NewCryoBus(64, noc.BusTiming(noc.Op77(), phys.DefaultMOSFET()))
	var id int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%8 == 0 {
			p := &noc.Packet{ID: id, Src: int(id) % 64, Dst: noc.Broadcast, Flits: 1, InjectedAt: bus.Cycle()}
			id++
			bus.TryInject(p)
		}
		bus.Step()
	}
}

// BenchmarkFullSystemSimulation measures end-to-end simulated cycles/s
// of the flagship design.
func BenchmarkFullSystemSimulation(b *testing.B) {
	w, err := WorkloadByName("ferret")
	if err != nil {
		b.Fatal(err)
	}
	d := EvaluationDesigns()[4] // CryoSP (77K, CryoBus)
	cfg := SimConfig{WarmupCycles: 500, MeasureCycles: 2000, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(d, w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation and cross-check benches ----------------------------------------

func BenchmarkFig22ActivityPower(b *testing.B)     { benchExperiment(b, "fig22-activity") }
func BenchmarkTable4DerivedLatencies(b *testing.B) { benchExperiment(b, "table4-derived") }
func BenchmarkAblSuperpipeline(b *testing.B)       { benchExperiment(b, "abl-superpipeline") }
func BenchmarkAblTopology(b *testing.B)            { benchExperiment(b, "abl-topology") }
func BenchmarkAblDynamicLinks(b *testing.B)        { benchExperiment(b, "abl-dynlinks") }
func BenchmarkAblSnoopBenefit(b *testing.B)        { benchExperiment(b, "abl-snoop") }
func BenchmarkAblFrontendPredictor(b *testing.B)   { benchExperiment(b, "abl-frontend") }
func BenchmarkAblAddressInterleaving(b *testing.B) { benchExperiment(b, "abl-interleave") }
