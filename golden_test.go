// Golden determinism gate for the hot-path engine: the timing-wheel
// scheduler, the pooled transaction/packet/event allocators and the
// reusable circuit solver are all rewrites of cycle-exact code, so the
// outputs they feed — experiment reports and the DSE frontier — must be
// byte-identical to the pre-rewrite implementation. The golden bytes in
// testdata/golden_quick.json were generated from the map-based
// scheduler and the allocating solver; any divergence here means the
// optimization changed simulated behavior, not just its speed.
//
// Regenerate (only when an intentional model change lands) with:
//
//	go test -run TestGoldenQuickOutputs -update-golden .
package cryowire

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_quick.json from the current implementation")

// goldenExperiments is the subset of the registry that exercises every
// rewritten hot path: fig3/fig17/fig23 drive sim.System.Step (mesh,
// bus, ideal and both coherence engines), fig10 drives the circuit
// solver's Delay50/SimulateLinkDelay, and fig21 drives the raw NoC
// cycle loops.
var goldenExperiments = []string{"fig3", "fig10", "fig17", "fig21", "fig23"}

// goldenBytes renders the canonical quick-mode output the golden file
// pins: the JSON reports of the subset experiments followed by the JSON
// of a quick grid DSE run (seed 1, serial). batch selects the engine
// path for the experiments (see Options.Batch: 0 auto-batched, >0
// forced lane count, <0 legacy per-run) and lanes the DSE batch width
// (see DSEConfig.BatchLanes) — every combination must produce the same
// bytes, which is exactly what the golden variants below gate.
func goldenBytes(t *testing.T, batch, lanes int) []byte {
	t.Helper()
	var buf bytes.Buffer
	opt := QuickOptions()
	opt.Workers = 1
	opt.Batch = batch
	for _, id := range goldenExperiments {
		r, err := RunExperiment(id, opt)
		if err != nil {
			t.Fatalf("experiment %s: %v", id, err)
		}
		b, err := r.JSON()
		if err != nil {
			t.Fatalf("experiment %s: %v", id, err)
		}
		fmt.Fprintf(&buf, "== %s ==\n", id)
		buf.Write(b)
		buf.WriteByte('\n')
	}
	res, err := RunDSE(context.Background(), DSEConfig{
		Space:      DefaultDSESpace(true),
		Strategy:   "grid",
		Seed:       1,
		Sim:        QuickOptions().Sim,
		Workers:    1,
		BatchLanes: lanes,
	})
	if err != nil {
		t.Fatalf("dse grid: %v", err)
	}
	b, err := res.JSON()
	if err != nil {
		t.Fatalf("dse grid: %v", err)
	}
	buf.WriteString("== dse-grid ==\n")
	buf.Write(b)
	buf.WriteByte('\n')
	return buf.Bytes()
}

// TestQuickOutputsDeterministic asserts run-to-run determinism inside
// one process: two fresh evaluations of the same experiment must render
// byte-identical JSON. Combined with make check's -shuffle=on this
// catches any hidden ordering dependency (map iteration, pool reuse
// order) the golden file alone could mask.
func TestQuickOutputsDeterministic(t *testing.T) {
	run := func() []byte {
		opt := QuickOptions()
		opt.Workers = 1
		r, err := RunExperiment("fig3", opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatalf("two fig3 runs differ:\n first: %q\nsecond: %q", a, b)
	}
}

// TestGoldenQuickOutputs gates the default engine path (auto-batched
// experiments, auto-lane DSE) against the golden bytes. The PerRun and
// BatchOfOne variants below gate the legacy path and the degenerate
// batch against the same file, so all three engines are pinned to one
// set of bytes.
func TestGoldenQuickOutputs(t *testing.T) {
	path := filepath.Join("testdata", "golden_quick.json")
	got := goldenBytes(t, 0, 0)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden bytes to %s", len(got), path)
		return
	}
	compareGolden(t, got)
}

// TestGoldenQuickOutputsPerRun gates the legacy per-run engine path
// (Batch = -1, single-lane DSE batches) against the same golden file:
// the batching refactor must leave the original path byte-exact.
func TestGoldenQuickOutputsPerRun(t *testing.T) {
	if *updateGolden {
		t.Skip("golden file is written by TestGoldenQuickOutputs")
	}
	compareGolden(t, goldenBytes(t, -1, -1))
}

// TestGoldenQuickOutputsBatchOfOne gates the degenerate batch — one
// lane per batch — against the same golden file: a batch of one must
// equal a plain run bit for bit.
func TestGoldenQuickOutputsBatchOfOne(t *testing.T) {
	if *updateGolden {
		t.Skip("golden file is written by TestGoldenQuickOutputs")
	}
	compareGolden(t, goldenBytes(t, 1, 1))
}

// compareGolden diffs got against testdata/golden_quick.json, failing
// with the first divergent byte and its context.
func compareGolden(t *testing.T, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden_quick.json")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		// Find the first divergence for a useful failure message.
		n := len(got)
		if len(want) < n {
			n = len(want)
		}
		at := n
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				at = i
				break
			}
		}
		lo := at - 80
		if lo < 0 {
			lo = 0
		}
		hiG, hiW := at+80, at+80
		if hiG > len(got) {
			hiG = len(got)
		}
		if hiW > len(want) {
			hiW = len(want)
		}
		t.Fatalf("output diverged from golden at byte %d (got %d bytes, want %d):\n got: …%q…\nwant: …%q…",
			at, len(got), len(want), got[lo:hiG], want[lo:hiW])
	}
}
