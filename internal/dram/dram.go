// Package dram models main-memory timing: banked DRAM devices with
// row-buffer management and per-bank occupancy, for the two memory
// technologies of Table 4 — DDR4-2400 at 300 K and a CLL-DRAM-like
// cryogenic part at 77 K (Lee et al. [37]: reduced wordline/bitline
// resistance collapses the core timings, giving the 3.8× faster random
// access the paper quotes).
package dram

import (
	"fmt"
	"math"
)

// Timing holds the device timing parameters in nanoseconds.
type Timing struct {
	Name string
	// Core timings.
	TRCD float64 // activate → column command
	TCAS float64 // column command → first data
	TRP  float64 // precharge
	TRAS float64 // activate → precharge (row restore)
	// TBurst is the data-burst transfer time for one cache line.
	TBurst float64
	// TCtrl is the controller + channel + PHY overhead per access.
	TCtrl float64
}

// DDR4 returns the 300 K DDR4-2400 timing (17-17-17 at 1200 MHz plus
// controller overhead, calibrated so the random-access latency matches
// Table 4's 60.32 ns).
func DDR4() Timing {
	return Timing{
		Name: "DDR4-2400",
		TRCD: 14.16, TCAS: 14.16, TRP: 14.16, TRAS: 32,
		TBurst: 3.33, TCtrl: 21.5,
	}
}

// CLLDRAM returns the 77 K cryogenic DRAM timing: the cold wordlines,
// bitlines and transistors let every core timing shrink, calibrated to
// Table 4's 15.84 ns random access (3.8× faster than DDR4).
func CLLDRAM() Timing {
	d := DDR4()
	const k = 3.808
	return Timing{
		Name: "CLL-DRAM (77K)",
		TRCD: d.TRCD / k, TCAS: d.TCAS / k, TRP: d.TRP / k, TRAS: d.TRAS / k,
		TBurst: d.TBurst / k, TCtrl: d.TCtrl / k,
	}
}

// RandomAccessNS returns the average closed-row random access latency:
// controller + activate + column + burst, with half the accesses
// finding the bank needing a precharge first.
func (t Timing) RandomAccessNS() float64 {
	return t.TCtrl + 0.5*t.TRP + t.TRCD + t.TCAS + t.TBurst
}

// AccessKind classifies one access's row-buffer outcome.
type AccessKind int

// Row-buffer outcomes.
const (
	RowHit AccessKind = iota
	RowMiss
	RowConflict
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case RowHit:
		return "hit"
	case RowMiss:
		return "miss"
	case RowConflict:
		return "conflict"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// Channel is one memory channel with open-page banks.
type Channel struct {
	timing Timing
	banks  []bank
	// RowBytes sets the row-buffer span for address mapping.
	rowBytes uint64
}

type bank struct {
	openRow int64 // -1 = precharged
	busyNS  float64
	// activatedAt tracks tRAS: a row must stay open long enough to
	// restore before precharge.
	activatedAt float64
}

// NewChannel builds a channel with the given bank count.
func NewChannel(t Timing, banks int) *Channel {
	if banks < 1 {
		banks = 1
	}
	ch := &Channel{timing: t, banks: make([]bank, banks), rowBytes: 2048}
	for i := range ch.banks {
		ch.banks[i].openRow = -1
	}
	return ch
}

// mapAddr splits an address into (bank, row).
func (c *Channel) mapAddr(addr uint64) (int, int64) {
	line := addr / 64
	b := int(line % uint64(len(c.banks)))
	row := int64(addr / c.rowBytes / uint64(len(c.banks)))
	return b, row
}

// Access issues a read at time nowNS and returns its completion time
// and row-buffer outcome. Per-bank occupancy serializes conflicting
// accesses (FR-FCFS is approximated by in-order per-bank service).
func (c *Channel) Access(addr uint64, nowNS float64) (doneNS float64, kind AccessKind) {
	bi, row := c.mapAddr(addr)
	b := &c.banks[bi]
	start := math.Max(nowNS, b.busyNS)
	t := c.timing
	var lat float64
	switch {
	case b.openRow == row:
		kind = RowHit
		lat = t.TCAS + t.TBurst
	case b.openRow == -1:
		kind = RowMiss
		lat = t.TRCD + t.TCAS + t.TBurst
		b.activatedAt = start
	default:
		kind = RowConflict
		// Respect tRAS for the currently open row before precharging.
		restore := b.activatedAt + t.TRAS
		if restore > start {
			start = restore
		}
		lat = t.TRP + t.TRCD + t.TCAS + t.TBurst
		b.activatedAt = start + t.TRP
	}
	b.openRow = row
	done := start + lat
	// The bank is busy until the access data phase completes.
	b.busyNS = done
	return done + t.TCtrl, kind
}

// Stats summarizes a channel's row-buffer behaviour for tests and
// experiments.
type Stats struct {
	Hits, Misses, Conflicts int64
}

// Memory is a multi-channel main memory front end.
type Memory struct {
	Channels []*Channel
	stats    Stats
}

// NewMemory builds the default organization: nChannels × nBanks.
func NewMemory(t Timing, nChannels, nBanks int) *Memory {
	if nChannels < 1 {
		nChannels = 1
	}
	m := &Memory{}
	for i := 0; i < nChannels; i++ {
		m.Channels = append(m.Channels, NewChannel(t, nBanks))
	}
	return m
}

// Access routes an address to its channel and issues the read.
func (m *Memory) Access(addr uint64, nowNS float64) float64 {
	ch := m.Channels[(addr/64)%uint64(len(m.Channels))]
	done, kind := ch.Access(addr, nowNS)
	switch kind {
	case RowHit:
		m.stats.Hits++
	case RowMiss:
		m.stats.Misses++
	default:
		m.stats.Conflicts++
	}
	return done
}

// Stats returns accumulated row-buffer statistics.
func (m *Memory) Stats() Stats { return m.stats }
