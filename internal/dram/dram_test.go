package dram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTable4RandomAccessLatencies(t *testing.T) {
	// Table 4: DDR4-2400 random access 60.32 ns; 77 K CLL-DRAM 15.84 ns.
	if got := DDR4().RandomAccessNS(); math.Abs(got-60.32) > 1.0 {
		t.Errorf("DDR4 random access = %v ns, want ≈60.32", got)
	}
	if got := CLLDRAM().RandomAccessNS(); math.Abs(got-15.84) > 0.5 {
		t.Errorf("CLL-DRAM random access = %v ns, want ≈15.84", got)
	}
	ratio := DDR4().RandomAccessNS() / CLLDRAM().RandomAccessNS()
	if math.Abs(ratio-3.81) > 0.05 {
		t.Errorf("cryogenic DRAM speedup = %v, want ≈3.8", ratio)
	}
}

func TestRowBufferOutcomes(t *testing.T) {
	ch := NewChannel(DDR4(), 8)
	// Cold access: row miss (bank precharged).
	done1, kind1 := ch.Access(0x1000, 0)
	if kind1 != RowMiss {
		t.Errorf("first access = %v, want miss", kind1)
	}
	// Same bank (8-line stride), same row: hit, and faster.
	done2, kind2 := ch.Access(0x1000+8*64, done1)
	if kind2 != RowHit {
		t.Errorf("same-row access = %v, want hit", kind2)
	}
	if done2-done1 >= done1-0 {
		t.Errorf("row hit (%v ns) not faster than the opening miss (%v ns)", done2-done1, done1)
	}
	// Different row in the same bank: conflict, slowest.
	farAddr := uint64(0x1000 + 8*2048*16) // same bank, different row
	done3, kind3 := ch.Access(farAddr, done2)
	if kind3 != RowConflict {
		t.Errorf("row-conflict access = %v, want conflict", kind3)
	}
	if done3-done2 <= done2-done1 {
		t.Errorf("conflict (%v) should cost more than a hit (%v)", done3-done2, done2-done1)
	}
}

func TestBankSerialization(t *testing.T) {
	ch := NewChannel(DDR4(), 1) // single bank: everything collides
	var last float64
	for i := 0; i < 8; i++ {
		done, _ := ch.Access(uint64(i)*64, 0) // all issued at t=0
		if done <= last {
			t.Fatalf("bank service not serialized: access %d done at %v after %v", i, done, last)
		}
		last = done
	}
}

func TestChannelsParallel(t *testing.T) {
	// Two accesses to different channels issued together should not
	// serialize.
	m := NewMemory(DDR4(), 2, 1)
	d1 := m.Access(0, 0)
	d2 := m.Access(64, 0) // next line → other channel
	if math.Abs(d1-d2) > 1e-9 {
		t.Errorf("independent channels served at %v and %v, want equal", d1, d2)
	}
}

func TestStreamingFavorsRowHits(t *testing.T) {
	m := NewMemory(CLLDRAM(), 4, 8)
	now := 0.0
	for i := 0; i < 512; i++ {
		now = m.Access(uint64(i)*64, now)
	}
	st := m.Stats()
	if st.Hits <= st.Conflicts {
		t.Errorf("sequential stream: hits %d should dominate conflicts %d", st.Hits, st.Conflicts)
	}
}

func TestRandomTrafficLatencyNearCalibration(t *testing.T) {
	// The average random-access latency of the bank model should stay
	// near the analytic calibration value at low load.
	mem := NewMemory(DDR4(), 8, 8)
	rng := rand.New(rand.NewSource(4))
	var sum float64
	const n = 2000
	now := 0.0
	for i := 0; i < n; i++ {
		addr := uint64(rng.Intn(1<<24) * 64)
		done := mem.Access(addr, now)
		sum += done - now
		now += 100 // low offered load: one access per 100 ns
	}
	avg := sum / n
	want := DDR4().RandomAccessNS()
	if math.Abs(avg-want)/want > 0.25 {
		t.Errorf("random traffic avg latency = %v ns, want near %v", avg, want)
	}
}

func TestAccessMonotoneProperty(t *testing.T) {
	// Completion time never precedes issue time, for any address mix.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMemory(CLLDRAM(), 2, 4)
		now := 0.0
		for i := 0; i < 50; i++ {
			addr := uint64(rng.Intn(1<<20)) * 64
			done := m.Access(addr, now)
			if done < now {
				return false
			}
			now += rng.Float64() * 30
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAccessKindString(t *testing.T) {
	for k, want := range map[AccessKind]string{RowHit: "hit", RowMiss: "miss", RowConflict: "conflict"} {
		if k.String() != want {
			t.Errorf("%d = %q, want %q", int(k), k.String(), want)
		}
	}
	if AccessKind(9).String() == "" {
		t.Error("unknown kind should stringify")
	}
}
