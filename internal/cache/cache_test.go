package cache

import (
	"math"
	"testing"
	"testing/quick"

	"cryowire/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	good := Config{Name: "ok", SizeKB: 32, Assoc: 8, LineBytes: 64}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "zero", SizeKB: 0, Assoc: 8, LineBytes: 64},
		{Name: "assoc", SizeKB: 32, Assoc: 0, LineBytes: 64},
		{Name: "line", SizeKB: 32, Assoc: 8, LineBytes: 0},
		{Name: "npo2", SizeKB: 48, Assoc: 8, LineBytes: 64},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%s) should fail", c.Name)
		}
	}
}

func TestHitAfterFill(t *testing.T) {
	c, err := New(Config{Name: "t", SizeKB: 32, Assoc: 8, LineBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("second access missed")
	}
	// Same line, different byte: still a hit.
	if !c.Access(0x1038) {
		t.Error("same-line access missed")
	}
	if c.MissRate() >= 0.5 {
		t.Errorf("miss rate %v, want 1/3", c.MissRate())
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 2-set micro cache: sets = 2*64*2/... pick SizeKB so sets=2:
	// 2 sets × 2 ways × 64B = 256B.
	c, err := New(Config{Name: "micro", SizeKB: 1, Assoc: 8, LineBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	// sets = 1024/64/8 = 2. Fill set 0 (even line addresses) beyond
	// capacity and verify LRU order.
	addrs := func(i int) uint64 { return uint64(i) * 64 * 2 } // all map to set 0
	for i := 0; i < 8; i++ {
		c.Access(addrs(i))
	}
	c.Access(addrs(0)) // touch 0: now 1 is LRU
	c.Access(addrs(8)) // evicts 1
	if !c.Access(addrs(0)) {
		t.Error("recently touched line was evicted (not LRU)")
	}
	if c.Access(addrs(1)) {
		t.Error("LRU line survived eviction")
	}
}

func TestInvalidate(t *testing.T) {
	c, _ := New(Config{Name: "t", SizeKB: 32, Assoc: 8, LineBytes: 64})
	c.Access(0x4000)
	if !c.Invalidate(0x4000) {
		t.Error("invalidate missed a present line")
	}
	if c.Access(0x4000) {
		t.Error("access hit after invalidate")
	}
	if c.Invalidate(0x9999999) {
		t.Error("invalidate of an absent line reported present")
	}
}

func TestSmallWorkingSetFitsL1(t *testing.T) {
	h, err := NewHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	st := NewStream(1, 256, 1000, 1<<20, 0, 0, 200) // hot-only: 16KB
	for i := 0; i < 100000; i++ {
		h.Access(st.Next())
	}
	h.Retire(500_000)
	if h.L1MPKI() > 1.0 {
		t.Errorf("16KB working set should live in the 32KB L1: L1MPKI=%v", h.L1MPKI())
	}
}

func TestCalibrationRealizesProfiles(t *testing.T) {
	// The bridge claim: for each PARSEC profile, a concrete stream
	// through real L1/L2 arrays reproduces the profile's L1/L2 MPKIs.
	for _, p := range workload.Parsec() {
		if p.L1MPKI < p.L2MPKI {
			t.Fatalf("%s: inconsistent profile (L1MPKI < L2MPKI)", p.Name)
		}
		res, err := CalibrateStream(3, p.L1MPKI, p.L2MPKI, 300, 400)
		if err != nil {
			t.Fatal(err)
		}
		// Relative 30 % tolerance with an absolute floor of 0.6 MPKI —
		// tiny targets (blackscholes at 0.9) sit near the cold-pollution
		// noise floor of the real arrays.
		tol := func(want float64) float64 { return math.Max(0.30*want, 0.6) }
		if d := math.Abs(res.GotL2MPKI - p.L2MPKI); d > tol(p.L2MPKI) {
			t.Errorf("%s: stream L2MPKI %v vs profile %v", p.Name, res.GotL2MPKI, p.L2MPKI)
		}
		if d := math.Abs(res.GotL1MPKI - p.L1MPKI); d > tol(p.L1MPKI) {
			t.Errorf("%s: stream L1MPKI %v vs profile %v", p.Name, res.GotL1MPKI, p.L1MPKI)
		}
	}
}

func TestMissRateMonotoneInWorkingSet(t *testing.T) {
	// Growing the hot region beyond the L1 capacity must raise the L1
	// miss rate.
	rate := func(hotLines int) float64 {
		c, _ := New(Config{Name: "t", SizeKB: 32, Assoc: 8, LineBytes: 64})
		st := NewStream(5, hotLines, 1, 1, 0, 0, 100)
		for i := 0; i < 60000; i++ {
			c.Access(st.Next())
		}
		return c.MissRate()
	}
	small := rate(256)  // 16KB
	large := rate(2048) // 128KB
	if large <= small {
		t.Errorf("128KB set miss rate %v not above 16KB set %v in a 32KB cache", large, small)
	}
}

func TestAccessCountsProperty(t *testing.T) {
	f := func(seed int64) bool {
		c, err := New(Config{Name: "q", SizeKB: 4, Assoc: 4, LineBytes: 64})
		if err != nil {
			return false
		}
		st := NewStream(seed, 64, 256, 1024, 0.3, 0.1, 100)
		for i := 0; i < 500; i++ {
			c.Access(st.Next())
		}
		return c.Misses() <= c.Accesses() && c.MissRate() >= 0 && c.MissRate() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
