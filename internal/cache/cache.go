// Package cache implements set-associative cache arrays with true LRU
// replacement, plus a synthetic address-stream generator. The
// full-system simulator drives its private-cache behaviour from the
// statistical workload profiles (DESIGN.md substitution #4); this
// package closes the loop by showing those profiles are *realizable*:
// for each workload there is a concrete address stream whose measured
// miss rates through real L1/L2 arrays match the profile (see
// CalibrateStream and the tests).
package cache

import (
	"fmt"
	"math/rand"
)

// Config sizes one cache level.
type Config struct {
	Name      string
	SizeKB    int
	Assoc     int
	LineBytes int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.SizeKB <= 0 || c.Assoc <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("cache: non-positive geometry in %+v", c)
	}
	sets := c.SizeKB * 1024 / c.LineBytes / c.Assoc
	if sets == 0 {
		return fmt.Errorf("cache: %s has zero sets", c.Name)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: %s set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Cache is one set-associative array with true-LRU replacement.
type Cache struct {
	cfg  Config
	sets [][]line
	// clock drives LRU ordering and survives stat resets.
	clock int64
	// stats
	accesses, misses int64
}

type line struct {
	tag   uint64
	valid bool
	// lru is a per-set timestamp; larger = more recent.
	lru int64
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nSets := cfg.SizeKB * 1024 / cfg.LineBytes / cfg.Assoc
	sets := make([][]line, nSets)
	backing := make([]line, nSets*cfg.Assoc)
	for i := range sets {
		sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return &Cache{cfg: cfg, sets: sets}, nil
}

// Access looks up (and on miss, fills) the line holding addr. It
// returns true on a hit.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	c.clock++
	lineAddr := addr / uint64(c.cfg.LineBytes)
	set := c.sets[lineAddr%uint64(len(c.sets))]
	tag := lineAddr / uint64(len(c.sets))
	var victim *line
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			l.lru = c.clock
			return true
		}
		if victim == nil || !l.valid || (victim.valid && l.lru < victim.lru) {
			if victim == nil || victim.valid {
				victim = l
			}
		}
	}
	c.misses++
	victim.valid = true
	victim.tag = tag
	victim.lru = c.clock
	return false
}

// ResetStats zeroes the hit/miss counters while keeping the arrays
// warm (for warmup-then-measure methodology).
func (c *Cache) ResetStats() { c.accesses, c.misses = 0, 0 }

// Invalidate drops the line holding addr (coherence action); reports
// whether it was present.
func (c *Cache) Invalidate(addr uint64) bool {
	lineAddr := addr / uint64(c.cfg.LineBytes)
	set := c.sets[lineAddr%uint64(len(c.sets))]
	tag := lineAddr / uint64(len(c.sets))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].valid = false
			return true
		}
	}
	return false
}

// MissRate returns misses/accesses so far.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Accesses returns the access count.
func (c *Cache) Accesses() int64 { return c.accesses }

// Misses returns the miss count.
func (c *Cache) Misses() int64 { return c.misses }

// Hierarchy chains an L1 and L2 (private levels of the target system).
type Hierarchy struct {
	L1, L2 *Cache
	// memory accesses per kilo-instruction drive MPKI conversion
	instructions int64
	l1Misses     int64
	l2Misses     int64
}

// NewHierarchy builds the Table 4 private-cache pair.
func NewHierarchy() (*Hierarchy, error) {
	l1, err := New(Config{Name: "L1D", SizeKB: 32, Assoc: 8, LineBytes: 64})
	if err != nil {
		return nil, err
	}
	l2, err := New(Config{Name: "L2", SizeKB: 256, Assoc: 8, LineBytes: 64})
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1: l1, L2: l2}, nil
}

// Access sends one load/store through L1 then (on miss) L2. Returns
// the level that hit: 1, 2, or 3 (missed both → memory-side).
func (h *Hierarchy) Access(addr uint64) int {
	if h.L1.Access(addr) {
		return 1
	}
	h.l1Misses++
	if h.L2.Access(addr) {
		return 2
	}
	h.l2Misses++
	return 3
}

// Retire accounts committed instructions for MPKI computation.
func (h *Hierarchy) Retire(n int64) { h.instructions += n }

// ResetStats zeroes every counter while keeping the arrays warm.
func (h *Hierarchy) ResetStats() {
	h.L1.ResetStats()
	h.L2.ResetStats()
	h.instructions, h.l1Misses, h.l2Misses = 0, 0, 0
}

// L1MPKI returns L1 misses per kilo-instruction.
func (h *Hierarchy) L1MPKI() float64 {
	if h.instructions == 0 {
		return 0
	}
	return float64(h.l1Misses) / float64(h.instructions) * 1000
}

// L2MPKI returns L2 misses per kilo-instruction.
func (h *Hierarchy) L2MPKI() float64 {
	if h.instructions == 0 {
		return 0
	}
	return float64(h.l2Misses) / float64(h.instructions) * 1000
}

// Stream generates a synthetic memory-reference stream with three
// regions: a hot set that lives in L1, a warm working set that lives in
// L2, and a cold region that misses both — the standard three-knob
// model for hitting target per-level miss rates.
type Stream struct {
	rng *rand.Rand
	// region sizes in lines
	hotLines, warmLines, coldLines int
	// fractions of references to warm/cold regions
	warmFrac, coldFrac float64
	// memory references per kilo-instruction
	RefsPerKI float64
}

// NewStream builds a generator.
func NewStream(seed int64, hotLines, warmLines, coldLines int, warmFrac, coldFrac, refsPerKI float64) *Stream {
	return &Stream{
		rng:      rand.New(rand.NewSource(seed)),
		hotLines: hotLines, warmLines: warmLines, coldLines: coldLines,
		warmFrac: warmFrac, coldFrac: coldFrac, RefsPerKI: refsPerKI,
	}
}

// Next returns the next reference address.
func (s *Stream) Next() uint64 {
	r := s.rng.Float64()
	switch {
	case r < s.coldFrac:
		return 0xC000_0000 + uint64(s.rng.Intn(s.coldLines))*64
	case r < s.coldFrac+s.warmFrac:
		return 0x8000_0000 + uint64(s.rng.Intn(s.warmLines))*64
	default:
		return 0x4000_0000 + uint64(s.rng.Intn(s.hotLines))*64
	}
}

// CalibrationResult reports how closely a stream realizes a profile.
type CalibrationResult struct {
	WantL1MPKI, GotL1MPKI float64
	WantL2MPKI, GotL2MPKI float64
}

// CalibrateStream constructs an address stream for the given target
// MPKIs and measures it through the real hierarchy: the existence proof
// that the simulator's statistical profiles correspond to concrete
// reference streams. Because cold traffic pollutes both arrays (and
// warm traffic pollutes the L1), the region fractions are solved by a
// short fixed-point iteration rather than the naive closed form.
func CalibrateStream(seed int64, wantL1, wantL2, refsPerKI float64, kiloInstructions int) (CalibrationResult, error) {
	// Initial analytic knobs: cold references miss both levels, warm
	// references miss L1 but hit L2.
	coldFrac := wantL2 / refsPerKI
	warmFrac := (wantL1 - wantL2) / refsPerKI
	if warmFrac < 0 {
		warmFrac = 0
	}
	var res CalibrationResult
	for iter := 0; iter < 4; iter++ {
		h, err := NewHierarchy()
		if err != nil {
			return CalibrationResult{}, err
		}
		st := NewStream(seed, 350 /* ≈22KB hot */, 1400 /* ≈90KB warm */, 1<<20, warmFrac, coldFrac, refsPerKI)
		refs := int(float64(kiloInstructions) * refsPerKI)
		// Warm the arrays so compulsory warm-region misses don't skew
		// the measurement, then measure.
		for i := 0; i < refs/2; i++ {
			h.Access(st.Next())
		}
		h.ResetStats()
		for i := 0; i < refs; i++ {
			h.Access(st.Next())
		}
		h.Retire(int64(kiloInstructions) * 1000)
		res = CalibrationResult{
			WantL1MPKI: wantL1, GotL1MPKI: h.L1MPKI(),
			WantL2MPKI: wantL2, GotL2MPKI: h.L2MPKI(),
		}
		// Feedback: scale each knob by its miss-rate error.
		if res.GotL2MPKI > 0 {
			coldFrac *= clampRatio(wantL2 / res.GotL2MPKI)
		}
		gotWarm := res.GotL1MPKI - res.GotL2MPKI
		wantWarm := wantL1 - wantL2
		if gotWarm > 0 && wantWarm > 0 {
			warmFrac *= clampRatio(wantWarm / gotWarm)
		}
	}
	return res, nil
}

// clampRatio bounds a feedback step to keep the iteration stable.
func clampRatio(r float64) float64 {
	if r < 0.25 {
		return 0.25
	}
	if r > 4 {
		return 4
	}
	return r
}
