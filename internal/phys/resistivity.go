// Package phys provides the low-level device physics used throughout
// CryoWire: temperature-dependent copper resistivity (cryo-wire),
// a cryogenic MOSFET model card (cryo-MOSFET) and the cryocooler
// power-overhead model.
//
// These models substitute for the CC-Model components of Byun et al.
// (ISCA'20) that the paper builds on. They are calibrated against the
// anchor numbers reported in the CryoWire paper itself; DESIGN.md lists
// every calibration target.
package phys

import (
	"fmt"
	"math"
)

// Kelvin is a temperature in kelvin.
type Kelvin float64

// Reference temperatures used throughout the paper.
const (
	T300 Kelvin = 300 // room temperature baseline
	T135 Kelvin = 135 // validation-board temperature (Fig 8/9)
	T100 Kelvin = 100 // sweet-spot candidate (Fig 27)
	T77  Kelvin = 77  // liquid-nitrogen target temperature
	T4   Kelvin = 4   // liquid-helium stage of the multi-stage model
)

// DebyeTemperatureCu is the effective Bloch–Grüneisen temperature of
// copper (Matula, J. Phys. Chem. Ref. Data 8, 1979 uses Θ_R ≈ 343 K).
const DebyeTemperatureCu = 343.0

// blochGruneisen returns the dimensionless Bloch–Grüneisen integral
//
//	G(T) = (T/Θ)^5 · ∫₀^{Θ/T} x⁵ / ((e^x − 1)(1 − e^−x)) dx
//
// which is proportional to the phonon-limited resistivity of a metal at
// temperature T. The integral is evaluated with composite Simpson
// quadrature; the integrand is finite at x→0 (→ x³).
func blochGruneisen(t Kelvin) float64 {
	if t <= 0 {
		return 0
	}
	upper := DebyeTemperatureCu / float64(t)
	// Integrand x^5 / ((e^x-1)(1-e^-x)); near 0 behaves as x^3.
	f := func(x float64) float64 {
		if x < 1e-9 {
			return x * x * x
		}
		return math.Pow(x, 5) / ((math.Expm1(x)) * (-math.Expm1(-x)))
	}
	const n = 2000 // panels (even)
	h := upper / n
	sum := f(0) + f(upper)
	for i := 1; i < n; i++ {
		x := float64(i) * h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	integral := sum * h / 3
	return math.Pow(float64(t)/DebyeTemperatureCu, 5) * integral
}

// PhononResistivityFactor returns ρ_ph(T)/ρ_ph(300K), the fraction of
// room-temperature phonon-limited resistivity that remains at T.
// For copper this is ≈ 0.117 at 77 K, matching the bulk resistivity
// drop from 1.72 µΩ·cm to ≈ 0.21 µΩ·cm reported by Matula.
func PhononResistivityFactor(t Kelvin) float64 {
	return blochGruneisen(t) / blochGruneisen(T300)
}

// WireClass identifies one of the three metal-stack wire families of a
// modern process (§2.1 of the paper).
type WireClass int

const (
	// LocalWire is the thinnest, highest-resistivity wire connecting
	// adjacent gates inside a microarchitectural unit.
	LocalWire WireClass = iota
	// SemiGlobalWire is the middle-layer wire connecting units inside a
	// core (e.g. the data-forwarding wires).
	SemiGlobalWire
	// GlobalWire is the thick top-layer wire used by the NoC.
	GlobalWire
)

// String implements fmt.Stringer.
func (c WireClass) String() string {
	switch c {
	case LocalWire:
		return "local"
	case SemiGlobalWire:
		return "semi-global"
	case GlobalWire:
		return "global"
	default:
		return fmt.Sprintf("WireClass(%d)", int(c))
	}
}

// resistivityParams captures the size-effect decomposition of a wire
// class: total room-temperature resistivity = residual (temperature
// independent surface/grain-boundary scattering, grows as wires thin)
// plus a phonon component that follows Bloch–Grüneisen.
//
// The residual components are calibrated so that the 300K→77K
// resistance ratios reproduce the paper's Hspice wire study
// (Fig 5a: long local 2.95×, long semi-global 3.69×; global wires are
// near-bulk, ≈8× — consistent with the Intel 45nm measurements at 300 K
// and 77 K the paper cites [44, 52]).
type resistivityParams struct {
	rho300   float64 // total resistivity at 300 K, µΩ·cm
	residual float64 // temperature-independent component, µΩ·cm
}

var wireResistivity = map[WireClass]resistivityParams{
	LocalWire:      {rho300: 4.00, residual: 1.035},
	SemiGlobalWire: {rho300: 2.90, residual: 0.529},
	GlobalWire:     {rho300: 2.00, residual: 0.005},
}

// Resistivity returns the resistivity of the given wire class at
// temperature t in µΩ·cm. The Bloch–Grüneisen phonon term is valid all
// the way to liquid helium: at 4 K the phonon component has collapsed
// (G(4 K)/G(300 K) ≈ 1e-7) and the residual surface/grain-boundary
// term is all that remains, which is why thin local wires stop
// improving below ~77 K while near-bulk global wires keep gaining.
func Resistivity(c WireClass, t Kelvin) float64 {
	p, ok := wireResistivity[c]
	if !ok {
		panic(fmt.Sprintf("phys: unknown wire class %v", c))
	}
	phonon300 := p.rho300 - p.residual
	return p.residual + phonon300*PhononResistivityFactor(t)
}

// ResistanceRatio returns ρ(300K)/ρ(T) for the wire class — the factor
// by which the wire's resistance (and, for RC-dominated wires, delay)
// shrinks when cooled from 300 K to t.
func ResistanceRatio(c WireClass, t Kelvin) float64 {
	return Resistivity(c, T300) / Resistivity(c, t)
}
