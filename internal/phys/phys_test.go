package phys

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > relTol {
			t.Errorf("%s = %v, want ~0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, relTol*100)
	}
}

func TestBlochGruneisenBulkCopper(t *testing.T) {
	// Bulk copper: 1.72 µΩ·cm at 300 K falls to ≈0.21 µΩ·cm at 77 K
	// (Matula). The phonon fraction remaining at 77 K is ≈ 0.117.
	f := PhononResistivityFactor(T77)
	approx(t, "PhononResistivityFactor(77K)", f, 0.117, 0.10)
	if PhononResistivityFactor(T300) != 1 {
		t.Errorf("PhononResistivityFactor(300K) = %v, want 1", PhononResistivityFactor(T300))
	}
}

func TestPhononFactorMonotone(t *testing.T) {
	prev := math.Inf(1)
	for temp := Kelvin(400); temp >= 20; temp -= 5 {
		f := PhononResistivityFactor(temp)
		if f >= prev {
			t.Fatalf("phonon factor not strictly decreasing with cooling at %vK: %v >= %v", temp, f, prev)
		}
		if f < 0 {
			t.Fatalf("negative phonon factor at %vK: %v", temp, f)
		}
		prev = f
	}
}

func TestResistanceRatiosMatchPaper(t *testing.T) {
	// Fig 5(a): long RC-dominated wires speed up by the resistance
	// ratio — 2.95× (local) and 3.69× (semi-global); global wires are
	// near bulk (≈8×).
	approx(t, "local ratio", ResistanceRatio(LocalWire, T77), 2.95, 0.02)
	approx(t, "semi-global ratio", ResistanceRatio(SemiGlobalWire, T77), 3.69, 0.02)
	if r := ResistanceRatio(GlobalWire, T77); r < 7 || r > 9.5 {
		t.Errorf("global ratio = %v, want near-bulk (7..9.5)", r)
	}
}

func TestResistivityOrdering(t *testing.T) {
	for _, temp := range []Kelvin{T300, T135, T100, T77} {
		l := Resistivity(LocalWire, temp)
		s := Resistivity(SemiGlobalWire, temp)
		g := Resistivity(GlobalWire, temp)
		if !(l > s && s > g) {
			t.Errorf("at %vK expected local > semi-global > global, got %v %v %v", temp, l, s, g)
		}
		if g <= 0 {
			t.Errorf("non-positive global resistivity at %vK: %v", temp, g)
		}
	}
}

func TestResistanceRatioProperty(t *testing.T) {
	// Property: cooling never makes any wire slower, and a colder wire
	// is never slower than a warmer one.
	f := func(rawT uint16, cls uint8) bool {
		temp := Kelvin(30 + float64(rawT%270)) // 30..299 K
		c := WireClass(int(cls) % 3)
		return ResistanceRatio(c, temp) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransistorSpeedupAt77K(t *testing.T) {
	m := DefaultMOSFET()
	op := OperatingPoint{T: T77, Vdd: Nominal45.Vdd, Vth: Nominal45.Vth}
	// §4.3 Observation #1: transistors gain only ≈8 % at 77 K.
	approx(t, "transistor speedup @77K nominal V", m.TransistorSpeedup(op), 1.08, 0.01)
}

func TestGateDelayFactorAtNominal(t *testing.T) {
	m := DefaultMOSFET()
	if f := m.GateDelayFactor(Nominal45); math.Abs(f-1) > 1e-12 {
		t.Errorf("GateDelayFactor(nominal) = %v, want 1", f)
	}
}

func TestVoltageScaledSpeedups(t *testing.T) {
	m := DefaultMOSFET()
	// CryoSP operating point (Table 3): 0.64 V / 0.25 V at 77 K.
	cryoSP := OperatingPoint{T: T77, Vdd: 0.64, Vth: 0.25}
	sp := m.TransistorSpeedup(cryoSP)
	// Must be faster than the unscaled 77 K device (the whole point of
	// the Vdd/Vth scaling step) — ≈1.45× vs 1.08×.
	if sp <= 1.30 || sp >= 1.60 {
		t.Errorf("CryoSP transistor speedup = %v, want in (1.30,1.60)", sp)
	}
	// CHP-core point: 0.75/0.25 at 77 K — slightly slower logic than
	// CryoSP's point (higher Vdd ⇒ more charge) in this calibration.
	chp := m.TransistorSpeedup(OperatingPoint{T: T77, Vdd: 0.75, Vth: 0.25})
	if chp <= 1.2 {
		t.Errorf("CHP transistor speedup = %v, want > 1.2", chp)
	}
}

func TestLeakageCollapsesAt77K(t *testing.T) {
	m := DefaultMOSFET()
	same := OperatingPoint{T: T77, Vdd: Nominal45.Vdd, Vth: Nominal45.Vth}
	if f := m.LeakageFactor(same); f > 1e-10 {
		t.Errorf("leakage at 77K nominal Vth = %v, want < 1e-10 (exponential collapse)", f)
	}
	// Even with the aggressive CryoSP Vth = 0.25 V, 77 K leakage stays
	// below the 300 K nominal leakage (feasibility of voltage scaling).
	scaled := OperatingPoint{T: T77, Vdd: 0.64, Vth: 0.25}
	if f := m.LeakageFactor(scaled); f >= 1 {
		t.Errorf("leakage at CryoSP point = %v, want < 1", f)
	}
	// At 300 K the same Vth reduction explodes leakage — the reason the
	// optimization is cryogenic-only (§4.5).
	hot := OperatingPoint{T: T300, Vdd: 0.64, Vth: 0.25}
	if f := m.LeakageFactor(hot); f <= 10 {
		t.Errorf("leakage at 300K/0.25V = %v, want >> 1", f)
	}
}

func TestMinVth(t *testing.T) {
	m := DefaultMOSFET()
	v77, err := m.MinVth(T77, 1.0)
	if err != nil {
		t.Fatalf("MinVth(77K): %v", err)
	}
	if v77 >= 0.25 {
		t.Errorf("MinVth(77K, 1.0) = %v, want < 0.25 (paper's choice is conservative)", v77)
	}
	v300, err := m.MinVth(T300, 1.0)
	if err != nil {
		t.Fatalf("MinVth(300K): %v", err)
	}
	approx(t, "MinVth(300K, 1.0)", float64(v300), float64(Nominal45.Vth), 0.01)
	if _, err := m.MinVth(T300, 0); err == nil {
		t.Error("MinVth with zero budget should fail")
	}
}

func TestMinVthMonotoneInBudget(t *testing.T) {
	m := DefaultMOSFET()
	f := func(rawBudget uint8) bool {
		b1 := 0.5 + float64(rawBudget%100)/100 // 0.5..1.49
		b2 := b1 * 2
		v1, err1 := m.MinVth(T77, b1)
		v2, err2 := m.MinVth(T77, b2)
		if err1 != nil || err2 != nil {
			return false
		}
		return v2 <= v1 // looser budget never requires higher Vth
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOperatingPointValidation(t *testing.T) {
	cases := []struct {
		op OperatingPoint
		ok bool
	}{
		{Nominal45, true},
		{OperatingPoint{T: T77, Vdd: 0.64, Vth: 0.25}, true},
		{OperatingPoint{T: 0, Vdd: 1, Vth: 0.3}, false},
		{OperatingPoint{T: T77, Vdd: 0, Vth: 0.3}, false},
		{OperatingPoint{T: T77, Vdd: 1, Vth: 0}, false},
		{OperatingPoint{T: T77, Vdd: 0.5, Vth: 0.6}, false},
	}
	for _, c := range cases {
		err := c.op.Valid()
		if c.ok && err != nil {
			t.Errorf("Valid(%+v) = %v, want nil", c.op, err)
		}
		if !c.ok && err == nil {
			t.Errorf("Valid(%+v) = nil, want error", c.op)
		}
	}
}

func TestCoolingOverhead(t *testing.T) {
	c := DefaultCooling()
	// §6.1.2: CO = 9.65 at 77 K.
	approx(t, "CO(77K)", c.Overhead(T77), 9.65, 0.01)
	if co := c.Overhead(T300); co != 0 {
		t.Errorf("CO(300K) = %v, want 0", co)
	}
	// Eq. (2): total = 10.65 × device at 77 K.
	approx(t, "TotalPower(1W, 77K)", c.TotalPower(1, T77), 10.65, 0.01)
}

func TestCoolingOverheadGrowsAsTemperatureDrops(t *testing.T) {
	c := DefaultCooling()
	prev := -1.0
	for temp := Kelvin(300); temp >= 20; temp -= 10 {
		co := c.Overhead(temp)
		if co < prev {
			t.Fatalf("cooling overhead decreased when cooling to %vK", temp)
		}
		prev = co
	}
	// The Fig 27 argument: cooling overhead grows super-linearly while
	// performance grows ~linearly, so the overhead at 77 K must exceed
	// the overhead at 100 K by more than the 100/77 ratio.
	if c.Overhead(T77)/c.Overhead(T100) < float64(T100)/float64(T77) {
		t.Error("overhead growth too slow to create a Fig 27 sweet spot")
	}
}

func TestMobilityFactorInterpolation(t *testing.T) {
	m := DefaultMOSFET()
	if m.MobilityFactor(T300) != 1 {
		t.Error("mobility at 300K must be 1")
	}
	approx(t, "mobility @77K", m.MobilityFactor(T77), 1.08, 1e-9)
	mid := m.MobilityFactor(T135)
	if mid <= 1 || mid >= 1.08 {
		t.Errorf("mobility at 135K = %v, want in (1, 1.08)", mid)
	}
	if m.MobilityFactor(350) != 1 {
		t.Error("mobility above 300K clamps to 1")
	}
	// Below 77 K the default card now follows the calibrated 4 K
	// extension instead of silently clamping (see cryo4k_test.go).
	sub := m.MobilityFactor(40)
	if sub < m.MobilityGain77 || sub > m.MobilityGain4 {
		t.Errorf("mobility at 40K = %v, want in [%v, %v]", sub, m.MobilityGain77, m.MobilityGain4)
	}
}

func TestWireClassString(t *testing.T) {
	if LocalWire.String() != "local" || SemiGlobalWire.String() != "semi-global" || GlobalWire.String() != "global" {
		t.Error("WireClass String() mismatch")
	}
	if WireClass(9).String() == "" {
		t.Error("unknown wire class should still stringify")
	}
}
