package phys

import (
	"errors"
	"fmt"
	"math"
)

// Volts is an electric potential.
type Volts float64

// OperatingPoint is a (temperature, supply, threshold) triple at which a
// transistor circuit runs. The paper's voltage-scaled designs (CHP-core,
// CryoSP) pick aggressive operating points that are only feasible at
// cryogenic temperatures because of the collapsed leakage.
type OperatingPoint struct {
	T   Kelvin
	Vdd Volts
	Vth Volts
}

// Nominal45 is the nominal FreePDK45-like operating point the paper's
// 300 K baseline uses (Table 3: Vdd 1.25 V, Vth 0.47 V).
var Nominal45 = OperatingPoint{T: T300, Vdd: 1.25, Vth: 0.47}

// Valid reports whether the operating point is physically meaningful.
func (op OperatingPoint) Valid() error {
	switch {
	case math.IsNaN(float64(op.T)) || math.IsNaN(float64(op.Vdd)) || math.IsNaN(float64(op.Vth)):
		return fmt.Errorf("phys: NaN operating point (T=%v Vdd=%v Vth=%v)", op.T, op.Vdd, op.Vth)
	case op.T <= 0:
		return fmt.Errorf("phys: non-positive temperature %v", op.T)
	case op.Vdd <= 0:
		return fmt.Errorf("phys: non-positive Vdd %v", op.Vdd)
	case op.Vth <= 0:
		return fmt.Errorf("phys: non-positive Vth %v", op.Vth)
	case op.Vth >= op.Vdd:
		return fmt.Errorf("phys: Vth %v >= Vdd %v (no overdrive)", op.Vth, op.Vdd)
	}
	return nil
}

// MOSFET is an empirical cryogenic transistor model card in the spirit of
// cryo-MOSFET from CC-Model: given an operating point it yields drive
// strength, gate delay and leakage. It uses
//
//   - an alpha-power on-current law  Ion ∝ µ(T)·(Vdd−Vth)^Alpha,
//   - a mobility factor µ(T) that improves modestly with cooling
//     (phonon-scattering-limited, saturating at low T), and
//   - the textbook subthreshold leakage model
//     Ileak ∝ (T/300)²·exp(−Vth·q/(n·k·T)).
//
// Alpha and the 77 K mobility gain are calibrated to the paper's anchor
// points: +8 % transistor speed at 77 K at nominal voltage, CryoSP at
// 7.84 GHz with Vdd/Vth = 0.64/0.25 V and CHP-core near 6.1 GHz with
// 0.75/0.25 V (DESIGN.md, "Key model anchors").
type MOSFET struct {
	// Alpha is the velocity-saturation exponent of the alpha-power law.
	Alpha float64
	// MobilityGain77 is µ(77K)/µ(300K).
	MobilityGain77 float64
	// SubthresholdN is the subthreshold ideality factor n.
	SubthresholdN float64
	// Ileak0 is the leakage prefactor (A per µm of gate width) at the
	// nominal 300 K operating point; only ratios matter for the paper's
	// analyses but an absolute scale keeps power numbers dimensionful.
	Ileak0 float64

	// --- 4 K extension card (liquid-helium operation) -----------------
	//
	// The fields below extend the card to the liquid-helium stage of
	// the multi-stage system model, in the spirit of QIsim's
	// CryoMOSFET_4K pipeline and the generic cryo-CMOS modeling
	// platform (arXiv 2211.05309) calibrated against liquid-helium
	// characterization (arXiv 1811.11497). A card with MobilityGain4
	// == 0 has no 4 K data: sub-77 K queries through MobilityFactorAt
	// and ValidTemperature return ErrNo4KCard instead of silently
	// extrapolating.

	// MobilityGain4 is µ(4K)/µ(300K). Phonon scattering is gone at
	// liquid helium; ionized-impurity and surface-roughness scattering
	// cap the gain only slightly above the 77 K value. 0 means the
	// card carries no 4 K calibration.
	MobilityGain4 float64
	// SubthresholdFloorK is the effective electronic temperature floor
	// of the subthreshold slope. Measured 4 K devices do not show the
	// theoretical kT/q·ln10 ≈ 0.8 mV/dec swing — band tails and
	// interface states saturate the swing at an equivalent temperature
	// of a few tens of kelvin — so the leakage exponential evaluates
	// at max(T, SubthresholdFloorK). 0 disables the floor (textbook
	// slope at every temperature).
	SubthresholdFloorK Kelvin
}

// DefaultMOSFET returns the calibrated 45 nm-class model card used by
// every CryoWire experiment. The card includes the 4 K extension:
// µ(4K)/µ(300K) = 1.12 (impurity-scattering-limited, a little above
// the 77 K gain) and a 35 K subthreshold-swing floor (the band-tail
// saturation liquid-helium characterization reports), so every
// temperature from 300 K down to liquid helium is an explicit
// calibrated curve.
func DefaultMOSFET() *MOSFET {
	return &MOSFET{
		Alpha:              0.545,
		MobilityGain77:     1.08,
		SubthresholdN:      1.5,
		Ileak0:             100e-9,
		MobilityGain4:      1.12,
		SubthresholdFloorK: 35,
	}
}

// ErrNo4KCard reports a sub-77 K query against a model card that
// carries no 4 K calibration data. Callers either configure
// MobilityGain4 (DefaultMOSFET does) or keep their operating points at
// 77 K and above.
var ErrNo4KCard = errors.New("phys: model card has no 4 K calibration (MobilityGain4 unset) for sub-77 K operation")

// Has4KCard reports whether the card carries liquid-helium calibration.
func (m *MOSFET) Has4KCard() bool { return m.MobilityGain4 > 0 }

// ValidTemperature reports whether the card can model temperature t:
// t must be physical, and temperatures below 77 K need the 4 K
// extension card. This is the validation gate the platform layer runs
// before deriving artifacts at a new operating point.
func (m *MOSFET) ValidTemperature(t Kelvin) error {
	if err := ValidTemperature(t); err != nil {
		return err
	}
	if t < T77 && !m.Has4KCard() {
		return fmt.Errorf("%w (temperature %g K)", ErrNo4KCard, float64(t))
	}
	return nil
}

// thermalVoltage returns kT/q in volts.
func thermalVoltage(t Kelvin) float64 {
	const kOverQ = 8.617333262e-5 // V/K
	return kOverQ * float64(t)
}

// slopeTemperature returns the temperature the subthreshold slope
// evaluates at: the physical temperature, floored at the card's
// SubthresholdFloorK (band-tail swing saturation — see the field doc).
// Above the floor (every 77 K-and-up point) this is the identity, so
// the 4 K extension never perturbs the calibrated 77–300 K leakage.
func (m *MOSFET) slopeTemperature(t Kelvin) Kelvin {
	if m.SubthresholdFloorK > 0 && t < m.SubthresholdFloorK {
		return m.SubthresholdFloorK
	}
	return t
}

// MobilityFactor returns µ(T)/µ(300K). Carrier mobility in silicon is
// phonon-limited near room temperature (µ ∝ T^−γ) but saturates at low
// temperature as impurity scattering takes over; the model interpolates
// so that the 77 K value equals the calibrated MobilityGain77 and the
// curve is monotone between 300 K and 77 K.
//
// Below 77 K the behavior depends on the 4 K extension card: with
// MobilityGain4 set the curve continues log-linearly to the (4 K,
// MobilityGain4) anchor and clamps below it (impurity scattering is
// temperature-independent, so µ is flat under liquid helium); without
// it the legacy clamp to MobilityGain77 applies. Callers that must
// distinguish "calibrated curve" from "uncalibrated clamp" use
// MobilityFactorAt, which returns ErrNo4KCard in the latter case.
func (m *MOSFET) MobilityFactor(t Kelvin) float64 {
	if t >= T300 {
		return 1
	}
	if t <= T77 {
		if !m.Has4KCard() {
			return m.MobilityGain77
		}
		if t <= T4 {
			return m.MobilityGain4
		}
		// Log-linear interpolation between the 77 K and 4 K anchors.
		frac := math.Log(float64(T77)/float64(t)) / math.Log(float64(T77)/float64(T4))
		return m.MobilityGain77 + (m.MobilityGain4-m.MobilityGain77)*frac
	}
	// Log-linear interpolation in temperature between the anchors.
	frac := math.Log(float64(T300)/float64(t)) / math.Log(float64(T300)/float64(T77))
	return 1 + (m.MobilityGain77-1)*frac
}

// MobilityFactorAt is MobilityFactor with the sub-77 K contract made
// explicit: a query below 77 K against a card without the 4 K
// extension returns ErrNo4KCard instead of the silent MobilityGain77
// clamp, so callers can never mistake an uncalibrated extrapolation
// for a measured curve.
func (m *MOSFET) MobilityFactorAt(t Kelvin) (float64, error) {
	if err := m.ValidTemperature(t); err != nil {
		return 0, err
	}
	return m.MobilityFactor(t), nil
}

// OnCurrentFactor returns Ion(op)/Ion(Nominal45) — the relative drive
// strength of the transistor at the given operating point.
func (m *MOSFET) OnCurrentFactor(op OperatingPoint) float64 {
	ref := Nominal45
	num := m.MobilityFactor(op.T) * math.Pow(float64(op.Vdd-op.Vth), m.Alpha)
	den := m.MobilityFactor(ref.T) * math.Pow(float64(ref.Vdd-ref.Vth), m.Alpha)
	return num / den
}

// GateDelayFactor returns t_gate(op)/t_gate(Nominal45). Gate delay is
// CV/I with the switched charge proportional to Vdd:
//
//	delay ∝ Vdd / Ion(T, Vdd, Vth)
//
// so lowering Vdd both reduces the charge and the drive; the net effect
// depends on Alpha and the overdrive Vdd−Vth.
func (m *MOSFET) GateDelayFactor(op OperatingPoint) float64 {
	ref := Nominal45
	return (float64(op.Vdd) / float64(ref.Vdd)) / m.OnCurrentFactor(op)
}

// TransistorSpeedup returns the transistor-only speedup at op relative
// to the nominal 300 K point (the reciprocal of GateDelayFactor). At
// (77 K, nominal voltage) this is the paper's "8 %" number.
func (m *MOSFET) TransistorSpeedup(op OperatingPoint) float64 {
	return 1 / m.GateDelayFactor(op)
}

// LeakageFactor returns Ileak(op)/Ileak(Nominal45). The exponential
// sensitivity to Vth/T is what makes cryogenic Vth scaling free: at
// 77 K even Vth = 0.25 V leaks orders of magnitude less than the 300 K
// nominal device. Below the card's subthreshold-swing floor the slope
// stops steepening (slopeTemperature), so 4 K leakage is "collapsed
// but finite" rather than the unphysical e^-700 of the textbook model.
func (m *MOSFET) LeakageFactor(op OperatingPoint) float64 {
	ref := Nominal45
	exp := func(o OperatingPoint) float64 {
		return -float64(o.Vth) / (m.SubthresholdN * thermalVoltage(m.slopeTemperature(o.T)))
	}
	tempScale := math.Pow(float64(op.T)/float64(ref.T), 2)
	return tempScale * math.Exp(exp(op)-exp(ref))
}

// LeakageCurrent returns the absolute leakage current (A/µm) at op.
func (m *MOSFET) LeakageCurrent(op OperatingPoint) float64 {
	return m.Ileak0 * m.LeakageFactor(op)
}

// ErrInfeasible is returned when no voltage assignment satisfies the
// leakage budget.
var ErrInfeasible = errors.New("phys: no feasible Vth under leakage budget")

// MinVth returns the smallest threshold voltage at temperature t whose
// leakage does not exceed budgetFactor times the nominal 300 K leakage.
// This is the knob that lets cryogenic designs trade the leakage slack
// for speed (§4.5): MinVth(77K, 1.0) is far below the 300 K nominal
// 0.47 V.
func (m *MOSFET) MinVth(t Kelvin, budgetFactor float64) (Volts, error) {
	if budgetFactor <= 0 {
		return 0, fmt.Errorf("phys: non-positive leakage budget %v", budgetFactor)
	}
	// Solve LeakageFactor(t, vth) = budgetFactor for vth analytically:
	// tempScale·exp(−vth/(n·kT/q) + vthRef/(n·kTref/q)) = budget.
	ref := Nominal45
	tempScale := math.Pow(float64(t)/float64(ref.T), 2)
	refExp := float64(ref.Vth) / (m.SubthresholdN * thermalVoltage(ref.T))
	rhs := math.Log(budgetFactor/tempScale) - refExp
	vth := Volts(-rhs * m.SubthresholdN * thermalVoltage(m.slopeTemperature(t)))
	if vth <= 0 {
		// Leakage budget is so loose that any positive Vth works.
		return 0.01, nil
	}
	if vth >= ref.Vdd {
		return 0, ErrInfeasible
	}
	return vth, nil
}
