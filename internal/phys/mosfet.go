package phys

import (
	"errors"
	"fmt"
	"math"
)

// Volts is an electric potential.
type Volts float64

// OperatingPoint is a (temperature, supply, threshold) triple at which a
// transistor circuit runs. The paper's voltage-scaled designs (CHP-core,
// CryoSP) pick aggressive operating points that are only feasible at
// cryogenic temperatures because of the collapsed leakage.
type OperatingPoint struct {
	T   Kelvin
	Vdd Volts
	Vth Volts
}

// Nominal45 is the nominal FreePDK45-like operating point the paper's
// 300 K baseline uses (Table 3: Vdd 1.25 V, Vth 0.47 V).
var Nominal45 = OperatingPoint{T: T300, Vdd: 1.25, Vth: 0.47}

// Valid reports whether the operating point is physically meaningful.
func (op OperatingPoint) Valid() error {
	switch {
	case math.IsNaN(float64(op.T)) || math.IsNaN(float64(op.Vdd)) || math.IsNaN(float64(op.Vth)):
		return fmt.Errorf("phys: NaN operating point (T=%v Vdd=%v Vth=%v)", op.T, op.Vdd, op.Vth)
	case op.T <= 0:
		return fmt.Errorf("phys: non-positive temperature %v", op.T)
	case op.Vdd <= 0:
		return fmt.Errorf("phys: non-positive Vdd %v", op.Vdd)
	case op.Vth <= 0:
		return fmt.Errorf("phys: non-positive Vth %v", op.Vth)
	case op.Vth >= op.Vdd:
		return fmt.Errorf("phys: Vth %v >= Vdd %v (no overdrive)", op.Vth, op.Vdd)
	}
	return nil
}

// MOSFET is an empirical cryogenic transistor model card in the spirit of
// cryo-MOSFET from CC-Model: given an operating point it yields drive
// strength, gate delay and leakage. It uses
//
//   - an alpha-power on-current law  Ion ∝ µ(T)·(Vdd−Vth)^Alpha,
//   - a mobility factor µ(T) that improves modestly with cooling
//     (phonon-scattering-limited, saturating at low T), and
//   - the textbook subthreshold leakage model
//     Ileak ∝ (T/300)²·exp(−Vth·q/(n·k·T)).
//
// Alpha and the 77 K mobility gain are calibrated to the paper's anchor
// points: +8 % transistor speed at 77 K at nominal voltage, CryoSP at
// 7.84 GHz with Vdd/Vth = 0.64/0.25 V and CHP-core near 6.1 GHz with
// 0.75/0.25 V (DESIGN.md, "Key model anchors").
type MOSFET struct {
	// Alpha is the velocity-saturation exponent of the alpha-power law.
	Alpha float64
	// MobilityGain77 is µ(77K)/µ(300K).
	MobilityGain77 float64
	// SubthresholdN is the subthreshold ideality factor n.
	SubthresholdN float64
	// Ileak0 is the leakage prefactor (A per µm of gate width) at the
	// nominal 300 K operating point; only ratios matter for the paper's
	// analyses but an absolute scale keeps power numbers dimensionful.
	Ileak0 float64
}

// DefaultMOSFET returns the calibrated 45 nm-class model card used by
// every CryoWire experiment.
func DefaultMOSFET() *MOSFET {
	return &MOSFET{
		Alpha:          0.545,
		MobilityGain77: 1.08,
		SubthresholdN:  1.5,
		Ileak0:         100e-9,
	}
}

// thermalVoltage returns kT/q in volts.
func thermalVoltage(t Kelvin) float64 {
	const kOverQ = 8.617333262e-5 // V/K
	return kOverQ * float64(t)
}

// MobilityFactor returns µ(T)/µ(300K). Carrier mobility in silicon is
// phonon-limited near room temperature (µ ∝ T^−γ) but saturates at low
// temperature as impurity scattering takes over; the model interpolates
// so that the 77 K value equals the calibrated MobilityGain77 and the
// curve is monotone between 300 K and 77 K.
func (m *MOSFET) MobilityFactor(t Kelvin) float64 {
	if t >= T300 {
		return 1
	}
	if t <= T77 {
		return m.MobilityGain77
	}
	// Log-linear interpolation in temperature between the anchors.
	frac := math.Log(float64(T300)/float64(t)) / math.Log(float64(T300)/float64(T77))
	return 1 + (m.MobilityGain77-1)*frac
}

// OnCurrentFactor returns Ion(op)/Ion(Nominal45) — the relative drive
// strength of the transistor at the given operating point.
func (m *MOSFET) OnCurrentFactor(op OperatingPoint) float64 {
	ref := Nominal45
	num := m.MobilityFactor(op.T) * math.Pow(float64(op.Vdd-op.Vth), m.Alpha)
	den := m.MobilityFactor(ref.T) * math.Pow(float64(ref.Vdd-ref.Vth), m.Alpha)
	return num / den
}

// GateDelayFactor returns t_gate(op)/t_gate(Nominal45). Gate delay is
// CV/I with the switched charge proportional to Vdd:
//
//	delay ∝ Vdd / Ion(T, Vdd, Vth)
//
// so lowering Vdd both reduces the charge and the drive; the net effect
// depends on Alpha and the overdrive Vdd−Vth.
func (m *MOSFET) GateDelayFactor(op OperatingPoint) float64 {
	ref := Nominal45
	return (float64(op.Vdd) / float64(ref.Vdd)) / m.OnCurrentFactor(op)
}

// TransistorSpeedup returns the transistor-only speedup at op relative
// to the nominal 300 K point (the reciprocal of GateDelayFactor). At
// (77 K, nominal voltage) this is the paper's "8 %" number.
func (m *MOSFET) TransistorSpeedup(op OperatingPoint) float64 {
	return 1 / m.GateDelayFactor(op)
}

// LeakageFactor returns Ileak(op)/Ileak(Nominal45). The exponential
// sensitivity to Vth/T is what makes cryogenic Vth scaling free: at
// 77 K even Vth = 0.25 V leaks orders of magnitude less than the 300 K
// nominal device.
func (m *MOSFET) LeakageFactor(op OperatingPoint) float64 {
	ref := Nominal45
	exp := func(o OperatingPoint) float64 {
		return -float64(o.Vth) / (m.SubthresholdN * thermalVoltage(o.T))
	}
	tempScale := math.Pow(float64(op.T)/float64(ref.T), 2)
	return tempScale * math.Exp(exp(op)-exp(ref))
}

// LeakageCurrent returns the absolute leakage current (A/µm) at op.
func (m *MOSFET) LeakageCurrent(op OperatingPoint) float64 {
	return m.Ileak0 * m.LeakageFactor(op)
}

// ErrInfeasible is returned when no voltage assignment satisfies the
// leakage budget.
var ErrInfeasible = errors.New("phys: no feasible Vth under leakage budget")

// MinVth returns the smallest threshold voltage at temperature t whose
// leakage does not exceed budgetFactor times the nominal 300 K leakage.
// This is the knob that lets cryogenic designs trade the leakage slack
// for speed (§4.5): MinVth(77K, 1.0) is far below the 300 K nominal
// 0.47 V.
func (m *MOSFET) MinVth(t Kelvin, budgetFactor float64) (Volts, error) {
	if budgetFactor <= 0 {
		return 0, fmt.Errorf("phys: non-positive leakage budget %v", budgetFactor)
	}
	// Solve LeakageFactor(t, vth) = budgetFactor for vth analytically:
	// tempScale·exp(−vth/(n·kT/q) + vthRef/(n·kTref/q)) = budget.
	ref := Nominal45
	tempScale := math.Pow(float64(t)/float64(ref.T), 2)
	refExp := float64(ref.Vth) / (m.SubthresholdN * thermalVoltage(ref.T))
	rhs := math.Log(budgetFactor/tempScale) - refExp
	vth := Volts(-rhs * m.SubthresholdN * thermalVoltage(t))
	if vth <= 0 {
		// Leakage budget is so loose that any positive Vth works.
		return 0.01, nil
	}
	if vth >= ref.Vdd {
		return 0, ErrInfeasible
	}
	return vth, nil
}
