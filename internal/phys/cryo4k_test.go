package phys

import (
	"errors"
	"math"
	"testing"
)

// TestMobilityFactor4K pins the 4 K extension curve: the anchors are
// honored exactly, the 77→4 K segment is monotone non-decreasing
// toward the 4 K gain, and below 4 K the factor clamps (impurity
// scattering is temperature-independent).
func TestMobilityFactor4K(t *testing.T) {
	m := DefaultMOSFET()
	if !m.Has4KCard() {
		t.Fatal("default card must carry the 4 K extension")
	}
	if got := m.MobilityFactor(T77); got != m.MobilityGain77 {
		t.Fatalf("MobilityFactor(77K) = %v, want anchor %v", got, m.MobilityGain77)
	}
	if got := m.MobilityFactor(T4); got != m.MobilityGain4 {
		t.Fatalf("MobilityFactor(4K) = %v, want anchor %v", got, m.MobilityGain4)
	}
	if got := m.MobilityFactor(2); got != m.MobilityGain4 {
		t.Fatalf("MobilityFactor(2K) = %v, want clamp at %v", got, m.MobilityGain4)
	}
	prev := m.MobilityFactor(T77)
	for _, tk := range []Kelvin{60, 40, 20, 10, 4} {
		cur := m.MobilityFactor(tk)
		if cur < prev {
			t.Fatalf("MobilityFactor not monotone cooling into 4 K: µ(%vK)=%v < µ(prev)=%v", tk, cur, prev)
		}
		if cur < m.MobilityGain77 || cur > m.MobilityGain4 {
			t.Fatalf("MobilityFactor(%vK)=%v outside [%v,%v]", tk, cur, m.MobilityGain77, m.MobilityGain4)
		}
		prev = cur
	}
}

// TestMobilityFactorNo4KCard pins the satellite fix: a card without
// 4 K calibration answers sub-77 K queries with the typed ErrNo4KCard
// through the explicit API, while the legacy MobilityFactor keeps its
// documented clamp for 77 K-and-above callers.
func TestMobilityFactorNo4KCard(t *testing.T) {
	m := &MOSFET{Alpha: 0.545, MobilityGain77: 1.08, SubthresholdN: 1.5, Ileak0: 100e-9}
	if _, err := m.MobilityFactorAt(T4); !errors.Is(err, ErrNo4KCard) {
		t.Fatalf("MobilityFactorAt(4K) on a 77 K card: err = %v, want ErrNo4KCard", err)
	}
	if err := m.ValidTemperature(50); !errors.Is(err, ErrNo4KCard) {
		t.Fatalf("ValidTemperature(50K) on a 77 K card: err = %v, want ErrNo4KCard", err)
	}
	if err := m.ValidTemperature(T77); err != nil {
		t.Fatalf("ValidTemperature(77K) on a 77 K card: %v", err)
	}
	got, err := m.MobilityFactorAt(T77)
	if err != nil || got != m.MobilityGain77 {
		t.Fatalf("MobilityFactorAt(77K) = %v, %v; want %v, nil", got, err, m.MobilityGain77)
	}
	// The legacy clamp survives for callers that never go below 77 K.
	if got := m.MobilityFactor(T4); got != m.MobilityGain77 {
		t.Fatalf("legacy MobilityFactor(4K) = %v, want documented clamp %v", got, m.MobilityGain77)
	}
}

// TestMobilityFactorAtDefaultCard checks the non-error path returns
// the curve value.
func TestMobilityFactorAtDefaultCard(t *testing.T) {
	m := DefaultMOSFET()
	got, err := m.MobilityFactorAt(T4)
	if err != nil {
		t.Fatal(err)
	}
	if got != m.MobilityGain4 {
		t.Fatalf("MobilityFactorAt(4K) = %v, want %v", got, m.MobilityGain4)
	}
	if _, err := m.MobilityFactorAt(-1); err == nil {
		t.Fatal("MobilityFactorAt(-1K) must fail")
	}
}

// TestLeakage4KFiniteCollapsed checks the swing floor: leakage at 4 K
// is far below the 77 K value but finite and positive — not the
// unphysical e^-700 of the unfloored textbook slope.
func TestLeakage4KFiniteCollapsed(t *testing.T) {
	m := DefaultMOSFET()
	op4 := OperatingPoint{T: T4, Vdd: 0.64, Vth: 0.25}
	op77 := OperatingPoint{T: T77, Vdd: 0.64, Vth: 0.25}
	l4, l77 := m.LeakageFactor(op4), m.LeakageFactor(op77)
	if !(l4 > 0) || math.IsInf(l4, 0) || math.IsNaN(l4) {
		t.Fatalf("LeakageFactor(4K) = %v, want positive finite", l4)
	}
	if l4 >= l77 {
		t.Fatalf("LeakageFactor(4K) = %v not below LeakageFactor(77K) = %v", l4, l77)
	}
	// The floor keeps the collapse physical: the 4 K leakage must stay
	// within ~e^-40 of the 77 K value, not e^-700 below it.
	if ratio := l77 / l4; ratio > 1e40 {
		t.Fatalf("4 K leakage collapsed unphysically: 77K/4K ratio %v", ratio)
	}
}

// TestLeakageFloorDoesNotPerturb77K asserts the 4 K card leaves every
// 77 K-and-above number bit-identical to the pre-extension card — the
// golden byte-identity gate depends on it.
func TestLeakageFloorDoesNotPerturb77K(t *testing.T) {
	with := DefaultMOSFET()
	without := &MOSFET{Alpha: with.Alpha, MobilityGain77: with.MobilityGain77,
		SubthresholdN: with.SubthresholdN, Ileak0: with.Ileak0}
	for _, tk := range []Kelvin{T300, 200, T135, T100, T77} {
		for _, op := range []OperatingPoint{
			{T: tk, Vdd: 1.25, Vth: 0.47},
			{T: tk, Vdd: 0.64, Vth: 0.25},
		} {
			if a, b := with.LeakageFactor(op), without.LeakageFactor(op); a != b {
				t.Fatalf("LeakageFactor(%+v) differs with 4 K card: %v vs %v", op, a, b)
			}
			if a, b := with.MobilityFactor(tk), without.MobilityFactor(tk); a != b {
				t.Fatalf("MobilityFactor(%v) differs with 4 K card: %v vs %v", tk, a, b)
			}
			if a, b := with.GateDelayFactor(op), without.GateDelayFactor(op); a != b {
				t.Fatalf("GateDelayFactor(%+v) differs with 4 K card: %v vs %v", op, a, b)
			}
		}
	}
}

// TestResistivity4K pins the liquid-helium wire behavior: every class
// is finite and positive at 4 K, the residual floor dominates, and
// cooling 77→4 K still helps (monotone), most for the near-bulk
// global class.
func TestResistivity4K(t *testing.T) {
	for _, c := range []WireClass{LocalWire, SemiGlobalWire, GlobalWire} {
		r4 := Resistivity(c, T4)
		r77 := Resistivity(c, T77)
		if !(r4 > 0) || math.IsNaN(r4) || math.IsInf(r4, 0) {
			t.Fatalf("Resistivity(%v, 4K) = %v, want positive finite", c, r4)
		}
		if r4 > r77 {
			t.Fatalf("Resistivity(%v) not monotone: 4K %v > 77K %v", c, r4, r77)
		}
	}
	// Thin local wires are residual-dominated at 4 K: the 300K→4K
	// ratio stays close to the 77 K ratio. Global near-bulk wire keeps
	// a much larger ratio.
	local := ResistanceRatio(LocalWire, T4)
	global := ResistanceRatio(GlobalWire, T4)
	if local > 5 {
		t.Fatalf("local wire 300K→4K ratio %v: residual floor should cap it below ~4×", local)
	}
	if global < 50 {
		t.Fatalf("global wire 300K→4K ratio %v: near-bulk copper should exceed 50×", global)
	}
}

// TestCoolingOverheadTable is the satellite table-driven test: CO at
// the three stage temperatures of the multi-stage model, plus the
// Carnot edge cases.
func TestCoolingOverheadTable(t *testing.T) {
	c := DefaultCooling()
	cases := []struct {
		name string
		t    Kelvin
		want float64
		tol  float64
	}{
		{"300K ambient", T300, 0, 0},
		{"above ambient", 350, 0, 0},
		{"77K paper anchor", T77, 9.65, 0.01},
		{"4K stage", T4, (300.0 - 4.0) / (0.30 * 4.0), 1e-9},
		{"100K", T100, (300.0 - 100.0) / (0.30 * 100.0), 1e-9},
	}
	for _, tc := range cases {
		got := c.Overhead(tc.t)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%s: Overhead(%v) = %v, want %v ± %v", tc.name, tc.t, got, tc.want, tc.tol)
		}
	}
	// The headline staging ratio: CO(4 K) ≈ 25× CO(77 K).
	ratio := c.Overhead(T4) / c.Overhead(T77)
	if ratio < 24 || ratio > 27 {
		t.Fatalf("CO(4K)/CO(77K) = %v, want ≈ 25×", ratio)
	}
}

// TestCoolingOverheadEdges covers the limits: t → Ambient from below
// (overhead vanishes continuously), t → 0 (overhead grows without
// bound but stays finite for any positive t), and unphysical inputs
// cost infinite compressor power.
func TestCoolingOverheadEdges(t *testing.T) {
	c := DefaultCooling()
	if got := c.Overhead(c.Ambient); got != 0 {
		t.Fatalf("Overhead(Ambient) = %v, want 0", got)
	}
	if got := c.Overhead(c.Ambient - 1e-9); got <= 0 || got > 1e-6 {
		t.Fatalf("Overhead(Ambient-ε) = %v, want tiny positive", got)
	}
	tiny := c.Overhead(1e-9)
	if math.IsInf(tiny, 0) || math.IsNaN(tiny) || tiny < 1e9 {
		t.Fatalf("Overhead(1e-9 K) = %v, want huge but finite", tiny)
	}
	for _, bad := range []Kelvin{0, -4, Kelvin(math.NaN())} {
		if got := c.Overhead(bad); !math.IsInf(got, 1) {
			t.Fatalf("Overhead(%v) = %v, want +Inf", bad, got)
		}
	}
}

// TestCoolingOverheadMonotone is the satellite property test: colder
// always costs strictly more compressor watts per device watt, at any
// Carnot fraction.
func TestCoolingOverheadMonotone(t *testing.T) {
	for _, frac := range []float64{0.1, 0.3, 0.5, 1.0} {
		c := CoolingModel{CarnotFraction: frac, Ambient: T300}
		prev := c.Overhead(299.5)
		for tk := Kelvin(299); tk >= 1; tk-- {
			cur := c.Overhead(tk)
			if cur <= prev {
				t.Fatalf("CarnotFraction %v: Overhead(%v)=%v not strictly above Overhead(warmer)=%v",
					frac, tk, cur, prev)
			}
			prev = cur
		}
	}
}

// TestMinVth4K checks the voltage-scaling knob still solves at 4 K:
// the floored slope yields a small positive threshold under the
// nominal leakage budget.
func TestMinVth4K(t *testing.T) {
	m := DefaultMOSFET()
	vth, err := m.MinVth(T4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if vth <= 0 || vth >= Nominal45.Vth {
		t.Fatalf("MinVth(4K, 1.0) = %v, want in (0, %v)", vth, Nominal45.Vth)
	}
	v77, err := m.MinVth(T77, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if vth >= v77 {
		t.Fatalf("MinVth(4K) = %v not below MinVth(77K) = %v", vth, v77)
	}
}
