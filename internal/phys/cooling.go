package phys

import (
	"fmt"
	"math"
)

// ValidTemperature reports whether t is a physically meaningful
// operating temperature — the cooling-model mirror of
// OperatingPoint.Valid. Public entry points (cryowire.TemperatureSweep)
// validate user-supplied temperatures through this before computing
// overheads.
func ValidTemperature(t Kelvin) error {
	if math.IsNaN(float64(t)) || t <= 0 {
		return fmt.Errorf("phys: non-positive temperature %v", t)
	}
	return nil
}

// CoolingModel converts device power into total (device + cryocooler)
// power. The paper assumes an LN-recycling Stinger cooling plant whose
// recurring compressor power dominates all other cooling costs (§6.1.2).
type CoolingModel struct {
	// CarnotFraction is the fraction of the ideal Carnot coefficient of
	// performance the real cryocooler achieves. The paper's 77 K
	// overhead of 9.65 W/W corresponds to 30 % of Carnot, which is also
	// the value used for the temperature sweep in Fig 27.
	CarnotFraction float64
	// Ambient is the heat-rejection temperature.
	Ambient Kelvin
}

// DefaultCooling returns the paper's cooling model (30 % of Carnot,
// 300 K ambient ⇒ CO(77 K) = 9.65).
func DefaultCooling() CoolingModel {
	return CoolingModel{CarnotFraction: 0.30, Ambient: T300}
}

// Overhead returns CO(T): the compressor watts required to remove one
// watt of heat at temperature t. Eq. (1) of the paper with
// CO = (T_amb − T) / (η_carnot · T). An unphysical (non-positive)
// temperature costs infinite compressor power; callers taking
// user-supplied temperatures should reject them up front with
// ValidTemperature.
func (c CoolingModel) Overhead(t Kelvin) float64 {
	if err := ValidTemperature(t); err != nil {
		return math.Inf(1)
	}
	if t >= c.Ambient {
		return 0 // no refrigeration needed at or above ambient
	}
	return float64(c.Ambient-t) / (c.CarnotFraction * float64(t))
}

// TotalPower implements Eq. (2): P_total = (1 + CO(T)) · P_dev.
func (c CoolingModel) TotalPower(deviceWatts float64, t Kelvin) float64 {
	return deviceWatts * (1 + c.Overhead(t))
}
