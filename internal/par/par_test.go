package par

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestNormalize(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		{0, 10, 1},
		{-3, 10, 1},
		{1, 10, 1},
		{4, 10, 4},
		{10, 10, 10},
		{64, 10, 10}, // clamped to n
		{4, 0, 0},    // empty work: pool size is irrelevant
	}
	for _, c := range cases {
		if got := Normalize(c.workers, c.n); got != c.want {
			t.Errorf("Normalize(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if w := DefaultWorkers(); w < 1 {
		t.Fatalf("DefaultWorkers() = %d, want >= 1", w)
	}
}

// For must call fn exactly once per index at any worker count, and
// index-addressed writes must land where the caller put them.
func TestForRunsEveryIndexOnce(t *testing.T) {
	const n = 257
	for _, workers := range []int{0, 1, 2, 4, 64} {
		counts := make([]int32, n)
		out := make([]int, n)
		For(n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
			out[i] = i * i
		})
		for i := 0; i < n; i++ {
			if counts[i] != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, counts[i])
			}
			if out[i] != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], i*i)
			}
		}
	}
}

func TestForEmpty(t *testing.T) {
	ran := false
	For(0, 8, func(i int) { ran = true })
	if ran {
		t.Fatal("For(0, ...) invoked fn")
	}
}

// A panic inside fn must surface on the calling goroutine so upstream
// recover boundaries (experiments.Run, the public Simulate) behave the
// same in serial and parallel mode.
func TestForPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			For(16, workers, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		}()
	}
}

// Even when a task panics, the pool must finish (or at least start and
// account for) the remaining tasks before re-raising, never deadlock.
func TestForPanicDoesNotDeadlock(t *testing.T) {
	var ran int32
	func() {
		defer func() { recover() }()
		For(100, 4, func(i int) {
			atomic.AddInt32(&ran, 1)
			panic(i)
		})
	}()
	if got := atomic.LoadInt32(&ran); got != 100 {
		t.Fatalf("ran %d of 100 tasks after panic", got)
	}
}

// ForCtx with a pre-canceled context must not start any work in the
// parallel path and must report the context error.
func TestForCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran int32
		err := ForCtx(ctx, 100, workers, func(i int) { atomic.AddInt32(&ran, 1) })
		if err == nil {
			t.Fatalf("workers=%d: ForCtx returned nil on canceled context", workers)
		}
		// The serial path checks before each call; the parallel path
		// checks before each dispatch. Either way nothing should run.
		if got := atomic.LoadInt32(&ran); got != 0 {
			t.Fatalf("workers=%d: %d tasks ran on a pre-canceled context", workers, got)
		}
	}
}

// Canceling mid-flight must stop dispatching: well under n tasks run,
// in-flight tasks complete, and the context error is returned.
func TestForCtxCancelStopsDispatch(t *testing.T) {
	const n = 100000
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := ForCtx(ctx, n, 4, func(i int) {
		if atomic.AddInt32(&ran, 1) == 10 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("ForCtx returned nil after mid-flight cancel")
	}
	if got := atomic.LoadInt32(&ran); got == n {
		t.Fatal("cancellation did not stop dispatch: every task ran")
	}
}

// A nil context must behave like context.Background.
func TestForCtxNil(t *testing.T) {
	var ran int32
	if err := ForCtx(nil, 10, 2, func(i int) { atomic.AddInt32(&ran, 1) }); err != nil {
		t.Fatalf("ForCtx(nil, ...) = %v", err)
	}
	if ran != 10 {
		t.Fatalf("ran = %d, want 10", ran)
	}
}
