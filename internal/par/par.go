// Package par is the bounded fan-out primitive of the experiment
// engine. Every parallel surface in the library — experiment registry
// runs, design×workload evaluation grids, NoC load-latency sweeps —
// funnels through For, so parallelism is bounded the same way
// everywhere and results land by index, never by completion order.
// Determinism therefore only requires that each task seeds itself from
// its own index/config (which all callers do), not that tasks run in
// any particular order.
package par

import (
	"context"
	"runtime"
	"sync"
)

// DefaultWorkers is the standard pool size: one worker per available
// CPU, as set by GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Normalize clamps a caller-supplied worker count: 0 and negative
// values mean "serial" (1 worker); counts above n are pointless and are
// clamped to n.
func Normalize(workers, n int) int {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	return workers
}

// For runs fn(0..n-1) on a pool of at most workers goroutines and
// returns when every call has finished. With workers <= 1 it degrades
// to a plain serial loop on the calling goroutine — the serial and
// parallel paths execute the same code. fn must write its result into
// an index-addressed slot; For provides no ordering between tasks.
//
// A panic inside fn is captured and re-raised on the calling goroutine
// once the pool drains, so the panic-recovering boundaries upstream
// (experiments.Run, the public Simulate) behave identically in serial
// and parallel mode.
func For(n, workers int, fn func(i int)) {
	// A background context never cancels, so the error is always nil.
	_ = ForCtx(context.Background(), n, workers, fn)
}

// ForCtx is For with cooperative cancellation: no new task starts once
// ctx is done, tasks already running finish normally, and the context's
// error (if any) is returned after the pool drains. Cancellation is
// checked between tasks — a long-running fn that wants finer-grained
// cancellation must watch ctx itself. A nil ctx runs to completion.
//
// Because tasks write results into index-addressed slots, a canceled
// ForCtx leaves the slots of unstarted tasks untouched; callers must
// treat the result as invalid whenever ForCtx returns a non-nil error.
func ForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Normalize(workers, n)
	var (
		panicOnce sync.Once
		panicked  any
	)
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicked = r })
			}
		}()
		fn(i)
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			call(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range next {
					call(i)
				}
			}()
		}
	dispatch:
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(next)
		wg.Wait()
	}
	if panicked != nil {
		panic(panicked)
	}
	return ctx.Err()
}
