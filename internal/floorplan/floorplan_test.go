package floorplan

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable1Geometry(t *testing.T) {
	alu := Unit{Name: "alu", AreaUM: ALUArea, Width: ALUWidth}
	rf := Unit{Name: "rf", AreaUM: RegFileArea, Width: RegFileWidth}
	// Table 1: ALU height ≈74 µm, register file height ≈1090 µm.
	if h := float64(alu.Height()); math.Abs(h-74) > 1.5 {
		t.Errorf("ALU height = %v, want ≈74 µm", h)
	}
	if h := float64(rf.Height()); math.Abs(h-1090) > 5 {
		t.Errorf("regfile height = %v, want ≈1090 µm", h)
	}
}

func TestForwardingWireLength(t *testing.T) {
	// Table 1: 8×ALU + regfile heights = 1686 µm.
	got := float64(ForwardingWireLength())
	if math.Abs(got-1686)/1686 > 0.005 {
		t.Errorf("forwarding wire length = %v µm, want 1686 ±0.5%%", got)
	}
}

func TestSkylakeFloorplan(t *testing.T) {
	f := Skylake()
	if f.Units() < 10 {
		t.Fatalf("Skylake floorplan has %d units, want the full core complement", f.Units())
	}
	for _, name := range []string{"regfile", "alu0", "alu7", "scheduler", "rename", "decode", "btb", "icache", "branchchecker", "lsq", "dcache"} {
		if _, err := f.Unit(name); err != nil {
			t.Errorf("missing unit: %v", err)
		}
	}
	if _, err := f.Unit("nonexistent"); err == nil {
		t.Error("expected error for unknown unit")
	}
}

func TestDistanceSymmetricAndTriangle(t *testing.T) {
	f := Skylake()
	dab, err := f.Distance("regfile", "icache")
	if err != nil {
		t.Fatal(err)
	}
	dba, _ := f.Distance("icache", "regfile")
	if dab != dba {
		t.Errorf("distance not symmetric: %v vs %v", dab, dba)
	}
	if dab <= 0 {
		t.Errorf("distance regfile→icache = %v, want > 0", dab)
	}
	// Manhattan triangle inequality through an intermediate unit.
	dac, _ := f.Distance("regfile", "decode")
	dcb, _ := f.Distance("decode", "icache")
	if dab > dac+dcb+1e-9 {
		t.Errorf("triangle inequality violated: %v > %v + %v", dab, dac, dcb)
	}
}

func TestDistanceSelfIsZero(t *testing.T) {
	f := Skylake()
	d, err := f.Distance("regfile", "regfile")
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}
}

func TestForwardingStackIsLong(t *testing.T) {
	// The execution stack spans the forwarding-wire length: alu7 must be
	// far from the register file — this is why the bypass wires dominate
	// the backend critical paths.
	f := Skylake()
	d, err := f.Distance("regfile", "alu7")
	if err != nil {
		t.Fatal(err)
	}
	if float64(d) < 1000 {
		t.Errorf("regfile→alu7 distance = %v µm, want > 1000 (a long semi-global span)", d)
	}
}

func TestAdjacency(t *testing.T) {
	f := Skylake()
	// Decode and rename abut (compiled together, Fig 7(b) path ②-1).
	adj, err := f.Adjacent("decode", "rename")
	if err != nil {
		t.Fatal(err)
	}
	if !adj {
		t.Error("decode and rename should be adjacent")
	}
	// The regfile and the farthest ALU are not (path ②-2: Hspice-style
	// inter-unit wire modeling).
	adj, err = f.Adjacent("regfile", "alu7")
	if err != nil {
		t.Fatal(err)
	}
	if adj {
		t.Error("regfile and alu7 should not be adjacent")
	}
}

func TestUnitHeightProperty(t *testing.T) {
	// Height × width always recovers area for positive widths.
	f := func(rawArea, rawWidth uint16) bool {
		area := 100 + float64(rawArea)
		width := 10 + float64(rawWidth%1000)
		u := Unit{AreaUM: area, Width: Micron(width)}
		return math.Abs(float64(u.Height())*width-area) < 1e-6*area
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if (Unit{AreaUM: 100, Width: 0}).Height() != 0 {
		t.Error("zero-width unit should report zero height, not Inf")
	}
}

func TestPlaceReplaces(t *testing.T) {
	f := New("test")
	f.Place(Unit{Name: "u", AreaUM: 100, Width: 10, X: 0, Y: 0})
	f.Place(Unit{Name: "u", AreaUM: 200, Width: 10, X: 5, Y: 5})
	u, err := f.Unit("u")
	if err != nil {
		t.Fatal(err)
	}
	if u.AreaUM != 200 || u.X != 5 {
		t.Errorf("Place should replace: got %+v", u)
	}
	if f.Units() != 1 {
		t.Errorf("expected 1 unit after replace, got %d", f.Units())
	}
}
