// Package floorplan models the physical placement of microarchitectural
// units on a Skylake-like die (§3.1.2). The inter-unit wire model needs
// realistic unit geometry because the floorplan determines the length —
// and hence the latency — of the long inter-unit wires (forwarding
// loops, wakeup paths). Unit areas come from synthesizing BOOM's units
// (Table 1); the relative placement follows the WikiChip Skylake-client
// core floorplan the paper adopts.
package floorplan

import (
	"fmt"
	"math"
)

// Micron is a distance in micrometres.
type Micron float64

// Unit is one placed microarchitectural unit.
type Unit struct {
	Name   string
	AreaUM float64 // µm²
	Width  Micron  // µm
	X, Y   Micron  // lower-left corner position on the die
}

// Height returns the unit's height, derived from area and width as the
// paper does for Table 1.
func (u Unit) Height() Micron {
	if u.Width <= 0 {
		return 0
	}
	return Micron(u.AreaUM / float64(u.Width))
}

// Center returns the unit's center point.
func (u Unit) Center() (Micron, Micron) {
	return u.X + u.Width/2, u.Y + u.Height()/2
}

// Floorplan is a named collection of placed units.
type Floorplan struct {
	Name  string
	units map[string]Unit
}

// New creates an empty floorplan.
func New(name string) *Floorplan {
	return &Floorplan{Name: name, units: make(map[string]Unit)}
}

// Place adds (or replaces) a unit.
func (f *Floorplan) Place(u Unit) {
	f.units[u.Name] = u
}

// Unit returns the named unit.
func (f *Floorplan) Unit(name string) (Unit, error) {
	u, ok := f.units[name]
	if !ok {
		return Unit{}, fmt.Errorf("floorplan: no unit %q in %s", name, f.Name)
	}
	return u, nil
}

// Units returns the number of placed units.
func (f *Floorplan) Units() int { return len(f.units) }

// Distance returns the Manhattan center-to-center distance between two
// placed units — the routing length a semi-global inter-unit wire must
// cover.
func (f *Floorplan) Distance(a, b string) (Micron, error) {
	ua, err := f.Unit(a)
	if err != nil {
		return 0, err
	}
	ub, err := f.Unit(b)
	if err != nil {
		return 0, err
	}
	ax, ay := ua.Center()
	bx, by := ub.Center()
	return Micron(math.Abs(float64(ax-bx)) + math.Abs(float64(ay-by))), nil
}

// Adjacent reports whether two units abut (share an edge region),
// meaning their connecting wires are short enough that the synthesis
// flow alone models them (the ②-1 path in Fig 6); non-adjacent pairs
// need the explicit Hspice-style inter-unit wire model (②-2).
func (f *Floorplan) Adjacent(a, b string) (bool, error) {
	d, err := f.Distance(a, b)
	if err != nil {
		return false, err
	}
	ua, _ := f.Unit(a)
	ub, _ := f.Unit(b)
	// Units whose center distance is within the sum of their half
	// extents (plus a small routing margin) are considered adjacent.
	extent := (ua.Width + ua.Height() + ub.Width + ub.Height()) / 2
	return d <= extent*0.75, nil
}

// Table 1 geometry of the execution cluster, from synthesizing BOOM
// with the FreePDK 45 nm library.
const (
	ALUArea      = 25757.0  // µm²
	ALUWidth     = 345.0    // µm
	RegFileArea  = 376820.0 // µm²
	RegFileWidth = 345.0    // µm
	// ALUCount is the number of ALUs sharing the forwarding loop
	// (8-issue Skylake-class backend, following [39,48,49]: all ALUs and
	// the register file share one set of forwarding wires).
	ALUCount = 8
)

// ForwardingWireLength returns the forwarding-wire length of Table 1:
// the bypass bus spans all ALUs plus the register file, so its length
// is the stacked heights of those units (≈1686 µm).
func ForwardingWireLength() Micron {
	alu := Unit{Name: "alu", AreaUM: ALUArea, Width: ALUWidth}
	rf := Unit{Name: "regfile", AreaUM: RegFileArea, Width: RegFileWidth}
	return Micron(ALUCount)*alu.Height() + rf.Height()
}

// Skylake returns the Skylake-client-like core floorplan used by the
// pipeline model: the execution stack (ALUs over the register file)
// with the scheduler, rename/allocate block, decode block and frontend
// placed around it, in the arrangement of the WikiChip die shot.
// Coordinates are in µm; only relative distances matter.
func Skylake() *Floorplan {
	f := New("skylake-client-like")
	aluH := Micron(ALUArea / ALUWidth)
	rfH := Micron(RegFileArea / RegFileWidth)
	// Execution stack at x=0: 8 ALUs stacked above the register file.
	f.Place(Unit{Name: "regfile", AreaUM: RegFileArea, Width: RegFileWidth, X: 0, Y: 0})
	for i := 0; i < ALUCount; i++ {
		f.Place(Unit{
			Name:   fmt.Sprintf("alu%d", i),
			AreaUM: ALUArea, Width: ALUWidth,
			X: 0, Y: rfH + Micron(i)*aluH,
		})
	}
	// Scheduler (issue queue + wakeup/select CAM) beside the regfile.
	f.Place(Unit{Name: "scheduler", AreaUM: 180000, Width: 300, X: 360, Y: 0})
	// Rename/allocate above the scheduler.
	f.Place(Unit{Name: "rename", AreaUM: 90000, Width: 300, X: 360, Y: 620})
	// Decoders next to rename.
	f.Place(Unit{Name: "decode", AreaUM: 110000, Width: 300, X: 360, Y: 930})
	// Branch prediction + I-cache frontend at the top.
	f.Place(Unit{Name: "btb", AreaUM: 70000, Width: 330, X: 680, Y: 1100})
	f.Place(Unit{Name: "icache", AreaUM: 260000, Width: 420, X: 680, Y: 0})
	f.Place(Unit{Name: "branchchecker", AreaUM: 40000, Width: 200, X: 680, Y: 880})
	// Load/store unit + data cache on the far side.
	f.Place(Unit{Name: "lsq", AreaUM: 120000, Width: 300, X: 1120, Y: 600})
	f.Place(Unit{Name: "dcache", AreaUM: 300000, Width: 420, X: 1120, Y: 0})
	return f
}
