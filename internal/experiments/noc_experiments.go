package experiments

import (
	"fmt"

	"cryowire/internal/mem"
	"cryowire/internal/noc"
	"cryowire/internal/par"
	"cryowire/internal/phys"
	"cryowire/internal/platform"
	"cryowire/internal/workload"
)

func init() {
	register("fig16", Fig16)
	register("fig18", Fig18)
	register("fig20", Fig20)
	register("fig21", Fig21)
	register("fig25", Fig25)
	register("fig26", Fig26)
}

// nocUnderTest describes one NoC design for the latency/bandwidth
// figures.
type nocUnderTest struct {
	name string
	mk   func() noc.Network
}

// figNoCs builds the Fig 15/21 design list at 77 K with the given
// router pipeline depth variants, all clocked off the shared platform's
// memoized timings.
func figNoCs(pf *platform.Platform) []nocUnderTest {
	op := noc.Op77()
	mesh1 := pf.MeshTiming(op, 1)
	mesh3 := pf.MeshTiming(op, 3)
	bus := pf.BusTiming(op)
	return []nocUnderTest{
		{"Mesh (1-cycle)", func() noc.Network { return noc.NewMesh(64, mesh1) }},
		{"Mesh (3-cycle)", func() noc.Network { return noc.NewMesh(64, mesh3) }},
		{"CMesh (1-cycle)", func() noc.Network { return noc.NewCMesh(64, mesh1) }},
		{"CMesh (3-cycle)", func() noc.Network { return noc.NewCMesh(64, mesh3) }},
		{"FB (1-cycle)", func() noc.Network { return noc.NewFlattenedButterfly(64, mesh1) }},
		{"FB (3-cycle)", func() noc.Network { return noc.NewFlattenedButterfly(64, mesh3) }},
		{"77K Shared bus", func() noc.Network { return noc.NewSharedBus77(64, bus) }},
		{"CryoBus", func() noc.Network { return noc.NewCryoBus(64, bus) }},
		{"CryoBus (2-way)", func() noc.Network {
			return noc.NewInterleavedBus(2, func() *noc.Bus { return noc.NewCryoBus(64, bus) })
		}},
	}
}

// Fig16 reproduces the L3 hit/miss latency breakdown across NoCs and
// temperatures: NoC round trip (request + response at zero load) plus
// cache and DRAM service.
func Fig16(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig16",
		Title:  "L3 hit and miss latency breakdown (ns) for NoC designs at 300K and 77K",
		Header: []string{"design", "noc (ns)", "hit total (ns)", "miss total (ns)", "noc share of hit"},
		Notes: []string{
			"paper: at 77K the Mesh's NoC takes 71.7%/40.4% of L3 hit/miss latency",
			"paper: the 77K Shared bus nearly reaches the zero-NoC-latency line",
		},
	}
	pf := opt.platform()
	type cfg struct {
		name string
		mk   func() noc.Network
		temp phys.Kelvin
	}
	mesh300 := pf.MeshTiming(phys.Nominal45, 1)
	mesh77 := pf.MeshTiming(noc.Op77(), 1)
	bus300 := pf.BusTiming(phys.Nominal45)
	bus77 := pf.BusTiming(noc.Op77())
	cases := []cfg{
		{"300K Mesh", func() noc.Network { return noc.NewMesh(64, mesh300) }, phys.T300},
		{"300K FB", func() noc.Network { return noc.NewFlattenedButterfly(64, mesh300) }, phys.T300},
		{"300K CMesh", func() noc.Network { return noc.NewCMesh(64, mesh300) }, phys.T300},
		{"300K Shared bus", func() noc.Network { return noc.NewSharedBus300(64, bus300) }, phys.T300},
		{"77K Mesh", func() noc.Network { return noc.NewMesh(64, mesh77) }, phys.T77},
		{"77K FB", func() noc.Network { return noc.NewFlattenedButterfly(64, mesh77) }, phys.T77},
		{"77K CMesh", func() noc.Network { return noc.NewCMesh(64, mesh77) }, phys.T77},
		{"77K Shared bus", func() noc.Network { return noc.NewSharedBus77(64, bus77) }, phys.T77},
	}
	for _, c := range cases {
		n := c.mk()
		var freq float64
		switch v := n.(type) {
		case *noc.RouterNet:
			freq = v.Timing().FreqGHz
		case *noc.Bus:
			freq = v.Timing().FreqGHz
		}
		h := mem.ForTemp(c.temp)
		nocNS := 2 * n.ZeroLoadLatency() / freq // request + response
		hit := nocNS + h.L3.LatencyNS()
		miss := hit + h.DRAMLatencyNS
		r.AddRow(c.name, f2(nocNS), f2(hit), f2(miss), pct(nocNS/hit))
	}
	return r, nil
}

// Fig18 reproduces the shared-bus load-latency study with the workload
// injection bands.
func Fig18(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig18",
		Title:  "Load-latency of the shared bus at 300K and 77K + workload bands",
		Header: []string{"injection rate", "300K bus latency", "77K bus latency"},
		Notes:  []string{"paper: the 300K bus cannot run PARSEC; the 77K bus covers PARSEC but not SPEC/CloudSuite"},
	}
	pf := opt.platform()
	rates := []float64{0.0005, 0.001, 0.002, 0.003, 0.0045, 0.006, 0.009, 0.013}
	if opt.Quick {
		rates = []float64{0.001, 0.003, 0.006}
	}
	cfg := noc.SweepConfig{Pattern: noc.Uniform{}, Seed: 1, Workers: opt.Workers}
	if opt.Quick {
		cfg.WarmupCycles, cfg.MeasureCycles = 800, 2500
	}
	cfg.Rates = rates
	p300 := noc.LoadLatency(func() noc.Network {
		return noc.NewSharedBus300(64, pf.BusTiming(phys.Nominal45))
	}, cfg)
	p77 := noc.LoadLatency(func() noc.Network {
		return noc.NewSharedBus77(64, pf.BusTiming(noc.Op77()))
	}, cfg)
	get := func(pts []noc.SweepPoint, rate float64) string {
		for _, p := range pts {
			if p.InjectionRate == rate {
				if p.Saturated {
					return "saturated"
				}
				return f1(p.AvgLatency)
			}
		}
		return "saturated"
	}
	for _, rate := range rates {
		r.AddRow(fmt.Sprintf("%.4f", rate), get(p300, rate), get(p77, rate))
	}
	for _, s := range []workload.Suite{workload.PARSEC, workload.SPEC2006, workload.SPEC2017, workload.CloudSuite} {
		lo, hi := workload.SuiteInjectionBand(s)
		r.Notes = append(r.Notes, fmt.Sprintf("%s band: %.4f – %.4f req/node/cycle", s, lo, hi))
	}
	return r, nil
}

// Fig20 reproduces the broadcast-latency decomposition of the four bus
// designs.
func Fig20(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig20",
		Title:  "Latency breakdown (cycles) for the bus designs",
		Header: []string{"design", "request", "arbitration", "grant+control", "broadcast", "total"},
		Notes: []string{
			"paper: CryoBus reaches the 1-cycle broadcast; neither 77K cooling nor the H-tree alone suffices",
		},
	}
	pf := opt.platform()
	b300 := pf.BusTiming(phys.Nominal45)
	b77 := pf.BusTiming(noc.Op77())
	buses := []*noc.Bus{
		noc.NewSharedBus300(64, b300),
		noc.NewSharedBus77(64, b77),
		noc.NewHTreeBus300(64, b300),
		noc.NewCryoBus(64, b77),
	}
	for _, b := range buses {
		req, arb, grant, bc := b.Breakdown()
		r.AddRow(b.Name(), f1(req), f1(arb), f1(grant), f1(bc), f1(req+arb+grant+bc))
	}
	return r, nil
}

// loadLatencyReport sweeps a NoC list under one traffic pattern. The
// per-design saturation searches fan out over opt.Workers; rows land by
// design index, so the report is identical at any worker count.
func loadLatencyReport(id, title string, nets []nocUnderTest, pattern noc.Pattern, opt Options, notes ...string) (*Report, error) {
	r := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"design", "zero-load (cycles)", "saturation (pkts/node/cycle)"},
		Notes:  notes,
	}
	cfg := noc.SweepConfig{Pattern: pattern, Seed: 1}
	if opt.Quick {
		cfg.WarmupCycles, cfg.MeasureCycles = 600, 2000
	} else {
		cfg.WarmupCycles, cfg.MeasureCycles = 1500, 5000
	}
	cfg.Ctx = opt.Context()
	rows := make([][]string, len(nets))
	if err := par.ForCtx(opt.Context(), len(nets), opt.Workers, func(i int) {
		n := nets[i]
		zero := n.mk().ZeroLoadLatency()
		sat := noc.SaturationRate(n.mk, cfg)
		rows[i] = []string{n.name, f1(zero), fmt.Sprintf("%.4f", sat)}
	}); err != nil {
		return nil, err
	}
	r.Rows = rows
	return r, nil
}

// Fig21 reproduces the uniform-random load-latency comparison of all
// NoCs at 77 K.
func Fig21(opt Options) (*Report, error) {
	nets := figNoCs(opt.platform())
	if opt.Quick {
		nets = []nocUnderTest{nets[0], nets[6], nets[7]}
	}
	return loadLatencyReport("fig21",
		"Load-latency at uniform random, 77K, voltage-optimized",
		nets, noc.Uniform{}, opt,
		"paper: CryoBus covers every workload band and rivals CMesh/FB (3-cycle) bandwidth",
	)
}

// Fig25 reproduces the other traffic patterns.
func Fig25(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig25",
		Title:  "Load-latency across traffic patterns at 77K",
		Header: []string{"pattern", "design", "zero-load", "saturation"},
		Notes:  []string{"paper: CryoBus keeps the lowest latency on every pattern; router NoCs degrade off uniform"},
	}
	patterns := []noc.Pattern{noc.Transpose{}, noc.Hotspot{}, noc.BitReverse{}, noc.Burst{}}
	if opt.Quick {
		patterns = patterns[:1]
	}
	nets := figNoCs(opt.platform())
	picks := []int{0, 4, 6, 7, 8} // Mesh1c, FB1c, shared bus, CryoBus, 2-way
	if opt.Quick {
		picks = []int{0, 7}
	}
	base := noc.SweepConfig{Seed: 1}
	if opt.Quick {
		base.WarmupCycles, base.MeasureCycles = 600, 2000
	} else {
		base.WarmupCycles, base.MeasureCycles = 1500, 5000
	}
	// Flatten the pattern×design grid so the whole figure fans out.
	base.Ctx = opt.Context()
	rows := make([][]string, len(patterns)*len(picks))
	if err := par.ForCtx(opt.Context(), len(rows), opt.Workers, func(i int) {
		pat := patterns[i/len(picks)]
		n := nets[picks[i%len(picks)]]
		cfg := base
		cfg.Pattern = pat
		zero := n.mk().ZeroLoadLatency()
		sat := noc.SaturationRate(n.mk, cfg)
		rows[i] = []string{pat.Name(), n.name, f1(zero), fmt.Sprintf("%.4f", sat)}
	}); err != nil {
		return nil, err
	}
	r.Rows = rows
	return r, nil
}

// Fig26 reproduces the 256-core hybrid CryoBus scalability study.
func Fig26(opt Options) (*Report, error) {
	pf := opt.platform()
	op := noc.Op77()
	mesh1 := pf.MeshTiming(op, 1)
	bus := pf.BusTiming(op)
	nets := []nocUnderTest{
		{"Mesh-256 (1-cycle)", func() noc.Network { return noc.NewMesh(256, mesh1) }},
		{"CMesh-256 (1-cycle)", func() noc.Network { return noc.NewCMesh(256, mesh1) }},
		{"FB-256 (1-cycle)", func() noc.Network { return noc.NewFlattenedButterfly(256, mesh1) }},
		{"Hybrid CryoBus-256", func() noc.Network { return noc.NewHybridCryoBus(bus, mesh1) }},
	}
	if opt.Quick {
		nets = []nocUnderTest{nets[0], nets[3]}
	}
	return loadLatencyReport("fig26",
		"256-core hybrid CryoBus vs router NoCs (uniform random, 77K)",
		nets, noc.Uniform{}, opt,
		"paper: the hybrid keeps the lowest latency and scales comparably to router NoCs",
	)
}
