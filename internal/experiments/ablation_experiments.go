package experiments

import (
	"fmt"

	"cryowire/internal/branch"
	"cryowire/internal/noc"
	"cryowire/internal/par"
	"cryowire/internal/phys"
	"cryowire/internal/pipeline"
	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

func init() {
	register("abl-superpipeline", AblSuperpipeline)
	register("abl-topology", AblTopology)
	register("abl-dynlinks", AblDynamicLinks)
	register("abl-snoop", AblSnoopBenefit)
	register("abl-frontend", AblFrontend)
	register("abl-interleave", AblInterleave)
}

// AblSuperpipeline ablates the temperature dependence of frontend
// superpipelining: the methodology splits nothing at 300 K (the
// backend forwarding stages bound the clock) and three stages at 77 K.
func AblSuperpipeline(opt Options) (*Report, error) {
	r := &Report{
		ID:     "abl-superpipeline",
		Title:  "Ablation: frontend superpipelining at 300K vs 77K",
		Header: []string{"temperature", "stages split", "max path before", "max path after", "frequency gain"},
		Notes:  []string{"300K Observation #2: further frontend pipelining is meaningless at 300K"},
	}
	md := opt.platform().PipelineModel()
	for _, op := range []phys.OperatingPoint{phys.Nominal45, pipeline.At77()} {
		before := pipeline.BOOM()
		res := md.Superpipeline(before, op)
		_, db := md.CriticalPath(before, op)
		_, da := md.CriticalPath(res.Pipeline, op)
		r.AddRow(fmt.Sprintf("%.0fK", float64(op.T)),
			fmt.Sprintf("%d %v", len(res.SplitStages), res.SplitStages),
			f3(db), f3(da), f2(db/da))
	}
	return r, nil
}

// AblTopology ablates the two CryoBus ingredients independently:
// cooling the serpentine bus vs reshaping it into the H-tree at 300 K —
// neither alone reaches the 1-cycle broadcast (§5.2.3, Fig 20's point).
func AblTopology(opt Options) (*Report, error) {
	r := &Report{
		ID:     "abl-topology",
		Title:  "Ablation: bus topology × temperature",
		Header: []string{"design", "broadcast (cycles)", "zero-load (cycles)", "saturation"},
	}
	pf := opt.platform()
	b300 := pf.BusTiming(phys.Nominal45)
	b77 := pf.BusTiming(noc.Op77())
	cfg := noc.SweepConfig{Pattern: noc.Uniform{}, Seed: 1}
	if opt.Quick {
		cfg.WarmupCycles, cfg.MeasureCycles = 600, 2000
	} else {
		cfg.WarmupCycles, cfg.MeasureCycles = 1500, 5000
	}
	cases := []struct {
		name string
		mk   func() *noc.Bus
	}{
		{"serpentine @300K", func() *noc.Bus { return noc.NewSharedBus300(64, b300) }},
		{"serpentine @77K (cooling only)", func() *noc.Bus { return noc.NewSharedBus77(64, b77) }},
		{"H-tree @300K (topology only)", func() *noc.Bus { return noc.NewHTreeBus300(64, b300) }},
		{"H-tree @77K (CryoBus)", func() *noc.Bus { return noc.NewCryoBus(64, b77) }},
	}
	cfg.Ctx = opt.Context()
	rows := make([][]string, len(cases))
	if err := par.ForCtx(opt.Context(), len(cases), opt.Workers, func(i int) {
		c := cases[i]
		b := c.mk()
		_, _, _, bc := b.Breakdown()
		sat := noc.SaturationRate(func() noc.Network { return c.mk() }, cfg)
		rows[i] = []string{c.name, f1(bc), f1(b.ZeroLoadLatency()), fmt.Sprintf("%.4f", sat)}
	}); err != nil {
		return nil, err
	}
	r.Rows = rows
	return r, nil
}

// AblDynamicLinks ablates CryoBus's dynamic link connection: without
// it, every directed data transfer drives the whole H-tree (full
// broadcast occupancy and switching energy).
func AblDynamicLinks(opt Options) (*Report, error) {
	r := &Report{
		ID:     "abl-dynlinks",
		Title:  "Ablation: CryoBus dynamic link connection on/off",
		Header: []string{"variant", "avg data-transfer occupancy (cycles)", "saturation (mixed traffic)"},
		Notes:  []string{"§5.2.3: dynamic links minimize activated links and avoid wasteful broadcasting for data responses"},
	}
	b77 := opt.platform().BusTiming(noc.Op77())
	mk := func(dyn bool) func() *noc.Bus {
		return func() *noc.Bus {
			return noc.NewBus(noc.BusConfig{
				Name: "cryobus", Nodes: 64, Layout: noc.NewHTree(64),
				Timing: b77, ControlCycles: 1, DynamicLinks: dyn,
			})
		}
	}
	cfg := noc.SweepConfig{Pattern: noc.Uniform{}, Seed: 1, DataFlits: 2, DataFraction: 0.5}
	if opt.Quick {
		cfg.WarmupCycles, cfg.MeasureCycles = 600, 2000
	} else {
		cfg.WarmupCycles, cfg.MeasureCycles = 1500, 5000
	}
	cfg.Ctx = opt.Context()
	ht := noc.NewHTree(64)
	variants := []bool{false, true}
	rows := make([][]string, len(variants))
	if err := par.ForCtx(opt.Context(), len(variants), opt.Workers, func(i int) {
		dyn := variants[i]
		name := "static (full broadcast)"
		occ := float64(b77.WireCycles(ht.BroadcastHops()))
		if dyn {
			name = "dynamic link connection"
			// Average directed path under uniform traffic.
			sum, n := 0.0, 0
			for a := 0; a < 64; a += 3 {
				for b := 0; b < 64; b += 5 {
					if a != b {
						sum += float64(b77.WireCycles(ht.PathHops(a, b)))
						n++
					}
				}
			}
			occ = sum / float64(n)
		}
		sat := noc.SaturationRate(func() noc.Network { return mk(dyn)() }, cfg)
		rows[i] = []string{name, f2(occ), fmt.Sprintf("%.4f", sat)}
	}); err != nil {
		return nil, err
	}
	r.Rows = rows
	return r, nil
}

// AblSnoopBenefit isolates why streamcluster explodes on CryoBus: with
// its barriers removed, the CryoBus gain collapses to the ordinary
// latency benefit — the win is the snooping protocol's cheap
// synchronization, not raw bandwidth (§6.2).
func AblSnoopBenefit(opt Options) (*Report, error) {
	r := &Report{
		ID:     "abl-snoop",
		Title:  "Ablation: streamcluster's CryoBus gain with and without barriers",
		Header: []string{"variant", "CHP(77K,Mesh) perf", "CHP(77K,CryoBus) perf", "CryoBus gain"},
	}
	f := sim.NewFactoryWith(opt.platform())
	p, err := workload.ByName("streamcluster")
	if err != nil {
		return nil, err
	}
	noBarriers := p
	noBarriers.Name = "streamcluster (no barriers)"
	noBarriers.BarriersPerMI = 0
	workloads := []workload.Profile{p, noBarriers}
	designs := []sim.Design{f.CHPMesh(), f.CHPCryoBus()}
	specs := make([]sim.LaneSpec, len(workloads)*len(designs))
	for i := range specs {
		specs[i] = sim.LaneSpec{Design: designs[i%len(designs)], Profile: workloads[i/len(designs)], Config: opt.simCfg()}
	}
	results, errs := opt.runSims(specs)
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	perf := make([]float64, len(specs))
	for i := range results {
		perf[i] = results[i].Performance
	}
	for wi, wl := range workloads {
		mesh, bus := perf[wi*2], perf[wi*2+1]
		r.AddRow(wl.Name, f1(mesh), f1(bus), f2(bus/mesh))
	}
	return r, nil
}

// AblFrontend derives the superpipelining IPC tax from the real
// overriding-predictor model across branch densities (§4.4's 4.2%).
func AblFrontend(opt Options) (*Report, error) {
	r := &Report{
		ID:     "abl-frontend",
		Title:  "Ablation: IPC cost of the 3 extra frontend stages (overriding-predictor model)",
		Header: []string{"branches/instr", "base CPI", "IPC cost"},
		Notes:  []string{"paper: 4.2% IPC for the three superpipelined stages"},
	}
	n := 120000
	if opt.Quick {
		n = 30000
	}
	for _, c := range []struct{ bpi, cpi float64 }{
		{0.12, 0.45}, {0.18, 0.55}, {0.24, 0.65},
	} {
		cost := branch.SuperpipelineIPCCost(11, n, c.bpi, c.cpi)
		r.AddRow(f2(c.bpi), f2(c.cpi), pct(cost))
	}
	return r, nil
}

// AblInterleave sweeps the address-interleaving factor (§7.1).
func AblInterleave(opt Options) (*Report, error) {
	r := &Report{
		ID:     "abl-interleave",
		Title:  "Ablation: CryoBus address interleaving 1/2/4-way",
		Header: []string{"ways", "saturation (pkts/node/cycle)"},
		Notes:  []string{"§7.1: prior snooping buses shipped 2- to 8-way interleaving"},
	}
	b77 := opt.platform().BusTiming(noc.Op77())
	cfg := noc.SweepConfig{Pattern: noc.Uniform{}, Seed: 1}
	if opt.Quick {
		cfg.WarmupCycles, cfg.MeasureCycles = 600, 2000
	} else {
		cfg.WarmupCycles, cfg.MeasureCycles = 1500, 5000
	}
	cfg.Ctx = opt.Context()
	allWays := []int{1, 2, 4}
	rows := make([][]string, len(allWays))
	if err := par.ForCtx(opt.Context(), len(allWays), opt.Workers, func(i int) {
		ways := allWays[i]
		mk := func() noc.Network {
			if ways == 1 {
				return noc.NewCryoBus(64, b77)
			}
			return noc.NewInterleavedBus(ways, func() *noc.Bus { return noc.NewCryoBus(64, b77) })
		}
		sat := noc.SaturationRate(mk, cfg)
		rows[i] = []string{fmt.Sprintf("%d", ways), fmt.Sprintf("%.4f", sat)}
	}); err != nil {
		return nil, err
	}
	r.Rows = rows
	return r, nil
}
