package experiments

import (
	"fmt"
	"math/rand"

	"cryowire/internal/noc"
	"cryowire/internal/par"
	"cryowire/internal/phys"
)

func init() {
	register("fig22-activity", Fig22Activity)
	register("table4-derived", Table4Derived)
}

// Fig22Activity recomputes the Fig 22 comparison from measured
// switching activity instead of the analytic factors: each NoC carries
// the same PARSEC-class traffic and reports wire-mm and router events,
// which scale its dynamic power.
func Fig22Activity(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig22-activity",
		Title:  "NoC power from measured switching activity (normalized to 300K Mesh)",
		Header: []string{"design", "wire mm/pkt", "router events/pkt", "rel. dynamic", "rel. total (with cooling)"},
		Notes: []string{
			"cross-check of fig22: dynamic power from counted activity × V²f; static from the leakage model",
			"paper: CryoBus 57.2%/40.5%/30.7% below 300K Mesh / 77K Mesh / 77K Shared bus",
		},
	}
	pf := opt.platform()
	m := pf.MOSFET()
	type cfgCase struct {
		name    string
		mk      func() noc.Network
		vdd     float64
		freq    float64
		temp    phys.Kelvin
		bcast   bool
		routers bool
	}
	mesh300 := pf.MeshTiming(phys.Nominal45, 1)
	mesh77 := pf.MeshTiming(noc.Op77(), 1)
	bus77 := pf.BusTiming(noc.Op77())
	cases := []cfgCase{
		{"300K Mesh", func() noc.Network { return noc.NewMesh(64, mesh300) }, 1.0, 1.0, phys.T300, false, true},
		{"77K Mesh", func() noc.Network { return noc.NewMesh(64, mesh77) }, 0.55, 1.36, phys.T77, false, true},
		{"77K Shared bus", func() noc.Network { return noc.NewSharedBus77(64, bus77) }, 0.55, 1.0, phys.T77, true, false},
		{"CryoBus", func() noc.Network { return noc.NewCryoBus(64, bus77) }, 0.55, 1.0, phys.T77, true, false},
	}
	cycles := 20000
	if opt.Quick {
		cycles = 5000
	}
	// Per-wire-mm and per-router-event energy weights (relative units)
	// and the leakage-dominated static share at the 300 K reference.
	const (
		wireWeight   = 1.0
		routerWeight = 3.0
		staticShare  = 0.84
	)
	type measured struct {
		name        string
		wirePerPkt  float64
		eventPerPkt float64
		dynRaw      float64
		static      float64
		temp        phys.Kelvin
	}
	// Each case drives its own network with its own fixed-seed rng, so
	// the measurements fan out over opt.Workers without changing them.
	ms := make([]measured, len(cases))
	errs := make([]error, len(cases))
	if err := par.ForCtx(opt.Context(), len(cases), opt.Workers, func(ci int) {
		c := cases[ci]
		n := c.mk()
		rng := rand.New(rand.NewSource(9))
		var id int64
		delivered0 := n.Stats().Delivered
		for cyc := 0; cyc < cycles; cyc++ {
			for s := 0; s < 64; s++ {
				if rng.Float64() < 0.003 { // PARSEC-class load
					dst := noc.Uniform{}.Dest(s, 64, rng)
					if c.bcast && rng.Float64() < 0.5 {
						dst = noc.Broadcast
					}
					n.TryInject(&noc.Packet{ID: id, Src: s, Dst: dst, Flits: 1, InjectedAt: n.Cycle()})
					id++
				}
			}
			n.Step()
		}
		em, ok := n.(noc.EnergyMeter)
		if !ok {
			errs[ci] = fmt.Errorf("fig22-activity: %s has no energy meter", c.name)
			return
		}
		e := em.Energy()
		pkts := float64(n.Stats().Delivered - delivered0)
		if pkts == 0 {
			pkts = 1
		}
		events := float64(e.RouterTraversals + e.BufferWrites)
		activity := wireWeight*e.WireMMFlits + routerWeight*events
		dyn := activity / float64(cycles) * c.vdd * c.vdd * c.freq
		leakOp := phys.OperatingPoint{T: c.temp, Vdd: phys.Volts(c.vdd), Vth: 0.468}
		if c.temp == phys.T77 {
			leakOp.Vth = 0.225
		}
		relLeak := m.LeakageFactor(leakOp) / m.LeakageFactor(phys.OperatingPoint{T: phys.T300, Vdd: 1.0, Vth: 0.468})
		stat := staticShare * c.vdd * relLeak
		ms[ci] = measured{
			name:        c.name,
			wirePerPkt:  e.WireMMFlits / pkts,
			eventPerPkt: events / pkts,
			dynRaw:      dyn,
			static:      stat,
			temp:        c.temp,
		}
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Normalize the activity units so the 300 K mesh lands on the
	// leakage-dominated 16/84 dynamic/static split the paper implies.
	dynScale := (1 - staticShare) / ms[0].dynRaw
	cool := phys.DefaultCooling()
	refDev := ms[0].dynRaw*dynScale + ms[0].static
	refTotal := refDev * (1 + cool.Overhead(ms[0].temp))
	for _, mm := range ms {
		dev := mm.dynRaw*dynScale + mm.static
		total := dev * (1 + cool.Overhead(mm.temp)) / refTotal
		r.AddRow(mm.name, f2(mm.wirePerPkt), f2(mm.eventPerPkt),
			f3(dev/refDev), f3(total))
	}
	return r, nil
}

// Table4Derived re-derives the Table 4 memory latencies from the
// circuit-level CACTI-lite and banked-DRAM models instead of quoting
// them.
func Table4Derived(Options) (*Report, error) {
	r := &Report{
		ID:     "table4-derived",
		Title:  "Table 4 memory latencies derived from circuit models",
		Header: []string{"component", "quoted (Table 4)", "derived", "77K speedup (derived)"},
	}
	// Deferred to the cacti/dram packages via the bridge helper below.
	rows, err := table4DerivedRows()
	if err != nil {
		return nil, err
	}
	r.Rows = rows
	r.Notes = append(r.Notes,
		"caches: CACTI-lite geometry model at the Table 4 voltage points",
		"DRAM: banked DDR4-2400 vs CLL-DRAM timing model")
	return r, nil
}
