package experiments

import (
	"fmt"

	"cryowire/internal/stage"
)

func init() {
	register("stagesweep", StageSweep)
}

// StageSweep evaluates the three canonical temperature-stage
// assignments — everything at 300 K, the paper's 77 K CryoSP system,
// and the 4 K tier with 77 K memory — with full simulation, then
// prices each through its staged cooling chain: per-stage device heat
// plus cable heat leak and signal dissipation, each stage lifted to
// wall power by its own Carnot-fraction overhead. It answers the
// question the flat CO(T) lift cannot: whether the 4 K wire speedups
// survive a cryocooler that pays ~25x more per device watt than the
// 77 K stage.
func StageSweep(opt Options) (*Report, error) {
	res, err := stage.Sweep(opt.Context(), nil, stage.SweepOptions{
		Platform: opt.platform(),
		Sim:      opt.Sim,
		Workers:  opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:    "stagesweep",
		Title: "Temperature stages: cooling-inclusive perf/W of 300K / 77K / 4K assignments",
		Header: []string{"assignment", "tier K", "mem K", "freq GHz", "IPC",
			"perf (inst/ns)", "device W", "wall W", "perf/W"},
		Notes: []string{
			fmt.Sprintf("wall watts lift each stage's heatload (device + cable leak + signal) through its own Carnot-fraction cooler; 1 relative power unit = %g W", res.WattsPerUnit),
			"the host stays at 300 K; cables charge their passive leak and driver dissipation to the colder stage",
			"CO(4K) is ~25x CO(77K) per device watt, so the 4 K tier's clock gains must clear a far higher cooling bill",
		},
	}
	for _, a := range res.Assignments {
		r.AddRow(a.Name, fmt.Sprintf("%g", a.TierK), fmt.Sprintf("%g", a.MemK),
			f2(a.FreqGHz), f3(a.IPC), f2(a.Performance), f2(a.DeviceWatts),
			f2(a.WallWatts), fmt.Sprintf("%.5f", a.PerfPerWatt))
	}
	return r, nil
}
