// Package experiments reproduces every table and figure with data in
// the CryoWire paper. Each runner returns a typed Report that the CLI,
// the benchmarks and EXPERIMENTS.md rendering share. DESIGN.md maps
// experiment IDs to paper sections; EXPERIMENTS.md records model-vs-
// paper numbers.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cryowire/internal/sim"
)

// Report is one reproduced table or figure.
type Report struct {
	ID    string // "fig5", "table3", ...
	Title string
	// Notes carry the paper's anchor values and any known deviation.
	Notes  []string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Render returns the report as a fixed-width text table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options tunes the simulation-backed experiments.
type Options struct {
	Sim sim.Config
	// Quick shrinks sweeps for tests and benchmarks.
	Quick bool
}

// DefaultOptions returns CLI-grade run lengths.
func DefaultOptions() Options {
	return Options{Sim: sim.Config{WarmupCycles: 4000, MeasureCycles: 16000, Seed: 1}}
}

// QuickOptions returns test/bench-grade run lengths.
func QuickOptions() Options {
	return Options{Sim: sim.Config{WarmupCycles: 1200, MeasureCycles: 5000, Seed: 1}, Quick: true}
}

// Runner produces a report.
type Runner func(Options) (*Report, error)

// registry maps experiment IDs to runners.
var registry = map[string]Runner{}

// register installs a runner (called from init functions).
func register(id string, r Runner) {
	registry[id] = r
}

// IDs returns all experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID. Any residual internal panic is
// recovered into an error so the public API never crashes the caller.
func Run(id string, opt Options) (rep *Report, err error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	defer func() {
		if rec := recover(); rec != nil {
			rep, err = nil, fmt.Errorf("experiments: %s panicked: %v", id, rec)
		}
	}()
	return r(opt)
}

// f2 formats a float with 2 decimals; f3 with 3.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}
