// Package experiments reproduces every table and figure with data in
// the CryoWire paper. Each runner returns a typed Report that the CLI,
// the benchmarks and EXPERIMENTS.md rendering share. DESIGN.md maps
// experiment IDs to paper sections; EXPERIMENTS.md records model-vs-
// paper numbers.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"cryowire/internal/par"
	"cryowire/internal/platform"
	"cryowire/internal/sim"
)

// Report is one reproduced table or figure.
type Report struct {
	ID    string `json:"id"` // "fig5", "table3", ...
	Title string `json:"title"`
	// Notes carry the paper's anchor values and any known deviation.
	Notes  []string   `json:"notes,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Render returns the report as a fixed-width text table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// JSON returns the report as stable, indented JSON: field order follows
// the struct, rows keep insertion order, so equal reports encode to
// byte-identical documents.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Options tunes the simulation-backed experiments.
type Options struct {
	Sim sim.Config
	// Quick shrinks sweeps for tests and benchmarks.
	Quick bool
	// Platform supplies the shared derivation cache every experiment
	// draws its physics from; nil uses the process-wide default. RunAll
	// and parallel sweeps only pay each derivation once because all
	// runners share this one platform.
	Platform *platform.Platform
	// Workers bounds the fan-out of RunAll and of each experiment's
	// internal design×workload×rate sweeps; 0 or 1 runs everything
	// serially. Every task derives its seed from Sim.Seed and its own
	// grid position, so reports are byte-identical at any worker count.
	Workers int
	// Batch selects how simulation grids run. 0 (the default) batches
	// them through sim.BatchRunner with an automatic lane count; > 0
	// forces that many lanes per batch; < 0 runs the legacy per-point
	// path (one System.Run per grid cell). All three modes produce
	// byte-identical reports — batching is a scheduling choice, never a
	// semantic one.
	Batch int
	// SpecObserver, when non-nil, is called once per simulation the
	// experiments submit (before it runs). Used by benchsim to record
	// the sweep's workload; it must be safe for concurrent calls when
	// Workers > 1 and must not mutate the spec.
	SpecObserver func(sim.LaneSpec)
	// ctx carries the caller's cancellation signal into every runner's
	// fan-out and every simulation; nil never cancels. Set with
	// WithContext (RunCtx and RunAllCtx do it for you).
	ctx context.Context
	// cache dedups identical simulations across the experiments of one
	// RunAll (figures share grid rows); installed by RunAllCtx in
	// batched mode.
	cache *sim.ResultCache
}

// runSims executes one experiment's simulation grid and returns
// results index-aligned with specs, plus the first error in grid order
// (per-lane failures surface as *sim.LaneError). Batched and per-point
// modes return identical bytes; see Options.Batch.
func (o Options) runSims(specs []sim.LaneSpec) ([]sim.Result, []error) {
	if o.SpecObserver != nil {
		for _, sp := range specs {
			o.SpecObserver(sp)
		}
	}
	if o.Batch < 0 {
		results := make([]sim.Result, len(specs))
		errs := make([]error, len(specs))
		ran := make([]bool, len(specs))
		perr := par.ForCtx(o.Context(), len(specs), o.Workers, func(i int) {
			ran[i] = true
			s, err := sim.New(specs[i].Design, specs[i].Profile, specs[i].Config)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = s.Run()
		})
		if perr != nil {
			for i := range specs {
				if !ran[i] {
					errs[i] = perr
				}
			}
		}
		return results, errs
	}
	r := &sim.BatchRunner{Lanes: o.Batch, Workers: o.Workers, Cache: o.cache}
	return r.RunCtx(o.Context(), specs)
}

// firstErr returns the first non-nil error in grid order — the one the
// serial legacy loop would have stopped on.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// WithContext returns a copy of the options whose experiment runs abort
// with ctx's error once ctx is canceled or its deadline passes.
func (o Options) WithContext(ctx context.Context) Options {
	o.ctx = ctx
	return o
}

// Context returns the options' cancellation context, never nil.
func (o Options) Context() context.Context {
	if o.ctx == nil {
		return context.Background()
	}
	return o.ctx
}

// platform returns the options' platform, defaulting to the shared one.
func (o Options) platform() *platform.Platform {
	if o.Platform != nil {
		return o.Platform
	}
	return platform.Default()
}

// simCfg returns the simulation config with the experiment-level worker
// bound and cancellation context threaded through (an explicit
// Sim.Workers wins).
func (o Options) simCfg() sim.Config {
	cfg := o.Sim
	if cfg.Workers == 0 {
		cfg.Workers = o.Workers
	}
	if o.ctx != nil {
		cfg = cfg.WithContext(o.ctx)
	}
	return cfg
}

// DefaultOptions returns CLI-grade run lengths.
func DefaultOptions() Options {
	return Options{Sim: sim.Config{WarmupCycles: 4000, MeasureCycles: 16000, Seed: 1}}
}

// QuickOptions returns test/bench-grade run lengths.
func QuickOptions() Options {
	return Options{Sim: sim.Config{WarmupCycles: 1200, MeasureCycles: 5000, Seed: 1}, Quick: true}
}

// Runner produces a report.
type Runner func(Options) (*Report, error)

// registry maps experiment IDs to runners.
var registry = map[string]Runner{}

// register installs a runner (called from init functions).
func register(id string, r Runner) {
	registry[id] = r
}

// IDs returns all experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID. Any residual internal panic is
// recovered into an error so the public API never crashes the caller.
func Run(id string, opt Options) (rep *Report, err error) {
	return RunCtx(opt.Context(), id, opt)
}

// RunCtx is Run with cancellation: once ctx is done the experiment's
// internal fan-outs stop handing out tasks, in-flight simulations abort
// between cycles, and ctx's error comes back to the caller.
func RunCtx(ctx context.Context, id string, opt Options) (rep *Report, err error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	if ctx != nil {
		opt = opt.WithContext(ctx)
	}
	if err := opt.Context().Err(); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	defer func() {
		if rec := recover(); rec != nil {
			rep, err = nil, fmt.Errorf("experiments: %s panicked: %v", id, rec)
		}
	}()
	return r(opt)
}

// Outcome is one RunAll result.
type Outcome struct {
	ID     string
	Report *Report
	Err    error
}

// RunAll executes every registered experiment and returns the outcomes
// in sorted-ID order. With opt.Workers > 1 the experiments fan out over
// a bounded pool sharing the options' platform; because each outcome
// lands at its ID's index and every runner seeds from its own grid
// position, the outcomes — and their rendered reports — are
// byte-identical to a serial run.
func RunAll(opt Options) []Outcome {
	return RunAllCtx(opt.Context(), opt)
}

// RunAllCtx is RunAll with cancellation: once ctx is done no further
// experiment starts and every not-yet-finished outcome reports ctx's
// error, so the caller always gets one outcome per registered ID.
func RunAllCtx(ctx context.Context, opt Options) []Outcome {
	if ctx != nil {
		opt = opt.WithContext(ctx)
	}
	if opt.Batch >= 0 && opt.cache == nil {
		// One shared result cache for the whole sweep: experiments share
		// grid rows (Fig 3's baselines reappear in Fig 23, the fault
		// sweep's healthy rows are Fig 23 rows), and batched mode dedups
		// them instead of re-simulating.
		opt.cache = sim.NewResultCache()
	}
	ids := IDs()
	out := make([]Outcome, len(ids))
	err := par.ForCtx(opt.Context(), len(ids), opt.Workers, func(i int) {
		rep, err := RunCtx(opt.Context(), ids[i], opt)
		out[i] = Outcome{ID: ids[i], Report: rep, Err: err}
	})
	if err != nil {
		for i := range out {
			if out[i].ID == "" {
				out[i] = Outcome{ID: ids[i], Err: fmt.Errorf("experiments: %s: %w", ids[i], err)}
			}
		}
	}
	return out
}

// f2 formats a float with 2 decimals; f3 with 3.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}
