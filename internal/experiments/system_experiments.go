package experiments

import (
	"fmt"

	"cryowire/internal/core"
	"cryowire/internal/pipeline"
	"cryowire/internal/power"
	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

func init() {
	register("fig3", Fig3)
	register("fig17", Fig17)
	register("fig22", Fig22)
	register("fig23", Fig23)
	register("fig24", Fig24)
	register("fig27", Fig27)
	register("table3", Table3)
	register("table4", Table4)
}

// parsecSubset returns the PARSEC profiles, shrunk in quick mode.
func parsecSubset(opt Options) []workload.Profile {
	all := workload.Parsec()
	if !opt.Quick {
		return all
	}
	var out []workload.Profile
	for _, p := range all {
		switch p.Name {
		case "blackscholes", "ferret", "streamcluster", "x264":
			out = append(out, p)
		}
	}
	return out
}

// Fig3 reproduces the normalized CPI stacks of PARSEC on the 300 K
// baseline system. The per-workload simulations fan out over
// opt.Workers; each lands at its profile index.
func Fig3(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig3",
		Title:  "Normalized CPI stacks of PARSEC on Baseline (300K, Mesh)",
		Header: []string{"workload", "base", "noc", "l3", "dram", "sync", "network-bound"},
		Notes: []string{
			"paper: NoC-bound share 45.6% average, 76.6% max",
			"network-bound = noc + sync (barrier time is coherence-message time)",
		},
	}
	f := sim.NewFactoryWith(opt.platform())
	d := f.Baseline300()
	profiles := parsecSubset(opt)
	specs := make([]sim.LaneSpec, len(profiles))
	for i, p := range profiles {
		specs[i] = sim.LaneSpec{Design: d, Profile: p, Config: opt.simCfg()}
	}
	results, errs := opt.runSims(specs)
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	rows := make([][]string, len(profiles))
	shares := make([]float64, len(profiles))
	for i, p := range profiles {
		res := results[i]
		shares[i] = res.NoCShare()
		rows[i] = []string{p.Name,
			pct(res.Stack[sim.BucketBase]), pct(res.Stack[sim.BucketNoC]),
			pct(res.Stack[sim.BucketL3]), pct(res.Stack[sim.BucketDRAM]),
			pct(res.Stack[sim.BucketSync]), pct(shares[i])}
	}
	var sum, max float64
	for _, share := range shares {
		sum += share
		if share > max {
			max = share
		}
	}
	r.Rows = rows
	r.AddRow("average", "", "", "", "", "", pct(sum/float64(len(profiles))))
	r.AddRow("max", "", "", "", "", "", pct(max))
	return r, nil
}

// Fig17 reproduces the 77 K mesh vs shared-bus vs ideal-NoC comparison.
func Fig17(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig17",
		Title:  "System performance with 77K Mesh and 77K Shared bus vs an ideal NoC",
		Header: []string{"workload", "mesh/ideal", "shared-bus/ideal"},
		Notes:  []string{"paper: mesh loses 43.3% vs ideal; the shared bus only 8.1%"},
	}
	f := sim.NewFactoryWith(opt.platform())
	designs := []sim.Design{f.IdealNoC77(), f.CHPMesh(), f.SharedBus77()}
	profiles := parsecSubset(opt)
	// Flatten the profile×design grid so every simulation batches.
	specs := make([]sim.LaneSpec, len(profiles)*len(designs))
	for i := range specs {
		specs[i] = sim.LaneSpec{Design: designs[i%len(designs)], Profile: profiles[i/len(designs)], Config: opt.simCfg()}
	}
	results, errs := opt.runSims(specs)
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	perf := make([]float64, len(specs))
	for i := range results {
		perf[i] = results[i].Performance
	}
	var meshSum, busSum float64
	for pi, p := range profiles {
		base := pi * len(designs)
		mesh := perf[base+1] / perf[base]
		bus := perf[base+2] / perf[base]
		meshSum += mesh
		busSum += bus
		r.AddRow(p.Name, f3(mesh), f3(bus))
	}
	n := float64(len(profiles))
	r.AddRow("average", f3(meshSum/n), f3(busSum/n))
	return r, nil
}

// Fig22 reproduces the NoC power comparison.
func Fig22(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig22",
		Title:  "NoC power with voltage optimization and cooling (normalized to 300K Mesh)",
		Header: []string{"design", "device power", "total power (with cooling)"},
		Notes: []string{
			"paper: CryoBus uses 57.2% less than 300K Mesh, 40.5% less than 77K Mesh, 30.7% less than 77K Shared bus",
		},
	}
	m := opt.platform().PowerModel()
	for _, k := range []power.NoCKind{power.Mesh300, power.Mesh77, power.SharedBus77, power.CryoBus77} {
		r.AddRow(k.String(), f3(m.NoCPower(k)), f3(m.NoCTotalPower(k)))
	}
	return r, nil
}

// evaluationDesigns returns the five Table 4 systems built on the
// options' platform.
func evaluationDesigns(opt Options) []sim.Design {
	return sim.NewFactoryWith(opt.platform()).Evaluation()
}

// Fig23 reproduces the headline multi-thread comparison.
func Fig23(opt Options) (*Report, error) {
	r := &Report{
		ID:    "fig23",
		Title: "Multi-thread PARSEC performance of the five systems (normalized to CHP-core (77K, Mesh))",
		Header: []string{"workload", "Baseline(300K,Mesh)", "CHP(77K,Mesh)", "CryoSP(77K,Mesh)",
			"CHP(77K,CryoBus)", "CryoSP(77K,CryoBus)"},
		Notes: []string{
			"paper: CryoSP+CryoBus = 2.53x vs CHP-mesh (up to 5.74x streamcluster), 3.82x vs 300K baseline",
			"this model: lower average magnitude, same ordering and same outliers (see EXPERIMENTS.md)",
		},
	}
	c := core.NewWith(opt.platform())
	ev, err := c.EvaluateWith(opt.runSims, evaluationDesigns(opt), parsecSubset(opt), 1, opt.simCfg())
	if err != nil {
		return nil, err
	}
	for wi, wl := range ev.Workloads {
		row := []string{wl}
		for di := range ev.Designs {
			row = append(row, f2(ev.Perf[wi][di]/ev.Perf[wi][ev.RefIndex]))
		}
		r.AddRow(row...)
	}
	row := []string{"geomean"}
	for _, g := range ev.MeanSpeedup {
		row = append(row, f2(g))
	}
	r.AddRow(row...)
	if ev.MeanSpeedup[0] > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf("CryoSP(77K,CryoBus) vs 300K baseline: %.2fx",
			ev.MeanSpeedup[4]/ev.MeanSpeedup[0]))
	}
	return r, nil
}

// Fig24 reproduces the SPEC rate-mode study with the aggressive stride
// prefetcher and 2-way interleaving.
func Fig24(opt Options) (*Report, error) {
	r := &Report{
		ID:    "fig24",
		Title: "SPEC2006/2017 64-copy performance with aggressive stride prefetching",
		Header: []string{"workload", "Baseline(300K,Mesh)", "CHP(77K,Mesh)",
			"CryoSP(77K,CryoBus)", "CryoSP(77K,CryoBus,2-way)"},
		Notes: []string{
			"paper: CryoBus 2.11x vs 300K mesh, +37.2% vs CHP mesh; 2-way interleaving removes the contention cases",
		},
	}
	f := sim.NewFactoryWith(opt.platform())
	designs := []sim.Design{
		sim.WithPrefetcher(f.Baseline300()),
		sim.WithPrefetcher(f.CHPMesh()),
		sim.WithPrefetcher(f.CryoSPCryoBus()),
		sim.With2WayInterleaving(sim.WithPrefetcher(f.CryoSPCryoBus())),
	}
	profiles := append(workload.Spec2006(), workload.Spec2017()...)
	if opt.Quick {
		profiles = profiles[:3]
	}
	c := core.NewWith(opt.platform())
	ev, err := c.EvaluateWith(opt.runSims, designs, profiles, 1, opt.simCfg())
	if err != nil {
		return nil, err
	}
	for wi, wl := range ev.Workloads {
		row := []string{wl}
		for di := range ev.Designs {
			row = append(row, f2(ev.Perf[wi][di]/ev.Perf[wi][ev.RefIndex]))
		}
		r.AddRow(row...)
	}
	row := []string{"geomean"}
	for _, g := range ev.MeanSpeedup {
		row = append(row, f2(g))
	}
	r.AddRow(row...)
	return r, nil
}

// Fig27 reproduces the temperature sweep.
func Fig27(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig27",
		Title:  "Performance, power and cooling overhead across temperatures",
		Header: []string{"T (K)", "freq (GHz)", "Vdd (V)", "CO(T)", "rel. perf", "rel. power", "perf/power"},
		Notes:  []string{"paper: 100K beats 77K on perf/power — cooling overhead grows faster than performance"},
	}
	m := opt.platform().PowerModel()
	pts, err := m.TemperatureSweep([]power.Kelvin{300, 250, 200, 150, 125, 100, 90, 77})
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		r.AddRow(f1(float64(p.T)), f2(p.FreqGHz), f2(float64(p.Vdd)), f2(p.CoolingOverhead),
			f2(p.RelPerformance), f2(p.RelPower), f3(p.PerfPerPower))
	}
	return r, nil
}

// Table3 reproduces the core specification table.
func Table3(opt Options) (*Report, error) {
	r := &Report{
		ID:    "table3",
		Title: "Pipeline specification of the cores",
		Header: []string{"property", "300K Baseline", "77K Superpipeline",
			"77K SP+CryoCore", "77K CryoSP", "CHP-core"},
		Notes: []string{
			"paper: 4.0 / 6.4 / 6.4 / 7.84 / 6.1 GHz; total power 1 / 17.15 / 3.73 / 1 / 1",
			"IPC@4GHz measured by the full-system simulator on a PARSEC mix",
		},
	}
	pf := opt.platform()
	cores := []pipeline.CoreSpec{
		pf.Baseline300(),
		pf.Superpipeline77(),
		pf.SuperpipelineCryoCore77(),
		pf.CryoSP(),
		pf.CHPCore(),
	}
	row := func(name string, get func(c pipeline.CoreSpec) string) {
		cells := []string{name}
		for _, c := range cores {
			cells = append(cells, get(c))
		}
		r.AddRow(cells...)
	}
	row("frequency (GHz)", func(c pipeline.CoreSpec) string { return f2(c.FreqGHz) })
	row("pipeline depth", func(c pipeline.CoreSpec) string { return fmt.Sprintf("%d", c.Depth) })
	row("pipeline width", func(c pipeline.CoreSpec) string { return fmt.Sprintf("%d", c.Width) })
	row("load queue", func(c pipeline.CoreSpec) string { return fmt.Sprintf("%d", c.LoadQ) })
	row("store queue", func(c pipeline.CoreSpec) string { return fmt.Sprintf("%d", c.StoreQ) })
	row("issue queue", func(c pipeline.CoreSpec) string { return fmt.Sprintf("%d", c.IssueQ) })
	row("reorder buffer", func(c pipeline.CoreSpec) string { return fmt.Sprintf("%d", c.ROB) })
	row("int registers", func(c pipeline.CoreSpec) string { return fmt.Sprintf("%d", c.IntRegs) })
	row("fp registers", func(c pipeline.CoreSpec) string { return fmt.Sprintf("%d", c.FpRegs) })
	row("Vdd (V)", func(c pipeline.CoreSpec) string { return f2(float64(c.Op.Vdd)) })
	row("Vth (V)", func(c pipeline.CoreSpec) string { return f2(float64(c.Op.Vth)) })
	pw := pf.PowerModel()
	row("core power (rel.)", func(c pipeline.CoreSpec) string { return f3(pw.CorePower(c)) })
	row("total power (rel.)", func(c pipeline.CoreSpec) string { return f2(pw.CoreTotalPower(c)) })
	// IPC at a common 4 GHz clock from the simulator.
	ipcs, err := table3IPC(cores, opt)
	if err != nil {
		return nil, err
	}
	cells := []string{"IPC @4GHz (sim)"}
	for _, v := range ipcs {
		cells = append(cells, f2(v))
	}
	r.AddRow(cells...)
	return r, nil
}

// table3IPC measures each core's IPC at a forced common 4 GHz clock on
// the 77 K memory system (isolating the microarchitectural IPC effects
// of depth and sizing, as the paper's footnote describes). The
// core×workload grid fans out over opt.Workers.
func table3IPC(cores []pipeline.CoreSpec, opt Options) ([]float64, error) {
	f := sim.NewFactoryWith(opt.platform())
	profiles := parsecSubset(opt)
	if !opt.Quick {
		// A representative mix keeps the full table affordable.
		profiles = nil
		for _, p := range workload.Parsec() {
			switch p.Name {
			case "blackscholes", "bodytrack", "freqmine", "vips", "x264":
				profiles = append(profiles, p)
			}
		}
	}
	np := len(profiles)
	specs := make([]sim.LaneSpec, len(cores)*np)
	for i := range specs {
		c := cores[i/np]
		d := f.CHPMesh()
		c.FreqGHz = 4.0
		d.Core = c
		d.Name = c.Name + "@4GHz"
		specs[i] = sim.LaneSpec{Design: d, Profile: profiles[i%np], Config: opt.simCfg()}
	}
	results, errs := opt.runSims(specs)
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	ipc := make([]float64, len(specs))
	for i := range results {
		ipc[i] = results[i].IPC
	}
	out := make([]float64, len(cores))
	for ci := range cores {
		sum := 0.0
		for pi := 0; pi < np; pi++ {
			sum += ipc[ci*np+pi]
		}
		out[ci] = sum / float64(np)
	}
	// Normalize to the baseline column as the paper does.
	base := out[0]
	for i := range out {
		out[i] /= base
	}
	return out, nil
}

// Table4 renders the evaluation setup.
func Table4(opt Options) (*Report, error) {
	r := &Report{
		ID:     "table4",
		Title:  "Evaluation setup",
		Header: []string{"design", "core", "freq (GHz)", "cores", "NoC", "protocol", "memory"},
	}
	for _, d := range evaluationDesigns(opt) {
		proto := "directory"
		if d.Net.Snooping() {
			proto = "snooping"
		}
		r.AddRow(d.Name, d.Core.Name, f2(d.Core.FreqGHz), fmt.Sprintf("%d", d.Cores),
			d.Net.String(), proto, d.Memory.Name)
	}
	return r, nil
}
