package experiments

import (
	"context"
	"errors"
	"testing"
)

// RunCtx with an already-canceled context must fail fast with the
// context error instead of running the experiment.
func TestRunCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunCtx(ctx, "fig22", QuickOptions())
	if err == nil {
		t.Fatal("RunCtx on canceled context returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if rep != nil {
		t.Fatal("RunCtx returned a report alongside the cancellation error")
	}
}

// RunAllCtx on a canceled context must return one Outcome per
// registered experiment, each carrying its ID and a cancellation error,
// so callers can still render a complete (failed) table.
func TestRunAllCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := RunAllCtx(ctx, QuickOptions())
	ids := IDs()
	if len(out) != len(ids) {
		t.Fatalf("got %d outcomes, want %d", len(out), len(ids))
	}
	for i, o := range out {
		if o.ID != ids[i] {
			t.Fatalf("outcome %d: ID = %q, want %q", i, o.ID, ids[i])
		}
		if o.Err == nil {
			t.Fatalf("outcome %s: expected a cancellation error", o.ID)
		}
		if !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("outcome %s: err = %v, want wrapped context.Canceled", o.ID, o.Err)
		}
	}
}

// Run and RunAll (the context-free wrappers) must still work unchanged.
func TestRunWrapperUnchanged(t *testing.T) {
	rep, err := Run("fig22", QuickOptions())
	if err != nil {
		t.Fatalf("Run(fig22) = %v", err)
	}
	if rep.ID != "fig22" {
		t.Fatalf("report ID = %q", rep.ID)
	}
}
