package experiments

import (
	"fmt"

	"cryowire/internal/circuit"
	"cryowire/internal/floorplan"
	"cryowire/internal/noc"
	"cryowire/internal/phys"
	"cryowire/internal/pipeline"
	"cryowire/internal/wire"
)

func init() {
	register("fig2", Fig2)
	register("fig5", Fig5)
	register("fig9", Fig9)
	register("fig10", Fig10)
	register("fig12", Fig12)
	register("fig13", Fig13)
	register("fig14", Fig14)
	register("table1", Table1)
	register("table2", Table2)
}

// Fig2 reproduces the critical-path breakdown of the three slowest
// backend stages.
func Fig2(Options) (*Report, error) {
	r := &Report{
		ID:     "fig2",
		Title:  "Critical-path delay breakdown of the three slowest stages (300K)",
		Header: []string{"stage", "transistor", "wire", "wire portion"},
		Notes:  []string{"paper: 57.6% average wire portion across the three stages"},
	}
	p := pipeline.BOOM()
	sum := 0.0
	n := 0
	for _, s := range p.Stages {
		switch s.Name {
		case "writeback", "execute bypass", "data read from bypass":
			r.AddRow(s.Name, f3(s.Tr), f3(s.Wire), pct(s.WireFraction()))
			sum += s.WireFraction()
			n++
		}
	}
	r.AddRow("average", "", "", pct(sum/float64(n)))
	return r, nil
}

// Fig5 reproduces the 77 K wire speed-up study, without (a) and with
// (b) repeaters.
func Fig5(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig5",
		Title:  "77K wire speed-up vs length, without (a) and with (b) repeaters",
		Header: []string{"length(mm)", "local (a)", "semi-global (a)", "semi-global (b)", "global (b)"},
		Notes: []string{
			"paper anchors: (a) long local 2.95x, long semi-global 3.69x",
			"paper anchors: (b) 0.9mm semi-global 2.25x, 6.22mm global 3.38x",
		},
	}
	pf := opt.platform()
	op := wire.At77()
	lengths := []float64{0.1, 0.3, 0.9, 2, 4, 6.22, 10}
	if opt.Quick {
		lengths = []float64{0.9, 6.22}
	}
	for _, l := range lengths {
		r.AddRow(f2(l),
			f2(pf.WireSpeedup(wire.Local, l, 1+l*10, op, false)),
			f2(pf.WireSpeedup(wire.SemiGlobal, l, 1+l*10, op, false)),
			f2(pf.WireSpeedup(wire.SemiGlobal, l, 1, op, true)),
			f2(pf.WireSpeedup(wire.Global, l, 1, op, true)),
		)
	}
	return r, nil
}

// paper-measured validation anchors for Fig 9 (§3.2.3): the LN-cooled
// boards' frequency speed-ups at 135 K, ITRS-projected to the model's
// 45 nm node.
var fig9Measured = []struct {
	name     string
	techNM   int
	kind     string
	measured float64
}{
	{"i7-2700K router", 32, "router", 1.040},
	{"i7-4790K router", 22, "router", 1.046},
	{"i5-6600K router", 14, "router", 1.052},
	{"i5-6600K pipeline", 14, "pipeline", 1.121},
}

// Fig9 reproduces the pipeline/router model validation at 135 K.
func Fig9(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig9",
		Title:  "Pipeline and router model validation at 135K",
		Header: []string{"device", "tech", "measured", "model", "error"},
		Notes: []string{
			"paper: pipeline model 15.0% vs measured 12.1%; router max error 2.8%",
			"measured column reproduces the paper's published board results",
		},
	}
	pf := opt.platform()
	m := pf.MOSFET()
	md := pf.PipelineModel()
	op := pf.NominalOp(phys.T135)
	pipeModel := md.MaxFrequencyGHz(pipeline.BOOM(), op) / md.MaxFrequencyGHz(pipeline.BOOM(), phys.Nominal45)
	routerModel := noc.RouterSpeedup(op, m)
	for _, c := range fig9Measured {
		model := routerModel
		if c.kind == "pipeline" {
			model = pipeModel
		}
		errFrac := (model - c.measured) / c.measured
		r.AddRow(c.name, fmt.Sprintf("%dnm", c.techNM), f3(c.measured), f3(model), pct(errFrac))
	}
	return r, nil
}

// Fig10 validates the wire-link model against the transient circuit
// solver at the 6 mm CryoBus link length.
func Fig10(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig10",
		Title:  "6mm wire-link model vs transient (Hspice-lite) simulation at 77K",
		Header: []string{"quantity", "link model", "transient sim", "error"},
		Notes:  []string{"paper: model speed-up 3.05x, 1.6% error vs Hspice"},
	}
	m := opt.platform().MOSFET()
	lk := wire.CryoBusLink()
	op := wire.At77()
	model := lk.LinkSpeedup(op, m)
	simv, err := circuit.SimulatedLinkSpeedup(lk, op, m)
	if err != nil {
		return nil, err
	}
	errFrac := (model - simv) / simv
	r.AddRow("77K speed-up of 6mm link", f3(model), f3(simv), pct(errFrac))
	return r, nil
}

// stageTable renders per-stage critical paths at an operating point
// using the shared platform's pipeline model.
func stageTable(md *pipeline.Model, id, title string, p pipeline.Pipeline, op phys.OperatingPoint, notes ...string) *Report {
	r := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"stage", "frontend", "delay (norm.)", "wire portion @300K"},
		Notes:  notes,
	}
	worst, max := md.CriticalPath(p, op)
	for _, s := range p.Stages {
		fe := ""
		if s.Frontend {
			fe = "yes"
		}
		r.AddRow(s.Name, fe, f3(md.StageDelay(s, op)), pct(s.WireFraction()))
	}
	r.AddRow("** max **", "", f3(max), worst.Name)
	return r
}

// Fig12 reproduces the 300 K stage-wise critical paths.
func Fig12(opt Options) (*Report, error) {
	return stageTable(opt.platform().PipelineModel(),
		"fig12", "Stage-wise critical path at 300K (normalized)",
		pipeline.BOOM(), phys.Nominal45,
		"paper: execute bypass is the 300K bottleneck (backend forwarding stages)"), nil
}

// Fig13 reproduces the 77 K stage-wise critical paths.
func Fig13(opt Options) (*Report, error) {
	return stageTable(opt.platform().PipelineModel(),
		"fig13", "Stage-wise critical path at 77K (normalized to 300K max)",
		pipeline.BOOM(), pipeline.At77(),
		"paper: the bottleneck moves to the frontend; max path falls only ~19%"), nil
}

// Fig14 reproduces the superpipelined 77 K critical paths.
func Fig14(opt Options) (*Report, error) {
	md := opt.platform().PipelineModel()
	res := md.Superpipeline(pipeline.BOOM(), pipeline.At77())
	return stageTable(md, "fig14", "Critical path after frontend superpipelining at 77K",
		res.Pipeline, pipeline.At77(),
		"paper: max critical path falls 38.0% vs 300K baseline (frequency +61%)",
		fmt.Sprintf("split stages: %v (target: %s)", res.SplitStages, res.TargetStage)), nil
}

// Table1 reproduces the execution-cluster geometry.
func Table1(Options) (*Report, error) {
	r := &Report{
		ID:     "table1",
		Title:  "ALU/register-file geometry and forwarding-wire length",
		Header: []string{"unit", "area (um^2)", "width (um)", "height (um)"},
		Notes:  []string{"paper: forwarding wire = 8xALU + regfile heights = 1686 um"},
	}
	alu := floorplan.Unit{Name: "ALU", AreaUM: floorplan.ALUArea, Width: floorplan.ALUWidth}
	rf := floorplan.Unit{Name: "Register file", AreaUM: floorplan.RegFileArea, Width: floorplan.RegFileWidth}
	r.AddRow("ALU", f1(alu.AreaUM), f1(float64(alu.Width)), f1(float64(alu.Height())))
	r.AddRow("Register file", f1(rf.AreaUM), f1(float64(rf.Width)), f1(float64(rf.Height())))
	r.AddRow("Forwarding wire", "", "", fmt.Sprintf("%.0f um long", float64(floorplan.ForwardingWireLength())))
	return r, nil
}

// Table2 lists the validation hardware (static data from §3.2.1).
func Table2(Options) (*Report, error) {
	r := &Report{
		ID:     "table2",
		Title:  "CPU and mainboard specification for the validation (static data)",
		Header: []string{"technology", "microarchitecture", "model", "mainboard"},
	}
	r.AddRow("32nm", "Sandy Bridge", "i7-2700K", "GA-Z77X-UD3H")
	r.AddRow("22nm", "Haswell", "i7-4790K", "GA-Z97X-UD5H")
	r.AddRow("14nm", "Skylake", "i5-6600K", "GA-Z170X-Gaming 7")
	return r, nil
}
