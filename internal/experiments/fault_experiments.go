package experiments

import (
	"fmt"

	"cryowire/internal/fault"
	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

func init() {
	register("faultsweep", FaultSweep)
}

// FaultSweep runs the five Table 4 systems under rising link-failure
// rates and reports how gracefully each degrades. Rate 0 runs with no
// injector at all, so its row reproduces the healthy numbers
// bit-for-bit; at 10% every design must still complete — the CryoBus
// designs fall back from the 1-cycle broadcast to a multi-cycle detour
// span instead of hanging.
func FaultSweep(opt Options) (*Report, error) {
	r := &Report{
		ID:     "faultsweep",
		Title:  "System performance under H-tree segment / link failures",
		Header: []string{"design", "fail rate", "IPC", "rel. IPC", "broadcast cyc", "noc latency", "retransmits"},
		Notes: []string{
			"rate 0 is injector-free and matches the healthy run exactly",
			"CryoBus re-routes dead H-tree segments over neighboring tile wires (detour = 2h+2 hops)",
		},
	}
	rates := []float64{0, 0.02, 0.05, 0.10}
	if opt.Quick {
		rates = []float64{0, 0.10}
	}
	p, err := workload.ByName("ferret")
	if err != nil {
		return nil, err
	}
	designs := evaluationDesigns(opt)
	// The design×rate grid runs through the batched runner; each cell
	// builds its own lane from the same seeds, so the rows match a
	// serial sweep exactly. The rel. IPC column needs each design's
	// rate-0 result, so rows are assembled after the grid completes.
	nr := len(rates)
	specs := make([]sim.LaneSpec, len(designs)*nr)
	for i := range specs {
		d, rate := designs[i/nr], rates[i%nr]
		cfg := opt.simCfg()
		if rate > 0 {
			cfg.Fault = &fault.Config{
				Seed:               cfg.Seed + 7,
				LinkFailureRate:    rate,
				FlitCorruptionRate: rate / 2,
			}
		}
		specs[i] = sim.LaneSpec{Design: d, Profile: p, Config: cfg}
	}
	results, errs := opt.runSims(specs)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("faultsweep: %s at rate %v: %w",
				designs[i/nr].Name, rates[i%nr], err)
		}
	}
	for di, d := range designs {
		healthy := results[di*nr].IPC
		for ri, rate := range rates {
			res := results[di*nr+ri]
			r.AddRow(d.Name, pct(rate), f3(res.IPC), f3(res.IPC/healthy),
				f2(res.DegradedBroadcastCycles), f2(res.AvgNoCLatency),
				fmt.Sprintf("%d", res.Retransmits))
		}
	}
	return r, nil
}
