package experiments

import (
	"fmt"

	"cryowire/internal/dse"
)

func init() {
	register("dse-pareto", DSEPareto)
}

// DSEPareto grid-searches a shrunk cryogenic design space —
// temperature × voltage mode × pipeline depth × interconnect on one
// representative PARSEC workload — and reports the Pareto frontier
// over (performance, total watts incl. cooling, cooling-adjusted
// energy). It demonstrates that the paper's headline designs fall out
// of a search rather than being hand-picked: the 77 K frontier
// contains the CryoSP(7.84 GHz)+CryoBus point of §6.
func DSEPareto(opt Options) (*Report, error) {
	// The quick space (2 temps × 2 modes × 2 depths × 2 nets × x264) is
	// already experiment-sized; -quick only shortens the simulations.
	space := dse.DefaultSpace(true)
	res, err := dse.Run(opt.Context(), dse.Config{
		Space:    space,
		Strategy: dse.StrategyGrid,
		Sim:      opt.Sim,
		Workers:  opt.Workers,
		Platform: opt.platform(),
	})
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "dse-pareto",
		Title:  "Design-space exploration: Pareto frontier over perf / watts / energy",
		Header: []string{"design", "freq GHz", "IPC", "perf (inst/ns)", "total W (rel)", "perf/W (rel)"},
		Notes: []string{
			fmt.Sprintf("exhaustive grid over %d candidates: temp x voltage mode x depth x NoC on x264", res.SpaceSize),
			"total power is device power burdened with the cryocooler overhead CO(T), relative to the 300K baseline core",
			"the 77K frontier contains CryoSP(7.84GHz)+CryoBus — the paper's headline design falls out of the search",
		},
	}
	for _, c := range res.Frontier {
		e := c.Eval
		r.AddRow(c.Point.String(), f2(e.FreqGHz), f2(e.IPC), f2(e.Performance), f2(e.TotalPower), f2(e.PerfPerWatt))
	}
	return r, nil
}
