package experiments

import (
	"testing"

	"cryowire/internal/platform"
)

// slowIDs are the experiments the existing suite already skips under
// -short: full load-latency sweeps and ablations with long simulations.
var slowIDs = map[string]bool{
	"fig18": true, "fig21": true, "fig25": true, "fig26": true,
	"abl-topology": true, "abl-dynlinks": true, "abl-interleave": true,
}

// runWorkers runs one experiment on a fresh platform with the given
// worker bound and returns the rendered report.
func runWorkers(t *testing.T, id string, workers int) string {
	t.Helper()
	opt := QuickOptions()
	opt.Platform = platform.New()
	opt.Workers = workers
	r, err := Run(id, opt)
	if err != nil {
		t.Fatalf("%s (workers=%d): %v", id, workers, err)
	}
	return r.Render()
}

// The parallel engine's core promise: rendered reports are byte-
// identical at any worker count, because every task seeds from its own
// grid position and results land by index. The IDs below cover every
// fan-out shape — the design×rate fault grid, the profile×design
// simulation grid, the NoC load-latency sweep, the activity-measurement
// cases and the flattened core×profile IPC grid of Table 3.
func TestSerialParallelByteIdentical(t *testing.T) {
	ids := []string{"faultsweep", "fig17", "fig22-activity", "table3"}
	if !testing.Short() {
		ids = append(ids, "fig21", "abl-snoop")
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serial := runWorkers(t, id, 1)
			parallel := runWorkers(t, id, 4)
			if serial != parallel {
				t.Errorf("%s: parallel render differs from serial\n--- serial ---\n%s--- parallel ---\n%s",
					id, serial, parallel)
			}
		})
	}
}

// RunAll with a worker pool must return the same outcomes, in the same
// sorted-ID order, as a serial pass over the registry.
func TestRunAllMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry determinism pass skipped in -short mode")
	}
	run := func(workers int) []Outcome {
		opt := QuickOptions()
		opt.Platform = platform.New()
		opt.Workers = workers
		return RunAll(opt)
	}
	serial := run(1)
	parallel := run(4)
	if len(serial) != len(parallel) || len(serial) != len(IDs()) {
		t.Fatalf("outcome counts differ: serial %d, parallel %d, registry %d",
			len(serial), len(parallel), len(IDs()))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.ID != p.ID {
			t.Fatalf("outcome %d: ID order differs: %q vs %q", i, s.ID, p.ID)
		}
		if (s.Err != nil) != (p.Err != nil) {
			t.Fatalf("%s: error mismatch: serial %v, parallel %v", s.ID, s.Err, p.Err)
		}
		if s.Err != nil {
			continue
		}
		if s.Report.Render() != p.Report.Render() {
			t.Errorf("%s: parallel render differs from serial", s.ID)
		}
		sj, err := s.Report.JSON()
		if err != nil {
			t.Fatalf("%s: JSON: %v", s.ID, err)
		}
		pj, err := p.Report.JSON()
		if err != nil {
			t.Fatalf("%s: JSON: %v", s.ID, err)
		}
		if string(sj) != string(pj) {
			t.Errorf("%s: parallel JSON differs from serial", s.ID)
		}
	}
}

// Every registered experiment must run clean under QuickOptions with
// the registry fanned out via t.Parallel — this is what hammers the
// shared platform cache concurrently under `make check`'s -race run.
func TestFullRegistryParallel(t *testing.T) {
	pf := platform.New()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			if testing.Short() && slowIDs[id] {
				t.Skip("slow sweep skipped in -short mode")
			}
			opt := QuickOptions()
			opt.Platform = pf
			opt.Workers = 2
			r, err := Run(id, opt)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if r.ID != id {
				t.Errorf("report ID %q for experiment %q", r.ID, id)
			}
			if len(r.Header) == 0 || len(r.Rows) == 0 {
				t.Errorf("%s: empty report (header %d, rows %d)", id, len(r.Header), len(r.Rows))
			}
		})
	}
}

// Report.JSON must be stable and carry the full report structure.
func TestReportJSONStable(t *testing.T) {
	r := &Report{
		ID:     "fig0",
		Title:  "demo",
		Notes:  []string{"n1"},
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
	}
	b1, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("JSON encoding is not stable")
	}
	want := `{
  "id": "fig0",
  "title": "demo",
  "notes": [
    "n1"
  ],
  "header": [
    "a",
    "b"
  ],
  "rows": [
    [
      "1",
      "2"
    ]
  ]
}`
	if string(b1) != want {
		t.Errorf("JSON layout changed:\n%s\nwant:\n%s", b1, want)
	}
}
