package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// runQuick executes an experiment in quick mode and sanity-checks the
// report shape.
func runQuick(t *testing.T, id string) *Report {
	t.Helper()
	r, err := Run(id, QuickOptions())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.ID != id {
		t.Errorf("%s: report ID = %q", id, r.ID)
	}
	if len(r.Rows) == 0 {
		t.Fatalf("%s: empty report", id)
	}
	if len(r.Header) == 0 {
		t.Fatalf("%s: no header", id)
	}
	if !strings.Contains(r.Render(), r.Title) {
		t.Errorf("%s: render missing title", id)
	}
	return r
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{
		"fig2", "fig3", "fig5", "fig9", "fig10", "fig12", "fig13", "fig14",
		"fig16", "fig17", "fig18", "fig20", "fig21", "fig22", "fig23",
		"fig24", "fig25", "fig26", "fig27",
		"table1", "table2", "table3", "table4",
		"abl-superpipeline", "abl-topology", "abl-dynlinks",
		"abl-snoop", "abl-frontend", "abl-interleave",
		"fig22-activity", "table4-derived", "faultsweep", "dse-pareto",
		"stagesweep",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registered %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", QuickOptions()); err == nil {
		t.Error("unknown experiment should error")
	}
}

func cell(t *testing.T, r *Report, rowName, colName string) string {
	t.Helper()
	col := -1
	for i, h := range r.Header {
		if h == colName {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("%s: no column %q in %v", r.ID, colName, r.Header)
	}
	for _, row := range r.Rows {
		if row[0] == rowName {
			return row[col]
		}
	}
	t.Fatalf("%s: no row %q", r.ID, rowName)
	return ""
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func TestFig2Report(t *testing.T) {
	r := runQuick(t, "fig2")
	avg := parse(t, cell(t, r, "average", "wire portion"))
	if avg < 54 || avg > 61 {
		t.Errorf("fig2 average wire portion = %v%%, want ≈57.6%%", avg)
	}
}

func TestFig5Report(t *testing.T) {
	r := runQuick(t, "fig5")
	sg := parse(t, cell(t, r, "0.90", "semi-global (b)"))
	if sg < 2.1 || sg > 2.4 {
		t.Errorf("fig5 0.9mm repeated semi-global = %v, want ≈2.25", sg)
	}
	gl := parse(t, cell(t, r, "6.22", "global (b)"))
	if gl < 3.2 || gl > 3.6 {
		t.Errorf("fig5 6.22mm repeated global = %v, want ≈3.38", gl)
	}
}

func TestFig9Report(t *testing.T) {
	r := runQuick(t, "fig9")
	for _, row := range r.Rows {
		errPct := parse(t, row[len(row)-1])
		if errPct < -10 || errPct > 10 {
			t.Errorf("fig9 %s model error %v%% too large", row[0], errPct)
		}
	}
}

func TestFig10Report(t *testing.T) {
	r := runQuick(t, "fig10")
	errPct := parse(t, r.Rows[0][3])
	if errPct < -5 || errPct > 5 {
		t.Errorf("fig10 model-vs-transient error = %v%%, want within 5%% (paper: 1.6%%)", errPct)
	}
}

func TestFig14Report(t *testing.T) {
	r := runQuick(t, "fig14")
	// Superpipelined stage list: 16 representative stages + max row.
	if len(r.Rows) != 17 {
		t.Errorf("fig14 rows = %d, want 16 stages + max", len(r.Rows))
	}
	max := parse(t, cell(t, r, "** max **", "delay (norm.)"))
	if max < 0.60 || max > 0.64 {
		t.Errorf("fig14 max critical path = %v, want ≈0.62", max)
	}
}

func TestFig16Report(t *testing.T) {
	r := runQuick(t, "fig16")
	share := parse(t, cell(t, r, "77K Mesh", "noc share of hit"))
	if share < 50 || share > 85 {
		t.Errorf("fig16 77K mesh NoC share of L3 hit = %v%%, want ≈71.7%%", share)
	}
	meshHit := parse(t, cell(t, r, "77K Mesh", "hit total (ns)"))
	busHit := parse(t, cell(t, r, "77K Shared bus", "hit total (ns)"))
	if busHit >= meshHit {
		t.Errorf("77K bus L3 hit (%v) should beat mesh (%v)", busHit, meshHit)
	}
}

func TestFig20Report(t *testing.T) {
	r := runQuick(t, "fig20")
	bc := parse(t, cell(t, r, "CryoBus", "broadcast"))
	if bc != 1 {
		t.Errorf("fig20 CryoBus broadcast = %v, want the 1-cycle broadcast", bc)
	}
	bc300 := parse(t, cell(t, r, "300K Shared bus", "broadcast"))
	if bc300 != 8 {
		t.Errorf("fig20 300K shared bus broadcast = %v, want 8", bc300)
	}
}

func TestFig22Report(t *testing.T) {
	r := runQuick(t, "fig22")
	cryo := parse(t, cell(t, r, "CryoBus", "total power (with cooling)"))
	if cryo > 0.55 {
		t.Errorf("fig22 CryoBus total power = %v of 300K mesh, want ≈0.43", cryo)
	}
}

func TestFig27Report(t *testing.T) {
	r := runQuick(t, "fig27")
	var pp77, pp100 float64
	for _, row := range r.Rows {
		switch row[0] {
		case "77.0":
			pp77 = parse(t, row[6])
		case "100.0":
			pp100 = parse(t, row[6])
		}
	}
	if pp100 <= pp77 {
		t.Errorf("fig27: perf/power at 100K (%v) should beat 77K (%v)", pp100, pp77)
	}
}

func TestTable3Report(t *testing.T) {
	r := runQuick(t, "table3")
	freqRow := r.Rows[0]
	if freqRow[0] != "frequency (GHz)" {
		t.Fatalf("unexpected first row %v", freqRow)
	}
	if v := parse(t, freqRow[4]); v < 7.6 || v > 8.1 {
		t.Errorf("table3 CryoSP frequency = %v, want ≈7.84", v)
	}
	// IPC row: deeper/narrower designs commit less at iso-frequency.
	var ipcRow []string
	for _, row := range r.Rows {
		if row[0] == "IPC @4GHz (sim)" {
			ipcRow = row
		}
	}
	if ipcRow == nil {
		t.Fatal("table3 missing IPC row")
	}
	base := parse(t, ipcRow[1])
	cryoSP := parse(t, ipcRow[4])
	if base != 1.0 {
		t.Errorf("baseline IPC normalization = %v", base)
	}
	if cryoSP >= 1.0 || cryoSP < 0.75 {
		t.Errorf("CryoSP relative IPC = %v, want in [0.75,1.0) (paper: 0.90)", cryoSP)
	}
}

func TestTable4Report(t *testing.T) {
	r := runQuick(t, "table4")
	if len(r.Rows) != 5 {
		t.Errorf("table4 has %d designs, want 5", len(r.Rows))
	}
	if got := cell(t, r, "CryoSP (77K, CryoBus)", "protocol"); got != "snooping" {
		t.Errorf("CryoBus protocol = %q, want snooping", got)
	}
	if got := cell(t, r, "Baseline (300K, Mesh)", "protocol"); got != "directory" {
		t.Errorf("mesh protocol = %q, want directory", got)
	}
}

func TestSimBackedReportsRun(t *testing.T) {
	// Smoke-run the heavyweight experiments in quick mode.
	for _, id := range []string{"fig3", "fig17", "fig23", "fig24"} {
		r := runQuick(t, id)
		if len(r.Rows) < 2 {
			t.Errorf("%s: suspiciously small report", id)
		}
	}
}

func TestNoCSweepReportsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("NoC sweeps are slow")
	}
	for _, id := range []string{"fig18", "fig21", "fig25", "fig26"} {
		runQuick(t, id)
	}
}

func TestAblationSuperpipeline(t *testing.T) {
	r := runQuick(t, "abl-superpipeline")
	// 300K row splits nothing; 77K row splits 3 stages.
	if got := r.Rows[0][1]; got != "0 []" {
		t.Errorf("300K split = %q, want none", got)
	}
	gain := parse(t, r.Rows[1][4])
	if gain < 1.25 || gain > 1.40 {
		t.Errorf("77K superpipelining frequency gain = %v, want ≈1.32", gain)
	}
}

func TestAblationSnoop(t *testing.T) {
	r := runQuick(t, "abl-snoop")
	withB := parse(t, r.Rows[0][3])
	without := parse(t, r.Rows[1][3])
	if withB < 2.0 {
		t.Errorf("streamcluster CryoBus gain with barriers = %v, want large", withB)
	}
	if without > withB/2 {
		t.Errorf("no-barrier gain %v should collapse relative to %v", without, withB)
	}
}

func TestAblationFrontend(t *testing.T) {
	r := runQuick(t, "abl-frontend")
	for _, row := range r.Rows {
		cost := parse(t, row[2])
		if cost < 1.0 || cost > 9.0 {
			t.Errorf("frontend IPC cost %v%% outside the plausible band (paper: 4.2%%)", cost)
		}
	}
}

func TestAblationSweepsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweeps are slow")
	}
	for _, id := range []string{"abl-topology", "abl-dynlinks", "abl-interleave"} {
		runQuick(t, id)
	}
}

func TestFig22Activity(t *testing.T) {
	r := runQuick(t, "fig22-activity")
	cryo := parse(t, cell(t, r, "CryoBus", "rel. total (with cooling)"))
	mesh77 := parse(t, cell(t, r, "77K Mesh", "rel. total (with cooling)"))
	if cryo >= mesh77 {
		t.Errorf("activity-based CryoBus total %v should be below 77K Mesh %v", cryo, mesh77)
	}
	if cryo > 0.6 {
		t.Errorf("activity-based CryoBus total %v should sit well below the 300K mesh", cryo)
	}
	// Dynamic link connection shows up as less wire driven per packet
	// than the serpentine bus.
	cbWire := parse(t, cell(t, r, "CryoBus", "wire mm/pkt"))
	sbWire := parse(t, cell(t, r, "77K Shared bus", "wire mm/pkt"))
	if cbWire >= sbWire {
		t.Errorf("CryoBus wire/pkt %v not below serpentine %v", cbWire, sbWire)
	}
}

func TestTable4Derived(t *testing.T) {
	r := runQuick(t, "table4-derived")
	if len(r.Rows) != 4 {
		t.Fatalf("table4-derived rows = %d, want 4", len(r.Rows))
	}
	dramSp := parse(t, r.Rows[3][3])
	if dramSp < 3.7 || dramSp > 3.9 {
		t.Errorf("derived DRAM speedup = %v, want ≈3.81", dramSp)
	}
	for _, row := range r.Rows[:3] {
		sp := parse(t, row[3])
		if sp < 1.8 || sp > 2.9 {
			t.Errorf("%s derived cache speedup = %v, want ≈2×", row[0], sp)
		}
	}
}

func TestRenderContainsAllRows(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "b"}}
	r.AddRow("r1", "v1")
	r.AddRow("r2", "v2")
	out := r.Render()
	for _, want := range []string{"r1", "v1", "r2", "v2", "a", "b"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
