package experiments

import (
	"fmt"

	"cryowire/internal/cacti"
	"cryowire/internal/dram"
	"cryowire/internal/phys"
)

// table4DerivedRows builds the Table4Derived report rows from the
// circuit-level cache and DRAM models.
func table4DerivedRows() ([][]string, error) {
	m := cacti.NewModel()
	var rows [][]string
	caches := []struct {
		g      cacti.Geometry
		quoted string
	}{
		{cacti.L1D, "4 cyc @4GHz"},
		{cacti.L2, "12 cyc @4GHz"},
		{cacti.L3Slice, "20 cyc @4GHz"},
	}
	for _, c := range caches {
		cyc, err := m.AccessCycles(c.g, phys.Nominal45, 4.0)
		if err != nil {
			return nil, err
		}
		sp, err := m.Speedup77(c.g)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			c.g.Name, c.quoted, fmt.Sprintf("%d cyc @4GHz", cyc), f2(sp),
		})
	}
	d300 := dram.DDR4().RandomAccessNS()
	d77 := dram.CLLDRAM().RandomAccessNS()
	rows = append(rows, []string{
		"DRAM random access", "60.32 / 15.84 ns",
		fmt.Sprintf("%.2f / %.2f ns", d300, d77), f2(d300 / d77),
	})
	return rows, nil
}
