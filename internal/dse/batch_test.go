package dse

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"cryowire/internal/platform"
	"cryowire/internal/sim"
)

// countBatchCalls wraps batchRunFn to count engine→batch submissions,
// optionally failing one lane exactly once. Restores the original on
// cleanup.
func countBatchCalls(t *testing.T, failOnce bool) (calls *int, mu *sync.Mutex) {
	t.Helper()
	prev := batchRunFn
	var m sync.Mutex
	n := 0
	injected := false
	batchRunFn = func(ctx context.Context, r *sim.BatchRunner, specs []sim.LaneSpec) ([]sim.Result, []error) {
		m.Lock()
		n++
		m.Unlock()
		res, errs := prev(ctx, r, specs)
		m.Lock()
		if failOnce && !injected && len(specs) > 0 {
			injected = true
			errs[0] = fmt.Errorf("injected lane failure")
			res[0] = sim.Result{}
		}
		m.Unlock()
		return res, errs
	}
	t.Cleanup(func() { batchRunFn = prev })
	return &n, &m
}

// TestLaneRetryWithoutBatchRerun: when one lane of a batch fails, the
// retry policy re-runs that point alone — the batch submission count
// stays exactly what a clean run needs, and the output bytes match a
// clean run exactly.
func TestLaneRetryWithoutBatchRerun(t *testing.T) {
	base := Config{
		Space:      DefaultSpace(true),
		Strategy:   StrategyGrid,
		Budget:     4,
		Seed:       3,
		Sim:        quickSim(),
		Workers:    1,
		BatchLanes: 2,
		Platform:   platform.New(),
	}
	cleanCalls, cmu := countBatchCalls(t, false)
	ref, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}
	cmu.Lock()
	wantCalls := *cleanCalls
	cmu.Unlock()

	calls, mu := countBatchCalls(t, true)
	var retries int
	cfg := base
	cfg.RetryAttempts = 2
	cfg.RetryBackoff = time.Millisecond
	cfg.RetryNotify = func(err error) { retries++ }
	got, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("lane retry did not absorb the injected failure: %v", err)
	}
	gb, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, gb) {
		t.Fatalf("retried run diverged from clean run:\n--- clean ---\n%s\n--- retried ---\n%s", want, gb)
	}
	if retries != 1 {
		t.Fatalf("RetryNotify fired %d times, want 1", retries)
	}
	mu.Lock()
	gotCalls := *calls
	mu.Unlock()
	if gotCalls != wantCalls {
		t.Fatalf("failed lane re-ran its batch: %d batch submissions, clean run used %d", gotCalls, wantCalls)
	}
}

// TestConcurrentBatchesMatchSerial: a search running multiple batches
// concurrently (Workers 4, two-lane batches) produces byte-identical
// output to the same search forced serial and single-lane. Run under
// the race detector this also exercises the concurrent batch path.
func TestConcurrentBatchesMatchSerial(t *testing.T) {
	base := Config{
		Space:    DefaultSpace(true),
		Strategy: StrategyGrid,
		Budget:   8,
		Seed:     5,
		Sim:      quickSim(),
		Platform: platform.New(),
	}
	serial := base
	serial.Workers = 1
	serial.BatchLanes = -1
	ref, err := Run(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}
	conc := base
	conc.Workers = 4
	conc.BatchLanes = 2
	got, err := Run(context.Background(), conc)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, gb) {
		t.Fatalf("concurrent batched run diverged from serial single-lane run:\n--- serial ---\n%s\n--- batched ---\n%s", want, gb)
	}
}
