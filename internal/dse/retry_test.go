package dse

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cryowire/internal/platform"
	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

// flakyEval wraps the real evaluator with a per-point failure budget:
// the first fails[index-key] calls for a point error, later calls pass
// through. Concurrency-safe because the engine evaluates batches in
// parallel.
type flakyEval struct {
	mu    sync.Mutex
	fails map[string]int
	calls int
}

func (f *flakyEval) eval(ctx context.Context, pf *platform.Platform, pt Point, prof workload.Profile, cfg sim.Config) (Eval, error) {
	f.mu.Lock()
	f.calls++
	left := f.fails[pt.String()]
	if left > 0 {
		f.fails[pt.String()] = left - 1
		f.mu.Unlock()
		return Eval{}, fmt.Errorf("injected transient failure for %s", pt)
	}
	f.mu.Unlock()
	return evaluate(ctx, pf, pt, prof, cfg)
}

// swapEval installs a test evaluator and restores the real one. While
// installed, the engine runs candidates per point (no batching), so
// the override sees every attempt.
func swapEval(t *testing.T, fn func(context.Context, *platform.Platform, Point, workload.Profile, sim.Config) (Eval, error)) {
	t.Helper()
	prev := evalOverride
	evalOverride = fn
	t.Cleanup(func() { evalOverride = prev })
}

// TestRetryRecoversTransientFailures: with retry enabled, a search
// whose evaluator fails transiently produces the exact bytes of a
// clean run; without retry, the same failure surfaces as an error.
func TestRetryRecoversTransientFailures(t *testing.T) {
	pf := platform.New()
	base := Config{
		Space:    DefaultSpace(true),
		Strategy: StrategyGrid,
		Budget:   6,
		Seed:     3,
		Sim:      quickSim(),
		Workers:  2,
		Platform: pf,
	}
	ref, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}

	victim := base.Space.At(2).String()
	fe := &flakyEval{fails: map[string]int{victim: 2}}
	swapEval(t, fe.eval)

	var retries int
	var mu sync.Mutex
	cfg := base
	cfg.RetryAttempts = 3
	cfg.RetryBackoff = time.Millisecond
	cfg.RetryNotify = func(err error) {
		if err == nil {
			t.Error("RetryNotify called with nil error")
		}
		mu.Lock()
		retries++
		mu.Unlock()
	}
	got, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("retry did not absorb transient failures: %v", err)
	}
	gb, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, gb) {
		t.Fatalf("retried run diverged from clean run:\n--- clean ---\n%s\n--- retried ---\n%s", want, gb)
	}
	mu.Lock()
	if retries != 2 {
		t.Fatalf("RetryNotify fired %d times, want 2", retries)
	}
	mu.Unlock()

	// The same failure without retry must surface.
	fe2 := &flakyEval{fails: map[string]int{victim: 1}}
	swapEval(t, fe2.eval)
	if _, err := Run(context.Background(), base); err == nil {
		t.Fatal("unretried transient failure did not surface")
	}
}

// TestRetryExhaustionSurfacesError: a failure outliving the attempt
// bound must surface the underlying error, not hang or succeed.
func TestRetryExhaustionSurfacesError(t *testing.T) {
	fe := &flakyEval{fails: map[string]int{DefaultSpace(true).At(0).String(): 100}}
	swapEval(t, fe.eval)
	cfg := Config{
		Space:         DefaultSpace(true),
		Strategy:      StrategyGrid,
		Budget:        2,
		Sim:           quickSim(),
		Workers:       1,
		Platform:      platform.New(),
		RetryAttempts: 3,
		RetryBackoff:  time.Millisecond,
	}
	_, err := Run(context.Background(), cfg)
	if err == nil || !strings.Contains(err.Error(), "injected transient failure") {
		t.Fatalf("exhausted retries: err = %v", err)
	}
	if fe.calls < 3 {
		t.Fatalf("evaluator called %d times, want >= 3 attempts", fe.calls)
	}
}

// TestRetryStopsOnCancellation: cancellation must abort the backoff
// wait promptly instead of burning the full retry schedule.
func TestRetryStopsOnCancellation(t *testing.T) {
	swapEval(t, func(context.Context, *platform.Platform, Point, workload.Profile, sim.Config) (Eval, error) {
		return Eval{}, fmt.Errorf("always failing")
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{
		Space:         DefaultSpace(true),
		Strategy:      StrategyGrid,
		Budget:        1,
		Sim:           quickSim(),
		Workers:       1,
		Platform:      platform.New(),
		RetryAttempts: 50,
		RetryBackoff:  time.Hour, // would hang for days if cancellation were ignored
	}
	start := time.Now()
	_, err := Run(ctx, cfg)
	if err == nil {
		t.Fatal("canceled retry run succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v to stop the retry loop", elapsed)
	}
}
