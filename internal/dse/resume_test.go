package dse

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cryowire/internal/platform"
)

// TestResumeByteIdentical is the determinism acceptance check: a seeded
// search interrupted partway and resumed from its journal produces the
// exact bytes of an uninterrupted run.
func TestResumeByteIdentical(t *testing.T) {
	pf := platform.New()
	base := Config{
		Space:    DefaultSpace(true),
		Strategy: StrategyHillClimb,
		Budget:   10,
		Seed:     42,
		Sim:      quickSim(),
		Workers:  4,
		Platform: pf,
	}

	// The reference: one uninterrupted run.
	ref, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}

	// The interrupted run: same seed, journaled, stopped after a
	// partial budget — standing in for a mid-search kill.
	dir := t.TempDir()
	jpath := filepath.Join(dir, "dse.jsonl")
	part := base
	part.Budget = 4
	part.Journal = jpath
	if _, err := Run(context.Background(), part); err != nil {
		t.Fatal(err)
	}
	// The journal holds the partial run: header + one line per eval.
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(bytes.TrimSpace(raw), []byte("\n")) + 1; lines != 1+4 {
		t.Fatalf("journal has %d lines, want %d", lines, 1+4)
	}

	// Resume to the full budget; output must match the reference.
	res := base
	res.Journal = jpath
	res.Resume = true
	got, err := Run(context.Background(), res)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, gb) {
		t.Fatalf("resumed run diverged from uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", want, gb)
	}
}

// TestResumeAfterCancel kills a run mid-flight with context
// cancellation, then resumes; wherever the kill landed, the resumed
// output matches an uninterrupted run.
func TestResumeAfterCancel(t *testing.T) {
	pf := platform.New()
	base := Config{
		Space:    DefaultSpace(true),
		Strategy: StrategyRandom,
		Seed:     7,
		Sim:      quickSim(),
		Workers:  2,
		Platform: pf,
	}
	ref, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(t.TempDir(), "dse.jsonl")
	killed := base
	killed.Journal = jpath
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	_, kerr := Run(ctx, killed)
	cancel()
	// The kill may land before or after completion; either way the
	// journal must be resumable.
	resume := base
	resume.Journal = jpath
	resume.Resume = true
	got, err := Run(context.Background(), resume)
	if err != nil {
		t.Fatalf("resume after cancel (%v): %v", kerr, err)
	}
	gb, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, gb) {
		t.Fatalf("post-cancel resume diverged (kill error %v):\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", kerr, want, gb)
	}
}

func TestJournalGuards(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "dse.jsonl")
	cfg := Config{
		Space:    DefaultSpace(true),
		Strategy: StrategyGrid,
		Budget:   2,
		Sim:      quickSim(),
		Journal:  jpath,
	}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	// Re-running without -resume onto an existing journal must refuse.
	if _, err := Run(context.Background(), cfg); err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("overwrite guard: err = %v", err)
	}
	// Resuming under a different sim config must refuse: the journaled
	// numbers would be stale.
	diff := cfg
	diff.Resume = true
	diff.Sim.MeasureCycles++
	if _, err := Run(context.Background(), diff); err == nil || !strings.Contains(err.Error(), "different space or simulation config") {
		t.Fatalf("key guard: err = %v", err)
	}
	// A torn trailing line (killed mid-write) is tolerated on resume.
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":5,"ev`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	torn := cfg
	torn.Resume = true
	torn.Budget = 4
	if _, err := Run(context.Background(), torn); err != nil {
		t.Fatalf("torn trailing line not tolerated: %v", err)
	}
	// Feeding a non-journal file to -resume must refuse.
	alien := filepath.Join(dir, "alien.jsonl")
	if err := os.WriteFile(alien, []byte(`{"kind":"something-else"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Journal = alien
	bad.Resume = true
	if _, err := Run(context.Background(), bad); err == nil || !strings.Contains(err.Error(), "not a dse journal") {
		t.Fatalf("kind guard: err = %v", err)
	}
}

// TestTornTailTruncated is the regression test for the append-after-
// torn-tail bug: a torn final line must be physically truncated on
// resume, so the resumed run's appends land on a clean line boundary
// and a SECOND resume still parses every interior line. (The old code
// skipped the torn line but left its bytes in place, gluing the next
// record onto them — the journal then failed to load one crash later.)
func TestTornTailTruncated(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "dse.jsonl")
	cfg := Config{
		Space:    DefaultSpace(true),
		Strategy: StrategyGrid,
		Budget:   2,
		Sim:      quickSim(),
		Platform: platform.New(),
		Journal:  jpath,
	}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the tail the way a SIGKILL between write and sync does:
	// a partial JSON line with no trailing newline.
	tear := func() {
		f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"index":3,"eval":{"freq_g`); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	tear()

	// First resume: must load, truncate the torn bytes, and append two
	// more evaluations cleanly.
	next := cfg
	next.Resume = true
	next.Budget = 4
	if _, err := Run(context.Background(), next); err != nil {
		t.Fatalf("resume over torn tail: %v", err)
	}
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, clean) {
		t.Fatalf("truncation rewrote the intact prefix:\nbefore: %q\nafter:  %q", clean, raw)
	}
	if bytes.Contains(raw, []byte("freq_g{")) || bytes.Contains(raw, []byte(`"eval":{"freq_g`+`{`)) {
		t.Fatalf("torn bytes survived the resume: %q", raw)
	}
	// Every line of the repaired journal must be valid JSON — the
	// ground-truth property the old code violated.
	for i, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		if !json.Valid(line) {
			t.Fatalf("line %d is not valid JSON after repair: %q", i, line)
		}
	}

	// Second crash, second resume: the journal must still load.
	tear()
	again := cfg
	again.Resume = true
	again.Budget = 6
	if _, err := Run(context.Background(), again); err != nil {
		t.Fatalf("second resume after second tear: %v", err)
	}
}

// TestTornHeaderRestartsJournal: a kill inside the very first write
// leaves a header fragment with no newline; resume must restart the
// journal rather than refuse forever.
func TestTornHeaderRestartsJournal(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "dse.jsonl")
	if err := os.WriteFile(jpath, []byte(`{"kind":"cryowire-dse-jo`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Space:    DefaultSpace(true),
		Strategy: StrategyGrid,
		Budget:   2,
		Sim:      quickSim(),
		Platform: platform.New(),
		Journal:  jpath,
		Resume:   true,
	}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatalf("resume over torn header: %v", err)
	}
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(lines) != 1+2 {
		t.Fatalf("restarted journal has %d lines, want 3:\n%s", len(lines), raw)
	}
	for i, line := range lines {
		if !json.Valid(line) {
			t.Fatalf("line %d invalid after header restart: %q", i, line)
		}
	}
}
