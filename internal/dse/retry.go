package dse

import (
	"context"
	"errors"
	"time"

	"cryowire/internal/platform"
	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

// evalOverride, when non-nil, replaces candidate evaluation so tests
// can inject transient failures. While installed, the engine takes the
// per-point evaluation path (no batching) so the override observes
// every attempt.
var evalOverride func(ctx context.Context, pf *platform.Platform, pt Point, prof workload.Profile, cfg sim.Config) (Eval, error)

// evalCandidate is the single-candidate evaluator behind the retry
// policy: the test override when installed, the real pipeline
// otherwise.
func evalCandidate(ctx context.Context, pf *platform.Platform, pt Point, prof workload.Profile, cfg sim.Config) (Eval, error) {
	if evalOverride != nil {
		return evalOverride(ctx, pf, pt, prof, cfg)
	}
	return evaluate(ctx, pf, pt, prof, cfg)
}

// defaultRetryBackoff is the first-retry delay when Config.RetryBackoff
// is unset but retries are enabled.
const defaultRetryBackoff = 100 * time.Millisecond

// retryEval runs one candidate evaluation under the config's bounded
// retry-with-backoff policy. Because evaluation is a pure function of
// (point, sim config), a retried success is bit-equal to a first-try
// success — retries change availability, never the result bytes.
func retryEval(ctx context.Context, cfg Config, pt Point, prof workload.Profile) (Eval, error) {
	return retryEvalFrom(ctx, cfg, pt, prof, 0, nil)
}

// retryEvalFrom is retryEval entered with `used` attempts already spent
// and their last failure. The batched engine uses it for per-lane
// retry: a lane that failed inside a batch has consumed attempt one,
// and its retries run the point alone — the rest of the batch is never
// re-run. used == 0 is a fresh evaluation.
func retryEvalFrom(ctx context.Context, cfg Config, pt Point, prof workload.Profile, used int, lastErr error) (Eval, error) {
	attempts := cfg.RetryAttempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := cfg.RetryBackoff
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	if used > 0 && !retryable(ctx, lastErr) {
		return Eval{}, lastErr
	}
	for a := used; a < attempts; a++ {
		if a > 0 {
			if cfg.RetryNotify != nil {
				cfg.RetryNotify(lastErr)
			}
			t := time.NewTimer(backoff << (a - 1))
			select {
			case <-ctx.Done():
				t.Stop()
				return Eval{}, ctx.Err()
			case <-t.C:
			}
		}
		e, err := evalCandidate(ctx, cfg.Platform, pt, prof, cfg.Sim)
		if err == nil {
			return e, nil
		}
		lastErr = err
		if !retryable(ctx, err) {
			break
		}
	}
	return Eval{}, lastErr
}

// retryable reports whether a failed evaluation is worth another
// attempt. Cancellation and deadline errors are terminal — the caller
// is going away, and re-running under a dead context cannot succeed.
// Everything else (an overloaded box stalling the watchdog, a flaky
// filesystem under the platform cache) gets the benefit of the doubt
// up to the attempt bound; deterministic model errors just fail again
// and surface after the bound, so the cost of optimism is bounded too.
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}
