package dse

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Strategy names accepted by Config.Strategy.
const (
	StrategyGrid      = "grid"
	StrategyRandom    = "random"
	StrategyHillClimb = "hillclimb"
)

// Strategies lists the built-in strategy names in canonical order.
// The surrogate-accelerated trio (surrogate.go) comes after the
// exact strategies.
func Strategies() []string {
	return []string{StrategyGrid, StrategyRandom, StrategyHillClimb,
		StrategySurrogateHill, StrategyEI, StrategyScreen}
}

// Strategy proposes candidate indexes to evaluate. The engine calls
// Next repeatedly: each call sees the full ordered history of
// evaluations so far and the remaining evaluation budget, and returns
// the next batch of point indexes (already-evaluated proposals are
// served from the history without consuming budget). An empty batch
// ends the search.
//
// Determinism contract: a strategy must derive its choices only from
// its seed and the observed history — never from wall-clock, map
// iteration order or completion order — so that a resumed run replays
// the exact proposal sequence of an uninterrupted one.
type Strategy interface {
	// Name returns the canonical strategy name.
	Name() string
	// Next proposes the next batch of candidate indexes.
	Next(s Space, hist []HistoryEntry, remaining int) []int
}

// HistoryEntry is one observed evaluation, in observation order.
type HistoryEntry struct {
	Index int
	Point Point
	Eval  Eval
}

// NewStrategy builds a named strategy seeded for deterministic replay.
func NewStrategy(name string, seed int64) (Strategy, error) {
	switch name {
	case StrategyGrid:
		return &gridStrategy{}, nil
	case StrategyRandom:
		return &randomStrategy{seed: seed}, nil
	case StrategyHillClimb:
		return &hillClimbStrategy{seed: seed}, nil
	case StrategySurrogateHill:
		return &surrogateHillStrategy{hillClimbStrategy: hillClimbStrategy{seed: seed}}, nil
	case StrategyEI:
		return &eiStrategy{seed: seed}, nil
	case StrategyScreen:
		return &screenStrategy{seed: seed}, nil
	default:
		return nil, fmt.Errorf("dse: unknown strategy %q (have %s)", name, strings.Join(Strategies(), ", "))
	}
}

// --- exhaustive grid --------------------------------------------------------

// defaultCheckpointEvery is the engine's strategy-batch cap when
// Config.CheckpointEvery is zero: large enough to fill the lockstep
// batch runner's lanes, small enough that a killed run loses at most
// this many evaluations to the unjournaled tail.
const defaultCheckpointEvery = 64

// gridStrategy enumerates the space in index order — the exhaustive
// sweep the paper's sensitivity studies replay by hand. A Config.Range
// restricts it to [cursor, limit); limit 0 means the whole space.
type gridStrategy struct {
	cursor int
	limit  int
}

func (g *gridStrategy) Name() string { return StrategyGrid }

func (g *gridStrategy) Next(s Space, _ []HistoryEntry, remaining int) []int {
	end := s.Size()
	if g.limit > 0 && g.limit < end {
		end = g.limit
	}
	n := end - g.cursor
	if n > remaining {
		n = remaining
	}
	if n <= 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = g.cursor + i
	}
	g.cursor += n
	return out
}

// --- seeded random sampling -------------------------------------------------

// randomStrategy samples the space without replacement in a seeded
// random order — the cheap baseline for spaces too big to sweep.
type randomStrategy struct {
	seed   int64
	perm   []int
	cursor int
}

func (r *randomStrategy) Name() string { return StrategyRandom }

func (r *randomStrategy) Next(s Space, hist []HistoryEntry, remaining int) []int {
	if r.perm == nil {
		r.perm = rand.New(rand.NewSource(r.seed)).Perm(s.Size())
	}
	if remaining <= 0 {
		return nil
	}
	// Never re-propose an already-evaluated index: history entries —
	// whether from this run's own proposals or seeded externally — are
	// skipped, so every proposal spends budget on a fresh simulation.
	// In an engine-driven run the history is exactly the permutation
	// prefix already consumed, so the proposal sequence is unchanged.
	evaluated := make(map[int]bool, len(hist))
	for _, h := range hist {
		evaluated[h.Index] = true
	}
	var out []int
	for len(out) < remaining && r.cursor < len(r.perm) {
		i := r.perm[r.cursor]
		r.cursor++
		if !evaluated[i] {
			out = append(out, i)
		}
	}
	return out
}

// --- adaptive hill-climbing -------------------------------------------------

// hillClimbSeeds is how many random starting points the climber plants.
const hillClimbSeeds = 4

// hillClimbStrategy is the adaptive search: plant a few seeded random
// starts, then repeatedly propose the unvisited axis-neighbors of the
// best candidate seen so far (best by perf-per-watt, the scalar that
// folds performance and cooling-inclusive power into one number). When
// the neighborhood is exhausted it restarts from a fresh random point,
// so with enough budget it keeps exploring instead of parking on a
// local optimum.
type hillClimbStrategy struct {
	seed    int64
	rng     *rand.Rand
	visited map[int]bool // proposed at least once
}

func (h *hillClimbStrategy) Name() string { return StrategyHillClimb }

// best returns the history index of the best candidate by
// perf-per-watt, ties broken toward the lowest point index so replay
// does not depend on observation order.
func best(hist []HistoryEntry) (HistoryEntry, bool) {
	if len(hist) == 0 {
		return HistoryEntry{}, false
	}
	bi := hist[0]
	for _, e := range hist[1:] {
		v, bv := e.Eval.PerfPerWatt, bi.Eval.PerfPerWatt
		if v > bv || (v == bv && e.Index < bi.Index) {
			bi = e
		}
	}
	return bi, true
}

func (h *hillClimbStrategy) propose(batch []int, idx int) []int {
	if !h.visited[idx] {
		h.visited[idx] = true
		batch = append(batch, idx)
	}
	return batch
}

// randomUnvisited draws the next unvisited index from the seeded rng;
// ok=false once the space is exhausted.
func (h *hillClimbStrategy) randomUnvisited(size int) (int, bool) {
	if len(h.visited) >= size {
		return 0, false
	}
	for {
		if i := h.rng.Intn(size); !h.visited[i] {
			return i, true
		}
	}
}

func (h *hillClimbStrategy) Next(s Space, hist []HistoryEntry, remaining int) []int {
	if remaining <= 0 {
		return nil
	}
	if h.rng == nil {
		h.rng = rand.New(rand.NewSource(h.seed))
		h.visited = make(map[int]bool)
	}
	// Never re-propose an already-evaluated index: mark the history —
	// including entries the climber did not itself propose — as visited
	// before choosing. An engine-driven run only ever has its own
	// proposals in the history, so its sequence is unchanged.
	for _, e := range hist {
		h.visited[e.Index] = true
	}
	var batch []int
	// Cold start: plant the seeds.
	if len(hist) == 0 && len(h.visited) == 0 {
		n := hillClimbSeeds
		if n > remaining {
			n = remaining
		}
		if n > s.Size() {
			n = s.Size()
		}
		for len(batch) < n {
			i, ok := h.randomUnvisited(s.Size())
			if !ok {
				break
			}
			batch = h.propose(batch, i)
		}
		return batch
	}
	// Climb: unvisited neighbors of the best point so far.
	if b, ok := best(hist); ok {
		for _, nb := range s.Neighbors(b.Index) {
			if len(batch) >= remaining {
				break
			}
			batch = h.propose(batch, nb)
		}
	}
	if len(batch) > 0 {
		sort.Ints(batch)
		return batch
	}
	// Stuck: restart from one fresh random point.
	if i, ok := h.randomUnvisited(s.Size()); ok {
		return h.propose(batch, i)
	}
	return nil
}
