// Package dse is the design-space-exploration engine: it searches the
// cryogenic design space the paper explores by hand — operating
// temperature, Vdd/Vth scaling point, CryoSP pipeline depth, NoC kind
// and workload — against pluggable objectives (system performance,
// total watts including the cryocooler, cooling-adjusted energy), and
// extracts the Pareto frontier of the evaluated candidates.
//
// The engine is built from four pieces: a Space with deterministic
// mixed-radix enumeration (every candidate has a stable integer index),
// seeded search Strategies behind one interface (exhaustive grid,
// random sampling, adaptive hill-climbing), parallel candidate
// evaluation on par.ForCtx over the shared memoized Platform, and a
// JSON-lines checkpoint journal that makes a killed run resumable —
// with the same seed a resumed run produces byte-identical output to an
// uninterrupted one, because every evaluation is a pure function of
// (point, simulation config) and the journal is only a memo of those
// values. The paper's headline CryoSP(7.84 GHz)+CryoBus design point
// falls out of the search at 77 K rather than being hard-coded.
package dse

import (
	"fmt"
	"math"
	"strings"

	"cryowire/internal/phys"
	"cryowire/internal/pipeline"
	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

// Voltage-mode names: the Vdd/Vth scaling points of the §7 study.
const (
	// ModeNominal is the nominal FreePDK45 point (1.25/0.47 V) with the
	// full Skylake-sized machine — the 300 K baseline recipe.
	ModeNominal = "nominal"
	// ModeCHP is the CryoCore/CHP scaling point (0.75/0.25 V) with the
	// halved CryoCore machine.
	ModeCHP = "chp"
	// ModeCryoSP is the aggressive CryoSP point (0.64/0.25 V) with the
	// halved CryoCore machine — feasible only where leakage collapses.
	ModeCryoSP = "cryosp"
)

// Modes lists the voltage modes in canonical order.
func Modes() []string { return []string{ModeNominal, ModeCHP, ModeCryoSP} }

// NoC-kind names accepted by a Space, in canonical order.
const (
	NetMesh        = "mesh"
	NetSharedBus   = "shared-bus"
	NetCryoBus     = "cryobus"
	NetCryoBus2Way = "cryobus-2way"
)

// Nets lists the NoC kinds in canonical order.
func Nets() []string { return []string{NetMesh, NetSharedBus, NetCryoBus, NetCryoBus2Way} }

// netKindByName maps a canonical net name to the simulator's kind.
func netKindByName(name string) (sim.NetKind, error) {
	switch name {
	case NetMesh:
		return sim.Mesh, nil
	case NetSharedBus:
		return sim.SharedBus, nil
	case NetCryoBus:
		return sim.CryoBus, nil
	case NetCryoBus2Way:
		return sim.CryoBus2Way, nil
	default:
		return 0, fmt.Errorf("dse: unknown net %q (have %s)", name, strings.Join(Nets(), ", "))
	}
}

// modeOp returns the core operating point and sizing recipe of a
// voltage mode at temperature t.
func modeOp(mode string, t float64) (phys.OperatingPoint, pipeline.Sizing, error) {
	k := phys.Kelvin(t)
	switch mode {
	case ModeNominal:
		return phys.OperatingPoint{T: k, Vdd: phys.Nominal45.Vdd, Vth: phys.Nominal45.Vth}, pipeline.SkylakeSizing, nil
	case ModeCHP:
		return phys.OperatingPoint{T: k, Vdd: pipeline.CHPVoltage.Vdd, Vth: pipeline.CHPVoltage.Vth}, pipeline.CryoCoreSizing, nil
	case ModeCryoSP:
		return phys.OperatingPoint{T: k, Vdd: pipeline.CryoSPVoltage.Vdd, Vth: pipeline.CryoSPVoltage.Vth}, pipeline.CryoCoreSizing, nil
	default:
		return phys.OperatingPoint{}, 0, fmt.Errorf("dse: unknown voltage mode %q (have %s)", mode, strings.Join(Modes(), ", "))
	}
}

// Point is one fully specified candidate design: a system the
// full-system simulator can run. Points serialize to flat JSON so the
// checkpoint journal and the frontier report stay human-readable.
type Point struct {
	// TempK is the operating temperature of cores, NoC and caches.
	TempK float64 `json:"temp_k"`
	// Mode is the Vdd/Vth scaling point ("nominal", "chp", "cryosp").
	Mode string `json:"mode"`
	// Depth is the core pipeline depth (14 = baseline BOOM up to
	// 14+MaxFrontendSplits = fully superpipelined CryoSP frontend).
	Depth int `json:"depth"`
	// Net is the interconnect kind ("mesh", "shared-bus", "cryobus",
	// "cryobus-2way").
	Net string `json:"net"`
	// Workload names the profile the candidate is evaluated on.
	Workload string `json:"workload"`
	// StageK is the memory-stage temperature of the multi-stage system
	// model: 0 (the legacy flat system — memory shares TempK, cooling
	// is the flat (1+CO) lift) or a stage temperature, in which case
	// the memory hierarchy runs at StageK and the candidate is priced
	// through the staged cooling chain (internal/stage) with per-stage
	// Carnot overheads and cable heatloads. Omitted from JSON when 0 so
	// pre-stage-axis journals replay byte-identically.
	StageK float64 `json:"stage_k,omitempty"`
}

// String renders the point as a compact design name.
func (p Point) String() string {
	if p.StageK > 0 {
		return fmt.Sprintf("%gK/%s/d%d/%s/%s/mem%gK", p.TempK, p.Mode, p.Depth, p.Net, p.Workload, p.StageK)
	}
	return fmt.Sprintf("%gK/%s/d%d/%s/%s", p.TempK, p.Mode, p.Depth, p.Net, p.Workload)
}

// Space is the searchable design space: the cross product of its five
// core axes plus the optional memory-stage temperature axis. Axes
// enumerate in fixed order (temperature outermost, stage temperature
// innermost), so every point has a stable integer index in
// [0, Size()) — the handle the strategies, the journal and the report
// all share.
type Space struct {
	// TempsK are the candidate operating temperatures (77–300 K).
	TempsK []float64 `json:"temps_k"`
	// Modes are voltage modes (see Modes).
	Modes []string `json:"modes"`
	// Depths are core pipeline depths (see pipeline.BaseDepth and
	// pipeline.MaxFrontendSplits).
	Depths []int `json:"depths"`
	// Nets are interconnect kinds (see Nets).
	Nets []string `json:"nets"`
	// Workloads are the candidate workload profiles.
	Workloads []workload.Profile `json:"-"`

	// WorkloadNames mirrors Workloads for serialization.
	WorkloadNames []string `json:"workloads"`

	// StageTempsK is the optional sixth axis: candidate memory-stage
	// temperatures of the multi-stage system model. Empty keeps the
	// legacy flat system (every point has StageK == 0) — and keeps the
	// space's canonical fingerprint unchanged, so journals written
	// before the axis existed still resume byte-identically.
	StageTempsK []float64 `json:"stage_temps_k,omitempty"`
}

// stageLen is the stage axis's mixed radix: an empty axis contributes
// radix 1 (one implicit "flat system" coordinate), which is what keeps
// legacy point indexes stable.
func (s Space) stageLen() int {
	if len(s.StageTempsK) == 0 {
		return 1
	}
	return len(s.StageTempsK)
}

// WithStages returns a copy of the space with the memory-stage
// temperature axis installed.
func (s Space) WithStages(temps []float64) Space {
	s.StageTempsK = temps
	return s
}

// DefaultSpace returns the standard search space: the §7 temperature
// grid crossed with all three voltage modes, the full depth range, all
// four interconnects and a representative PARSEC trio (quick keeps two
// temperatures, two modes, the depth extremes, two nets and one
// workload).
func DefaultSpace(quick bool) Space {
	byName := func(names ...string) []workload.Profile {
		var out []workload.Profile
		for _, n := range names {
			p, err := workload.ByName(n)
			if err != nil {
				// Unreachable: the names below are the built-in suite's.
				panic(fmt.Sprintf("dse: %v", err))
			}
			out = append(out, p)
		}
		return out
	}
	if quick {
		return NewSpace([]float64{300, 77}, []string{ModeNominal, ModeCryoSP}, []int{14, 17},
			[]string{NetMesh, NetCryoBus}, byName("x264"))
	}
	return NewSpace([]float64{300, 150, 100, 77}, Modes(), []int{14, 15, 16, 17},
		Nets(), byName("blackscholes", "streamcluster", "x264"))
}

// NewSpace assembles a space and fills the serialized workload names.
// Call Validate before searching it.
func NewSpace(temps []float64, modes []string, depths []int, nets []string, wls []workload.Profile) Space {
	s := Space{TempsK: temps, Modes: modes, Depths: depths, Nets: nets, Workloads: wls}
	for _, w := range wls {
		s.WorkloadNames = append(s.WorkloadNames, w.Name)
	}
	return s
}

// Validate checks every axis: non-empty, no duplicates, known names,
// physical temperatures, depths inside the derivable range, and — fail
// fast, the engine iterates candidates over them — every workload
// profile internally consistent.
func (s Space) Validate() error {
	if len(s.TempsK) == 0 || len(s.Modes) == 0 || len(s.Depths) == 0 || len(s.Nets) == 0 || len(s.Workloads) == 0 {
		return fmt.Errorf("dse: space has an empty axis (temps=%d modes=%d depths=%d nets=%d workloads=%d)",
			len(s.TempsK), len(s.Modes), len(s.Depths), len(s.Nets), len(s.Workloads))
	}
	seenT := make(map[float64]bool, len(s.TempsK))
	for _, t := range s.TempsK {
		if math.IsNaN(t) || t <= 0 {
			return fmt.Errorf("dse: unphysical temperature %v", t)
		}
		if seenT[t] {
			return fmt.Errorf("dse: duplicate temperature %v", t)
		}
		seenT[t] = true
	}
	seenM := make(map[string]bool, len(s.Modes))
	for _, m := range s.Modes {
		if _, _, err := modeOp(m, 300); err != nil {
			return err
		}
		if seenM[m] {
			return fmt.Errorf("dse: duplicate mode %q", m)
		}
		seenM[m] = true
	}
	minD, maxD := pipeline.BaseDepth(), pipeline.BaseDepth()+pipeline.MaxFrontendSplits()
	seenD := make(map[int]bool, len(s.Depths))
	for _, d := range s.Depths {
		if d < minD || d > maxD {
			return fmt.Errorf("dse: depth %d outside the derivable range [%d,%d]", d, minD, maxD)
		}
		if seenD[d] {
			return fmt.Errorf("dse: duplicate depth %d", d)
		}
		seenD[d] = true
	}
	seenN := make(map[string]bool, len(s.Nets))
	for _, n := range s.Nets {
		if _, err := netKindByName(n); err != nil {
			return err
		}
		if seenN[n] {
			return fmt.Errorf("dse: duplicate net %q", n)
		}
		seenN[n] = true
	}
	seenW := make(map[string]bool, len(s.Workloads))
	for _, w := range s.Workloads {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("dse: %w", err)
		}
		if seenW[w.Name] {
			return fmt.Errorf("dse: duplicate workload %q", w.Name)
		}
		seenW[w.Name] = true
	}
	if len(s.StageTempsK) > 0 {
		// Staged candidates are priced through the stage chain, whose
		// host flange is the 300 K ambient — tier temperatures above it
		// have no chain to hang from.
		for _, t := range s.TempsK {
			if t > 300 {
				return fmt.Errorf("dse: tier temperature %v above the 300 K ambient is incompatible with the stage axis", t)
			}
		}
	}
	seenS := make(map[float64]bool, len(s.StageTempsK))
	for _, t := range s.StageTempsK {
		if math.IsNaN(t) || t <= 0 {
			return fmt.Errorf("dse: unphysical stage temperature %v", t)
		}
		if t > 300 {
			return fmt.Errorf("dse: stage temperature %v above the 300 K ambient", t)
		}
		if seenS[t] {
			return fmt.Errorf("dse: duplicate stage temperature %v", t)
		}
		seenS[t] = true
	}
	if len(s.WorkloadNames) != len(s.Workloads) {
		return fmt.Errorf("dse: workload name list out of sync (use NewSpace)")
	}
	for i, w := range s.Workloads {
		if s.WorkloadNames[i] != w.Name {
			return fmt.Errorf("dse: workload name list out of sync at %d (use NewSpace)", i)
		}
	}
	return nil
}

// Size returns the number of points in the space.
func (s Space) Size() int {
	return len(s.TempsK) * len(s.Modes) * len(s.Depths) * len(s.Nets) * len(s.Workloads) * s.stageLen()
}

// At decodes index i into its point. Enumeration is mixed-radix with
// the axis order (temperature, mode, depth, net, workload), workload
// varying fastest; it depends only on the axis slices, never on
// execution order, which is what makes journaled indexes stable across
// resumed runs.
func (s Space) At(i int) Point {
	if i < 0 || i >= s.Size() {
		panic(fmt.Sprintf("dse: point index %d outside [0,%d)", i, s.Size()))
	}
	st := i % s.stageLen()
	i /= s.stageLen()
	w := i % len(s.Workloads)
	i /= len(s.Workloads)
	n := i % len(s.Nets)
	i /= len(s.Nets)
	d := i % len(s.Depths)
	i /= len(s.Depths)
	m := i % len(s.Modes)
	i /= len(s.Modes)
	p := Point{
		TempK:    s.TempsK[i],
		Mode:     s.Modes[m],
		Depth:    s.Depths[d],
		Net:      s.Nets[n],
		Workload: s.Workloads[w].Name,
	}
	if len(s.StageTempsK) > 0 {
		p.StageK = s.StageTempsK[st]
	}
	return p
}

// coords decodes index i into per-axis coordinates (same radix as At).
// The stage axis is innermost; with no stage axis its coordinate is
// always 0.
func (s Space) coords(i int) [6]int {
	var c [6]int
	c[5] = i % s.stageLen()
	i /= s.stageLen()
	c[4] = i % len(s.Workloads)
	i /= len(s.Workloads)
	c[3] = i % len(s.Nets)
	i /= len(s.Nets)
	c[2] = i % len(s.Depths)
	i /= len(s.Depths)
	c[1] = i % len(s.Modes)
	i /= len(s.Modes)
	c[0] = i
	return c
}

// axisLens returns the per-axis cardinalities in coordinate order.
func (s Space) axisLens() [6]int {
	return [6]int{len(s.TempsK), len(s.Modes), len(s.Depths), len(s.Nets), len(s.Workloads), s.stageLen()}
}

// normCoords maps index i onto the unit 6-cube the surrogate
// interpolates over: each axis coordinate scaled by its cardinality
// (an axis of one collapses to 0, contributing nothing to distances).
// Positions, not axis values, are what get normalized — the surrogate
// learns over the grid the strategies walk, so one "grid step" costs
// the same distance on every axis.
func (s Space) normCoords(i int) []float64 {
	c, lens := s.coords(i), s.axisLens()
	out := make([]float64, len(c))
	for ax := range c {
		if lens[ax] > 1 {
			out[ax] = float64(c[ax]) / float64(lens[ax]-1)
		}
	}
	return out
}

// index re-encodes coordinates into a point index.
func (s Space) index(c [6]int) int {
	return ((((c[0]*len(s.Modes)+c[1])*len(s.Depths)+c[2])*len(s.Nets)+c[3])*len(s.Workloads)+c[4])*s.stageLen() + c[5]
}

// Neighbors returns the indexes one step away from i along each axis
// (the hill-climbing move set), in ascending order without duplicates.
func (s Space) Neighbors(i int) []int {
	c := s.coords(i)
	lens := s.axisLens()
	var out []int
	seen := map[int]bool{i: true}
	for ax := 0; ax < 6; ax++ {
		for _, step := range []int{-1, 1} {
			nc := c
			nc[ax] += step
			if nc[ax] < 0 || nc[ax] >= lens[ax] {
				continue
			}
			j := s.index(nc)
			if !seen[j] {
				seen[j] = true
				out = append(out, j)
			}
		}
	}
	// The per-axis walk emits indexes out of order; sort for stable
	// proposal order.
	for a := 1; a < len(out); a++ {
		for b := a; b > 0 && out[b] < out[b-1]; b-- {
			out[b], out[b-1] = out[b-1], out[b]
		}
	}
	return out
}

// profileByName resolves a workload name inside the space.
func (s Space) profileByName(name string) (workload.Profile, error) {
	for _, w := range s.Workloads {
		if w.Name == name {
			return w, nil
		}
	}
	return workload.Profile{}, fmt.Errorf("dse: workload %q not in space", name)
}

// canonical renders the space for the journal-compatibility key: every
// axis value in order, so two spaces agree iff their searches do.
func (s Space) canonical() string {
	var b strings.Builder
	b.WriteString("temps=")
	for i, t := range s.TempsK {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", t)
	}
	fmt.Fprintf(&b, "|modes=%s", strings.Join(s.Modes, ","))
	b.WriteString("|depths=")
	for i, d := range s.Depths {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	fmt.Fprintf(&b, "|nets=%s", strings.Join(s.Nets, ","))
	fmt.Fprintf(&b, "|workloads=%s", strings.Join(s.WorkloadNames, ","))
	// The stage axis joins the fingerprint only when present: a space
	// without it renders exactly the pre-stage-axis string, which is
	// what keeps old journals resumable (their sha256 keys still match).
	if len(s.StageTempsK) > 0 {
		b.WriteString("|stages=")
		for i, t := range s.StageTempsK {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", t)
		}
	}
	return b.String()
}
