package dse

import "fmt"

// Range restricts a grid search to the half-open point-index interval
// [Start, End). It is the unit of distribution (internal/shard): a
// coordinator partitions one space into contiguous ranges and hands
// each to a worker, and because a point's index is a pure function of
// the space's axis lists, two processes holding equal spaces agree on
// what every index means — no point list ever crosses the wire. Only
// the exhaustive grid strategy accepts a range: the seeded adaptive
// strategies derive each proposal from the global history, so slicing
// them by index would change the search itself, not just its schedule.
type Range struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Len returns the number of point indexes in the range.
func (r Range) Len() int { return r.End - r.Start }

// Validate checks the range against a space of the given size.
func (r Range) Validate(size int) error {
	if r.Start < 0 || r.End > size || r.Start >= r.End {
		return fmt.Errorf("dse: point-index range [%d,%d) is empty or outside the space [0,%d)", r.Start, r.End, size)
	}
	return nil
}
