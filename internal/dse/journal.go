package dse

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"cryowire/internal/sim"
)

// The checkpoint journal is a JSON-lines file: one header line binding
// the journal to its (space, simulation config) pair, then one line per
// completed evaluation. Because every evaluation is a pure function of
// (point, config), the journal is only a memo — resuming replays the
// seeded strategy from scratch and serves journaled indexes from the
// cache, so a resumed run's output is byte-identical to an
// uninterrupted one. Lines are appended with O_APPEND and synced per
// batch; a truncated trailing line (killed mid-write) is ignored.

// journalHeader is the first line of a journal file.
type journalHeader struct {
	// Kind guards against feeding an unrelated JSONL file to -resume.
	Kind string `json:"kind"`
	// Key fingerprints the (space, sim config) pair the evaluations
	// are valid for.
	Key string `json:"key"`
}

// journalLine is one completed evaluation.
type journalLine struct {
	Index int  `json:"index"`
	Eval  Eval `json:"eval"`
}

const journalKind = "cryowire-dse-journal"

// journalKey fingerprints everything an Eval depends on: the full axis
// lists (index meaning) and the simulation lengths/seed. A journal
// recorded under a different key is rejected rather than silently
// replaying stale numbers.
func journalKey(s Space, cfg sim.Config) string {
	canon := fmt.Sprintf("%s||warmup=%d|measure=%d|seed=%d|cores=%d",
		s.canonical(), cfg.WarmupCycles, cfg.MeasureCycles, cfg.Seed, evalCores)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}

// journal is an append-only evaluation log with its in-memory cache.
type journal struct {
	f     *os.File
	cache map[int]Eval
}

// openJournal opens (creating if needed) the journal at path for the
// given search, loading any prior evaluations recorded under the same
// key. With resume=false an existing non-empty journal is an error —
// silently appending a fresh run onto an old one would corrupt both.
func openJournal(path string, s Space, cfg sim.Config, resume bool) (*journal, error) {
	key := journalKey(s, cfg)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dse: open journal: %w", err)
	}
	j := &journal{f: f, cache: make(map[int]Eval)}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("dse: stat journal: %w", err)
	}
	if st.Size() == 0 {
		// Fresh journal: write the header.
		hdr, err := json.Marshal(journalHeader{Kind: journalKind, Key: key})
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, fmt.Errorf("dse: write journal header: %w", err)
		}
		return j, nil
	}
	if !resume {
		f.Close()
		return nil, fmt.Errorf("dse: journal %s already exists; pass -resume to continue it or remove it to start over", path)
	}
	if err := j.load(key); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// load reads the existing journal, checks the header key, and fills
// the cache. A malformed or truncated trailing line (the run was
// killed mid-write) is tolerated; malformed interior lines are errors.
func (j *journal) load(key string) error {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("dse: rewind journal: %w", err)
	}
	sc := bufio.NewScanner(j.f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return fmt.Errorf("dse: journal has no header line")
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return fmt.Errorf("dse: journal header: %w", err)
	}
	if hdr.Kind != journalKind {
		return fmt.Errorf("dse: not a dse journal (kind %q)", hdr.Kind)
	}
	if hdr.Key != key {
		return fmt.Errorf("dse: journal was recorded for a different space or simulation config; remove it to start over")
	}
	var prev string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if prev != "" {
			// Only now do we know prev was an interior line: it must parse.
			if err := j.addLine(prev); err != nil {
				return err
			}
		}
		prev = line
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("dse: read journal: %w", err)
	}
	if prev != "" {
		// The final line may be a torn write from a killed run; skip it
		// silently if it does not parse. Its evaluation just re-runs.
		var l journalLine
		if err := json.Unmarshal([]byte(prev), &l); err == nil {
			j.cache[l.Index] = l.Eval
		}
	}
	if _, err := j.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("dse: seek journal: %w", err)
	}
	return nil
}

func (j *journal) addLine(line string) error {
	var l journalLine
	if err := json.Unmarshal([]byte(line), &l); err != nil {
		return fmt.Errorf("dse: corrupt journal line: %w", err)
	}
	j.cache[l.Index] = l.Eval
	return nil
}

// lookup returns the journaled evaluation for a point index, if any.
func (j *journal) lookup(i int) (Eval, bool) {
	if j == nil {
		return Eval{}, false
	}
	e, ok := j.cache[i]
	return e, ok
}

// record appends one completed evaluation and syncs it to disk so a
// kill after record never loses the work.
func (j *journal) record(i int, e Eval) error {
	if j == nil {
		return nil
	}
	j.cache[i] = e
	b, err := json.Marshal(journalLine{Index: i, Eval: e})
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("dse: append journal: %w", err)
	}
	return j.f.Sync()
}

// close releases the journal file.
func (j *journal) close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}
