package dse

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cryowire/internal/sim"
)

// The checkpoint journal is a JSON-lines file: one header line binding
// the journal to its (space, simulation config) pair, then one line per
// completed evaluation. Because every evaluation is a pure function of
// (point, config), the journal is only a memo — resuming replays the
// seeded strategy from scratch and serves journaled indexes from the
// cache, so a resumed run's output is byte-identical to an
// uninterrupted one. Lines are appended with O_APPEND and synced per
// evaluation, as each completes; a truncated trailing line (killed
// mid-write) is ignored.

// journalHeader is the first line of a journal file.
type journalHeader struct {
	// Kind guards against feeding an unrelated JSONL file to -resume.
	Kind string `json:"kind"`
	// Key fingerprints the (space, sim config) pair the evaluations
	// are valid for.
	Key string `json:"key"`
	// StrategyKey extends Key for surrogate-accelerated searches: it
	// fingerprints the strategy, its seed, its knobs and the prior
	// content the proposal sequence depends on, so a resume with
	// different priors is rejected instead of silently diverging from
	// the run it promises to reproduce byte-for-byte. Empty for the
	// exact strategies (grid/random/hillclimb), which keeps their
	// headers byte-identical to earlier releases and keeps shard
	// journals mergeable.
	StrategyKey string `json:"strategy_key,omitempty"`
}

// journalLine is one completed evaluation — the exported JournalEntry
// (merge.go), aliased so the engine's appends and WriteJournal's
// merged rewrites marshal byte-identically by construction.
type journalLine = JournalEntry

const journalKind = "cryowire-dse-journal"

// journalKey fingerprints everything an Eval depends on: the full axis
// lists (index meaning) and the simulation lengths/seed. A journal
// recorded under a different key is rejected rather than silently
// replaying stale numbers.
func journalKey(s Space, cfg sim.Config) string {
	canon := fmt.Sprintf("%s||warmup=%d|measure=%d|seed=%d|cores=%d",
		s.canonical(), cfg.WarmupCycles, cfg.MeasureCycles, cfg.Seed, evalCores)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}

// journal is an append-only evaluation log with its in-memory cache.
type journal struct {
	f     *os.File
	cache map[int]Eval
}

// openJournal opens (creating if needed) the journal at path for the
// given search, loading any prior evaluations recorded under the same
// key. stratKey is the strategy fingerprint to record and require
// (empty for the exact strategies — see journalHeader.StrategyKey).
// With resume=false an existing non-empty journal is an error —
// silently appending a fresh run onto an old one would corrupt both.
func openJournal(path string, s Space, cfg sim.Config, resume bool, stratKey string) (*journal, error) {
	key := journalKey(s, cfg)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dse: open journal: %w", err)
	}
	j := &journal{f: f, cache: make(map[int]Eval)}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("dse: stat journal: %w", err)
	}
	if st.Size() == 0 {
		// Fresh journal: write the header.
		hdr, err := json.Marshal(journalHeader{Kind: journalKind, Key: key, StrategyKey: stratKey})
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, fmt.Errorf("dse: write journal header: %w", err)
		}
		return j, nil
	}
	if !resume {
		f.Close()
		return nil, fmt.Errorf("dse: journal %s already exists; pass -resume to continue it or remove it to start over", path)
	}
	if err := j.load(key, stratKey); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// load reads the existing journal, checks the header key, and fills
// the cache. A torn final line — the run was killed between a write
// and its sync, so a suffix of the file never reached disk — is
// truncated away, not merely skipped: the next append must start on a
// clean line boundary or it would glue a fresh record onto the torn
// bytes and corrupt an interior line for every later resume. Malformed
// newline-terminated lines were fully written, so they are genuine
// corruption and remain errors.
func (j *journal) load(key, stratKey string) error {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("dse: rewind journal: %w", err)
	}
	data, err := io.ReadAll(j.f)
	if err != nil {
		return fmt.Errorf("dse: read journal: %w", err)
	}
	lines, torn := splitJournal(data)
	if len(lines) == 0 {
		// Even the header never hit a line boundary: the kill landed
		// inside the very first write. Nothing is recoverable; restart
		// the journal from scratch.
		return j.restart(key, stratKey, 0)
	}
	var hdr journalHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return fmt.Errorf("dse: journal header: %w", err)
	}
	if hdr.Kind != journalKind {
		return fmt.Errorf("dse: not a dse journal (kind %q)", hdr.Kind)
	}
	if hdr.Key != key {
		return fmt.Errorf("dse: journal was recorded for a different space or simulation config; remove it to start over")
	}
	if hdr.StrategyKey != stratKey {
		return fmt.Errorf("dse: journal was recorded for a different strategy configuration (strategy, seed, priors or screen margin changed); remove it to start over")
	}
	for _, line := range lines[1:] {
		if err := j.addLine(line); err != nil {
			return err
		}
	}
	if torn >= 0 {
		// Drop the torn tail so appends resume on a line boundary. The
		// truncated evaluation just re-runs.
		if err := j.f.Truncate(int64(torn)); err != nil {
			return fmt.Errorf("dse: truncate torn journal tail: %w", err)
		}
	}
	if _, err := j.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("dse: seek journal: %w", err)
	}
	return nil
}

// splitJournal cuts the journal bytes into complete (newline-
// terminated) lines, skipping blank ones, and reports the byte offset
// of a torn unterminated tail (-1 when the file ends cleanly).
func splitJournal(data []byte) (lines [][]byte, torn int) {
	start := 0
	for start < len(data) {
		nl := bytes.IndexByte(data[start:], '\n')
		if nl < 0 {
			return lines, start
		}
		line := bytes.TrimSpace(data[start : start+nl])
		if len(line) > 0 {
			lines = append(lines, line)
		}
		start += nl + 1
	}
	return lines, -1
}

// restart wipes the journal back to a fresh header — the recovery path
// for a file whose header itself was torn mid-write.
func (j *journal) restart(key, stratKey string, size int64) error {
	if err := j.f.Truncate(size); err != nil {
		return fmt.Errorf("dse: truncate torn journal: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("dse: seek journal: %w", err)
	}
	hdr, err := json.Marshal(journalHeader{Kind: journalKind, Key: key, StrategyKey: stratKey})
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(hdr, '\n')); err != nil {
		return fmt.Errorf("dse: write journal header: %w", err)
	}
	return j.f.Sync()
}

func (j *journal) addLine(line []byte) error {
	var l journalLine
	if err := json.Unmarshal(line, &l); err != nil {
		return fmt.Errorf("dse: corrupt journal line: %w", err)
	}
	j.cache[l.Index] = l.Eval
	return nil
}

// lookup returns the journaled evaluation for a point index, if any.
func (j *journal) lookup(i int) (Eval, bool) {
	if j == nil {
		return Eval{}, false
	}
	e, ok := j.cache[i]
	return e, ok
}

// record appends one completed evaluation and syncs it to disk so a
// kill after record never loses the work.
func (j *journal) record(i int, e Eval) error {
	if j == nil {
		return nil
	}
	j.cache[i] = e
	b, err := json.Marshal(journalLine{Index: i, Eval: e})
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("dse: append journal: %w", err)
	}
	return j.f.Sync()
}

// close releases the journal file.
func (j *journal) close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}
