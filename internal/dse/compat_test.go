package dse

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cryowire/internal/platform"
	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

// prestageConfig is the exact search the testdata/dse_prestage_*
// fixtures were generated with, before the stage-temperature axis
// existed: quick space, exhaustive grid, seed 1, quick-experiment sim
// lengths, one worker.
func prestageConfig(journal string) Config {
	return Config{
		Space:    DefaultSpace(true),
		Strategy: StrategyGrid,
		Seed:     1,
		Sim:      sim.Config{WarmupCycles: 1200, MeasureCycles: 5000, Seed: 1},
		Workers:  1,
		Journal:  journal,
		Resume:   true,
	}
}

// TestPreStageJournalCompat is the satellite compatibility gate: a
// journal written before the Space gained its stage-temperature axis
// must still -resume byte-identically — same sha256 fingerprint, every
// evaluation served from the journal without re-simulating, and the
// recovered frontier bit-equal to the pre-change result.
func TestPreStageJournalCompat(t *testing.T) {
	fixture, err := os.ReadFile("../../testdata/dse_prestage_journal.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	wantResult, err := os.ReadFile("../../testdata/dse_prestage_result.json")
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(t.TempDir(), "dse.jsonl")
	if err := os.WriteFile(jpath, fixture, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := prestageConfig(jpath)

	// The fingerprint itself must not have moved: the fixture header
	// pins the pre-stage-axis key.
	var header struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(fixture[:bytes.IndexByte(fixture, '\n')], &header); err != nil {
		t.Fatal(err)
	}
	if got := journalKey(cfg.Space, cfg.Sim); got != header.Key {
		t.Fatalf("journal key changed: %s, fixture pinned %s — pre-stage-axis journals can no longer resume", got, header.Key)
	}

	// Any attempt to actually evaluate is a compatibility failure: the
	// journal holds the complete search.
	prev := evalOverride
	evalOverride = func(ctx context.Context, pf *platform.Platform, pt Point, prof workload.Profile, c sim.Config) (Eval, error) {
		t.Errorf("candidate %s re-evaluated despite a complete pre-stage journal", pt)
		return evaluate(ctx, pf, pt, prof, c)
	}
	t.Cleanup(func() { evalOverride = prev })

	got, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	gb = append(gb, '\n')
	if !bytes.Equal(gb, wantResult) {
		t.Fatalf("resumed result diverged from the pre-stage fixture:\n--- want ---\n%s\n--- got ---\n%s", wantResult, gb)
	}

	// A fully-replayed journal must not grow.
	after, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, fixture) {
		t.Fatal("journal bytes changed during a pure replay")
	}
}

// TestStageAxisChangesJournalKey pins the other half of the contract:
// once the stage axis is present the fingerprint must change, so a
// staged search can never silently consume (or corrupt) a flat-system
// journal.
func TestStageAxisChangesJournalKey(t *testing.T) {
	flat := DefaultSpace(true)
	staged := flat.WithStages([]float64{77})
	cfg := sim.Config{WarmupCycles: 1200, MeasureCycles: 5000, Seed: 1}
	if journalKey(flat, cfg) == journalKey(staged, cfg) {
		t.Fatal("stage axis invisible to the journal fingerprint")
	}
	// And the engine enforces it end to end: resuming the pre-stage
	// fixture with a staged space refuses.
	fixture, err := os.ReadFile("../../testdata/dse_prestage_journal.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(t.TempDir(), "dse.jsonl")
	if err := os.WriteFile(jpath, fixture, 0o644); err != nil {
		t.Fatal(err)
	}
	c := prestageConfig(jpath)
	c.Space = staged
	if _, err := Run(context.Background(), c); err == nil || !strings.Contains(err.Error(), "different space or simulation config") {
		t.Fatalf("staged space resumed a flat journal: err = %v", err)
	}
}

// TestStageAxisEnumeration checks the sixth axis's mixed-radix
// plumbing: size multiplies, At decodes StageK innermost, coords/index
// round-trip, and neighbors step along the stage axis.
func TestStageAxisEnumeration(t *testing.T) {
	s := DefaultSpace(true).WithStages([]float64{77, 4})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	flat := DefaultSpace(true)
	if s.Size() != 2*flat.Size() {
		t.Fatalf("staged size %d, want %d", s.Size(), 2*flat.Size())
	}
	for i := 0; i < s.Size(); i++ {
		pt := s.At(i)
		wantStage := s.StageTempsK[i%2]
		if pt.StageK != wantStage {
			t.Fatalf("At(%d).StageK = %v, want %v", i, pt.StageK, wantStage)
		}
		// The stage axis is innermost: stripping it recovers the flat
		// space's point.
		fp := flat.At(i / 2)
		fp.StageK = wantStage
		if pt != fp {
			t.Fatalf("At(%d) = %+v, want flat point %+v", i, pt, fp)
		}
		if got := s.index(s.coords(i)); got != i {
			t.Fatalf("coords/index round trip: %d -> %d", i, got)
		}
	}
	// Point 0 and point 1 differ only in stage; they must be mutual
	// neighbors.
	found := false
	for _, n := range s.Neighbors(0) {
		if n == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("stage-axis neighbor missing from the move set")
	}
	// Invalid stage axes refuse.
	for _, bad := range [][]float64{{0}, {-4}, {400}, {77, 77}} {
		if err := DefaultSpace(true).WithStages(bad).Validate(); err == nil {
			t.Errorf("stage axis %v validated", bad)
		}
	}
	if err := NewSpace([]float64{400}, []string{ModeNominal}, []int{14}, []string{NetMesh},
		DefaultSpace(true).Workloads).WithStages([]float64{77}).Validate(); err == nil {
		t.Error("above-ambient tier temperature accepted alongside a stage axis")
	}
}

// TestStagedSearch4K answers the acceptance question end to end at
// test scale: a staged grid over tier ∈ {77 K, 4 K} with 77 K memory
// completes, recovers a frontier, and shows the 4 K tier paying the
// ~25× staged cooling premium.
func TestStagedSearch4K(t *testing.T) {
	s := NewSpace([]float64{77, 4}, []string{ModeCryoSP}, []int{17}, []string{NetCryoBus},
		DefaultSpace(true).Workloads).WithStages([]float64{77})
	res, err := Run(context.Background(), Config{
		Space:    s,
		Strategy: StrategyGrid,
		Seed:     1,
		Sim:      quickSim(),
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 2 || len(res.Frontier) == 0 {
		t.Fatalf("staged search: evaluated %d, frontier %d", res.Evaluated, len(res.Frontier))
	}
	var cold, colder *Candidate
	for i := range res.Frontier {
		c := &res.Frontier[i]
		if c.Point.StageK != 77 {
			t.Fatalf("frontier point %s lost its stage", c.Point)
		}
		switch c.Point.TempK {
		case 77:
			cold = c
		case 4:
			colder = c
		}
	}
	if cold == nil {
		t.Fatal("77 K candidate missing from a 2-point frontier")
	}
	// The 77 K staged lift exceeds the flat one (cables cost heat), and
	// when the 4 K tier survives to the frontier it pays far more.
	if cold.Eval.CoolingOverhead <= 9.65 {
		t.Fatalf("staged 77 K effective overhead %v not above the flat 9.65", cold.Eval.CoolingOverhead)
	}
	if colder != nil {
		if colder.Eval.TotalPower <= 5*cold.Eval.TotalPower {
			t.Fatalf("4 K tier total power %v not dwarfing 77 K's %v", colder.Eval.TotalPower, cold.Eval.TotalPower)
		}
	}
}
