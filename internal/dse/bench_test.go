package dse

import (
	"context"
	"testing"

	"cryowire/internal/platform"
	"cryowire/internal/sim"
)

// BenchmarkDSEGrid measures one serial exhaustive grid search over the
// quick space — the same shape the golden determinism gate pins
// (seed 1, workers 1). It exercises every hot path at once: the
// timing-wheel scheduler and pooled transactions inside each candidate
// simulation, and the pooled circuit solver inside the platform
// derivations. A fresh platform per iteration keeps the work honest;
// otherwise later iterations would be answered from the derivation
// cache.
func BenchmarkDSEGrid(b *testing.B) {
	cfg := Config{
		Space:    DefaultSpace(true),
		Strategy: StrategyGrid,
		Seed:     1,
		Sim:      sim.Config{WarmupCycles: 400, MeasureCycles: 1600, Seed: 1},
		Workers:  1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Platform = platform.New()
		if _, err := Run(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
