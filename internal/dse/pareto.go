package dse

import "sort"

// Candidate is one evaluated design point in a Result.
type Candidate struct {
	// Index is the point's stable index in the searched space.
	Index int `json:"index"`
	// Point is the decoded design.
	Point Point `json:"point"`
	// Eval is the measured outcome.
	Eval Eval `json:"eval"`
}

// dominates reports whether a dominates b under the objectives: a is
// at least as good on every objective and strictly better on one.
func dominates(a, b Eval, objs []Objective) bool {
	strict := false
	for _, o := range objs {
		av, bv := o.Value(a), o.Value(b)
		if !o.Maximize {
			av, bv = -av, -bv
		}
		if av < bv {
			return false
		}
		if av > bv {
			strict = true
		}
	}
	return strict
}

// paretoFrontier filters the evaluated candidates down to the
// non-dominated set under the objectives, sorted by point index so the
// frontier is deterministic regardless of evaluation order.
func paretoFrontier(cands []Candidate, objs []Objective) []Candidate {
	var front []Candidate
	for i, c := range cands {
		dominated := false
		for k, o := range cands {
			if i == k {
				continue
			}
			if dominates(o.Eval, c.Eval, objs) {
				dominated = true
				break
			}
			// Duplicate evaluations (identical on every objective) keep
			// only the lowest-index representative.
			if k < i && !dominates(c.Eval, o.Eval, objs) && equalOn(o.Eval, c.Eval, objs) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	sort.Slice(front, func(a, b int) bool { return front[a].Index < front[b].Index })
	return front
}

// equalOn reports whether two evaluations tie on every objective.
func equalOn(a, b Eval, objs []Objective) bool {
	for _, o := range objs {
		if o.Value(a) != o.Value(b) {
			return false
		}
	}
	return true
}
