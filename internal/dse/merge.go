package dse

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cryowire/internal/sim"
)

// This file is the journal's exported face, built for distribution
// (internal/shard): per-range shard journals are read, merged and
// rewritten here. The load-bearing fact is that the journal key binds
// only (space, sim config) — never a range, budget or schedule — so
// every shard of one search records under one key, and a merge of
// complete shard journals is byte-identical to the journal an
// uninterrupted single-node run would have left behind.

// JournalEntry is one completed evaluation as recorded on a journal
// line: the point's stable index in the space and its measured
// outcome. Entries are the currency of distribution — a remote worker
// is just something that turns index ranges into entry streams.
type JournalEntry struct {
	Index int  `json:"index"`
	Eval  Eval `json:"eval"`
}

// ParseJournal parses raw journal bytes recorded for (s, cfg) and
// returns the entries sorted by index. Empty input is an empty
// journal; a torn unterminated tail is dropped exactly as resume does
// (readers may race an appender — the tail shows up whole on the next
// read); a journal recorded under a different key is an error. Equal
// duplicate entries collapse silently, conflicting ones are an error.
func ParseJournal(data []byte, s Space, cfg sim.Config) ([]JournalEntry, error) {
	lines, _ := splitJournal(data)
	if len(lines) == 0 {
		return nil, nil
	}
	var hdr journalHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, fmt.Errorf("dse: journal header: %w", err)
	}
	if hdr.Kind != journalKind {
		return nil, fmt.Errorf("dse: not a dse journal (kind %q)", hdr.Kind)
	}
	if hdr.Key != journalKey(s, cfg) {
		return nil, fmt.Errorf("dse: journal was recorded for a different space or simulation config; remove it to start over")
	}
	entries := make([]JournalEntry, 0, len(lines)-1)
	for _, line := range lines[1:] {
		var e JournalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("dse: corrupt journal line: %w", err)
		}
		entries = append(entries, e)
	}
	return MergeEntries(entries)
}

// ReadJournal reads and parses the journal file at path; a missing
// file is an empty journal, because to every reader "no journal yet"
// and "journal with nothing in it" must mean the same thing.
func ReadJournal(path string, s Space, cfg sim.Config) ([]JournalEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dse: read journal: %w", err)
	}
	return ParseJournal(data, s, cfg)
}

// MergeEntries unions entry sets keyed by point index, sorted by
// index. The merge is commutative, associative and idempotent — order
// and repetition of inputs never matter — because an entry's index
// fully determines its eval: evaluation is a pure function of (point,
// sim config), and every input set was key-checked against the same
// pair. Two entries that share an index but disagree therefore came
// from different searches, and that is an error, never a silent pick.
func MergeEntries(sets ...[]JournalEntry) ([]JournalEntry, error) {
	merged := make(map[int]Eval)
	for _, set := range sets {
		for _, e := range set {
			if prev, ok := merged[e.Index]; ok {
				if prev != e.Eval {
					return nil, fmt.Errorf("dse: journal merge conflict at index %d: evaluations disagree, the journals belong to different searches", e.Index)
				}
				continue
			}
			merged[e.Index] = e.Eval
		}
	}
	out := make([]JournalEntry, 0, len(merged))
	for i, e := range merged {
		out = append(out, JournalEntry{Index: i, Eval: e})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out, nil
}

// WriteJournal atomically replaces the journal at path with a complete
// journal for (s, cfg) holding entries in index order: temp file in
// the target directory, sync, rename. Index order is what a grid run
// appends in, so for a full entry set the bytes equal a single-node
// journal's — the identity the shard merge is gated on.
func WriteJournal(path string, s Space, cfg sim.Config, entries []JournalEntry) error {
	sorted := append([]JournalEntry(nil), entries...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Index < sorted[b].Index })
	hdr, err := json.Marshal(journalHeader{Kind: journalKind, Key: journalKey(s, cfg)})
	if err != nil {
		return err
	}
	buf := append(hdr, '\n')
	for _, e := range sorted {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	// The ".tmp-" prefix matches the jobs store's debris convention, so
	// a merge that crashes inside a job directory is swept on recovery.
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-journal-*")
	if err != nil {
		return fmt.Errorf("dse: write journal: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dse: write journal: %w", err)
	}
	return nil
}

// JournalWriter is an exported append handle on a checkpoint journal,
// for evaluations obtained outside the engine — the shard coordinator
// mirrors a remote replica's journal through one, line by line as they
// arrive. Opening creates-or-resumes: a missing or empty file gets a
// fresh header, an existing one is loaded under the same key checks as
// -resume (torn tail truncated). Appends sync per record, matching the
// engine's own crash guarantee.
type JournalWriter struct {
	j *journal
}

// OpenJournalWriter opens the journal at path for (s, cfg).
func OpenJournalWriter(path string, s Space, cfg sim.Config) (*JournalWriter, error) {
	j, err := openJournal(path, s, cfg, true, "")
	if err != nil {
		return nil, err
	}
	return &JournalWriter{j: j}, nil
}

// Record appends one entry, or does nothing if its index is already
// journaled — mirroring the same bytes twice must be harmless.
func (w *JournalWriter) Record(e JournalEntry) error {
	if _, ok := w.j.lookup(e.Index); ok {
		return nil
	}
	return w.j.record(e.Index, e.Eval)
}

// Has reports whether an index is already journaled.
func (w *JournalWriter) Has(i int) bool {
	_, ok := w.j.lookup(i)
	return ok
}

// Len returns the number of journaled entries.
func (w *JournalWriter) Len() int { return len(w.j.cache) }

// Close releases the journal file.
func (w *JournalWriter) Close() error { return w.j.close() }

// MergeFrontiers merges per-shard Pareto frontiers into the frontier
// of their union under the objectives (nil means DefaultObjectives).
// A point non-dominated in the union is non-dominated within any
// subset containing it, so frontier(A ∪ B) == frontier(frontier(A) ∪
// frontier(B)) — merging per-shard frontiers loses nothing. Like
// MergeEntries it is commutative, associative and idempotent:
// candidates dedup by point index and re-filter in index order, so
// shard arrival order can never change the merged frontier.
func MergeFrontiers(objs []Objective, fronts ...[]Candidate) []Candidate {
	if len(objs) == 0 {
		objs = DefaultObjectives()
	}
	seen := make(map[int]bool)
	var all []Candidate
	for _, f := range fronts {
		for _, c := range f {
			if !seen[c.Index] {
				seen[c.Index] = true
				all = append(all, c)
			}
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Index < all[b].Index })
	return paretoFrontier(all, objs)
}
