package dse

import (
	"context"
	"fmt"

	"cryowire/internal/mem"
	"cryowire/internal/phys"
	"cryowire/internal/pipeline"
	"cryowire/internal/platform"
	"cryowire/internal/power"
	"cryowire/internal/sim"
	"cryowire/internal/stage"
	"cryowire/internal/workload"
)

// Eval is the measured outcome of one candidate: the simulator's
// performance plus the power model's cooling-inclusive cost metrics.
// Every field is a pure function of (Point, sim.Config), which is what
// lets the checkpoint journal replay evaluations byte-identically.
type Eval struct {
	// FreqGHz is the derived core clock at the candidate's operating
	// point (the §4 critical-path frequency search).
	FreqGHz float64 `json:"freq_ghz"`
	// IPC is per-core committed instructions per core cycle.
	IPC float64 `json:"ipc"`
	// Performance is committed instructions per nanosecond across the
	// 64-core system — the §6.2 metric, and the first default objective.
	Performance float64 `json:"performance"`
	// DevicePower is system device power (core + NoC share), relative
	// to the 300 K baseline core.
	DevicePower float64 `json:"device_power"`
	// CoolingOverhead is CO(T): compressor watts per device watt.
	CoolingOverhead float64 `json:"cooling_overhead"`
	// TotalPower is device power burdened with the cryocooler (Eq. 2) —
	// the watts objective.
	TotalPower float64 `json:"total_power"`
	// PerfPerWatt is Performance / TotalPower (the Fig 27(a) metric).
	PerfPerWatt float64 `json:"perf_per_watt"`
	// Energy is cooling-adjusted energy per unit of work:
	// TotalPower / Performance — the third default objective.
	Energy float64 `json:"energy"`
}

// Objective is one optimization axis over evaluated candidates.
type Objective struct {
	// Name identifies the objective in reports and journal keys.
	Name string
	// Maximize is true when larger values win.
	Maximize bool
	// Value extracts the objective's scalar from an evaluation.
	Value func(Eval) float64
}

// Built-in objectives.
var (
	// PerformanceObjective maximizes system performance (instr/ns).
	PerformanceObjective = Objective{Name: "performance", Maximize: true, Value: func(e Eval) float64 { return e.Performance }}
	// TotalPowerObjective minimizes cooling-inclusive watts.
	TotalPowerObjective = Objective{Name: "total_power", Maximize: false, Value: func(e Eval) float64 { return e.TotalPower }}
	// EnergyObjective minimizes cooling-adjusted energy per instruction.
	EnergyObjective = Objective{Name: "energy", Maximize: false, Value: func(e Eval) float64 { return e.Energy }}
	// PerfPerWattObjective maximizes performance per total watt — the
	// scalar the hill-climbing strategy climbs.
	PerfPerWattObjective = Objective{Name: "perf_per_watt", Maximize: true, Value: func(e Eval) float64 { return e.PerfPerWatt }}
)

// DefaultObjectives is the frontier the paper's trade-off studies span:
// performance vs watts vs cooling-adjusted energy.
func DefaultObjectives() []Objective {
	return []Objective{PerformanceObjective, TotalPowerObjective, EnergyObjective}
}

// nocPowerShare scales the relative NoC power (normalized to the 300 K
// mesh) into core-relative units when composing system device power:
// the uncore interconnect is a minority share of the 300 K system
// budget (Fig 22 discussion).
const nocPowerShare = 0.15

// nocPowerKind maps a candidate's interconnect and temperature onto the
// Fig 22 power-model design whose voltage/activity recipe it runs.
func nocPowerKind(pt Point) power.NoCKind {
	cold := pt.TempK < float64(phys.T300)
	switch pt.Net {
	case NetSharedBus:
		return power.SharedBus77
	case NetCryoBus, NetCryoBus2Way:
		return power.CryoBus77
	default:
		if cold {
			return power.Mesh77
		}
		return power.Mesh300
	}
}

// evalCores is the evaluated system size (the paper's 64-core target).
const evalCores = 64

// candidateSpec derives the simulation a candidate needs: the core at
// the point's depth/voltage and the design on the shared platform's
// memoized NoC timings, packaged as a sim.LaneSpec so the engine can
// batch candidates through the lockstep runner. The returned CoreSpec
// feeds finishEval's power metrics.
func candidateSpec(pf *platform.Platform, pt Point, prof workload.Profile, cfg sim.Config) (sim.LaneSpec, pipeline.CoreSpec, error) {
	nomOp, err := pf.OpAt(pt.TempK)
	if err != nil {
		return sim.LaneSpec{}, pipeline.CoreSpec{}, fmt.Errorf("dse: point %s: %w", pt, err)
	}
	op, sizing, err := modeOp(pt.Mode, pt.TempK)
	if err != nil {
		return sim.LaneSpec{}, pipeline.CoreSpec{}, err
	}
	core, err := pf.DerivedCore(pt.Depth-pipeline.BaseDepth(), nomOp, op, sizing)
	if err != nil {
		return sim.LaneSpec{}, pipeline.CoreSpec{}, fmt.Errorf("dse: point %s: %w", pt, err)
	}
	kind, err := netKindByName(pt.Net)
	if err != nil {
		return sim.LaneSpec{}, pipeline.CoreSpec{}, err
	}
	var timing = pf.BusTiming(nomOp)
	if kind == sim.Mesh {
		timing = pf.MeshTiming(nomOp, 1)
	}
	memT := pt.TempK
	if pt.StageK > 0 {
		// Multi-stage candidate: the memory hierarchy runs on its own
		// stage's temperature, not the tier's.
		memT = pt.StageK
	}
	d := sim.Design{
		Name:   pt.String(),
		Core:   core,
		Net:    kind,
		NoC:    timing,
		Memory: mem.ForTemp(phys.Kelvin(memT)),
		Cores:  evalCores,
	}
	return sim.LaneSpec{Design: d, Profile: prof, Config: cfg}, core, nil
}

// finishEval attaches the cooling-inclusive power metrics to a
// candidate's simulation result.
func finishEval(pf *platform.Platform, pt Point, core pipeline.CoreSpec, res sim.Result) Eval {
	pw := pf.PowerModel()
	e := Eval{
		FreqGHz:         core.FreqGHz,
		IPC:             res.IPC,
		Performance:     res.Performance,
		CoolingOverhead: pw.Cooling.Overhead(phys.Kelvin(pt.TempK)),
	}
	e.DevicePower = pw.CorePower(core) + nocPowerShare*pw.NoCPower(nocPowerKind(pt))
	e.TotalPower = e.DevicePower * (1 + e.CoolingOverhead)
	if pt.StageK > 0 {
		// Multi-stage candidate: lift the tier's device power through
		// the staged cooling chain (per-stage Carnot overheads + cable
		// heatloads) instead of the flat (1+CO) product, and report the
		// chain's effective overhead. Space.Validate guarantees the
		// temperatures are chain-legal, so the error path is
		// unreachable for validated spaces; if it ever fires the flat
		// lift above stands.
		if _, wall, err := stage.TierWall(pw.Cooling, e.DevicePower*stage.DefaultWattsPerUnit, pt.TempK, pt.StageK); err == nil {
			e.TotalPower = wall / stage.DefaultWattsPerUnit
			e.CoolingOverhead = e.TotalPower/e.DevicePower - 1
		}
	}
	if e.Performance > 0 && e.TotalPower > 0 {
		e.PerfPerWatt = e.Performance / e.TotalPower
		e.Energy = e.TotalPower / e.Performance
	}
	return e
}

// evaluate runs one candidate end to end through the single-run
// engine: candidateSpec → sim.Run → finishEval. Deterministic: the
// simulator seeds from cfg alone, so equal (point, cfg) pairs produce
// bit-equal Evals at any worker count — and bit-equal to the same
// candidate evaluated inside a batch, which drives the identical
// spec through the identical lane code.
func evaluate(ctx context.Context, pf *platform.Platform, pt Point, prof workload.Profile, cfg sim.Config) (Eval, error) {
	sp, core, err := candidateSpec(pf, pt, prof, cfg)
	if err != nil {
		return Eval{}, err
	}
	if ctx != nil {
		sp.Config = sp.Config.WithContext(ctx)
	}
	s, err := sim.New(sp.Design, sp.Profile, sp.Config)
	if err != nil {
		return Eval{}, fmt.Errorf("dse: point %s: %w", pt, err)
	}
	res, err := s.Run()
	if err != nil {
		return Eval{}, fmt.Errorf("dse: point %s: %w", pt, err)
	}
	return finishEval(pf, pt, core, res), nil
}
