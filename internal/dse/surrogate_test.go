package dse

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cryowire/internal/platform"
	"cryowire/internal/surrogate"
)

// gridPrior runs a full grid search over the quick space with a
// journal and returns the journal path plus the grid result.
func gridPrior(t *testing.T, pf *platform.Platform, dir string) (string, *Result) {
	t.Helper()
	jpath := filepath.Join(dir, "grid.jsonl")
	res, err := Run(context.Background(), Config{
		Space:    DefaultSpace(true),
		Strategy: StrategyGrid,
		Sim:      quickSim(),
		Platform: pf,
		Journal:  jpath,
	})
	if err != nil {
		t.Fatal(err)
	}
	return jpath, res
}

// TestScreenVerifiesFrontierWithFewerSims is the tentpole acceptance
// check: screening the quick space against a full-grid prior must
// reach the same Pareto frontier — the 77 K CryoSP+CryoBus headline
// point included — with at least 3x fewer simulated candidates, every
// one of them sim-verified (the screen journal's entries are a
// byte-identical subset of the grid journal's).
func TestScreenVerifiesFrontierWithFewerSims(t *testing.T) {
	pf := platform.New()
	dir := t.TempDir()
	prior, grid := gridPrior(t, pf, dir)

	skippedBefore := surrogate.ReadStats().SimsSkipped
	spath := filepath.Join(dir, "screen.jsonl")
	scr, err := Run(context.Background(), Config{
		Space:    DefaultSpace(true),
		Strategy: StrategyScreen,
		Sim:      quickSim(),
		Platform: pf,
		Priors:   []string{prior},
		Journal:  spath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if scr.Evaluated*3 > grid.Evaluated {
		t.Fatalf("screen simulated %d of %d candidates, want at least 3x fewer", scr.Evaluated, grid.Evaluated)
	}
	if skipped := surrogate.ReadStats().SimsSkipped - skippedBefore; int(skipped) != grid.Evaluated-scr.Evaluated {
		t.Errorf("sims-skipped counter advanced by %d, want %d", skipped, grid.Evaluated-scr.Evaluated)
	}

	// The verified frontier must equal the exhaustive grid's, CryoSP
	// headline point included.
	ga, err := grid.JSON()
	if err != nil {
		t.Fatal(err)
	}
	sa, err := scr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	gf := string(ga[bytes.Index(ga, []byte(`"frontier"`)):])
	sf := string(sa[bytes.Index(sa, []byte(`"frontier"`)):])
	if gf != sf {
		t.Fatalf("screen frontier diverged from grid frontier:\n--- grid ---\n%s\n--- screen ---\n%s", gf, sf)
	}
	found := false
	for _, c := range scr.Frontier {
		p := c.Point
		if p.TempK == 77 && p.Mode == ModeCryoSP && p.Depth == 17 && p.Net == NetCryoBus {
			found = true
			if want := pf.CryoSP().FreqGHz; c.Eval.FreqGHz != want {
				t.Errorf("CryoSP frontier point at %.4f GHz, want exactly %.4f — frontier must be sim-verified, not predicted", c.Eval.FreqGHz, want)
			}
		}
	}
	if !found {
		t.Fatalf("77K CryoSP+CryoBus point missing from screened frontier:\n%s", scr.Render())
	}

	// Every screen journal entry is byte-identical to a grid journal
	// entry: nothing screened made it to disk unverified.
	gridLines := make(map[string]bool)
	graw, err := os.ReadFile(prior)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range bytes.Split(bytes.TrimSpace(graw), []byte("\n"))[1:] {
		gridLines[string(l)] = true
	}
	sraw, err := os.ReadFile(spath)
	if err != nil {
		t.Fatal(err)
	}
	slines := bytes.Split(bytes.TrimSpace(sraw), []byte("\n"))
	if len(slines)-1 != scr.Evaluated {
		t.Fatalf("screen journal has %d entries, want %d", len(slines)-1, scr.Evaluated)
	}
	for _, l := range slines[1:] {
		if !gridLines[string(l)] {
			t.Fatalf("screen journal entry not in the grid journal (prediction leaked to disk?): %s", l)
		}
	}
}

// TestSurrogateStrategiesDeterministic: with equal seed and priors,
// every surrogate strategy reproduces byte-identical reports.
func TestSurrogateStrategiesDeterministic(t *testing.T) {
	pf := platform.New()
	prior, _ := gridPrior(t, pf, t.TempDir())
	for _, name := range []string{StrategySurrogateHill, StrategyEI, StrategyScreen} {
		t.Run(name, func(t *testing.T) {
			run := func() []byte {
				res, err := Run(context.Background(), Config{
					Space:    DefaultSpace(true),
					Strategy: name,
					Budget:   8,
					Seed:     42,
					Sim:      quickSim(),
					Platform: pf,
					Priors:   []string{prior},
				})
				if err != nil {
					t.Fatal(err)
				}
				b, err := res.JSON()
				if err != nil {
					t.Fatal(err)
				}
				return b
			}
			a, b := run(), run()
			if !bytes.Equal(a, b) {
				t.Fatalf("%s not deterministic:\n--- first ---\n%s\n--- second ---\n%s", name, a, b)
			}
		})
	}
}

// TestSurrogateResumeByteIdentical: a killed surrogate search resumed
// from its journal matches the uninterrupted run byte-for-byte — the
// journal key covers the priors and strategy knobs, so replaying the
// strategy over the same priors reproduces the proposal sequence.
func TestSurrogateResumeByteIdentical(t *testing.T) {
	pf := platform.New()
	dir := t.TempDir()
	prior, _ := gridPrior(t, pf, dir)
	base := Config{
		Space:    DefaultSpace(true),
		Strategy: StrategyScreen,
		Seed:     3,
		Sim:      quickSim(),
		Platform: pf,
		Priors:   []string{prior},
	}
	ref, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.JSON()
	if err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(dir, "screen.jsonl")
	part := base
	part.Journal = jpath
	part.Budget = 2 // stand-in for a mid-search kill
	if _, err := Run(context.Background(), part); err != nil {
		t.Fatal(err)
	}
	res := base
	res.Journal = jpath
	res.Resume = true
	got, err := Run(context.Background(), res)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, gb) {
		t.Fatalf("resumed screen run diverged:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", want, gb)
	}

	// Resuming with different priors must refuse: the journal promises
	// to reproduce a run that learned from something else.
	other := filepath.Join(dir, "other.jsonl")
	raw, err := os.ReadFile(prior)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if err := os.WriteFile(other, append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	diff := res
	diff.Priors = []string{other}
	if _, err := Run(context.Background(), diff); err == nil || !strings.Contains(err.Error(), "different strategy configuration") {
		t.Fatalf("strategy-key guard: err = %v", err)
	}
}

// TestSurrogateConfigGuards: priors and the screen margin only make
// sense for the strategies that consume them.
func TestSurrogateConfigGuards(t *testing.T) {
	base := Config{Space: DefaultSpace(true), Sim: quickSim()}
	withPrior := base
	withPrior.Strategy = StrategyGrid
	withPrior.PriorEntries = []JournalEntry{{Index: 0}}
	if _, err := Run(context.Background(), withPrior); err == nil || !strings.Contains(err.Error(), "priors require a surrogate strategy") {
		t.Fatalf("grid+priors: err = %v", err)
	}
	withMargin := base
	withMargin.Strategy = StrategyEI
	withMargin.ScreenMargin = 0.2
	if _, err := Run(context.Background(), withMargin); err == nil || !strings.Contains(err.Error(), "screen margin requires") {
		t.Fatalf("ei+margin: err = %v", err)
	}
	neg := base
	neg.Strategy = StrategyScreen
	neg.ScreenMargin = -0.1
	if _, err := Run(context.Background(), neg); err == nil || !strings.Contains(err.Error(), "non-negative") {
		t.Fatalf("negative margin: err = %v", err)
	}
	missing := base
	missing.Strategy = StrategyScreen
	missing.Priors = []string{filepath.Join(t.TempDir(), "nope.jsonl")}
	if _, err := Run(context.Background(), missing); err == nil || !strings.Contains(err.Error(), "prior journal") {
		t.Fatalf("missing prior: err = %v", err)
	}
}

// TestStrategiesNeverReproposeEvaluated is the dedupe regression test:
// a strategy driven with a history it did not build itself — entries
// seeded by priors, a merged journal, or another strategy — must not
// propose those indexes again.
func TestStrategiesNeverReproposeEvaluated(t *testing.T) {
	s := DefaultSpace(true)
	pre := []int{0, 3, 7, 11, 15}
	hist := make([]HistoryEntry, 0, len(pre))
	for _, i := range pre {
		hist = append(hist, HistoryEntry{
			Index: i,
			Point: s.At(i),
			Eval:  Eval{PerfPerWatt: float64(100 - i)},
		})
	}
	evaluated := make(map[int]bool)
	for _, i := range pre {
		evaluated[i] = true
	}
	for _, name := range []string{StrategyRandom, StrategyHillClimb, StrategySurrogateHill, StrategyEI, StrategyScreen} {
		t.Run(name, func(t *testing.T) {
			st, err := NewStrategy(name, 9)
			if err != nil {
				t.Fatal(err)
			}
			proposed := make(map[int]bool)
			h := append([]HistoryEntry(nil), hist...)
			for rounds := 0; rounds < 2*s.Size(); rounds++ {
				batch := st.Next(s, h, s.Size())
				if len(batch) == 0 {
					break
				}
				for _, i := range batch {
					if evaluated[i] {
						t.Fatalf("%s re-proposed already-evaluated index %d", name, i)
					}
					if proposed[i] {
						t.Fatalf("%s proposed index %d twice in one run", name, i)
					}
					proposed[i] = true
					h = append(h, HistoryEntry{Index: i, Point: s.At(i), Eval: Eval{PerfPerWatt: float64(i)}})
				}
			}
			if len(proposed) == 0 {
				t.Fatalf("%s proposed nothing over a pre-seeded history", name)
			}
		})
	}
}
