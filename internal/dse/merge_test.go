package dse

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cryowire/internal/platform"
	"cryowire/internal/sim"
)

// mergeSim keeps the merge-law runs cheap; byte-identity only needs
// determinism, not converged measurements.
func mergeSim() sim.Config {
	return sim.Config{WarmupCycles: 200, MeasureCycles: 800, Seed: 1}
}

// runHalves evaluates the quick space once whole and once as two
// disjoint range halves, all journaled, on one shared platform cache.
func runHalves(t *testing.T) (space Space, scfg sim.Config, single *Result, singleJournal []byte, a, b []JournalEntry) {
	t.Helper()
	space = DefaultSpace(true)
	scfg = mergeSim()
	pf := platform.New()
	dir := t.TempDir()

	singlePath := filepath.Join(dir, "single.jsonl")
	single, err := Run(context.Background(), Config{
		Space: space, Strategy: StrategyGrid, Sim: scfg, Platform: pf, Journal: singlePath,
	})
	if err != nil {
		t.Fatalf("single run: %v", err)
	}
	singleJournal, err = os.ReadFile(singlePath)
	if err != nil {
		t.Fatal(err)
	}

	half := space.Size() / 2
	for i, r := range []Range{{0, half}, {half, space.Size()}} {
		path := filepath.Join(dir, "half.jsonl")
		os.Remove(path)
		if _, err := Run(context.Background(), Config{
			Space: space, Strategy: StrategyGrid, Sim: scfg, Platform: pf,
			Journal: path, Range: &r,
		}); err != nil {
			t.Fatalf("half %d: %v", i, err)
		}
		entries, err := ReadJournal(path, space, scfg)
		if err != nil {
			t.Fatalf("read half %d: %v", i, err)
		}
		if i == 0 {
			a = entries
		} else {
			b = entries
		}
	}
	return space, scfg, single, singleJournal, a, b
}

// TestJournalMergeLaws proves the entry merge is commutative,
// associative and idempotent, and that merging disjoint journal halves
// rewrites to bytes identical to the single-run journal.
func TestJournalMergeLaws(t *testing.T) {
	space, scfg, _, singleJournal, a, b := runHalves(t)

	ab, err := MergeEntries(a, b)
	if err != nil {
		t.Fatalf("merge(a,b): %v", err)
	}
	ba, err := MergeEntries(b, a)
	if err != nil {
		t.Fatalf("merge(b,a): %v", err)
	}
	if !reflect.DeepEqual(ab, ba) {
		t.Fatal("merge is not commutative: merge(a,b) != merge(b,a)")
	}
	aa, err := MergeEntries(a, a)
	if err != nil {
		t.Fatalf("merge(a,a): %v", err)
	}
	if !reflect.DeepEqual(aa, a) {
		t.Fatal("merge is not idempotent: merge(a,a) != a")
	}
	abab, err := MergeEntries(ab, a, b, ab)
	if err != nil {
		t.Fatalf("merge(ab,a,b,ab): %v", err)
	}
	if !reflect.DeepEqual(abab, ab) {
		t.Fatal("merge is not associative/idempotent over repeated inputs")
	}

	mergedPath := filepath.Join(t.TempDir(), "merged.jsonl")
	if err := WriteJournal(mergedPath, space, scfg, ab); err != nil {
		t.Fatal(err)
	}
	mergedBytes, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mergedBytes, singleJournal) {
		t.Fatalf("merged journal differs from single-run journal:\nmerged:\n%s\nsingle:\n%s", mergedBytes, singleJournal)
	}

	// A conflicting duplicate is a different search, never a silent pick.
	bad := append([]JournalEntry(nil), a...)
	bad[0].Eval.Performance++
	if _, err := MergeEntries(a, bad); err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("conflicting merge error = %v, want conflict", err)
	}
}

// TestFrontierMergeLaws proves frontier(A ∪ B) ==
// frontier(frontier(A) ∪ frontier(B)) plus commutativity and
// idempotence, against the single-run frontier byte-for-byte.
func TestFrontierMergeLaws(t *testing.T) {
	space, _, single, _, a, b := runHalves(t)

	cands := func(entries []JournalEntry) []Candidate {
		out := make([]Candidate, len(entries))
		for i, e := range entries {
			out[i] = Candidate{Index: e.Index, Point: space.At(e.Index), Eval: e.Eval}
		}
		return out
	}
	// MergeFrontiers of one set is that set's frontier.
	fa := MergeFrontiers(nil, cands(a))
	fb := MergeFrontiers(nil, cands(b))

	fab := MergeFrontiers(nil, fa, fb)
	fba := MergeFrontiers(nil, fb, fa)
	if !reflect.DeepEqual(fab, fba) {
		t.Fatal("frontier merge is not commutative")
	}
	if faa := MergeFrontiers(nil, fa, fa); !reflect.DeepEqual(faa, fa) {
		t.Fatal("frontier merge is not idempotent")
	}
	if !reflect.DeepEqual(fab, single.Frontier) {
		t.Fatal("merged half frontiers differ from the single-run frontier")
	}
	got, err := (&Result{Frontier: fab}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&Result{Frontier: single.Frontier}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("merged frontier JSON differs byte-for-byte from the single-run frontier")
	}
}

// TestRangeRun pins range semantics: a grid range evaluates exactly its
// indexes, and the adaptive strategies refuse ranges.
func TestRangeRun(t *testing.T) {
	space := DefaultSpace(true)
	r := Range{Start: 4, End: 12}
	res, err := Run(context.Background(), Config{
		Space: space, Strategy: StrategyGrid, Sim: mergeSim(), Range: &r,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != r.Len() {
		t.Fatalf("Evaluated = %d, want %d", res.Evaluated, r.Len())
	}
	for _, c := range res.Frontier {
		if c.Index < r.Start || c.Index >= r.End {
			t.Fatalf("frontier index %d outside range [%d,%d)", c.Index, r.Start, r.End)
		}
	}
	if _, err := Run(context.Background(), Config{
		Space: space, Strategy: StrategyRandom, Sim: mergeSim(), Range: &r,
	}); err == nil || !strings.Contains(err.Error(), "grid") {
		t.Fatalf("random+range error = %v, want grid-only error", err)
	}
	bad := Range{Start: 8, End: 99}
	if _, err := Run(context.Background(), Config{
		Space: space, Strategy: StrategyGrid, Sim: mergeSim(), Range: &bad,
	}); err == nil {
		t.Fatal("out-of-space range accepted")
	}
}
