package dse

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"cryowire/internal/par"
	"cryowire/internal/platform"
	"cryowire/internal/sim"
)

// Config parameterizes one search.
type Config struct {
	// Space is the design space to search. Validated by Run.
	Space Space
	// Strategy names the search strategy (see Strategies). Empty means
	// the exhaustive grid.
	Strategy string
	// Budget caps the number of evaluated candidates. Zero or negative
	// means the whole space (or the whole Range when one is set).
	Budget int
	// Range, when non-nil, restricts the search to the half-open
	// point-index interval [Start, End). Requires the grid strategy —
	// ranges are how a distributed search is partitioned, and only the
	// exhaustive grid is partitionable by index. The journal key is
	// deliberately range-blind: every range of a space records under the
	// same key, so per-range journals merge into one indistinguishable
	// from a single full-space run's.
	Range *Range
	// Seed drives the seeded strategies; runs with equal (space, config,
	// strategy, seed) produce identical results.
	Seed int64
	// Sim is the per-candidate simulation config (run lengths, sim
	// seed). The context is supplied by Run, not here.
	Sim sim.Config
	// Workers bounds parallel candidate evaluation; 0 means
	// par.DefaultWorkers().
	Workers int
	// CheckpointEvery caps how many candidates the engine accepts from
	// the strategy per batch; the journal (and Progress) checkpoint when
	// a batch lands, so this bounds how much work a killed run loses to
	// the unjournaled tail. 0 means defaultCheckpointEvery (64) —
	// enough lanes to keep the lockstep batch runner occupied. Purely a
	// scheduling knob: like BatchLanes it is excluded from the journal
	// key and can never change result bytes, because history order is
	// proposal order at any batch size.
	CheckpointEvery int
	// BatchLanes is the lane count per lockstep simulation batch
	// (sim.BatchRunner); 0 picks an automatic size from Workers,
	// negative forces single-lane batches. Never part of the journal
	// key: batching is a scheduling choice that cannot change result
	// bytes, so journals written at any lane count replay into any
	// other.
	BatchLanes int
	// Platform supplies the shared derivation cache; nil means
	// platform.Default().
	Platform *platform.Platform
	// Objectives span the Pareto frontier; nil means DefaultObjectives.
	Objectives []Objective
	// Journal, when non-empty, is the path of the JSON-lines checkpoint
	// journal. Evaluations are appended as they complete; with Resume a
	// prior journal for the same search is replayed instead of
	// re-simulated.
	Journal string
	// Resume allows Journal to already exist and be continued.
	Resume bool
	// Priors are paths of prior checkpoint journals (from earlier runs
	// of the same space and sim config) the surrogate strategies learn
	// from before proposing anything. Only the surrogate strategies
	// accept them; the exact strategies ignore nothing — naming priors
	// with one is a config error. Prior-sourced predictions steer
	// proposals only: they never appear in the Result or the journal.
	Priors []string
	// PriorEntries are already-parsed prior evaluations, merged with
	// the Priors files — the in-process route for callers that hold
	// journal entries in memory (the server, tests).
	PriorEntries []JournalEntry
	// ScreenMargin is the screen strategy's Pareto-band width in
	// normalized objective units: predicted points at most this far
	// behind the predicted frontier are simulated, the rest skipped.
	// Zero means DefaultScreenMargin; only the screen strategy accepts
	// a non-zero value.
	ScreenMargin float64
	// Progress, when non-nil, observes the search: it is called from
	// the engine goroutine after every evaluation lands in the history
	// (journal replays included) with the count so far and the run's
	// resolved budget. It must not block for long — the search stalls
	// while it runs — and it never influences the result bytes.
	Progress func(evaluated, budget int)
	// RetryAttempts bounds total evaluation attempts per candidate:
	// transient failures are retried with exponential backoff until the
	// bound. 0 or 1 means a single attempt. Retrying is safe because
	// evaluation is a pure function of (point, sim config) — a retried
	// success is bit-equal to a first-try success.
	RetryAttempts int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt (default 100ms when retries are enabled). The wait is
	// context-aware: cancellation aborts it.
	RetryBackoff time.Duration
	// RetryNotify, when non-nil, observes each failure that is about to
	// be retried (a metrics hook; errors that exhaust the attempt bound
	// surface through Run instead).
	RetryNotify func(error)
}

// Result is the outcome of one search.
type Result struct {
	// Strategy and Seed echo the search parameters.
	Strategy string `json:"strategy"`
	Seed     int64  `json:"seed"`
	// SpaceSize is the total number of candidates in the space.
	SpaceSize int `json:"space_size"`
	// Evaluated is how many candidates the search measured.
	Evaluated int `json:"evaluated"`
	// Objectives names the frontier's axes in order.
	Objectives []string `json:"objectives"`
	// Frontier is the non-dominated set, sorted by point index.
	Frontier []Candidate `json:"frontier"`
}

// Run executes one design-space search: it validates the space, replays
// any resumed journal, drives the strategy until the budget or the
// space is exhausted, evaluates each proposed batch through the
// lockstep simulation engine (sim.BatchRunner) on the shared platform
// cache, and extracts the Pareto frontier. Evaluations are journaled
// (and reported via cfg.Progress) in proposal order when their
// strategy batch lands, so a kill mid-batch re-simulates only that
// batch on resume. A lane that fails inside a batch retries alone
// under the config's retry policy — its batch is never re-run. Cancel
// ctx to stop between evaluations; a journaled run resumed after
// cancellation continues where it stopped and, with the same seed,
// produces byte-identical output to an uninterrupted run — at any
// BatchLanes or Workers setting, since batching never changes result
// bytes.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Space.Validate(); err != nil {
		return nil, err
	}
	if cfg.Strategy == "" {
		cfg.Strategy = StrategyGrid
	}
	strat, err := NewStrategy(cfg.Strategy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Platform == nil {
		cfg.Platform = platform.Default()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = par.DefaultWorkers()
	}
	objs := cfg.Objectives
	if len(objs) == 0 {
		objs = DefaultObjectives()
	}
	// Surrogate wiring: load and key-check the priors, hand them to the
	// strategy, and extend the journal key with the strategy fingerprint
	// so a resume that changed priors or knobs is rejected.
	var stratKey string
	if sa, ok := strat.(surrogateAware); ok {
		priors, err := loadPriors(cfg)
		if err != nil {
			return nil, err
		}
		sa.initSurrogate(priors, cfg.ScreenMargin, objs)
		if stratKey, err = surrogateStrategyKey(cfg, priors); err != nil {
			return nil, err
		}
	} else {
		if len(cfg.Priors) > 0 || len(cfg.PriorEntries) > 0 {
			return nil, fmt.Errorf("dse: priors require a surrogate strategy (%s, %s or %s), got %q",
				StrategySurrogateHill, StrategyEI, StrategyScreen, cfg.Strategy)
		}
		if cfg.ScreenMargin != 0 {
			return nil, fmt.Errorf("dse: a screen margin requires the %q strategy, got %q", StrategyScreen, cfg.Strategy)
		}
	}
	if cfg.ScreenMargin != 0 && cfg.Strategy != StrategyScreen {
		return nil, fmt.Errorf("dse: a screen margin requires the %q strategy, got %q", StrategyScreen, cfg.Strategy)
	}
	if cfg.ScreenMargin < 0 {
		return nil, fmt.Errorf("dse: screen margin must be non-negative, got %g", cfg.ScreenMargin)
	}
	size := cfg.Space.Size()
	budget := cfg.Budget
	if budget <= 0 || budget > size {
		budget = size
	}
	if cfg.Range != nil {
		if err := cfg.Range.Validate(size); err != nil {
			return nil, err
		}
		g, ok := strat.(*gridStrategy)
		if !ok {
			return nil, fmt.Errorf("dse: a point-index range requires the %q strategy (got %q): only the exhaustive grid partitions by index", StrategyGrid, cfg.Strategy)
		}
		g.cursor, g.limit = cfg.Range.Start, cfg.Range.End
		if rl := cfg.Range.Len(); budget > rl {
			budget = rl
		}
	}
	ckpt := cfg.CheckpointEvery
	if ckpt <= 0 {
		ckpt = defaultCheckpointEvery
	}
	var jl *journal
	if cfg.Journal != "" {
		jl, err = openJournal(cfg.Journal, cfg.Space, cfg.Sim, cfg.Resume, stratKey)
		if err != nil {
			return nil, err
		}
		defer jl.close()
	}

	var hist []HistoryEntry
	seen := make(map[int]bool)
	for len(hist) < budget {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Cap each strategy batch at the checkpoint granularity: the
		// journal is written per batch, so smaller batches bound what a
		// kill can lose. Strategies only ever see the capped remaining
		// count, which keeps their proposal sequence — and therefore
		// every result byte — identical at any CheckpointEvery.
		ask := budget - len(hist)
		if ask > ckpt {
			ask = ckpt
		}
		batch := strat.Next(cfg.Space, hist, ask)
		// Drop out-of-range and repeat proposals; repeats are already in
		// the history and must not consume budget again.
		fresh := batch[:0]
		for _, i := range batch {
			if i >= 0 && i < size && !seen[i] {
				seen[i] = true
				fresh = append(fresh, i)
			}
		}
		if len(fresh) == 0 {
			break
		}
		// Evaluate the batch through the lockstep simulation engine;
		// journaled candidates are served from the checkpoint without
		// re-simulating. Results land in index-addressed slots, so
		// history order is proposal order — the order the strategy's
		// determinism contract depends on — not completion order.
		evals := make([]Eval, len(fresh))
		errs := make([]error, len(fresh))
		served := make([]bool, len(fresh))
		// Journal lookups happen serially up front: the cache map must
		// not be read while record() grows it.
		for k, i := range fresh {
			if e, ok := jl.lookup(i); ok {
				evals[k] = e
				served[k] = true
			}
		}
		if err := evaluateFresh(ctx, cfg, fresh, served, evals, errs); err != nil {
			return nil, err
		}
		// Journal and report in proposal order once the batch lands.
		// Checkpoint granularity is one strategy batch: a kill mid-batch
		// re-simulates the in-flight batch on resume (the per-point
		// engine checkpointed each completion; lockstep batching trades
		// that for sweep throughput). Served candidates are already on
		// disk and are not re-appended; journal replay is keyed by
		// index, so the line sequence does not affect resume.
		completed := len(hist)
		for k := range fresh {
			if errs[k] != nil {
				continue
			}
			if !served[k] {
				if err := jl.record(fresh[k], evals[k]); err != nil {
					return nil, err
				}
			}
			completed++
			if cfg.Progress != nil {
				cfg.Progress(completed, budget)
			}
		}
		for k, i := range fresh {
			if errs[k] != nil {
				return nil, errs[k]
			}
			hist = append(hist, HistoryEntry{Index: i, Point: cfg.Space.At(i), Eval: evals[k]})
		}
	}

	cands := make([]Candidate, len(hist))
	for i, h := range hist {
		cands[i] = Candidate{Index: h.Index, Point: h.Point, Eval: h.Eval}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].Index < cands[b].Index })
	res := &Result{
		Strategy:  cfg.Strategy,
		Seed:      cfg.Seed,
		SpaceSize: size,
		Evaluated: len(cands),
		Frontier:  paretoFrontier(cands, objs),
	}
	for _, o := range objs {
		res.Objectives = append(res.Objectives, o.Name)
	}
	return res, nil
}

// JSON renders the result as stable, indented JSON — the bytes the
// resume determinism guarantee is stated over.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render formats the frontier as a text report.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dse: strategy=%s seed=%d evaluated=%d/%d candidates\n",
		r.Strategy, r.Seed, r.Evaluated, r.SpaceSize)
	fmt.Fprintf(&b, "Pareto frontier over (%s): %d points\n", strings.Join(r.Objectives, ", "), len(r.Frontier))
	fmt.Fprintf(&b, "  %-32s %9s %7s %8s %9s %10s %9s\n",
		"design", "freq GHz", "IPC", "perf", "watts", "perf/W", "energy")
	for _, c := range r.Frontier {
		e := c.Eval
		fmt.Fprintf(&b, "  %-32s %9.2f %7.3f %8.2f %9.3f %10.2f %9.5f\n",
			c.Point.String(), e.FreqGHz, e.IPC, e.Performance, e.TotalPower, e.PerfPerWatt, e.Energy)
	}
	return b.String()
}
