package dse

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"cryowire/internal/surrogate"
)

// The surrogate-accelerated strategies: every completed DSE run leaves
// a JSON-lines journal of (point → perf, watts, energy) evaluations,
// and these strategies fit a cheap k-NN/inverse-distance interpolator
// (internal/surrogate) over one or more such journals — plus the
// in-run history — to decide what is worth simulating. Predictions
// steer proposals only; they never enter a Result or a journal line,
// so everything a search reports remains sim-verified.
const (
	// StrategySurrogateHill warm-starts the adaptive hill-climb from
	// the surrogate's predicted optima instead of random points, and
	// restarts from the best predicted unvisited point when stuck.
	StrategySurrogateHill = "surrogate-hillclimb"
	// StrategyEI picks points by expected improvement over the
	// predicted distance to the observed Pareto frontier, trading off
	// predicted gain against model confidence.
	StrategyEI = "ei"
	// StrategyScreen is screen-then-verify: rank the whole space by
	// predicted Pareto proximity, then simulate only the predicted
	// frontier band (plus an uncertainty margin) and stop. Every
	// reported frontier point is sim-verified.
	StrategyScreen = "screen"
)

// IsSurrogateStrategy reports whether the named strategy consumes
// priors — the gate for Config.Priors/PriorEntries/ScreenMargin and
// for the strategy-specific journal key extension.
func IsSurrogateStrategy(name string) bool {
	switch name {
	case StrategySurrogateHill, StrategyEI, StrategyScreen:
		return true
	}
	return false
}

// DefaultScreenMargin is the screen strategy's Pareto-band width when
// Config.ScreenMargin is zero: how far (in normalized objective units)
// a predicted point may sit behind the predicted frontier and still be
// simulated. On the quick space it keeps the verified band at a
// quarter of the grid.
const DefaultScreenMargin = 0.1

// screenConfidenceFloor: a point whose prediction rests on no nearby
// sample is simulated regardless of its predicted proximity — the
// uncertainty half of "predicted Pareto band plus an uncertainty
// margin".
const screenConfidenceFloor = 0.25

// screenBootstrapTarget sizes the deterministic stride sample a
// prior-less screen run simulates first so it has something to fit.
const screenBootstrapTarget = 16

// surrogateK is the neighborhood size of the fitted models.
const surrogateK = 4

// eiBatch bounds proposals per EI refit, keeping the strategy adaptive
// (each batch of evidence reshapes the next ranking).
const eiBatch = 8

// eiBootstrap is the seeded random plant of a prior-less EI run.
const eiBootstrap = 4

// eiExplore weighs the exploration term: a point the model knows
// nothing about scores as if it stood eiExplore normalized units
// beyond the frontier.
const eiExplore = 0.5

// surrogateAware is implemented by strategies that learn from priors;
// the engine calls initSurrogate once, before the first Next.
type surrogateAware interface {
	initSurrogate(priors []JournalEntry, margin float64, objs []Objective)
}

// --- the shared model ------------------------------------------------------

// surrogateModel owns the fitted interpolator shared by the three
// strategies: samples are the union of the prior journal entries and
// the in-run history, coordinates are Space.normCoords, and the target
// vector is (performance, device watts, total watts, energy).
type surrogateModel struct {
	priors []JournalEntry
	objs   []Objective
	model  *surrogate.Model
	fitLen int // len(priors)+len(hist) at the last fit; -1 = never fitted
}

func (sm *surrogateModel) init(priors []JournalEntry, objs []Objective) {
	sm.priors = priors
	sm.objs = objs
	sm.fitLen = -1
	if len(sm.objs) == 0 {
		sm.objs = DefaultObjectives()
	}
}

// fit (re)fits the model over priors + hist, reusing the last fit when
// no new evidence arrived. Returns false when there is nothing to fit.
// Also the lazy-init point: a strategy driven without initSurrogate
// (no priors, default objectives) still works.
func (sm *surrogateModel) fit(s Space, hist []HistoryEntry) bool {
	if len(sm.objs) == 0 {
		sm.objs = DefaultObjectives()
	}
	n := len(sm.priors) + len(hist)
	if n == 0 {
		return false
	}
	if sm.model != nil && sm.fitLen == n {
		return true
	}
	// Union by index, history winning (evaluation is pure, so a shared
	// index carries equal values either way).
	byIndex := make(map[int]Eval, n)
	for _, e := range sm.priors {
		byIndex[e.Index] = e.Eval
	}
	for _, h := range hist {
		byIndex[h.Index] = h.Eval
	}
	idxs := make([]int, 0, len(byIndex))
	for i := range byIndex {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	samples := make([]surrogate.Sample, len(idxs))
	for k, i := range idxs {
		e := byIndex[i]
		samples[k] = surrogate.Sample{
			Coords: s.normCoords(i),
			Values: []float64{e.Performance, e.DevicePower, e.TotalPower, e.Energy},
		}
	}
	m, err := surrogate.Fit(samples, surrogateK)
	if err != nil {
		// Unreachable for journal-sourced samples (finite, key-checked,
		// consistent); fail safe by predicting nothing.
		return false
	}
	sm.model, sm.fitLen = m, n
	return true
}

// predict returns the interpolated Eval at index i plus the model's
// confidence. Only the four fitted metrics (and the derived
// perf-per-watt) are populated; frequency and IPC stay zero, which is
// fine because predictions only ever rank proposals.
func (sm *surrogateModel) predict(s Space, i int) (Eval, float64) {
	vals, conf, err := sm.model.Predict(s.normCoords(i))
	if err != nil {
		return Eval{}, 0
	}
	e := Eval{Performance: vals[0], DevicePower: vals[1], TotalPower: vals[2], Energy: vals[3]}
	if e.Performance > 0 && e.TotalPower > 0 {
		e.PerfPerWatt = e.Performance / e.TotalPower
	}
	return e, conf
}

// observed returns the union of prior and history evals — the
// sim-verified facts the objective normalization and the observed
// frontier are computed over — in ascending index order.
func (sm *surrogateModel) observed(hist []HistoryEntry) []Eval {
	byIndex := make(map[int]Eval, len(sm.priors)+len(hist))
	for _, e := range sm.priors {
		byIndex[e.Index] = e.Eval
	}
	for _, h := range hist {
		byIndex[h.Index] = h.Eval
	}
	idxs := make([]int, 0, len(byIndex))
	for i := range byIndex {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]Eval, len(idxs))
	for k, i := range idxs {
		out[k] = byIndex[i]
	}
	return out
}

// --- objective normalization and Pareto proximity --------------------------

// objNorm rescales objective values onto the unit cube, oriented so
// larger is always better — the shared yardstick of the EI score and
// the screen band.
type objNorm struct {
	objs   []Objective
	lo, hi []float64
}

// newObjNorm fits the normalization over a reference eval set. A
// degenerate axis (all values equal) maps to 0.5 so it neither helps
// nor hurts any point.
func newObjNorm(objs []Objective, ref []Eval) objNorm {
	n := objNorm{objs: objs, lo: make([]float64, len(objs)), hi: make([]float64, len(objs))}
	for j, o := range objs {
		for k, e := range ref {
			v := o.Value(e)
			if !o.Maximize {
				v = -v
			}
			if k == 0 || v < n.lo[j] {
				n.lo[j] = v
			}
			if k == 0 || v > n.hi[j] {
				n.hi[j] = v
			}
		}
	}
	return n
}

// vec maps one eval onto the normalized, maximize-oriented cube.
func (n objNorm) vec(e Eval) []float64 {
	out := make([]float64, len(n.objs))
	for j, o := range n.objs {
		v := o.Value(e)
		if !o.Maximize {
			v = -v
		}
		if n.hi[j] > n.lo[j] {
			out[j] = (v - n.lo[j]) / (n.hi[j] - n.lo[j])
		} else {
			out[j] = 0.5
		}
	}
	return out
}

// nonDominated filters normalized vectors down to the frontier
// (maximize orientation), preserving input order.
func nonDominated(vecs [][]float64) [][]float64 {
	var front [][]float64
	for i, v := range vecs {
		dom := false
		for k, o := range vecs {
			if i != k && vecDominates(o, v) {
				dom = true
				break
			}
		}
		if !dom {
			front = append(front, v)
		}
	}
	return front
}

func vecDominates(a, b []float64) bool {
	strict := false
	for j := range a {
		if a[j] < b[j] {
			return false
		}
		if a[j] > b[j] {
			strict = true
		}
	}
	return strict
}

// paretoProx measures how far a normalized point sits behind a
// frontier: min over frontier members of the worst per-objective
// shortfall. Zero or negative means on or beyond the frontier; the
// screen band is prox <= margin.
func paretoProx(p []float64, front [][]float64) float64 {
	if len(front) == 0 || len(p) == 0 {
		return 0
	}
	best := 0.0
	for k, f := range front {
		worst := f[0] - p[0]
		for j := 1; j < len(f); j++ {
			if d := f[j] - p[j]; d > worst {
				worst = d
			}
		}
		if k == 0 || worst < best {
			best = worst
		}
	}
	return best
}

// --- surrogate-guided hill climb -------------------------------------------

// surrogateHillStrategy is the adaptive hill-climb warm-started by the
// surrogate: the cold-start seeds are the predicted perf-per-watt
// optima instead of random points, and a stuck climb restarts from the
// best predicted unvisited point. With no priors and no history it
// degrades to exactly the seeded random plant of plain hillclimb.
type surrogateHillStrategy struct {
	hillClimbStrategy
	sur surrogateModel
}

func (h *surrogateHillStrategy) Name() string { return StrategySurrogateHill }

func (h *surrogateHillStrategy) initSurrogate(priors []JournalEntry, _ float64, objs []Objective) {
	h.sur.init(priors, objs)
}

// topPredicted ranks unvisited points by predicted perf-per-watt
// (ties toward the lowest index) and proposes the best n.
func (h *surrogateHillStrategy) topPredicted(s Space, n int) []int {
	type scored struct {
		idx   int
		value float64
	}
	var all []scored
	for i := 0; i < s.Size(); i++ {
		if h.visited[i] {
			continue
		}
		e, _ := h.sur.predict(s, i)
		all = append(all, scored{i, e.PerfPerWatt})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].value != all[b].value {
			return all[a].value > all[b].value
		}
		return all[a].idx < all[b].idx
	})
	var batch []int
	for _, c := range all {
		if len(batch) >= n {
			break
		}
		batch = h.propose(batch, c.idx)
	}
	return batch
}

func (h *surrogateHillStrategy) Next(s Space, hist []HistoryEntry, remaining int) []int {
	if remaining <= 0 {
		return nil
	}
	if h.rng == nil {
		h.rng = rand.New(rand.NewSource(h.seed))
		h.visited = make(map[int]bool)
	}
	// Dedupe against history: whatever is already evaluated — however
	// it got there — is never proposed again.
	for _, e := range hist {
		h.visited[e.Index] = true
	}
	// Cold start: warm-start from the predicted optima when a prior
	// gives the model something to say; otherwise plant random seeds
	// exactly like plain hillclimb.
	if len(hist) == 0 && len(h.visited) == 0 {
		if h.sur.fit(s, hist) {
			n := hillClimbSeeds
			if n > remaining {
				n = remaining
			}
			if batch := h.topPredicted(s, n); len(batch) > 0 {
				return batch
			}
		}
		n := hillClimbSeeds
		if n > remaining {
			n = remaining
		}
		if n > s.Size() {
			n = s.Size()
		}
		var batch []int
		for len(batch) < n {
			i, ok := h.randomUnvisited(s.Size())
			if !ok {
				break
			}
			batch = h.propose(batch, i)
		}
		return batch
	}
	// Climb: unvisited neighbors of the best observed point.
	var batch []int
	if b, ok := best(hist); ok {
		for _, nb := range s.Neighbors(b.Index) {
			if len(batch) >= remaining {
				break
			}
			batch = h.propose(batch, nb)
		}
	}
	if len(batch) > 0 {
		sort.Ints(batch)
		return batch
	}
	// Stuck: restart from the best predicted unvisited point — the
	// surrogate's replacement for hillclimb's random restart.
	if h.sur.fit(s, hist) {
		if batch := h.topPredicted(s, 1); len(batch) > 0 {
			return batch
		}
		return nil
	}
	if i, ok := h.randomUnvisited(s.Size()); ok {
		return h.propose(nil, i)
	}
	return nil
}

// --- expected improvement ---------------------------------------------------

// eiStrategy proposes the points with the best expected improvement
// over the predicted Pareto distance: confidence-weighted predicted
// gain beyond the observed frontier, plus an exploration bonus where
// the model is uncertain. Proposals come in small batches so each
// round of simulated evidence refits the model before the next pick.
type eiStrategy struct {
	seed    int64
	rng     *rand.Rand
	visited map[int]bool
	sur     surrogateModel
}

func (e *eiStrategy) Name() string { return StrategyEI }

func (e *eiStrategy) initSurrogate(priors []JournalEntry, _ float64, objs []Objective) {
	e.sur.init(priors, objs)
}

func (e *eiStrategy) Next(s Space, hist []HistoryEntry, remaining int) []int {
	if remaining <= 0 {
		return nil
	}
	if e.rng == nil {
		e.rng = rand.New(rand.NewSource(e.seed))
		e.visited = make(map[int]bool)
	}
	for _, h := range hist {
		e.visited[h.Index] = true
	}
	if !e.sur.fit(s, hist) {
		// No evidence at all: plant a seeded random bootstrap so the
		// next call has a model.
		n := eiBootstrap
		if n > remaining {
			n = remaining
		}
		var batch []int
		for len(batch) < n && len(e.visited) < s.Size() {
			if i := e.rng.Intn(s.Size()); !e.visited[i] {
				e.visited[i] = true
				batch = append(batch, i)
			}
		}
		return batch
	}
	obs := e.sur.observed(hist)
	norm := newObjNorm(e.sur.objs, obs)
	obsVecs := make([][]float64, len(obs))
	for k, ev := range obs {
		obsVecs[k] = norm.vec(ev)
	}
	front := nonDominated(obsVecs)
	type scored struct {
		idx   int
		score float64
	}
	var all []scored
	for i := 0; i < s.Size(); i++ {
		if e.visited[i] {
			continue
		}
		pe, conf := e.sur.predict(s, i)
		prox := paretoProx(norm.vec(pe), front)
		all = append(all, scored{i, conf*(-prox) + (1-conf)*eiExplore})
	}
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].score != all[b].score {
			return all[a].score > all[b].score
		}
		return all[a].idx < all[b].idx
	})
	n := eiBatch
	if n > remaining {
		n = remaining
	}
	var batch []int
	for _, c := range all {
		if len(batch) >= n {
			break
		}
		e.visited[c.idx] = true
		batch = append(batch, c.idx)
	}
	return batch
}

// --- screen-then-verify -----------------------------------------------------

// screenStrategy ranks the entire space by predicted Pareto proximity
// and proposes only the predicted frontier band — everything else is
// skipped, which is where the simulate savings come from. Proposed
// points are simulated like any other candidate, so the reported
// frontier is built purely from verified evaluations; skipped points
// simply never enter the Result. Without priors it first simulates a
// deterministic stride sample of the space to have something to fit.
type screenStrategy struct {
	seed   int64
	margin float64
	sur    surrogateModel

	phase int // screenInit -> screenBoot? -> screenVerify -> done (empty queue)
	queue []int
}

const (
	screenInit = iota
	screenBoot
	screenVerify
)

func (sc *screenStrategy) Name() string { return StrategyScreen }

func (sc *screenStrategy) initSurrogate(priors []JournalEntry, margin float64, objs []Objective) {
	sc.sur.init(priors, objs)
	sc.margin = margin
}

// resolvedMargin is the band width actually used (the default applies
// when the config left it zero).
func (sc *screenStrategy) resolvedMargin() float64 {
	if sc.margin > 0 {
		return sc.margin
	}
	return DefaultScreenMargin
}

// buildPlan computes the verification queue: predict every
// not-yet-evaluated point, take the predicted frontier of the whole
// cloud (evaluated points enter as their exact values), and keep the
// points within the margin of it — plus any point the model has no
// confident opinion about. The rest are recorded as skipped.
func (sc *screenStrategy) buildPlan(s Space, hist []HistoryEntry) {
	evaluated := make(map[int]bool, len(hist))
	for _, h := range hist {
		evaluated[h.Index] = true
	}
	size := s.Size()
	evals := make([]Eval, size)
	confs := make([]float64, size)
	for i := 0; i < size; i++ {
		evals[i], confs[i] = sc.sur.predict(s, i)
	}
	norm := newObjNorm(sc.sur.objs, evals)
	vecs := make([][]float64, size)
	for i := range evals {
		vecs[i] = norm.vec(evals[i])
	}
	front := nonDominated(vecs)
	margin := sc.resolvedMargin()
	skipped := 0
	for i := 0; i < size; i++ {
		if evaluated[i] {
			continue
		}
		if paretoProx(vecs[i], front) <= margin || confs[i] < screenConfidenceFloor {
			sc.queue = append(sc.queue, i)
		} else {
			skipped++
		}
	}
	surrogate.AddSkipped(skipped)
	sc.phase = screenVerify
}

// bootstrapPlan is the prior-less fallback: a deterministic stride
// sample of about screenBootstrapTarget points (always including the
// last index so the sample spans the space).
func (sc *screenStrategy) bootstrapPlan(s Space) {
	size := s.Size()
	stride := size / screenBootstrapTarget
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < size; i += stride {
		sc.queue = append(sc.queue, i)
	}
	if last := size - 1; len(sc.queue) > 0 && sc.queue[len(sc.queue)-1] != last {
		sc.queue = append(sc.queue, last)
	}
	sc.phase = screenBoot
}

func (sc *screenStrategy) Next(s Space, hist []HistoryEntry, remaining int) []int {
	if remaining <= 0 {
		return nil
	}
	if sc.phase == screenInit {
		if sc.sur.fit(s, hist) {
			sc.buildPlan(s, hist)
		} else {
			sc.bootstrapPlan(s)
		}
	}
	if len(sc.queue) == 0 && sc.phase == screenBoot {
		// Bootstrap simulated: now the history is the prior.
		if !sc.sur.fit(s, hist) {
			return nil
		}
		sc.buildPlan(s, hist)
	}
	n := len(sc.queue)
	if n > remaining {
		n = remaining
	}
	if n == 0 {
		return nil
	}
	batch := sc.queue[:n:n]
	sc.queue = sc.queue[n:]
	return batch
}

// --- priors and the strategy journal key ------------------------------------

// loadPriors reads, key-checks and merges the prior journals of a
// surrogate search: every path in cfg.Priors (a named prior that does
// not exist is an error — unlike a resumed journal, it cannot mean "no
// progress yet") plus the in-process cfg.PriorEntries.
func loadPriors(cfg Config) ([]JournalEntry, error) {
	sets := make([][]JournalEntry, 0, len(cfg.Priors)+1)
	if len(cfg.PriorEntries) > 0 {
		sets = append(sets, cfg.PriorEntries)
	}
	for _, path := range cfg.Priors {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("dse: prior journal %s: %w", path, err)
		}
		entries, err := ParseJournal(data, cfg.Space, cfg.Sim)
		if err != nil {
			return nil, fmt.Errorf("dse: prior journal %s: %w", path, err)
		}
		sets = append(sets, entries)
	}
	merged, err := MergeEntries(sets...)
	if err != nil {
		return nil, err
	}
	return merged, nil
}

// surrogateStrategyKey fingerprints everything a surrogate strategy's
// proposal sequence depends on beyond the (space, sim config) pair the
// base journal key covers: the strategy, its seed, the resolved screen
// margin and the merged prior content. It extends — never replaces —
// the journal key, so a resumed surrogate run that changed its priors
// or knobs is rejected instead of silently diverging from the
// uninterrupted run it promises to reproduce. Non-surrogate strategies
// keep an empty key, which keeps grid/random/hillclimb journal headers
// byte-identical to every earlier release (and shard merges working).
func surrogateStrategyKey(cfg Config, priors []JournalEntry) (string, error) {
	margin := 0.0
	if cfg.Strategy == StrategyScreen {
		margin = cfg.ScreenMargin
		if margin == 0 {
			margin = DefaultScreenMargin
		}
	}
	pb, err := json.Marshal(priors) // priors are merged and index-sorted: canonical
	if err != nil {
		return "", err
	}
	psum := sha256.Sum256(pb)
	canon := fmt.Sprintf("strategy=%s|seed=%d|margin=%g|priors=%s",
		cfg.Strategy, cfg.Seed, margin, hex.EncodeToString(psum[:]))
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:]), nil
}

// PriorFingerprint hashes the raw bytes of the named prior journal
// files (a missing file hashes as absent rather than erroring). The
// server folds this into its response-cache key so a prior file that
// changed on disk can never serve a stale cached search.
func PriorFingerprint(paths []string) string {
	h := sha256.New()
	for _, p := range paths {
		h.Write([]byte(p))
		h.Write([]byte{0})
		data, err := os.ReadFile(p)
		if err != nil {
			h.Write([]byte("absent"))
		} else {
			h.Write(data)
		}
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}
