package dse

import (
	"context"
	"fmt"

	"cryowire/internal/par"
	"cryowire/internal/pipeline"
	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

// batchRunFn indirects the lockstep batch execution so tests can
// inject per-lane failures; production always points at
// BatchRunner.RunCtx.
var batchRunFn = func(ctx context.Context, r *sim.BatchRunner, specs []sim.LaneSpec) ([]sim.Result, []error) {
	return r.RunCtx(ctx, specs)
}

// evaluateFresh evaluates the non-served candidates of one strategy
// batch into evals/errs (index-aligned with fresh). The production
// path builds one LaneSpec per candidate and drives them through the
// lockstep BatchRunner; a lane that fails retries alone via
// retryEvalFrom — the failure consumed attempt one, and the rest of
// its batch is never re-run. With a test evaluator installed
// (evalOverride) candidates run per point instead, so the override
// observes every attempt. Both paths produce bit-identical evals.
func evaluateFresh(ctx context.Context, cfg Config, fresh []int, served []bool, evals []Eval, errs []error) error {
	if evalOverride != nil {
		return par.ForCtx(ctx, len(fresh), cfg.Workers, func(k int) {
			if served[k] {
				return
			}
			pt := cfg.Space.At(fresh[k])
			prof, err := cfg.Space.profileByName(pt.Workload)
			if err != nil {
				errs[k] = err
				return
			}
			evals[k], errs[k] = retryEval(ctx, cfg, pt, prof)
		})
	}
	type cand struct {
		k    int
		pt   Point
		prof workload.Profile
		core pipeline.CoreSpec
	}
	var cands []cand
	var specs []sim.LaneSpec
	for k, i := range fresh {
		if served[k] {
			continue
		}
		pt := cfg.Space.At(i)
		prof, err := cfg.Space.profileByName(pt.Workload)
		if err != nil {
			errs[k] = err
			continue
		}
		sp, core, err := candidateSpec(cfg.Platform, pt, prof, cfg.Sim)
		if err != nil {
			// Derivation failed before any simulation — the same failure
			// evaluate() would hit first. It consumed attempt one; the
			// retry policy decides whether to try again.
			evals[k], errs[k] = retryEvalFrom(ctx, cfg, pt, prof, 1, err)
			continue
		}
		cands = append(cands, cand{k: k, pt: pt, prof: prof, core: core})
		specs = append(specs, sp)
	}
	if len(specs) == 0 {
		return nil
	}
	lanes := cfg.BatchLanes
	if lanes < 0 {
		lanes = 1
	}
	runner := &sim.BatchRunner{Lanes: lanes, Workers: cfg.Workers}
	results, lerrs := batchRunFn(ctx, runner, specs)
	for ci, c := range cands {
		if lerr := lerrs[ci]; lerr != nil {
			// Per-lane retry: the failed lane re-runs alone, without its
			// batch. Wrapped with the point so the surfaced error names
			// the candidate the way the per-point engine did.
			wrapped := fmt.Errorf("dse: point %s: %w", c.pt, lerr)
			evals[c.k], errs[c.k] = retryEvalFrom(ctx, cfg, c.pt, c.prof, 1, wrapped)
			continue
		}
		evals[c.k] = finishEval(cfg.Platform, c.pt, c.core, results[ci])
	}
	return nil
}
