package dse

import (
	"context"
	"strings"
	"testing"

	"cryowire/internal/platform"
	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

// quickSim is a short, seeded simulation config for test searches.
func quickSim() sim.Config {
	return sim.Config{WarmupCycles: 400, MeasureCycles: 1600, Seed: 1}
}

func TestSpaceEnumeration(t *testing.T) {
	s := DefaultSpace(false)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 4 * 3 * 4 * 4 * 3
	if got := s.Size(); got != want {
		t.Fatalf("Size() = %d, want %d", got, want)
	}
	// Every index decodes to a distinct point and re-encodes to itself.
	seen := make(map[string]bool, s.Size())
	for i := 0; i < s.Size(); i++ {
		p := s.At(i)
		k := p.String()
		if seen[k] {
			t.Fatalf("duplicate point %s at index %d", k, i)
		}
		seen[k] = true
		if j := s.index(s.coords(i)); j != i {
			t.Fatalf("coords/index roundtrip: %d -> %d", i, j)
		}
	}
	// Axis order: workload varies fastest, temperature slowest.
	if p0, p1 := s.At(0), s.At(1); p0.Workload == p1.Workload {
		t.Errorf("workload should vary fastest: At(0)=%s At(1)=%s", p0, p1)
	}
	if p0, pn := s.At(0), s.At(s.Size()-1); p0.TempK == pn.TempK {
		t.Errorf("temperature should vary slowest: At(0)=%s At(last)=%s", p0, pn)
	}
}

func TestSpaceValidateRejects(t *testing.T) {
	base := DefaultSpace(true)
	cases := []struct {
		name   string
		mutate func(*Space)
		want   string
	}{
		{"empty axis", func(s *Space) { s.TempsK = nil }, "empty axis"},
		{"negative temperature", func(s *Space) { s.TempsK = []float64{-4, 77} }, "unphysical"},
		{"duplicate temperature", func(s *Space) { s.TempsK = []float64{77, 77} }, "duplicate temperature"},
		{"unknown mode", func(s *Space) { s.Modes = []string{"warp"} }, "unknown voltage mode"},
		{"depth out of range", func(s *Space) { s.Depths = []int{13} }, "outside the derivable range"},
		{"unknown net", func(s *Space) { s.Nets = []string{"token-ring"} }, "unknown net"},
		{"bad workload", func(s *Space) { s.Workloads[0].ILP = -1 }, "ILP"},
		{"names out of sync", func(s *Space) { s.WorkloadNames = nil }, "out of sync"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := DefaultSpace(true)
			// Deep-copy the slices the mutation touches.
			s.TempsK = append([]float64(nil), base.TempsK...)
			s.Modes = append([]string(nil), base.Modes...)
			s.Depths = append([]int(nil), base.Depths...)
			s.Nets = append([]string(nil), base.Nets...)
			s.Workloads = append([]workload.Profile(nil), base.Workloads...)
			s.WorkloadNames = append([]string(nil), base.WorkloadNames...)
			tc.mutate(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestNeighbors(t *testing.T) {
	s := DefaultSpace(false)
	// An interior point has two neighbors per axis with >2 values and
	// at most two for the rest; all distinct, all valid, all sorted.
	i := s.Size() / 2
	nb := s.Neighbors(i)
	if len(nb) == 0 {
		t.Fatal("no neighbors")
	}
	prev := -1
	for _, j := range nb {
		if j == i {
			t.Fatalf("Neighbors(%d) contains the point itself", i)
		}
		if j <= prev {
			t.Fatalf("Neighbors(%d) = %v not strictly ascending", i, nb)
		}
		prev = j
		if j < 0 || j >= s.Size() {
			t.Fatalf("neighbor %d outside the space", j)
		}
		// Each neighbor differs from i along exactly one axis by one step.
		ci, cj := s.coords(i), s.coords(j)
		diff := 0
		for ax := 0; ax < 5; ax++ {
			d := ci[ax] - cj[ax]
			if d != 0 {
				diff++
				if d != 1 && d != -1 {
					t.Fatalf("neighbor %d is %d steps away on axis %d", j, d, ax)
				}
			}
		}
		if diff != 1 {
			t.Fatalf("neighbor %d differs on %d axes", j, diff)
		}
	}
	// Corner point: index 0 has exactly one neighbor per axis.
	if got, want := len(s.Neighbors(0)), 5; got != want {
		t.Errorf("corner Neighbors(0) = %d, want %d", got, want)
	}
}

func TestStrategiesProposeWholeSpaceDeterministically(t *testing.T) {
	s := DefaultSpace(true)
	for _, name := range Strategies() {
		t.Run(name, func(t *testing.T) {
			run := func() []int {
				st, err := NewStrategy(name, 42)
				if err != nil {
					t.Fatal(err)
				}
				var order []int
				seen := make(map[int]bool)
				hist := []HistoryEntry{}
				for len(seen) < s.Size() {
					batch := st.Next(s, hist, s.Size()-len(seen))
					if len(batch) == 0 {
						break
					}
					for _, i := range batch {
						if !seen[i] {
							seen[i] = true
							order = append(order, i)
							// Synthesize a deterministic fake eval so the
							// adaptive strategy has a landscape to climb.
							hist = append(hist, HistoryEntry{
								Index: i,
								Point: s.At(i),
								Eval:  Eval{PerfPerWatt: float64((i*7)%13) + float64(i)/100},
							})
						}
					}
				}
				return order
			}
			a, b := run(), run()
			if len(a) != s.Size() {
				t.Fatalf("%s covered %d/%d points", name, len(a), s.Size())
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s not deterministic: replay diverges at step %d (%d vs %d)", name, i, a[i], b[i])
				}
			}
		})
	}
}

// TestCryoSPOnFrontier is the acceptance check: searching the quick
// space at 77 K must surface the paper's headline CryoSP+CryoBus design
// point on the Pareto frontier, at exactly the Table 3 frequency.
func TestCryoSPOnFrontier(t *testing.T) {
	pf := platform.New()
	res, err := Run(context.Background(), Config{
		Space:    DefaultSpace(true),
		Strategy: StrategyGrid,
		Sim:      quickSim(),
		Platform: pf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != res.SpaceSize {
		t.Fatalf("grid evaluated %d/%d", res.Evaluated, res.SpaceSize)
	}
	wantFreq := pf.CryoSP().FreqGHz
	found := false
	for _, c := range res.Frontier {
		p := c.Point
		if p.TempK == 77 && p.Mode == ModeCryoSP && p.Depth == 17 && p.Net == NetCryoBus {
			found = true
			if c.Eval.FreqGHz != wantFreq {
				t.Errorf("CryoSP frontier point at %.4f GHz, want exactly %.4f", c.Eval.FreqGHz, wantFreq)
			}
		}
	}
	if !found {
		t.Fatalf("77K CryoSP+CryoBus point missing from frontier:\n%s", res.Render())
	}
	if txt := res.Render(); !strings.Contains(txt, "Pareto frontier") {
		t.Errorf("Render() missing header:\n%s", txt)
	}
}

func TestRunBudgetAndUnknownStrategy(t *testing.T) {
	if _, err := Run(context.Background(), Config{Space: DefaultSpace(true), Strategy: "simulated-annealing"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	res, err := Run(context.Background(), Config{
		Space:    DefaultSpace(true),
		Strategy: StrategyRandom,
		Budget:   3,
		Seed:     7,
		Sim:      quickSim(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 3 {
		t.Fatalf("budget ignored: evaluated %d", res.Evaluated)
	}
}
