package cacti

import (
	"testing"
	"testing/quick"

	"cryowire/internal/phys"
)

func TestTable4LatenciesDerived(t *testing.T) {
	// Table 4 quotes 4/12/20 cycles @4 GHz for L1/L2/L3 at 300 K; the
	// circuit-derived values must land in the neighbourhood (the
	// published numbers include pipeline margins we don't model).
	m := NewModel()
	cases := []struct {
		g        Geometry
		wantLo   int
		wantHi   int
		paperCyc int
	}{
		{L1D, 3, 6, 4},
		{L2, 9, 14, 12},
		{L3Slice, 13, 22, 20},
	}
	for _, c := range cases {
		cyc, err := m.AccessCycles(c.g, phys.Nominal45, 4.0)
		if err != nil {
			t.Fatal(err)
		}
		if cyc < c.wantLo || cyc > c.wantHi {
			t.Errorf("%s: %d cycles @4GHz, want %d–%d (paper: %d)", c.g.Name, cyc, c.wantLo, c.wantHi, c.paperCyc)
		}
	}
}

func TestCryogenicCacheSpeedup(t *testing.T) {
	// Table 4: the 77 K memory provides "twice faster caches".
	m := NewModel()
	for _, g := range []Geometry{L1D, L2, L3Slice} {
		sp, err := m.Speedup77(g)
		if err != nil {
			t.Fatal(err)
		}
		if sp < 1.8 || sp > 2.9 {
			t.Errorf("%s 77K speedup = %v, want ≈2×", g.Name, sp)
		}
	}
}

func TestAccessBreakdownComponentsPositive(t *testing.T) {
	m := NewModel()
	b, err := m.Access(L2, phys.Nominal45)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"decoder": b.DecoderNS, "wordline": b.WordlineNS, "bitline": b.BitlineNS,
		"sense": b.SenseNS, "htree": b.HTreeNS,
	} {
		if v <= 0 {
			t.Errorf("%s component = %v, want > 0", name, v)
		}
	}
	sum := b.DecoderNS + b.WordlineNS + b.BitlineNS + b.SenseNS + b.HTreeNS
	if sum != b.TotalNS {
		t.Errorf("components sum %v != total %v", sum, b.TotalNS)
	}
}

func TestLargerCachesAreSlower(t *testing.T) {
	m := NewModel()
	prev := 0.0
	for _, g := range []Geometry{L1D, L2, L3Slice} {
		b, err := m.Access(g, phys.Nominal45)
		if err != nil {
			t.Fatal(err)
		}
		if b.TotalNS <= prev {
			t.Errorf("%s (%v ns) not slower than the smaller cache (%v ns)", g.Name, b.TotalNS, prev)
		}
		prev = b.TotalNS
	}
}

func TestBankingReducesLatency(t *testing.T) {
	m := NewModel()
	mono := Geometry{Name: "mono", CapacityKB: 1024, Assoc: 16, LineBytes: 64, Banks: 1}
	banked := Geometry{Name: "banked", CapacityKB: 1024, Assoc: 16, LineBytes: 64, Banks: 8}
	bm, err := m.Access(mono, phys.Nominal45)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := m.Access(banked, phys.Nominal45)
	if err != nil {
		t.Fatal(err)
	}
	if bb.TotalNS > bm.TotalNS {
		t.Errorf("banking made the cache slower: %v vs %v ns", bb.TotalNS, bm.TotalNS)
	}
}

func TestCoolingSpeedsEveryGeometry(t *testing.T) {
	m := NewModel()
	f := func(capRaw uint8) bool {
		capKB := 16 << (capRaw % 7) // 16..1024 KB
		g := Geometry{Name: "q", CapacityKB: capKB, Assoc: 8, LineBytes: 64, Banks: 1}
		warm, err1 := m.Access(g, phys.Nominal45)
		cold, err2 := m.Access(g, Op77Memory())
		return err1 == nil && err2 == nil && cold.TotalNS < warm.TotalNS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	m := NewModel()
	bad := []Geometry{
		{Name: "a", CapacityKB: 0, Assoc: 8, LineBytes: 64, Banks: 1},
		{Name: "b", CapacityKB: 32, Assoc: 0, LineBytes: 64, Banks: 1},
		{Name: "c", CapacityKB: 32, Assoc: 8, LineBytes: 0, Banks: 1},
		{Name: "d", CapacityKB: 32, Assoc: 8, LineBytes: 64, Banks: 0},
	}
	for _, g := range bad {
		if _, err := m.Access(g, phys.Nominal45); err == nil {
			t.Errorf("Access(%s) should fail validation", g.Name)
		}
	}
	if _, err := m.Access(L1D, phys.OperatingPoint{T: -1, Vdd: 1, Vth: 0.4}); err == nil {
		t.Error("invalid operating point should be rejected")
	}
}

func TestSenseSwingShrinksWithCooling(t *testing.T) {
	m := NewModel()
	if m.senseSwing(phys.T77) >= m.senseSwing(phys.T300) {
		t.Error("sense swing should shrink at 77K (CryoCache margin effect)")
	}
	if m.senseSwing(400) != m.BitlineSwing {
		t.Error("swing should clamp at the room-temperature value above 300K")
	}
}
