// Package cacti is a compact CACTI-style SRAM timing model: given a
// cache geometry it derives the access time from its circuit
// components (decoder, wordline, bitline swing, sense amplifier,
// output mux and the H-tree wiring into the mats) using the same wire
// and MOSFET physics as the rest of the repository. The paper uses
// CACTI-NUCA for cache latencies and wire links (§3.1.3, §5.1); here
// the model's job is to show that the Table 4 latencies — and their
// ≈2× improvement at 77 K — follow from the physics instead of being
// quoted.
package cacti

import (
	"fmt"
	"math"

	"cryowire/internal/phys"
	"cryowire/internal/wire"
)

// Geometry describes one SRAM cache.
type Geometry struct {
	Name       string
	CapacityKB int
	Assoc      int
	LineBytes  int
	// Banks splits the array; each bank is accessed independently.
	Banks int
}

// Validate checks the geometry.
func (g Geometry) Validate() error {
	switch {
	case g.CapacityKB <= 0:
		return fmt.Errorf("cacti: non-positive capacity for %s", g.Name)
	case g.Assoc <= 0:
		return fmt.Errorf("cacti: non-positive associativity for %s", g.Name)
	case g.LineBytes <= 0:
		return fmt.Errorf("cacti: non-positive line size for %s", g.Name)
	case g.Banks <= 0:
		return fmt.Errorf("cacti: non-positive bank count for %s", g.Name)
	}
	return nil
}

// Standard cache geometries of the evaluation platform (Table 4).
var (
	// L1D is the 32 KB 8-way private first-level cache.
	L1D = Geometry{Name: "L1D", CapacityKB: 32, Assoc: 8, LineBytes: 64, Banks: 1}
	// L2 is the 256 KB 8-way private second-level cache.
	L2 = Geometry{Name: "L2", CapacityKB: 256, Assoc: 8, LineBytes: 64, Banks: 2}
	// L3Slice is one core's 1 MB shared-L3 slice.
	L3Slice = Geometry{Name: "L3 slice", CapacityKB: 1024, Assoc: 16, LineBytes: 64, Banks: 4}
)

// Model evaluates access times at operating points.
type Model struct {
	MOSFET *phys.MOSFET
	// cell geometry of the 45 nm-class SRAM array
	CellHeightUM float64 // 6T cell height, µm
	CellWidthUM  float64 // 6T cell width, µm
	// BitlineSwing is the fraction of a full swing the sense amp needs.
	BitlineSwing float64
}

// NewModel returns the calibrated 45 nm SRAM model.
func NewModel() *Model {
	return &Model{
		MOSFET:       phys.DefaultMOSFET(),
		CellHeightUM: 1.0,
		CellWidthUM:  1.25,
		BitlineSwing: 0.12,
	}
}

// Breakdown is the component decomposition of one access.
type Breakdown struct {
	DecoderNS  float64
	WordlineNS float64
	BitlineNS  float64
	SenseNS    float64
	HTreeNS    float64 // bank-internal request/response routing
	TotalNS    float64
}

// subarray returns the rows/cols of one mat after banking; CACTI-style
// partitioning: small (latency-critical) caches use short mats, large
// caches amortize decoding over wider/taller mats and pay in H-tree.
func (m *Model) subarray(g Geometry) (rows, cols int) {
	bits := g.CapacityKB * 1024 * 8 / g.Banks
	switch {
	case g.CapacityKB <= 64:
		cols, rows = 256, 256
	default:
		cols, rows = 512, 512
	}
	if rows*cols > bits {
		rows = bits / cols
		if rows < 64 {
			rows = 64
		}
	}
	return rows, cols
}

// senseSwing returns the required bitline swing at temperature t: the
// sense margin shrinks with thermal noise, one of the effects CryoCache
// exploits for its 2× cryogenic cache speed-up.
func (m *Model) senseSwing(t phys.Kelvin) float64 {
	frac := 0.35 + 0.65*float64(t)/300
	if frac > 1 {
		frac = 1
	}
	return m.BitlineSwing * frac
}

// matCount returns how many mats a bank folds into.
func (m *Model) matCount(g Geometry) int {
	bits := g.CapacityKB * 1024 * 8 / g.Banks
	rows, cols := m.subarray(g)
	n := bits / (rows * cols)
	if n < 1 {
		n = 1
	}
	return n
}

// Access returns the access-time breakdown at the operating point.
func (m *Model) Access(g Geometry, op phys.OperatingPoint) (Breakdown, error) {
	if err := g.Validate(); err != nil {
		return Breakdown{}, err
	}
	if err := op.Valid(); err != nil {
		return Breakdown{}, err
	}
	rows, cols := m.subarray(g)
	drv := wire.DefaultDriver()
	fo4 := drv.FO4(op, m.MOSFET)

	var b Breakdown
	// Decoder: log4(rows) stages of FO4-class gates plus predecode.
	b.DecoderNS = (math.Ceil(math.Log(float64(rows))/math.Log(4)) + 1) * fo4 * 1e9
	// Wordline: a local wire across the mat width driven by the row
	// driver.
	wlLenMM := float64(cols) * m.CellWidthUM / 1000
	wl := wire.Line{Spec: wire.Local, LengthMM: wlLenMM, Driver: drv, DriverSize: 8}
	b.WordlineNS = wl.ElmoreDelay(op, m.MOSFET) * 1e9
	// Bitline: the cell discharges the bitline capacitance through its
	// small access transistor until the sense swing is reached; delay ≈
	// swing × (C_bl · V) / I_cell. C_bl from the local-wire capacitance
	// over the mat height.
	blLenMM := float64(rows) * m.CellHeightUM / 1000
	cbl := wire.Local.CapPerMM * blLenMM
	icell := 25e-6 * m.MOSFET.OnCurrentFactor(op) // A, minimum-size cell
	b.BitlineNS = m.senseSwing(op.T) * cbl * float64(op.Vdd) / icell * 1e9
	// Sense amp + output path: a few gate delays.
	b.SenseNS = 2 * fo4 * 1e9
	// H-tree into the selected mat and back: semi-global wiring across
	// half the bank's mats each way.
	mats := m.matCount(g)
	htreeLenMM := math.Sqrt(float64(mats)) * float64(cols) * m.CellWidthUM / 1000
	ht := wire.Line{Spec: wire.SemiGlobal, LengthMM: htreeLenMM, Driver: drv, DriverSize: 16}
	b.HTreeNS = 2 * ht.ElmoreDelay(op, m.MOSFET) * 1e9
	b.TotalNS = b.DecoderNS + b.WordlineNS + b.BitlineNS + b.SenseNS + b.HTreeNS
	return b, nil
}

// AccessCycles returns the access time in cycles at the given clock.
func (m *Model) AccessCycles(g Geometry, op phys.OperatingPoint, freqGHz float64) (int, error) {
	b, err := m.Access(g, op)
	if err != nil {
		return 0, err
	}
	c := int(math.Ceil(b.TotalNS * freqGHz))
	if c < 1 {
		c = 1
	}
	return c, nil
}

// Op77Memory is the voltage-scaled point of the 77 K memory domain
// (Table 4: the LLC/NoC domain runs at 0.55 V / 0.225 V).
func Op77Memory() phys.OperatingPoint {
	return phys.OperatingPoint{T: phys.T77, Vdd: 0.55, Vth: 0.225}
}

// Speedup77 returns access-time(300 K, nominal) / access-time(77 K,
// scaled) — the quantity behind Table 4's "twice faster caches".
func (m *Model) Speedup77(g Geometry) (float64, error) {
	ref, err := m.Access(g, phys.Nominal45)
	if err != nil {
		return 0, err
	}
	cold, err := m.Access(g, Op77Memory())
	if err != nil {
		return 0, err
	}
	return ref.TotalNS / cold.TotalNS, nil
}
