package mem

import (
	"math"
	"testing"

	"cryowire/internal/phys"
	"cryowire/internal/wire"
)

func TestTable4MemorySpecs(t *testing.T) {
	m300 := Mem300()
	m77 := Mem77()
	// Table 4 latencies at the 4 GHz reference clock.
	if m300.L1.LatencyCycles != 4 || m300.L2.LatencyCycles != 12 || m300.L3.LatencyCycles != 20 {
		t.Errorf("300K cache latencies wrong: %+v", m300)
	}
	if m77.L1.LatencyCycles != 2 || m77.L2.LatencyCycles != 6 || m77.L3.LatencyCycles != 10 {
		t.Errorf("77K cache latencies wrong: %+v", m77)
	}
	// §6.1.1: 77 K memory = 2× faster caches, 3.8× faster DRAM.
	for _, pair := range [][2]int{
		{m300.L1.LatencyCycles, m77.L1.LatencyCycles},
		{m300.L2.LatencyCycles, m77.L2.LatencyCycles},
		{m300.L3.LatencyCycles, m77.L3.LatencyCycles},
	} {
		if pair[0] != 2*pair[1] {
			t.Errorf("77K cache not 2× faster: %d vs %d", pair[0], pair[1])
		}
	}
	dramRatio := m300.DRAMLatencyNS / m77.DRAMLatencyNS
	if math.Abs(dramRatio-3.81) > 0.05 {
		t.Errorf("DRAM speedup = %v, want ≈3.8", dramRatio)
	}
}

func TestLatencyNS(t *testing.T) {
	c := CacheSpec{LatencyCycles: 20}
	if got := c.LatencyNS(); got != 5.0 {
		t.Errorf("20 cycles @4GHz = %v ns, want 5", got)
	}
}

func TestForTemp(t *testing.T) {
	if h := ForTemp(phys.T300); h.Name != "300K memory" {
		t.Errorf("ForTemp(300K) = %s", h.Name)
	}
	for _, temp := range []phys.Kelvin{phys.T77, phys.T100, phys.T135} {
		if h := ForTemp(temp); h.Name != "77K memory" {
			t.Errorf("ForTemp(%vK) = %s, want 77K memory", temp, h.Name)
		}
	}
}

func TestDefaultNUCAGeometry(t *testing.T) {
	n := DefaultNUCA()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.GridSide() != 8 {
		t.Errorf("grid side = %d, want 8", n.GridSide())
	}
	if p := n.TilePitchMM(); p != 2.0 {
		t.Errorf("tile pitch = %v mm, want 2 (the paper's NoC hop)", p)
	}
	if s := n.DieSideMM(); s != 16.0 {
		t.Errorf("die side = %v mm, want 16", s)
	}
	// §3.2.2: the CryoBus wire-link length is 6 mm.
	if seg := n.HTreeSegmentMM(); seg != 6.0 {
		t.Errorf("H-tree segment = %v mm, want 6", seg)
	}
	// §5.2.1: 12-hop max distance on the H-tree vs 30 on the serpentine.
	if h := n.HTreeMaxHops(); h != 12 {
		t.Errorf("H-tree max hops = %d, want 12", h)
	}
	if h := n.SerpentineMaxHops(); h != 30 {
		t.Errorf("serpentine max hops = %d, want 30", h)
	}
}

func TestNUCAScaling(t *testing.T) {
	// 256-core hybrid system: four 64-tile clusters — each cluster keeps
	// the 64-tile geometry; a flat 256-tile layout has doubled spans.
	n := NUCALayout{Banks: 256, TileAreaMM2: 4.0}
	if n.GridSide() != 16 {
		t.Errorf("256-bank grid side = %d, want 16", n.GridSide())
	}
	if h := n.HTreeMaxHops(); h != 24 {
		t.Errorf("256-tile flat H-tree max hops = %d, want 24", h)
	}
	small := NUCALayout{Banks: 1, TileAreaMM2: 4.0}
	if h := small.SerpentineMaxHops(); h < 1 {
		t.Errorf("degenerate serpentine hops = %d, want clamped ≥ 1", h)
	}
}

func TestNUCAValidate(t *testing.T) {
	bad := []NUCALayout{{Banks: 0, TileAreaMM2: 4}, {Banks: 64, TileAreaMM2: 0}}
	for _, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", n)
		}
	}
}

func TestLinkLatency(t *testing.T) {
	m := phys.DefaultMOSFET()
	n300 := LinkLatencyNS(6.0, phys.Nominal45, m)
	n77 := LinkLatencyNS(6.0, wire.At77(), m)
	if n300 <= 0 || n77 <= 0 {
		t.Fatalf("non-positive link latencies: %v %v", n300, n77)
	}
	ratio := n300 / n77
	if math.Abs(ratio-3.05)/3.05 > 0.02 {
		t.Errorf("6mm link speedup = %v, want 3.05 (Fig 10)", ratio)
	}
}
