// Package mem provides the memory-side timing models: the 300 K and
// 77 K cache/DRAM hierarchies of Table 4 and a CACTI-NUCA-style layout
// model that derives wire-link lengths for the NoC (§3.1.3). The 77 K
// hierarchy reflects the prior cryogenic memory work the paper builds
// on (CryoCache [43], CLL-DRAM [37]): twice-faster caches and
// 3.8×-faster DRAM.
package mem

import (
	"fmt"
	"math"

	"cryowire/internal/phys"
	"cryowire/internal/wire"
)

// CacheSpec is one cache level's timing at the reference 4 GHz clock.
type CacheSpec struct {
	Name          string
	SizeKB        int
	LatencyCycles int // at the 4 GHz reference clock of Table 4
}

// LatencyNS converts the reference-clock latency to nanoseconds.
func (c CacheSpec) LatencyNS() float64 {
	const refGHz = 4.0
	return float64(c.LatencyCycles) / refGHz
}

// Hierarchy is a full memory hierarchy (Table 4, memory specification).
type Hierarchy struct {
	Name          string
	Temp          phys.Kelvin
	L1, L2, L3    CacheSpec
	DRAMLatencyNS float64 // random access latency
}

// Mem300 returns the 300 K hierarchy: i7-6700 caches + DDR4-2400.
func Mem300() Hierarchy {
	return Hierarchy{
		Name: "300K memory", Temp: phys.T300,
		L1:            CacheSpec{Name: "L1", SizeKB: 32, LatencyCycles: 4},
		L2:            CacheSpec{Name: "L2", SizeKB: 256, LatencyCycles: 12},
		L3:            CacheSpec{Name: "L3/core", SizeKB: 1024, LatencyCycles: 20},
		DRAMLatencyNS: 60.32,
	}
}

// Mem77 returns the 77 K hierarchy: cryogenic SRAM caches (2× faster)
// and CLL-DRAM (3.8× faster random access).
func Mem77() Hierarchy {
	return Hierarchy{
		Name: "77K memory", Temp: phys.T77,
		L1:            CacheSpec{Name: "L1", SizeKB: 32, LatencyCycles: 2},
		L2:            CacheSpec{Name: "L2", SizeKB: 256, LatencyCycles: 6},
		L3:            CacheSpec{Name: "L3/core", SizeKB: 1024, LatencyCycles: 10},
		DRAMLatencyNS: 15.84,
	}
}

// ForTemp returns the hierarchy matching a design temperature: 300 K
// designs use Mem300, cryogenic designs the 77 K-optimized memory.
func ForTemp(t phys.Kelvin) Hierarchy {
	if t < phys.T300 {
		return Mem77()
	}
	return Mem300()
}

// NUCALayout is the CACTI-NUCA-style physical layout of the shared L3:
// n banks (one per core tile) arranged in a near-square grid. It
// derives the geometric quantities the NoC model needs: tile pitch,
// die side, and the wire-link segment lengths of each topology.
type NUCALayout struct {
	Banks       int
	TileAreaMM2 float64 // core slice + 1 MB L3 bank
}

// DefaultNUCA returns the 64-tile layout of the paper's target system:
// 2 mm tile pitch (the paper's 2 mm NoC hop) on a 16 mm die side.
func DefaultNUCA() NUCALayout {
	return NUCALayout{Banks: 64, TileAreaMM2: 4.0}
}

// GridSide returns the tile-grid dimension (√banks, rounded up).
func (n NUCALayout) GridSide() int {
	return int(math.Ceil(math.Sqrt(float64(n.Banks))))
}

// TilePitchMM returns the center-to-center tile spacing.
func (n NUCALayout) TilePitchMM() float64 {
	return math.Sqrt(n.TileAreaMM2)
}

// DieSideMM returns the edge length of the tile array.
func (n NUCALayout) DieSideMM() float64 {
	return float64(n.GridSide()) * n.TilePitchMM()
}

// HTreeSegmentMM returns the length of one contiguous H-tree bus
// segment in the CryoBus layout: the tree spans quadrant hubs with
// segments of a quarter die plus a hub offset — 6 mm on the 64-tile
// die, the link length the wire-link model is validated at (Fig 10).
func (n NUCALayout) HTreeSegmentMM() float64 {
	return n.DieSideMM() * 3 / 8
}

// HTreeMaxHops returns the maximum core-to-core distance on the H-tree
// bus in 2 mm hops: four segments (leaf→hub→root→hub→leaf) — 12 hops on
// the 64-tile die versus 30 for the serpentine bus (§5.2.1).
func (n NUCALayout) HTreeMaxHops() int {
	segHops := int(math.Round(n.HTreeSegmentMM() / 2.0))
	return 4 * segHops
}

// SerpentineMaxHops returns the maximum core-to-core distance of the
// scaled conventional bidirectional bus: cores attach in dual-ported
// pairs along a serpentine spine, so the span is banks/2 − 2 taps — 30
// hops for 64 cores, matching §5.2.1.
func (n NUCALayout) SerpentineMaxHops() int {
	h := n.Banks/2 - 2
	if h < 1 {
		h = 1
	}
	return h
}

// LinkLatencyNS returns the latency of a wire link of the given length
// at an operating point, via the validated wire-link model.
func LinkLatencyNS(lengthMM float64, op phys.OperatingPoint, m *phys.MOSFET) float64 {
	lk := wire.Link{HopMM: lengthMM, Driver: wire.DefaultDriver(), LatchFraction: 0.051}
	return lk.HopDelay(op, m) * 1e9
}

// Validate sanity-checks the layout.
func (n NUCALayout) Validate() error {
	if n.Banks < 1 {
		return fmt.Errorf("mem: NUCA layout needs ≥1 bank, have %d", n.Banks)
	}
	if n.TileAreaMM2 <= 0 {
		return fmt.Errorf("mem: non-positive tile area %v", n.TileAreaMM2)
	}
	return nil
}
