package core

import (
	"testing"

	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

func TestDeriveCryoSP(t *testing.T) {
	c := New()
	r := c.DeriveCryoSP()
	if r.Baseline.FreqGHz != 4.0 {
		t.Errorf("baseline frequency = %v, want 4", r.Baseline.FreqGHz)
	}
	// Headline claims: 96% over 300 K baseline, 28% over CHP-core.
	if r.FreqGain300K < 1.90 || r.FreqGain300K > 2.02 {
		t.Errorf("CryoSP/300K frequency gain = %v, want ≈1.96", r.FreqGain300K)
	}
	if r.FreqGainCHP < 1.20 || r.FreqGainCHP > 1.35 {
		t.Errorf("CryoSP/CHP frequency gain = %v, want ≈1.285", r.FreqGainCHP)
	}
	if len(r.Superpipe.SplitStages) != 3 {
		t.Errorf("superpipeline split %v, want 3 stages", r.Superpipe.SplitStages)
	}
}

func TestDesignCryoBus(t *testing.T) {
	c := New()
	r := c.DesignCryoBus()
	if r.BroadcastCycles != 1 {
		t.Errorf("CryoBus broadcast = %v cycles, want the 1-cycle broadcast", r.BroadcastCycles)
	}
	if r.MaxHops != 12 || r.SerpentineHops != 30 {
		t.Errorf("hop spans %d/%d, want 12/30", r.MaxHops, r.SerpentineHops)
	}
	if r.ZeroLoadCycles <= 0 || r.ZeroLoadCycles > 10 {
		t.Errorf("CryoBus zero-load = %v cycles, want a handful", r.ZeroLoadCycles)
	}
}

func TestEvaluate(t *testing.T) {
	c := New()
	designs := []sim.Design{
		c.Factory.CHPMesh(),
		c.Factory.CryoSPCryoBus(),
	}
	var profiles []workload.Profile
	for _, n := range []string{"streamcluster", "vips"} {
		p, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	cfg := sim.Config{WarmupCycles: 1500, MeasureCycles: 6000, Seed: 1}
	ev, err := c.Evaluate(designs, profiles, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Perf) != 2 || len(ev.Perf[0]) != 2 {
		t.Fatalf("evaluation shape wrong: %+v", ev)
	}
	if ev.MeanSpeedup[0] != 1.0 {
		t.Errorf("reference mean speedup = %v, want 1", ev.MeanSpeedup[0])
	}
	if ev.MeanSpeedup[1] <= 1.2 {
		t.Errorf("CryoSP+CryoBus mean speedup = %v, want a clear win on this subset", ev.MeanSpeedup[1])
	}
	// Bad reference index rejected.
	if _, err := c.Evaluate(designs, profiles, 5, cfg); err == nil {
		t.Error("out-of-range reference should error")
	}
}

func TestSortedNames(t *testing.T) {
	names := SortedNames(workload.Parsec())
	if len(names) != 13 {
		t.Fatalf("got %d names", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("names not sorted")
		}
	}
}
