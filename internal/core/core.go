// Package core composes the CryoWire system: it derives the paper's
// two proposed microarchitectures (CryoSP, the frontend-superpipelined
// 77 K core, and CryoBus, the H-tree snooping bus) from the device
// models, assembles the five evaluation designs of Table 4, and runs
// the full-system comparison of §6.
package core

import (
	"fmt"
	"math"
	"sort"

	"cryowire/internal/noc"
	"cryowire/internal/par"
	"cryowire/internal/phys"
	"cryowire/internal/pipeline"
	"cryowire/internal/platform"
	"cryowire/internal/power"
	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

// CryoWire is the top-level model suite. All its models are views onto
// one shared Platform, so derivations memoize across the whole suite.
type CryoWire struct {
	Platform *platform.Platform
	MOSFET   *phys.MOSFET
	Pipeline *pipeline.Model
	Power    *power.Model
	Factory  *sim.Factory
}

// New builds the model suite on the process-wide default platform.
func New() *CryoWire { return NewWith(platform.Default()) }

// NewWith builds the model suite on an explicit platform.
func NewWith(p *platform.Platform) *CryoWire {
	return &CryoWire{
		Platform: p,
		MOSFET:   p.MOSFET(),
		Pipeline: p.PipelineModel(),
		Power:    p.PowerModel(),
		Factory:  sim.NewFactoryWith(p),
	}
}

// CryoSPReport documents the CryoSP derivation (§4.4–§4.5).
type CryoSPReport struct {
	Baseline     pipeline.CoreSpec
	Superpipe    pipeline.SuperpipelineResult
	CryoSP       pipeline.CoreSpec
	CHPCore      pipeline.CoreSpec
	FreqGain300K float64 // CryoSP vs 300 K baseline (paper: 1.96×)
	FreqGainCHP  float64 // CryoSP vs CHP-core (paper: 1.285×)
}

// DeriveCryoSP runs the full §4 flow: analyze the 77 K critical paths,
// superpipeline the frontend, apply the CryoCore sizing and the Vdd/Vth
// scaling, and report the resulting clocks.
func (c *CryoWire) DeriveCryoSP() CryoSPReport {
	r := CryoSPReport{
		Baseline:  c.Platform.Baseline300(),
		Superpipe: c.Pipeline.Superpipeline(pipeline.BOOM(), pipeline.At77()),
		CryoSP:    c.Platform.CryoSP(),
		CHPCore:   c.Platform.CHPCore(),
	}
	r.FreqGain300K = r.CryoSP.FreqGHz / r.Baseline.FreqGHz
	r.FreqGainCHP = r.CryoSP.FreqGHz / r.CHPCore.FreqGHz
	return r
}

// CryoBusReport documents the CryoBus design point (§5.2).
type CryoBusReport struct {
	Bus *noc.Bus
	// BroadcastCycles is the snoop latency (paper: 1 cycle at 77 K).
	BroadcastCycles float64
	// MaxHops is the H-tree span (12) vs the serpentine baseline (30).
	MaxHops, SerpentineHops int
	// ZeroLoadCycles is the full request→grant→broadcast latency.
	ZeroLoadCycles float64
}

// DesignCryoBus instantiates the 77 K CryoBus for the 64-core system
// and reports its headline latencies.
func (c *CryoWire) DesignCryoBus() CryoBusReport {
	t := c.Platform.BusTiming(noc.Op77())
	bus := noc.NewCryoBus(64, t)
	_, _, _, bc := bus.Breakdown()
	return CryoBusReport{
		Bus:             bus,
		BroadcastCycles: bc,
		MaxHops:         noc.NewHTree(64).BroadcastHops(),
		SerpentineHops:  noc.NewSerpentine(64).BroadcastHops(),
		ZeroLoadCycles:  bus.ZeroLoadLatency(),
	}
}

// EvalResult is one (design, workload) outcome with the normalized
// speed-up relative to the reference design.
type EvalResult struct {
	sim.Result
	Speedup float64 // vs the reference design on the same workload
}

// Evaluation is the full Fig 23-style comparison.
type Evaluation struct {
	Workloads []string
	Designs   []string
	// Perf[w][d] is absolute performance (instructions/ns).
	Perf [][]float64
	// MeanSpeedup[d] is the geometric-mean speed-up of design d over
	// the reference design (index RefIndex).
	MeanSpeedup []float64
	RefIndex    int
}

// Evaluate runs every design × workload pair. ref selects the
// normalization design index (the paper normalizes Fig 23 to
// CHP-core(77K, Mesh), index 1). With cfg.Workers > 1 the grid fans
// out over a bounded worker pool; every cell seeds its own simulator
// from cfg.Seed and lands by index, so the evaluation is identical at
// any worker count.
func (c *CryoWire) Evaluate(designs []sim.Design, profiles []workload.Profile, ref int, cfg sim.Config) (Evaluation, error) {
	return c.EvaluateWith(nil, designs, profiles, ref, cfg)
}

// EvaluateWith is Evaluate with a pluggable simulation runner: run
// receives the whole design × workload grid as LaneSpecs (row-major,
// wi*len(designs)+di) and returns index-aligned results and per-spec
// errors. The experiment layer passes its batched, dedup-aware runner
// here; nil falls back to the per-cell engine. Both paths produce
// byte-identical evaluations — each cell is a pure function of its
// spec.
func (c *CryoWire) EvaluateWith(run func([]sim.LaneSpec) ([]sim.Result, []error), designs []sim.Design, profiles []workload.Profile, ref int, cfg sim.Config) (Evaluation, error) {
	if ref < 0 || ref >= len(designs) {
		return Evaluation{}, fmt.Errorf("core: reference index %d out of range", ref)
	}
	ev := Evaluation{RefIndex: ref}
	for _, d := range designs {
		ev.Designs = append(ev.Designs, d.Name)
	}
	for _, p := range profiles {
		ev.Workloads = append(ev.Workloads, p.Name)
	}
	nd, nw := len(designs), len(profiles)
	ev.Perf = make([][]float64, nw)
	for wi := range ev.Perf {
		ev.Perf[wi] = make([]float64, nd)
	}
	errs := make([]error, nw*nd)
	if run != nil {
		specs := make([]sim.LaneSpec, nw*nd)
		for i := range specs {
			specs[i] = sim.LaneSpec{Design: designs[i%nd], Profile: profiles[i/nd], Config: cfg}
		}
		results, rerrs := run(specs)
		for i := range specs {
			if rerrs[i] != nil {
				errs[i] = rerrs[i]
				continue
			}
			ev.Perf[i/nd][i%nd] = results[i].Performance
		}
	} else {
		// The grid honors the config's context twice over: ForCtx stops
		// handing out cells once it is done, and each in-flight simulation
		// aborts between cycles (sim.Config carries the same context).
		if err := par.ForCtx(cfg.Context(), nw*nd, cfg.Workers, func(i int) {
			wi, di := i/nd, i%nd
			s, err := sim.New(designs[di], profiles[wi], cfg)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := s.Run()
			if err != nil {
				errs[i] = err
				return
			}
			ev.Perf[wi][di] = res.Performance
		}); err != nil {
			return Evaluation{}, fmt.Errorf("core: evaluation canceled: %w", err)
		}
	}
	// Report the first error in grid order — the same one the serial
	// loop would have stopped on.
	for _, err := range errs {
		if err != nil {
			return Evaluation{}, err
		}
	}
	geo := make([]float64, nd)
	for di := range designs {
		prod := 1.0
		for wi := range ev.Workloads {
			prod *= ev.Perf[wi][di] / ev.Perf[wi][ev.RefIndex]
		}
		geo[di] = math.Pow(prod, 1/float64(len(ev.Workloads)))
	}
	ev.MeanSpeedup = geo
	return ev, nil
}

// SortedNames returns profile names in deterministic order.
func SortedNames(ps []workload.Profile) []string {
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}
