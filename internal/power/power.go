// Package power estimates device and total (cooling-inclusive) power
// for cores and NoCs — the McPAT/Orion-2.0 substitute (§6.1.2). All
// values are normalized: core power to the 300 K baseline core, NoC
// power to the 300 K Mesh. Absolute watts are irrelevant to every
// claim the paper makes; ratios with and without the 9.65× cooling
// overhead are what Table 3, Fig 22 and Fig 27 report.
package power

import (
	"cryowire/internal/phys"
	"cryowire/internal/pipeline"
)

// Model bundles the device models used for power estimation.
type Model struct {
	MOSFET  *phys.MOSFET
	Cooling phys.CoolingModel
}

// NewModel returns the default calibrated power model.
func NewModel() *Model {
	return &Model{MOSFET: phys.DefaultMOSFET(), Cooling: phys.DefaultCooling()}
}

// Core power decomposition at the 300 K baseline operating point:
// dynamic switching dominates a busy high-Vth 45 nm core.
const (
	coreDynFraction    = 0.95
	coreStaticFraction = 0.05
)

// coreCapacitance returns the effective switched capacitance of a core
// relative to the 8-wide Skylake-sized baseline. Width sets the number
// of active datapaths; the ROB stands in for the sizes of all the
// scaled structures (they shrink together in the CryoCore recipe).
func coreCapacitance(c pipeline.CoreSpec) float64 {
	return (float64(c.Width) / 8.0) * (float64(c.ROB) / 224.0)
}

// CorePower returns the device power of a core relative to the 300 K
// baseline core: C_eff·V²·f dynamic plus leakage static.
func (m *Model) CorePower(c pipeline.CoreSpec) float64 {
	ref := phys.Nominal45
	vr := float64(c.Op.Vdd) / float64(ref.Vdd)
	fr := c.FreqGHz / 4.0
	dyn := coreDynFraction * coreCapacitance(c) * vr * vr * fr
	stat := coreStaticFraction * coreCapacitance(c) * vr * m.MOSFET.LeakageFactor(c.Op)
	return dyn + stat
}

// CoreTotalPower includes the cryocooler burden (Eq. 2) — the "Total
// power" row of Table 3, normalized to the 300 K baseline total.
func (m *Model) CoreTotalPower(c pipeline.CoreSpec) float64 {
	ref := 1.0 * (1 + m.Cooling.Overhead(phys.T300)) // = 1
	return m.CorePower(c) * (1 + m.Cooling.Overhead(c.Op.T)) / ref
}

// --- NoC power (Orion-lite) ------------------------------------------------

// NoCKind identifies the Fig 22 designs.
type NoCKind int

// Fig 22 design list.
const (
	Mesh300 NoCKind = iota
	Mesh77
	SharedBus77
	CryoBus77
)

// String implements fmt.Stringer.
func (k NoCKind) String() string {
	switch k {
	case Mesh300:
		return "300K Mesh"
	case Mesh77:
		return "77K Mesh"
	case SharedBus77:
		return "77K Shared bus"
	case CryoBus77:
		return "CryoBus"
	default:
		return "NoC(?)"
	}
}

// NoC power decomposition at the 300 K mesh reference point: a
// lightly-loaded router network is leakage-dominated ("the
// 300K-dominant static power is almost eliminated at 77K", §5.2.3).
const (
	nocStaticFraction  = 0.84
	nocDynamicFraction = 0.16
)

// nocVoltage returns each design's supply (Table 4).
func nocVoltage(k NoCKind) phys.OperatingPoint {
	switch k {
	case Mesh300:
		return phys.OperatingPoint{T: phys.T300, Vdd: 1.0, Vth: 0.468}
	case Mesh77:
		return phys.OperatingPoint{T: phys.T77, Vdd: 0.55, Vth: 0.225}
	case SharedBus77, CryoBus77:
		return phys.OperatingPoint{T: phys.T77, Vdd: 0.55, Vth: 0.225}
	default:
		panic("power: unknown NoC kind")
	}
}

// nocFrequencyFactor is each design's clock relative to the 300 K mesh.
func nocFrequencyFactor(k NoCKind) float64 {
	switch k {
	case Mesh77:
		return 1.36 // 5.44 GHz (Table 4)
	default:
		return 1.0 // 4 GHz
	}
}

// activityFactor captures how much wire length a transfer toggles,
// relative to the 300 K mesh carrying the same traffic. Buses drive
// long wires every transaction; CryoBus's dynamic link connection only
// activates the source→destination path for directed transfers and
// drops the router overhead entirely.
func activityFactor(k NoCKind) float64 {
	switch k {
	case Mesh300, Mesh77:
		return 1.0
	case SharedBus77:
		// Full 30-hop broadcast for every transfer, but no router
		// crossbars/buffers to toggle.
		return 0.95
	case CryoBus77:
		// 12-hop snoop broadcasts plus ~4-hop directed data transfers,
		// no routers.
		return 0.66
	default:
		return 1.0
	}
}

// NoCPower returns the device power of a NoC design relative to the
// 300 K mesh device power.
func (m *Model) NoCPower(k NoCKind) float64 {
	op := nocVoltage(k)
	ref := nocVoltage(Mesh300)
	vr := float64(op.Vdd) / float64(ref.Vdd)
	dyn := nocDynamicFraction * activityFactor(k) * vr * vr * nocFrequencyFactor(k)
	// Leakage relative to the 300 K mesh's leakage at its own point.
	leakRel := m.MOSFET.LeakageFactor(op) / m.MOSFET.LeakageFactor(ref)
	stat := nocStaticFraction * vr * leakRel
	return dyn + stat
}

// NoCTotalPower includes cooling — the Fig 22 quantity, normalized to
// the 300 K mesh total.
func (m *Model) NoCTotalPower(k NoCKind) float64 {
	return m.NoCPower(k) * (1 + m.Cooling.Overhead(nocVoltage(k).T))
}

// --- temperature sweep (Fig 27) --------------------------------------------

// SweepPoint is one temperature of the Fig 27 study.
type SweepPoint struct {
	T Kelvin
	// FreqGHz and Vdd follow the paper's linear interpolation between
	// the 300 K baseline and the 77 K CryoSP endpoints.
	FreqGHz float64
	Vdd     phys.Volts
	// CoolingOverhead is CO(T).
	CoolingOverhead float64
	// RelPerformance approximates performance by clock (the §7.4 sweep
	// assumes frequency-proportional performance between endpoints;
	// the full-system experiment refines this with simulation).
	RelPerformance float64
	// RelPower is total power (device + cooling) relative to 300 K.
	RelPower float64
	// PerfPerPower is the Fig 27(a) metric.
	PerfPerPower float64
}

// Kelvin aliases phys.Kelvin for the exported sweep type.
type Kelvin = phys.Kelvin

// TemperatureSweep computes the Fig 27 curves between 300 K and 77 K.
// Frequency, voltage and performance interpolate linearly with
// temperature (the paper's §7.4 assumption); cooling overhead follows
// the 30 %-of-Carnot model. Unphysical temperatures are rejected.
func (m *Model) TemperatureSweep(temps []Kelvin) ([]SweepPoint, error) {
	const (
		f300, f77 = 4.0, 7.84
		v300, v77 = 1.25, 0.64
	)
	for _, t := range temps {
		if err := phys.ValidTemperature(t); err != nil {
			return nil, err
		}
	}
	var out []SweepPoint
	for _, t := range temps {
		frac := float64(300-t) / float64(300-77)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		p := SweepPoint{
			T:               t,
			FreqGHz:         f300 + frac*(f77-f300),
			Vdd:             phys.Volts(v300 + frac*(v77-v300)),
			CoolingOverhead: m.Cooling.Overhead(t),
		}
		p.RelPerformance = p.FreqGHz / f300
		vr := float64(p.Vdd) / v300
		device := vr * vr * (p.FreqGHz / f300)
		p.RelPower = device * (1 + p.CoolingOverhead)
		p.PerfPerPower = p.RelPerformance / p.RelPower
		out = append(out, p)
	}
	return out, nil
}
