package power

import (
	"math"
	"testing"

	"cryowire/internal/phys"
	"cryowire/internal/pipeline"
)

func models() (*Model, *pipeline.Model) {
	return NewModel(), pipeline.NewModel(phys.DefaultMOSFET())
}

func TestTable3CorePowerColumn(t *testing.T) {
	m, pm := models()
	base := m.CorePower(pipeline.Baseline300(pm))
	if math.Abs(base-1) > 0.01 {
		t.Fatalf("baseline core power = %v, want 1 (normalization)", base)
	}
	// 77K Superpipeline: same machine at 1.6× clock ⇒ ≈1.61×
	// (leakage vanishes at 77 K).
	sp := m.CorePower(pipeline.Superpipeline77(pm))
	if sp < 1.45 || sp > 1.75 {
		t.Errorf("77K Superpipeline core power = %v, want ≈1.61 (Table 3)", sp)
	}
	// +CryoCore halves width and structures: ≈0.36.
	cc := m.CorePower(pipeline.SuperpipelineCryoCore77(pm))
	if cc < 0.28 || cc > 0.44 {
		t.Errorf("+CryoCore core power = %v, want ≈0.3575 (Table 3)", cc)
	}
	// CryoSP after Vdd/Vth scaling: ≈0.09–0.12 — and its cooled total
	// lands near the 300 K baseline's total (the paper's iso-power
	// design point).
	sp2 := m.CorePower(pipeline.CryoSP(pm))
	if sp2 < 0.07 || sp2 > 0.13 {
		t.Errorf("CryoSP core power = %v, want ≈0.093 (Table 3)", sp2)
	}
	total := m.CoreTotalPower(pipeline.CryoSP(pm))
	if total < 0.75 || total > 1.35 {
		t.Errorf("CryoSP total power = %v, want ≈1.0 (iso-power vs 300K baseline)", total)
	}
}

func TestTable3TotalPowerRatios(t *testing.T) {
	m, pm := models()
	// Total power = (1+CO)·device at 77 K: the Superpipeline column's
	// huge 17× total is the whole motivation for the CryoCore sizing +
	// voltage scaling steps.
	sp := m.CoreTotalPower(pipeline.Superpipeline77(pm))
	if sp < 14 || sp > 20 {
		t.Errorf("77K Superpipeline total power = %v, want ≈17.15 (Table 3)", sp)
	}
	cc := m.CoreTotalPower(pipeline.SuperpipelineCryoCore77(pm))
	if cc < 3.0 || cc > 4.7 {
		t.Errorf("+CryoCore total power = %v, want ≈3.73 (Table 3)", cc)
	}
	chp := m.CoreTotalPower(pipeline.CHPCore(pm))
	if chp < 0.8 || chp > 1.8 {
		t.Errorf("CHP-core total power = %v, want ≈1.0 (Table 3)", chp)
	}
}

func TestFig22NoCPower(t *testing.T) {
	m := NewModel()
	ref := m.NoCTotalPower(Mesh300)
	if math.Abs(ref-1) > 0.01 {
		t.Fatalf("300K mesh total = %v, want 1 (normalization)", ref)
	}
	mesh77 := m.NoCTotalPower(Mesh77)
	sbus := m.NoCTotalPower(SharedBus77)
	cryo := m.NoCTotalPower(CryoBus77)
	// Fig 22 anchors: CryoBus 57.2% below 300K Mesh, 40.5% below 77K
	// Mesh, 30.7% below 77K Shared bus.
	if cryo > 0.55 || cryo < 0.30 {
		t.Errorf("CryoBus total power = %v, want ≈0.43 of 300K Mesh", cryo)
	}
	if !(cryo < sbus && sbus < mesh77 && mesh77 < 1) {
		t.Errorf("power ordering wrong: CryoBus %v < SharedBus %v < 77K Mesh %v < 1 expected", cryo, sbus, mesh77)
	}
	// 77K Mesh ≈ 0.72 of 300K Mesh.
	if mesh77 < 0.55 || mesh77 > 0.9 {
		t.Errorf("77K Mesh total power = %v, want ≈0.72", mesh77)
	}
}

func TestNoCStaticEliminatedAt77K(t *testing.T) {
	// §5.2.3: the 300K-dominant static power is almost eliminated at
	// 77 K — the device-power split must reflect it.
	m := NewModel()
	dev300 := m.NoCPower(Mesh300)
	dev77 := m.NoCPower(Mesh77)
	if dev77 > dev300*0.25 {
		t.Errorf("77K mesh device power = %v of 300K — static should have collapsed", dev77/dev300)
	}
}

func TestFig27SweetSpot(t *testing.T) {
	m := NewModel()
	temps := []Kelvin{300, 250, 200, 150, 125, 100, 90, 77}
	pts, err := m.TemperatureSweep(temps)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(temps) {
		t.Fatalf("sweep returned %d points", len(pts))
	}
	if _, err := m.TemperatureSweep([]Kelvin{300, -4}); err == nil {
		t.Error("unphysical temperature accepted")
	}
	// Performance rises monotonically with cooling.
	for i := 1; i < len(pts); i++ {
		if pts[i].RelPerformance < pts[i-1].RelPerformance {
			t.Errorf("performance fell while cooling to %vK", pts[i].T)
		}
	}
	// §7.4: 100 K beats 77 K on perf/power (cooling overhead explodes
	// faster than performance grows).
	var p77, p100 float64
	for _, p := range pts {
		if p.T == 77 {
			p77 = p.PerfPerPower
		}
		if p.T == 100 {
			p100 = p.PerfPerPower
		}
	}
	if p100 <= p77 {
		t.Errorf("perf/power at 100K (%v) should beat 77K (%v) — the Fig 27 sweet spot", p100, p77)
	}
	// Cooling overhead at 77 K matches the Stinger data (9.65).
	last := pts[len(pts)-1]
	if math.Abs(last.CoolingOverhead-9.65) > 0.1 {
		t.Errorf("CO(77K) = %v, want 9.65", last.CoolingOverhead)
	}
}

func TestSweepClampsOutsideRange(t *testing.T) {
	m := NewModel()
	pts, err := m.TemperatureSweep([]Kelvin{350, 60})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].FreqGHz != 4.0 {
		t.Errorf("above 300K frequency should clamp to 4.0, got %v", pts[0].FreqGHz)
	}
	if pts[1].FreqGHz != 7.84 {
		t.Errorf("below 77K frequency should clamp to 7.84, got %v", pts[1].FreqGHz)
	}
}

func TestNoCKindString(t *testing.T) {
	for k, want := range map[NoCKind]string{Mesh300: "300K Mesh", Mesh77: "77K Mesh", SharedBus77: "77K Shared bus", CryoBus77: "CryoBus"} {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", int(k), k.String(), want)
		}
	}
}
