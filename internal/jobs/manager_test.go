package jobs

import (
	"bytes"
	"context"
	"errors"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cryowire/internal/dse"
	"cryowire/internal/platform"
)

func quietOpts() Options {
	return Options{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
}

// referenceBytes runs the same search synchronously, with no journal
// and no interference, and returns the result document the async path
// must reproduce byte for byte.
func referenceBytes(t *testing.T, sp Spec) []byte {
	t.Helper()
	cfg, err := sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Platform = platform.Default()
	res, err := dse.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

func waitStatus(t *testing.T, m *Manager, id string, want Status) State {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, st, _, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == want {
			return st
		}
		if st.Status.Terminal() {
			t.Fatalf("job %s landed on %s (error %q), want %s", id, st.Status, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for job %s to reach %s", id, want)
	return State{}
}

// TestSubmitRunsToCompletion: the async path produces the exact bytes
// of a synchronous run.
func TestSubmitRunsToCompletion(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jobs")
	m, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)
	defer m.Drain(context.Background())

	sp := testSpec(4)
	st, err := m.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitStatus(t, m, st.ID, StatusDone)
	if fin.Evaluated != 4 {
		t.Fatalf("evaluated = %d, want 4", fin.Evaluated)
	}
	got, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceBytes(t, sp); !bytes.Equal(got, want) {
		t.Fatalf("async result differs from synchronous run:\n got: %s\nwant: %s", got, want)
	}
	stats := m.Snapshot()
	if stats.Submitted != 1 || stats.Completed != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestDrainCheckpointsAndResume is the graceful-drain contract: drain
// must checkpoint an in-flight job (interrupted + journal intact), not
// abandon it, and a fresh manager on the same directory must resume it
// to a result byte-identical to an uninterrupted run.
func TestDrainCheckpointsAndResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jobs")
	m, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Gate the engine: journal two evaluations, then hold mid-run until
	// drain cancels the job context, returning exactly what the real
	// engine returns when a drain interrupts it.
	reached := make(chan struct{})
	var once sync.Once
	m.run = func(jctx context.Context, cfg dse.Config) (*dse.Result, error) {
		c := cfg
		c.Budget = 2
		if _, err := dse.Run(jctx, c); err != nil {
			return nil, err
		}
		once.Do(func() { close(reached) })
		<-jctx.Done()
		return nil, jctx.Err()
	}
	m.Start(ctx)

	sp := testSpec(8)
	st, err := m.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	<-reached
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Checkpointed, not abandoned: durable state says interrupted and
	// the journal holds the finished evaluations.
	onDisk, err := m.store.Load(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State.Status != StatusInterrupted {
		t.Fatalf("state after drain = %s, want interrupted", onDisk.State.Status)
	}
	journal, err := os.ReadFile(filepath.Join(dir, st.ID, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(journal, []byte("\n")); lines < 3 { // header + >=2 evals
		t.Fatalf("journal has %d lines after drain, want >= 3", lines)
	}

	// A fresh manager resumes it to the exact uninterrupted bytes.
	m2, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	m2.Start(ctx)
	defer m2.Drain(context.Background())
	fin := waitStatus(t, m2, st.ID, StatusDone)
	if fin.Evaluated != 8 {
		t.Fatalf("resumed evaluated = %d, want 8", fin.Evaluated)
	}
	got, err := m2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceBytes(t, sp); !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from uninterrupted run:\n got: %s\nwant: %s", got, want)
	}
	if m2.Snapshot().Resumed != 1 {
		t.Fatalf("resumed counter = %d, want 1", m2.Snapshot().Resumed)
	}
}

// TestCrashedRunningJobRecovered: a job left in StatusRunning by a
// dead process is normalized to interrupted on open and runs to
// completion after Start.
func TestCrashedRunningJobRecovered(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jobs")
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sp := testSpec(4)
	job, err := s.Create(sp)
	if err != nil {
		t.Fatal(err)
	}
	job.State.Status = StatusRunning
	if _, err := s.SaveState(job.State); err != nil {
		t.Fatal(err)
	}

	m, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	_, st, _, err := m.Get(job.State.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusInterrupted {
		t.Fatalf("crashed job normalized to %s, want interrupted", st.Status)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)
	defer m.Drain(context.Background())
	waitStatus(t, m, job.State.ID, StatusDone)
	got, err := m.Result(job.State.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceBytes(t, sp); !bytes.Equal(got, want) {
		t.Fatalf("recovered result differs:\n got: %s\nwant: %s", got, want)
	}
}

// TestCancelRunning: canceling mid-run lands on canceled (not
// interrupted), keeps the journal, and the terminal job can be
// deleted.
func TestCancelRunning(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jobs")
	m, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	reached := make(chan struct{})
	var once sync.Once
	m.run = func(jctx context.Context, cfg dse.Config) (*dse.Result, error) {
		c := cfg
		c.Budget = 1
		if _, err := dse.Run(jctx, c); err != nil {
			return nil, err
		}
		once.Do(func() { close(reached) })
		<-jctx.Done()
		return nil, jctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)
	defer m.Drain(context.Background())

	st, err := m.Submit(testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	<-reached
	if _, changed, err := m.Cancel(st.ID); err != nil || !changed {
		t.Fatalf("Cancel = changed=%v err=%v", changed, err)
	}
	fin := waitStatus(t, m, st.ID, StatusCanceled)
	if fin.Error != "" {
		t.Fatalf("canceled job carries error %q", fin.Error)
	}
	if _, err := os.Stat(filepath.Join(dir, st.ID, journalFile)); err != nil {
		t.Fatalf("journal gone after cancel: %v", err)
	}
	// Cancel on a terminal job is a no-op.
	if _, changed, err := m.Cancel(st.ID); err != nil || changed {
		t.Fatalf("second Cancel = changed=%v err=%v", changed, err)
	}
	if err := m.Delete(st.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := m.Get(st.ID); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Get after Delete = %v", err)
	}
}

// TestCancelPending: with one runner slot occupied, a queued job can be
// canceled durably before it ever runs; the slot-holder completes.
func TestCancelPending(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jobs")
	m, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	running := make(chan struct{})
	var once sync.Once
	m.run = func(jctx context.Context, cfg dse.Config) (*dse.Result, error) {
		once.Do(func() { close(running) })
		select {
		case <-hold:
		case <-jctx.Done():
		}
		return dse.Run(jctx, cfg)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)
	defer m.Drain(context.Background())

	a, err := m.Submit(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	<-running
	b, err := m.Submit(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, changed, err := m.Cancel(b.ID); err != nil || !changed {
		t.Fatalf("Cancel pending = changed=%v err=%v", changed, err)
	}
	onDisk, err := m.store.Load(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State.Status != StatusCanceled {
		t.Fatalf("pending cancel not durable: disk says %s", onDisk.State.Status)
	}
	close(hold)
	waitStatus(t, m, a.ID, StatusDone)
	// The canceled job never ran: no journal was created.
	if _, err := os.Stat(filepath.Join(dir, b.ID, journalFile)); !os.IsNotExist(err) {
		t.Fatalf("canceled-before-run job has a journal (stat err=%v)", err)
	}
}

// TestSubmitValidation: bad specs are rejected before any disk state,
// and a draining manager refuses new work.
func TestSubmitValidation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jobs")
	m, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	bad := testSpec(2)
	bad.Workloads = []string{"no-such-workload"}
	if _, err := m.Submit(bad); err == nil {
		t.Fatal("unknown workload accepted")
	}
	bad = testSpec(2)
	bad.Strategy = "simulated-annealing"
	if _, err := m.Submit(bad); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if jobs, _, _ := m.store.List(); len(jobs) != 0 {
		t.Fatalf("rejected submissions left %d jobs on disk", len(jobs))
	}

	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(testSpec(2)); err == nil {
		t.Fatal("draining manager accepted a submission")
	}
}

// TestSubscribeSignals: watchers are poked on progress and completion.
func TestSubscribeSignals(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jobs")
	m, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)
	defer m.Drain(context.Background())

	st, err := m.Submit(testSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub, err := m.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	var lastSeq uint64
	deadline := time.After(30 * time.Second)
	for {
		select {
		case <-ch:
		case <-deadline:
			t.Fatal("no completion signal")
		}
		_, cur, seq, err := m.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		// Signals coalesce, so a wakeup may find a seq we already saw;
		// it must never run backwards.
		if seq < lastSeq {
			t.Fatalf("sequence ran backwards: %d -> %d", lastSeq, seq)
		}
		lastSeq = seq
		if cur.Status == StatusDone {
			if lastSeq == 0 {
				t.Fatal("no sequence bumps observed")
			}
			return
		}
		if cur.Status.Terminal() {
			t.Fatalf("job landed on %s", cur.Status)
		}
	}
}
