package jobs

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cryowire/internal/dse"
	"cryowire/internal/platform"
	"cryowire/internal/shard"
)

// Options tunes the manager. The zero value runs one job at a time
// with three evaluation attempts per point.
type Options struct {
	// MaxConcurrent bounds jobs running simultaneously (default 1 —
	// each job already fans its evaluations out over the CPUs).
	MaxConcurrent int
	// RetryAttempts / RetryBackoff are the per-point transient-error
	// retry policy threaded into every job's engine config (defaults 3
	// attempts, 100ms first backoff).
	RetryAttempts int
	RetryBackoff  time.Duration
	// Platform supplies the shared derivation cache; nil means
	// platform.Default().
	Platform *platform.Platform
	// Logger receives job lifecycle lines; nil uses slog.Default.
	Logger *slog.Logger
	// OnRetry observes every retried evaluation failure (metrics hook).
	OnRetry func(error)
}

// Manager owns the store and drives jobs to completion: Submit
// enqueues, a bounded set of runner goroutines executes, Drain
// checkpoints, and Open's recovery scan resumes whatever a crash or
// drain left behind. All public methods are safe for concurrent use.
type Manager struct {
	store *Store
	opts  Options
	log   *slog.Logger

	// bootID distinguishes this process incarnation in SSE event ids:
	// a Last-Event-ID from a previous incarnation is treated as stale
	// (sequence counters restart with the process).
	bootID string

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	sem    chan struct{}

	mu       sync.Mutex
	jobs     map[string]*tracked
	draining bool
	drainCh  chan struct{}

	// run indirects the engine entry point so tests can interpose on
	// timing; production always points at dse.Run. runSharded is the
	// same indirection for shard fan-out jobs (production: shard.Run).
	run        func(ctx context.Context, cfg dse.Config) (*dse.Result, error)
	runSharded func(ctx context.Context, cfg dse.Config, opt shard.Options) (*dse.Result, error)

	// Counters for /metrics.
	submitted, completed, failed, canceled, resumed, retries atomic.Uint64
}

// tracked is the in-memory view of one job.
type tracked struct {
	spec  Spec
	state State
	// seq bumps on every observable change; SSE event ids are
	// "<bootID>-<seq>".
	seq uint64
	// watchers are signal channels (cap 1) poked on every change.
	watchers map[chan struct{}]struct{}
	// jobCancel stops the running search; nil unless running.
	jobCancel context.CancelFunc
	// stopStatus tells the runner's error path which terminal-ish
	// status a deliberate cancellation should land on (interrupted for
	// drain, canceled for client cancels).
	stopStatus Status
}

// Open opens the store rooted at dir and loads every job into memory.
// Jobs found in StatusRunning crashed with their previous process and
// are normalized to StatusInterrupted (persisted). Nothing runs until
// Start.
func Open(dir string, opts Options) (*Manager, error) {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 1
	}
	if opts.RetryAttempts <= 0 {
		opts.RetryAttempts = 3
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 100 * time.Millisecond
	}
	if opts.Platform == nil {
		opts.Platform = platform.Default()
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	store, err := OpenStore(dir)
	if err != nil {
		return nil, err
	}
	boot, err := newID()
	if err != nil {
		return nil, err
	}
	m := &Manager{
		store:      store,
		opts:       opts,
		log:        opts.Logger,
		bootID:     boot,
		sem:        make(chan struct{}, opts.MaxConcurrent),
		jobs:       make(map[string]*tracked),
		drainCh:    make(chan struct{}),
		run:        dse.Run,
		runSharded: shard.Run,
	}
	jobs, damaged, err := store.List()
	if err != nil {
		return nil, err
	}
	for _, id := range damaged {
		m.log.Warn("jobs: skipping damaged job directory", "id", id)
	}
	for _, j := range jobs {
		if j.State.Status == StatusRunning {
			// The process that claimed it is gone; the journal holds its
			// completed work.
			j.State.Status = StatusInterrupted
			if j.State, err = store.SaveState(j.State); err != nil {
				return nil, fmt.Errorf("jobs: normalize crashed job %s: %w", j.State.ID, err)
			}
		}
		m.jobs[j.State.ID] = &tracked{spec: j.Spec, state: j.State, watchers: make(map[chan struct{}]struct{})}
	}
	return m, nil
}

// Start binds the manager's lifetime to ctx and enqueues every
// resumable job found by the recovery scan. Call once.
func (m *Manager) Start(ctx context.Context) {
	m.ctx, m.cancel = context.WithCancel(ctx)
	m.mu.Lock()
	var resume []*tracked
	for _, t := range m.jobs {
		if !t.state.Status.Terminal() {
			resume = append(resume, t)
		}
	}
	m.mu.Unlock()
	for _, t := range resume {
		if t.state.Status == StatusInterrupted {
			m.resumed.Add(1)
			m.log.Info("jobs: resuming interrupted job", "id", t.state.ID, "evaluated", t.state.Evaluated, "total", t.state.Total)
		}
		m.enqueue(t)
	}
}

// BootID identifies this process incarnation (SSE event-id prefix).
func (m *Manager) BootID() string { return m.bootID }

// Submit validates, durably creates and enqueues one job, returning
// its initial state. The job is on disk before this returns: a crash
// immediately after sees it pending and runs it.
func (m *Manager) Submit(sp Spec) (State, error) {
	if _, err := sp.Config(); err != nil {
		return State{}, err
	}
	if _, err := dse.NewStrategy(orGrid(sp.Strategy), sp.Seed); err != nil {
		return State{}, err
	}
	if err := sp.ValidateSharding(); err != nil {
		return State{}, err
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return State{}, fmt.Errorf("jobs: manager is draining")
	}
	m.mu.Unlock()
	job, err := m.store.Create(sp)
	if err != nil {
		return State{}, err
	}
	t := &tracked{spec: job.Spec, state: job.State, watchers: make(map[chan struct{}]struct{})}
	m.mu.Lock()
	m.jobs[job.State.ID] = t
	m.mu.Unlock()
	m.submitted.Add(1)
	m.log.Info("jobs: submitted", "id", job.State.ID, "total", job.State.Total)
	m.enqueue(t)
	return job.State, nil
}

// orGrid defaults an empty strategy name like the engine does.
func orGrid(s string) string {
	if s == "" {
		return dse.StrategyGrid
	}
	return s
}

// Get returns a job's spec, current state and change sequence.
func (m *Manager) Get(id string) (Spec, State, uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.jobs[id]
	if !ok {
		return Spec{}, State{}, 0, os.ErrNotExist
	}
	return t.spec, t.state, t.seq, nil
}

// List returns every job's state, oldest first.
func (m *Manager) List() []State {
	m.mu.Lock()
	out := make([]State, 0, len(m.jobs))
	for _, t := range m.jobs {
		out = append(out, t.state)
	}
	m.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if !out[a].Created.Equal(out[b].Created) {
			return out[a].Created.Before(out[b].Created)
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Journal returns a job's raw checkpoint journal bytes — empty until
// the first checkpoint. The journal is appended atomically per line,
// so a concurrent read sees a valid prefix (readers drop a torn tail).
func (m *Manager) Journal(id string) ([]byte, error) {
	m.mu.Lock()
	_, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, os.ErrNotExist
	}
	return m.store.LoadJournal(id)
}

// Result returns the result document of a done job.
func (m *Manager) Result(id string) ([]byte, error) {
	m.mu.Lock()
	t, ok := m.jobs[id]
	var st State
	if ok {
		st = t.state
	}
	m.mu.Unlock()
	if !ok {
		return nil, os.ErrNotExist
	}
	if st.Status != StatusDone {
		return nil, fmt.Errorf("jobs: job %s is %s, not done", id, st.Status)
	}
	return m.store.LoadResult(id)
}

// Cancel stops a pending or running job. Terminal jobs return their
// state unchanged with changed=false.
func (m *Manager) Cancel(id string) (st State, changed bool, err error) {
	m.mu.Lock()
	t, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return State{}, false, os.ErrNotExist
	}
	if t.state.Status.Terminal() {
		st = t.state
		m.mu.Unlock()
		return st, false, nil
	}
	if t.jobCancel != nil {
		// Running: the runner's error path persists the terminal state.
		t.stopStatus = StatusCanceled
		cancel := t.jobCancel
		m.mu.Unlock()
		cancel()
		m.mu.Lock()
		st = t.state
		m.mu.Unlock()
		return st, true, nil
	}
	// Pending (or interrupted awaiting a slot): flip durably now; the
	// runner re-checks before claiming.
	t.state.Status = StatusCanceled
	st, err = m.store.SaveState(t.state)
	if err == nil {
		t.state = st
	}
	m.notifyLocked(t)
	m.mu.Unlock()
	if err != nil {
		return State{}, false, err
	}
	m.canceled.Add(1)
	return st, true, nil
}

// Delete removes a terminal job from the store and memory. Active jobs
// must be canceled first.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	t, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return os.ErrNotExist
	}
	if !t.state.Status.Terminal() {
		m.mu.Unlock()
		return fmt.Errorf("jobs: job %s is %s; cancel it before deleting", id, t.state.Status)
	}
	delete(m.jobs, id)
	m.mu.Unlock()
	return m.store.Delete(id)
}

// Subscribe registers for change signals on a job. The returned
// channel is poked (never blocked on) after every observable change;
// read the fresh state with Get. Call the cancel func when done.
func (m *Manager) Subscribe(id string) (<-chan struct{}, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.jobs[id]
	if !ok {
		return nil, nil, os.ErrNotExist
	}
	ch := make(chan struct{}, 1)
	t.watchers[ch] = struct{}{}
	return ch, func() {
		m.mu.Lock()
		delete(t.watchers, ch)
		m.mu.Unlock()
	}, nil
}

// Draining returns a channel closed when drain begins — long-lived
// subscribers (SSE streams) use it to end before HTTP shutdown waits
// on them.
func (m *Manager) Draining() <-chan struct{} { return m.drainCh }

// QueueDepth counts jobs that are pending, interrupted or running —
// the backlog a new submission queues behind.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, t := range m.jobs {
		if !t.state.Status.Terminal() {
			n++
		}
	}
	return n
}

// Stats snapshots the manager for /metrics.
type Stats struct {
	ByStatus                                                 map[Status]int
	Submitted, Completed, Failed, Canceled, Resumed, Retries uint64
}

// Snapshot returns current counters and per-status job counts.
func (m *Manager) Snapshot() Stats {
	st := Stats{ByStatus: make(map[Status]int)}
	m.mu.Lock()
	for _, t := range m.jobs {
		st.ByStatus[t.state.Status]++
	}
	m.mu.Unlock()
	st.Submitted = m.submitted.Load()
	st.Completed = m.completed.Load()
	st.Failed = m.failed.Load()
	st.Canceled = m.canceled.Load()
	st.Resumed = m.resumed.Load()
	st.Retries = m.retries.Load()
	return st
}

// Drain checkpoints every running job and stops the manager: running
// searches are canceled (their journals already hold every completed
// evaluation), their states land on StatusInterrupted, and pending
// jobs stay pending — the next Open/Start resumes all of them. Drain
// returns when every runner goroutine has persisted its state or ctx
// expires.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil
	}
	m.draining = true
	close(m.drainCh)
	m.mu.Unlock()
	// Cancel the manager context BEFORE waiting: it stops running
	// searches (their default stopStatus, interrupted, is the drain
	// semantics — a client Cancel that raced in first wins with
	// canceled) and unblocks enqueued goroutines still waiting for a
	// runner slot, whose jobs stay durably pending for the next boot.
	if m.cancel != nil {
		m.cancel()
	}
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain timed out: %w", ctx.Err())
	}
}

// enqueue hands a job to the bounded runner pool.
func (m *Manager) enqueue(t *tracked) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		select {
		case m.sem <- struct{}{}:
			defer func() { <-m.sem }()
		case <-m.ctx.Done():
			return // still pending/interrupted on disk; next boot resumes it
		}
		m.runJob(t)
	}()
}

// runJob executes one job to a terminal or interrupted state.
func (m *Manager) runJob(t *tracked) {
	m.mu.Lock()
	if t.state.Status.Terminal() || m.draining {
		m.mu.Unlock()
		return
	}
	jctx, jcancel := context.WithCancel(m.ctx)
	defer jcancel()
	t.jobCancel = jcancel
	t.stopStatus = StatusInterrupted
	t.state.Status = StatusRunning
	id := t.state.ID
	st, err := m.store.SaveState(t.state)
	if err == nil {
		t.state = st
	}
	m.notifyLocked(t)
	m.mu.Unlock()
	if err != nil {
		// Could not durably claim the job: do not run work the store
		// cannot account for.
		m.finish(t, StatusFailed, fmt.Errorf("jobs: claim %s: %w", id, err))
		return
	}

	cfg, err := t.spec.Config()
	if err != nil {
		m.finish(t, StatusFailed, err)
		return
	}
	cfg.Platform = m.opts.Platform
	cfg.Journal = m.store.JournalPath(id)
	if fi, err := os.Stat(cfg.Journal); err == nil && fi.Size() > 0 {
		cfg.Resume = true
	}
	cfg.RetryAttempts = m.opts.RetryAttempts
	cfg.RetryBackoff = m.opts.RetryBackoff
	cfg.RetryNotify = func(err error) {
		m.retries.Add(1)
		if m.opts.OnRetry != nil {
			m.opts.OnRetry(err)
		}
		m.log.Warn("jobs: retrying evaluation", "id", id, "err", err)
	}
	cfg.Progress = func(evaluated, total int) {
		m.mu.Lock()
		t.state.Evaluated = evaluated
		t.state.Total = total
		m.notifyLocked(t)
		m.mu.Unlock()
	}

	var res *dse.Result
	if t.spec.Sharded() {
		// Shard fan-out: the coordinator partitions the space, runs the
		// shards (locally or on remote replicas), and merges into this
		// job's journal — so recovery, cancel and the journal endpoint
		// see exactly what a plain job would have written.
		res, err = m.runSharded(jctx, cfg, shard.Options{
			Shards:   t.spec.Shards,
			Replicas: t.spec.Replicas,
			Dir:      m.store.ShardDir(id),
			Logger:   m.log,
		})
	} else {
		res, err = m.run(jctx, cfg)
	}
	if err != nil {
		if jctx.Err() != nil {
			// Deliberate stop (drain or client cancel) or parent
			// shutdown; the journal checkpoint holds the finished work.
			m.mu.Lock()
			stop := t.stopStatus
			m.mu.Unlock()
			m.finish(t, stop, nil)
			return
		}
		m.finish(t, StatusFailed, err)
		return
	}
	body, err := res.JSON()
	if err != nil {
		m.finish(t, StatusFailed, err)
		return
	}
	// Match `cryowire dse -json` stdout byte for byte.
	if err := m.store.SaveResult(id, append(body, '\n')); err != nil {
		m.finish(t, StatusFailed, err)
		return
	}
	m.mu.Lock()
	t.state.Evaluated = res.Evaluated
	m.mu.Unlock()
	m.finish(t, StatusDone, nil)
}

// finish lands a job on its final (or interrupted) status, persists it
// and notifies watchers. A persistence failure here is logged but not
// fatal: the journal still holds the work, and recovery re-derives the
// rest.
func (m *Manager) finish(t *tracked, status Status, cause error) {
	m.mu.Lock()
	t.jobCancel = nil
	t.state.Status = status
	t.state.Error = ""
	if cause != nil {
		t.state.Error = cause.Error()
	}
	st, err := m.store.SaveState(t.state)
	if err == nil {
		t.state = st
	}
	m.notifyLocked(t)
	id := t.state.ID
	m.mu.Unlock()
	if err != nil {
		m.log.Error("jobs: persisting final state failed", "id", id, "status", status, "err", err)
	}
	switch status {
	case StatusDone:
		m.completed.Add(1)
	case StatusFailed:
		m.failed.Add(1)
	case StatusCanceled:
		m.canceled.Add(1)
	}
	m.log.Info("jobs: finished", "id", id, "status", string(status), "err", errStr(cause))
}

// notifyLocked bumps the sequence and pokes every watcher. Caller
// holds m.mu.
func (m *Manager) notifyLocked(t *tracked) {
	t.seq++
	for ch := range t.watchers {
		select {
		case ch <- struct{}{}:
		default: // watcher already has a wakeup queued
		}
	}
}

func errStr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
