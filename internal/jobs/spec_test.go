package jobs

import (
	"encoding/json"
	"reflect"
	"testing"

	"cryowire/internal/dse"
)

// TestSpecSurrogateRoundTrip: the surrogate fields survive the
// config -> spec -> JSON -> spec -> config round-trip a durable job
// makes, and specs without them marshal without the new keys (so specs
// written before the surrogate existed rewrite byte-identically).
func TestSpecSurrogateRoundTrip(t *testing.T) {
	space := dse.DefaultSpace(true)
	cfg := dse.Config{
		Space:        space,
		Strategy:     dse.StrategyScreen,
		Budget:       8,
		Seed:         5,
		Priors:       []string{"a.jsonl", "b.jsonl"},
		ScreenMargin: 0.15,
	}
	cfg.Sim.WarmupCycles, cfg.Sim.MeasureCycles, cfg.Sim.Seed = 400, 1600, 1

	sp := SpecFromConfig(cfg)
	if !reflect.DeepEqual(sp.Prior, cfg.Priors) || sp.ScreenMargin != cfg.ScreenMargin {
		t.Fatalf("SpecFromConfig dropped surrogate fields: %+v", sp)
	}
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Priors, cfg.Priors) || got.ScreenMargin != cfg.ScreenMargin {
		t.Fatalf("spec round-trip lost surrogate fields: priors=%v margin=%v", got.Priors, got.ScreenMargin)
	}

	// A spec without surrogate fields must not grow the new keys.
	plain := cfg
	plain.Strategy = dse.StrategyGrid
	plain.Priors, plain.ScreenMargin = nil, 0
	pb, err := json.Marshal(SpecFromConfig(plain))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(pb, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"prior", "screen_margin"} {
		if _, ok := m[k]; ok {
			t.Fatalf("plain spec marshals key %q; omitempty broken, old specs would rewrite differently", k)
		}
	}
}
