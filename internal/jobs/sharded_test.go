package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
)

// shardedSpec is testSpec fanned out over two local shards.
func shardedSpec() Spec {
	sp := testSpec(0)
	sp.Shards = 2
	return sp
}

// TestShardedSpecRoundTrip: the fan-out and range fields survive the
// spec's JSON shape without disturbing pre-shard spec files, a range
// restricts Total and Config, and bad combinations fail at resolution.
func TestShardedSpecRoundTrip(t *testing.T) {
	// A plain spec must not serialize any shard or range fields
	// (omitempty keeps old spec files byte-stable on rewrite).
	b, err := json.Marshal(testSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"shards", "replicas", "range_start", "range_end", "checkpoint_every"} {
		if bytes.Contains(b, []byte(field)) {
			t.Fatalf("plain spec serialized %q: %s", field, b)
		}
	}

	// A range-restricted spec clips Total and resolves into cfg.Range.
	rp := testSpec(0)
	rp.RangeStart, rp.RangeEnd = 2, 6
	if got := rp.Total(); got != 4 {
		t.Fatalf("range spec Total = %d, want 4", got)
	}
	cfg, err := rp.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Range == nil || cfg.Range.Start != 2 || cfg.Range.End != 6 {
		t.Fatalf("range lost in resolution: %+v", cfg.Range)
	}
	back := SpecFromConfig(cfg)
	if back.RangeStart != 2 || back.RangeEnd != 6 {
		t.Fatalf("range lost in round trip: %+v", back)
	}

	// A sharded spec cannot itself be range-restricted.
	bad := shardedSpec()
	bad.RangeStart, bad.RangeEnd = 0, 4
	if _, err := bad.Config(); err == nil {
		t.Fatal("sharded spec with a range resolved")
	}
	// Sharding validation: adaptive strategies and junk replica URLs
	// are rejected before any job is created.
	bad = shardedSpec()
	bad.Strategy = "random"
	if err := bad.ValidateSharding(); err == nil {
		t.Fatal("sharded random-strategy spec validated")
	}
	bad = shardedSpec()
	bad.Replicas = []string{"not a url"}
	if err := bad.ValidateSharding(); err == nil {
		t.Fatal("junk replica URL validated")
	}
	bad = shardedSpec()
	bad.Replicas = []string{"http://127.0.0.1:1"}
	bad.SimSeed = 0
	if err := bad.ValidateSharding(); err == nil {
		t.Fatal("remote spec with unpinned sim seed validated")
	}
}

// TestShardedJobRunsToCompletion: a sharded job goes through the
// manager's coordinator path — per-shard journals under the job's
// shards/ directory, merged into the job journal — and its result is
// byte-identical to the plain synchronous run.
func TestShardedJobRunsToCompletion(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jobs")
	m, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)
	defer m.Drain(context.Background())

	sp := shardedSpec()
	st, err := m.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitStatus(t, m, st.ID, StatusDone)
	if fin.Evaluated != 16 {
		t.Fatalf("evaluated = %d, want 16", fin.Evaluated)
	}
	got, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	plain := testSpec(0)
	if want := referenceBytes(t, plain); !bytes.Equal(got, want) {
		t.Fatalf("sharded job result differs from synchronous run:\n got: %s\nwant: %s", got, want)
	}
	// The merged journal is in place as the job's own journal.
	journal, err := m.Journal(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(journal, []byte("cryowire-dse-journal")) {
		t.Fatalf("job journal missing after sharded run: %q", journal)
	}
	// Submitting a sharded spec with a bad replica is rejected up front.
	bad := shardedSpec()
	bad.Replicas = []string{"ftp://nope"}
	if _, err := m.Submit(bad); err == nil {
		t.Fatal("bad replica URL accepted at submit")
	}
}
