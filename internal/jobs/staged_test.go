package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"cryowire/internal/dse"
)

// stagedSpec is a two-candidate staged search: tier ∈ {77 K, 4 K} with
// the memory hierarchy pinned on its own 77 K stage.
func stagedSpec() Spec {
	return Spec{
		Strategy:      "grid",
		Seed:          1,
		TempsK:        []float64{77, 4},
		Modes:         []string{"cryosp"},
		Depths:        []int{17},
		Nets:          []string{"cryobus"},
		Workloads:     []string{"x264"},
		StageTempsK:   []float64{77},
		WarmupCycles:  300,
		MeasureCycles: 900,
		SimSeed:       1,
		Workers:       2,
	}
}

// TestStagedSpecRoundTrip: the stage axis survives Spec → Config →
// Spec, and Total counts the sixth axis.
func TestStagedSpecRoundTrip(t *testing.T) {
	sp := stagedSpec()
	if got := sp.Total(); got != 2 {
		t.Fatalf("Total = %d, want 2", got)
	}
	cfg, err := sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Space.Size() != 2 {
		t.Fatalf("space size = %d, want 2", cfg.Space.Size())
	}
	back := SpecFromConfig(cfg)
	if !reflect.DeepEqual(back.StageTempsK, sp.StageTempsK) {
		t.Fatalf("stage axis lost in round trip: %v != %v", back.StageTempsK, sp.StageTempsK)
	}
	// A flat spec must not grow a stage axis (omitempty keeps old spec
	// files byte-stable).
	flat := testSpec(0)
	b, err := json.Marshal(flat)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("stage_temps_k")) {
		t.Fatalf("flat spec serialized a stage axis: %s", b)
	}
	// And a bad stage axis fails at spec resolution, before any state
	// transitions.
	bad := stagedSpec()
	bad.StageTempsK = []float64{0}
	if _, err := bad.Config(); err == nil {
		t.Fatal("spec with a 0 K stage resolved")
	}
}

// TestStagedJobRunsToCompletion is the acceptance path: a DSE with the
// stage-temperature axis completes through the async job machinery and
// recovers a frontier whose candidates carry their stage and its
// staged cooling premium.
func TestStagedJobRunsToCompletion(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jobs")
	m, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)
	defer m.Drain(context.Background())

	sp := stagedSpec()
	st, err := m.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 2 {
		t.Fatalf("submitted total = %d, want 2", st.Total)
	}
	fin := waitStatus(t, m, st.ID, StatusDone)
	if fin.Evaluated != 2 {
		t.Fatalf("evaluated = %d, want 2", fin.Evaluated)
	}
	got, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceBytes(t, sp); !bytes.Equal(got, want) {
		t.Fatalf("async staged result differs from synchronous run:\n got: %s\nwant: %s", got, want)
	}
	var res dse.Result
	if err := json.Unmarshal(got, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("staged job recovered an empty frontier")
	}
	for _, c := range res.Frontier {
		if c.Point.StageK != 77 {
			t.Fatalf("frontier point %+v lost its memory stage", c.Point)
		}
		// Every staged candidate pays more than the flat 77 K lift:
		// the chain adds cable heat and, at 4 K, the ~25x Carnot stage.
		if c.Eval.CoolingOverhead <= 9.65 {
			t.Fatalf("staged cooling overhead %v not above the flat 77 K 9.65", c.Eval.CoolingOverhead)
		}
	}
}
