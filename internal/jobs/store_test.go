package jobs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var errInjected = errors.New("injected fault")

// faultFS wraps the real syscall set with per-op kill switches; tests
// flip a flag, run one store operation, and assert the failure was
// absorbed without corrupting on-disk state. Tests are single-
// goroutine, so plain fields suffice.
type faultFS struct {
	failWrite, failSync, failRename, failMkdir, failRemoveAll bool
}

// arm installs the fault hooks on a store.
func (f *faultFS) arm(s *Store) {
	real := realFS()
	s.fs.WriteFile = func(name string, data []byte) error {
		if f.failWrite {
			return errInjected
		}
		return real.WriteFile(name, data)
	}
	s.fs.Sync = func(file *os.File) error {
		if f.failSync {
			return errInjected
		}
		return real.Sync(file)
	}
	s.fs.Rename = func(o, n string) error {
		if f.failRename {
			return errInjected
		}
		return real.Rename(o, n)
	}
	s.fs.MkdirAll = func(p string, perm os.FileMode) error {
		if f.failMkdir {
			return errInjected
		}
		return real.MkdirAll(p, perm)
	}
	s.fs.RemoveAll = func(p string) error {
		if f.failRemoveAll {
			return errInjected
		}
		return real.RemoveAll(p)
	}
}

func testSpec(budget int) Spec {
	return Spec{
		Strategy:      "grid",
		Budget:        budget,
		Seed:          1,
		TempsK:        []float64{300, 77},
		Modes:         []string{"nominal", "cryosp"},
		Depths:        []int{14, 17},
		Nets:          []string{"mesh", "cryobus"},
		Workloads:     []string{"x264"},
		WarmupCycles:  300,
		MeasureCycles: 900,
		SimSeed:       1,
		Workers:       2,
	}
}

func openTestStore(t *testing.T) (*Store, *faultFS) {
	t.Helper()
	s, err := OpenStore(filepath.Join(t.TempDir(), "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	f := &faultFS{}
	f.arm(s)
	return s, f
}

// TestStoreRoundTrip: create, load, list, state update, result, delete.
func TestStoreRoundTrip(t *testing.T) {
	s, _ := openTestStore(t)
	job, err := s.Create(testSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if job.State.Status != StatusPending || job.State.Total != 4 {
		t.Fatalf("fresh state = %+v", job.State)
	}
	got, err := s.Load(job.State.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Strategy != "grid" || got.State.ID != job.State.ID {
		t.Fatalf("loaded %+v", got)
	}
	got.State.Status = StatusDone
	got.State.Evaluated = 4
	st, err := s.SaveState(got.State)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Updated.After(job.State.Updated) && !st.Updated.Equal(job.State.Updated) {
		t.Fatalf("Updated not stamped: %v vs %v", st.Updated, job.State.Updated)
	}
	if err := s.SaveResult(job.State.ID, []byte("{\"ok\":true}\n")); err != nil {
		t.Fatal(err)
	}
	body, err := s.LoadResult(job.State.ID)
	if err != nil || string(body) != "{\"ok\":true}\n" {
		t.Fatalf("result = %q, %v", body, err)
	}
	jobs, damaged, err := s.List()
	if err != nil || len(damaged) != 0 || len(jobs) != 1 {
		t.Fatalf("List = %v, %v, %v", jobs, damaged, err)
	}
	if err := s.Delete(job.State.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(job.State.ID); err == nil {
		t.Fatal("deleted job still loads")
	}
}

// TestCreateFaults: every failing persistence step during Create must
// leave the store without a half-created job — the staged directory is
// cleaned up and List sees nothing.
func TestCreateFaults(t *testing.T) {
	for _, tc := range []struct {
		name string
		set  func(*faultFS)
	}{
		{"write fails", func(f *faultFS) { f.failWrite = true }},
		{"fsync fails", func(f *faultFS) { f.failSync = true }},
		{"rename fails", func(f *faultFS) { f.failRename = true }},
		{"mkdir fails", func(f *faultFS) { f.failMkdir = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, f := openTestStore(t)
			tc.set(f)
			if _, err := s.Create(testSpec(2)); !errors.Is(err, errInjected) {
				t.Fatalf("Create error = %v, want injected fault", err)
			}
			*f = faultFS{}
			jobs, damaged, err := s.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(jobs) != 0 || len(damaged) != 0 {
				t.Fatalf("half-created job visible: jobs=%v damaged=%v", jobs, damaged)
			}
			ents, err := os.ReadDir(s.root)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				if !strings.HasPrefix(e.Name(), tmpPrefix) {
					t.Fatalf("unexpected store entry %q after failed create", e.Name())
				}
			}
		})
	}
}

// TestSaveStateFaults: a failing write, sync or rename during a state
// update must leave the previous state.json byte-intact — the atomic
// replace either happens completely or not at all.
func TestSaveStateFaults(t *testing.T) {
	for _, tc := range []struct {
		name string
		set  func(*faultFS)
	}{
		{"write fails", func(f *faultFS) { f.failWrite = true }},
		{"fsync fails", func(f *faultFS) { f.failSync = true }},
		{"rename fails", func(f *faultFS) { f.failRename = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, f := openTestStore(t)
			job, err := s.Create(testSpec(2))
			if err != nil {
				t.Fatal(err)
			}
			before, err := os.ReadFile(filepath.Join(s.dir(job.State.ID), stateFile))
			if err != nil {
				t.Fatal(err)
			}
			tc.set(f)
			job.State.Status = StatusRunning
			if _, err := s.SaveState(job.State); !errors.Is(err, errInjected) {
				t.Fatalf("SaveState error = %v, want injected fault", err)
			}
			*f = faultFS{}
			after, err := os.ReadFile(filepath.Join(s.dir(job.State.ID), stateFile))
			if err != nil {
				t.Fatal(err)
			}
			if string(before) != string(after) {
				t.Fatalf("failed update mutated state.json:\nbefore: %s\nafter:  %s", before, after)
			}
			got, err := s.Load(job.State.ID)
			if err != nil || got.State.Status != StatusPending {
				t.Fatalf("state after failed update = %+v, %v", got.State, err)
			}
		})
	}
}

// TestSaveResultFaults: same atomicity contract for result.json.
func TestSaveResultFaults(t *testing.T) {
	s, f := openTestStore(t)
	job, err := s.Create(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveResult(job.State.ID, []byte("v1\n")); err != nil {
		t.Fatal(err)
	}
	f.failRename = true
	if err := s.SaveResult(job.State.ID, []byte("v2\n")); !errors.Is(err, errInjected) {
		t.Fatalf("SaveResult error = %v", err)
	}
	f.failRename = false
	body, err := s.LoadResult(job.State.ID)
	if err != nil || string(body) != "v1\n" {
		t.Fatalf("result after failed replace = %q, %v (want v1 intact)", body, err)
	}
}

// TestSweep: staged directories and temp files from a crashed writer
// disappear on open; real jobs survive.
func TestSweep(t *testing.T) {
	root := filepath.Join(t.TempDir(), "jobs")
	s, err := OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.Create(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	// Simulated crash mid-create and mid-state-write.
	if err := os.MkdirAll(filepath.Join(root, tmpPrefix+"deadbeef00000000"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, tmpPrefix+"deadbeef00000000", specFile), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.dir(job.State.ID), tmpPrefix+stateFile), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, tmpPrefix+"deadbeef00000000")); !os.IsNotExist(err) {
		t.Fatal("staged directory survived reopen")
	}
	if _, err := os.Stat(filepath.Join(s2.dir(job.State.ID), tmpPrefix+stateFile)); !os.IsNotExist(err) {
		t.Fatal("temp state file survived reopen")
	}
	jobs, damaged, err := s2.List()
	if err != nil || len(jobs) != 1 || len(damaged) != 0 {
		t.Fatalf("after sweep: jobs=%v damaged=%v err=%v", jobs, damaged, err)
	}
}

// TestListReportsDamage: a job directory with corrupt metadata is
// reported, not fatal, and does not hide healthy jobs.
func TestListReportsDamage(t *testing.T) {
	s, _ := openTestStore(t)
	job, err := s.Create(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := s.Create(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.dir(bad.State.ID), stateFile), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, damaged, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].State.ID != job.State.ID {
		t.Fatalf("healthy jobs = %v", jobs)
	}
	if len(damaged) != 1 || damaged[0] != bad.State.ID {
		t.Fatalf("damaged = %v, want [%s]", damaged, bad.State.ID)
	}
}

// TestInvalidIDsRejected: client-controlled ids must never become
// paths.
func TestInvalidIDsRejected(t *testing.T) {
	s, _ := openTestStore(t)
	for _, id := range []string{"", "..", "../../etc/passwd", "ABCDEF0123456789", "deadbeef", "deadbeefdeadbeefff"} {
		if _, err := s.Load(id); err == nil || !strings.Contains(err.Error(), "invalid job id") {
			t.Fatalf("Load(%q) err = %v", id, err)
		}
		if err := s.Delete(id); err == nil || !strings.Contains(err.Error(), "invalid job id") {
			t.Fatalf("Delete(%q) err = %v", id, err)
		}
	}
}
