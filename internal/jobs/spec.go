package jobs

import (
	"fmt"

	"cryowire/internal/dse"
	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

// Spec is the durable description of one asynchronous DSE job: every
// input the engine's determinism contract ranges over, in a flat,
// human-readable JSON shape. Workloads are stored by name and resolved
// at run time, so a spec written by one process replays identically in
// the process that recovers it.
type Spec struct {
	// Strategy, Budget and Seed parameterize the search (see dse.Config).
	Strategy string `json:"strategy"`
	Budget   int    `json:"budget"`
	Seed     int64  `json:"seed"`
	// TempsK, Modes, Depths, Nets and Workloads are the space axes.
	TempsK    []float64 `json:"temps_k"`
	Modes     []string  `json:"modes"`
	Depths    []int     `json:"depths"`
	Nets      []string  `json:"nets"`
	Workloads []string  `json:"workloads"`
	// StageTempsK is the optional memory-stage temperature axis
	// (multi-stage cooling chain). omitempty keeps specs written before
	// the axis existed byte-identical on rewrite.
	StageTempsK []float64 `json:"stage_temps_k,omitempty"`
	// WarmupCycles, MeasureCycles and SimSeed are the per-candidate
	// simulation knobs.
	WarmupCycles  int   `json:"warmup_cycles"`
	MeasureCycles int   `json:"measure_cycles"`
	SimSeed       int64 `json:"sim_seed"`
	// Workers bounds the job's parallel evaluation fan-out (0 = all
	// CPUs). Worker count never changes the result bytes.
	Workers int `json:"workers"`
	// BatchLanes is the lockstep batch width (0 = auto from Workers,
	// negative = single-lane). Like Workers it is a scheduling knob:
	// it never changes the result bytes, so recovered jobs may resume
	// at a different width than they started.
	BatchLanes int `json:"batch_lanes,omitempty"`
}

// SpecFromConfig extracts the durable spec from a resolved engine
// config (the server's DTO resolution already validated it).
func SpecFromConfig(cfg dse.Config) Spec {
	return Spec{
		Strategy:      cfg.Strategy,
		Budget:        cfg.Budget,
		Seed:          cfg.Seed,
		TempsK:        cfg.Space.TempsK,
		Modes:         cfg.Space.Modes,
		Depths:        cfg.Space.Depths,
		Nets:          cfg.Space.Nets,
		Workloads:     cfg.Space.WorkloadNames,
		StageTempsK:   cfg.Space.StageTempsK,
		WarmupCycles:  cfg.Sim.WarmupCycles,
		MeasureCycles: cfg.Sim.MeasureCycles,
		SimSeed:       cfg.Sim.Seed,
		Workers:       cfg.Workers,
		BatchLanes:    cfg.BatchLanes,
	}
}

// Config resolves the spec back into an engine config (journal path
// and platform are the manager's business, not the spec's). Workload
// names resolve against the built-in suite; a spec naming an unknown
// workload fails here, before any state transitions.
func (sp Spec) Config() (dse.Config, error) {
	wls := make([]workload.Profile, 0, len(sp.Workloads))
	for _, n := range sp.Workloads {
		w, err := workload.ByName(n)
		if err != nil {
			return dse.Config{}, fmt.Errorf("jobs: spec: %w", err)
		}
		wls = append(wls, w)
	}
	space := dse.NewSpace(sp.TempsK, sp.Modes, sp.Depths, sp.Nets, wls)
	if len(sp.StageTempsK) > 0 {
		space = space.WithStages(sp.StageTempsK)
	}
	if err := space.Validate(); err != nil {
		return dse.Config{}, fmt.Errorf("jobs: spec: %w", err)
	}
	return dse.Config{
		Space:      space,
		Strategy:   sp.Strategy,
		Budget:     sp.Budget,
		Seed:       sp.Seed,
		Sim:        sim.Config{WarmupCycles: sp.WarmupCycles, MeasureCycles: sp.MeasureCycles, Seed: sp.SimSeed},
		Workers:    sp.Workers,
		BatchLanes: sp.BatchLanes,
	}, nil
}

// Total is the number of evaluations the job will perform when the
// strategy does not converge early: the budget clipped to the space.
func (sp Spec) Total() int {
	size := len(sp.TempsK) * len(sp.Modes) * len(sp.Depths) * len(sp.Nets) * len(sp.Workloads)
	if n := len(sp.StageTempsK); n > 0 {
		size *= n
	}
	if sp.Budget > 0 && sp.Budget < size {
		return sp.Budget
	}
	return size
}
