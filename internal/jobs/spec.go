package jobs

import (
	"fmt"
	"net/url"

	"cryowire/internal/dse"
	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

// Spec is the durable description of one asynchronous DSE job: every
// input the engine's determinism contract ranges over, in a flat,
// human-readable JSON shape. Workloads are stored by name and resolved
// at run time, so a spec written by one process replays identically in
// the process that recovers it.
type Spec struct {
	// Strategy, Budget and Seed parameterize the search (see dse.Config).
	Strategy string `json:"strategy"`
	Budget   int    `json:"budget"`
	Seed     int64  `json:"seed"`
	// TempsK, Modes, Depths, Nets and Workloads are the space axes.
	TempsK    []float64 `json:"temps_k"`
	Modes     []string  `json:"modes"`
	Depths    []int     `json:"depths"`
	Nets      []string  `json:"nets"`
	Workloads []string  `json:"workloads"`
	// StageTempsK is the optional memory-stage temperature axis
	// (multi-stage cooling chain). omitempty keeps specs written before
	// the axis existed byte-identical on rewrite.
	StageTempsK []float64 `json:"stage_temps_k,omitempty"`
	// WarmupCycles, MeasureCycles and SimSeed are the per-candidate
	// simulation knobs.
	WarmupCycles  int   `json:"warmup_cycles"`
	MeasureCycles int   `json:"measure_cycles"`
	SimSeed       int64 `json:"sim_seed"`
	// Workers bounds the job's parallel evaluation fan-out (0 = all
	// CPUs). Worker count never changes the result bytes.
	Workers int `json:"workers"`
	// BatchLanes is the lockstep batch width (0 = auto from Workers,
	// negative = single-lane). Like Workers it is a scheduling knob:
	// it never changes the result bytes, so recovered jobs may resume
	// at a different width than they started.
	BatchLanes int `json:"batch_lanes,omitempty"`
	// CheckpointEvery caps evaluations per journal checkpoint (0 = the
	// engine default). A scheduling knob like BatchLanes.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// RangeStart / RangeEnd restrict a grid job to the half-open
	// point-index interval [RangeStart, RangeEnd) — the shape a shard
	// coordinator submits to a replica. Both zero means the whole
	// space. omitempty keeps pre-shard specs byte-identical on rewrite.
	RangeStart int `json:"range_start,omitempty"`
	RangeEnd   int `json:"range_end,omitempty"`
	// Shards / Replicas turn the job into a shard fan-out: the manager
	// hands it to the shard coordinator, which partitions the space
	// into Shards ranges and runs them on local executors (empty
	// Replicas) or remote `cryowire serve` replicas. A sharded job
	// cannot itself be range-restricted.
	Shards   int      `json:"shards,omitempty"`
	Replicas []string `json:"replicas,omitempty"`
	// Prior / ScreenMargin parameterize the surrogate strategies: paths
	// of prior journals to learn from and the screen strategy's
	// Pareto-band width (0 = engine default). omitempty keeps specs
	// written before the surrogate existed byte-identical on rewrite.
	Prior        []string `json:"prior,omitempty"`
	ScreenMargin float64  `json:"screen_margin,omitempty"`
}

// Sharded reports whether the job runs through the shard coordinator
// instead of a plain engine run.
func (sp Spec) Sharded() bool { return sp.Shards > 1 || len(sp.Replicas) > 0 }

// ValidateSharding checks the fan-out parameters of a sharded spec, so
// a bad submission is rejected up front instead of landing the job on
// failed. Non-sharded specs pass trivially.
func (sp Spec) ValidateSharding() error {
	if !sp.Sharded() {
		return nil
	}
	if s := sp.Strategy; s != "" && s != dse.StrategyGrid {
		return fmt.Errorf("jobs: spec: sharding requires the %q strategy (got %q)", dse.StrategyGrid, s)
	}
	if sp.Shards < 0 {
		return fmt.Errorf("jobs: spec: negative shard count %d", sp.Shards)
	}
	for _, r := range sp.Replicas {
		u, err := url.Parse(r)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("jobs: spec: replica %q is not an http(s) base URL", r)
		}
	}
	if len(sp.Replicas) > 0 && (sp.WarmupCycles <= 0 || sp.MeasureCycles <= 0 || sp.SimSeed == 0) {
		return fmt.Errorf("jobs: spec: remote dispatch requires explicit warmup_cycles, measure_cycles and sim seed so replicas journal under the coordinator's key")
	}
	return nil
}

// SpecFromConfig extracts the durable spec from a resolved engine
// config (the server's DTO resolution already validated it).
func SpecFromConfig(cfg dse.Config) Spec {
	sp := Spec{
		Strategy:      cfg.Strategy,
		Budget:        cfg.Budget,
		Seed:          cfg.Seed,
		TempsK:        cfg.Space.TempsK,
		Modes:         cfg.Space.Modes,
		Depths:        cfg.Space.Depths,
		Nets:          cfg.Space.Nets,
		Workloads:     cfg.Space.WorkloadNames,
		StageTempsK:   cfg.Space.StageTempsK,
		WarmupCycles:  cfg.Sim.WarmupCycles,
		MeasureCycles: cfg.Sim.MeasureCycles,
		SimSeed:       cfg.Sim.Seed,
		Workers:       cfg.Workers,
		BatchLanes:    cfg.BatchLanes,
	}
	if cfg.Range != nil {
		sp.RangeStart, sp.RangeEnd = cfg.Range.Start, cfg.Range.End
	}
	sp.CheckpointEvery = cfg.CheckpointEvery
	sp.Prior = cfg.Priors
	sp.ScreenMargin = cfg.ScreenMargin
	return sp
}

// Config resolves the spec back into an engine config (journal path
// and platform are the manager's business, not the spec's). Workload
// names resolve against the built-in suite; a spec naming an unknown
// workload fails here, before any state transitions.
func (sp Spec) Config() (dse.Config, error) {
	wls := make([]workload.Profile, 0, len(sp.Workloads))
	for _, n := range sp.Workloads {
		w, err := workload.ByName(n)
		if err != nil {
			return dse.Config{}, fmt.Errorf("jobs: spec: %w", err)
		}
		wls = append(wls, w)
	}
	space := dse.NewSpace(sp.TempsK, sp.Modes, sp.Depths, sp.Nets, wls)
	if len(sp.StageTempsK) > 0 {
		space = space.WithStages(sp.StageTempsK)
	}
	if err := space.Validate(); err != nil {
		return dse.Config{}, fmt.Errorf("jobs: spec: %w", err)
	}
	cfg := dse.Config{
		Space:           space,
		Strategy:        sp.Strategy,
		Budget:          sp.Budget,
		Seed:            sp.Seed,
		Sim:             sim.Config{WarmupCycles: sp.WarmupCycles, MeasureCycles: sp.MeasureCycles, Seed: sp.SimSeed},
		Workers:         sp.Workers,
		BatchLanes:      sp.BatchLanes,
		CheckpointEvery: sp.CheckpointEvery,
		Priors:          sp.Prior,
		ScreenMargin:    sp.ScreenMargin,
	}
	if sp.RangeStart != 0 || sp.RangeEnd != 0 {
		if sp.Sharded() {
			return dse.Config{}, fmt.Errorf("jobs: spec: a sharded job owns its ranges; drop range_start/range_end")
		}
		r := dse.Range{Start: sp.RangeStart, End: sp.RangeEnd}
		if err := r.Validate(space.Size()); err != nil {
			return dse.Config{}, fmt.Errorf("jobs: spec: %w", err)
		}
		cfg.Range = &r
	}
	return cfg, nil
}

// Total is the number of evaluations the job will perform when the
// strategy does not converge early: the budget clipped to the space —
// or to the point-index range for a range-restricted job.
func (sp Spec) Total() int {
	size := len(sp.TempsK) * len(sp.Modes) * len(sp.Depths) * len(sp.Nets) * len(sp.Workloads)
	if n := len(sp.StageTempsK); n > 0 {
		size *= n
	}
	total := size
	if sp.Budget > 0 && sp.Budget < total {
		total = sp.Budget
	}
	if sp.RangeStart != 0 || sp.RangeEnd != 0 {
		if rl := sp.RangeEnd - sp.RangeStart; rl > 0 && rl < total {
			total = rl
		}
	}
	return total
}
