// Package jobs is the durable, crash-safe asynchronous job subsystem:
// it runs design-space explorations submitted over HTTP (or any other
// front end) to completion across process crashes, restarts and client
// disconnects.
//
// A job is a directory under the store root:
//
//	<root>/<id>/spec.json     — the search parameters (immutable)
//	<root>/<id>/state.json    — status + progress metadata
//	<root>/<id>/journal.jsonl — the dse checkpoint journal (one synced
//	                            line per completed evaluation)
//	<root>/<id>/result.json   — the final frontier (terminal jobs only)
//
// Crash-safety rests on three rules. (1) Every metadata write is
// atomic: temp file in the same directory, fsync, rename, fsync the
// directory — readers see old-complete or new-complete bytes, never a
// prefix. (2) The evaluation ground truth is the dse journal, which is
// appended and fsynced per evaluation and whose loader truncates a
// torn final line; state.json is only an index over it. (3) Job
// directories are staged under a ".tmp-" name and renamed into place,
// so a crash mid-create leaves sweepable garbage, never a half-job.
// Recovery is therefore a scan: any job found pending, running or
// interrupted is re-enqueued, and the journal replay makes the resumed
// run byte-identical to an uninterrupted one.
package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Status is a job's lifecycle phase.
type Status string

const (
	// StatusPending: durably created, not yet claimed by a runner.
	StatusPending Status = "pending"
	// StatusRunning: claimed by a live runner in this or a previous
	// process. Found on disk at startup it means the previous process
	// crashed mid-run; recovery turns it into StatusInterrupted.
	StatusRunning Status = "running"
	// StatusInterrupted: stopped before completion by a drain or crash;
	// the journal checkpoint makes it resumable.
	StatusInterrupted Status = "interrupted"
	// StatusDone: completed; result.json holds the frontier.
	StatusDone Status = "done"
	// StatusFailed: the search surfaced an error (recorded in
	// State.Error).
	StatusFailed Status = "failed"
	// StatusCanceled: a client canceled the job.
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final — terminal jobs are
// never resumed.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// State is the mutable metadata of one job, persisted atomically as
// state.json. It is an index over the journal, not the ground truth:
// Evaluated may lag the journal after a crash, and recovery heals it
// by re-running the search over the journal's memo.
type State struct {
	ID      string    `json:"id"`
	Status  Status    `json:"status"`
	Created time.Time `json:"created"`
	Updated time.Time `json:"updated"`
	// Evaluated / Total is the search progress. Total is the budget
	// clipped to the space; adaptive strategies may finish below it.
	Evaluated int `json:"evaluated"`
	Total     int `json:"total"`
	// Error carries the failure message for StatusFailed.
	Error string `json:"error,omitempty"`
}

// Job pairs a spec with its current state.
type Job struct {
	Spec  Spec  `json:"spec"`
	State State `json:"state"`
}

// File names inside a job directory.
const (
	specFile    = "spec.json"
	stateFile   = "state.json"
	journalFile = "journal.jsonl"
	resultFile  = "result.json"
	shardsDir   = "shards"
)

// Store is the directory-per-job persistence layer. All methods are
// safe for concurrent use by the manager's goroutines because every
// mutation is a whole-file atomic replace.
type Store struct {
	root string
	fs   fsOps
	now  func() time.Time
}

// OpenStore opens (creating if needed) a job store rooted at dir and
// sweeps debris from interrupted creations.
func OpenStore(dir string) (*Store, error) {
	s := &Store{root: dir, fs: realFS(), now: func() time.Time { return time.Now().UTC() }}
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create store root: %w", err)
	}
	if err := s.sweep(); err != nil {
		return nil, err
	}
	return s, nil
}

// sweep removes staged directories and temp files left by a crash
// mid-write. Their final rename never happened, so nothing references
// them.
func (s *Store) sweep() error {
	ents, err := os.ReadDir(s.root)
	if err != nil {
		return fmt.Errorf("jobs: scan store: %w", err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			if err := s.fs.RemoveAll(filepath.Join(s.root, e.Name())); err != nil {
				return fmt.Errorf("jobs: sweep %s: %w", e.Name(), err)
			}
			continue
		}
		if !e.IsDir() {
			continue
		}
		sub, err := os.ReadDir(filepath.Join(s.root, e.Name()))
		if err != nil {
			continue // handled (reported) by List
		}
		for _, f := range sub {
			if strings.HasPrefix(f.Name(), tmpPrefix) {
				s.fs.Remove(filepath.Join(s.root, e.Name(), f.Name()))
				continue
			}
			if f.Name() != shardsDir || !f.IsDir() {
				continue
			}
			// Shard journal merges stage temp files one level deeper.
			shards, err := os.ReadDir(filepath.Join(s.root, e.Name(), shardsDir))
			if err != nil {
				continue
			}
			for _, sf := range shards {
				if strings.HasPrefix(sf.Name(), tmpPrefix) {
					s.fs.Remove(filepath.Join(s.root, e.Name(), shardsDir, sf.Name()))
				}
			}
		}
	}
	return nil
}

// newID returns a fresh 16-hex-char job id.
func newID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobs: id entropy: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// validID guards path construction against ids that did not come from
// newID (HTTP handlers pass client-controlled strings here).
func validID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// dir returns the job's directory path.
func (s *Store) dir(id string) string { return filepath.Join(s.root, id) }

// JournalPath returns the job's dse checkpoint journal path.
func (s *Store) JournalPath(id string) string { return filepath.Join(s.dir(id), journalFile) }

// ShardDir returns the directory a sharded job's per-shard journals
// live in. It sits inside the job directory so shard checkpoints share
// the job's lifetime: they survive a crash for re-dispatch and vanish
// with Delete.
func (s *Store) ShardDir(id string) string { return filepath.Join(s.dir(id), shardsDir) }

// LoadJournal returns the job's raw checkpoint journal bytes; a job
// that has not checkpointed yet yields an empty journal, not an error.
func (s *Store) LoadJournal(id string) ([]byte, error) {
	if !validID(id) {
		return nil, fmt.Errorf("jobs: invalid job id %q", id)
	}
	b, err := os.ReadFile(s.JournalPath(id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: read journal: %w", err)
	}
	return b, nil
}

// Create durably persists a new pending job: the spec and initial
// state are written into a staged ".tmp-" directory which is then
// renamed into place and the root fsynced — the job either exists
// completely or not at all.
func (s *Store) Create(sp Spec) (Job, error) {
	id, err := newID()
	if err != nil {
		return Job{}, err
	}
	now := s.now()
	st := State{ID: id, Status: StatusPending, Created: now, Updated: now, Total: sp.Total()}
	staged := filepath.Join(s.root, tmpPrefix+id)
	if err := s.fs.MkdirAll(staged, 0o755); err != nil {
		return Job{}, fmt.Errorf("jobs: stage job dir: %w", err)
	}
	cleanup := func(err error) (Job, error) {
		s.fs.RemoveAll(staged)
		return Job{}, err
	}
	specBytes, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return cleanup(err)
	}
	if err := s.atomicWrite(staged, specFile, append(specBytes, '\n')); err != nil {
		return cleanup(err)
	}
	stateBytes, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return cleanup(err)
	}
	if err := s.atomicWrite(staged, stateFile, append(stateBytes, '\n')); err != nil {
		return cleanup(err)
	}
	if err := s.fs.Rename(staged, s.dir(id)); err != nil {
		return cleanup(fmt.Errorf("jobs: publish job dir: %w", err))
	}
	if err := s.syncPath(s.root); err != nil {
		return Job{}, fmt.Errorf("jobs: sync store root: %w", err)
	}
	return Job{Spec: sp, State: st}, nil
}

// SaveState atomically replaces a job's state.json, stamping Updated.
func (s *Store) SaveState(st State) (State, error) {
	if !validID(st.ID) {
		return State{}, fmt.Errorf("jobs: invalid job id %q", st.ID)
	}
	st.Updated = s.now()
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return State{}, err
	}
	if err := s.atomicWrite(s.dir(st.ID), stateFile, append(b, '\n')); err != nil {
		return State{}, err
	}
	return st, nil
}

// Load reads one job from disk.
func (s *Store) Load(id string) (Job, error) {
	if !validID(id) {
		return Job{}, fmt.Errorf("jobs: invalid job id %q", id)
	}
	var j Job
	if err := readJSON(filepath.Join(s.dir(id), specFile), &j.Spec); err != nil {
		return Job{}, err
	}
	if err := readJSON(filepath.Join(s.dir(id), stateFile), &j.State); err != nil {
		return Job{}, err
	}
	return j, nil
}

// List scans the store and returns every readable job sorted by
// creation time (ties broken by id). Unreadable job directories are
// returned as damaged ids rather than failing the whole scan — one
// corrupt job must not take recovery down with it.
func (s *Store) List() (jobs []Job, damaged []string, err error) {
	ents, err := os.ReadDir(s.root)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: scan store: %w", err)
	}
	for _, e := range ents {
		if !e.IsDir() || strings.HasPrefix(e.Name(), tmpPrefix) {
			continue
		}
		if !validID(e.Name()) {
			damaged = append(damaged, e.Name())
			continue
		}
		j, err := s.Load(e.Name())
		if err != nil {
			damaged = append(damaged, e.Name())
			continue
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool {
		if !jobs[a].State.Created.Equal(jobs[b].State.Created) {
			return jobs[a].State.Created.Before(jobs[b].State.Created)
		}
		return jobs[a].State.ID < jobs[b].State.ID
	})
	return jobs, damaged, nil
}

// SaveResult atomically persists the final result document.
func (s *Store) SaveResult(id string, body []byte) error {
	if !validID(id) {
		return fmt.Errorf("jobs: invalid job id %q", id)
	}
	return s.atomicWrite(s.dir(id), resultFile, body)
}

// LoadResult returns the result document of a finished job.
func (s *Store) LoadResult(id string) ([]byte, error) {
	if !validID(id) {
		return nil, fmt.Errorf("jobs: invalid job id %q", id)
	}
	return os.ReadFile(filepath.Join(s.dir(id), resultFile))
}

// Delete removes a job directory entirely.
func (s *Store) Delete(id string) error {
	if !validID(id) {
		return fmt.Errorf("jobs: invalid job id %q", id)
	}
	if err := s.fs.RemoveAll(s.dir(id)); err != nil {
		return fmt.Errorf("jobs: delete %s: %w", id, err)
	}
	return s.syncPath(s.root)
}

// readJSON strictly decodes one whole JSON file.
func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("jobs: read %s: %w", filepath.Base(path), err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("jobs: parse %s: %w", filepath.Base(path), err)
	}
	return nil
}
