//go:build chaos

package jobs

// The chaos harness exercises the crash-safety claims against the real
// binary, not a test double: it builds `cryowire`, boots `cryowire
// serve -jobs-dir`, SIGKILLs the process mid-job (no drain, no
// warning — the kernel just takes it), restarts it on the same store,
// and asserts the recovered frontier is byte-identical to an
// uninterrupted in-process run of the same spec. A second test pushes
// a >4096-candidate search through the async API, which the
// synchronous endpoint refuses.
//
// These tests fork processes and run multi-second searches, so they
// hide behind the `chaos` build tag and run in their own CI step:
//
//	go test -tags chaos -run TestChaos ./internal/jobs/

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cryowire/internal/dse"
	"cryowire/internal/platform"
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// chaosBinary builds the cryowire binary once per test run.
func chaosBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cryowire-chaos-")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "cryowire")
		out, err := exec.Command("go", "build", "-o", buildBin, "cryowire/cmd/cryowire").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

// serveProc is one `cryowire serve` incarnation.
type serveProc struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:port
}

// startServe boots the binary on a random port over jobsDir and waits
// until it reports its bound address and passes /readyz.
func startServe(t *testing.T, bin, jobsDir string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin, "serve", "-addr", "127.0.0.1:0", "-jobs-dir", jobsDir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening addr="); i >= 0 {
				addr := strings.Fields(line[i+len("listening addr="):])[0]
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("serve did not report a listen address")
	}
	p := &serveProc{cmd: cmd, base: "http://" + addr}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(p.base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return p
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("serve never became ready")
	return nil
}

// kill9 SIGKILLs the process — the crash under test, not a shutdown.
func (p *serveProc) kill9() {
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// terminate ends the process politely at test cleanup.
func (p *serveProc) terminate() {
	p.cmd.Process.Signal(os.Interrupt)
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		p.cmd.Process.Kill()
		<-done
	}
}

// httpJSON issues one request and decodes the JSON response into v.
func httpJSON(t *testing.T, method, url, body string, v any) int {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("decode %s %s (%d): %v\n%s", method, url, resp.StatusCode, err, raw)
		}
	}
	return resp.StatusCode
}

// pollUntil polls the job until cond holds or the deadline passes.
func pollUntil(t *testing.T, base, id string, timeout time.Duration, cond func(State) bool) State {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var st State
	for time.Now().Before(deadline) {
		if code := httpJSON(t, "GET", base+"/v1/dse/jobs/"+id, "", &st); code != 200 {
			t.Fatalf("poll status %d", code)
		}
		if cond(st) {
			return st
		}
		if st.Status == StatusFailed {
			t.Fatalf("job failed: %s", st.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out polling job %s (last state %+v)", id, st)
	return State{}
}

// TestChaosKillMidJobResumesByteIdentical is the headline crash test:
// SIGKILL the server mid-search, restart it on the same store, and the
// finished frontier must be byte-identical to an uninterrupted run.
func TestChaosKillMidJobResumesByteIdentical(t *testing.T) {
	bin := chaosBinary(t)
	jobsDir := filepath.Join(t.TempDir(), "jobs")

	p1 := startServe(t, bin, jobsDir)
	// 16 quick-space candidates on one worker. Progress is journaled
	// per evaluation, so the 25ms poll below sees the first completed
	// candidate (~0.4s in) long before the remaining fifteen finish —
	// the kill reliably lands mid-job.
	body := `{"quick": true, "workers": 1,
		"config": {"warmup_cycles": 20000, "measure_cycles": 100000}}`
	var st State
	if code := httpJSON(t, "POST", p1.base+"/v1/dse/jobs", body, &st); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}

	// Wait until real progress exists, then pull the plug.
	mid := pollUntil(t, p1.base, st.ID, time.Minute, func(s State) bool { return s.Evaluated >= 1 })
	if mid.Status == StatusDone {
		t.Fatalf("job finished before the kill (evaluated %d); grow the cycle counts", mid.Evaluated)
	}
	p1.kill9()

	// The corpse: state.json still claims the job is running.
	onDisk, err := os.ReadFile(filepath.Join(jobsDir, st.ID, stateFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(onDisk, []byte(`"running"`)) {
		t.Fatalf("expected crashed job to be on disk as running, got:\n%s", onDisk)
	}

	// Restart on the same store; recovery must resume it unprompted.
	p2 := startServe(t, bin, jobsDir)
	defer p2.terminate()
	fin := pollUntil(t, p2.base, st.ID, 5*time.Minute, func(s State) bool { return s.Status == StatusDone })
	if fin.Evaluated != 16 {
		t.Fatalf("recovered job evaluated %d, want 16", fin.Evaluated)
	}

	resp, err := http.Get(p2.base + "/v1/dse/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("result status %d err %v", resp.StatusCode, err)
	}

	// Reference: the same spec run uninterrupted, in-process.
	var sp Spec
	if b, err := os.ReadFile(filepath.Join(jobsDir, st.ID, specFile)); err != nil {
		t.Fatal(err)
	} else if err := json.Unmarshal(b, &sp); err != nil {
		t.Fatal(err)
	}
	cfg, err := sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Platform = platform.New()
	res, err := dse.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered frontier is not byte-identical to an uninterrupted run:\ngot:  %s\nwant: %s", got, want)
	}

	// The restart counted the recovery.
	mresp, err := http.Get(p2.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "cryowire_jobs_resumed_total 1") {
		t.Fatal("metrics do not show the resumed job")
	}
}

// TestChaosLargeJobBeyondSyncCap drives a search past the synchronous
// endpoint's 4096-candidate cap through the async API and completes it.
func TestChaosLargeJobBeyondSyncCap(t *testing.T) {
	bin := chaosBinary(t)
	jobsDir := filepath.Join(t.TempDir(), "jobs")
	p := startServe(t, bin, jobsDir)
	defer p.terminate()

	// 20 temps x 2 modes x 4 depths x 2 nets x 13 workloads = 4160
	// candidates with minimal per-candidate simulations.
	body := `{"quick": true,
		"temps_k": [300, 290, 280, 270, 260, 250, 240, 230, 220, 210,
		            200, 190, 180, 170, 160, 150, 140, 120, 100, 77],
		"depths": [14, 15, 16, 17],
		"workloads": ["blackscholes", "bodytrack", "canneal", "dedup",
		              "facesim", "ferret", "fluidanimate", "freqmine",
		              "raytrace", "streamcluster", "swaptions", "vips", "x264"],
		"config": {"warmup_cycles": 100, "measure_cycles": 200}}`

	// The synchronous endpoint refuses it.
	var errBody struct {
		Error string `json:"error"`
	}
	if code := httpJSON(t, "POST", p.base+"/v1/dse", body, &errBody); code != http.StatusBadRequest {
		t.Fatalf("sync accepted %d candidates: status %d", 4160, code)
	}

	var st State
	if code := httpJSON(t, "POST", p.base+"/v1/dse/jobs", body, &st); code != http.StatusAccepted {
		t.Fatalf("async submit status %d", code)
	}
	if st.Total != 4160 {
		t.Fatalf("job total = %d, want 4160", st.Total)
	}
	fin := pollUntil(t, p.base, st.ID, 10*time.Minute, func(s State) bool { return s.Status == StatusDone })
	if fin.Evaluated != 4160 {
		t.Fatalf("evaluated %d of 4160", fin.Evaluated)
	}

	resp, err := http.Get(p.base + "/v1/dse/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var res dse.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("result parse: %v", err)
	}
	if res.Evaluated != 4160 || res.SpaceSize != 4160 || len(res.Frontier) == 0 {
		t.Fatalf("result evaluated=%d space=%d frontier=%d", res.Evaluated, res.SpaceSize, len(res.Frontier))
	}
}
