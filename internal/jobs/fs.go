package jobs

import (
	"fmt"
	"os"
	"path/filepath"
)

// fsOps abstracts the handful of syscalls the store's crash-safety
// argument rests on, so tests can fail any of them at any point
// (store-level fault injection). Production uses realFS; every field
// must be non-nil.
type fsOps struct {
	WriteFile func(name string, data []byte) error // create + write + close, no sync
	Sync      func(f *os.File) error
	Rename    func(oldpath, newpath string) error
	Remove    func(name string) error
	RemoveAll func(path string) error
	MkdirAll  func(path string, perm os.FileMode) error
}

// realFS is the production syscall set.
func realFS() fsOps {
	return fsOps{
		WriteFile: func(name string, data []byte) error { return os.WriteFile(name, data, 0o644) },
		Sync:      func(f *os.File) error { return f.Sync() },
		Rename:    os.Rename,
		Remove:    os.Remove,
		RemoveAll: os.RemoveAll,
		MkdirAll:  os.MkdirAll,
	}
}

// tmpPrefix marks in-progress writes; the store scanner skips and
// sweeps anything carrying it, so a crash mid-write never surfaces a
// half-written file or directory as real state.
const tmpPrefix = ".tmp-"

// atomicWrite persists data at dir/name with full-crash atomicity:
// write to a same-directory temp file, fsync the file, rename over the
// destination, fsync the directory so the rename itself is durable.
// Readers therefore see either the old complete content or the new
// complete content, never a prefix.
func (s *Store) atomicWrite(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, tmpPrefix+name)
	if err := s.fs.WriteFile(tmp, data); err != nil {
		return fmt.Errorf("jobs: write %s: %w", tmp, err)
	}
	if err := s.syncPath(tmp); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("jobs: sync %s: %w", tmp, err)
	}
	dst := filepath.Join(dir, name)
	if err := s.fs.Rename(tmp, dst); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("jobs: rename %s: %w", name, err)
	}
	if err := s.syncPath(dir); err != nil {
		return fmt.Errorf("jobs: sync dir %s: %w", dir, err)
	}
	return nil
}

// syncPath fsyncs a file or directory by path through the injectable
// Sync hook.
func (s *Store) syncPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.fs.Sync(f)
}
