package stage

import (
	"context"
	"math"
	"strings"
	"testing"

	"cryowire/internal/phys"
	"cryowire/internal/platform"
	"cryowire/internal/sim"
)

func TestHeatLeakAnchors(t *testing.T) {
	// The BeCu calibration anchor: one 1 m lane, 300 K → 4 K ≈ 8.3 mW.
	q, err := HeatLeak(BeCuCoax, phys.T300, phys.T4, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q < 7e-3 || q > 9e-3 {
		t.Fatalf("BeCu 1 m 300→4 K leak = %v W, want ≈ 8.3 mW", q)
	}
	// Lanes scale linearly; length divides.
	q64, _ := HeatLeak(BeCuCoax, phys.T300, phys.T4, 1.0, 64)
	if math.Abs(q64-64*q) > 1e-12 {
		t.Fatalf("64 lanes = %v, want %v", q64, 64*q)
	}
	q2m, _ := HeatLeak(BeCuCoax, phys.T300, phys.T4, 2.0, 1)
	if math.Abs(q2m-q/2) > 1e-12 {
		t.Fatalf("2 m leak = %v, want %v", q2m, q/2)
	}
	// Zero gradient leaks nothing; materials order by conductivity.
	if q0, _ := HeatLeak(BeCuCoax, phys.T77, phys.T77, 1.0, 8); q0 != 0 {
		t.Fatalf("zero-gradient leak = %v, want 0", q0)
	}
	ss, _ := HeatLeak(StainlessCoax, phys.T300, phys.T4, 1.0, 1)
	nb, _ := HeatLeak(NbTiCoax, phys.T300, phys.T4, 1.0, 1)
	cu, _ := HeatLeak(CopperLoom, phys.T300, phys.T4, 1.0, 1)
	if !(nb < ss && ss < q && q < cu) {
		t.Fatalf("material ordering broken: NbTi %v, SS %v, BeCu %v, Cu %v", nb, ss, q, cu)
	}
}

func TestHeatLeakErrors(t *testing.T) {
	cases := []struct {
		name   string
		mat    CableMaterial
		hot    phys.Kelvin
		cold   phys.Kelvin
		length float64
		lanes  int
	}{
		{"unknown material", "unobtainium", 300, 4, 1, 1},
		{"zero length", BeCuCoax, 300, 4, 0, 1},
		{"negative length", BeCuCoax, 300, 4, -1, 1},
		{"NaN length", BeCuCoax, 300, 4, math.NaN(), 1},
		{"Inf length", BeCuCoax, 300, 4, math.Inf(1), 1},
		{"zero lanes", BeCuCoax, 300, 4, 1, 0},
		{"inverted gradient", BeCuCoax, 4, 300, 1, 1},
		{"non-positive cold", BeCuCoax, 300, 0, 1, 1},
		{"NaN hot", BeCuCoax, phys.Kelvin(math.NaN()), 4, 1, 1},
		{"Inf hot", BeCuCoax, phys.Kelvin(math.Inf(1)), 4, 1, 1},
	}
	for _, tc := range cases {
		if _, err := HeatLeak(tc.mat, tc.hot, tc.cold, tc.length, tc.lanes); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestSystemWallPower(t *testing.T) {
	// Hand-built two-stage system: 100 W at 300 K, 10 W at 77 K, one
	// 64-lane BeCu trunk.
	cable := chainCable(phys.T300, phys.T77, true)
	sys := &System{
		Stages: []Stage{
			{Name: "warm", TempK: phys.T300, Components: []Component{{Name: "host", DeviceWatts: 100}}},
			{Name: "cold", TempK: phys.T77, Components: []Component{{Name: "tier", DeviceWatts: 10}}},
		},
		Cables: []Cable{cable},
	}
	stages, total, err := sys.WallPower()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 2 {
		t.Fatalf("got %d breakdowns", len(stages))
	}
	warm, cold := stages[0], stages[1]
	if warm.WallWatts != 100 || warm.CoolingOverhead != 0 {
		t.Fatalf("warm stage pays cooling: %+v", warm)
	}
	leak, _ := cable.Leak()
	wantHeat := 10 + leak + cable.SignalWatts
	if math.Abs(cold.HeatloadWatts-wantHeat) > 1e-12 {
		t.Fatalf("cold heatload = %v, want %v", cold.HeatloadWatts, wantHeat)
	}
	co := phys.DefaultCooling().Overhead(phys.T77)
	if math.Abs(cold.WallWatts-wantHeat*(1+co)) > 1e-9 {
		t.Fatalf("cold wall = %v, want %v", cold.WallWatts, wantHeat*(1+co))
	}
	if math.Abs(total-(warm.WallWatts+cold.WallWatts)) > 1e-9 {
		t.Fatalf("total %v != sum of stages", total)
	}
}

func TestSystemValidate(t *testing.T) {
	bad := []*System{
		{},
		{Stages: []Stage{{Name: "s", TempK: -4}}},
		{Stages: []Stage{{Name: "s", TempK: 300, Components: []Component{{Name: "c", DeviceWatts: -1}}}}},
		{Stages: []Stage{{Name: "s", TempK: 300}},
			Cables: []Cable{{Name: "c", Material: BeCuCoax, HotK: 300, ColdK: 77, LengthM: 1, Lanes: 1}}},
		{Stages: []Stage{{Name: "s", TempK: 300}},
			Cables: []Cable{{Name: "c", Material: "nope", HotK: 300, ColdK: 300, LengthM: 1, Lanes: 1}}},
	}
	for i, sys := range bad {
		if err := sys.Validate(); err == nil {
			t.Errorf("case %d: invalid system validated", i)
		}
	}
}

func TestBuildSystemChain(t *testing.T) {
	// 77+4 K split: three stages, two cables, chain 300 → 77 → 4.
	sys, err := BuildSystem(Assignment{Name: "split", TierK: 4, MemK: 77}, 50, DefaultWattsPerUnit)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Stages) != 3 || len(sys.Cables) != 2 {
		t.Fatalf("split: %d stages / %d cables, want 3/2", len(sys.Stages), len(sys.Cables))
	}
	if sys.Cables[0].HotK != 300 || sys.Cables[0].ColdK != 77 || sys.Cables[1].HotK != 77 || sys.Cables[1].ColdK != 4 {
		t.Fatalf("chain wrong: %+v", sys.Cables)
	}
	// Merged case: tier and memory share the 77 K stage.
	sys, err = BuildSystem(Assignment{Name: "77", TierK: 77, MemK: 77}, 50, DefaultWattsPerUnit)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Stages) != 2 || len(sys.Cables) != 1 {
		t.Fatalf("77K: %d stages / %d cables, want 2/1", len(sys.Stages), len(sys.Cables))
	}
	if got := len(sys.Stages[1].Components); got != 2 {
		t.Fatalf("merged cold stage has %d components, want memory+tier", got)
	}
	// Everything warm: one stage, no cables.
	sys, err = BuildSystem(Assignment{Name: "warm", TierK: 300, MemK: 300}, 50, DefaultWattsPerUnit)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Stages) != 1 || len(sys.Cables) != 0 {
		t.Fatalf("warm: %d stages / %d cables, want 1/0", len(sys.Stages), len(sys.Cables))
	}
}

func TestAssignmentValidate(t *testing.T) {
	for _, a := range DefaultAssignments() {
		if err := a.Validate(); err != nil {
			t.Errorf("default assignment %s invalid: %v", a.Name, err)
		}
	}
	// CryoCache-style cold memory under a warmer tier is expressible.
	if err := (Assignment{Name: "cold-mem", TierK: 300, MemK: 77}).Validate(); err != nil {
		t.Errorf("cold-memory assignment rejected: %v", err)
	}
	bad := []Assignment{
		{Name: "hot", TierK: 400, MemK: 300},
		{Name: "zero", TierK: 0, MemK: 77},
		{Name: "nan", TierK: math.NaN(), MemK: 77},
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("assignment %s validated", a.Name)
		}
	}
}

func TestTierWallStagedVsFlat(t *testing.T) {
	cool := phys.DefaultCooling()
	// All-warm: staged lift degenerates to the identity.
	_, wall, err := TierWall(cool, 120, 300, 300)
	if err != nil {
		t.Fatal(err)
	}
	if wall != 120 {
		t.Fatalf("300 K tier wall = %v, want 120 (no cooling)", wall)
	}
	// Cold tier: staged wall exceeds the flat (1+CO) lift — the cables
	// always add heat, never remove it.
	stages, wall77, err := TierWall(cool, 120, 77, 77)
	if err != nil {
		t.Fatal(err)
	}
	flat := 120 * (1 + cool.Overhead(phys.T77))
	if wall77 <= flat {
		t.Fatalf("staged 77 K wall %v not above flat lift %v", wall77, flat)
	}
	if len(stages) != 2 {
		t.Fatalf("77 K tier: %d stages, want host + cold", len(stages))
	}
	// The 4 K acceptance ratio: per device watt, the 4 K stage pays
	// ~25× the 77 K stage's overhead.
	stages4, _, err := TierWall(cool, 120, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	var co4, co77 float64
	for _, s := range stages4 {
		switch s.TempK {
		case 4:
			co4 = s.CoolingOverhead
		case 77:
			co77 = s.CoolingOverhead
		}
	}
	if r := co4 / co77; r < 24 || r > 27 {
		t.Fatalf("CO(4K)/CO(77K) = %v, want ≈ 25×", r)
	}
}

// TestSweepQuick runs the three canonical assignments end to end with
// short sim cycles and checks the acceptance-criteria shape: three
// reports, 4 K stage paying ~25× the 77 K overhead, byte-stable JSON.
func TestSweepQuick(t *testing.T) {
	opt := SweepOptions{
		Platform: platform.New(),
		Sim:      sim.Config{WarmupCycles: 1200, MeasureCycles: 5000, Seed: 1},
		Workers:  2,
	}
	res, err := Sweep(context.Background(), nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 3 {
		t.Fatalf("got %d assignments, want 3", len(res.Assignments))
	}
	for _, a := range res.Assignments {
		if a.Performance <= 0 || a.WallWatts <= 0 || a.PerfPerWatt <= 0 {
			t.Fatalf("assignment %s has non-positive metrics: %+v", a.Name, a)
		}
	}
	warm, split := res.Assignments[0], res.Assignments[2]
	if warm.Name != "all-300K" || split.Name != "77K+4K-split" {
		t.Fatalf("unexpected order: %s, %s", warm.Name, split.Name)
	}
	// The cryogenic tiers must out-clock the warm baseline...
	if res.Assignments[1].FreqGHz <= warm.FreqGHz || split.FreqGHz <= warm.FreqGHz {
		t.Fatal("cryogenic tiers do not out-clock the 300 K baseline")
	}
	// ...and the 4 K split must pay a far larger wall bill than 77 K.
	if split.WallWatts <= res.Assignments[1].WallWatts {
		t.Fatal("4 K split not paying more wall power than the 77 K system")
	}
	var co4 float64
	for _, s := range split.Stages {
		if s.TempK == 4 {
			co4 = s.CoolingOverhead
		}
	}
	if co4 < 240 || co4 > 250 {
		t.Fatalf("4 K stage CO = %v, want ≈ 246.7", co4)
	}

	// Determinism: a second sweep over the same inputs produces
	// byte-identical JSON.
	res2, err := Sweep(context.Background(), nil, SweepOptions{
		Platform: platform.New(),
		Sim:      sim.Config{WarmupCycles: 1200, MeasureCycles: 5000, Seed: 1},
		Workers:  1, Lanes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := res2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatal("sweep JSON not byte-identical across worker/lane counts")
	}
	if !strings.Contains(res.Render(), "per-stage heatload breakdown") {
		t.Fatal("Render missing breakdown section")
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := Sweep(context.Background(), nil, SweepOptions{Workload: "no-such-workload"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	bad := []Assignment{{Name: "bad", TierK: -1, MemK: 77}}
	if _, err := Sweep(context.Background(), bad, SweepOptions{}); err == nil {
		t.Fatal("invalid assignment accepted")
	}
}
