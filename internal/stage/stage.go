// Package stage models a computing system split across cryogenic
// temperature stages — the multi-stage extension the ROADMAP's
// north-star question needs ("does CryoSP+CryoBus survive at 4 K once
// cooling overhead bites?"). Components (host, CryoSP tier, memory)
// are assigned to stages (300 K / 77 K / 4 K); stages are connected by
// cryogenic cables whose passive heat leak and signal dissipation are
// charged to the *colder* stage; and each stage's total heatload is
// lifted to wall power through its own Carnot-fraction cooling
// overhead. Because CO(4 K) ≈ 25× CO(77 K), stage assignment — not
// device power — dominates system perf/W, which is exactly the
// trade-off the Sweep scenarios quantify with full simulation.
package stage

import (
	"fmt"
	"math"

	"cryowire/internal/phys"
)

// Component is one heat source assigned to a stage. DeviceWatts is in
// the same absolute watts as the cable model; scenario evaluation
// converts the power model's relative units with WattsPerUnit.
type Component struct {
	Name        string  `json:"name"`
	DeviceWatts float64 `json:"device_watts"`
}

// Stage is one temperature stage of the cryostat with the components
// it hosts.
type Stage struct {
	// Name labels the stage in reports ("300K host", "4K tier", ...).
	Name string `json:"name"`
	// TempK is the stage temperature.
	TempK phys.Kelvin `json:"temp_k"`
	// Components are the heat sources mounted on this stage.
	Components []Component `json:"components"`
}

// DeviceWatts sums the stage's component heat.
func (s Stage) DeviceWatts() float64 {
	var sum float64
	for _, c := range s.Components {
		sum += c.DeviceWatts
	}
	return sum
}

// Cable is one bundle of signal lanes spanning two stages. Both its
// passive conduction leak (HeatLeak) and the dissipation of its signal
// drivers (SignalWatts) are charged to the colder stage: the line
// terminates there, so that is where the heat must be pumped out from.
type Cable struct {
	// Name labels the cable in reports ("host↔tier", ...).
	Name string `json:"name"`
	// Material selects the κA row of the material table.
	Material CableMaterial `json:"material"`
	// HotK and ColdK are the flange temperatures at the two ends.
	HotK  phys.Kelvin `json:"hot_k"`
	ColdK phys.Kelvin `json:"cold_k"`
	// LengthM is the cable run length in meters.
	LengthM float64 `json:"length_m"`
	// Lanes is the number of signal lanes in the bundle.
	Lanes int `json:"lanes"`
	// SignalWatts is the total signal-driver dissipation of the bundle,
	// charged to the cold end.
	SignalWatts float64 `json:"signal_watts"`
}

// Leak returns the cable's passive conduction heatload in watts.
func (c Cable) Leak() (float64, error) {
	return HeatLeak(c.Material, c.HotK, c.ColdK, c.LengthM, c.Lanes)
}

// System is a full temperature-staged machine: stages plus the cables
// connecting them, under one cooling model.
type System struct {
	// Cooling lifts per-stage heatloads to wall power. The zero value
	// is replaced by phys.DefaultCooling.
	Cooling phys.CoolingModel `json:"-"`
	// Stages are the temperature stages, warmest first by convention.
	Stages []Stage `json:"stages"`
	// Cables connect the stages.
	Cables []Cable `json:"cables"`
}

// Breakdown is one stage's share of the wall-power bill.
type Breakdown struct {
	Stage string  `json:"stage"`
	TempK float64 `json:"temp_k"`
	// DeviceWatts is the component heat mounted on the stage.
	DeviceWatts float64 `json:"device_watts"`
	// CableLeakWatts is the passive conduction arriving from warmer
	// stages through every cable whose cold end lands here.
	CableLeakWatts float64 `json:"cable_leak_watts"`
	// CableSignalWatts is the signal-driver dissipation charged here.
	CableSignalWatts float64 `json:"cable_signal_watts"`
	// HeatloadWatts = device + leak + signal: what the stage's cooler
	// must pump.
	HeatloadWatts float64 `json:"heatload_watts"`
	// CoolingOverhead is CO(TempK) — compressor watts per pumped watt.
	CoolingOverhead float64 `json:"cooling_overhead"`
	// WallWatts = Heatload · (1 + CO): the stage's grid draw.
	WallWatts float64 `json:"wall_watts"`
}

// Validate checks the system is well-formed: at least one stage,
// physical stage temperatures the cooling model can serve, valid
// cables whose cold ends land on actual stages.
func (sys *System) Validate() error {
	if len(sys.Stages) == 0 {
		return fmt.Errorf("stage: system has no stages")
	}
	temps := make(map[phys.Kelvin]bool, len(sys.Stages))
	for _, s := range sys.Stages {
		if err := phys.ValidTemperature(s.TempK); err != nil {
			return fmt.Errorf("stage: %s: %w", s.Name, err)
		}
		for _, c := range s.Components {
			if math.IsNaN(c.DeviceWatts) || c.DeviceWatts < 0 {
				return fmt.Errorf("stage: %s: component %s has invalid power %v", s.Name, c.Name, c.DeviceWatts)
			}
		}
		temps[s.TempK] = true
	}
	for _, c := range sys.Cables {
		if _, err := c.Leak(); err != nil {
			return fmt.Errorf("stage: cable %s: %w", c.Name, err)
		}
		if math.IsNaN(c.SignalWatts) || c.SignalWatts < 0 {
			return fmt.Errorf("stage: cable %s has invalid signal power %v", c.Name, c.SignalWatts)
		}
		if !temps[c.ColdK] {
			return fmt.Errorf("stage: cable %s cold end at %v K matches no stage", c.Name, c.ColdK)
		}
	}
	return nil
}

// cooling returns the configured cooling model, defaulting the zero
// value to the paper's 30 %-of-Carnot plant.
func (sys *System) cooling() phys.CoolingModel {
	if sys.Cooling.CarnotFraction == 0 {
		return phys.DefaultCooling()
	}
	return sys.Cooling
}

// WallPower computes the per-stage breakdown and the system's total
// wall power in watts. Cable leak and signal heat are charged to the
// stage at each cable's cold end; every stage's heatload is then
// lifted by its own CO(T).
func (sys *System) WallPower() ([]Breakdown, float64, error) {
	if err := sys.Validate(); err != nil {
		return nil, 0, err
	}
	cool := sys.cooling()
	out := make([]Breakdown, len(sys.Stages))
	var total float64
	for i, s := range sys.Stages {
		b := Breakdown{
			Stage:           s.Name,
			TempK:           float64(s.TempK),
			DeviceWatts:     s.DeviceWatts(),
			CoolingOverhead: cool.Overhead(s.TempK),
		}
		for _, c := range sys.Cables {
			if c.ColdK != s.TempK {
				continue
			}
			leak, err := c.Leak()
			if err != nil {
				return nil, 0, fmt.Errorf("stage: cable %s: %w", c.Name, err)
			}
			b.CableLeakWatts += leak
			b.CableSignalWatts += c.SignalWatts
		}
		b.HeatloadWatts = b.DeviceWatts + b.CableLeakWatts + b.CableSignalWatts
		b.WallWatts = cool.TotalPower(b.HeatloadWatts, s.TempK)
		out[i] = b
		total += b.WallWatts
	}
	return out, total, nil
}
