package stage

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cryowire/internal/phys"
)

// CableMaterial names a cryogenic cable construction in the material
// table. The estimator follows the heatload-budget style of practical
// cryostat wiring calculators: each material carries an effective
// thermal conductance·area product κA (W·m/K) per signal lane, and a
// lane conducts
//
//	Q = κA · (T_hot − T_cold) / length
//
// watts of passive heat from the warm flange into the cold stage.
// Longer cables leak *less* (conduction ∝ 1/L); the price of length is
// paid in signal integrity and delay, not heat.
type CableMaterial string

// Cable material table.
const (
	// BeCuCoax is the beryllium-copper coax commonly used for microwave
	// drive lines: moderate conductivity, good RF performance. The κA
	// calibration anchor: one 1 m lane spanning 300 K → 4 K leaks
	// ≈ 8.3 mW, the per-line budget practical 4 K cryostats plan around.
	BeCuCoax CableMaterial = "becu-coax"
	// StainlessCoax is lossy stainless-steel coax: ~4× less conductive
	// than BeCu, used where signal loss is tolerable.
	StainlessCoax CableMaterial = "stainless-coax"
	// NbTiCoax is superconducting NbTi coax for the coldest segments:
	// negligible electronic conduction below its transition, only the
	// jacket and dielectric conduct.
	NbTiCoax CableMaterial = "nbti-coax"
	// CopperLoom is a plain copper wire loom — the warm-side default and
	// the cautionary row of every heatload budget: ~40× worse than BeCu.
	CopperLoom CableMaterial = "copper-loom"
)

// kappaA is the per-lane effective κA in W·m/K. The BeCu value is
// calibrated so a 1 m 300→4 K lane leaks 8.3 mW (see BeCuCoax); the
// others are scaled by their conductivity ratios.
var kappaA = map[CableMaterial]float64{
	BeCuCoax:      2.8e-5,
	StainlessCoax: 7.0e-6,
	NbTiCoax:      7.5e-7,
	CopperLoom:    1.1e-3,
}

// Materials lists the supported cable materials in canonical order.
func Materials() []CableMaterial {
	out := make([]CableMaterial, 0, len(kappaA))
	for m := range kappaA {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Valid reports whether the material is in the table.
func (m CableMaterial) Valid() error {
	if _, ok := kappaA[m]; !ok {
		names := make([]string, 0, len(kappaA))
		for _, k := range Materials() {
			names = append(names, string(k))
		}
		return fmt.Errorf("stage: unknown cable material %q (have %s)", m, strings.Join(names, ", "))
	}
	return nil
}

// HeatLeak returns the passive conduction heatload, in watts, that a
// cable of the material with `lanes` signal lanes and the given length
// deposits on its cold (T = coldK) end when the warm end sits at hotK.
// The leak is charged entirely to the colder stage — the warm flange
// is a heat sink, not a load.
//
// Errors: unknown material, non-positive length or lane count,
// non-finite or unphysical temperatures, or an inverted gradient
// (coldK > hotK). A zero gradient (coldK == hotK) leaks nothing.
func HeatLeak(m CableMaterial, hotK, coldK phys.Kelvin, lengthM float64, lanes int) (float64, error) {
	if err := m.Valid(); err != nil {
		return 0, err
	}
	if math.IsNaN(lengthM) || math.IsInf(lengthM, 0) || lengthM <= 0 {
		return 0, fmt.Errorf("stage: non-positive cable length %v m", lengthM)
	}
	if lanes < 1 {
		return 0, fmt.Errorf("stage: cable needs ≥1 lane, have %d", lanes)
	}
	if err := phys.ValidTemperature(hotK); err != nil {
		return 0, err
	}
	if err := phys.ValidTemperature(coldK); err != nil {
		return 0, err
	}
	if math.IsInf(float64(hotK), 0) || math.IsInf(float64(coldK), 0) {
		return 0, fmt.Errorf("stage: non-finite cable temperature (hot=%v cold=%v)", hotK, coldK)
	}
	if coldK > hotK {
		return 0, fmt.Errorf("stage: inverted cable gradient (hot %v K < cold %v K)", hotK, coldK)
	}
	return kappaA[m] * float64(lanes) * float64(hotK-coldK) / lengthM, nil
}
