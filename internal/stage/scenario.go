package stage

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"cryowire/internal/mem"
	"cryowire/internal/phys"
	"cryowire/internal/pipeline"
	"cryowire/internal/platform"
	"cryowire/internal/power"
	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

// nocPowerShare scales relative NoC power into core-relative units
// when composing tier device power — the same minority-share weighting
// the DSE evaluator uses (Fig 22 discussion).
const nocPowerShare = 0.15

// nocPowerKind maps the tier's interconnect onto the Fig 22 power
// design whose voltage/activity recipe it runs.
func nocPowerKind(tierK float64, net sim.NetKind) power.NoCKind {
	switch net {
	case sim.SharedBus:
		return power.SharedBus77
	case sim.CryoBus, sim.CryoBus2Way:
		return power.CryoBus77
	default:
		if tierK < 300 {
			return power.Mesh77
		}
		return power.Mesh300
	}
}

// Assignment places the movable components of the target system onto
// temperature stages. The host (I/O, clocking, service processor)
// always stays at 300 K; the CryoSP tier (cores + NoC) and the memory
// hierarchy each pick a stage.
type Assignment struct {
	// Name labels the assignment in reports.
	Name string `json:"name"`
	// TierK is the CryoSP-tier (cores + NoC) stage temperature.
	TierK float64 `json:"tier_k"`
	// MemK is the memory-hierarchy stage temperature.
	MemK float64 `json:"mem_k"`
}

// DefaultAssignments returns the three canonical stage assignments the
// acceptance study compares: everything warm, the paper's 77 K CryoSP
// system, and the liquid-helium split that answers the 4 K question.
func DefaultAssignments() []Assignment {
	return []Assignment{
		{Name: "all-300K", TierK: 300, MemK: 300},
		{Name: "77K-cryosp", TierK: 77, MemK: 77},
		{Name: "77K+4K-split", TierK: 4, MemK: 77},
	}
}

// Validate checks the assignment: physical temperatures no warmer
// than the 300 K host. Tier and memory may sit in either order — the
// cable chain runs warmest-to-coldest through whatever stages exist
// (a CryoCache-style cold-memory/warm-core split is as expressible as
// the cold-tier split).
func (a Assignment) Validate() error {
	for _, t := range []float64{a.TierK, a.MemK} {
		if err := phys.ValidTemperature(phys.Kelvin(t)); err != nil {
			return fmt.Errorf("stage: assignment %s: %w", a.Name, err)
		}
		if t > 300 {
			return fmt.Errorf("stage: assignment %s: stage at %g K above the 300 K host", a.Name, t)
		}
	}
	return nil
}

// Absolute-watts conversion and the canonical cable plant. The power
// model works in units of the 300 K baseline core's device power;
// cable heat is physical milliwatts, so the staged model needs a
// scale: one relative unit ≈ a 100 W 64-core package.
const (
	// DefaultWattsPerUnit converts power-model relative units to watts.
	DefaultWattsPerUnit = 100.0

	// hostShare and memShare are the host and memory device powers in
	// relative units. The host electronics are a quarter of the
	// baseline package; the memory hierarchy (L3 + DRAM io) a third.
	// Both are held temperature-independent — activate/IO energy
	// dominates and the paper's memory speedups come from latency, not
	// power, scaling.
	hostShare = 0.25
	memShare  = 0.30

	// The host↔cold trunk: one BeCu coax lane per core, a 1 m run from
	// the 300 K flange. The intra-cryostat mem↔tier link is shorter and
	// wider (a data bus, not a control trunk).
	hostCableLanes = 64
	hostCableLenM  = 1.0
	memCableLanes  = 128
	memCableLenM   = 0.30

	// signalWattsPerLane is the driver dissipation charged to each
	// lane's cold termination.
	signalWattsPerLane = 2e-3
)

// chainCable builds the canonical cable for one hop of the cooling
// chain. The first hop (from the 300 K flange) is the host trunk;
// colder hops are the wide short memory link.
func chainCable(hotK, coldK phys.Kelvin, fromHost bool) Cable {
	c := Cable{
		Name:     fmt.Sprintf("%gK->%gK", float64(hotK), float64(coldK)),
		Material: BeCuCoax,
		HotK:     hotK,
		ColdK:    coldK,
		LengthM:  memCableLenM,
		Lanes:    memCableLanes,
	}
	if fromHost {
		c.LengthM = hostCableLenM
		c.Lanes = hostCableLanes
	}
	c.SignalWatts = float64(c.Lanes) * signalWattsPerLane
	return c
}

// BuildSystem constructs the temperature-staged System of an
// assignment: a host stage at 300 K, plus stages for the memory and
// tier temperatures (merged when equal), sorted warmest-to-coldest
// and connected by the canonical cable chain. tierWatts is the CryoSP
// tier's device power in watts; host and memory components are the
// fixed shares scaled by wattsPerUnit (pass 0 to omit them — the DSE
// uses that to lift tier-only device power).
func BuildSystem(a Assignment, tierWatts, wattsPerUnit float64) (*System, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	byTemp := map[float64][]Component{
		300: {{Name: "host", DeviceWatts: hostShare * wattsPerUnit}},
	}
	byTemp[a.MemK] = append(byTemp[a.MemK], Component{Name: "memory", DeviceWatts: memShare * wattsPerUnit})
	byTemp[a.TierK] = append(byTemp[a.TierK], Component{Name: "cryosp-tier", DeviceWatts: tierWatts})
	temps := make([]float64, 0, len(byTemp))
	for t := range byTemp {
		temps = append(temps, t)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(temps)))
	sys := &System{}
	for i, t := range temps {
		name := fmt.Sprintf("%gK host", t)
		if t != 300 {
			var roles []string
			for _, c := range byTemp[t] {
				switch c.Name {
				case "memory":
					roles = append(roles, "memory")
				case "cryosp-tier":
					roles = append(roles, "tier")
				}
			}
			name = fmt.Sprintf("%gK %s", t, strings.Join(roles, "+"))
		}
		sys.Stages = append(sys.Stages, Stage{Name: name, TempK: phys.Kelvin(t), Components: byTemp[t]})
		if i > 0 {
			sys.Cables = append(sys.Cables,
				chainCable(sys.Stages[i-1].TempK, sys.Stages[i].TempK, i == 1))
		}
	}
	return sys, nil
}

// TierWall lifts a tier device power (in watts) through the staged
// cooling chain of an assignment — host and memory device components
// omitted, cables included — and returns the per-stage breakdown plus
// total wall watts. This is the staged replacement for the flat
// P·(1+CO) lift: the DSE's stage-temperature axis prices candidates
// with it.
func TierWall(cool phys.CoolingModel, tierWatts float64, tierK, memK float64) ([]Breakdown, float64, error) {
	sys, err := BuildSystem(Assignment{Name: "tier", TierK: tierK, MemK: memK}, tierWatts, 0)
	if err != nil {
		return nil, 0, err
	}
	sys.Cooling = cool
	return sys.WallPower()
}

// --- sim-backed sweep -------------------------------------------------------

// SweepOptions tunes a staged sweep.
type SweepOptions struct {
	// Platform supplies the shared derivation cache; nil uses Default.
	Platform *platform.Platform
	// Sim is the simulation config (run lengths, seed).
	Sim sim.Config
	// Workload names the profile to evaluate on; "" picks x264 (the
	// quick-space canonical workload).
	Workload string
	// Workers bounds concurrent batches; Lanes forces the batch width
	// (0 = auto).
	Workers, Lanes int
	// WattsPerUnit converts relative device power to watts; 0 uses
	// DefaultWattsPerUnit.
	WattsPerUnit float64
}

// AssignmentReport is one assignment's cooling-inclusive scorecard.
type AssignmentReport struct {
	Name  string  `json:"name"`
	TierK float64 `json:"tier_k"`
	MemK  float64 `json:"mem_k"`
	// FreqGHz is the derived tier core clock; IPC and Performance come
	// from full-system simulation (instr/ns across 64 cores).
	FreqGHz     float64 `json:"freq_ghz"`
	IPC         float64 `json:"ipc"`
	Performance float64 `json:"performance"`
	// DeviceWatts is total component heat (host + memory + tier);
	// WallWatts adds cable loads and every stage's cooling overhead.
	DeviceWatts float64     `json:"device_watts"`
	WallWatts   float64     `json:"wall_watts"`
	Stages      []Breakdown `json:"stages"`
	// PerfPerWatt is Performance / WallWatts — the metric that decides
	// whether an assignment survives its cooling bill.
	PerfPerWatt float64 `json:"perf_per_watt"`
}

// SweepResult is the full staged-sweep report.
type SweepResult struct {
	Workload     string             `json:"workload"`
	WattsPerUnit float64            `json:"watts_per_unit"`
	Assignments  []AssignmentReport `json:"assignments"`
}

// JSON renders the result as stable indented JSON: field order follows
// the structs and assignments keep submission order, so equal results
// encode to byte-identical documents (the CLI ↔ server contract).
func (r *SweepResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render returns the result as a fixed-width text report: a summary
// table plus a per-stage heatload breakdown.
func (r *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== stage sweep: cooling-inclusive perf/W on %s (1 unit = %g W) ==\n", r.Workload, r.WattsPerUnit)
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %7s %10s %11s %11s %12s\n",
		"assignment", "tier K", "mem K", "GHz", "IPC", "perf i/ns", "device W", "wall W", "perf/W")
	for _, a := range r.Assignments {
		fmt.Fprintf(&b, "%-14s %8g %8g %8.2f %7.3f %10.2f %11.2f %11.2f %12.5f\n",
			a.Name, a.TierK, a.MemK, a.FreqGHz, a.IPC, a.Performance, a.DeviceWatts, a.WallWatts, a.PerfPerWatt)
	}
	b.WriteString("\nper-stage heatload breakdown:\n")
	fmt.Fprintf(&b, "%-14s %-12s %10s %10s %10s %10s %9s %11s\n",
		"assignment", "stage", "device W", "leak W", "signal W", "heat W", "CO", "wall W")
	for _, a := range r.Assignments {
		for _, s := range a.Stages {
			fmt.Fprintf(&b, "%-14s %-12s %10.3f %10.4f %10.3f %10.3f %9.2f %11.2f\n",
				a.Name, s.Stage, s.DeviceWatts, s.CableLeakWatts, s.CableSignalWatts, s.HeatloadWatts, s.CoolingOverhead, s.WallWatts)
		}
	}
	return b.String()
}

// tierDesign derives the simulated system of an assignment: the 300 K
// tier runs the baseline Skylake-class core on the mesh; a cryogenic
// tier runs the full CryoSP recipe (max frontend splits, CryoSP
// voltage, CryoCore sizing) re-derived at the tier temperature on
// CryoBus. Memory follows the memory stage.
func tierDesign(pf *platform.Platform, a Assignment, prof workload.Profile, cfg sim.Config) (sim.LaneSpec, pipeline.CoreSpec, error) {
	nomOp, err := pf.OpAt(a.TierK)
	if err != nil {
		return sim.LaneSpec{}, pipeline.CoreSpec{}, fmt.Errorf("stage: assignment %s: %w", a.Name, err)
	}
	var (
		core pipeline.CoreSpec
		kind sim.NetKind
		noc  = pf.MeshTiming(nomOp, 1)
	)
	if a.TierK >= 300 {
		core = pf.Baseline300()
		kind = sim.Mesh
	} else {
		op := phys.OperatingPoint{T: phys.Kelvin(a.TierK), Vdd: pipeline.CryoSPVoltage.Vdd, Vth: pipeline.CryoSPVoltage.Vth}
		core, err = pf.DerivedCore(pipeline.MaxFrontendSplits(), nomOp, op, pipeline.CryoCoreSizing)
		if err != nil {
			return sim.LaneSpec{}, pipeline.CoreSpec{}, fmt.Errorf("stage: assignment %s: %w", a.Name, err)
		}
		kind = sim.CryoBus
		noc = pf.BusTiming(nomOp)
	}
	d := sim.Design{
		Name:   a.Name,
		Core:   core,
		Net:    kind,
		NoC:    noc,
		Memory: mem.ForTemp(phys.Kelvin(a.MemK)),
		Cores:  64,
	}
	return sim.LaneSpec{Design: d, Profile: prof, Config: cfg}, core, nil
}

// Sweep evaluates the assignments with full simulation — all lanes
// batched through one BatchRunner call — and prices each through its
// staged cooling chain. Deterministic: equal (assignments, options)
// produce byte-identical JSON at any worker/lane count.
func Sweep(ctx context.Context, assigns []Assignment, opt SweepOptions) (*SweepResult, error) {
	if len(assigns) == 0 {
		assigns = DefaultAssignments()
	}
	pf := opt.Platform
	if pf == nil {
		pf = platform.Default()
	}
	wname := opt.Workload
	if wname == "" {
		wname = "x264"
	}
	prof, err := workload.ByName(wname)
	if err != nil {
		return nil, err
	}
	wpu := opt.WattsPerUnit
	if wpu == 0 {
		wpu = DefaultWattsPerUnit
	}
	cfg := opt.Sim
	if cfg.MeasureCycles == 0 {
		cfg = sim.DefaultConfig()
	}

	specs := make([]sim.LaneSpec, len(assigns))
	cores := make([]pipeline.CoreSpec, len(assigns))
	for i, a := range assigns {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		specs[i], cores[i], err = tierDesign(pf, a, prof, cfg)
		if err != nil {
			return nil, err
		}
	}
	runner := &sim.BatchRunner{Lanes: opt.Lanes, Workers: opt.Workers}
	results, errs := runner.RunCtx(ctx, specs)
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}

	pw := pf.PowerModel()
	out := &SweepResult{Workload: wname, WattsPerUnit: wpu}
	for i, a := range assigns {
		tierUnits := pw.CorePower(cores[i]) + nocPowerShare*pw.NoCPower(nocPowerKind(a.TierK, specs[i].Design.Net))
		sys, err := BuildSystem(a, tierUnits*wpu, wpu)
		if err != nil {
			return nil, err
		}
		sys.Cooling = pw.Cooling
		stages, wall, err := sys.WallPower()
		if err != nil {
			return nil, err
		}
		rep := AssignmentReport{
			Name: a.Name, TierK: a.TierK, MemK: a.MemK,
			FreqGHz:     cores[i].FreqGHz,
			IPC:         results[i].IPC,
			Performance: results[i].Performance,
			WallWatts:   wall,
			Stages:      stages,
		}
		for _, s := range stages {
			rep.DeviceWatts += s.DeviceWatts
		}
		if wall > 0 {
			rep.PerfPerWatt = rep.Performance / wall
		}
		out.Assignments = append(out.Assignments, rep)
	}
	return out, nil
}
