package stage

import (
	"math"
	"testing"

	"cryowire/internal/phys"
)

// FuzzHeatLeak drives the cable heatload estimator with arbitrary
// material/temperature/length/lane inputs and asserts the satellite
// invariants: every accepted input yields a non-negative, finite leak
// that is monotone non-increasing in cable length (conduction ∝ 1/L)
// and monotone non-decreasing in lane count and gradient.
func FuzzHeatLeak(f *testing.F) {
	f.Add(int8(0), 300.0, 4.0, 1.0, 1)
	f.Add(int8(1), 300.0, 77.0, 0.5, 64)
	f.Add(int8(2), 77.0, 4.0, 0.3, 128)
	f.Add(int8(3), 300.0, 300.0, 2.0, 8)
	f.Add(int8(0), math.NaN(), 4.0, 1.0, 1)
	f.Add(int8(0), 300.0, -4.0, math.Inf(1), -3)
	f.Fuzz(func(t *testing.T, matIdx int8, hot, cold, length float64, lanes int) {
		mats := Materials()
		m := mats[int(uint8(matIdx))%len(mats)]
		q, err := HeatLeak(m, phys.Kelvin(hot), phys.Kelvin(cold), length, lanes)
		if err != nil {
			// Rejected input: the estimator must refuse, not emit junk.
			if q != 0 {
				t.Fatalf("error path returned q=%v", q)
			}
			return
		}
		if math.IsNaN(q) || math.IsInf(q, 0) || q < 0 {
			t.Fatalf("HeatLeak(%v, %v, %v, %v, %d) = %v, want non-negative finite", m, hot, cold, length, lanes, q)
		}
		// Monotone non-increasing in length: a longer cable of the same
		// construction leaks no more heat.
		if longer, err2 := HeatLeak(m, phys.Kelvin(hot), phys.Kelvin(cold), length*2, lanes); err2 == nil && longer > q {
			t.Fatalf("leak grew with length: %v @ %vm vs %v @ %vm", q, length, longer, length*2)
		}
		// Monotone non-decreasing in lanes.
		if wider, err2 := HeatLeak(m, phys.Kelvin(hot), phys.Kelvin(cold), length, lanes+1); err2 == nil && wider < q {
			t.Fatalf("leak shrank with extra lane: %v vs %v", q, wider)
		}
		// Monotone non-decreasing in gradient: pulling the cold end
		// colder (still physical) never reduces the leak.
		if cold/2 > 0 {
			if steeper, err2 := HeatLeak(m, phys.Kelvin(hot), phys.Kelvin(cold/2), length, lanes); err2 == nil && steeper < q {
				t.Fatalf("leak shrank with steeper gradient: %v vs %v", q, steeper)
			}
		}
	})
}
