// Package workload defines the synthetic workload profiles that drive
// the full-system simulator. Each profile is a statistical
// characterization — memory intensity, locality, sharing, barrier
// behaviour — of one benchmark from the suites the paper evaluates
// (PARSEC 2.1 multi-threaded, SPEC CPU2006/2017 in 64-copy rate mode,
// CloudSuite). Profiles substitute for running the real binaries under
// Gem5 (see DESIGN.md, substitution #4); the L2 MPKI ranges match the
// per-suite injection bands of Fig 18 and published characterizations.
package workload

import (
	"fmt"
	"math"
)

// Suite identifies the benchmark suite a profile belongs to.
type Suite int

const (
	// PARSEC 2.1 multithreaded workloads (Fig 3, 17, 23).
	PARSEC Suite = iota
	// SPEC2006 rate-mode workloads (Fig 18, 24).
	SPEC2006
	// SPEC2017 rate-mode workloads (Fig 18, 24).
	SPEC2017
	// CloudSuite scale-out workloads (Fig 18).
	CloudSuite
)

// String implements fmt.Stringer.
func (s Suite) String() string {
	switch s {
	case PARSEC:
		return "PARSEC 2.1"
	case SPEC2006:
		return "SPEC2006"
	case SPEC2017:
		return "SPEC2017"
	case CloudSuite:
		return "CloudSuite"
	default:
		return fmt.Sprintf("Suite(%d)", int(s))
	}
}

// Profile is the statistical model of one workload on the 64-core
// target system.
type Profile struct {
	Name  string
	Suite Suite

	// ILP is the exploitable instruction-level parallelism: the IPC the
	// core sustains with unbounded issue width and a perfect memory
	// system.
	ILP float64
	// BranchMPKI is branch mispredictions per kilo-instruction; deeper
	// pipelines multiply its cost (the CryoSP IPC tax, §4.4).
	BranchMPKI float64

	// L1MPKI is L1D misses that hit in the private L2 (per kinst).
	L1MPKI float64
	// L2MPKI is private-L2 misses per kilo-instruction — the NoC/L3
	// request rate of Fig 18.
	L2MPKI float64
	// L3MissRatio is the fraction of L2 misses that also miss the
	// shared L3 and go to DRAM.
	L3MissRatio float64
	// SharedFraction is the fraction of L2 misses owned by a remote
	// core's cache (dirty sharing → 3-hop directory or cache-to-cache
	// snoop transfer).
	SharedFraction float64

	// MLP is the memory-level parallelism: how many L2 misses the core
	// keeps in flight before stalling (pointer chasers ≈ 1–2).
	MLP float64

	// BarriersPerMI is synchronization barriers per million committed
	// instructions per core (streamcluster is the outlier, §6.2).
	BarriersPerMI float64

	// LockMPKI is contended lock acquisitions per kilo-instruction.
	// Lock hand-offs serialize on hot cache lines, so their cost is a
	// full coherence round trip per hand-off — the main way slow NoCs
	// destroy multi-thread scaling (pipeline-parallel and fine-grained
	// locking apps: ferret, fluidanimate, dedup).
	LockMPKI float64
}

// Validate checks profile plausibility: positive ILP, non-negative
// event rates, share fractions inside [0,1], and no NaNs anywhere — a
// NaN rate would silently poison every downstream statistic instead of
// failing at the boundary.
func (p Profile) Validate() error {
	for _, f := range []struct {
		name  string
		value float64
	}{
		{"ILP", p.ILP},
		{"BranchMPKI", p.BranchMPKI},
		{"L1MPKI", p.L1MPKI},
		{"L2MPKI", p.L2MPKI},
		{"L3MissRatio", p.L3MissRatio},
		{"SharedFraction", p.SharedFraction},
		{"MLP", p.MLP},
		{"BarriersPerMI", p.BarriersPerMI},
		{"LockMPKI", p.LockMPKI},
	} {
		if math.IsNaN(f.value) || math.IsInf(f.value, 0) {
			return fmt.Errorf("workload %s: %s is %v", p.Name, f.name, f.value)
		}
	}
	switch {
	case p.ILP <= 0:
		return fmt.Errorf("workload %s: non-positive ILP", p.Name)
	case p.BranchMPKI < 0:
		return fmt.Errorf("workload %s: negative BranchMPKI", p.Name)
	case p.L2MPKI < 0 || p.L1MPKI < 0:
		return fmt.Errorf("workload %s: negative MPKI", p.Name)
	case p.L3MissRatio < 0 || p.L3MissRatio > 1:
		return fmt.Errorf("workload %s: L3MissRatio %v outside [0,1]", p.Name, p.L3MissRatio)
	case p.SharedFraction < 0 || p.SharedFraction > 1:
		return fmt.Errorf("workload %s: SharedFraction %v outside [0,1]", p.Name, p.SharedFraction)
	case p.MLP < 1:
		return fmt.Errorf("workload %s: MLP %v below 1", p.Name, p.MLP)
	case p.BarriersPerMI < 0:
		return fmt.Errorf("workload %s: negative barrier rate", p.Name)
	case p.LockMPKI < 0:
		return fmt.Errorf("workload %s: negative LockMPKI", p.Name)
	}
	return nil
}

// ValidateAll validates every profile in the list, failing on the
// first offender.
func ValidateAll(ps []Profile) error {
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Parsec returns the 13 PARSEC 2.1 profiles. Memory intensity and
// sharing follow the published PARSEC characterization (Bienia et al.):
// canneal is the pointer-chasing cache-buster, streamcluster the
// barrier-dominated streamer, swaptions/blackscholes compute-bound.
func Parsec() []Profile {
	return []Profile{
		{Name: "blackscholes", Suite: PARSEC, ILP: 2.6, BranchMPKI: 6, L1MPKI: 6, L2MPKI: 0.9, L3MissRatio: 0.25, SharedFraction: 0.15, MLP: 4.8, BarriersPerMI: 2, LockMPKI: 0.02},
		{Name: "bodytrack", Suite: PARSEC, ILP: 2.2, BranchMPKI: 12, L1MPKI: 14, L2MPKI: 2.4, L3MissRatio: 0.35, SharedFraction: 0.45, MLP: 2.8, BarriersPerMI: 60, LockMPKI: 0.4},
		{Name: "canneal", Suite: PARSEC, ILP: 1.2, BranchMPKI: 10, L1MPKI: 28, L2MPKI: 3.6, L3MissRatio: 0.55, SharedFraction: 0.4, MLP: 1.1, BarriersPerMI: 1, LockMPKI: 0.05},
		{Name: "dedup", Suite: PARSEC, ILP: 2.0, BranchMPKI: 14, L1MPKI: 18, L2MPKI: 2.4, L3MissRatio: 0.35, SharedFraction: 0.55, MLP: 3.2, BarriersPerMI: 5, LockMPKI: 0.35},
		{Name: "facesim", Suite: PARSEC, ILP: 2.1, BranchMPKI: 8, L1MPKI: 20, L2MPKI: 2.4, L3MissRatio: 0.4, SharedFraction: 0.45, MLP: 3.2, BarriersPerMI: 20, LockMPKI: 0.3},
		{Name: "ferret", Suite: PARSEC, ILP: 2.0, BranchMPKI: 11, L1MPKI: 22, L2MPKI: 2, L3MissRatio: 0.35, SharedFraction: 0.6, MLP: 2.4, BarriersPerMI: 10, LockMPKI: 0.45},
		{Name: "fluidanimate", Suite: PARSEC, ILP: 2.1, BranchMPKI: 7, L1MPKI: 16, L2MPKI: 1.8, L3MissRatio: 0.3, SharedFraction: 0.55, MLP: 3.2, BarriersPerMI: 30, LockMPKI: 0.55},
		{Name: "freqmine", Suite: PARSEC, ILP: 2.2, BranchMPKI: 9, L1MPKI: 15, L2MPKI: 2.2, L3MissRatio: 0.3, SharedFraction: 0.45, MLP: 3.2, BarriersPerMI: 3, LockMPKI: 0.15},
		{Name: "raytrace", Suite: PARSEC, ILP: 2.3, BranchMPKI: 9, L1MPKI: 12, L2MPKI: 2, L3MissRatio: 0.25, SharedFraction: 0.35, MLP: 4, BarriersPerMI: 4, LockMPKI: 0.15},
		{Name: "streamcluster", Suite: PARSEC, ILP: 1.8, BranchMPKI: 5, L1MPKI: 24, L2MPKI: 3.2, L3MissRatio: 0.3, SharedFraction: 0.6, MLP: 2.4, BarriersPerMI: 800, LockMPKI: 0.2},
		{Name: "swaptions", Suite: PARSEC, ILP: 2.5, BranchMPKI: 8, L1MPKI: 10, L2MPKI: 1.7, L3MissRatio: 0.3, SharedFraction: 0.35, MLP: 1.44, BarriersPerMI: 2, LockMPKI: 0.45},
		{Name: "vips", Suite: PARSEC, ILP: 2.3, BranchMPKI: 10, L1MPKI: 14, L2MPKI: 2.2, L3MissRatio: 0.3, SharedFraction: 0.5, MLP: 3.6, BarriersPerMI: 8, LockMPKI: 0.25},
		{Name: "x264", Suite: PARSEC, ILP: 2.4, BranchMPKI: 16, L1MPKI: 17, L2MPKI: 2.6, L3MissRatio: 0.45, SharedFraction: 0.45, MLP: 2.4, BarriersPerMI: 6, LockMPKI: 0.2},
	}
}

// Spec2006 returns the SPEC CPU2006 rate-mode profiles of Fig 24: no
// sharing, no barriers, 64 independent copies. MPKIs follow the
// standard characterization (mcf/lbm/libquantum memory-bound,
// cactusADM/gcc/xalancbmk the bus-contention cases of §7.1).
func Spec2006() []Profile {
	mk := func(name string, ilp, br, l1, l2, l3m, mlp float64) Profile {
		return Profile{Name: name, Suite: SPEC2006, ILP: ilp, BranchMPKI: br,
			L1MPKI: l1, L2MPKI: l2, L3MissRatio: l3m, MLP: mlp}
	}
	return []Profile{
		mk("perlbench", 2.4, 12, 8, 1.0, 0.3, 4),
		mk("bzip2", 2.2, 10, 10, 2.6, 0.4, 4),
		mk("gcc", 2.0, 14, 16, 5, 0.5, 3),
		mk("mcf", 1.2, 12, 40, 9, 0.6, 1.6),
		mk("cactusADM", 1.8, 3, 22, 5.5, 0.6, 3),
		mk("gobmk", 2.1, 18, 9, 1.2, 0.3, 4),
		mk("hmmer", 2.6, 4, 6, 0.8, 0.3, 6),
		mk("libquantum", 1.9, 2, 30, 7, 0.8, 4),
		mk("lbm", 1.7, 2, 28, 6.5, 0.8, 4),
		mk("xalancbmk", 2.0, 16, 18, 4.5, 0.4, 3),
	}
}

// Spec2017 returns the SPEC CPU2017 rate-mode profiles.
func Spec2017() []Profile {
	mk := func(name string, ilp, br, l1, l2, l3m, mlp float64) Profile {
		return Profile{Name: name, Suite: SPEC2017, ILP: ilp, BranchMPKI: br,
			L1MPKI: l1, L2MPKI: l2, L3MissRatio: l3m, MLP: mlp}
	}
	return []Profile{
		mk("perlbench_r", 2.4, 12, 8, 1.1, 0.3, 4),
		mk("gcc_r", 2.0, 14, 17, 5.2, 0.5, 3),
		mk("mcf_r", 1.3, 13, 38, 8.5, 0.6, 1.8),
		mk("lbm_r", 1.7, 2, 30, 7, 0.8, 4),
		mk("omnetpp_r", 1.8, 12, 22, 5, 0.5, 2.5),
		mk("xalancbmk_r", 2.0, 16, 19, 4.8, 0.4, 3),
		mk("x264_r", 2.5, 14, 12, 2.2, 0.4, 4),
		mk("deepsjeng_r", 2.2, 16, 10, 1.5, 0.3, 4),
	}
}

// CloudSuiteProfiles returns the scale-out workloads that define the
// top of the Fig 18 injection band.
func CloudSuiteProfiles() []Profile {
	mk := func(name string, ilp, br, l1, l2, l3m, shared, mlp float64) Profile {
		return Profile{Name: name, Suite: CloudSuite, ILP: ilp, BranchMPKI: br,
			L1MPKI: l1, L2MPKI: l2, L3MissRatio: l3m, SharedFraction: shared, MLP: mlp}
	}
	return []Profile{
		mk("data-serving", 1.8, 14, 30, 13.0, 0.5, 0.2, 3),
		mk("web-search", 1.9, 12, 26, 11.0, 0.5, 0.15, 3),
		mk("media-streaming", 2.0, 8, 28, 14.0, 0.6, 0.1, 4),
		mk("graph-analytics", 1.5, 10, 34, 15.5, 0.6, 0.3, 2.5),
	}
}

// ByName finds a profile across all suites.
func ByName(name string) (Profile, error) {
	for _, set := range [][]Profile{Parsec(), Spec2006(), Spec2017(), CloudSuiteProfiles()} {
		for _, p := range set {
			if p.Name == name {
				return p, nil
			}
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// InjectionRate estimates the per-core NoC request injection rate
// (packets per node per NoC cycle) a profile offers at the given IPC
// and core/NoC frequency ratio — the x-axis quantity of Fig 18.
func (p Profile) InjectionRate(ipc, freqRatio float64) float64 {
	return p.L2MPKI / 1000 * ipc * freqRatio
}

// estimation constants for the closed-form IPC below.
const (
	estMispredictPenalty = 12   // baseline frontend refill, cycles
	estBarrierCost       = 1500 // cycles per barrier on a 64-core system
)

// EstimatedIPC is the closed-form first-order IPC of the profile given
// an average L2-miss round-trip latency in core cycles: the base ILP
// term plus branch, memory (MLP-overlapped) and barrier components.
// The simulator supersedes this; it exists to position the Fig 18
// injection bands without running full simulations.
func (p Profile) EstimatedIPC(missLatency float64) float64 {
	cpi := 1/p.ILP +
		p.BranchMPKI/1000*estMispredictPenalty +
		p.L2MPKI/1000*missLatency/p.MLP +
		p.BarriersPerMI/1e6*estBarrierCost
	return 1 / cpi
}

// bandMissLatency is the representative L2-miss round trip (core
// cycles) used to position the Fig 18 bands.
const bandMissLatency = 60

// SuiteInjectionBand returns the [min,max] per-core injection rate of
// a suite at each profile's estimated achievable IPC (Fig 18's
// workload bands).
func SuiteInjectionBand(s Suite) (lo, hi float64) {
	var set []Profile
	switch s {
	case PARSEC:
		set = Parsec()
	case SPEC2006:
		set = Spec2006()
	case SPEC2017:
		set = Spec2017()
	case CloudSuite:
		set = CloudSuiteProfiles()
	}
	lo, hi = 1.0, 0.0
	for _, p := range set {
		r := p.InjectionRate(p.EstimatedIPC(bandMissLatency), 1)
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	return lo, hi
}
