package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func allProfiles() []Profile {
	var out []Profile
	out = append(out, Parsec()...)
	out = append(out, Spec2006()...)
	out = append(out, Spec2017()...)
	out = append(out, CloudSuiteProfiles()...)
	return out
}

func TestAllProfilesValid(t *testing.T) {
	for _, p := range allProfiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestSuiteSizes(t *testing.T) {
	if got := len(Parsec()); got != 13 {
		t.Errorf("PARSEC 2.1 has %d profiles, want 13", got)
	}
	if got := len(Spec2006()); got < 8 {
		t.Errorf("SPEC2006 has %d profiles, want ≥8", got)
	}
	if got := len(Spec2017()); got < 6 {
		t.Errorf("SPEC2017 has %d profiles, want ≥6", got)
	}
	if got := len(CloudSuiteProfiles()); got < 3 {
		t.Errorf("CloudSuite has %d profiles, want ≥3", got)
	}
}

func TestNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range allProfiles() {
		if seen[p.Name] {
			t.Errorf("duplicate profile name %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	if p.Suite != PARSEC {
		t.Errorf("streamcluster suite = %v", p.Suite)
	}
	if _, err := ByName("quake3"); err == nil {
		t.Error("unknown profile should error")
	}
}

func TestStreamclusterIsBarrierOutlier(t *testing.T) {
	// §6.2: streamcluster's CryoBus gain comes from its barrier count —
	// it must dominate every other PARSEC profile by a wide margin.
	sc, _ := ByName("streamcluster")
	for _, p := range Parsec() {
		if p.Name == "streamcluster" {
			continue
		}
		if p.BarriersPerMI*3 > sc.BarriersPerMI {
			t.Errorf("%s barrier rate %v too close to streamcluster's %v", p.Name, p.BarriersPerMI, sc.BarriersPerMI)
		}
	}
}

func TestFig18InjectionBands(t *testing.T) {
	// Fig 18's qualitative ordering: PARSEC sits lowest, SPEC above it,
	// CloudSuite at the top; the 77 K shared bus (saturation ≈ 0.005)
	// covers PARSEC but not the upper suites.
	pLo, pHi := SuiteInjectionBand(PARSEC)
	_, s6Hi := SuiteInjectionBand(SPEC2006)
	_, s7Hi := SuiteInjectionBand(SPEC2017)
	_, cHi := SuiteInjectionBand(CloudSuite)
	if pLo <= 0 || pHi <= pLo {
		t.Errorf("degenerate PARSEC band [%v,%v]", pLo, pHi)
	}
	if !(s6Hi > pHi && cHi >= s6Hi) {
		t.Errorf("band ordering wrong: PARSEC hi %v, SPEC06 hi %v, Cloud hi %v", pHi, s6Hi, cHi)
	}
	if s7Hi <= pHi {
		t.Errorf("SPEC2017 top %v should exceed PARSEC top %v", s7Hi, pHi)
	}
	// The 77K shared bus saturates near 0.005 (3-cycle broadcasts, 64
	// nodes): PARSEC fits essentially below the knee (Fig 17 attributes
	// only 8.1 % to residual bus effects), CloudSuite does not; the
	// 300 K bus knee (≈0.002) sits inside the PARSEC band, which is why
	// the 300 K bus "cannot run even the PARSEC workloads".
	const bus77Sat = 0.0052
	const bus300Sat = 0.002
	if pHi > bus77Sat*1.1 {
		t.Errorf("PARSEC top %v exceeds the 77K bus saturation %v — Fig 18 says it fits", pHi, bus77Sat)
	}
	if !(pLo < bus300Sat && bus300Sat < pHi) {
		t.Errorf("300K bus knee %v should fall inside the PARSEC band [%v,%v]", bus300Sat, pLo, pHi)
	}
	if cHi < bus77Sat {
		t.Error("CloudSuite should overload the plain 77K shared bus")
	}
	if s6Hi < bus77Sat {
		t.Error("SPEC2006 should overload the plain 77K shared bus (Guideline #2)")
	}
}

func TestSpecRateModeHasNoSharing(t *testing.T) {
	for _, p := range append(Spec2006(), Spec2017()...) {
		if p.SharedFraction != 0 {
			t.Errorf("%s: rate-mode SPEC must have zero sharing", p.Name)
		}
		if p.BarriersPerMI != 0 {
			t.Errorf("%s: rate-mode SPEC must have no barriers", p.Name)
		}
	}
}

func TestInjectionRateProperty(t *testing.T) {
	f := func(rawIPC, rawRatio uint8) bool {
		p, _ := ByName("canneal")
		ipc := 0.1 + float64(rawIPC)/64
		ratio := 0.5 + float64(rawRatio)/128
		r := p.InjectionRate(ipc, ratio)
		// Linear in both arguments and positive.
		return r > 0 && r == p.L2MPKI/1000*ipc*ratio
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryBoundWorkloadsFlagged(t *testing.T) {
	// §6.2 calls bodytrack and x264 memory-bounded relative to the
	// PARSEC mean — their L2MPKI·L3MissRatio (DRAM pressure) must sit
	// above the PARSEC median.
	med := func() float64 {
		var vals []float64
		for _, p := range Parsec() {
			vals = append(vals, p.L2MPKI*p.L3MissRatio)
		}
		// insertion sort (13 elements)
		for i := 1; i < len(vals); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
		return vals[len(vals)/2]
	}()
	for _, name := range []string{"bodytrack", "x264"} {
		p, _ := ByName(name)
		if p.L2MPKI*p.L3MissRatio <= med {
			t.Errorf("%s DRAM pressure %v not above PARSEC median %v", name, p.L2MPKI*p.L3MissRatio, med)
		}
	}
}

func TestSuiteString(t *testing.T) {
	for s, want := range map[Suite]string{PARSEC: "PARSEC 2.1", SPEC2006: "SPEC2006", SPEC2017: "SPEC2017", CloudSuite: "CloudSuite"} {
		if s.String() != want {
			t.Errorf("Suite(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if Suite(9).String() == "" {
		t.Error("unknown suite should stringify")
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	bad := []Profile{
		{Name: "a", ILP: 0, MLP: 2},
		{Name: "b", ILP: 1, MLP: 0.5},
		{Name: "c", ILP: 1, MLP: 2, L3MissRatio: 1.5},
		{Name: "d", ILP: 1, MLP: 2, SharedFraction: -0.1},
		{Name: "e", ILP: 1, MLP: 2, L2MPKI: -1},
		{Name: "f", ILP: 1, MLP: 2, BarriersPerMI: -3},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%s) should fail", p.Name)
		}
	}
}

// TestValidateRejects table-drives the boundary checks: every way a
// profile can be implausible must be caught with a pointed error.
func TestValidateRejects(t *testing.T) {
	valid := func() Profile {
		return Profile{Name: "probe", ILP: 2, BranchMPKI: 8, L1MPKI: 10, L2MPKI: 2,
			L3MissRatio: 0.3, SharedFraction: 0.4, MLP: 3, BarriersPerMI: 5, LockMPKI: 0.2}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("baseline probe profile invalid: %v", err)
	}
	nan := math.NaN()
	cases := []struct {
		name   string
		mutate func(*Profile)
		want   string
	}{
		{"zero ILP", func(p *Profile) { p.ILP = 0 }, "non-positive ILP"},
		{"negative ILP", func(p *Profile) { p.ILP = -1 }, "non-positive ILP"},
		{"negative BranchMPKI", func(p *Profile) { p.BranchMPKI = -2 }, "negative BranchMPKI"},
		{"negative L1MPKI", func(p *Profile) { p.L1MPKI = -1 }, "negative MPKI"},
		{"negative L2MPKI", func(p *Profile) { p.L2MPKI = -1 }, "negative MPKI"},
		{"L3MissRatio above 1", func(p *Profile) { p.L3MissRatio = 1.5 }, "outside [0,1]"},
		{"L3MissRatio negative", func(p *Profile) { p.L3MissRatio = -0.1 }, "outside [0,1]"},
		{"SharedFraction above 1", func(p *Profile) { p.SharedFraction = 2 }, "outside [0,1]"},
		{"MLP below 1", func(p *Profile) { p.MLP = 0.5 }, "below 1"},
		{"negative barriers", func(p *Profile) { p.BarriersPerMI = -1 }, "negative barrier rate"},
		{"negative LockMPKI", func(p *Profile) { p.LockMPKI = -0.1 }, "negative LockMPKI"},
		{"NaN ILP", func(p *Profile) { p.ILP = nan }, "ILP is NaN"},
		{"NaN LockMPKI", func(p *Profile) { p.LockMPKI = nan }, "LockMPKI is NaN"},
		{"NaN L2MPKI", func(p *Profile) { p.L2MPKI = nan }, "L2MPKI is NaN"},
		{"Inf MLP", func(p *Profile) { p.MLP = math.Inf(1) }, "MLP is +Inf"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := valid()
			tc.mutate(&p)
			err := p.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestValidateAll(t *testing.T) {
	if err := ValidateAll(allProfiles()); err != nil {
		t.Fatalf("built-in suites: %v", err)
	}
	bad := allProfiles()
	bad[3].LockMPKI = -1
	if err := ValidateAll(bad); err == nil {
		t.Fatal("ValidateAll accepted a corrupted profile")
	}
}
