package circuit

import (
	"testing"

	"cryowire/internal/phys"
	"cryowire/internal/wire"
)

// benchLadder is a representative repeater-stage ladder (the shape
// SimulateLinkDelay solves thousands of times during a sweep).
var benchLadder = Ladder{RDrive: 500, RTotal: 5000, CTotal: 400e-15, CLoad: 20e-15, Segments: 40}

// BenchmarkDelay50 measures the solver inner loop through the public
// Ladder API (pooled scratch after warm-up).
func BenchmarkDelay50(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := benchLadder.Delay50(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateLinkDelay measures one repeatered wire-link hop —
// the platform cache's miss path.
func BenchmarkSimulateLinkDelay(b *testing.B) {
	m := phys.DefaultMOSFET()
	lk := wire.CryoBusLink()
	op := wire.At77()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateLinkDelay(lk, op, m); err != nil {
			b.Fatal(err)
		}
	}
}
