// Package circuit is a small transient circuit solver for driven
// distributed-RC lines — the "Hspice-lite" of this repository. The
// paper validates its wire and wire-link models against Hspice
// transient simulations (§2.3, §3.2.2, Fig 10); here the same role is
// played by numerically integrating the RC ladder ODE system and
// measuring 50 %-swing crossing times, which is exactly the quantity a
// SPICE .measure would report for these linear circuits.
package circuit

import (
	"fmt"
	"math"
	"sync"

	"cryowire/internal/phys"
	"cryowire/internal/wire"
)

// Ladder is a step-driven distributed RC line: a voltage step through a
// driver resistance into N equal RC segments with a lumped load at the
// far end.
type Ladder struct {
	RDrive   float64 // driver (Thevenin) resistance, Ω
	RTotal   float64 // total wire resistance, Ω
	CTotal   float64 // total wire capacitance, F
	CLoad    float64 // receiver load capacitance, F
	Segments int     // spatial discretization (≥1)
}

// Validate reports whether the ladder is well-formed.
func (ld Ladder) Validate() error {
	switch {
	case ld.Segments < 1:
		return fmt.Errorf("circuit: need at least 1 segment, have %d", ld.Segments)
	case ld.RDrive <= 0:
		return fmt.Errorf("circuit: non-positive driver resistance %v", ld.RDrive)
	case ld.RTotal < 0 || ld.CTotal < 0 || ld.CLoad < 0:
		return fmt.Errorf("circuit: negative RC element")
	case ld.CTotal == 0 && ld.CLoad == 0:
		return fmt.Errorf("circuit: no capacitance to charge")
	}
	return nil
}

// ElmoreDelay returns the analytic Elmore (first-moment) delay estimate
// for the same ladder — useful as a cross-check of the transient sim.
func (ld Ladder) ElmoreDelay() float64 {
	return 0.69*ld.RDrive*(ld.CTotal+ld.CLoad) + ld.RTotal*(0.38*ld.CTotal+0.69*ld.CLoad)
}

// maxSteps bounds one transient integration; a healthy ladder crosses
// 50 % within a few thousand steps of its Elmore-derived timestep.
const maxSteps = 20_000_000

// Early-exit tuning: once the far-end increment has been non-increasing
// for monotoneWindow consecutive steps, the response is past its
// inflection and future increments are bounded by the current one; if
// even noCrossMargin× the remaining-step budget at that rate cannot
// reach 50 %, the run is declared hopeless without grinding out the
// remaining millions of steps.
const (
	monotoneWindow = 64
	noCrossMargin  = 4.0
)

// ErrNoCrossing reports a transient run that ended without the far end
// reaching 50 % of the final value — either maxSteps elapsed, or the
// monotonicity check proved the crossing unreachable. It typically
// means the Elmore-derived timestep is pathologically mismatched to the
// true dominant time constant (e.g. a near-zero driver resistance with
// an enormous load).
type ErrNoCrossing struct {
	// Steps is how many trapezoidal steps were taken before giving up.
	Steps int
	// LastVoltage is the far-end voltage (of a 1.0 final value) when the
	// run stopped.
	LastVoltage float64
}

// Error implements error.
func (e *ErrNoCrossing) Error() string {
	return fmt.Sprintf("circuit: no 50%% crossing within %d steps (far end at %.3g of final value)", e.Steps, e.LastVoltage)
}

// Solver integrates ladder step responses using the implicit
// trapezoidal rule (A-stable, second order) with a tridiagonal (Thomas)
// solve per step. It owns the per-node scratch vectors, which are grown
// once and reused: after the first call at a given size, Delay50
// allocates nothing. A Solver is not safe for concurrent use; either
// keep one per goroutine or use the pooled Ladder.Delay50.
type Solver struct {
	caps, res, g, b []float64
	v, diag         []float64
	rhs, cp, dp     []float64
	off             []float64
}

// NewSolver returns an empty solver; scratch grows on first use.
func NewSolver() *Solver { return &Solver{} }

// grow sizes every scratch vector for an n-segment ladder.
func (s *Solver) grow(n int) {
	if cap(s.caps) < n+1 {
		s.caps = make([]float64, n+1)
		s.res = make([]float64, n+1)
		s.g = make([]float64, n+1)
		s.b = make([]float64, n+1)
		s.v = make([]float64, n+1)
		s.diag = make([]float64, n+1)
		s.rhs = make([]float64, n+1)
		s.cp = make([]float64, n+1)
		s.dp = make([]float64, n+1)
		s.off = make([]float64, n)
		return
	}
	s.caps = s.caps[:n+1]
	s.res = s.res[:n+1]
	s.g = s.g[:n+1]
	s.b = s.b[:n+1]
	s.v = s.v[:n+1]
	s.diag = s.diag[:n+1]
	s.rhs = s.rhs[:n+1]
	s.cp = s.cp[:n+1]
	s.dp = s.dp[:n+1]
	s.off = s.off[:n]
}

// Delay50 integrates the ladder's step response and returns the time at
// which the far-end node crosses 50 % of the final value; linear
// interpolation locates the crossing inside the final step. A run that
// provably cannot cross returns *ErrNoCrossing. The arithmetic is
// identical on fresh and reused scratch (every vector the integration
// reads is fully rewritten or re-zeroed here), so results are
// bit-identical regardless of solver reuse.
func (s *Solver) Delay50(ld Ladder) (float64, error) {
	if err := ld.Validate(); err != nil {
		return 0, err
	}
	n := ld.Segments
	s.grow(n)
	caps, res, g, off, b := s.caps, s.res, s.g, s.off, s.b
	v, diag, rhs, cp, dp := s.v, s.diag, s.rhs, s.cp, s.dp
	// Node capacitances: the distributed wire cap splits into half
	// segments at each internal boundary; the far end adds the load.
	cseg := ld.CTotal / float64(n)
	caps[0] = cseg / 2
	for i := 1; i < n; i++ {
		caps[i] = cseg
	}
	caps[n] = cseg/2 + ld.CLoad
	// Ensure strictly positive capacitance at every node for stability.
	for i := range caps {
		if caps[i] <= 0 {
			caps[i] = 1e-21
		}
	}
	rseg := ld.RTotal / float64(n)
	if rseg <= 0 {
		rseg = 1e-6 // an ideal wire still needs a conductance path
	}
	// Resistances between node i-1 and i (node -1 is the source through
	// the driver).
	res[0] = ld.RDrive
	for i := 1; i <= n; i++ {
		res[i] = rseg
	}

	// The timestep is set from the dominant (Elmore) time constant:
	// trapezoidal integration is A-stable, so stiff fast modes from the
	// spatial discretization cannot blow up and accuracy at the 50 %
	// crossing is governed by the slow mode.
	tauTotal := ld.ElmoreDelay() / 0.38
	dt := tauTotal / 4000
	if dt <= 0 || math.IsInf(dt, 0) || math.IsNaN(dt) {
		return 0, fmt.Errorf("circuit: degenerate timestep for ladder %+v", ld)
	}

	// Trapezoidal: (C/dt + G/2)·v_{k+1} = (C/dt − G/2)·v_k + b, where G
	// is the (tridiagonal) conductance matrix and b the source vector.
	for i := 0; i <= n; i++ {
		g[i] = 1 / res[i]
		if i < n {
			g[i] += 1 / res[i+1]
			off[i] = -1 / res[i+1]
		}
	}
	src := 1.0 // unit step
	b[0] = src / res[0]
	for i := 1; i <= n; i++ {
		b[i] = 0
	}
	for i := range v {
		v[i] = 0
	}

	prev := 0.0
	prevDv := math.Inf(1)
	decRun := 0
	for step := 1; step <= maxSteps; step++ {
		// Build rhs = (C/dt − G/2)·v + b.
		for i := 0; i <= n; i++ {
			r := (caps[i]/dt-g[i]/2)*v[i] + b[i]
			if i > 0 {
				r -= off[i-1] / 2 * v[i-1]
			}
			if i < n {
				r -= off[i] / 2 * v[i+1]
			}
			rhs[i] = r
			diag[i] = caps[i]/dt + g[i]/2
		}
		// Thomas algorithm with symmetric off-diagonals off[i]/2.
		cp[0] = off[0] / 2 / diag[0]
		dp[0] = rhs[0] / diag[0]
		for i := 1; i <= n; i++ {
			lower := off[i-1] / 2
			den := diag[i] - lower*cp[i-1]
			if i < n {
				cp[i] = off[i] / 2 / den
			}
			dp[i] = (rhs[i] - lower*dp[i-1]) / den
		}
		v[n] = dp[n]
		for i := n - 1; i >= 0; i-- {
			v[i] = dp[i] - cp[i]*v[i+1]
		}
		if v[n] >= 0.5*src {
			// Interpolate inside the step.
			frac := (0.5*src - prev) / (v[n] - prev)
			return (float64(step-1) + frac) * dt, nil
		}
		// Hopelessness check: the far-end step response is monotone with
		// a decreasing increment past its inflection. Once the increment
		// has been non-increasing for a full window, future steps gain at
		// most dv each — if even noCrossMargin× the remaining budget at
		// that rate cannot reach 50 % (or the increment has died to zero
		// in floating point), no crossing will ever happen and the
		// remaining millions of steps are skipped.
		dv := v[n] - prev
		if dv <= prevDv {
			decRun++
		} else {
			decRun = 0
		}
		prevDv = dv
		if decRun >= monotoneWindow &&
			(dv <= 0 || 0.5*src-v[n] > float64(maxSteps-step)*dv*noCrossMargin) {
			return 0, &ErrNoCrossing{Steps: step, LastVoltage: v[n]}
		}
		prev = v[n]
	}
	return 0, &ErrNoCrossing{Steps: maxSteps, LastVoltage: prev}
}

// solverPool backs the convenience Ladder.Delay50 so hot callers (the
// platform derivation cache, sweeps) reuse scratch without threading a
// Solver through every call site.
var solverPool = sync.Pool{New: func() any { return NewSolver() }}

// Delay50 integrates the ladder's step response using a pooled Solver;
// see Solver.Delay50. After warm-up this path allocates nothing.
func (ld Ladder) Delay50() (float64, error) {
	s := solverPool.Get().(*Solver)
	d, err := s.Delay50(ld)
	solverPool.Put(s)
	return d, err
}

// WireLadder builds the ladder for a driven wire line at the operating
// point, discretized into the given number of segments.
func WireLadder(l wire.Line, op phys.OperatingPoint, m *phys.MOSFET, segments int) Ladder {
	size := l.DriverSize
	if size <= 0 {
		size = 1
	}
	return Ladder{
		RDrive:   l.Driver.Resistance(op, m) / size,
		RTotal:   l.Spec.ResistancePerMM(op.T) * l.LengthMM,
		CTotal:   l.Spec.CapPerMM * l.LengthMM,
		CLoad:    l.Driver.LoadCap,
		Segments: segments,
	}
}

// SimulateWireDelay transiently simulates the driven wire and returns
// its 50 % delay in seconds.
func SimulateWireDelay(l wire.Line, op phys.OperatingPoint, m *phys.MOSFET) (float64, error) {
	return WireLadder(l, op, m, 60).Delay50()
}

// SimulateLinkDelay transiently simulates one repeatered wire-link hop:
// the repeater segmentation is taken from the discrete optimizer at the
// given operating point and each repeater stage is simulated as its own
// driven ladder (the standard SPICE methodology for repeated lines),
// plus the latch overhead of the link model.
func SimulateLinkDelay(lk wire.Link, op phys.OperatingPoint, m *phys.MOSFET) (float64, error) {
	l := wire.Line{Spec: wire.Global, LengthMM: lk.HopMM, Driver: lk.Driver, DriverSize: 1}
	segMM, size := wire.OptimalSegmentation(l.Spec, l.Driver, op, m)
	segments := int(math.Round(l.LengthMM / segMM))
	if segments < 1 {
		segments = 1
	}
	segLen := l.LengthMM / float64(segments)
	stage := Ladder{
		RDrive: lk.Driver.Resistance(op, m) / size,
		RTotal: l.Spec.ResistancePerMM(op.T) * segLen,
		// The repeater's own output parasitic sits on the wire it
		// drives; fold it into the distributed capacitance.
		CTotal:   l.Spec.CapPerMM*segLen + lk.Driver.Cpar*size,
		CLoad:    lk.Driver.Cin * size,
		Segments: 40,
	}
	d, err := stage.Delay50()
	if err != nil {
		return 0, err
	}
	total := d*float64(segments) + wire.InterfaceOverhead(lk.Driver, op, m)
	// Latch overhead, identical to the analytic link model.
	ref := phys.Nominal45
	wire300 := wire.OptimalRepeatedDelay(l, ref, m)
	latch300 := wire300 * lk.LatchFraction / (1 - lk.LatchFraction)
	return total + latch300*m.GateDelayFactor(op), nil
}

// SimulatedLinkSpeedup returns the transient-simulated 300K→op speed-up
// of a wire link; Fig 10 compares this against the analytic link model.
func SimulatedLinkSpeedup(lk wire.Link, op phys.OperatingPoint, m *phys.MOSFET) (float64, error) {
	d300, err := SimulateLinkDelay(lk, phys.Nominal45, m)
	if err != nil {
		return 0, err
	}
	dOp, err := SimulateLinkDelay(lk, op, m)
	if err != nil {
		return 0, err
	}
	return d300 / dOp, nil
}
