package circuit

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cryowire/internal/phys"
	"cryowire/internal/wire"
)

func TestSingleRCStepResponse(t *testing.T) {
	// A lumped RC through a driver charges as 1−e^{−t/τ}: the 50 %
	// crossing is ln2·τ with τ = RDrive·C (no wire resistance).
	ld := Ladder{RDrive: 1000, RTotal: 1e-9, CTotal: 0, CLoad: 1e-12, Segments: 1}
	got, err := ld.Delay50()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Ln2 * 1000 * 1e-12
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("RC 50%% delay = %v, want %v (±1%%)", got, want)
	}
}

func TestDistributedWireNearElmore(t *testing.T) {
	// For a distributed RC line the 50 % delay is within ~15 % of the
	// 0.38/0.69-coefficient Elmore estimate (that is what those fitted
	// coefficients are for).
	ld := Ladder{RDrive: 500, RTotal: 5000, CTotal: 400e-15, CLoad: 20e-15, Segments: 80}
	got, err := ld.Delay50()
	if err != nil {
		t.Fatal(err)
	}
	elmore := ld.ElmoreDelay()
	if math.Abs(got-elmore)/elmore > 0.15 {
		t.Errorf("transient %v vs Elmore %v differ by more than 15%%", got, elmore)
	}
}

func TestConvergenceInSegments(t *testing.T) {
	base := Ladder{RDrive: 500, RTotal: 5000, CTotal: 400e-15, CLoad: 20e-15}
	coarse := base
	coarse.Segments = 40
	fine := base
	fine.Segments = 120
	dc, err := coarse.Delay50()
	if err != nil {
		t.Fatal(err)
	}
	df, err := fine.Delay50()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dc-df)/df > 0.02 {
		t.Errorf("discretization not converged: 40 segs %v vs 120 segs %v", dc, df)
	}
}

func TestDelayMonotoneProperties(t *testing.T) {
	f := func(rawR, rawC uint8) bool {
		r := 100 + float64(rawR)*40
		c := (50 + float64(rawC)*4) * 1e-15
		a := Ladder{RDrive: r, RTotal: 2000, CTotal: c, CLoad: 10e-15, Segments: 20}
		b := a
		b.RTotal = 4000 // more wire resistance must be slower
		da, err1 := a.Delay50()
		db, err2 := b.Delay50()
		if err1 != nil || err2 != nil {
			return false
		}
		return db > da
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadLadders(t *testing.T) {
	bad := []Ladder{
		{RDrive: 100, RTotal: 100, CTotal: 1e-13, Segments: 0},
		{RDrive: 0, RTotal: 100, CTotal: 1e-13, Segments: 1},
		{RDrive: 100, RTotal: -1, CTotal: 1e-13, Segments: 1},
		{RDrive: 100, RTotal: 100, CTotal: 0, CLoad: 0, Segments: 1},
	}
	for i, ld := range bad {
		if err := ld.Validate(); err == nil {
			t.Errorf("case %d: Validate(%+v) = nil, want error", i, ld)
		}
		if _, err := ld.Delay50(); err == nil {
			t.Errorf("case %d: Delay50 should propagate validation error", i)
		}
	}
}

func TestWireSpeedupMatchesAnalyticModel(t *testing.T) {
	// The transient solver must agree with the analytic wire model on
	// the 300K→77K speed-up of the forwarding wire (same physics, two
	// numerical routes — this is the §3 validation discipline).
	m := phys.DefaultMOSFET()
	l := wire.NewLine(wire.Forwarding, wire.ForwardingWireLengthMM, 50)
	op := wire.At77()
	d300, err := SimulateWireDelay(l, phys.Nominal45, m)
	if err != nil {
		t.Fatal(err)
	}
	d77, err := SimulateWireDelay(l, op, m)
	if err != nil {
		t.Fatal(err)
	}
	simSpeedup := d300 / d77
	analytic := wire.Speedup(l, op, m, false)
	if math.Abs(simSpeedup-analytic)/analytic > 0.05 {
		t.Errorf("transient speedup %v vs analytic %v differ by >5%%", simSpeedup, analytic)
	}
}

func TestFig10LinkValidation(t *testing.T) {
	// Fig 10: the wire-link model's 6 mm 77 K speed-up (3.05×) matches
	// the transient ("Hspice") simulation within a small error — the
	// paper reports 1.6 %; we accept 5 %.
	m := phys.DefaultMOSFET()
	lk := wire.CryoBusLink()
	op := wire.At77()
	sim, err := SimulatedLinkSpeedup(lk, op, m)
	if err != nil {
		t.Fatal(err)
	}
	model := lk.LinkSpeedup(op, m)
	errFrac := math.Abs(sim-model) / model
	if errFrac > 0.05 {
		t.Errorf("link model %.3f vs transient %.3f: error %.1f%% > 5%%", model, sim, errFrac*100)
	}
	if sim < 2.7 || sim > 3.4 {
		t.Errorf("transient 6mm link speedup = %v, want near 3.05", sim)
	}
}

func TestDelayPositiveAndFinite(t *testing.T) {
	f := func(rawLen uint8) bool {
		l := wire.NewLine(wire.SemiGlobal, 0.1+float64(rawLen)/100, 5)
		d, err := SimulateWireDelay(l, phys.Nominal45, phys.DefaultMOSFET())
		return err == nil && d > 0 && !math.IsInf(d, 0) && !math.IsNaN(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSolverReuseBitIdentical(t *testing.T) {
	// A reused solver must produce bit-identical results to a fresh one:
	// every vector the integration reads is rewritten or re-zeroed per
	// call, so scratch contents from earlier ladders cannot leak in.
	ladders := []Ladder{
		{RDrive: 1000, RTotal: 1e-9, CTotal: 0, CLoad: 1e-12, Segments: 1},
		{RDrive: 500, RTotal: 5000, CTotal: 400e-15, CLoad: 20e-15, Segments: 40},
		{RDrive: 200, RTotal: 800, CTotal: 150e-15, CLoad: 5e-15, Segments: 7},
	}
	s := NewSolver()
	for round := 0; round < 2; round++ {
		for _, ld := range ladders {
			fresh, err := NewSolver().Delay50(ld)
			if err != nil {
				t.Fatal(err)
			}
			reused, err := s.Delay50(ld)
			if err != nil {
				t.Fatal(err)
			}
			if fresh != reused {
				t.Errorf("round %d ladder %+v: reused solver %v != fresh %v", round, ld, reused, fresh)
			}
		}
	}
}

func TestSolverZeroSteadyStateAllocs(t *testing.T) {
	// The zero-alloc contract of the perf harness: after warm-up a
	// solver's Delay50 must not allocate at all.
	s := NewSolver()
	if _, err := s.Delay50(benchLadder); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.Delay50(benchLadder); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warmed Solver.Delay50 allocates %v per run, want 0", allocs)
	}
}

func TestNoCrossingTypedError(t *testing.T) {
	// A near-zero driver resistance with a huge load makes the
	// Elmore-derived timestep pathologically small relative to the true
	// time constant through the rseg fallback: the far end crawls and
	// never reaches 50 % within the step budget. The solver must report
	// a typed diagnosis — and via the early exit, not by grinding out
	// all 20M steps.
	ld := Ladder{RDrive: 1e-12, RTotal: 0, CTotal: 1, CLoad: 0, Segments: 1}
	_, err := ld.Delay50()
	var nc *ErrNoCrossing
	if !errors.As(err, &nc) {
		t.Fatalf("pathological ladder returned %v, want *ErrNoCrossing", err)
	}
	if nc.Steps <= 0 || nc.Steps >= maxSteps {
		t.Errorf("Steps = %d, want an early exit in (0, %d)", nc.Steps, maxSteps)
	}
	if nc.LastVoltage <= 0 || nc.LastVoltage >= 0.5 {
		t.Errorf("LastVoltage = %v, want in (0, 0.5)", nc.LastVoltage)
	}
	if !strings.Contains(nc.Error(), "no 50% crossing") {
		t.Errorf("diagnosis %q lacks the crossing message", nc.Error())
	}
}
