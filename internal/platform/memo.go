package platform

import (
	"sync"
	"sync/atomic"
)

// memo is a concurrency-safe compute-once-per-key cache. A short
// mutex-protected map lookup installs a per-key once; the (possibly
// expensive) compute runs outside the map lock, so concurrent callers
// of *different* keys derive in parallel while concurrent callers of
// the *same* key block until the single derivation finishes. The zero
// value is ready to use, which is what lets Platform embed one memo per
// artifact kind without a constructor.
type memo[K comparable, V any] struct {
	mu     sync.Mutex
	m      map[K]*memoEntry[V]
	hits   atomic.Uint64
	misses atomic.Uint64
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
}

// get returns the cached value for k, computing it exactly once.
func (c *memo[K, V]) get(k K, compute func() V) V {
	c.mu.Lock()
	e, ok := c.m[k]
	if !ok {
		if c.m == nil {
			c.m = make(map[K]*memoEntry[V])
		}
		e = &memoEntry[V]{}
		c.m[k] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.val = compute() })
	return e.val
}

// stats snapshots the hit/miss counters.
func (c *memo[K, V]) stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}
