// Package platform is the shared derivation layer of the model stack.
// A Platform owns one MOSFET card plus a memoized, concurrency-safe
// cache of everything derivable from an operating point — validated
// (temperature, Vdd, Vth) triples, per-class wire speed-ups and
// repeater solutions, NoC Mesh/Bus timings, and the Table 3 core
// frequency targets — so a 300K↔77K comparison derives each artifact
// exactly once instead of once per call site. Every layer above
// (sim, core, experiments, the public facade) consumes one Platform
// instead of re-running phys/wire/pipeline derivations from scratch,
// which is what makes the parallel experiment engine cheap: dozens of
// concurrent runners share a single warm cache instead of each paying
// the repeater searches and superpipeline derivations again.
package platform

import (
	"fmt"
	"sync"

	"cryowire/internal/noc"
	"cryowire/internal/phys"
	"cryowire/internal/pipeline"
	"cryowire/internal/power"
	"cryowire/internal/wire"
)

// Platform bundles the calibrated device models with the derivation
// cache. The zero value is not usable; construct with New or Default.
// All methods are safe for concurrent use, and each cached artifact is
// computed exactly once per key even under concurrent first access.
type Platform struct {
	mosfet *phys.MOSFET
	pipe   *pipeline.Model
	pow    *power.Model
	driver wire.Driver

	ops      memo[phys.OperatingPoint, error]
	mesh     memo[meshKey, noc.Timing]
	bus      memo[phys.OperatingPoint, noc.Timing]
	hops     memo[phys.OperatingPoint, int]
	speedups memo[speedupKey, float64]
	repeat   memo[lineKey, wire.Repeated]
	forward  memo[phys.Kelvin, float64]
	cores    memo[string, pipeline.CoreSpec]
	derived  memo[derivedKey, derivedCore]
}

type derivedKey struct {
	splits     int
	analysisOp phys.OperatingPoint
	op         phys.OperatingPoint
	sizing     pipeline.Sizing
}

type derivedCore struct {
	core pipeline.CoreSpec
	err  error
}

type meshKey struct {
	op           phys.OperatingPoint
	routerCycles int
}

type speedupKey struct {
	spec       wire.Spec
	lengthMM   float64
	driverSize float64
	op         phys.OperatingPoint
	repeated   bool
}

type lineKey struct {
	spec     wire.Spec
	lengthMM float64
	op       phys.OperatingPoint
}

// New builds a platform around the default calibrated MOSFET card.
func New() *Platform { return NewWith(phys.DefaultMOSFET()) }

// NewWith builds a platform around a caller-supplied model card (for
// sensitivity studies on perturbed devices).
func NewWith(m *phys.MOSFET) *Platform {
	return &Platform{
		mosfet: m,
		pipe:   pipeline.NewModel(m),
		pow:    power.NewModel(),
		driver: wire.DefaultDriver(),
	}
}

// defaultPlatform is the process-wide shared instance behind Default.
var defaultPlatform = sync.OnceValue(New)

// Default returns the process-wide shared platform. Every top-level
// entry point that is not handed an explicit Platform uses this one, so
// repeated API calls — and parallel experiment runners — share a single
// warm derivation cache.
func Default() *Platform { return defaultPlatform() }

// MOSFET returns the platform's transistor model card.
func (p *Platform) MOSFET() *phys.MOSFET { return p.mosfet }

// PipelineModel returns the shared pipeline critical-path model.
func (p *Platform) PipelineModel() *pipeline.Model { return p.pipe }

// PowerModel returns the shared power model.
func (p *Platform) PowerModel() *power.Model { return p.pow }

// NominalOp returns the nominal-voltage operating point at temperature
// t — the condition of the Fig 5 wire study and every "@TK" timing.
func (p *Platform) NominalOp(t phys.Kelvin) phys.OperatingPoint {
	return phys.OperatingPoint{T: t, Vdd: phys.Nominal45.Vdd, Vth: phys.Nominal45.Vth}
}

// OpAt validates and returns the nominal-voltage operating point at
// tempK. Validation results are memoized per point.
func (p *Platform) OpAt(tempK float64) (phys.OperatingPoint, error) {
	op := p.NominalOp(phys.Kelvin(tempK))
	if err := p.ValidateOp(op); err != nil {
		return phys.OperatingPoint{}, err
	}
	return op, nil
}

// ValidateOp memoizes OperatingPoint.Valid plus the model card's
// temperature gate: a sub-77 K operating point is only derivable when
// the card carries the 4 K extension (phys.ErrNo4KCard otherwise), so
// an uncalibrated platform can never silently extrapolate into the
// liquid-helium regime.
func (p *Platform) ValidateOp(op phys.OperatingPoint) error {
	return p.ops.get(op, func() error {
		if err := op.Valid(); err != nil {
			return err
		}
		return p.mosfet.ValidTemperature(op.T)
	})
}

// MeshTiming returns the memoized router-NoC timing at op with the
// given router pipeline depth.
func (p *Platform) MeshTiming(op phys.OperatingPoint, routerCycles int) noc.Timing {
	return p.mesh.get(meshKey{op, routerCycles}, func() noc.Timing {
		return noc.MeshTiming(op, p.mosfet, routerCycles)
	})
}

// BusTiming returns the memoized shared-bus timing at op.
func (p *Platform) BusTiming(op phys.OperatingPoint) noc.Timing {
	return p.bus.get(op, func() noc.Timing {
		return noc.BusTiming(op, p.mosfet)
	})
}

// HopsPerCycle returns the memoized wire-link hop count per NoC cycle
// at op (4 at 300 K, 12 at 77 K).
func (p *Platform) HopsPerCycle(op phys.OperatingPoint) int {
	return p.hops.get(op, func() int { return wire.NoCHopsPerCycle(op, p.mosfet) })
}

// WireSpeedup returns the memoized 300K→op speed-up of a driven wire in
// spec at the given length and driver size. With repeated=true the line
// carries latency-optimal repeaters re-optimized at each operating
// point (the expensive discrete search this cache exists for).
func (p *Platform) WireSpeedup(spec wire.Spec, lengthMM, driverSize float64, op phys.OperatingPoint, repeated bool) float64 {
	k := speedupKey{spec, lengthMM, driverSize, op, repeated}
	return p.speedups.get(k, func() float64 {
		return wire.Speedup(wire.NewLine(spec, lengthMM, driverSize), op, p.mosfet, repeated)
	})
}

// WireSpeedupByClass is WireSpeedup keyed by the public class name
// ("local", "semi-global", "global", "forwarding"); unknown classes and
// invalid temperatures are errors. Unrepeated lines use the
// length-proportional driver sizing of the Fig 5 study.
func (p *Platform) WireSpeedupByClass(class string, lengthMM, tempK float64, repeated bool) (float64, error) {
	spec, err := wire.SpecByName(class)
	if err != nil {
		return 0, err
	}
	op, err := p.OpAt(tempK)
	if err != nil {
		return 0, err
	}
	drv := 1 + lengthMM*10
	if repeated {
		drv = 1
	}
	return p.WireSpeedup(spec, lengthMM, drv, op, repeated), nil
}

// OptimalRepeaters returns the memoized latency-optimal repeater
// solution for a default-driver line of the spec and length at op.
func (p *Platform) OptimalRepeaters(spec wire.Spec, lengthMM float64, op phys.OperatingPoint) wire.Repeated {
	return p.repeat.get(lineKey{spec, lengthMM, op}, func() wire.Repeated {
		return wire.OptimizeRepeaters(wire.NewLine(spec, lengthMM, 1), op, p.mosfet)
	})
}

// ForwardingSpeedup returns the memoized 300K→t speed-up of the in-core
// data-forwarding wires (2.81× at 77 K).
func (p *Platform) ForwardingSpeedup(t phys.Kelvin) float64 {
	return p.forward.get(t, func() float64 { return wire.ForwardingSpeedup(t, p.mosfet) })
}

// --- core frequency targets (Table 3 columns) -------------------------------

// Core derivations run the §4 superpipelining methodology plus the
// critical-path frequency search; each named column is derived once per
// platform.

// Baseline300 returns the memoized 300 K baseline core.
func (p *Platform) Baseline300() pipeline.CoreSpec {
	return p.cores.get("baseline300", func() pipeline.CoreSpec { return pipeline.Baseline300(p.pipe) })
}

// Superpipeline77 returns the memoized "77K Superpipeline" core.
func (p *Platform) Superpipeline77() pipeline.CoreSpec {
	return p.cores.get("superpipeline77", func() pipeline.CoreSpec { return pipeline.Superpipeline77(p.pipe) })
}

// SuperpipelineCryoCore77 returns the memoized "+CryoCore" column.
func (p *Platform) SuperpipelineCryoCore77() pipeline.CoreSpec {
	return p.cores.get("superpipelineCryoCore77", func() pipeline.CoreSpec {
		return pipeline.SuperpipelineCryoCore77(p.pipe)
	})
}

// CryoSP returns the memoized final CryoSP core (≈7.84 GHz).
func (p *Platform) CryoSP() pipeline.CoreSpec {
	return p.cores.get("cryoSP", func() pipeline.CoreSpec { return pipeline.CryoSP(p.pipe) })
}

// CHPCore returns the memoized CHP-core comparison point.
func (p *Platform) CHPCore() pipeline.CoreSpec {
	return p.cores.get("chpCore", func() pipeline.CoreSpec { return pipeline.CHPCore(p.pipe) })
}

// DerivedCore returns the memoized core at an arbitrary point of the §4
// design space: `splits` frontend stages split (ranked at analysisOp),
// the given sizing recipe, clocked at op. This is the derivation the
// design-space-exploration engine sweeps; memoizing it means a search
// revisiting the same (depth, voltage, sizing) triple — across
// strategies, resumed runs and concurrent candidates — pays the
// critical-path frequency search exactly once.
func (p *Platform) DerivedCore(splits int, analysisOp, op phys.OperatingPoint, sz pipeline.Sizing) (pipeline.CoreSpec, error) {
	d := p.derived.get(derivedKey{splits, analysisOp, op, sz}, func() derivedCore {
		core, err := pipeline.CustomCore(p.pipe, splits, analysisOp, op, sz)
		return derivedCore{core, err}
	})
	return d.core, d.err
}

// FrequencyTarget returns the memoized clock of a named Table 3 core
// column: "baseline300", "superpipeline77", "superpipelineCryoCore77",
// "cryoSP" or "chpCore".
func (p *Platform) FrequencyTarget(core string) (float64, error) {
	switch core {
	case "baseline300":
		return p.Baseline300().FreqGHz, nil
	case "superpipeline77":
		return p.Superpipeline77().FreqGHz, nil
	case "superpipelineCryoCore77":
		return p.SuperpipelineCryoCore77().FreqGHz, nil
	case "cryoSP":
		return p.CryoSP().FreqGHz, nil
	case "chpCore":
		return p.CHPCore().FreqGHz, nil
	default:
		return 0, fmt.Errorf("platform: unknown core column %q", core)
	}
}

// Stats reports cache effectiveness across every memo table.
func (p *Platform) Stats() CacheStats {
	var s CacheStats
	s.add(p.ops.stats())
	s.add(p.mesh.stats())
	s.add(p.bus.stats())
	s.add(p.hops.stats())
	s.add(p.speedups.stats())
	s.add(p.repeat.stats())
	s.add(p.forward.stats())
	s.add(p.cores.stats())
	s.add(p.derived.stats())
	return s
}

// CacheStats counts derivation-cache traffic: Misses is the number of
// distinct artifacts actually derived, Hits the number of calls served
// from the cache.
type CacheStats struct {
	Hits, Misses uint64
}

func (s *CacheStats) add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
}
