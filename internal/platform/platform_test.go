package platform

import (
	"math"
	"sync"
	"testing"

	"cryowire/internal/noc"
	"cryowire/internal/phys"
	"cryowire/internal/wire"
)

// Every repeated lookup must be served from the cache: one miss per
// distinct key, hits for everything after.
func TestMemoizeOnce(t *testing.T) {
	p := New()
	op := p.NominalOp(phys.T77)

	first := p.MeshTiming(op, 1)
	s0 := p.Stats()
	if s0.Misses != 1 || s0.Hits != 0 {
		t.Fatalf("after first MeshTiming: stats = %+v, want 1 miss 0 hits", s0)
	}
	second := p.MeshTiming(op, 1)
	s1 := p.Stats()
	if s1.Misses != 1 || s1.Hits != 1 {
		t.Fatalf("after second MeshTiming: stats = %+v, want 1 miss 1 hit", s1)
	}
	if first != second {
		t.Fatalf("memoized MeshTiming changed: %+v vs %+v", first, second)
	}

	// A different key is a fresh derivation, not a hit.
	p.MeshTiming(op, 3)
	if s := p.Stats(); s.Misses != 2 || s.Hits != 1 {
		t.Fatalf("after distinct key: stats = %+v, want 2 misses 1 hit", s)
	}
}

// Concurrent first access to the same keys must derive each artifact
// exactly once (run under -race via make check).
func TestMemoizeConcurrentFirstAccess(t *testing.T) {
	p := New()
	op77 := p.NominalOp(phys.T77)
	op300 := p.NominalOp(phys.T300)

	const goroutines = 16
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			p.MeshTiming(op77, 1)
			p.MeshTiming(op300, 1)
			p.BusTiming(op77)
			p.HopsPerCycle(op77)
			p.ForwardingSpeedup(phys.T77)
			if err := p.ValidateOp(op77); err != nil {
				t.Errorf("ValidateOp(77K): %v", err)
			}
		}()
	}
	wg.Wait()

	// 6 distinct keys across the tables, hit goroutines*6 - 6 times.
	s := p.Stats()
	if s.Misses != 6 {
		t.Fatalf("concurrent access derived %d artifacts, want 6 (stats %+v)", s.Misses, s)
	}
	if want := uint64(goroutines*6 - 6); s.Hits != want {
		t.Fatalf("hits = %d, want %d (stats %+v)", s.Hits, want, s)
	}
}

// Concurrent core derivations (the expensive superpipeline searches)
// must also collapse to one derivation per column.
func TestCoreDerivationsConcurrent(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if p.CryoSP().FreqGHz <= p.Baseline300().FreqGHz {
				t.Error("CryoSP is not faster than the 300K baseline")
			}
			p.CHPCore()
			p.Superpipeline77()
			p.SuperpipelineCryoCore77()
		}()
	}
	wg.Wait()
	if s := p.cores.stats(); s.Misses != 5 {
		t.Fatalf("core table derived %d columns, want 5 (stats %+v)", s.Misses, s)
	}
}

func TestFrequencyTarget(t *testing.T) {
	p := New()
	for _, name := range []string{
		"baseline300", "superpipeline77", "superpipelineCryoCore77", "cryoSP", "chpCore",
	} {
		f, err := p.FrequencyTarget(name)
		if err != nil {
			t.Fatalf("FrequencyTarget(%q): %v", name, err)
		}
		if f <= 0 || math.IsNaN(f) {
			t.Fatalf("FrequencyTarget(%q) = %v, want positive", name, f)
		}
	}
	if _, err := p.FrequencyTarget("warpCore"); err == nil {
		t.Fatal("FrequencyTarget accepted an unknown column")
	}
}

func TestOpAtRejectsUnphysicalTemperatures(t *testing.T) {
	p := New()
	for _, bad := range []float64{0, -40, math.NaN()} {
		if _, err := p.OpAt(bad); err == nil {
			t.Errorf("OpAt(%v) accepted an unphysical temperature", bad)
		}
	}
	op, err := p.OpAt(77)
	if err != nil {
		t.Fatalf("OpAt(77): %v", err)
	}
	if op.T != phys.T77 {
		t.Fatalf("OpAt(77) returned T=%v", op.T)
	}
}

// WireSpeedupByClass must accept all four public classes — including
// the in-core "forwarding" wire — and reject unknown names.
func TestWireSpeedupByClass(t *testing.T) {
	p := New()
	for _, class := range wire.ClassNames() {
		for _, repeated := range []bool{false, true} {
			s, err := p.WireSpeedupByClass(class, 1.0, 77, repeated)
			if err != nil {
				t.Fatalf("WireSpeedupByClass(%q, repeated=%v): %v", class, repeated, err)
			}
			if s <= 1 {
				t.Errorf("WireSpeedupByClass(%q, repeated=%v) = %v, want > 1 at 77K", class, repeated, s)
			}
		}
	}
	if _, err := p.WireSpeedupByClass("quantum", 1.0, 77, false); err == nil {
		t.Fatal("WireSpeedupByClass accepted an unknown class")
	}
	if _, err := p.WireSpeedupByClass("local", 1.0, -1, false); err == nil {
		t.Fatal("WireSpeedupByClass accepted a negative temperature")
	}
}

// The process-wide Default platform is a singleton.
func TestDefaultIsShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() returned distinct platforms")
	}
}

// Platform-derived NoC timings must agree with the direct derivations
// they memoize.
func TestTimingsMatchDirectDerivation(t *testing.T) {
	p := New()
	op := p.NominalOp(phys.T77)
	if got, want := p.MeshTiming(op, 1), noc.MeshTiming(op, p.MOSFET(), 1); got != want {
		t.Errorf("MeshTiming: platform %+v, direct %+v", got, want)
	}
	if got, want := p.BusTiming(op), noc.BusTiming(op, p.MOSFET()); got != want {
		t.Errorf("BusTiming: platform %+v, direct %+v", got, want)
	}
	if got, want := p.ForwardingSpeedup(phys.T77), wire.ForwardingSpeedup(phys.T77, p.MOSFET()); got != want {
		t.Errorf("ForwardingSpeedup: platform %v, direct %v", got, want)
	}
}
