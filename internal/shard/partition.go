// Package shard distributes one design-space exploration across
// workers: a coordinator partitions the space's point indexes into
// contiguous ranges, dispatches each range to an executor — an
// in-process engine run, or a remote `cryowire serve` replica spoken
// to over the async jobs API — and merges the per-shard checkpoint
// journals and Pareto frontiers into a result byte-identical to a
// single-node run of the same search.
//
// Everything rests on two properties of the engine. First, a point's
// index is a pure function of the space's axis lists, so processes
// holding equal spaces agree on what every index means and only index
// ranges ever cross the wire. Second, the checkpoint journal's key
// binds (space, sim config) but never a range or schedule, so all
// shards of one search record under one key and their journals merge
// (commutatively, associatively, idempotently — dse.MergeEntries)
// into a journal indistinguishable from a single-node run's. The
// coordinator finishes by replaying that merged journal through
// dse.Run, which serves every evaluation from the journal's memo: the
// final result is byte-identical to the single-node run by
// construction, and any entries a dead shard failed to deliver are
// transparently re-evaluated locally.
package shard

import "cryowire/internal/dse"

// Partition divides the half-open point-index interval [0, n) into at
// most k contiguous ranges that cover every index exactly once, with
// sizes differing by at most one (the first n%k ranges get the extra
// index). k is clamped to [1, n], so no range is ever empty; n <= 0
// yields no ranges. FuzzPartition proves the exactly-once coverage.
func Partition(n, k int) []dse.Range {
	if n <= 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([]dse.Range, k)
	base, extra := n/k, n%k
	start := 0
	for i := range out {
		length := base
		if i < extra {
			length++
		}
		out[i] = dse.Range{Start: start, End: start + length}
		start += length
	}
	return out
}
