// Remote-executor tests live in an external test package: they boot a
// real server (internal/server imports internal/shard for the fan-out
// endpoint and metrics), so an internal test file would be an import
// cycle.
package shard_test

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cryowire/internal/dse"
	"cryowire/internal/platform"
	"cryowire/internal/server"
	"cryowire/internal/shard"
	"cryowire/internal/sim"
)

func quietLogger() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// remoteCfg is the quick space with a fully pinned sim config (remote
// dispatch requires one, so replicas journal under the coordinator's
// key) and a small checkpoint cadence so journals are mirrorable
// mid-run.
func remoteCfg(pf *platform.Platform) dse.Config {
	return dse.Config{
		Space:           dse.DefaultSpace(true),
		Strategy:        dse.StrategyGrid,
		Sim:             sim.Config{WarmupCycles: 200, MeasureCycles: 800, Seed: 1},
		Platform:        pf,
		CheckpointEvery: 2,
	}
}

// singleNodeRef runs the reference single-node search, journaled.
func singleNodeRef(t *testing.T, pf *platform.Platform) (resJSON, journal []byte) {
	t.Helper()
	cfg := remoteCfg(pf)
	cfg.Journal = filepath.Join(t.TempDir(), "single.jsonl")
	res, err := dse.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("single-node run: %v", err)
	}
	resJSON, err = res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	journal, err = os.ReadFile(cfg.Journal)
	if err != nil {
		t.Fatal(err)
	}
	return resJSON, journal
}

// startReplica boots a jobs-enabled server on a loopback listener.
func startReplica(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := server.New(server.Config{
		JobsDir: filepath.Join(t.TempDir(), "jobs"),
		Logger:  quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	})
	return ts
}

// maxProgress tracks the high-water mark of an aggregate progress
// stream that may be reported concurrently from shard goroutines.
func maxProgress() (func(int, int), func() int) {
	var mu sync.Mutex
	high := 0
	return func(ev, _ int) {
			mu.Lock()
			if ev > high {
				high = ev
			}
			mu.Unlock()
		}, func() int {
			mu.Lock()
			defer mu.Unlock()
			return high
		}
}

// TestShardRemoteLoopbackByteIdentical is the remote golden gate: a
// 2-shard run dispatched to a loopback `cryowire serve` replica over
// the real jobs API produces a result and merged journal byte-identical
// to the single-node run.
func TestShardRemoteLoopbackByteIdentical(t *testing.T) {
	pf := platform.New()
	wantJSON, wantJournal := singleNodeRef(t, pf)
	ts := startReplica(t)

	cfg := remoteCfg(pf)
	cfg.Journal = filepath.Join(t.TempDir(), "merged.jsonl")
	report, high := maxProgress()
	cfg.Progress = report
	res, err := shard.Run(context.Background(), cfg, shard.Options{
		Shards:       2,
		Replicas:     []string{ts.URL},
		Dir:          t.TempDir(),
		PollInterval: 10 * time.Millisecond,
		Logger:       quietLogger(),
	})
	if err != nil {
		t.Fatalf("remote sharded run: %v", err)
	}
	got, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantJSON) {
		t.Fatal("remote sharded result differs from single-node run")
	}
	gotJournal, err := os.ReadFile(cfg.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJournal, wantJournal) {
		t.Fatalf("remote merged journal differs from single-node journal:\n%s\nwant:\n%s", gotJournal, wantJournal)
	}
	if n := high(); n != cfg.Space.Size() {
		t.Fatalf("final progress %d, want %d", n, cfg.Space.Size())
	}
	st := shard.ReadStats()
	if st.Replicas[ts.URL].Requests == 0 {
		t.Fatalf("no per-replica HTTP stats recorded for %s: %+v", ts.URL, st.Replicas)
	}
}

// TestShardRemoteReplicaDeath kills the replica for every poll — jobs
// submit fine, then the replica is unreachable — and proves each shard
// is re-dispatched to a local executor and the merged output still
// lands on single-node bytes.
func TestShardRemoteReplicaDeath(t *testing.T) {
	pf := platform.New()
	wantJSON, wantJournal := singleNodeRef(t, pf)
	ts := startReplica(t)
	tsURL, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	rp := httputil.NewSingleHostReverseProxy(tsURL)
	rp.ErrorLog = nil
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			// The replica accepted the shard, then vanished before the
			// first poll could mirror anything.
			http.Error(w, "replica vanished mid-flight", http.StatusBadGateway)
			return
		}
		rp.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	before := shard.ReadStats()
	cfg := remoteCfg(pf)
	cfg.Journal = filepath.Join(t.TempDir(), "merged.jsonl")
	res, err := shard.Run(context.Background(), cfg, shard.Options{
		Shards:        2,
		Replicas:      []string{proxy.URL},
		Dir:           t.TempDir(),
		PollInterval:  10 * time.Millisecond,
		RetryAttempts: 2,
		RetryBackoff:  5 * time.Millisecond,
		Logger:        quietLogger(),
	})
	if err != nil {
		t.Fatalf("sharded run with dead replica: %v", err)
	}
	got, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantJSON) {
		t.Fatal("result after replica death differs from single-node run")
	}
	gotJournal, err := os.ReadFile(cfg.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJournal, wantJournal) {
		t.Fatal("merged journal after replica death differs from single-node journal")
	}
	after := shard.ReadStats()
	if after.Redispatched-before.Redispatched < 2 {
		t.Fatalf("redispatched delta = %d, want >= 2 (both shards lost their replica)", after.Redispatched-before.Redispatched)
	}
	if after.HTTPRetries == before.HTTPRetries {
		t.Fatal("no HTTP retries recorded against the dead replica")
	}
}
