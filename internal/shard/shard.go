package shard

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"cryowire/internal/dse"
	"cryowire/internal/par"
	"cryowire/internal/platform"
)

// Options configures the coordinator. The zero value runs one local
// shard — a plain engine run with extra steps, useful only as a
// degenerate case.
type Options struct {
	// Shards is the partition count. 0 defaults to len(Replicas), or 1
	// when there are none; it is clamped to the evaluation count so no
	// shard is empty.
	Shards int
	// Replicas are base URLs of remote `cryowire serve -jobs-dir`
	// replicas. Non-empty means every shard runs remotely, assigned
	// round-robin; empty means every shard runs in-process.
	Replicas []string
	// Dir holds the per-shard journals (and the merged journal when
	// Config.Journal is empty). Empty means a temp dir removed when Run
	// returns; pass a durable dir to make shard checkpoints survive a
	// coordinator crash.
	Dir string
	// PollInterval is the remote state/journal mirror cadence (default
	// 500ms).
	PollInterval time.Duration
	// RetryAttempts / RetryBackoff tune the replica HTTP client: total
	// attempts per request (default 4) and first backoff (default
	// 250ms, doubling per attempt). Retries target 5xx, 429 and network
	// errors; other 4xx are permanent.
	RetryAttempts int
	RetryBackoff  time.Duration
	// Redispatch bounds how many times a failed shard is re-dispatched
	// to a local executor, resuming from its journal checkpoint (0
	// means 1; negative disables re-dispatch).
	Redispatch int
	// Client overrides the HTTP client (nil = http.DefaultClient).
	Client *http.Client
	// Logger receives dispatch/re-dispatch lines; nil stays silent.
	Logger *slog.Logger
}

// executor runs one shard, journaling every completed evaluation into
// the shard's journal file and reporting monotonic per-shard progress.
type executor interface {
	run(ctx context.Context, cfg dse.Config, r dse.Range, journalPath string, progress func(done int)) error
}

// Run executes one sharded design-space search. The config is the
// same one a single-node dse.Run would take (grid strategy only —
// ranges partition nothing else); cfg.Journal, when set, becomes the
// merged journal and cfg.Progress observes the aggregate count across
// shards (it may be called concurrently from shard goroutines). The
// result — and the merged journal — are byte-identical to the
// single-node run's: shard journals merge order-independently, the
// merged journal is replayed through the engine, and the replayed
// frontier is cross-checked against the order-independent merge of
// the per-shard frontiers.
func Run(ctx context.Context, cfg dse.Config, opt Options) (*dse.Result, error) {
	if err := cfg.Space.Validate(); err != nil {
		return nil, err
	}
	if cfg.Strategy == "" {
		cfg.Strategy = dse.StrategyGrid
	}
	if cfg.Strategy != dse.StrategyGrid {
		return nil, fmt.Errorf("shard: sharding requires the %q strategy (got %q): only the exhaustive grid partitions by point index", dse.StrategyGrid, cfg.Strategy)
	}
	if cfg.Range != nil {
		return nil, errors.New("shard: cfg.Range is owned by the coordinator; bound the search with Budget instead")
	}
	if cfg.Platform == nil {
		cfg.Platform = platform.Default()
	}
	size := cfg.Space.Size()
	budget := cfg.Budget
	if budget <= 0 || budget > size {
		budget = size
	}
	if len(opt.Replicas) > 0 && (cfg.Sim.WarmupCycles <= 0 || cfg.Sim.MeasureCycles <= 0 || cfg.Sim.Seed == 0) {
		// The replica fills zero sim fields with its own defaults and
		// would journal under a different key than the coordinator
		// expects; demand a fully pinned config instead of merging
		// nothing later.
		return nil, errors.New("shard: remote dispatch requires explicit sim config (warmup, measure cycles and seed) so replicas journal under the coordinator's key")
	}
	shards := opt.Shards
	if shards <= 0 {
		if len(opt.Replicas) > 0 {
			shards = len(opt.Replicas)
		} else {
			shards = 1
		}
	}
	ranges := Partition(budget, shards)

	dir := opt.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "cryowire-shard-")
		if err != nil {
			return nil, fmt.Errorf("shard: journal dir: %w", err)
		}
		defer os.RemoveAll(dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: journal dir: %w", err)
	}
	merged := cfg.Journal
	if merged == "" {
		merged = filepath.Join(dir, "merged.jsonl")
	} else if !cfg.Resume {
		if st, err := os.Stat(merged); err == nil && st.Size() > 0 {
			return nil, fmt.Errorf("dse: journal %s already exists; pass -resume to continue it or remove it to start over", merged)
		}
	}

	// Aggregate progress: each shard owns a monotonic counter, the sum
	// is reported on every change.
	report := cfg.Progress
	cfg.Progress = nil
	done := make([]atomic.Int64, len(ranges))
	progressFor := func(i int) func(int) {
		if report == nil {
			return nil
		}
		return func(n int) {
			done[i].Store(int64(n))
			sum := 0
			for k := range done {
				sum += int(done[k].Load())
			}
			report(sum, budget)
		}
	}

	// All-local runs split the worker budget across concurrent shards;
	// a re-dispatched shard (degraded fleet) gets the full budget.
	workers := cfg.Workers
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	workersPer := workers / len(ranges)
	if workersPer < 1 {
		workersPer = 1
	}
	makeExec := func(i int) executor {
		if len(opt.Replicas) > 0 {
			poll := opt.PollInterval
			if poll <= 0 {
				poll = 500 * time.Millisecond
			}
			c := newClient(opt.Replicas[i%len(opt.Replicas)], opt.Client, opt.RetryAttempts, opt.RetryBackoff)
			return &remoteExecutor{c: c, poll: poll}
		}
		return &localExecutor{workers: workersPer}
	}

	// Run every shard concurrently; the first fatal error cancels the
	// rest (their checkpoints survive for a future resume).
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	paths := make([]string, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard-%03d.jsonl", i))
		wg.Add(1)
		go func(i int, r dse.Range) {
			defer wg.Done()
			if err := runShard(gctx, cfg, opt, makeExec(i), i, r, paths[i], progressFor(i)); err != nil {
				errs[i] = err
				cancel()
			}
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Merge: union all shard journals (plus any resumed merged journal)
	// and atomically rewrite the merged journal in index order — the
	// bytes a single-node grid run would have appended.
	sets := make([][]dse.JournalEntry, 0, len(ranges)+1)
	prior, err := dse.ReadJournal(merged, cfg.Space, cfg.Sim)
	if err != nil {
		return nil, err
	}
	if len(prior) > 0 {
		sets = append(sets, prior)
	}
	for i := range ranges {
		ents, err := dse.ReadJournal(paths[i], cfg.Space, cfg.Sim)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		sets = append(sets, ents)
	}
	union, err := dse.MergeEntries(sets...)
	if err != nil {
		return nil, err
	}
	stats.mergedShards.Add(uint64(len(ranges)))
	stats.mergedEntries.Add(uint64(len(union)))
	if err := dse.WriteJournal(merged, cfg.Space, cfg.Sim, union); err != nil {
		return nil, err
	}

	// Finalize by replay: the engine serves every evaluation from the
	// merged journal's memo, so the Result is the single-node run's by
	// construction — and an entry a dead shard never delivered is
	// simply re-evaluated here instead of failing the search.
	fin := cfg
	fin.Journal = merged
	fin.Resume = true
	fin.Budget = cfg.Budget
	res, err := dse.Run(ctx, fin)
	if err != nil {
		return nil, err
	}
	if len(union) < budget {
		// The replay healed missing entries by appending them after the
		// sorted lines; restore index order so the merged journal stays
		// byte-identical to a single-node run's.
		healed, err := dse.ReadJournal(merged, cfg.Space, cfg.Sim)
		if err != nil {
			return nil, err
		}
		if err := dse.WriteJournal(merged, cfg.Space, cfg.Sim, healed); err != nil {
			return nil, err
		}
	} else {
		// Complete union: cross-check the replayed frontier against the
		// order-independent merge of the per-shard frontiers. A mismatch
		// means a merge-law violation — fail loudly, never ship a wrong
		// frontier.
		objs := cfg.Objectives
		fronts := make([][]dse.Candidate, len(sets))
		for i, set := range sets {
			cands := make([]dse.Candidate, 0, len(set))
			for _, e := range set {
				if e.Index < budget {
					cands = append(cands, dse.Candidate{Index: e.Index, Point: cfg.Space.At(e.Index), Eval: e.Eval})
				}
			}
			fronts[i] = dse.MergeFrontiers(objs, cands)
		}
		if want := dse.MergeFrontiers(objs, fronts...); !reflect.DeepEqual(want, res.Frontier) {
			return nil, errors.New("shard: merged per-shard frontiers disagree with the replayed single-node frontier; this is a bug, refusing to return either")
		}
	}
	return res, nil
}

// runShard drives one shard to completion: the primary executor, then
// up to Redispatch local re-dispatches resuming from the shard's
// journal checkpoint.
func runShard(ctx context.Context, cfg dse.Config, opt Options, exec executor, idx int, r dse.Range, path string, progress func(int)) error {
	stats.dispatched.Add(1)
	err := exec.run(ctx, cfg, r, path, progress)
	redispatch := opt.Redispatch
	if redispatch == 0 {
		redispatch = 1
	}
	for n := 0; err != nil && ctx.Err() == nil && n < redispatch; n++ {
		stats.redispatched.Add(1)
		if opt.Logger != nil {
			opt.Logger.Warn("shard: re-dispatching locally from journal checkpoint",
				"shard", idx, "range_start", r.Start, "range_end", r.End, "err", err)
		}
		local := &localExecutor{workers: cfg.Workers}
		err = local.run(ctx, cfg, r, path, progress)
	}
	return err
}
