package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"cryowire/internal/dse"
)

// The remote executor speaks the server's async jobs API over plain
// HTTP. The wire structs below mirror the server's DTOs by JSON shape
// rather than by import: internal/server imports this package (for
// the /v1/dse/shards fan-out and the /metrics counters), so importing
// it back would be a cycle.

// jobSubmit is the POST /v1/dse/jobs body for one range-restricted
// shard. Every axis is sent explicitly — axis overrides replace the
// server's defaults wholesale, so the replica reconstructs exactly the
// coordinator's space and journals under exactly its key.
type jobSubmit struct {
	Strategy        string    `json:"strategy"`
	Seed            int64     `json:"seed"`
	TempsK          []float64 `json:"temps_k"`
	Modes           []string  `json:"modes"`
	Depths          []int     `json:"depths"`
	Nets            []string  `json:"nets"`
	Workloads       []string  `json:"workloads"`
	StageTempsK     []float64 `json:"stage_temps_k,omitempty"`
	RangeStart      int       `json:"range_start"`
	RangeEnd        int       `json:"range_end"`
	CheckpointEvery int       `json:"checkpoint_every,omitempty"`
	Config          struct {
		WarmupCycles  int   `json:"warmup_cycles"`
		MeasureCycles int   `json:"measure_cycles"`
		Seed          int64 `json:"seed"`
	} `json:"config"`
}

// jobState is the slice of jobs.State the executor polls on.
type jobState struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error"`
}

// client is a retrying HTTP client for one replica. Network errors,
// 5xx and 429 retry with exponential backoff; other 4xx are permanent
// — the request itself is wrong and repeating it cannot help.
type client struct {
	base     string
	hc       *http.Client
	attempts int
	backoff  time.Duration
}

func newClient(base string, hc *http.Client, attempts int, backoff time.Duration) *client {
	if hc == nil {
		hc = http.DefaultClient
	}
	if attempts <= 0 {
		attempts = 4
	}
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	return &client{base: strings.TrimRight(base, "/"), hc: hc, attempts: attempts, backoff: backoff}
}

// do issues one request with the retry policy and returns the response
// body of the first 2xx.
func (c *client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	var lastErr error
	backoff := c.backoff
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			stats.httpRetries.Add(1)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		start := time.Now()
		resp, err := c.hc.Do(req)
		if err != nil {
			stats.observeReplica(c.base, time.Since(start).Seconds(), true)
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			continue
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		stats.observeReplica(c.base, time.Since(start).Seconds(), resp.StatusCode >= 400)
		if rerr != nil {
			lastErr = fmt.Errorf("%s %s: read response: %w", method, path, rerr)
			continue
		}
		switch {
		case resp.StatusCode < 300:
			return data, nil
		case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests:
			lastErr = fmt.Errorf("%s %s: replica answered %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(data)))
		default:
			return nil, fmt.Errorf("shard: %s %s: replica rejected the request (%d): %s", method, path, resp.StatusCode, strings.TrimSpace(string(data)))
		}
	}
	return nil, fmt.Errorf("shard: replica %s gave up after %d attempts: %w", c.base, c.attempts, lastErr)
}

// remoteExecutor runs one shard on a replica: submit a
// range-restricted job, then poll its state and incrementally mirror
// its journal into the shard's local journal file. The mirror is the
// failure currency — if the replica dies, the coordinator re-dispatches
// the shard locally and the local executor resumes from exactly the
// mirrored checkpoint, so a dead replica costs only the unmirrored
// tail.
type remoteExecutor struct {
	c    *client
	poll time.Duration
}

func (e *remoteExecutor) run(ctx context.Context, cfg dse.Config, r dse.Range, journalPath string, progress func(done int)) error {
	w, err := dse.OpenJournalWriter(journalPath, cfg.Space, cfg.Sim)
	if err != nil {
		return err
	}
	defer w.Close()
	covered := func() int {
		n := 0
		for i := r.Start; i < r.End; i++ {
			if w.Has(i) {
				n++
			}
		}
		return n
	}
	report := func(n int) {
		if progress != nil {
			progress(n)
		}
	}
	if n := covered(); n == r.Len() {
		// A previous dispatch already mirrored the whole range.
		report(n)
		return nil
	}

	id, err := e.submit(ctx, cfg, r)
	if err != nil {
		return err
	}
	// Whatever happens, try not to leave the job behind on the replica:
	// cancel it if it still runs, remove it if it finished. Best effort
	// on a background context — the run context may already be dead.
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.c.do(dctx, http.MethodDelete, "/v1/dse/jobs/"+id, nil)
		e.c.do(dctx, http.MethodDelete, "/v1/dse/jobs/"+id, nil)
	}()

	for {
		stb, err := e.c.do(ctx, http.MethodGet, "/v1/dse/jobs/"+id, nil)
		if err != nil {
			return err
		}
		var st jobState
		if err := json.Unmarshal(stb, &st); err != nil {
			return fmt.Errorf("shard: replica job state: %w", err)
		}
		// Fetch the journal after observing the state: when the state
		// says done, this read necessarily holds every line.
		data, err := e.c.do(ctx, http.MethodGet, "/v1/dse/jobs/"+id+"/journal", nil)
		if err != nil {
			return err
		}
		entries, err := dse.ParseJournal(data, cfg.Space, cfg.Sim)
		if err != nil {
			return fmt.Errorf("shard: replica journal: %w", err)
		}
		for _, en := range entries {
			if en.Index < r.Start || en.Index >= r.End {
				continue // foreign index: never let one shard's journal leak into another's range
			}
			if err := w.Record(en); err != nil {
				return err
			}
		}
		report(covered())
		switch st.Status {
		case "done":
			if n := covered(); n != r.Len() {
				return fmt.Errorf("shard: replica job %s done but its journal covers %d/%d of [%d,%d)", id, n, r.Len(), r.Start, r.End)
			}
			return nil
		case "failed", "canceled", "interrupted":
			return fmt.Errorf("shard: replica job %s ended %s: %s", id, st.Status, st.Error)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(e.poll):
		}
	}
}

// submit posts the range-restricted job and returns its id.
func (e *remoteExecutor) submit(ctx context.Context, cfg dse.Config, r dse.Range) (string, error) {
	req := jobSubmit{
		Strategy:        dse.StrategyGrid,
		Seed:            cfg.Seed,
		TempsK:          cfg.Space.TempsK,
		Modes:           cfg.Space.Modes,
		Depths:          cfg.Space.Depths,
		Nets:            cfg.Space.Nets,
		Workloads:       cfg.Space.WorkloadNames,
		StageTempsK:     cfg.Space.StageTempsK,
		RangeStart:      r.Start,
		RangeEnd:        r.End,
		CheckpointEvery: cfg.CheckpointEvery,
	}
	req.Config.WarmupCycles = cfg.Sim.WarmupCycles
	req.Config.MeasureCycles = cfg.Sim.MeasureCycles
	req.Config.Seed = cfg.Sim.Seed
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	resp, err := e.c.do(ctx, http.MethodPost, "/v1/dse/jobs", body)
	if err != nil {
		return "", err
	}
	var st jobState
	if err := json.Unmarshal(resp, &st); err != nil {
		return "", fmt.Errorf("shard: replica submit response: %w", err)
	}
	if st.ID == "" {
		return "", fmt.Errorf("shard: replica submit response carried no job id: %s", strings.TrimSpace(string(resp)))
	}
	return st.ID, nil
}
