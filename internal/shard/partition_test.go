package shard

import "testing"

func TestPartition(t *testing.T) {
	cases := []struct {
		n, k    int
		lens    []int
		noneFor bool
	}{
		{n: 16, k: 2, lens: []int{8, 8}},
		{n: 16, k: 4, lens: []int{4, 4, 4, 4}},
		{n: 10, k: 3, lens: []int{4, 3, 3}},
		{n: 3, k: 8, lens: []int{1, 1, 1}}, // clamped: no empty shards
		{n: 5, k: 0, lens: []int{5}},       // clamped up to 1
		{n: 0, k: 4, noneFor: true},
		{n: -3, k: 2, noneFor: true},
	}
	for _, c := range cases {
		got := Partition(c.n, c.k)
		if c.noneFor {
			if got != nil {
				t.Errorf("Partition(%d,%d) = %v, want nil", c.n, c.k, got)
			}
			continue
		}
		if len(got) != len(c.lens) {
			t.Fatalf("Partition(%d,%d) = %v, want %d ranges", c.n, c.k, got, len(c.lens))
		}
		next := 0
		for i, r := range got {
			if r.Start != next || r.Len() != c.lens[i] {
				t.Fatalf("Partition(%d,%d)[%d] = %+v, want start %d len %d", c.n, c.k, i, r, next, c.lens[i])
			}
			next = r.End
		}
		if next != c.n {
			t.Fatalf("Partition(%d,%d) covers [0,%d), want [0,%d)", c.n, c.k, next, c.n)
		}
	}
}

// FuzzPartition proves the partition contract over arbitrary space
// sizes and shard counts: the ranges are contiguous, non-empty, in
// order, and their union covers [0, n) with every index assigned
// exactly once.
func FuzzPartition(f *testing.F) {
	f.Add(16, 2)
	f.Add(16, 4)
	f.Add(576, 7)
	f.Add(1, 1)
	f.Add(3, 100)
	f.Add(0, 5)
	f.Add(-9, -3)
	f.Add(1<<20, 64)
	f.Fuzz(func(t *testing.T, n, k int) {
		if n > 1<<22 {
			n %= 1 << 22 // bound the coverage walk, not the property
		}
		ranges := Partition(n, k)
		if n <= 0 {
			if ranges != nil {
				t.Fatalf("Partition(%d,%d) = %v, want nil", n, k, ranges)
			}
			return
		}
		want := k
		if want < 1 {
			want = 1
		}
		if want > n {
			want = n
		}
		if len(ranges) != want {
			t.Fatalf("Partition(%d,%d) yielded %d ranges, want %d", n, k, len(ranges), want)
		}
		next := 0
		minLen, maxLen := n, 0
		for i, r := range ranges {
			if r.Start != next {
				t.Fatalf("range %d starts at %d, want %d (gap or overlap)", i, r.Start, next)
			}
			if r.Len() <= 0 {
				t.Fatalf("range %d is empty: %+v", i, r)
			}
			if l := r.Len(); l < minLen {
				minLen = l
			}
			if l := r.Len(); l > maxLen {
				maxLen = l
			}
			next = r.End
		}
		if next != n {
			t.Fatalf("union covers [0,%d), want [0,%d)", next, n)
		}
		if maxLen-minLen > 1 {
			t.Fatalf("unbalanced partition: shard sizes span [%d,%d]", minLen, maxLen)
		}
	})
}
