package shard

import (
	"context"

	"cryowire/internal/dse"
)

// runLocal is the engine entry point, indirected so tests can inject
// mid-shard crashes; production always points at dse.Run.
var runLocal = dse.Run

// localExecutor runs one shard in-process: a range-restricted grid
// search journaling into the shard's journal file. Resume is always
// on — openJournal treats an empty file as fresh — so a re-dispatched
// shard picks up at its checkpoint and re-simulates only the
// unjournaled tail. The engine itself checkpoints the journal every
// CheckpointEvery evaluations, which is what bounds that tail.
type localExecutor struct {
	// workers bounds this shard's parallel evaluation; 0 lets the
	// engine default to all CPUs.
	workers int
}

func (e *localExecutor) run(ctx context.Context, cfg dse.Config, r dse.Range, journalPath string, progress func(done int)) error {
	sub := cfg
	sub.Range = &r
	sub.Budget = 0
	sub.Journal = journalPath
	sub.Resume = true
	sub.Workers = e.workers
	sub.Progress = nil
	if progress != nil {
		// The engine counts journal-replayed entries too, so a resumed
		// shard's progress is monotonic from its checkpoint.
		sub.Progress = func(evaluated, _ int) { progress(evaluated) }
	}
	_, err := runLocal(ctx, sub)
	return err
}
