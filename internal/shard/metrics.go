package shard

import (
	"sync"
	"sync/atomic"
)

// Package-wide coordinator counters, monotonic since process start,
// rendered by the server's /metrics as cryowire_shard_* — the same
// pattern as sim's batch stats. Atomics cover the scalar counters; the
// per-replica map takes a mutex because it is written once per HTTP
// request, far off any hot path.
type counters struct {
	dispatched    atomic.Uint64
	redispatched  atomic.Uint64
	httpRetries   atomic.Uint64
	mergedShards  atomic.Uint64
	mergedEntries atomic.Uint64

	mu       sync.Mutex
	replicas map[string]*replicaCounter
}

type replicaCounter struct {
	requests   uint64
	errors     uint64
	latencySum float64
}

var stats counters

// observeReplica records one HTTP request to a replica.
func (c *counters) observeReplica(base string, seconds float64, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.replicas == nil {
		c.replicas = make(map[string]*replicaCounter)
	}
	rc := c.replicas[base]
	if rc == nil {
		rc = &replicaCounter{}
		c.replicas[base] = rc
	}
	rc.requests++
	if failed {
		rc.errors++
	}
	rc.latencySum += seconds
}

// Stats is a snapshot of the coordinator counters.
type Stats struct {
	// Dispatched counts shards handed to an executor; Redispatched
	// counts shards handed back to a local executor after their first
	// executor failed (the journal checkpoint limits the rework to the
	// unjournaled tail).
	Dispatched   uint64
	Redispatched uint64
	// HTTPRetries counts retried HTTP attempts against replicas.
	HTTPRetries uint64
	// MergedShards counts shard journals merged; MergedEntries counts
	// journal entries carried through those merges.
	MergedShards  uint64
	MergedEntries uint64
	// Replicas is per-replica HTTP traffic, keyed by base URL; nil when
	// no remote dispatch has happened.
	Replicas map[string]ReplicaStats
}

// ReplicaStats summarizes the HTTP traffic to one replica.
type ReplicaStats struct {
	Requests          uint64
	Errors            uint64
	LatencySumSeconds float64
}

// ReadStats snapshots the package-wide counters.
func ReadStats() Stats {
	s := Stats{
		Dispatched:    stats.dispatched.Load(),
		Redispatched:  stats.redispatched.Load(),
		HTTPRetries:   stats.httpRetries.Load(),
		MergedShards:  stats.mergedShards.Load(),
		MergedEntries: stats.mergedEntries.Load(),
	}
	stats.mu.Lock()
	if len(stats.replicas) > 0 {
		s.Replicas = make(map[string]ReplicaStats, len(stats.replicas))
		for k, v := range stats.replicas {
			s.Replicas[k] = ReplicaStats{Requests: v.requests, Errors: v.errors, LatencySumSeconds: v.latencySum}
		}
	}
	stats.mu.Unlock()
	return s
}
