package shard

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cryowire/internal/dse"
	"cryowire/internal/platform"
	"cryowire/internal/sim"
)

// quickShardCfg is the quick DSE space at cheap, fully pinned sim
// lengths on a shared platform cache.
func quickShardCfg(pf *platform.Platform) dse.Config {
	return dse.Config{
		Space:    dse.DefaultSpace(true),
		Strategy: dse.StrategyGrid,
		Sim:      sim.Config{WarmupCycles: 200, MeasureCycles: 800, Seed: 1},
		Platform: pf,
	}
}

// singleNode runs the reference single-node search, journaled.
func singleNode(t *testing.T, pf *platform.Platform) (resJSON, journal []byte) {
	t.Helper()
	cfg := quickShardCfg(pf)
	cfg.Journal = filepath.Join(t.TempDir(), "single.jsonl")
	res, err := dse.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("single-node run: %v", err)
	}
	resJSON, err = res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	journal, err = os.ReadFile(cfg.Journal)
	if err != nil {
		t.Fatal(err)
	}
	return resJSON, journal
}

// TestShardLocalByteIdentical is the local-executor golden gate: 2- and
// 4-shard runs of the quick space produce a frontier and merged
// journal byte-identical to the single-node run.
func TestShardLocalByteIdentical(t *testing.T) {
	pf := platform.New()
	wantJSON, wantJournal := singleNode(t, pf)
	for _, shards := range []int{2, 4} {
		cfg := quickShardCfg(pf)
		cfg.Journal = filepath.Join(t.TempDir(), "merged.jsonl")
		// Progress may be called concurrently from shard goroutines;
		// track a locked high-water mark.
		var mu sync.Mutex
		var last int
		cfg.Progress = func(evaluated, budget int) {
			mu.Lock()
			defer mu.Unlock()
			if evaluated > budget {
				t.Errorf("progress %d exceeds budget %d", evaluated, budget)
			}
			if evaluated > last {
				last = evaluated
			}
		}
		res, err := Run(context.Background(), cfg, Options{Shards: shards, Dir: t.TempDir()})
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		got, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantJSON) {
			t.Fatalf("%d shards: result differs from single-node run", shards)
		}
		gotJournal, err := os.ReadFile(cfg.Journal)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJournal, wantJournal) {
			t.Fatalf("%d shards: merged journal differs from single-node journal:\n%s\nwant:\n%s", shards, gotJournal, wantJournal)
		}
		mu.Lock()
		final := last
		mu.Unlock()
		if final != cfg.Space.Size() {
			t.Fatalf("%d shards: final progress %d, want %d", shards, final, cfg.Space.Size())
		}
	}
}

// TestShardLocalRedispatch kills shard 0's executor mid-flight — after
// it journaled part of its range — and proves the re-dispatch resumes
// from the checkpoint and still lands on single-node bytes.
func TestShardLocalRedispatch(t *testing.T) {
	pf := platform.New()
	wantJSON, wantJournal := singleNode(t, pf)

	var mu sync.Mutex
	injected := false
	realRun := runLocal
	runLocal = func(ctx context.Context, c dse.Config) (*dse.Result, error) {
		mu.Lock()
		crash := c.Range != nil && c.Range.Start == 0 && !injected
		if crash {
			injected = true
		}
		mu.Unlock()
		if !crash {
			return realRun(ctx, c)
		}
		// Simulate dying mid-shard: journal the first two points for
		// real, then fail. The re-dispatch must resume from exactly here.
		part := c
		part.Range = &dse.Range{Start: 0, End: 2}
		if _, err := realRun(ctx, part); err != nil {
			return nil, err
		}
		return nil, errors.New("injected shard crash")
	}
	defer func() { runLocal = realRun }()

	before := ReadStats()
	cfg := quickShardCfg(pf)
	cfg.Journal = filepath.Join(t.TempDir(), "merged.jsonl")
	res, err := Run(context.Background(), cfg, Options{Shards: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("sharded run with injected crash: %v", err)
	}
	got, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantJSON) {
		t.Fatal("result after re-dispatch differs from single-node run")
	}
	gotJournal, err := os.ReadFile(cfg.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJournal, wantJournal) {
		t.Fatal("merged journal after re-dispatch differs from single-node journal")
	}
	after := ReadStats()
	if after.Redispatched == before.Redispatched {
		t.Fatal("injected crash never triggered a re-dispatch")
	}
	mu.Lock()
	defer mu.Unlock()
	if !injected {
		t.Fatal("crash injection never fired")
	}
}

// TestShardRejects pins the coordinator's input contract.
func TestShardRejects(t *testing.T) {
	pf := platform.New()
	cfg := quickShardCfg(pf)
	cfg.Strategy = dse.StrategyRandom
	if _, err := Run(context.Background(), cfg, Options{Shards: 2}); err == nil {
		t.Fatal("adaptive strategy accepted for sharding")
	}
	cfg = quickShardCfg(pf)
	cfg.Range = &dse.Range{Start: 0, End: 4}
	if _, err := Run(context.Background(), cfg, Options{Shards: 2}); err == nil {
		t.Fatal("caller-owned Range accepted")
	}
	cfg = quickShardCfg(pf)
	cfg.Sim.Seed = 0
	if _, err := Run(context.Background(), cfg, Options{Shards: 2, Replicas: []string{"http://127.0.0.1:1"}}); err == nil {
		t.Fatal("unpinned sim config accepted for remote dispatch")
	}
	cfg = quickShardCfg(pf)
	cfg.Journal = filepath.Join(t.TempDir(), "merged.jsonl")
	if err := os.WriteFile(cfg.Journal, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), cfg, Options{Shards: 2}); err == nil {
		t.Fatal("existing merged journal accepted without Resume")
	}
}
