package pipeline

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cryowire/internal/phys"
)

func newModel() *Model { return NewModel(phys.DefaultMOSFET()) }

func approx(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, relTol*100)
	}
}

func TestBOOMStructure(t *testing.T) {
	p := BOOM()
	if len(p.Stages) != 13 {
		t.Fatalf("BOOM has %d representative stages, want 13", len(p.Stages))
	}
	if p.Depth != 14 {
		t.Errorf("BOOM depth = %d, want 14", p.Depth)
	}
	front, back := 0, 0
	for _, s := range p.Stages {
		if s.Frontend {
			front++
		} else {
			back++
		}
	}
	if front != 5 || back != 8 {
		t.Errorf("frontend/backend split = %d/%d, want 5/8", front, back)
	}
}

func TestFig12At300K(t *testing.T) {
	md := newModel()
	p := BOOM()
	// The slowest 300 K stage is execute bypass at normalized 1.0.
	worst, d := md.CriticalPath(p, phys.Nominal45)
	if worst.Name != "execute bypass" {
		t.Errorf("300K bottleneck = %q, want execute bypass", worst.Name)
	}
	approx(t, "300K max critical path", d, 1.0, 0.005)
	// 300K Observation #1: backend stages have a much higher wire
	// portion (≈45 %) than frontend stages (≈19 %).
	var fSum, bSum float64
	var fN, bN int
	for _, s := range p.Stages {
		if s.Frontend {
			fSum += s.WireFraction()
			fN++
		} else {
			bSum += s.WireFraction()
			bN++
		}
	}
	fAvg, bAvg := fSum/float64(fN), bSum/float64(bN)
	if fAvg < 0.16 || fAvg > 0.23 {
		t.Errorf("frontend avg wire fraction = %v, want ≈0.19", fAvg)
	}
	if bAvg < 0.42 || bAvg > 0.50 {
		t.Errorf("backend avg wire fraction = %v, want ≈0.45", bAvg)
	}
}

func TestFig2TopThreeWirePortions(t *testing.T) {
	// Fig 2: writeback, execute bypass and data read from bypass average
	// 57.6 % wire in their critical paths.
	p := BOOM()
	sum := 0.0
	found := 0
	for _, s := range p.Stages {
		switch s.Name {
		case "writeback", "execute bypass", "data read from bypass":
			sum += s.WireFraction()
			found++
		}
	}
	if found != 3 {
		t.Fatalf("found %d of the 3 Fig 2 stages", found)
	}
	approx(t, "top-3 avg wire portion", sum/3, 0.576, 0.02)
}

func TestFig13At77K(t *testing.T) {
	md := newModel()
	p := BOOM()
	op := At77()
	// 77 K Observation #1: the bottleneck moves to the frontend and the
	// max path shrinks by only ≈19 %.
	worst, d := md.CriticalPath(p, op)
	if !worst.Frontend {
		t.Errorf("77K bottleneck = %q, want a frontend stage", worst.Name)
	}
	if worst.Name != "fetch1" {
		t.Errorf("77K bottleneck = %q, want fetch1", worst.Name)
	}
	approx(t, "77K max critical path", d, 0.81, 0.015)
	// The forwarding stages collapse below the frontend.
	for _, s := range p.Stages {
		if s.Name == "execute bypass" {
			if sd := md.StageDelay(s, op); sd >= d {
				t.Errorf("execute bypass at 77K (%v) should be below the frontend max (%v)", sd, d)
			}
		}
	}
}

func TestSuperpipelineAt77K(t *testing.T) {
	md := newModel()
	res := md.Superpipeline(BOOM(), At77())
	// §4.4: exactly fetch1, fetch3 and decode&rename are split.
	want := []string{"fetch1", "fetch3", "decode&rename"}
	if len(res.SplitStages) != 3 {
		t.Fatalf("split %v, want %v", res.SplitStages, want)
	}
	for i, n := range want {
		if res.SplitStages[i] != n {
			t.Errorf("split[%d] = %q, want %q", i, res.SplitStages[i], n)
		}
	}
	if res.TargetStage != "execute bypass" {
		t.Errorf("target stage = %q, want execute bypass", res.TargetStage)
	}
	// 5-stage frontend becomes 8 stages; 13 representative → 16; depth
	// 14 → 17 (Table 3).
	if got := len(res.Pipeline.Stages); got != 16 {
		t.Errorf("superpipelined stage count = %d, want 16", got)
	}
	if res.Pipeline.Depth != 17 {
		t.Errorf("superpipelined depth = %d, want 17", res.Pipeline.Depth)
	}
	// Fig 14: max critical path falls 38 % vs the 300 K baseline.
	_, d := md.CriticalPath(res.Pipeline, At77())
	approx(t, "superpipelined 77K max path", d, 0.62, 0.015)
}

func TestSuperpipelineMeaninglessAt300K(t *testing.T) {
	// 300 K Observation #2: the un-pipelinable backend stages are the
	// bottleneck, so the methodology splits nothing at 300 K.
	md := newModel()
	res := md.Superpipeline(BOOM(), phys.Nominal45)
	if len(res.SplitStages) != 0 {
		t.Errorf("300K superpipelining split %v, want none", res.SplitStages)
	}
	if md.MaxFrequencyGHz(res.Pipeline, phys.Nominal45) != md.MaxFrequencyGHz(BOOM(), phys.Nominal45) {
		t.Error("300K superpipelining should not change frequency")
	}
}

func TestTable3Frequencies(t *testing.T) {
	md := newModel()
	approx(t, "300K Baseline", Baseline300(md).FreqGHz, 4.0, 0.005)
	// 77K Superpipeline: 6.4 GHz (+61 %).
	approx(t, "77K Superpipeline", Superpipeline77(md).FreqGHz, 6.4, 0.025)
	// Width reduction leaves frequency unchanged.
	if a, b := Superpipeline77(md).FreqGHz, SuperpipelineCryoCore77(md).FreqGHz; a != b {
		t.Errorf("CryoCore sizing changed frequency: %v vs %v", a, b)
	}
	// CryoSP: 7.84 GHz (+96 %).
	approx(t, "CryoSP", CryoSP(md).FreqGHz, 7.84, 0.025)
	// CHP-core: ≈6.1 GHz; our derivation is allowed a few % deviation.
	approx(t, "CHP-core", CHPCore(md).FreqGHz, 6.1, 0.04)
	// Ordering of the headline claims: CryoSP ≈28 % above CHP-core.
	ratio := CryoSP(md).FreqGHz / CHPCore(md).FreqGHz
	if ratio < 1.2 || ratio > 1.35 {
		t.Errorf("CryoSP/CHP frequency ratio = %v, want ≈1.28", ratio)
	}
}

func TestTable3Sizing(t *testing.T) {
	md := newModel()
	b := Baseline300(md)
	if b.Width != 8 || b.ROB != 224 || b.LoadQ != 72 || b.StoreQ != 56 || b.IssueQ != 97 || b.IntRegs != 180 || b.FpRegs != 168 {
		t.Errorf("baseline sizing wrong: %+v", b)
	}
	c := CryoSP(md)
	if c.Width != 4 || c.ROB != 96 || c.LoadQ != 24 || c.StoreQ != 24 || c.IssueQ != 72 || c.IntRegs != 100 || c.FpRegs != 96 {
		t.Errorf("CryoSP sizing wrong: %+v", c)
	}
	if c.Depth != 17 {
		t.Errorf("CryoSP depth = %d, want 17", c.Depth)
	}
	if chp := CHPCore(md); chp.Depth != 14 {
		t.Errorf("CHP depth = %d, want 14", chp.Depth)
	}
	for _, spec := range []CoreSpec{b, c, CHPCore(md), Superpipeline77(md), SuperpipelineCryoCore77(md)} {
		if err := spec.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", spec.Name, err)
		}
	}
}

func TestMispredictPenaltyGrowsWithDepth(t *testing.T) {
	md := newModel()
	if b, c := Baseline300(md), CryoSP(md); c.MispredictPenalty != b.MispredictPenalty+3 {
		t.Errorf("CryoSP penalty %d vs baseline %d: want +3 for 3 extra stages",
			c.MispredictPenalty, b.MispredictPenalty)
	}
}

func TestFig9PipelineValidation(t *testing.T) {
	// §3.2.3: at 135 K the pipeline model predicts ≈15 % core frequency
	// gain; the LN-cooled i5-6600K measured 12.1 %. Our model must land
	// in the validation window.
	md := newModel()
	op := phys.OperatingPoint{T: phys.T135, Vdd: phys.Nominal45.Vdd, Vth: phys.Nominal45.Vth}
	speedup := md.MaxFrequencyGHz(BOOM(), op) / md.MaxFrequencyGHz(BOOM(), phys.Nominal45)
	if speedup < 1.10 || speedup > 1.20 {
		t.Errorf("135K pipeline speedup = %v, want within the Fig 9 window [1.10, 1.20]", speedup)
	}
}

func TestStageDelayMonotoneInCooling(t *testing.T) {
	md := newModel()
	for _, s := range BOOM().Stages {
		prev := math.Inf(1)
		for _, temp := range []phys.Kelvin{300, 200, 135, 100, 77} {
			op := phys.OperatingPoint{T: temp, Vdd: phys.Nominal45.Vdd, Vth: phys.Nominal45.Vth}
			d := md.StageDelay(s, op)
			if d > prev {
				t.Errorf("stage %s delay increased while cooling to %vK", s.Name, temp)
			}
			prev = d
		}
	}
}

func TestSplitStagesFasterThanParent(t *testing.T) {
	md := newModel()
	for _, s := range BOOM().Stages {
		for _, half := range s.Split {
			for _, op := range []phys.OperatingPoint{phys.Nominal45, At77()} {
				if md.StageDelay(half, op) >= md.StageDelay(s, op) {
					t.Errorf("split stage %s not faster than parent %s at %+v", half.Name, s.Name, op)
				}
			}
		}
	}
}

func TestSplitConservesWork(t *testing.T) {
	// The two halves of a split stage should jointly cover roughly the
	// parent's logic (sum within [parent, parent+15%] — the split adds
	// flip-flop overhead, it cannot delete logic).
	for _, s := range BOOM().Stages {
		if len(s.Split) == 0 {
			continue
		}
		sum := 0.0
		for _, h := range s.Split {
			sum += h.Total()
		}
		if sum < s.Total() || sum > s.Total()*1.15 {
			t.Errorf("stage %s: split halves total %v vs parent %v", s.Name, sum, s.Total())
		}
	}
}

func TestWireSpeedupKinds(t *testing.T) {
	md := newModel()
	long := md.WireSpeedup(LongWire, phys.T77)
	short := md.WireSpeedup(ShortWire, phys.T77)
	approx(t, "long wire speedup @77K", long, 2.81, 0.02)
	if short >= long {
		t.Errorf("short-wire speedup %v should be below long-wire %v", short, long)
	}
	if short < 1.5 || short > 2.3 {
		t.Errorf("short-wire speedup = %v, want a modest local-wire gain", short)
	}
	// Cached path returns identical values.
	if md.WireSpeedup(LongWire, phys.T77) != long {
		t.Error("cache changed the long-wire value")
	}
}

func TestFrequencyMonotoneInTemperature(t *testing.T) {
	md := newModel()
	f := func(raw uint8) bool {
		t1 := phys.Kelvin(77 + float64(raw%223))
		t2 := t1 + 10
		op1 := phys.OperatingPoint{T: t1, Vdd: phys.Nominal45.Vdd, Vth: phys.Nominal45.Vth}
		op2 := phys.OperatingPoint{T: t2, Vdd: phys.Nominal45.Vdd, Vth: phys.Nominal45.Vth}
		return md.MaxFrequencyGHz(BOOM(), op1) >= md.MaxFrequencyGHz(BOOM(), op2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStageNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	var walk func([]Stage)
	var dupes []string
	walk = func(ss []Stage) {
		for _, s := range ss {
			if seen[s.Name] {
				dupes = append(dupes, s.Name)
			}
			seen[s.Name] = true
			walk(s.Split)
		}
	}
	walk(BOOM().Stages)
	if len(dupes) > 0 {
		t.Errorf("duplicate stage names: %s", strings.Join(dupes, ", "))
	}
}
