package pipeline

import (
	"fmt"

	"cryowire/internal/phys"
)

// SuperpipelineResult describes the outcome of applying the §4.4
// frontend-superpipelining methodology at an operating point.
type SuperpipelineResult struct {
	Pipeline Pipeline
	// Target is the superpipelining target latency: the slowest
	// un-pipelinable backend stage at the operating point.
	Target      float64
	TargetStage string
	// SplitStages names the frontend stages that were split because
	// their delay exceeded the target.
	SplitStages []string
}

// Superpipeline applies the paper's methodology: (1) take the longest
// un-pipelinable backend latency as the target, (2) split every
// frontend stage whose delay exceeds the target, (3) leave everything
// else alone. At 300 K no frontend stage exceeds the backend bottleneck
// so nothing is split — "further frontend pipelining is meaningless at
// 300 K"; at 77 K fetch1, fetch3 and decode&rename split, producing the
// 16 representative stages (17 deep) of CryoSP.
func (md *Model) Superpipeline(p Pipeline, op phys.OperatingPoint) SuperpipelineResult {
	res := SuperpipelineResult{Target: 0}
	// Step 1: target = slowest un-pipelinable backend stage.
	for _, s := range p.Stages {
		if s.Frontend || s.Pipelinable {
			continue
		}
		if d := md.StageDelay(s, op); d > res.Target {
			res.Target = d
			res.TargetStage = s.Name
		}
	}
	// Step 2: split frontend stages exceeding the target.
	out := Pipeline{
		Name:  p.Name + "+superpipelined",
		Depth: p.Depth,
	}
	for _, s := range p.Stages {
		if s.Frontend && s.Pipelinable && len(s.Split) > 0 && md.StageDelay(s, op) > res.Target {
			out.Stages = append(out.Stages, s.Split...)
			out.Depth += len(s.Split) - 1
			res.SplitStages = append(res.SplitStages, s.Name)
			continue
		}
		out.Stages = append(out.Stages, s)
	}
	res.Pipeline = out
	return res
}

// At77 is the nominal-voltage 77 K operating point.
func At77() phys.OperatingPoint {
	return phys.OperatingPoint{T: phys.T77, Vdd: phys.Nominal45.Vdd, Vth: phys.Nominal45.Vth}
}

// CoreSpec is a complete core configuration (one column of Table 3).
type CoreSpec struct {
	Name     string
	FreqGHz  float64
	Depth    int // pipeline depth
	Width    int // issue width
	LoadQ    int
	StoreQ   int
	IssueQ   int
	ROB      int
	IntRegs  int
	FpRegs   int
	Op       phys.OperatingPoint
	Pipeline Pipeline
	// MispredictPenalty is the frontend refill cost in cycles on a
	// branch mispredict — grows with the superpipelined depth and is
	// what costs CryoSP its 4.2 % IPC (§4.4).
	MispredictPenalty int
}

// skylakeSizing fills the Table 3 "300K Baseline" structure sizes.
func skylakeSizing(c *CoreSpec) {
	c.Width = 8
	c.LoadQ, c.StoreQ = 72, 56
	c.IssueQ, c.ROB = 97, 224
	c.IntRegs, c.FpRegs = 180, 168
}

// cryoCoreSizing halves the machine per the CryoCore recipe [16]
// (Table 3 "+CryoCore" column).
func cryoCoreSizing(c *CoreSpec) {
	c.Width = 4
	c.LoadQ, c.StoreQ = 24, 24
	c.IssueQ, c.ROB = 72, 96
	c.IntRegs, c.FpRegs = 100, 96
}

// mispredictPenalty maps pipeline depth to the frontend refill cost.
func mispredictPenalty(depth int) int { return depth - 2 }

// Baseline300 returns the 4 GHz 300 K Skylake-class baseline core.
func Baseline300(md *Model) CoreSpec {
	p := BOOM()
	c := CoreSpec{
		Name:     "300K Baseline",
		Op:       phys.Nominal45,
		Pipeline: p,
		Depth:    p.Depth,
	}
	skylakeSizing(&c)
	c.FreqGHz = md.MaxFrequencyGHz(p, c.Op)
	c.MispredictPenalty = mispredictPenalty(c.Depth)
	return c
}

// Superpipeline77 returns the "77K Superpipeline" column: the baseline
// machine with the frontend superpipelined at 77 K, nominal voltage.
func Superpipeline77(md *Model) CoreSpec {
	op := At77()
	res := md.Superpipeline(BOOM(), op)
	c := CoreSpec{
		Name:     "77K Superpipeline",
		Op:       op,
		Pipeline: res.Pipeline,
		Depth:    res.Pipeline.Depth,
	}
	skylakeSizing(&c)
	c.FreqGHz = md.MaxFrequencyGHz(res.Pipeline, op)
	c.MispredictPenalty = mispredictPenalty(c.Depth)
	return c
}

// SuperpipelineCryoCore77 returns the "77K Superpipeline + CryoCore"
// column: same frequency, halved machine for power.
func SuperpipelineCryoCore77(md *Model) CoreSpec {
	c := Superpipeline77(md)
	c.Name = "77K Superpipeline+CryoCore"
	cryoCoreSizing(&c)
	return c
}

// CryoSPVoltage is the Vdd/Vth point of the final CryoSP design
// (Table 3): feasible only at 77 K thanks to the collapsed leakage.
var CryoSPVoltage = phys.OperatingPoint{T: phys.T77, Vdd: 0.64, Vth: 0.25}

// CHPVoltage is the CHP-core voltage point from CryoCore [16].
var CHPVoltage = phys.OperatingPoint{T: phys.T77, Vdd: 0.75, Vth: 0.25}

// CryoSP returns the paper's final core: superpipelined frontend,
// CryoCore sizing, and Vdd/Vth scaling (≈7.84 GHz).
func CryoSP(md *Model) CoreSpec {
	res := md.Superpipeline(BOOM(), At77())
	c := CoreSpec{
		Name:     "77K CryoSP",
		Op:       CryoSPVoltage,
		Pipeline: res.Pipeline,
		Depth:    res.Pipeline.Depth,
	}
	cryoCoreSizing(&c)
	c.FreqGHz = md.MaxFrequencyGHz(res.Pipeline, c.Op)
	c.MispredictPenalty = mispredictPenalty(c.Depth)
	return c
}

// CHPCore returns the state-of-the-art comparison core from [16]:
// CryoCore sizing and voltage scaling but the original 14-stage
// pipeline (no superpipelining — that is CryoWire's contribution).
func CHPCore(md *Model) CoreSpec {
	p := BOOM()
	c := CoreSpec{
		Name:     "CHP-core",
		Op:       CHPVoltage,
		Pipeline: p,
		Depth:    p.Depth,
	}
	cryoCoreSizing(&c)
	c.FreqGHz = md.MaxFrequencyGHz(p, c.Op)
	c.MispredictPenalty = mispredictPenalty(c.Depth)
	return c
}

// Validate sanity-checks a core spec.
func (c CoreSpec) Validate() error {
	switch {
	case c.FreqGHz <= 0:
		return fmt.Errorf("pipeline: %s has non-positive frequency", c.Name)
	case c.Width < 1:
		return fmt.Errorf("pipeline: %s has width %d", c.Name, c.Width)
	case c.Depth < len(c.Pipeline.Stages)/2:
		return fmt.Errorf("pipeline: %s depth %d inconsistent with %d stages", c.Name, c.Depth, len(c.Pipeline.Stages))
	}
	return c.Op.Valid()
}
