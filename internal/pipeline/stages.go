// Package pipeline models the critical-path delay of a BOOM-like
// out-of-order CPU pipeline across temperature and voltage (§3–§4).
// Each of the 13 representative stages carries a transistor-delay and a
// wire-delay component (normalized so the slowest 300 K stage is 1.0);
// cooling shrinks the two components differently — transistors by the
// MOSFET model, wires by the wire model — which is what moves the
// bottleneck from the backend forwarding stages to the frontend at 77 K
// and makes frontend superpipelining profitable (CryoSP).
//
// The per-stage split and the transistor/wire decomposition substitute
// for the paper's Design Compiler synthesis of BOOM; the component
// values are calibrated against Fig 12 (300 K shape, wire portions) and
// validated against every downstream anchor (19 % max-path reduction at
// 77 K, 38 % after superpipelining, CryoSP at 7.84 GHz).
package pipeline

import (
	"fmt"
	"sync"

	"cryowire/internal/phys"
	"cryowire/internal/wire"
)

// WireKind classifies the wiring a stage's critical path runs through.
type WireKind int

const (
	// ShortWire: intra-unit local wiring only (most frontend logic);
	// modest cryogenic gains.
	ShortWire WireKind = iota
	// LongWire: long inter-unit semi-global wires — forwarding loops,
	// CAM broadcast, SRAM bitlines; large cryogenic gains (≈2.8× at 77K).
	LongWire
)

// Stage is one pipeline stage of the critical-path model.
type Stage struct {
	Name     string
	Frontend bool
	// Pipelinable reports whether the stage can be split further
	// without breaking back-to-back execution of dependent instructions
	// (§4.2, 300 K Observation #2: the forwarding stages cannot).
	Pipelinable bool
	// Tr and Wire are the transistor and wire components of the stage's
	// 300 K critical-path delay, normalized to the slowest stage = 1.0.
	Tr, Wire float64
	Kind     WireKind
	// Split holds the stage's superpipelined replacement (two stages
	// with a flip-flop between them), for pipelinable stages.
	Split []Stage
}

// Total returns the stage's normalized delay at the 300 K nominal point.
func (s Stage) Total() float64 { return s.Tr + s.Wire }

// WireFraction returns the wire share of the stage's 300 K delay.
func (s Stage) WireFraction() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return s.Wire / t
}

// Pipeline is an ordered stage list with bookkeeping for total depth.
type Pipeline struct {
	Name string
	// Stages are the representative critical-path stages (commit is
	// excluded: BOOM commits asynchronously).
	Stages []Stage
	// Depth is the full architectural pipeline depth (Table 3 counts 14
	// for baseline BOOM including stages not in the representative set).
	Depth int
}

// boomStages is the calibrated 13-stage library: 5 frontend stages
// (overriding predictor, I-cache, branch check, decode/rename path) and
// 8 backend stages (read-after-issue BOOM backend).
func boomStages() []Stage {
	return []Stage{
		// --- frontend ---
		{
			Name: "fetch1", Frontend: true, Pipelinable: true,
			Tr: 0.78, Wire: 0.17, Kind: ShortWire,
			Split: []Stage{
				{Name: "fetch1a:btb+fast-pred", Frontend: true, Tr: 0.42, Wire: 0.10, Kind: ShortWire},
				{Name: "fetch1b:icache-decode", Frontend: true, Tr: 0.41, Wire: 0.09, Kind: ShortWire},
			},
		},
		{
			// I-cache data access: SRAM bitlines/wordlines are long wires.
			Name: "fetch2", Frontend: true, Pipelinable: true,
			Tr: 0.57, Wire: 0.21, Kind: LongWire,
		},
		{
			Name: "fetch3", Frontend: true, Pipelinable: true,
			Tr: 0.74, Wire: 0.18, Kind: ShortWire,
			Split: []Stage{
				{Name: "fetch3a:branch-decode", Frontend: true, Tr: 0.41, Wire: 0.09, Kind: ShortWire},
				{Name: "fetch3b:address-check", Frontend: true, Tr: 0.42, Wire: 0.10, Kind: ShortWire},
			},
		},
		{
			Name: "decode&rename", Frontend: true, Pipelinable: true,
			Tr: 0.74, Wire: 0.16, Kind: ShortWire,
			Split: []Stage{
				{Name: "decode&rename-a:instr-decode", Frontend: true, Tr: 0.41, Wire: 0.09, Kind: ShortWire},
				{Name: "decode&rename-b:dependency-check", Frontend: true, Tr: 0.42, Wire: 0.10, Kind: ShortWire},
			},
		},
		{
			Name: "rename&dispatch", Frontend: true, Pipelinable: true,
			Tr: 0.57, Wire: 0.15, Kind: ShortWire,
		},
		// --- backend ---
		{
			// CAM broadcast across the issue queue: wire heavy.
			Name: "wakeup&select", Tr: 0.47, Wire: 0.41, Kind: LongWire,
		},
		{
			Name: "issue&regread", Tr: 0.52, Wire: 0.30, Kind: LongWire,
		},
		{
			// Operand pick between regfile value and in-flight bypass:
			// rides the full forwarding loop. Un-pipelinable.
			Name: "data read from bypass", Tr: 0.41, Wire: 0.55, Kind: LongWire,
		},
		{
			Name: "execute", Tr: 0.56, Wire: 0.22, Kind: LongWire,
		},
		{
			// Drive the result onto the bypass network for dependent
			// instructions. The 300 K frequency limiter. Un-pipelinable.
			Name: "execute bypass", Tr: 0.46, Wire: 0.54, Kind: LongWire,
		},
		{
			Name: "writeback", Tr: 0.40, Wire: 0.58, Kind: LongWire,
		},
		{
			Name: "wakeup from writeback", Tr: 0.49, Wire: 0.41, Kind: LongWire,
		},
		{
			// Load/store queue address CAM search.
			Name: "LSQ", Tr: 0.46, Wire: 0.39, Kind: LongWire,
		},
	}
}

// BOOM returns the baseline pipeline: BOOM's microarchitecture with
// Intel Skylake's sizing (Table 3, 300 K Baseline), 14 stages deep.
func BOOM() Pipeline {
	return Pipeline{Name: "BOOM-Skylake-8i", Stages: boomStages(), Depth: 14}
}

// Model evaluates stage delays at operating points. One Model is
// shared by every runner of a Platform, so its caches are guarded for
// concurrent use.
type Model struct {
	MOSFET *phys.MOSFET
	// shortWire and longWire cache per-temperature wire speed-ups.
	mu         sync.Mutex
	shortCache map[phys.Kelvin]float64
	longCache  map[phys.Kelvin]float64
}

// NewModel builds a pipeline delay model around the MOSFET card.
func NewModel(m *phys.MOSFET) *Model {
	return &Model{
		MOSFET:     m,
		shortCache: make(map[phys.Kelvin]float64),
		longCache:  make(map[phys.Kelvin]float64),
	}
}

// shortWireLenMM is the representative intra-unit local-wire run whose
// speed-up scales the ShortWire stage components.
const shortWireLenMM = 0.3

// WireSpeedup returns the 300K→T wire-delay reduction for the kind.
func (md *Model) WireSpeedup(kind WireKind, t phys.Kelvin) float64 {
	md.mu.Lock()
	defer md.mu.Unlock()
	switch kind {
	case LongWire:
		if v, ok := md.longCache[t]; ok {
			return v
		}
		v := wire.ForwardingSpeedup(t, md.MOSFET)
		md.longCache[t] = v
		return v
	case ShortWire:
		if v, ok := md.shortCache[t]; ok {
			return v
		}
		l := wire.NewLine(wire.Local, shortWireLenMM, 4)
		op := phys.OperatingPoint{T: t, Vdd: phys.Nominal45.Vdd, Vth: phys.Nominal45.Vth}
		v := wire.Speedup(l, op, md.MOSFET, false)
		md.shortCache[t] = v
		return v
	default:
		panic(fmt.Sprintf("pipeline: unknown wire kind %d", kind))
	}
}

// StageDelay returns the stage's normalized critical-path delay at op:
// the transistor part scales with the MOSFET gate-delay factor (both
// temperature and voltage), the wire part with the wire speed-up
// (temperature only — the bypass and CAM wires are RC-limited).
func (md *Model) StageDelay(s Stage, op phys.OperatingPoint) float64 {
	return s.Tr*md.MOSFET.GateDelayFactor(op) + s.Wire/md.WireSpeedup(s.Kind, op.T)
}

// CriticalPath returns the slowest stage and its delay at op.
func (md *Model) CriticalPath(p Pipeline, op phys.OperatingPoint) (Stage, float64) {
	var worst Stage
	max := 0.0
	for _, s := range p.Stages {
		if d := md.StageDelay(s, op); d > max {
			max = d
			worst = s
		}
	}
	return worst, max
}

// MaxFrequencyGHz returns the clock the pipeline sustains at op, with
// the 300 K baseline anchored at 4.0 GHz (Table 3).
func (md *Model) MaxFrequencyGHz(p Pipeline, op phys.OperatingPoint) float64 {
	const baseGHz = 4.0
	_, d := md.CriticalPath(p, op)
	return baseGHz / d
}

// StageDelays returns every stage's delay at op in pipeline order —
// the data behind Figs 12/13/14.
func (md *Model) StageDelays(p Pipeline, op phys.OperatingPoint) []float64 {
	out := make([]float64, len(p.Stages))
	for i, s := range p.Stages {
		out[i] = md.StageDelay(s, op)
	}
	return out
}
