package pipeline

import (
	"fmt"
	"sort"

	"cryowire/internal/phys"
)

// Sizing selects the structure-size recipe of a derived core.
type Sizing int

const (
	// SkylakeSizing is the 8-wide Table 3 baseline machine.
	SkylakeSizing Sizing = iota
	// CryoCoreSizing halves the machine per the CryoCore recipe [16].
	CryoCoreSizing
)

// String implements fmt.Stringer.
func (s Sizing) String() string {
	switch s {
	case SkylakeSizing:
		return "skylake"
	case CryoCoreSizing:
		return "cryocore"
	default:
		return fmt.Sprintf("Sizing(%d)", int(s))
	}
}

// MaxFrontendSplits reports how many frontend stages of the baseline
// pipeline superpipelining can split — the upper end of the §4 depth
// design space (BOOM's 14 stages up to CryoSP's 17).
func MaxFrontendSplits() int {
	n := 0
	for _, s := range BOOM().Stages {
		if s.Frontend && s.Pipelinable && len(s.Split) > 0 {
			n++
		}
	}
	return n
}

// BaseDepth is the unmodified baseline pipeline depth (Table 3: 14).
func BaseDepth() int { return BOOM().Depth }

// CustomCore derives a core at an arbitrary point of the §4 design
// space: split the `splits` slowest splittable frontend stages (ranked
// at analysisOp, the nominal-voltage point the superpipelining
// methodology analyzes), apply the sizing recipe, and clock the result
// at op. splits=0 keeps the unmodified baseline pipeline;
// splits=MaxFrontendSplits() at the 77 K analysis point with
// CryoSPVoltage and CryoCoreSizing reproduces CryoSP exactly (same
// stage set, same frequency), because at 77 K every splittable frontend
// stage exceeds the backend superpipelining target.
func CustomCore(md *Model, splits int, analysisOp, op phys.OperatingPoint, sz Sizing) (CoreSpec, error) {
	if max := MaxFrontendSplits(); splits < 0 || splits > max {
		return CoreSpec{}, fmt.Errorf("pipeline: splits %d outside [0,%d]", splits, max)
	}
	if err := analysisOp.Valid(); err != nil {
		return CoreSpec{}, fmt.Errorf("pipeline: analysis point: %w", err)
	}
	if err := op.Valid(); err != nil {
		return CoreSpec{}, fmt.Errorf("pipeline: operating point: %w", err)
	}
	p := BOOM()
	// Rank the splittable stages by their delay at the analysis point,
	// slowest first; ties keep pipeline order so the choice is
	// deterministic.
	type cand struct {
		idx   int
		delay float64
	}
	var cands []cand
	for i, s := range p.Stages {
		if s.Frontend && s.Pipelinable && len(s.Split) > 0 {
			cands = append(cands, cand{i, md.StageDelay(s, analysisOp)})
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].delay > cands[b].delay })
	chosen := make(map[int]bool, splits)
	for _, c := range cands[:splits] {
		chosen[c.idx] = true
	}
	out := Pipeline{
		Name:  fmt.Sprintf("%s+split%d", p.Name, splits),
		Depth: p.Depth,
	}
	for i, s := range p.Stages {
		if chosen[i] {
			out.Stages = append(out.Stages, s.Split...)
			out.Depth += len(s.Split) - 1
			continue
		}
		out.Stages = append(out.Stages, s)
	}
	c := CoreSpec{
		Name:     fmt.Sprintf("custom(d%d,%s,%gK)", out.Depth, sz, float64(op.T)),
		Op:       op,
		Pipeline: out,
		Depth:    out.Depth,
	}
	switch sz {
	case SkylakeSizing:
		skylakeSizing(&c)
	case CryoCoreSizing:
		cryoCoreSizing(&c)
	default:
		return CoreSpec{}, fmt.Errorf("pipeline: unknown sizing %v", sz)
	}
	c.FreqGHz = md.MaxFrequencyGHz(out, op)
	c.MispredictPenalty = mispredictPenalty(c.Depth)
	return c, nil
}
