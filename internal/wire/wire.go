// Package wire models on-chip interconnect: distributed-RC lines in the
// three metal classes of §2.1, CMOS drivers, and latency-optimal
// repeater insertion. It substitutes for the paper's Hspice wire
// studies (§2.3, Fig 5) and feeds the pipeline model (forwarding-wire
// speed-up) and the NoC model (global-link hops per cycle).
package wire

import (
	"fmt"
	"math"

	"cryowire/internal/phys"
)

// Spec describes the geometry of a wire in one metal class. Resistance
// follows from the class resistivity (temperature dependent) and the
// cross-section; capacitance per length is approximately geometry- and
// temperature-independent at these scales.
type Spec struct {
	Class       phys.WireClass
	WidthNM     float64 // drawn width, nm
	ThicknessNM float64 // metal thickness, nm
	CapPerMM    float64 // F per mm
}

// Standard 45 nm-class wire geometries (Intel 45 nm metallization per
// Mistry et al. [44], simplified to one representative layer per class).
var (
	// Local is the thin M1/M2-class wire inside a unit.
	Local = Spec{Class: phys.LocalWire, WidthNM: 45, ThicknessNM: 81, CapPerMM: 0.25e-12}
	// SemiGlobal is the intermediate-layer wire between units in a core.
	SemiGlobal = Spec{Class: phys.SemiGlobalWire, WidthNM: 70, ThicknessNM: 140, CapPerMM: 0.23e-12}
	// Global is the thick top-layer wire used for NoC links.
	Global = Spec{Class: phys.GlobalWire, WidthNM: 400, ThicknessNM: 800, CapPerMM: 0.20e-12}
	// Forwarding is the widened semi-global wire used for the ALU/regfile
	// data-forwarding loop (drawn 2× wide/thick to keep the bypass path
	// within a clock cycle, as real designs do — §7.5 notes target wires
	// can be drawn thicker at small cost).
	Forwarding = Spec{Class: phys.SemiGlobalWire, WidthNM: 140, ThicknessNM: 280, CapPerMM: 0.23e-12}
)

// ClassNames lists the wire classes SpecByName accepts, in the order
// the paper introduces them.
func ClassNames() []string {
	return []string{"local", "semi-global", "global", "forwarding"}
}

// SpecByName returns the standard geometry for a named wire class:
// "local", "semi-global", "global", or "forwarding" (the widened
// semi-global bypass wire). Unknown names are an error listing the
// valid classes.
func SpecByName(class string) (Spec, error) {
	switch class {
	case "local":
		return Local, nil
	case "semi-global":
		return SemiGlobal, nil
	case "global":
		return Global, nil
	case "forwarding":
		return Forwarding, nil
	default:
		return Spec{}, fmt.Errorf("wire: unknown wire class %q (have %v)", class, ClassNames())
	}
}

// ResistancePerMM returns the wire resistance in Ω/mm at temperature t.
func (s Spec) ResistancePerMM(t phys.Kelvin) float64 {
	rho := phys.Resistivity(s.Class, t) // µΩ·cm = 1e-8 Ω·m
	area := (s.WidthNM * 1e-9) * (s.ThicknessNM * 1e-9)
	ohmPerM := rho * 1e-8 / area
	return ohmPerM * 1e-3
}

// Driver models the CMOS gate driving a wire (and the repeaters along
// it). Its resistance improves with cooling and with overdrive.
type Driver struct {
	// R300 is the unit-size driver resistance at the nominal 300 K
	// operating point, Ω.
	R300 float64
	// Cin is the unit-size driver input capacitance, F.
	Cin float64
	// Cpar is the unit-size driver output (diffusion) capacitance, F.
	// Each repeater pays an intrinsic 0.69·R0·Cpar delay regardless of
	// size, which is what bounds the optimal repeater count.
	Cpar float64
	// LoadCap is the far-end receiver capacitance, F.
	LoadCap float64
	// InterconnectGain77 is the extra 300K→77K drive improvement of the
	// large interconnect drivers over minimum-size logic (calibrated so
	// the repeatered speed-ups of Fig 5b come out: big repeaters run at
	// lower effective fields where cryogenic mobility gains are larger).
	InterconnectGain77 float64
}

// DefaultDriver returns the calibrated repeater/driver model. R300·Cin
// corresponds to a ~20 ps FO4 — a 45 nm-class inverter.
func DefaultDriver() Driver {
	return Driver{R300: 8000, Cin: 1.2e-15, Cpar: 2.4e-15, LoadCap: 5e-15, InterconnectGain77: 1.27}
}

// interconnectGain interpolates the extra cryogenic drive gain between
// 300 K (1.0) and 77 K (InterconnectGain77), mirroring the mobility
// interpolation of the MOSFET card.
func (d Driver) interconnectGain(t phys.Kelvin) float64 {
	if t >= phys.T300 {
		return 1
	}
	if t <= phys.T77 {
		return d.InterconnectGain77
	}
	frac := math.Log(float64(phys.T300)/float64(t)) / math.Log(float64(phys.T300)/float64(phys.T77))
	return 1 + (d.InterconnectGain77-1)*frac
}

// Resistance returns the unit-size driver resistance at op. Wire
// drivers and repeaters are modelled as boosted full-swing devices that
// are insensitive to the logic voltage domain (the common low-swing/
// boosted-repeater design), so only temperature affects their drive;
// this is what lets the paper's NoC keep its 12 hops/cycle while the
// shared LLC/NoC voltage domain scales to 0.55 V (§5.2.3, Table 4).
func (d Driver) Resistance(op phys.OperatingPoint, m *phys.MOSFET) float64 {
	return d.R300 / (m.MobilityFactor(op.T) * d.interconnectGain(op.T))
}

// Line is a driven point-to-point wire.
type Line struct {
	Spec     Spec
	LengthMM float64
	Driver   Driver
	// DriverSize is the driver strength in unit-driver multiples.
	DriverSize float64
}

// NewLine builds a Line with the default driver at the given size.
func NewLine(spec Spec, lengthMM, driverSize float64) Line {
	return Line{Spec: spec, LengthMM: lengthMM, Driver: DefaultDriver(), DriverSize: driverSize}
}

// ElmoreDelay returns the 50 %-crossing delay (seconds) of the
// unrepeatered line at the operating point, using the standard Elmore
// coefficients (0.69 for lumped RC stages, 0.38 for the distributed
// wire body):
//
//	t = 0.69·Rd·(Cw + CL) + Rw·(0.38·Cw + 0.69·CL)
func (l Line) ElmoreDelay(op phys.OperatingPoint, m *phys.MOSFET) float64 {
	if l.LengthMM <= 0 {
		return 0
	}
	size := l.DriverSize
	if size <= 0 {
		size = 1
	}
	rd := l.Driver.Resistance(op, m) / size
	rw := l.Spec.ResistancePerMM(op.T) * l.LengthMM
	cw := l.Spec.CapPerMM * l.LengthMM
	cl := l.Driver.LoadCap
	return 0.69*rd*(cw+cl) + rw*(0.38*cw+0.69*cl)
}

// Repeated is a line broken into equal segments by repeaters.
type Repeated struct {
	Line     Line
	Segments int     // number of wire segments (repeaters = Segments-1 plus the driver)
	Size     float64 // repeater strength in unit-driver multiples
}

// Delay returns the total delay (seconds) of the repeated line: each of
// the k segments is an Elmore stage driving the next repeater's input
// capacitance (the last segment drives the receiver load), and the
// first repeater's input is charged by a fixed unit-size upstream stage
// — this source term is what bounds the optimal repeater size.
func (r Repeated) Delay(op phys.OperatingPoint, m *phys.MOSFET) float64 {
	if r.Segments < 1 {
		panic(fmt.Sprintf("wire: repeated line with %d segments", r.Segments))
	}
	l := r.Line
	segLen := l.LengthMM / float64(r.Segments)
	rUnit := l.Driver.Resistance(op, m)
	rd := rUnit / r.Size
	rw := l.Spec.ResistancePerMM(op.T) * segLen
	cw := l.Spec.CapPerMM * segLen
	cnext := l.Driver.Cin * r.Size
	intrinsic := 0.69 * rUnit * l.Driver.Cpar // size-independent self-load delay
	total := 0.0
	for i := 0; i < r.Segments; i++ {
		load := cnext
		if i == r.Segments-1 {
			load = l.Driver.LoadCap
		}
		total += intrinsic + 0.69*rd*(cw+load) + rw*(0.38*cw+0.69*load)
	}
	return total
}

// OptimizeRepeaters searches for the latency-minimal repeater count and
// size for the line at the given operating point ("inserted in a
// latency-optimizing manner", §2.3). The search is exhaustive over
// segment counts and a geometric size grid — the objective is smooth
// and unimodal so this finds the global optimum to grid resolution.
func OptimizeRepeaters(l Line, op phys.OperatingPoint, m *phys.MOSFET) Repeated {
	best := Repeated{Line: l, Segments: 1, Size: 1}
	bestDelay := math.Inf(1)
	maxSeg := int(l.LengthMM*20) + 2 // up to one repeater per 50 µm
	if maxSeg > 400 {
		maxSeg = 400
	}
	for k := 1; k <= maxSeg; k++ {
		for s := 1.0; s <= 64; s *= 1.12 { // repeater strength capped at 64× unit
			cand := Repeated{Line: l, Segments: k, Size: s}
			d := cand.Delay(op, m)
			if d < bestDelay {
				bestDelay = d
				best = cand
			}
		}
	}
	return best
}

// FO4 returns the fan-out-of-4 inverter delay of the driver devices at
// the operating point — the canonical logic-speed yardstick.
func (d Driver) FO4(op phys.OperatingPoint, m *phys.MOSFET) float64 {
	return 0.69 * d.Resistance(op, m) * (4*d.Cin + d.Cpar)
}

// OptimalDelayPerMM returns the per-length delay of an ideally
// repeatered wire in this spec at the operating point, from the
// closed-form latency optimum (Bakoglu):
//
//	t/L = 1.38·√(R0·Cin·r·c) + 2·√(0.69·0.38·R0·(Cin+Cpar)·r·c)
//
// Every term scales as √(R0(op)·r(T)), so the 300K→77K speed-up of a
// long repeatered wire is √(driver-gain × wire-resistance-ratio) — the
// structure behind Fig 5(b)'s 2.25× (semi-global) and 3.38× (global).
func OptimalDelayPerMM(spec Spec, d Driver, op phys.OperatingPoint, m *phys.MOSFET) float64 {
	r0 := d.Resistance(op, m)
	rc := spec.ResistancePerMM(op.T) * spec.CapPerMM
	t1 := 1.38 * math.Sqrt(r0*d.Cin*rc)
	t2 := 2 * math.Sqrt(0.69*0.38*r0*(d.Cin+d.Cpar)*rc)
	return t1 + t2
}

// OptimalSegmentation returns the continuous latency-optimal repeater
// spacing (mm) and strength for the spec at the operating point — the
// stationary point of the Bakoglu objective that OptimalDelayPerMM
// evaluates:
//
//	size* = √(R0·c / (r·Cin)),  seg* = √(0.69·R0·(Cin+Cpar) / (0.38·r·c))
func OptimalSegmentation(spec Spec, d Driver, op phys.OperatingPoint, m *phys.MOSFET) (segMM, size float64) {
	r0 := d.Resistance(op, m)
	r := spec.ResistancePerMM(op.T)
	c := spec.CapPerMM
	size = math.Sqrt(r0 * c / (r * d.Cin))
	segMM = math.Sqrt(0.69 * r0 * (d.Cin + d.Cpar) / (0.38 * r * c))
	return segMM, size
}

// InterfaceOverhead is the fixed send/receive logic delay at the ends
// of a repeatered line (a fraction of an FO4); it makes short
// repeatered wires driver-bound, as in Fig 5(b)'s rising curves.
func InterfaceOverhead(d Driver, op phys.OperatingPoint, m *phys.MOSFET) float64 {
	const interfaceFO4 = 0.15
	return interfaceFO4 * d.FO4(op, m)
}

// OptimalRepeatedDelay returns the end-to-end delay (seconds) of a
// latency-optimally repeatered line, including the interface overhead.
func OptimalRepeatedDelay(l Line, op phys.OperatingPoint, m *phys.MOSFET) float64 {
	return l.LengthMM*OptimalDelayPerMM(l.Spec, l.Driver, op, m) + InterfaceOverhead(l.Driver, op, m)
}

// Speedup returns delay(300 K nominal)/delay(op) for the line. With
// repeated=true the repeaters are re-optimized at each operating point,
// matching the paper's methodology for Fig 5(b).
func Speedup(l Line, op phys.OperatingPoint, m *phys.MOSFET, repeated bool) float64 {
	ref := phys.Nominal45
	if !repeated {
		return l.ElmoreDelay(ref, m) / l.ElmoreDelay(op, m)
	}
	return OptimalRepeatedDelay(l, ref, m) / OptimalRepeatedDelay(l, op, m)
}

// At77 is the 77 K operating point at nominal voltage, the condition of
// the Fig 5 wire study.
func At77() phys.OperatingPoint {
	return phys.OperatingPoint{T: phys.T77, Vdd: phys.Nominal45.Vdd, Vth: phys.Nominal45.Vth}
}

// ForwardingWireLengthMM is the ALU/register-file forwarding loop
// length from Table 1 (1686 µm: 8×ALU height + regfile height).
const ForwardingWireLengthMM = 1.686

// forwardingDriverSize is the strength of the ALU bypass drivers in
// unit-driver multiples.
const forwardingDriverSize = 50

// ForwardingSpeedup returns the 300K→T speed-up of the in-core
// data-forwarding wires (the "2.81×" of 77 K Observation #1). The
// forwarding loop is an unrepeatered driven semi-global wire: repeaters
// cannot be inserted in a bidirectional bypass network.
func ForwardingSpeedup(t phys.Kelvin, m *phys.MOSFET) float64 {
	l := NewLine(Forwarding, ForwardingWireLengthMM, forwardingDriverSize)
	op := phys.OperatingPoint{T: t, Vdd: phys.Nominal45.Vdd, Vth: phys.Nominal45.Vth}
	return Speedup(l, op, m, false)
}

// Link models one NoC wire-link hop: a repeatered global wire of HopMM
// millimetres plus the pipeline latch at the hop boundary. This is the
// CACTI-NUCA-style wire-link model of §3.1.3; at 77 K the 6 mm CryoBus
// link comes out ≈3.05× faster (Fig 10).
type Link struct {
	HopMM  float64
	Driver Driver
	// LatchFraction is the share of the 300 K hop delay spent in the
	// boundary latch (logic-speed scaling, not wire-speed scaling).
	LatchFraction float64
}

// DefaultLink returns the 2 mm-hop global-wire link used by all the
// paper's NoC analyses.
func DefaultLink() Link {
	return Link{HopMM: 2.0, Driver: DefaultDriver(), LatchFraction: 0.051}
}

// HopDelay returns the latency of one hop (seconds) at op.
func (lk Link) HopDelay(op phys.OperatingPoint, m *phys.MOSFET) float64 {
	l := Line{Spec: Global, LengthMM: lk.HopMM, Driver: lk.Driver, DriverSize: 1}
	ref := phys.Nominal45
	wire300 := OptimalRepeatedDelay(l, ref, m)
	latch300 := wire300 * lk.LatchFraction / (1 - lk.LatchFraction)
	wireOp := OptimalRepeatedDelay(l, op, m)
	return wireOp + latch300*m.GateDelayFactor(op)
}

// LinkSpeedup returns hop-delay(300 K)/hop-delay(op).
func (lk Link) LinkSpeedup(op phys.OperatingPoint, m *phys.MOSFET) float64 {
	return lk.HopDelay(phys.Nominal45, m) / lk.HopDelay(op, m)
}

// CryoBusLink returns the 6 mm wire-link of the final CryoBus design —
// the link length the wire-link model is validated at in Fig 10.
func CryoBusLink() Link {
	return Link{HopMM: 6.0, Driver: DefaultDriver(), LatchFraction: 0.051}
}

// NoCHopsPerCycle returns how many 2 mm link hops a signal traverses
// per NoC clock at the operating point. The 300 K calibration point is
// the paper's CACTI-NUCA result: 4 hops per 4 GHz cycle (0.064 ns per
// 2 mm link). Cooling scales the count by the validated long-link
// speed-up (≈3.05× at 77 K ⇒ 12 hops/cycle): multi-hop traversals are
// pipelined trains of 2 mm segments whose per-hop interface overhead
// amortizes over the train, so the long-link model is the right scale.
func NoCHopsPerCycle(op phys.OperatingPoint, m *phys.MOSFET) int {
	const base300 = 4.0
	h := int(math.Round(base300 * CryoBusLink().LinkSpeedup(op, m)))
	if h < 1 {
		h = 1
	}
	return h
}
