package wire

import (
	"math"
	"testing"
	"testing/quick"

	"cryowire/internal/phys"
)

func approx(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, relTol*100)
	}
}

func TestResistancePerMM(t *testing.T) {
	// Global wire: ρ=2.0 µΩ·cm over a 400×800 nm cross-section is
	// 62.5 Ω/mm at 300 K.
	approx(t, "global R/mm @300K", Global.ResistancePerMM(phys.T300), 62.5, 0.01)
	// Thinner classes must be more resistive per length.
	l := Local.ResistancePerMM(phys.T300)
	s := SemiGlobal.ResistancePerMM(phys.T300)
	g := Global.ResistancePerMM(phys.T300)
	if !(l > s && s > g) {
		t.Errorf("expected local > semi-global > global R/mm, got %v %v %v", l, s, g)
	}
	// Forwarding wires are drawn 2× wide/thick ⇒ 4× lower resistance
	// than standard semi-global.
	approx(t, "forwarding vs semi-global R/mm", Forwarding.ResistancePerMM(phys.T300), s/4, 0.01)
}

func TestFig5aUnrepeateredSpeedups(t *testing.T) {
	m := phys.DefaultMOSFET()
	op := At77()
	// Fig 5(a): long wires approach the pure resistance ratio — 2.95×
	// for local, 3.69× for semi-global.
	long := 10.0
	local := NewLine(Local, long, long*10)
	semi := NewLine(SemiGlobal, long, long*10)
	approx(t, "long local speedup", Speedup(local, op, m, false), 2.95, 0.03)
	approx(t, "long semi-global speedup", Speedup(semi, op, m, false), 3.69, 0.03)
	// Short wires are driver-bound and gain much less.
	short := NewLine(Local, 0.05, 1)
	if sp := Speedup(short, op, m, false); sp > 2.0 {
		t.Errorf("short local wire speedup = %v, want driver-bound (< 2.0)", sp)
	}
}

func TestFig5bRepeatedSpeedups(t *testing.T) {
	m := phys.DefaultMOSFET()
	op := At77()
	// Fig 5(b): average-length semi-global (900 µm) 2.25×, global
	// (6.22 mm) 3.38× with latency-optimal repeaters.
	semi := NewLine(SemiGlobal, 0.9, 1)
	global := NewLine(Global, 6.22, 1)
	approx(t, "repeated semi-global 0.9mm", Speedup(semi, op, m, true), 2.25, 0.03)
	approx(t, "repeated global 6.22mm", Speedup(global, op, m, true), 3.38, 0.03)
}

func TestForwardingSpeedup(t *testing.T) {
	m := phys.DefaultMOSFET()
	// 77 K Observation #1: forwarding wires speed up 2.81×.
	approx(t, "forwarding speedup @77K", ForwardingSpeedup(phys.T77, m), 2.81, 0.02)
	// Monotone in cooling.
	s135 := ForwardingSpeedup(phys.T135, m)
	s77 := ForwardingSpeedup(phys.T77, m)
	if !(1 < s135 && s135 < s77) {
		t.Errorf("forwarding speedup not monotone: 1 < %v < %v expected", s135, s77)
	}
}

func TestSpeedupMonotoneInLength(t *testing.T) {
	m := phys.DefaultMOSFET()
	op := At77()
	prev := 0.0
	for _, l := range []float64{0.05, 0.1, 0.3, 0.6, 1, 2, 4, 8} {
		sp := Speedup(NewLine(SemiGlobal, l, 1+l*10), op, m, false)
		if sp < prev {
			t.Fatalf("unrepeatered speedup not monotone in length at %vmm: %v < %v", l, sp, prev)
		}
		prev = sp
	}
}

func TestElmoreDelayScaling(t *testing.T) {
	m := phys.DefaultMOSFET()
	ref := phys.Nominal45
	// Doubling the length of an RC-dominated wire roughly quadruples the
	// wire body term; overall delay must grow super-linearly.
	d1 := NewLine(SemiGlobal, 1, 20).ElmoreDelay(ref, m)
	d2 := NewLine(SemiGlobal, 2, 20).ElmoreDelay(ref, m)
	if d2 < 2.5*d1 {
		t.Errorf("long-wire delay not superlinear: d(2mm)=%v < 2.5·d(1mm)=%v", d2, 2.5*d1)
	}
	if z := (Line{Spec: SemiGlobal, Driver: DefaultDriver()}).ElmoreDelay(ref, m); z != 0 {
		t.Errorf("zero-length wire delay = %v, want 0", z)
	}
}

func TestOptimizeRepeatersBeatsUnrepeated(t *testing.T) {
	m := phys.DefaultMOSFET()
	ref := phys.Nominal45
	l := NewLine(Global, 6.22, 1)
	rep := OptimizeRepeaters(l, ref, m)
	if rep.Delay(ref, m) >= l.ElmoreDelay(ref, m) {
		t.Error("optimal repeaters should beat the unrepeated long wire")
	}
	if rep.Segments < 2 {
		t.Errorf("6.22mm global wire should want multiple segments, got %d", rep.Segments)
	}
}

func TestDiscreteOptimumNearAnalytic(t *testing.T) {
	m := phys.DefaultMOSFET()
	ref := phys.Nominal45
	for _, length := range []float64{2, 4, 6.22, 10} {
		l := NewLine(Global, length, 1)
		discrete := OptimizeRepeaters(l, ref, m).Delay(ref, m)
		analytic := OptimalRepeatedDelay(l, ref, m)
		ratio := discrete / analytic
		if ratio < 0.6 || ratio > 1.4 {
			t.Errorf("discrete/analytic optimum at %vmm = %v, want within [0.6,1.4]", length, ratio)
		}
	}
}

func TestRepeatedDelayPositiveProperty(t *testing.T) {
	m := phys.DefaultMOSFET()
	f := func(rawLen, rawSeg, rawSize uint8) bool {
		l := NewLine(Global, 0.1+float64(rawLen)/25, 1)
		r := Repeated{Line: l, Segments: 1 + int(rawSeg)%40, Size: 1 + float64(rawSize)}
		return r.Delay(phys.Nominal45, m) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkSpeedupFig10(t *testing.T) {
	m := phys.DefaultMOSFET()
	op := At77()
	// Fig 10: the 6 mm CryoBus wire link is 3.05× faster at 77 K.
	approx(t, "6mm link speedup @77K", CryoBusLink().LinkSpeedup(op, m), 3.05, 0.02)
}

func TestNoCHopsPerCycle(t *testing.T) {
	m := phys.DefaultMOSFET()
	// §5.1: 4 hops/cycle at 300 K, 12 hops/cycle at 77 K.
	if h := NoCHopsPerCycle(phys.Nominal45, m); h != 4 {
		t.Errorf("hops/cycle @300K = %d, want 4", h)
	}
	if h := NoCHopsPerCycle(At77(), m); h != 12 {
		t.Errorf("hops/cycle @77K = %d, want 12", h)
	}
	// Intermediate temperature lands in between.
	op135 := phys.OperatingPoint{T: phys.T135, Vdd: phys.Nominal45.Vdd, Vth: phys.Nominal45.Vth}
	if h := NoCHopsPerCycle(op135, m); h <= 4 || h >= 12 {
		t.Errorf("hops/cycle @135K = %d, want in (4,12)", h)
	}
}

func TestHopDelayComponentsScale(t *testing.T) {
	m := phys.DefaultMOSFET()
	lk := DefaultLink()
	d300 := lk.HopDelay(phys.Nominal45, m)
	d77 := lk.HopDelay(At77(), m)
	if d77 >= d300 {
		t.Error("hop delay must shrink at 77K")
	}
	// Speedup must be below the pure repeatered-wire speedup because of
	// the logic-speed latch overhead.
	pure := Speedup(Line{Spec: Global, LengthMM: lk.HopMM, Driver: lk.Driver, DriverSize: 1}, At77(), m, true)
	if got := d300 / d77; got >= pure {
		t.Errorf("link speedup %v should be below pure wire speedup %v", got, pure)
	}
}

func TestFO4Reasonable(t *testing.T) {
	m := phys.DefaultMOSFET()
	fo4 := DefaultDriver().FO4(phys.Nominal45, m)
	// A 45 nm-class FO4 is on the order of 15–40 ps.
	if fo4 < 10e-12 || fo4 > 50e-12 {
		t.Errorf("FO4 = %v s, want a 45nm-plausible 10–50 ps", fo4)
	}
}

func TestRepeatedDelayPanicsOnZeroSegments(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 0-segment repeated line")
		}
	}()
	m := phys.DefaultMOSFET()
	r := Repeated{Line: NewLine(Global, 1, 1), Segments: 0, Size: 1}
	r.Delay(phys.Nominal45, m)
}

func TestVoltageScalingSlowsDrivers(t *testing.T) {
	// At a fixed 77 K, lowering Vdd toward Vth weakens drivers and
	// must not speed links up indefinitely; the NoC's 0.55/0.225 V
	// operating point (Table 4) must still deliver ≥12 hops/cycle
	// equivalent (voltage scaling is for power, not speed, §5.2.3).
	m := phys.DefaultMOSFET()
	opScaled := phys.OperatingPoint{T: phys.T77, Vdd: 0.55, Vth: 0.225}
	if h := NoCHopsPerCycle(opScaled, m); h < 12 {
		t.Errorf("hops/cycle at NoC voltage point = %d, want >= 12", h)
	}
}
