package server

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// rateLimiter is a per-client token-bucket limiter for the job
// submission endpoint. Each client (keyed by remote IP) owns a bucket
// of `burst` tokens refilled at `rate` tokens per second; a submission
// spends one token. When a bucket is empty the limiter reports exactly
// how long until the next token exists, which becomes the Retry-After
// header — the hint is honest, not a constant.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow spends one token from client's bucket. When it cannot, it
// returns the wait until one token will have accumulated.
func (rl *rateLimiter) allow(client string) (ok bool, retryAfter time.Duration) {
	now := rl.now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b, exists := rl.buckets[client]
	if !exists {
		rl.prune(now)
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[client] = b
	}
	b.tokens = math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / rl.rate
	return false, time.Duration(need * float64(time.Second))
}

// prune drops buckets that have been idle long enough to be full again
// — they are indistinguishable from absent. Called with mu held, only
// on the new-client path, so steady-state traffic never pays for it.
func (rl *rateLimiter) prune(now time.Time) {
	if len(rl.buckets) < 1024 {
		return
	}
	idle := time.Duration(rl.burst / rl.rate * float64(time.Second))
	for k, b := range rl.buckets {
		if now.Sub(b.last) > idle {
			delete(rl.buckets, k)
		}
	}
}

// clientKey identifies the requester for rate limiting: the remote IP
// without the ephemeral port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// ceilSeconds renders a wait as the smallest whole-second Retry-After
// value that is not an underestimate.
func ceilSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
