package server

import (
	"context"
	"net/http"
	"strings"

	"cryowire/internal/dse"
	"cryowire/internal/experiments"
	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

// dseDTO is the request body of POST /v1/dse. All fields are optional;
// the zero body greedily grid-searches the quick space, like
// `cryowire dse -quick`. Axis overrides replace the corresponding axis
// of the default space. Journaling is a CLI feature — the server's
// cache already memoizes whole responses — so there is no journal
// field.
type dseDTO struct {
	// Strategy picks the search strategy (default "grid").
	Strategy string `json:"strategy"`
	// Budget caps evaluated candidates (0 = whole space).
	Budget int `json:"budget"`
	// Seed drives the seeded strategies.
	Seed int64 `json:"seed"`
	// Quick shrinks the default space and the simulations.
	Quick bool `json:"quick"`
	// Workers bounds the parallel evaluation fan-out.
	Workers int `json:"workers"`
	// BatchLanes sets the lockstep batch width (0 = auto from workers).
	// A scheduling knob like workers: excluded from the cache key
	// because batching never changes the result bytes.
	BatchLanes int `json:"batch_lanes"`
	// TempsK, Modes, Depths, Nets and Workloads override one axis each.
	TempsK    []float64 `json:"temps_k"`
	Modes     []string  `json:"modes"`
	Depths    []int     `json:"depths"`
	Nets      []string  `json:"nets"`
	Workloads []string  `json:"workloads"`
	// StageTempsK enables the optional memory-stage temperature axis:
	// staged candidates are priced through the multi-stage cooling
	// chain instead of the flat (1+CO) lift. Empty leaves the search —
	// and its result bytes — exactly as before the axis existed.
	StageTempsK []float64 `json:"stage_temps_k"`
	// RangeStart / RangeEnd restrict a grid search to the half-open
	// point-index interval [range_start, range_end) — the request shape
	// a shard coordinator sends each replica. Both zero means the whole
	// space; the cap applies to the range length, not the space size.
	RangeStart int `json:"range_start"`
	RangeEnd   int `json:"range_end"`
	// CheckpointEvery caps evaluations per journal checkpoint (async
	// jobs; 0 = engine default). A scheduling knob like batch_lanes:
	// excluded from the cache key because it never changes the result
	// bytes.
	CheckpointEvery int `json:"checkpoint_every"`
	// Prior names server-local prior journal files the surrogate
	// strategies (surrogate-hillclimb, ei, screen) learn from. The
	// cache key includes a fingerprint of the files' content, so a
	// prior that changed on disk can never serve a stale response.
	Prior []string `json:"prior"`
	// ScreenMargin is the screen strategy's Pareto-band width (0 =
	// engine default). Part of the cache key: it changes which points
	// get simulated.
	ScreenMargin float64 `json:"screen_margin"`
	// Config overrides the per-candidate simulation run-length/seed.
	Config struct {
		WarmupCycles  int   `json:"warmup_cycles"`
		MeasureCycles int   `json:"measure_cycles"`
		Seed          int64 `json:"seed"`
	} `json:"config"`
}

// dseSpaceBudget bounds how much searching one synchronous HTTP
// request may ask for; bigger studies belong on the async job API or
// the CLI, which journal their progress.
const dseSpaceBudget = 4096

// dseConfig resolves the DTO into an engine config for the synchronous
// endpoint, enforcing the candidate cap.
func (d dseDTO) dseConfig() (dse.Config, error) {
	return d.resolve(dseSpaceBudget)
}

// resolve turns the DTO into an engine config. maxEvals bounds how
// many candidates the request may evaluate; <= 0 means unbounded (the
// async job path, whose journal makes long searches safe).
func (d dseDTO) resolve(maxEvals int) (dse.Config, error) {
	if d.Budget < 0 || d.Workers < 0 {
		return dse.Config{}, badRequest("budget and workers must be >= 0")
	}
	if d.BatchLanes < 0 {
		return dse.Config{}, badRequest("batch_lanes must be >= 0")
	}
	if d.CheckpointEvery < 0 {
		return dse.Config{}, badRequest("checkpoint_every must be >= 0")
	}
	if d.Config.WarmupCycles < 0 || d.Config.MeasureCycles < 0 {
		return dse.Config{}, badRequest("cycle counts must be >= 0")
	}
	space := dse.DefaultSpace(d.Quick)
	if len(d.TempsK) > 0 {
		space.TempsK = d.TempsK
	}
	if len(d.Modes) > 0 {
		space.Modes = d.Modes
	}
	if len(d.Depths) > 0 {
		space.Depths = d.Depths
	}
	if len(d.Nets) > 0 {
		space.Nets = d.Nets
	}
	wls := space.Workloads
	if len(d.Workloads) > 0 {
		wls = wls[:0]
		for _, n := range d.Workloads {
			w, err := workload.ByName(n)
			if err != nil {
				return dse.Config{}, notFound("%v", err)
			}
			wls = append(wls, w)
		}
	}
	space = dse.NewSpace(space.TempsK, space.Modes, space.Depths, space.Nets, wls)
	if len(d.StageTempsK) > 0 {
		space = space.WithStages(d.StageTempsK)
	}
	if err := space.Validate(); err != nil {
		return dse.Config{}, badRequest("%v", err)
	}
	var rng *dse.Range
	if d.RangeStart != 0 || d.RangeEnd != 0 {
		r := dse.Range{Start: d.RangeStart, End: d.RangeEnd}
		if err := r.Validate(space.Size()); err != nil {
			return dse.Config{}, badRequest("%v", err)
		}
		rng = &r
	}
	evals := space.Size()
	if d.Budget > 0 && d.Budget < evals {
		evals = d.Budget
	}
	if rng != nil && rng.Len() < evals {
		evals = rng.Len()
	}
	if maxEvals > 0 && evals > maxEvals {
		return dse.Config{}, badRequest("request would evaluate %d candidates, server cap is %d; cap the budget, submit it to the async jobs API (POST /v1/dse/jobs), shard it across replicas (POST /v1/dse/shards or `cryowire dse -shards`), or run `cryowire dse` locally", evals, maxEvals)
	}
	cfg := sim.DefaultConfig()
	if d.Quick {
		cfg = experiments.QuickOptions().Sim
	}
	if d.Config.WarmupCycles > 0 {
		cfg.WarmupCycles = d.Config.WarmupCycles
	}
	if d.Config.MeasureCycles > 0 {
		cfg.MeasureCycles = d.Config.MeasureCycles
	}
	if d.Config.Seed != 0 {
		cfg.Seed = d.Config.Seed
	}
	strategy := d.Strategy
	if strategy == "" {
		strategy = dse.StrategyGrid
	}
	// Reject unknown strategy names at parse time (400), not from
	// inside the cached computation. The error lists every accepted
	// strategy — surrogate trio included.
	if _, err := dse.NewStrategy(strategy, d.Seed); err != nil {
		return dse.Config{}, badRequest("%v", err)
	}
	if rng != nil && strategy != dse.StrategyGrid {
		return dse.Config{}, badRequest("a point-index range requires the %q strategy (got %q)", dse.StrategyGrid, strategy)
	}
	if len(d.Prior) > 0 && !dse.IsSurrogateStrategy(strategy) {
		return dse.Config{}, badRequest("prior journals require a surrogate strategy (%s, %s or %s), got %q",
			dse.StrategySurrogateHill, dse.StrategyEI, dse.StrategyScreen, strategy)
	}
	if d.ScreenMargin != 0 && strategy != dse.StrategyScreen {
		return dse.Config{}, badRequest("screen_margin requires the %q strategy, got %q", dse.StrategyScreen, strategy)
	}
	if d.ScreenMargin < 0 {
		return dse.Config{}, badRequest("screen_margin must be >= 0")
	}
	return dse.Config{
		Space:           space,
		Strategy:        strategy,
		Budget:          d.Budget,
		Seed:            d.Seed,
		Sim:             cfg,
		Workers:         d.Workers,
		BatchLanes:      d.BatchLanes,
		Range:           rng,
		CheckpointEvery: d.CheckpointEvery,
		Priors:          d.Prior,
		ScreenMargin:    d.ScreenMargin,
	}, nil
}

// canonicalDSE renders the resolved search canonically for the cache
// key. Everything Result depends on is included — notably the point
// range, which changes which candidates are evaluated; workers,
// batch_lanes and checkpoint_every are not (scheduling knobs never
// change the output, by the engine's determinism contract).
func canonicalDSE(cfg dse.Config) string {
	s := cfg.Space
	var rs, re int
	if cfg.Range != nil {
		rs, re = cfg.Range.Start, cfg.Range.End
	}
	return canonicalKey("dse",
		cfg.Strategy, canonInt(cfg.Budget), canonInt64(cfg.Seed),
		canonInt(rs), canonInt(re),
		canonFloats(s.TempsK), strings.Join(s.Modes, ","), canonInts(s.Depths),
		strings.Join(s.Nets, ","), strings.Join(s.WorkloadNames, ","),
		canonFloats(s.StageTempsK),
		canonInt(cfg.Sim.WarmupCycles), canonInt(cfg.Sim.MeasureCycles), canonInt64(cfg.Sim.Seed),
		canonFloat(cfg.ScreenMargin),
		strings.Join(cfg.Priors, ","), dse.PriorFingerprint(cfg.Priors))
}

// handleDSE runs one design-space search and responds with
// dse.Result.JSON — byte-identical to `cryowire dse -json` for the
// same parameters.
func (s *Server) handleDSE(w http.ResponseWriter, r *http.Request) {
	var dto dseDTO
	if err := decodeStrict(r, &dto); err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	cfg, err := dto.dseConfig()
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	s.serveCached(w, r, canonicalDSE(cfg), func(ctx context.Context) ([]byte, error) {
		res, err := s.runDSE(ctx, cfg)
		if err != nil {
			return nil, err
		}
		b, err := res.JSON()
		if err != nil {
			return nil, err
		}
		// Match `cryowire dse -json` stdout (fmt.Println adds \n).
		return append(b, '\n'), nil
	})
}
