package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"cryowire/internal/jobs"
)

// newJobsServer builds a server with the async job API enabled.
func newJobsServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.JobsDir == "" {
		cfg.JobsDir = filepath.Join(t.TempDir(), "jobs")
	}
	s := newTestServer(t, cfg)
	t.Cleanup(func() {
		// Drain before TempDir removal: a job still running at test end
		// would race its journal/state writes against the cleanup.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.jobs.Drain(ctx); err != nil {
			t.Errorf("drain at cleanup: %v", err)
		}
		s.baseCancel()
	})
	return s
}

// tinyJobBody is a 4-candidate quick search that finishes in well
// under a second.
func tinyJobBody() string {
	return `{"quick": true, "budget": 4, "workloads": ["x264"],
		"config": {"warmup_cycles": 300, "measure_cycles": 900}}`
}

// pollJob polls until the job reaches want (or any terminal state).
func pollJob(t *testing.T, h http.Handler, id string, want jobs.Status) jobs.State {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec := do(t, h, "GET", "/v1/dse/jobs/"+id, "")
		if rec.Code != 200 {
			t.Fatalf("poll status %d: %s", rec.Code, rec.Body)
		}
		var st jobs.State
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == want {
			return st
		}
		if st.Status.Terminal() {
			t.Fatalf("job %s landed on %s (error %q), want %s", id, st.Status, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out polling job %s for %s", id, want)
	return jobs.State{}
}

// TestJobLifecycle: submit → 202 + Location → poll to done → result is
// byte-identical to the synchronous /v1/dse response for the same
// request.
func TestJobLifecycle(t *testing.T) {
	s := newJobsServer(t, Config{})
	h := s.Handler()

	rec := do(t, h, "POST", "/v1/dse/jobs", tinyJobBody())
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body)
	}
	var st jobs.State
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if loc := rec.Header().Get("Location"); loc != "/v1/dse/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}
	if st.Status != jobs.StatusPending && st.Status != jobs.StatusRunning {
		t.Fatalf("initial status = %s", st.Status)
	}

	// Result before done is a 409, not a 404 or empty body.
	if rec := do(t, h, "GET", "/v1/dse/jobs/"+st.ID+"/result", ""); rec.Code != http.StatusConflict && rec.Code != http.StatusOK {
		t.Fatalf("early result status %d: %s", rec.Code, rec.Body)
	}

	fin := pollJob(t, h, st.ID, jobs.StatusDone)
	if fin.Evaluated != 4 {
		t.Fatalf("evaluated = %d, want 4", fin.Evaluated)
	}
	got := do(t, h, "GET", "/v1/dse/jobs/"+st.ID+"/result", "")
	if got.Code != 200 {
		t.Fatalf("result status %d: %s", got.Code, got.Body)
	}
	sync := do(t, h, "POST", "/v1/dse", tinyJobBody())
	if sync.Code != 200 {
		t.Fatalf("sync dse status %d: %s", sync.Code, sync.Body)
	}
	if got.Body.String() != sync.Body.String() {
		t.Fatalf("async result differs from sync response:\nasync: %s\nsync:  %s", got.Body, sync.Body)
	}

	// The job shows up in the listing.
	list := do(t, h, "GET", "/v1/dse/jobs", "")
	if list.Code != 200 || !strings.Contains(list.Body.String(), st.ID) {
		t.Fatalf("list status %d body %s", list.Code, list.Body)
	}

	// Terminal DELETE removes it.
	if rec := do(t, h, "DELETE", "/v1/dse/jobs/"+st.ID, ""); rec.Code != http.StatusNoContent {
		t.Fatalf("delete status %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "GET", "/v1/dse/jobs/"+st.ID, ""); rec.Code != http.StatusNotFound {
		t.Fatalf("get after delete = %d", rec.Code)
	}
}

// TestJobNoCap: a request over the synchronous candidate cap is
// rejected on /v1/dse but accepted on the async API, which journals
// instead of capping.
func TestJobNoCap(t *testing.T) {
	s := newJobsServer(t, Config{})
	h := s.Handler()
	// 20 temps x 2 modes x 4 depths x 2 nets x 13 workloads = 4160
	// candidates, over the synchronous cap of 4096.
	body := `{"quick": true, "budget": 6000,
		"temps_k": [300, 290, 280, 270, 260, 250, 240, 230, 220, 210,
		            200, 190, 180, 170, 160, 150, 140, 120, 100, 77],
		"depths": [14, 15, 16, 17],
		"workloads": ["blackscholes", "bodytrack", "canneal", "dedup",
		              "facesim", "ferret", "fluidanimate", "freqmine",
		              "raytrace", "streamcluster", "swaptions", "vips", "x264"],
		"config": {"warmup_cycles": 100, "measure_cycles": 200}}`

	rec := do(t, h, "POST", "/v1/dse", body)
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "server cap") {
		t.Fatalf("sync over-cap = %d: %s", rec.Code, rec.Body)
	}
	rec = do(t, h, "POST", "/v1/dse/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async over-cap = %d: %s", rec.Code, rec.Body)
	}
	var st jobs.State
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Total <= dseSpaceBudget {
		t.Fatalf("job total = %d, want > %d", st.Total, dseSpaceBudget)
	}
	// Don't actually evaluate thousands of points in a unit test.
	if rec := do(t, h, "DELETE", "/v1/dse/jobs/"+st.ID, ""); rec.Code != http.StatusOK {
		t.Fatalf("cancel status %d: %s", rec.Code, rec.Body)
	}
}

// TestJobRateLimit: the per-client token bucket rejects the burst
// overflow with an honest Retry-After derived from the refill rate.
func TestJobRateLimit(t *testing.T) {
	s := newJobsServer(t, Config{JobRateLimit: 0.1, JobRateBurst: 1})
	h := s.Handler()

	first := do(t, h, "POST", "/v1/dse/jobs", tinyJobBody())
	if first.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", first.Code, first.Body)
	}
	second := do(t, h, "POST", "/v1/dse/jobs", tinyJobBody())
	if second.Code != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429", second.Code)
	}
	ra, err := strconv.Atoi(second.Header().Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not a number", second.Header().Get("Retry-After"))
	}
	// One token at 0.1/s takes ~10s to accumulate; "1" would be a lie.
	if ra < 5 || ra > 11 {
		t.Fatalf("Retry-After = %d, want ~10 (honest refill time)", ra)
	}
	if s.metrics.rejectedRate.Load() != 1 {
		t.Fatalf("rejectedRate = %d", s.metrics.rejectedRate.Load())
	}
}

// TestJobEvents: the SSE stream carries boot-scoped event ids, replays
// nothing the client already saw, and treats ids from another process
// incarnation as stale.
func TestJobEvents(t *testing.T) {
	s := newJobsServer(t, Config{})
	h := s.Handler()

	rec := do(t, h, "POST", "/v1/dse/jobs", tinyJobBody())
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body)
	}
	var st jobs.State
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	pollJob(t, h, st.ID, jobs.StatusDone)

	// A fresh stream on a finished job yields exactly one snapshot.
	ev := do(t, h, "GET", "/v1/dse/jobs/"+st.ID+"/events", "")
	body := ev.Body.String()
	if ev.Code != 200 || ev.Header().Get("Content-Type") != "text/event-stream" {
		t.Fatalf("events = %d %q", ev.Code, ev.Header().Get("Content-Type"))
	}
	if strings.Count(body, "event: state") != 1 || !strings.Contains(body, `"status":"done"`) {
		t.Fatalf("stream body:\n%s", body)
	}
	var eventID string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "id: ") {
			eventID = strings.TrimPrefix(line, "id: ")
		}
	}
	wantPrefix := s.jobs.BootID() + "-"
	if !strings.HasPrefix(eventID, wantPrefix) {
		t.Fatalf("event id %q lacks boot prefix %q", eventID, wantPrefix)
	}

	// Reconnecting with that id replays nothing (the client is current).
	req := func(lastID string) string {
		r := httptest.NewRequest("GET", "/v1/dse/jobs/"+st.ID+"/events", nil)
		r.Header.Set("Last-Event-ID", lastID)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, r)
		return rr.Body.String()
	}
	if got := req(eventID); strings.Contains(got, "event: state") {
		t.Fatalf("current client got a replay:\n%s", got)
	}
	// An id from a previous incarnation is stale: full snapshot again.
	if got := req("deadbeefdeadbeef-99"); !strings.Contains(got, `"status":"done"`) {
		t.Fatalf("stale client got no snapshot:\n%s", got)
	}
}

// TestJobsDisabled: without -jobs-dir the API 404s with a hint.
func TestJobsDisabled(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	for _, tc := range []struct{ method, target string }{
		{"POST", "/v1/dse/jobs"},
		{"GET", "/v1/dse/jobs"},
		{"GET", "/v1/dse/jobs/0123456789abcdef"},
		{"DELETE", "/v1/dse/jobs/0123456789abcdef"},
	} {
		rec := do(t, h, tc.method, tc.target, "")
		if rec.Code != http.StatusNotFound || !strings.Contains(rec.Body.String(), "jobs-dir") {
			t.Fatalf("%s %s = %d: %s", tc.method, tc.target, rec.Code, rec.Body)
		}
	}
}

// TestJobMetrics: /metrics exposes the job counters once enabled.
func TestJobMetrics(t *testing.T) {
	s := newJobsServer(t, Config{})
	h := s.Handler()
	rec := do(t, h, "POST", "/v1/dse/jobs", tinyJobBody())
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body)
	}
	var st jobs.State
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	pollJob(t, h, st.ID, jobs.StatusDone)
	m := do(t, h, "GET", "/metrics", "").Body.String()
	for _, want := range []string{
		"cryowire_jobs_submitted_total 1",
		"cryowire_jobs_completed_total 1",
		`cryowire_jobs{status="done"} 1`,
		"cryowire_http_rate_limited_total 0",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, m)
		}
	}
}
