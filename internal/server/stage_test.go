package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"cryowire/internal/sim"
	"cryowire/internal/stage"
)

// stageOverCapBody builds a request sweeping one assignment more than
// the server allows.
func stageOverCapBody() string {
	var b strings.Builder
	b.WriteString(`{"assignments":[`)
	for i := 0; i <= stageAssignmentCap; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"name":"a%d","tier_k":77,"mem_k":77}`, i)
	}
	b.WriteString("]}")
	return b.String()
}

// stageTestBody is the shared short-simulation request the parity test
// uses: the three default assignments at test-scale run lengths.
const stageTestBody = `{"config":{"warmup_cycles":400,"measure_cycles":1600,"seed":1}}`

// TestStageJSONParity: POST /v1/stage must be byte-identical to
// `cryowire stage -json` for the same parameters — which the CLI
// produces as stage.Sweep(...).JSON() plus fmt.Println's newline.
func TestStageJSONParity(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	rec := do(t, h, "POST", "/v1/stage", stageTestBody)
	if rec.Code != 200 {
		t.Fatalf("status = %d, body: %s", rec.Code, rec.Body)
	}
	res, err := stage.Sweep(context.Background(), nil, stage.SweepOptions{
		Sim: sim.Config{WarmupCycles: 400, MeasureCycles: 1600, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want := append(b, '\n')
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatalf("endpoint body differs from CLI -json output:\nendpoint: %s\ncli: %s", rec.Body, want)
	}

	// The response carries all three canonical assignments, and the 4 K
	// stage pays the ~25x Carnot premium of the acceptance criterion.
	var got stage.SweepResult
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Assignments) != 3 {
		t.Fatalf("assignments = %d, want the 3 defaults", len(got.Assignments))
	}
	var co4, co77 float64
	for _, a := range got.Assignments {
		for _, st := range a.Stages {
			switch st.TempK {
			case 4:
				co4 = st.CoolingOverhead
			case 77:
				if co77 == 0 {
					co77 = st.CoolingOverhead
				}
			}
		}
	}
	if co4 == 0 || co77 == 0 {
		t.Fatalf("breakdowns missing a 4 K (%v) or 77 K (%v) stage", co4, co77)
	}
	if ratio := co4 / co77; ratio < 24 || ratio > 27 {
		t.Fatalf("CO(4K)/CO(77K) = %v, want ~25x", ratio)
	}

	// Identical and equivalently spelled requests hit the cache.
	rec2 := do(t, h, "POST", "/v1/stage", stageTestBody)
	if gotC := rec2.Header().Get("X-Cache"); gotC != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", gotC)
	}
	if !bytes.Equal(rec2.Body.Bytes(), want) {
		t.Fatal("cached body differs from computed body")
	}
	rec3 := do(t, h, "POST", "/v1/stage",
		`{"workers":0,"config":{"seed":1,"warmup_cycles":400,"measure_cycles":1600}}`)
	if gotC := rec3.Header().Get("X-Cache"); gotC != "hit" {
		t.Fatalf("equivalent request X-Cache = %q, want hit", gotC)
	}

	// Workers is a scheduling knob: a different fan-out shares the
	// entry (the sweep's determinism contract says bytes cannot change).
	rec4 := do(t, h, "POST", "/v1/stage",
		`{"workers":2,"config":{"warmup_cycles":400,"measure_cycles":1600,"seed":1}}`)
	if gotC := rec4.Header().Get("X-Cache"); gotC != "hit" {
		t.Fatalf("workers-differing request X-Cache = %q, want hit", gotC)
	}
}

// TestStageCustomAssignments: explicit assignments flow through and
// title the result rows.
func TestStageCustomAssignments(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(t, s.Handler(), "POST", "/v1/stage",
		`{"assignments":[{"name":"cold-mem","tier_k":300,"mem_k":77}],"config":{"warmup_cycles":400,"measure_cycles":1600,"seed":1}}`)
	if rec.Code != 200 {
		t.Fatalf("status = %d, body: %s", rec.Code, rec.Body)
	}
	var got stage.SweepResult
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Assignments) != 1 || got.Assignments[0].Name != "cold-mem" {
		t.Fatalf("assignments = %+v, want the single cold-mem row", got.Assignments)
	}
}
