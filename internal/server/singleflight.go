package server

import (
	"context"
	"sync"
	"time"
)

// flightGroup coalesces concurrent computations of the same canonical
// request: the first caller becomes the leader and runs the compute
// function once; every identical request that arrives while it runs
// waits for the same result instead of re-deriving it.
//
// The compute function runs on a context derived from the server's
// lifetime (plus the per-request timeout), not from any one request —
// a leader's disconnect must not fail the followers riding its result.
// The context is refcounted instead: every waiter that gives up
// (request canceled, client gone) decrements the count, and when the
// last waiter leaves the computation is canceled, so abandoned work
// actually stops burning workers.
type flightGroup struct {
	base    context.Context // server lifetime: canceled on shutdown
	timeout time.Duration   // per-computation deadline; 0 means none

	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight computation.
type flightCall struct {
	done    chan struct{}
	body    []byte
	err     error
	waiters int
	cancel  context.CancelFunc
	// joined reports whether any follower coalesced onto this call —
	// read after done closes for metrics.
	joined bool
}

// newFlightGroup builds a group whose computations live at most as long
// as base (and, when timeout > 0, no longer than timeout each).
func newFlightGroup(base context.Context, timeout time.Duration) *flightGroup {
	return &flightGroup{base: base, timeout: timeout, calls: make(map[string]*flightCall)}
}

// Do returns the result of fn for key, coalescing concurrent calls.
// shared reports whether this caller rode an in-flight computation
// started by another request. If ctx (the caller's request context)
// ends first, Do returns its error immediately; the computation keeps
// running only while at least one caller still waits on it.
func (g *flightGroup) Do(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) (body []byte, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		c.joined = true
		g.mu.Unlock()
		body, err = g.wait(ctx, key, c)
		return body, true, err
	}
	var cctx context.Context
	var cancel context.CancelFunc
	if g.timeout > 0 {
		cctx, cancel = context.WithTimeout(g.base, g.timeout)
	} else {
		cctx, cancel = context.WithCancel(g.base)
	}
	c := &flightCall{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.calls[key] = c
	g.mu.Unlock()
	go func() {
		c.body, c.err = fn(cctx)
		g.mu.Lock()
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		g.mu.Unlock()
		cancel()
		close(c.done)
	}()
	body, err = g.wait(ctx, key, c)
	return body, false, err
}

// wait blocks until the call completes or the caller's context ends.
func (g *flightGroup) wait(ctx context.Context, key string, c *flightCall) ([]byte, error) {
	select {
	case <-c.done:
		return c.body, c.err
	case <-ctx.Done():
		g.leave(key, c)
		return nil, ctx.Err()
	}
}

// leave drops one waiter; the last one out cancels the computation and
// unpublishes the call so a fresh request starts clean instead of
// joining a dying one.
func (g *flightGroup) leave(key string, c *flightCall) {
	g.mu.Lock()
	c.waiters--
	if c.waiters == 0 {
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		c.cancel()
	}
	g.mu.Unlock()
}
