package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"cryowire/internal/jobs"
)

// tinyShardBody is tinyJobBody fanned out over two local shards, with
// the sim config fully pinned so every shard journals under one key.
func tinyShardBody() string {
	return `{"quick": true, "budget": 4, "workloads": ["x264"], "shards": 2,
		"config": {"warmup_cycles": 300, "measure_cycles": 900, "seed": 7}}`
}

// TestShardSubmitLifecycle: POST /v1/dse/shards → 202 + Location into
// the plain jobs namespace → poll to done → the result is
// byte-identical to the synchronous /v1/dse response for the same
// search, and the journal endpoint serves the merged checkpoint.
func TestShardSubmitLifecycle(t *testing.T) {
	s := newJobsServer(t, Config{})
	h := s.Handler()

	rec := do(t, h, "POST", "/v1/dse/shards", tinyShardBody())
	if rec.Code != http.StatusAccepted {
		t.Fatalf("shard submit status %d: %s", rec.Code, rec.Body)
	}
	var st jobs.State
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if loc := rec.Header().Get("Location"); loc != "/v1/dse/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}
	fin := pollJob(t, h, st.ID, jobs.StatusDone)
	if fin.Evaluated != 4 {
		t.Fatalf("evaluated = %d, want 4", fin.Evaluated)
	}

	got := do(t, h, "GET", "/v1/dse/jobs/"+st.ID+"/result", "")
	if got.Code != 200 {
		t.Fatalf("result status %d: %s", got.Code, got.Body)
	}
	// Same search without the fan-out fields, synchronously.
	sync := do(t, h, "POST", "/v1/dse", `{"quick": true, "budget": 4, "workloads": ["x264"],
		"config": {"warmup_cycles": 300, "measure_cycles": 900, "seed": 7}}`)
	if sync.Code != 200 {
		t.Fatalf("sync dse status %d: %s", sync.Code, sync.Body)
	}
	if got.Body.String() != sync.Body.String() {
		t.Fatalf("sharded result differs from sync response:\nshard: %s\nsync:  %s", got.Body, sync.Body)
	}

	journal := do(t, h, "GET", "/v1/dse/jobs/"+st.ID+"/journal", "")
	if journal.Code != 200 || !strings.Contains(journal.Body.String(), "cryowire-dse-journal") {
		t.Fatalf("journal status %d body %q", journal.Code, journal.Body)
	}
	if ct := journal.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("journal Content-Type = %q", ct)
	}
	if rec := do(t, h, "GET", "/v1/dse/jobs/ffffffffffffffff/journal", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown-job journal = %d", rec.Code)
	}
}

// TestShardSubmitValidation pins the 400s the fan-out endpoint owes
// clients before any job is created.
func TestShardSubmitValidation(t *testing.T) {
	s := newJobsServer(t, Config{})
	h := s.Handler()
	cases := []struct {
		name, body, hint string
	}{
		{"adaptive strategy", `{"quick": true, "shards": 2, "strategy": "random"}`, "grid"},
		{"caller range", `{"quick": true, "shards": 2, "range_start": 0, "range_end": 2}`, "range"},
		{"bad replica url", `{"quick": true, "replicas": ["ftp://nope"],
			"config": {"warmup_cycles": 100, "measure_cycles": 200, "seed": 1}}`, "replica"},
		{"negative shards", `{"quick": true, "shards": -2, "replicas": ["http://127.0.0.1:1"],
			"config": {"warmup_cycles": 100, "measure_cycles": 200, "seed": 1}}`, "shard"},
	}
	for _, c := range cases {
		rec := do(t, h, "POST", "/v1/dse/shards", c.body)
		if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), c.hint) {
			t.Errorf("%s: status %d body %s (want 400 containing %q)", c.name, rec.Code, rec.Body, c.hint)
		}
	}
}

// TestShardEndpointsDisabled: without a jobs dir the fan-out and
// journal endpoints 404 like the rest of the async API.
func TestShardEndpointsDisabled(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	if rec := do(t, h, "POST", "/v1/dse/shards", tinyShardBody()); rec.Code != http.StatusNotFound {
		t.Fatalf("shards with jobs disabled = %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, h, "GET", "/v1/dse/jobs/ffffffffffffffff/journal", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("journal with jobs disabled = %d: %s", rec.Code, rec.Body)
	}
}

// TestDSEOverCapHint pins the synchronous cap's error body: it must
// point at every escape hatch — the async jobs API, the shard fan-out
// (server and CLI spellings), and the local CLI.
func TestDSEOverCapHint(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	rec := do(t, h, "POST", "/v1/dse", dseOverCapBody())
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("over-cap status = %d: %s", rec.Code, rec.Body)
	}
	body := rec.Body.String()
	for _, hint := range []string{"POST /v1/dse/jobs", "POST /v1/dse/shards", "cryowire dse -shards"} {
		if !strings.Contains(body, hint) {
			t.Errorf("over-cap body missing hint %q: %s", hint, body)
		}
	}
}

// TestRangeRequest pins the synchronous range-restricted request: a
// grid range caps evaluation to the range and the cache keys ranges
// separately; a range on an adaptive strategy is a 400.
func TestRangeRequest(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	body := `{"quick": true, "workloads": ["x264"], "range_start": 1, "range_end": 3,
		"config": {"warmup_cycles": 300, "measure_cycles": 900}}`
	rec := do(t, h, "POST", "/v1/dse", body)
	if rec.Code != 200 {
		t.Fatalf("range request status %d: %s", rec.Code, rec.Body)
	}
	var res struct {
		Evaluated int `json:"evaluated"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 2 {
		t.Fatalf("evaluated = %d, want 2 (range [1,3))", res.Evaluated)
	}
	whole := do(t, h, "POST", "/v1/dse", `{"quick": true, "workloads": ["x264"],
		"config": {"warmup_cycles": 300, "measure_cycles": 900}}`)
	if whole.Code != 200 {
		t.Fatalf("whole-space status %d: %s", whole.Code, whole.Body)
	}
	if whole.Body.String() == rec.Body.String() {
		t.Fatal("range and whole-space responses are identical; range leaked into the cache key?")
	}
	if rec := do(t, h, "POST", "/v1/dse", `{"quick": true, "strategy": "random",
		"range_start": 0, "range_end": 2}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("range+random status = %d: %s", rec.Code, rec.Body)
	}
}
