// Package server is the production HTTP service layer over the
// CryoWire model stack: a JSON API exposing the experiment registry,
// the full-system simulator and the facade sweeps, built for sustained
// traffic rather than one-shot CLI runs.
//
// The serving pipeline, outermost first:
//
//	logging → admission (bounded semaphore, 429/503) → response LRU →
//	singleflight coalescing → context-canceled model computation
//
// Identical hot queries are answered from the byte-exact LRU response
// cache; concurrent identical misses collapse into one derivation via
// singleflight; everything else runs under a per-request deadline whose
// cancellation reaches all the way into the cycle loops (sim.Run polls
// its context) and the worker pools (par.ForCtx stops dispatching), so
// an abandoned request stops burning CPU. /healthz, /readyz and
// /metrics make the server operable; shutdown drains in-flight work.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"cryowire/internal/dse"
	"cryowire/internal/experiments"
	"cryowire/internal/jobs"
	"cryowire/internal/platform"
	"cryowire/internal/sim"
	"cryowire/internal/stage"
	"cryowire/internal/workload"
)

// Config tunes the service layer. The zero value serves on :8080 with
// production-shaped defaults.
type Config struct {
	// Addr is the listen address (default ":8080"). Port 0 picks a free
	// port; Addr reports the bound address after ListenAndServe.
	Addr string
	// MaxInflight bounds concurrently admitted /v1 requests; excess
	// requests get 429 immediately instead of queueing unboundedly.
	// Default: 2×GOMAXPROCS.
	MaxInflight int
	// CacheEntries and CacheBytes bound the LRU response cache
	// (defaults 512 entries / 64 MiB); ≤ 0 keeps the default,
	// CacheEntries < 0 disables the cache.
	CacheEntries int
	CacheBytes   int64
	// RequestTimeout is the per-computation deadline (default 10 min —
	// full-length experiments are minutes of CPU). Requests past it get
	// 503 with a timeout error.
	RequestTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// JobsDir, when non-empty, enables the durable async job API
	// (/v1/dse/jobs): the directory holds one subdirectory per job and
	// is scanned on startup to resume interrupted work.
	JobsDir string
	// JobRateLimit / JobRateBurst shape the per-client token bucket on
	// job submissions (defaults 1 submission/s, burst 8; JobRateLimit
	// < 0 disables limiting).
	JobRateLimit float64
	JobRateBurst int
	// Logger receives one structured line per request; nil uses
	// slog.Default.
	Logger *slog.Logger
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Minute
	}
	if c.JobRateLimit == 0 {
		c.JobRateLimit = 1
	}
	if c.JobRateBurst <= 0 {
		c.JobRateBurst = 8
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the HTTP service. Construct with New, serve with
// ListenAndServe (or mount Handler on your own listener), stop with
// Shutdown.
type Server struct {
	cfg     Config
	log     *slog.Logger
	cache   *lru
	flights *flightGroup
	metrics *metrics
	sem     chan struct{}
	jobs    *jobs.Manager // nil unless Config.JobsDir is set
	limiter *rateLimiter  // nil when job rate limiting is disabled

	baseCtx    context.Context
	baseCancel context.CancelFunc

	ready    atomic.Bool
	draining atomic.Bool

	httpSrv *http.Server
	boundTo atomic.Value // string: actual listen address

	// Model entry points, injectable so tests can count/stall/observe
	// computations without running real physics.
	runExperiment func(ctx context.Context, id string, opt experiments.Options) (*experiments.Report, error)
	runSimulate   func(ctx context.Context, d sim.Design, w workload.Profile, cfg sim.Config) (sim.Result, error)
	runDSE        func(ctx context.Context, cfg dse.Config) (*dse.Result, error)
	runStage      func(ctx context.Context, assigns []stage.Assignment, opt stage.SweepOptions) (*stage.SweepResult, error)
}

// New builds a server. The returned server is not yet ready (readyz
// reports 503) until ListenAndServe/Serve starts accepting. With
// Config.JobsDir set it also opens the durable job store, resuming any
// jobs a previous process left unfinished — a failure there is a
// refusal to start, not a silent loss of the backlog.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		log:        cfg.Logger,
		cache:      newLRU(cfg.CacheEntries, cfg.CacheBytes),
		metrics:    newMetrics(),
		sem:        make(chan struct{}, cfg.MaxInflight),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
	}
	s.flights = newFlightGroup(baseCtx, cfg.RequestTimeout)
	s.runExperiment = experiments.RunCtx
	s.runDSE = dse.Run
	s.runStage = stage.Sweep
	s.runSimulate = func(ctx context.Context, d sim.Design, w workload.Profile, cfg sim.Config) (sim.Result, error) {
		sys, err := sim.New(d, w, cfg.WithContext(ctx))
		if err != nil {
			return sim.Result{}, err
		}
		return sys.Run()
	}
	if cfg.JobsDir != "" {
		mgr, err := jobs.Open(cfg.JobsDir, jobs.Options{Logger: cfg.Logger})
		if err != nil {
			baseCancel()
			return nil, fmt.Errorf("server: open job store: %w", err)
		}
		s.jobs = mgr
		s.jobs.Start(baseCtx)
		if cfg.JobRateLimit > 0 {
			s.limiter = newRateLimiter(cfg.JobRateLimit, cfg.JobRateBurst)
		}
	}
	publishExpvar(s)
	return s, nil
}

// platformStats snapshots the shared derivation cache for /metrics.
func (s *Server) platformStats() platformStats {
	st := platform.Default().Stats()
	return platformStats{Hits: st.Hits, Misses: st.Misses}
}

// jobStats snapshots the job manager for /metrics; nil when the async
// job subsystem is disabled.
func (s *Server) jobStats() *jobs.Stats {
	if s.jobs == nil {
		return nil
	}
	st := s.jobs.Snapshot()
	return &st
}

// Handler returns the fully wired HTTP handler (also usable under
// httptest without a real listener).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /v1/experiments", s.admit(http.HandlerFunc(s.handleListExperiments)))
	mux.Handle("POST /v1/experiments/{id}", s.admit(http.HandlerFunc(s.handleExperiment)))
	mux.Handle("POST /v1/simulate", s.admit(http.HandlerFunc(s.handleSimulate)))
	mux.Handle("POST /v1/dse", s.admit(http.HandlerFunc(s.handleDSE)))
	mux.Handle("POST /v1/stage", s.admit(http.HandlerFunc(s.handleStage)))
	mux.Handle("GET /v1/wire/speedup", s.admit(http.HandlerFunc(s.handleWireSpeedup)))
	mux.Handle("GET /v1/noc/load-latency", s.admit(http.HandlerFunc(s.handleNoCLoadLatency)))
	mux.Handle("GET /v1/temperature-sweep", s.admit(http.HandlerFunc(s.handleTemperatureSweep)))
	// The async job API stays outside the admission semaphore: polls
	// and event streams are cheap, long-lived, and must stay responsive
	// while the compute slots are busy with the jobs they observe.
	// Submission instead pays the per-client token bucket.
	mux.Handle("POST /v1/dse/jobs", s.rateLimited(http.HandlerFunc(s.handleJobSubmit)))
	mux.Handle("POST /v1/dse/shards", s.rateLimited(http.HandlerFunc(s.handleShardSubmit)))
	mux.HandleFunc("GET /v1/dse/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/dse/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/dse/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/dse/jobs/{id}/journal", s.handleJobJournal)
	mux.HandleFunc("GET /v1/dse/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/dse/jobs/{id}", s.handleJobDelete)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.logged(mux)
}

// admit is the admission-control middleware: a bounded semaphore with
// immediate 429 on saturation and 503 while draining — heavy load
// degrades into fast, honest rejections instead of an unbounded queue.
func (s *Server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.metrics.rejectedDrain.Add(1)
			writeError(w, http.StatusServiceUnavailable, "server is draining for shutdown")
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.metrics.rejectedBusy.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterHint()))
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("server at capacity (%d requests in flight)", cap(s.sem)))
			return
		}
		s.metrics.inflight.Add(1)
		defer func() {
			s.metrics.inflight.Add(-1)
			<-s.sem
		}()
		next.ServeHTTP(w, r)
	})
}

// retryAfterHint derives the Retry-After seconds for a 429 at the
// admission semaphore from observed request latency: when every slot
// is busy, the soonest one frees after roughly one mean request
// duration. Clamped to [1s, 60s]; before any latency samples exist it
// reports the floor.
func (s *Server) retryAfterHint() int {
	mean := s.metrics.meanLatency()
	sec := int(math.Ceil(mean))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// statusRecorder captures the response status and size for logging and
// metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// Flush forwards to the underlying writer so SSE streams work through
// the logging middleware.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += int64(n)
	return n, err
}

// logged is the structured request-logging middleware; it also feeds
// the request counters and the latency histogram.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(sr, r)
		if sr.status == 0 {
			sr.status = http.StatusOK
		}
		dur := time.Since(start)
		route := r.URL.Path
		s.metrics.observe(route, sr.status, dur)
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("method", r.Method),
			slog.String("path", route),
			slog.Int("status", sr.status),
			slog.Duration("duration", dur),
			slog.Int64("bytes", sr.bytes),
			slog.String("cache", sr.Header().Get("X-Cache")),
		)
	})
}

// ListenAndServe binds cfg.Addr and serves until ctx is canceled, then
// drains gracefully. It returns nil after a clean drain.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	return s.Serve(ctx, ln)
}

// Addr reports the bound listen address ("" before Serve).
func (s *Server) Addr() string {
	if v, ok := s.boundTo.Load().(string); ok {
		return v
	}
	return ""
}

// Serve accepts on ln until ctx is canceled, then shuts down
// gracefully: the listener closes, readyz flips to 503, in-flight
// requests run to completion (bounded by RequestTimeout), new requests
// get 503.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.boundTo.Store(ln.Addr().String())
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return s.baseCtx },
	}
	s.ready.Store(true)
	s.log.Info("listening", "addr", ln.Addr().String())
	errCh := make(chan error, 1)
	go func() { errCh <- s.httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		s.ready.Store(false)
		return err
	case <-ctx.Done():
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
		defer cancel()
		return s.Shutdown(drainCtx)
	}
}

// Shutdown drains the server: readiness drops, new work is rejected
// with 503, async jobs checkpoint to their journals and land on
// interrupted (resumed by the next process), in-flight requests finish
// (until ctx expires), and finally the base context is canceled so any
// orphaned computation stops. Job drain runs before the HTTP drain
// because it also closes the Draining channel that ends long-lived SSE
// streams — otherwise httpSrv.Shutdown would wait on them.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	s.draining.Store(true)
	var err error
	if s.jobs != nil {
		if derr := s.jobs.Drain(ctx); derr != nil {
			s.log.Error("job drain", "err", derr)
			err = derr
		}
	}
	if s.httpSrv != nil {
		if herr := s.httpSrv.Shutdown(ctx); herr != nil {
			err = herr
		}
	}
	s.baseCancel()
	s.log.Info("drained", "err", errString(err))
	return err
}

// errString renders an error for a log attribute without nil panics.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// apiError carries an HTTP status through the compute path.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

// badRequest and notFound build typed errors for the handlers.
func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &apiError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// writeError emits the uniform JSON error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\n  \"error\": %q\n}\n", msg)
}

// errorStatus maps a compute error to its HTTP status: typed apiErrors
// keep theirs, timeouts become 503, everything else 500.
func errorStatus(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}
