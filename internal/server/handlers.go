package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strconv"
	"strings"

	"cryowire"
	"cryowire/internal/buildinfo"
	"cryowire/internal/experiments"
	"cryowire/internal/noc"
	"cryowire/internal/sim"
	"cryowire/internal/workload"
)

// --- plumbing ---------------------------------------------------------------

// hashKey folds a canonical request description into a fixed-size cache
// key. The canonical string is built from parsed, normalized values —
// never from raw query/body bytes — so equivalent spellings of the same
// request ("77" vs "77.0", reordered JSON fields, absent defaults) land
// on the same entry.
func hashKey(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])
}

// writeJSON emits a prebuilt JSON body.
func writeJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// serveCached is the read path every /v1 compute endpoint goes
// through: LRU lookup → singleflight-coalesced compute → store. The
// compute function receives a context that is canceled when every
// caller waiting on it has gone away (or the request timeout fires),
// which is what stops abandoned work.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, canonical string, compute func(ctx context.Context) ([]byte, error)) {
	key := hashKey(canonical)
	if body, ok := s.cache.Get(key); ok {
		w.Header().Set("X-Cache", "hit")
		writeJSON(w, body)
		return
	}
	body, shared, err := s.flights.Do(r.Context(), key, compute)
	if shared {
		s.metrics.coalesced.Add(1)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) && r.Context().Err() != nil {
			// The client went away; there is nobody to answer. The
			// computation itself was canceled by the singleflight
			// refcount if no other request still wants it.
			return
		}
		writeError(w, errorStatus(err), err.Error())
		return
	}
	if shared {
		w.Header().Set("X-Cache", "coalesced")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	s.cache.Add(key, body)
	writeJSON(w, body)
}

// decodeStrict parses an optional JSON request body into v, rejecting
// unknown fields (a typoed option should fail loudly, not silently run
// a default-length simulation) and bodies over 1 MiB.
func decodeStrict(r *http.Request, v any) error {
	b, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return badRequest("reading body: %v", err)
	}
	if len(bytes.TrimSpace(b)) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid JSON body: %v", err)
	}
	if dec.More() {
		return badRequest("trailing data after JSON body")
	}
	return nil
}

// marshalBody renders v the way every non-report endpoint responds:
// stable indented JSON with a trailing newline.
func marshalBody(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// queryFloat parses a float query parameter with a default.
func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, badRequest("parameter %s: %q is not a number", name, raw)
	}
	return v, nil
}

// queryBool parses a bool query parameter with a default.
func queryBool(r *http.Request, name string, def bool) (bool, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		return false, badRequest("parameter %s: %q is not a boolean", name, raw)
	}
	return v, nil
}

// queryFloats parses a comma-separated float list with a default.
func queryFloats(r *http.Request, name string, def []float64) ([]float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	parts := strings.Split(raw, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, badRequest("parameter %s: %q is not a number", name, p)
		}
		out = append(out, v)
	}
	return out, nil
}

// canonFloats renders a float list canonically for cache keys.
func canonFloats(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// --- operational endpoints --------------------------------------------------

// handleHealthz reports liveness plus the same build identification
// `cryowire -version` prints, so "which build is this instance?" is
// answerable from the health probe.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	info := map[string]string{
		"status":  "ok",
		"version": buildinfo.Version(),
		"go":      buildinfo.GoVersion(),
	}
	if rev := buildinfo.Revision(); rev != "" {
		info["revision"] = rev
	}
	body, err := marshalBody(info)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, body)
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() || s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.metrics.renderProm(s.cache.Stats(), s.platformStats(), s.jobStats()))
}

// --- /v1 endpoints ----------------------------------------------------------

// handleListExperiments returns the experiment registry.
func (s *Server) handleListExperiments(w http.ResponseWriter, _ *http.Request) {
	body, err := marshalBody(map[string][]string{"experiments": experiments.IDs()})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, body)
}

// optionsDTO is the request body of POST /v1/experiments/{id}. All
// fields are optional; the zero body runs CLI-default options, exactly
// like `cryowire <id> -json`.
type optionsDTO struct {
	// Quick selects the shrunk test/bench-grade sweeps (`-quick`).
	Quick bool `json:"quick"`
	// Workers bounds the experiment's internal fan-out (`-workers`).
	Workers int `json:"workers"`
	// WarmupCycles/MeasureCycles/Seed override the simulation knobs.
	WarmupCycles  int   `json:"warmup_cycles"`
	MeasureCycles int   `json:"measure_cycles"`
	Seed          int64 `json:"seed"`
}

// options resolves the DTO against the CLI defaults and validates it.
func (d optionsDTO) options() (experiments.Options, error) {
	if d.Workers < 0 {
		return experiments.Options{}, badRequest("workers must be >= 0, got %d", d.Workers)
	}
	if d.WarmupCycles < 0 || d.MeasureCycles < 0 {
		return experiments.Options{}, badRequest("cycle counts must be >= 0")
	}
	opt := experiments.DefaultOptions()
	if d.Quick {
		opt = experiments.QuickOptions()
	}
	if d.WarmupCycles > 0 {
		opt.Sim.WarmupCycles = d.WarmupCycles
	}
	if d.MeasureCycles > 0 {
		opt.Sim.MeasureCycles = d.MeasureCycles
	}
	if d.Seed != 0 {
		opt.Sim.Seed = d.Seed
	}
	opt.Workers = d.Workers
	return opt, nil
}

// handleExperiment runs one experiment and responds with Report.JSON —
// byte-identical to `cryowire <id> -json` stdout for the same options.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !slices.Contains(experiments.IDs(), id) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown experiment %q (see GET /v1/experiments)", id))
		return
	}
	var dto optionsDTO
	if err := decodeStrict(r, &dto); err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	opt, err := dto.options()
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	canonical := canonicalKey("experiment", id, canonBool(dto.Quick), canonInt(opt.Workers),
		canonInt(opt.Sim.WarmupCycles), canonInt(opt.Sim.MeasureCycles), canonInt64(opt.Sim.Seed))
	s.serveCached(w, r, canonical, func(ctx context.Context) ([]byte, error) {
		rep, err := s.runExperiment(ctx, id, opt)
		if err != nil {
			return nil, err
		}
		b, err := rep.JSON()
		if err != nil {
			return nil, err
		}
		// The CLI prints the document with fmt.Println; match it so the
		// endpoint is byte-identical to `cryowire <id> -json`.
		return append(b, '\n'), nil
	})
}

// simulateDTO is the request body of POST /v1/simulate.
type simulateDTO struct {
	// Design names a Table 4 evaluation system (see the error message
	// for the accepted names).
	Design string `json:"design"`
	// Workload names a PARSEC/SPEC/CloudSuite profile.
	Workload string `json:"workload"`
	// Config overrides the simulation run-length and seed.
	Config struct {
		WarmupCycles  int   `json:"warmup_cycles"`
		MeasureCycles int   `json:"measure_cycles"`
		Seed          int64 `json:"seed"`
	} `json:"config"`
}

// serveDesigns returns the designs POST /v1/simulate accepts.
func serveDesigns() []sim.Design {
	f := sim.NewFactory()
	return append(f.Evaluation(), f.SharedBus77(), f.IdealNoC77())
}

// designByName resolves a design name.
func designByName(name string) (sim.Design, error) {
	designs := serveDesigns()
	names := make([]string, len(designs))
	for i, d := range designs {
		names[i] = d.Name
		if d.Name == name {
			return d, nil
		}
	}
	return sim.Design{}, notFound("unknown design %q (have %s)", name, strings.Join(names, "; "))
}

// handleSimulate runs one design × workload pair on the full-system
// simulator.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var dto simulateDTO
	if err := decodeStrict(r, &dto); err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	if dto.Design == "" || dto.Workload == "" {
		writeError(w, http.StatusBadRequest, `body must name a "design" and a "workload"`)
		return
	}
	d, err := designByName(dto.Design)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	wl, err := workload.ByName(dto.Workload)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if dto.Config.WarmupCycles < 0 || dto.Config.MeasureCycles < 0 {
		writeError(w, http.StatusBadRequest, "cycle counts must be >= 0")
		return
	}
	cfg := sim.DefaultConfig()
	if dto.Config.WarmupCycles > 0 {
		cfg.WarmupCycles = dto.Config.WarmupCycles
	}
	if dto.Config.MeasureCycles > 0 {
		cfg.MeasureCycles = dto.Config.MeasureCycles
	}
	if dto.Config.Seed != 0 {
		cfg.Seed = dto.Config.Seed
	}
	canonical := canonicalKey("simulate", d.Name, wl.Name,
		canonInt(cfg.WarmupCycles), canonInt(cfg.MeasureCycles), canonInt64(cfg.Seed))
	s.serveCached(w, r, canonical, func(ctx context.Context) ([]byte, error) {
		res, err := s.runSimulate(ctx, d, wl, cfg)
		if err != nil {
			return nil, err
		}
		return marshalBody(res)
	})
}

// handleWireSpeedup serves the Fig 5 wire-study point query.
func (s *Server) handleWireSpeedup(w http.ResponseWriter, r *http.Request) {
	class := r.URL.Query().Get("class")
	if class == "" {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("parameter class is required (one of %s)", strings.Join(cryowire.WireClassNames(), ", ")))
		return
	}
	lengthMM, err := queryFloat(r, "length_mm", 0)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	if lengthMM <= 0 {
		writeError(w, http.StatusBadRequest, "parameter length_mm must be > 0")
		return
	}
	tempK, err := queryFloat(r, "temp_k", 77)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	repeated, err := queryBool(r, "repeated", false)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	canonical := canonicalKey("wire-speedup", class, canonFloat(lengthMM), canonFloat(tempK), canonBool(repeated))
	s.serveCached(w, r, canonical, func(context.Context) ([]byte, error) {
		speedup, err := cryowire.WireSpeedupAt(class, lengthMM, tempK, repeated)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		return marshalBody(map[string]any{
			"class":     class,
			"length_mm": lengthMM,
			"temp_k":    tempK,
			"repeated":  repeated,
			"speedup":   speedup,
		})
	})
}

// defaultRates is the load-latency endpoint's default injection grid.
var defaultRates = []float64{0.005, 0.01, 0.02, 0.04, 0.08, 0.16}

// handleNoCLoadLatency serves the Fig 21 load-latency sweep.
func (s *Server) handleNoCLoadLatency(w http.ResponseWriter, r *http.Request) {
	design := r.URL.Query().Get("design")
	if design == "" {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("parameter design is required (one of %s)", strings.Join(noc.DesignNames(), ", ")))
		return
	}
	pattern := r.URL.Query().Get("pattern")
	if pattern == "" {
		pattern = "uniform"
	}
	tempK, err := queryFloat(r, "temp_k", 77)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	rates, err := queryFloats(r, "rates", defaultRates)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	if len(rates) == 0 || len(rates) > 64 {
		writeError(w, http.StatusBadRequest, "rates must list 1–64 injection rates")
		return
	}
	canonical := canonicalKey("noc-load-latency", design, pattern, canonFloat(tempK), canonFloats(rates))
	s.serveCached(w, r, canonical, func(ctx context.Context) ([]byte, error) {
		pts, err := cryowire.NoCLoadLatencyCtx(ctx, design, pattern, tempK, rates)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, badRequest("%v", err)
		}
		return marshalBody(map[string]any{
			"design":  design,
			"pattern": pattern,
			"temp_k":  tempK,
			"points":  pts,
		})
	})
}

// defaultSweepTemps is the Fig 27 temperature grid.
var defaultSweepTemps = []float64{300, 250, 200, 150, 125, 100, 90, 77}

// handleTemperatureSweep serves the Fig 27 perf/power sweep.
func (s *Server) handleTemperatureSweep(w http.ResponseWriter, r *http.Request) {
	temps, err := queryFloats(r, "temps_k", defaultSweepTemps)
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	if len(temps) == 0 || len(temps) > 256 {
		writeError(w, http.StatusBadRequest, "temps_k must list 1–256 temperatures")
		return
	}
	canonical := canonicalKey("temperature-sweep", canonFloats(temps))
	s.serveCached(w, r, canonical, func(context.Context) ([]byte, error) {
		pts, err := cryowire.TemperatureSweep(temps)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		return marshalBody(map[string]any{"points": pts})
	})
}
