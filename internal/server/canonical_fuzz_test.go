package server

import (
	"strings"
	"testing"
)

// FuzzCanonicalKey checks the property the whole response cache rests
// on: two requests share a cache key iff their parsed fields are
// equal. Field values are adversarial — they may contain the
// separator, quotes, backslashes or another request's rendered key —
// and must never forge a collision or split differently. (The kind
// argument is always a compile-time constant at the call sites, so
// only field values are fuzzed.)
func FuzzCanonicalKey(f *testing.F) {
	f.Add("a", "b", "a", "b")
	f.Add("a|b", "", "a", "|b")
	f.Add(`a"|"b`, "c", "a", `"|"b|c`)
	f.Add("simulate", "x264", "simulate|x264", "")
	f.Add("77", "0.5", "77.0", "0.50")
	f.Add(`\`, `"`, `\"`, "")
	f.Fuzz(func(t *testing.T, a1, a2, b1, b2 string) {
		ka := canonicalKey("kind", a1, a2)
		kb := canonicalKey("kind", b1, b2)
		if (ka == kb) != (a1 == b1 && a2 == b2) {
			t.Fatalf("collision/split mismatch:\n(%q,%q) -> %s\n(%q,%q) -> %s", a1, a2, ka, b1, b2, kb)
		}
		// Arity must be part of the identity: joining two fields into
		// one (with any separator the attacker likes) must not land on
		// the two-field key.
		for _, joined := range []string{a1 + a2, a1 + "|" + a2, a1 + `"|"` + a2} {
			if canonicalKey("kind", joined) == ka && a2 != "" {
				t.Fatalf("one-field %q collides with two-field (%q,%q)", joined, a1, a2)
			}
		}
		// The hashed form inherits the property (sha256 collisions
		// aside) and is always a fixed-width hex string.
		if h := hashKey(ka); len(h) != 64 || strings.ToLower(h) != h {
			t.Fatalf("hashKey(%q) = %q is not lowercase 64-hex", ka, h)
		}
	})
}
