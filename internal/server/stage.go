package server

import (
	"context"
	"net/http"
	"strings"

	"cryowire/internal/experiments"
	"cryowire/internal/sim"
	"cryowire/internal/stage"
	"cryowire/internal/workload"
)

// stageDTO is the request body of POST /v1/stage. All fields are
// optional; the zero body sweeps the three default stage assignments
// at CLI-default simulation lengths, like `cryowire stage`.
type stageDTO struct {
	// Quick selects the shrunk quick-experiment simulations (`-quick`).
	Quick bool `json:"quick"`
	// Workers bounds the parallel simulation fan-out. A scheduling
	// knob: excluded from the cache key because it never changes the
	// result bytes.
	Workers int `json:"workers"`
	// Workload names the profile to evaluate on (default x264).
	Workload string `json:"workload"`
	// WattsPerUnit converts relative power-model units to watts
	// (default 100).
	WattsPerUnit float64 `json:"watts_per_unit"`
	// Assignments override the default three stage assignments.
	Assignments []stage.Assignment `json:"assignments"`
	// Config overrides the simulation run-length/seed.
	Config struct {
		WarmupCycles  int   `json:"warmup_cycles"`
		MeasureCycles int   `json:"measure_cycles"`
		Seed          int64 `json:"seed"`
	} `json:"config"`
}

// stageAssignmentCap bounds how many assignments one synchronous
// request may simulate.
const stageAssignmentCap = 64

// resolve turns the DTO into the sweep inputs, validating everything
// that should fail at parse time (400/404) rather than from inside the
// cached computation.
func (d stageDTO) resolve() ([]stage.Assignment, stage.SweepOptions, error) {
	if d.Workers < 0 {
		return nil, stage.SweepOptions{}, badRequest("workers must be >= 0")
	}
	if d.WattsPerUnit < 0 {
		return nil, stage.SweepOptions{}, badRequest("watts_per_unit must be >= 0")
	}
	if d.Config.WarmupCycles < 0 || d.Config.MeasureCycles < 0 {
		return nil, stage.SweepOptions{}, badRequest("cycle counts must be >= 0")
	}
	if len(d.Assignments) > stageAssignmentCap {
		return nil, stage.SweepOptions{}, badRequest("request sweeps %d assignments, server cap is %d", len(d.Assignments), stageAssignmentCap)
	}
	assigns := d.Assignments
	if len(assigns) == 0 {
		assigns = stage.DefaultAssignments()
	}
	for _, a := range assigns {
		if err := a.Validate(); err != nil {
			return nil, stage.SweepOptions{}, badRequest("%v", err)
		}
	}
	if d.Workload != "" {
		if _, err := workload.ByName(d.Workload); err != nil {
			return nil, stage.SweepOptions{}, notFound("%v", err)
		}
	}
	cfg := sim.DefaultConfig()
	if d.Quick {
		cfg = experiments.QuickOptions().Sim
	}
	if d.Config.WarmupCycles > 0 {
		cfg.WarmupCycles = d.Config.WarmupCycles
	}
	if d.Config.MeasureCycles > 0 {
		cfg.MeasureCycles = d.Config.MeasureCycles
	}
	if d.Config.Seed != 0 {
		cfg.Seed = d.Config.Seed
	}
	return assigns, stage.SweepOptions{
		Sim:          cfg,
		Workload:     d.Workload,
		Workers:      d.Workers,
		WattsPerUnit: d.WattsPerUnit,
	}, nil
}

// canonicalStage renders the resolved sweep canonically for the cache
// key. Workers (and the runner's lane width) are scheduling knobs and
// excluded: the sweep's determinism contract says they never change
// the bytes.
func canonicalStage(assigns []stage.Assignment, opt stage.SweepOptions) string {
	fields := []string{
		opt.Workload, canonFloat(opt.WattsPerUnit),
		canonInt(opt.Sim.WarmupCycles), canonInt(opt.Sim.MeasureCycles), canonInt64(opt.Sim.Seed),
	}
	for _, a := range assigns {
		fields = append(fields, strings.Join([]string{a.Name, canonFloat(a.TierK), canonFloat(a.MemK)}, ":"))
	}
	return canonicalKey("stage", fields...)
}

// handleStage runs one temperature-staged sweep and responds with
// stage.SweepResult.JSON — byte-identical to `cryowire stage -json`
// for the same parameters.
func (s *Server) handleStage(w http.ResponseWriter, r *http.Request) {
	var dto stageDTO
	if err := decodeStrict(r, &dto); err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	assigns, opt, err := dto.resolve()
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	s.serveCached(w, r, canonicalStage(assigns, opt), func(ctx context.Context) ([]byte, error) {
		res, err := s.runStage(ctx, assigns, opt)
		if err != nil {
			return nil, err
		}
		b, err := res.JSON()
		if err != nil {
			return nil, err
		}
		// Match `cryowire stage -json` stdout (fmt.Println adds \n).
		return append(b, '\n'), nil
	})
}
