package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"cryowire/internal/jobs"
)

// The asynchronous DSE job API. Unlike the synchronous /v1/dse
// endpoint, jobs are durable: a submission is on disk before the 202
// leaves the server, survives crashes and restarts, and has no
// space-size cap — the journal checkpoint makes arbitrarily long
// searches safe to run behind an HTTP accept.
//
//	POST   /v1/dse/jobs             submit (202 + state, rate limited)
//	GET    /v1/dse/jobs             list all jobs
//	GET    /v1/dse/jobs/{id}        poll one job's state
//	GET    /v1/dse/jobs/{id}/result final frontier (byte-identical to
//	                                `cryowire dse -json`)
//	GET    /v1/dse/jobs/{id}/events SSE state stream, resumable via
//	                                Last-Event-ID across restarts
//	DELETE /v1/dse/jobs/{id}        cancel (active) / remove (terminal)
//
// These endpoints bypass the admission semaphore: polling and event
// streams are cheap and long-lived, and must stay responsive exactly
// when the compute slots are saturated with the work they observe.

// jobsEnabled guards every handler; the API mounts only when the
// server was configured with a JobsDir.
func (s *Server) jobsEnabled(w http.ResponseWriter) bool {
	if s.jobs == nil {
		writeError(w, http.StatusNotFound, "async jobs are disabled; start the server with -jobs-dir")
		return false
	}
	return true
}

// rateLimited wraps the submission endpoint with the per-client token
// bucket. The Retry-After header is the bucket's actual refill time,
// rounded up — an honest wait, not a constant.
func (s *Server) rateLimited(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.limiter != nil {
			if ok, wait := s.limiter.allow(clientKey(r)); !ok {
				s.metrics.rejectedRate.Add(1)
				w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(wait)))
				writeError(w, http.StatusTooManyRequests,
					fmt.Sprintf("job submission rate limit exceeded; retry in %ds", ceilSeconds(wait)))
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// handleJobSubmit accepts the same body as POST /v1/dse but runs the
// search asynchronously, so the 4096-candidate cap does not apply.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	var dto dseDTO
	if err := decodeStrict(r, &dto); err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	cfg, err := dto.resolve(0) // async: no candidate cap
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	st, err := s.jobs.Submit(jobs.SpecFromConfig(cfg))
	if err != nil {
		status := http.StatusInternalServerError
		if strings.Contains(err.Error(), "draining") {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error())
		return
	}
	w.Header().Set("Location", "/v1/dse/jobs/"+st.ID)
	writeJSONStatus(w, http.StatusAccepted, st)
}

// handleJobList returns every job's state plus the queue depth.
func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	writeJSONStatus(w, http.StatusOK, map[string]any{
		"jobs":        s.jobs.List(),
		"queue_depth": s.jobs.QueueDepth(),
	})
}

// handleJobGet polls one job.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	_, st, _, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeJobError(w, r.PathValue("id"), err)
		return
	}
	writeJSONStatus(w, http.StatusOK, st)
}

// handleJobResult serves the stored result document verbatim — the
// bytes are the journal-backed frontier, identical to what an
// uninterrupted `cryowire dse -json` run would print.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	id := r.PathValue("id")
	body, err := s.jobs.Result(id)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", id))
			return
		}
		// Known job in a non-done state: the poll URL tells the client
		// what to wait for.
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, body)
}

// handleJobJournal serves the job's checkpoint journal verbatim as
// NDJSON: the header line plus one line per completed evaluation. This
// is how a shard coordinator mirrors a replica's progress — the bytes
// are the ground truth the job's state merely indexes. A job that has
// not checkpointed yet yields an empty 200 body, and a concurrent read
// races the appender at worst into a torn final line, which every
// parser in the system already drops.
func (s *Server) handleJobJournal(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	id := r.PathValue("id")
	body, err := s.jobs.Journal(id)
	if err != nil {
		writeJobError(w, id, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// handleJobDelete cancels an active job (200 + state) or removes a
// terminal one (204).
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	id := r.PathValue("id")
	_, st, _, err := s.jobs.Get(id)
	if err != nil {
		writeJobError(w, id, err)
		return
	}
	if st.Status.Terminal() {
		if err := s.jobs.Delete(id); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	st, _, err = s.jobs.Cancel(id)
	if err != nil {
		writeJobError(w, id, err)
		return
	}
	writeJSONStatus(w, http.StatusOK, st)
}

// handleJobEvents streams a job's state changes as server-sent events.
// Every event is a full state snapshot (not a delta), so a client that
// reconnects — even to a restarted server — needs no history: a
// Last-Event-ID from this incarnation suppresses the duplicate initial
// snapshot, and one from a previous incarnation (different boot id) is
// simply stale, prompting a fresh snapshot. The stream ends when the
// job reaches a terminal state or the server begins draining; clients
// reconnect and resume.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	id := r.PathValue("id")
	ch, unsub, err := s.jobs.Subscribe(id)
	if err != nil {
		writeJobError(w, id, err)
		return
	}
	defer unsub()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	lastSeq, haveLast := s.parseEventID(r.Header.Get("Last-Event-ID"))
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		_, st, seq, err := s.jobs.Get(id)
		if err != nil {
			return // deleted mid-stream; the stream just ends
		}
		if !haveLast || seq > lastSeq {
			if err := writeSSE(w, flusher, s.jobs.BootID(), seq, st); err != nil {
				return
			}
			lastSeq, haveLast = seq, true
		}
		if st.Status.Terminal() {
			return
		}
		select {
		case <-ch:
		case <-heartbeat.C:
			// Comment line keeps intermediaries from timing the stream out.
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.jobs.Draining():
			fmt.Fprint(w, ": server draining, reconnect\n\n")
			flusher.Flush()
			return
		}
	}
}

// parseEventID splits "<bootID>-<seq>". A malformed id or one from a
// different boot is stale: the client gets a fresh snapshot.
func (s *Server) parseEventID(v string) (seq uint64, ok bool) {
	boot, seqStr, found := strings.Cut(v, "-")
	if !found || boot != s.jobs.BootID() {
		return 0, false
	}
	n, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// writeSSE emits one state snapshot event.
func writeSSE(w http.ResponseWriter, f http.Flusher, bootID string, seq uint64, st jobs.State) error {
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "id: %s-%d\nevent: state\ndata: %s\n\n", bootID, seq, data); err != nil {
		return err
	}
	f.Flush()
	return nil
}

// writeJobError maps manager errors onto HTTP statuses.
func writeJobError(w http.ResponseWriter, id string, err error) {
	if errors.Is(err, os.ErrNotExist) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", id))
		return
	}
	writeError(w, http.StatusConflict, err.Error())
}

// writeJSONStatus marshals v with the indentation the rest of the API
// uses and the given status code.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}
