package server

import (
	"net/http"
	"strings"

	"cryowire/internal/jobs"
)

// POST /v1/dse/shards is the fan-out flavor of the async job API: the
// submitted search is partitioned into shards by the coordinator
// (internal/shard) and run on local executors or remote `cryowire
// serve` replicas, then merged to a result byte-identical to a plain
// job's. The job itself lives in the same store and is observed
// through the same /v1/dse/jobs/{id} endpoints — sharding changes how
// the work is executed, never what the client sees.

// shardDTO extends the DSE request body with the fan-out parameters.
type shardDTO struct {
	dseDTO
	// Shards is the partition count (0 defaults to the replica count,
	// or 1 when running locally).
	Shards int `json:"shards"`
	// Replicas are base URLs of remote `cryowire serve -jobs-dir`
	// replicas; empty runs every shard in this process.
	Replicas []string `json:"replicas"`
}

// handleShardSubmit accepts a shard fan-out submission: 202 plus the
// job state, observable under /v1/dse/jobs/{id} like any other job.
func (s *Server) handleShardSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	var dto shardDTO
	if err := decodeStrict(r, &dto); err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	if dto.RangeStart != 0 || dto.RangeEnd != 0 {
		writeError(w, http.StatusBadRequest, "a sharded search owns its point ranges; drop range_start/range_end")
		return
	}
	cfg, err := dto.resolve(0) // async: no candidate cap
	if err != nil {
		writeError(w, errorStatus(err), err.Error())
		return
	}
	sp := jobs.SpecFromConfig(cfg)
	sp.Shards = dto.Shards
	sp.Replicas = dto.Replicas
	if err := sp.ValidateSharding(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	st, err := s.jobs.Submit(sp)
	if err != nil {
		status := http.StatusInternalServerError
		if strings.Contains(err.Error(), "draining") {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error())
		return
	}
	w.Header().Set("Location", "/v1/dse/jobs/"+st.ID)
	writeJSONStatus(w, http.StatusAccepted, st)
}
