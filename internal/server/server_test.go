package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cryowire/internal/experiments"
	"cryowire/internal/workload"
)

// quietLogger keeps test output readable.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// do runs one request through the full middleware stack.
func do(t *testing.T, h http.Handler, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestEndpointStatuses table-drives the routing, validation and error
// mapping of every endpoint.
func TestEndpointStatuses(t *testing.T) {
	s := newTestServer(t, Config{})
	s.ready.Store(true)
	h := s.Handler()
	cases := []struct {
		name, method, target, body string
		want                       int
		wantIn                     string // substring of the response body
	}{
		{"healthz", "GET", "/healthz", "", 200, `"status": "ok"`},
		{"healthz build info", "GET", "/healthz", "", 200, `"go": "go`},
		{"readyz ready", "GET", "/readyz", "", 200, "ready"},
		{"metrics", "GET", "/metrics", "", 200, "cryowire_http_requests_total"},
		{"list experiments", "GET", "/v1/experiments", "", 200, "\"fig22\""},
		{"unknown experiment", "POST", "/v1/experiments/fig999", "", 404, "unknown experiment"},
		{"experiment bad json", "POST", "/v1/experiments/fig22", "{", 400, "invalid JSON"},
		{"experiment unknown field", "POST", "/v1/experiments/fig22", `{"qwick":true}`, 400, "invalid JSON"},
		{"experiment trailing data", "POST", "/v1/experiments/fig22", `{"quick":true} {}`, 400, "trailing data"},
		{"experiment negative workers", "POST", "/v1/experiments/fig22", `{"workers":-1}`, 400, "workers"},
		{"experiment negative cycles", "POST", "/v1/experiments/fig22", `{"warmup_cycles":-5}`, 400, "cycle counts"},
		{"experiment wrong method", "GET", "/v1/experiments/fig22", "", 405, ""},
		{"simulate empty body", "POST", "/v1/simulate", "", 400, "design"},
		{"simulate unknown design", "POST", "/v1/simulate", `{"design":"nope","workload":"ferret"}`, 404, "unknown design"},
		{"simulate unknown workload", "POST", "/v1/simulate", `{"design":"CryoSP (77K, Mesh)","workload":"nope"}`, 404, ""},
		{"dse bad json", "POST", "/v1/dse", "{", 400, "invalid JSON"},
		{"dse unknown field", "POST", "/v1/dse", `{"strutegy":"grid"}`, 400, "invalid JSON"},
		{"dse unknown strategy", "POST", "/v1/dse", `{"strategy":"annealing"}`, 400, "unknown strategy"},
		{"dse strategy list names surrogates", "POST", "/v1/dse", `{"strategy":"annealing"}`, 400, "surrogate-hillclimb, ei, screen"},
		{"dse prior without surrogate strategy", "POST", "/v1/dse", `{"strategy":"grid","prior":["a.jsonl"]}`, 400, "surrogate strategy"},
		{"dse margin without screen", "POST", "/v1/dse", `{"strategy":"ei","screen_margin":0.2}`, 400, "screen_margin requires"},
		{"dse negative margin", "POST", "/v1/dse", `{"strategy":"screen","screen_margin":-0.5}`, 400, "screen_margin must be"},
		{"dse negative budget", "POST", "/v1/dse", `{"budget":-1}`, 400, "budget"},
		{"dse unknown workload", "POST", "/v1/dse", `{"workloads":["nope"]}`, 404, ""},
		{"dse bad depth", "POST", "/v1/dse", `{"depths":[3]}`, 400, "derivable range"},
		{"dse over cap", "POST", "/v1/dse", dseOverCapBody(), 400, "server cap"},
		{"dse bad stage axis", "POST", "/v1/dse", `{"stage_temps_k":[0]}`, 400, "stage"},
		{"stage bad json", "POST", "/v1/stage", "{", 400, "invalid JSON"},
		{"stage unknown field", "POST", "/v1/stage", `{"qwick":true}`, 400, "invalid JSON"},
		{"stage negative workers", "POST", "/v1/stage", `{"workers":-1}`, 400, "workers"},
		{"stage negative cycles", "POST", "/v1/stage", `{"config":{"warmup_cycles":-1}}`, 400, "cycle counts"},
		{"stage unknown workload", "POST", "/v1/stage", `{"workload":"nope"}`, 404, ""},
		{"stage bad assignment", "POST", "/v1/stage", `{"assignments":[{"name":"hot","tier_k":400,"mem_k":300}]}`, 400, "above the 300 K host"},
		{"stage over cap", "POST", "/v1/stage", stageOverCapBody(), 400, "server cap"},
		{"stage wrong method", "GET", "/v1/stage", "", 405, ""},
		{"wire missing class", "GET", "/v1/wire/speedup", "", 400, "class is required"},
		{"wire bad length", "GET", "/v1/wire/speedup?class=local&length_mm=0", "", 400, "length_mm"},
		{"wire bad number", "GET", "/v1/wire/speedup?class=local&length_mm=x", "", 400, "not a number"},
		{"wire unknown class", "GET", "/v1/wire/speedup?class=warp&length_mm=1", "", 400, ""},
		{"wire ok", "GET", "/v1/wire/speedup?class=local&length_mm=0.5&temp_k=77", "", 200, "\"speedup\""},
		{"noc missing design", "GET", "/v1/noc/load-latency", "", 400, "design is required"},
		{"noc bad rates", "GET", "/v1/noc/load-latency?design=mesh&rates=a,b", "", 400, "not a number"},
		{"temp sweep bad list", "GET", "/v1/temperature-sweep?temps_k=77,", "", 400, "not a number"},
		{"temp sweep ok", "GET", "/v1/temperature-sweep?temps_k=300,77", "", 200, "\"points\""},
		{"pprof off", "GET", "/debug/pprof/", "", 404, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, h, tc.method, tc.target, tc.body)
			if rec.Code != tc.want {
				t.Fatalf("%s %s: status = %d, want %d; body: %s", tc.method, tc.target, rec.Code, tc.want, rec.Body)
			}
			if tc.wantIn != "" && !strings.Contains(rec.Body.String(), tc.wantIn) {
				t.Fatalf("%s %s: body %q does not contain %q", tc.method, tc.target, rec.Body, tc.wantIn)
			}
		})
	}
}

// TestReadyzBeforeServe: a freshly built server must not report ready.
func TestReadyzBeforeServe(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := do(t, s.Handler(), "GET", "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before serve = %d, want 503", rec.Code)
	}
}

// TestExperimentJSONParity: the endpoint body must be byte-identical to
// what `cryowire fig22 -quick -json` prints (Report.JSON + newline).
func TestExperimentJSONParity(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	rec := do(t, h, "POST", "/v1/experiments/fig22", `{"quick":true}`)
	if rec.Code != 200 {
		t.Fatalf("status = %d, body: %s", rec.Code, rec.Body)
	}
	rep, err := experiments.Run("fig22", experiments.QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want := append(b, '\n')
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatalf("endpoint body differs from CLI -json output:\nendpoint: %s\ncli: %s", rec.Body, want)
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", got)
	}
	// The identical request must now be a cache hit with the same bytes.
	rec2 := do(t, h, "POST", "/v1/experiments/fig22", `{"quick":true}`)
	if got := rec2.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(rec2.Body.Bytes(), want) {
		t.Fatal("cached body differs from computed body")
	}
	// An equivalent spelling (reordered/default fields) shares the entry.
	rec3 := do(t, h, "POST", "/v1/experiments/fig22", `{"workers":0, "quick":true}`)
	if got := rec3.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("equivalent request X-Cache = %q, want hit", got)
	}
}

// countingRunner is an injectable experiment runner that counts real
// computations and can block until released.
type countingRunner struct {
	mu      sync.Mutex
	calls   int
	started chan struct{} // closed signals at least one call entered
	release chan struct{} // computation blocks until this closes
	ctxDone chan struct{} // closed when the compute context is canceled
	once    sync.Once
}

func (c *countingRunner) run(ctx context.Context, id string, _ experiments.Options) (*experiments.Report, error) {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	c.once.Do(func() { close(c.started) })
	if c.release != nil {
		select {
		case <-c.release:
		case <-ctx.Done():
			if c.ctxDone != nil {
				close(c.ctxDone)
			}
			return nil, ctx.Err()
		}
	}
	return &experiments.Report{ID: id, Title: "stub"}, nil
}

func (c *countingRunner) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// TestCoalescing: N concurrent identical requests must trigger exactly
// one computation, and all N must get the same 200 body.
func TestCoalescing(t *testing.T) {
	const n = 8
	cr := &countingRunner{started: make(chan struct{}), release: make(chan struct{})}
	s := newTestServer(t, Config{MaxInflight: n + 2})
	s.runExperiment = cr.run
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/experiments/fig22", "application/json", strings.NewReader(`{"quick":true}`))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	// Release the single computation once it is underway; the remaining
	// requests have either joined the flight or will hit the LRU.
	<-cr.started
	time.Sleep(50 * time.Millisecond)
	close(cr.release)
	wg.Wait()

	if got := cr.count(); got != 1 {
		t.Fatalf("computations = %d, want 1 (coalescing failed)", got)
	}
	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs", i)
		}
	}
}

// TestLRUEviction exercises both cache bounds directly.
func TestLRUEviction(t *testing.T) {
	c := newLRU(3, 100)
	for i := 0; i < 5; i++ {
		c.Add(fmt.Sprintf("k%d", i), bytes.Repeat([]byte("x"), 10))
	}
	st := c.Stats()
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3", st.Entries)
	}
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 should have been evicted")
	}
	if _, ok := c.Get("k4"); !ok {
		t.Fatal("k4 should be resident")
	}
	// Byte bound: a 60-byte body forces older entries out.
	c.Add("big", bytes.Repeat([]byte("y"), 60))
	if st := c.Stats(); st.Bytes > 100 {
		t.Fatalf("bytes = %d, exceeds bound 100", st.Bytes)
	}
	// A body over the whole budget must be refused, not evict the world.
	c.Add("huge", bytes.Repeat([]byte("z"), 200))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized body must not be cached")
	}
	// Get promotes: after touching the oldest entry it must survive the
	// next eviction.
	c2 := newLRU(2, 0)
	c2.Add("a", []byte("1"))
	c2.Add("b", []byte("2"))
	c2.Get("a")
	c2.Add("c", []byte("3"))
	if _, ok := c2.Get("a"); !ok {
		t.Fatal("promoted entry was evicted")
	}
	if _, ok := c2.Get("b"); ok {
		t.Fatal("LRU entry should have been evicted")
	}
}

// TestAdmissionControl: with MaxInflight=1, a second concurrent request
// must be rejected with 429 and a Retry-After header.
func TestAdmissionControl(t *testing.T) {
	cr := &countingRunner{started: make(chan struct{}), release: make(chan struct{})}
	s := newTestServer(t, Config{MaxInflight: 1})
	s.runExperiment = cr.run
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/experiments/fig22", "application/json", nil)
		if err != nil {
			done <- -1
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		done <- resp.StatusCode
	}()
	<-cr.started

	resp, err := http.Post(ts.URL+"/v1/experiments/fig3", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	close(cr.release)
	if code := <-done; code != 200 {
		t.Fatalf("first request status = %d, want 200", code)
	}
	// /metrics must have counted the rejection.
	rec := do(t, s.Handler(), "GET", "/metrics", "")
	if !strings.Contains(rec.Body.String(), "cryowire_http_rejected_busy_total 1") {
		t.Fatal("rejected_busy_total not reported on /metrics")
	}
}

// TestCancellationStopsComputation: when the only client canceling an
// in-flight request goes away, the compute context must be canceled so
// the worker fan-out underneath stops.
func TestCancellationStopsComputation(t *testing.T) {
	cr := &countingRunner{
		started: make(chan struct{}),
		release: make(chan struct{}), // never closed: only cancellation ends the run
		ctxDone: make(chan struct{}),
	}
	s := newTestServer(t, Config{})
	s.runExperiment = cr.run
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/experiments/fig22", nil)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	<-cr.started
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("expected client-side cancellation error")
	}
	select {
	case <-cr.ctxDone:
		// The abandoned computation observed cancellation.
	case <-time.After(5 * time.Second):
		t.Fatal("compute context was not canceled after the last client left")
	}
}

// TestGracefulShutdown: canceling the serve context must drain the
// in-flight request to a clean 200 and refuse new work with 503.
func TestGracefulShutdown(t *testing.T) {
	cr := &countingRunner{started: make(chan struct{}), release: make(chan struct{})}
	s := newTestServer(t, Config{RequestTimeout: 30 * time.Second})
	s.runExperiment = cr.run

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	waitReady(t, url)

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/v1/experiments/fig22", "application/json", nil)
		if err != nil {
			inflight <- -1
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		inflight <- resp.StatusCode
	}()
	<-cr.started

	cancel() // begin graceful shutdown while the request is in flight
	// Draining must be observable before the slow request completes.
	waitFor(t, 5*time.Second, func() bool { return s.draining.Load() })
	close(cr.release)
	if code := <-inflight; code != 200 {
		t.Fatalf("in-flight request during drain: status %d, want 200", code)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after drain, want nil", err)
	}
	// The handler now refuses new work.
	rec := do(t, s.Handler(), "POST", "/v1/experiments/fig22", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request status = %d, want 503", rec.Code)
	}
}

func waitReady(t *testing.T, url string) {
	t.Helper()
	waitFor(t, 5*time.Second, func() bool {
		resp, err := http.Get(url + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == 200
	})
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met before timeout")
}

// TestSimulateEndpoint runs a tiny real simulation end to end.
func TestSimulateEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	d := serveDesigns()[0]
	if _, err := workload.ByName("ferret"); err != nil {
		t.Skipf("workload ferret unavailable: %v", err)
	}
	body := fmt.Sprintf(`{"design":%q,"workload":"ferret","config":{"warmup_cycles":200,"measure_cycles":500,"seed":7}}`, d.Name)
	rec := do(t, s.Handler(), "POST", "/v1/simulate", body)
	if rec.Code != 200 {
		t.Fatalf("status = %d, body: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "\"IPC\"") {
		t.Fatalf("simulate body missing IPC: %s", rec.Body)
	}
	// Same request again: must be a cache hit with identical bytes.
	rec2 := do(t, s.Handler(), "POST", "/v1/simulate", body)
	if got := rec2.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat simulate X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(rec.Body.Bytes(), rec2.Body.Bytes()) {
		t.Fatal("cached simulate body differs")
	}
}

// TestMetricsRendering checks the Prometheus exposition shape.
func TestMetricsRendering(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	do(t, h, "GET", "/v1/experiments", "")
	rec := do(t, h, "GET", "/metrics", "")
	body := rec.Body.String()
	for _, want := range []string{
		`cryowire_http_requests_total{route="/v1/experiments",code="200"} 1`,
		"cryowire_http_request_duration_seconds_bucket{le=\"+Inf\"}",
		"cryowire_http_request_duration_seconds_count",
		"cryowire_platform_cache_hits_total",
		"cryowire_platform_cache_misses_total",
		"cryowire_response_cache_entries",
		"cryowire_http_inflight 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestFlightGroupLeaderDisconnect: a leader abandoning its request must
// not fail a follower riding the same computation.
func TestFlightGroupLeaderDisconnect(t *testing.T) {
	g := newFlightGroup(context.Background(), 0)
	entered := make(chan struct{})
	release := make(chan struct{})
	fn := func(ctx context.Context) ([]byte, error) {
		close(entered)
		select {
		case <-release:
			return []byte("result"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := g.Do(leaderCtx, "k", fn)
		leaderErr <- err
	}()
	<-entered

	followerBody := make(chan []byte, 1)
	go func() {
		body, shared, err := g.Do(context.Background(), "k", fn)
		if err != nil || !shared {
			t.Errorf("follower: shared=%v err=%v", shared, err)
		}
		followerBody <- body
	}()
	// Give the follower a moment to join, then kill the leader.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()
	if err := <-leaderErr; err == nil {
		t.Fatal("leader should observe its cancellation")
	}
	close(release)
	if body := <-followerBody; string(body) != "result" {
		t.Fatalf("follower body = %q, want %q", body, "result")
	}
}

// TestExpvarPublished: the expvar integration must survive multiple
// server constructions in one process (this whole test binary already
// proves that) and reflect the newest server.
func TestExpvarPublished(t *testing.T) {
	s := newTestServer(t, Config{})
	_ = s // construction publishes; a second one must not panic
	s2 := newTestServer(t, Config{})
	if got := expvarSrv.Load(); got != s2 {
		t.Fatal("expvar does not track the latest server")
	}
}

// Compile-time check that the injectable runner matches the real one.
var _ func(context.Context, string, experiments.Options) (*experiments.Report, error) = experiments.RunCtx

// dseOverCapBody builds a /v1/dse request whose space exceeds the
// server's evaluation cap (the full default space is 576 points, so it
// takes a long temperature axis to blow past 4096).
func dseOverCapBody() string {
	var b strings.Builder
	b.WriteString(`{"temps_k":[`)
	for i := 0; i < 30; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", 77+i)
	}
	b.WriteString(`]}`)
	return b.String()
}
