package server

import (
	"strconv"
	"strings"
)

// canonicalKey builds the canonical request description every /v1
// compute endpoint hashes into its cache key: the endpoint kind
// followed by the parsed, normalized request fields. Each field is
// strconv.Quote'd before joining, so no field value can forge the
// separator or collide with a differently-split request — two calls
// produce the same key iff kind and every field are equal (see
// FuzzCanonicalKey). Canonical strings are built from parsed values,
// never raw query/body bytes, so equivalent spellings of one request
// ("77" vs "77.0", reordered JSON fields, absent defaults) share an
// entry.
func canonicalKey(kind string, fields ...string) string {
	var b strings.Builder
	b.WriteString(kind)
	for _, f := range fields {
		b.WriteByte('|')
		b.WriteString(strconv.Quote(f))
	}
	return b.String()
}

// canonInt, canonInt64, canonBool and canonFloat render scalar request
// fields canonically for canonicalKey.
func canonInt(v int) string { return strconv.Itoa(v) }

// canonInts renders an int list canonically for cache keys.
func canonInts(vs []int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

func canonInt64(v int64) string   { return strconv.FormatInt(v, 10) }
func canonBool(v bool) string     { return strconv.FormatBool(v) }
func canonFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
