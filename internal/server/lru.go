package server

import (
	"container/list"
	"sync"
)

// lru is the size-bounded response cache behind the /v1 endpoints.
// Entries are keyed on the canonical hashed request and hold the exact
// response bytes, so a hot query is served straight from memory without
// touching the model stack. Both an entry count and a total byte budget
// bound the cache; least-recently-used entries are evicted first.
//
// Stored bodies are shared between the cache and every response writer,
// so callers must never mutate a body after Add or Get.
type lru struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recent
	items      map[string]*list.Element
	bytes      int64

	hits, misses, evictions uint64
}

// lruEntry is one cached response.
type lruEntry struct {
	key  string
	body []byte
}

// lruStats is a point-in-time snapshot of cache traffic and occupancy.
type lruStats struct {
	Entries   int
	Bytes     int64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// newLRU builds a cache bounded by maxEntries entries and maxBytes
// total body bytes; non-positive bounds disable that dimension's limit.
func newLRU(maxEntries int, maxBytes int64) *lru {
	return &lru{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// Get returns the cached body for key and promotes it to most-recent.
func (c *lru) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// Add stores body under key, evicting least-recently-used entries until
// both bounds hold again. A body larger than the whole byte budget is
// not cached at all — evicting everything for one giant response would
// defeat the cache.
func (c *lru) Add(key string, body []byte) {
	if c.maxBytes > 0 && int64(len(body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, body: body})
		c.bytes += int64(len(body))
	}
	for c.overLimit() {
		c.evictOldest()
	}
}

// overLimit reports whether either bound is exceeded.
func (c *lru) overLimit() bool {
	if c.maxEntries > 0 && c.ll.Len() > c.maxEntries {
		return true
	}
	return c.maxBytes > 0 && c.bytes > c.maxBytes
}

// evictOldest drops the least-recently-used entry.
func (c *lru) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= int64(len(e.body))
	c.evictions++
}

// Stats snapshots occupancy and traffic counters.
func (c *lru) Stats() lruStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return lruStats{
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
