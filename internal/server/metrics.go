package server

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cryowire/internal/jobs"
	"cryowire/internal/shard"
	"cryowire/internal/sim"
	"cryowire/internal/surrogate"
)

// latencyBuckets are the histogram upper bounds in seconds. The grid is
// logarithmic from sub-millisecond (cached hits) to half a minute
// (full-length experiment runs); +Inf is implicit.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// metrics aggregates the serving-side counters exposed on /metrics in
// Prometheus text format and via expvar. Platform-cache and LRU numbers
// are pulled from their owners at render time, so this struct only
// tracks what the HTTP layer itself observes.
type metrics struct {
	start time.Time

	inflight      atomic.Int64
	coalesced     atomic.Uint64
	rejectedBusy  atomic.Uint64 // 429: admission semaphore full
	rejectedDrain atomic.Uint64 // 503: draining for shutdown
	rejectedRate  atomic.Uint64 // 429: job-submission token bucket empty

	mu       sync.Mutex
	requests map[string]uint64 // "route\x00code" → count
	buckets  []uint64          // cumulative-by-render histogram counts
	latSum   float64
	latCount uint64
}

func newMetrics() *metrics {
	return &metrics{
		start:    time.Now(),
		requests: make(map[string]uint64),
		buckets:  make([]uint64, len(latencyBuckets)+1),
	}
}

// observe records one finished request.
func (m *metrics) observe(route string, code int, dur time.Duration) {
	sec := dur.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, sec)
	m.mu.Lock()
	m.requests[fmt.Sprintf("%s\x00%d", route, code)]++
	m.buckets[i]++
	m.latSum += sec
	m.latCount++
	m.mu.Unlock()
}

// meanLatency returns the average observed request duration in
// seconds (0 before any sample) — the basis of the admission 429's
// Retry-After hint.
func (m *metrics) meanLatency() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.latCount == 0 {
		return 0
	}
	return m.latSum / float64(m.latCount)
}

// platformStats is the derivation-cache view /metrics needs; the
// platform package's Stats method satisfies it via a closure.
type platformStats struct {
	Hits, Misses uint64
}

// renderProm writes the whole exposition in Prometheus text format.
// Series within a metric are sorted so scrapes are deterministic. js
// is nil when the async job subsystem is disabled.
func (m *metrics) renderProm(lru lruStats, pf platformStats, js *jobs.Stats) string {
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatProm(v))
	}

	m.mu.Lock()
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(&b, "# HELP cryowire_http_requests_total Completed HTTP requests by route and status code.\n")
	fmt.Fprintf(&b, "# TYPE cryowire_http_requests_total counter\n")
	for _, k := range keys {
		route, code, _ := strings.Cut(k, "\x00")
		fmt.Fprintf(&b, "cryowire_http_requests_total{route=%q,code=%q} %d\n", route, code, m.requests[k])
	}
	fmt.Fprintf(&b, "# HELP cryowire_http_request_duration_seconds Request latency histogram.\n")
	fmt.Fprintf(&b, "# TYPE cryowire_http_request_duration_seconds histogram\n")
	cum := uint64(0)
	for i, le := range latencyBuckets {
		cum += m.buckets[i]
		fmt.Fprintf(&b, "cryowire_http_request_duration_seconds_bucket{le=%q} %d\n", formatProm(le), cum)
	}
	cum += m.buckets[len(latencyBuckets)]
	fmt.Fprintf(&b, "cryowire_http_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "cryowire_http_request_duration_seconds_sum %s\n", formatProm(m.latSum))
	fmt.Fprintf(&b, "cryowire_http_request_duration_seconds_count %d\n", m.latCount)
	m.mu.Unlock()

	gauge("cryowire_http_inflight", "Requests currently being served on the /v1 endpoints.", float64(m.inflight.Load()))
	counter("cryowire_http_rejected_busy_total", "Requests rejected with 429 because the admission semaphore was full.", m.rejectedBusy.Load())
	counter("cryowire_http_rejected_draining_total", "Requests rejected with 503 during shutdown drain.", m.rejectedDrain.Load())
	counter("cryowire_http_coalesced_total", "Requests that rode another request's in-flight computation.", m.coalesced.Load())

	counter("cryowire_response_cache_hits_total", "Responses served from the LRU response cache.", lru.Hits)
	counter("cryowire_response_cache_misses_total", "Response-cache lookups that had to compute.", lru.Misses)
	counter("cryowire_response_cache_evictions_total", "Responses evicted to stay within the cache bounds.", lru.Evictions)
	gauge("cryowire_response_cache_entries", "Responses currently held by the LRU cache.", float64(lru.Entries))
	gauge("cryowire_response_cache_bytes", "Body bytes currently held by the LRU cache.", float64(lru.Bytes))

	counter("cryowire_platform_cache_hits_total", "Model-derivation calls served from the shared platform cache.", pf.Hits)
	counter("cryowire_platform_cache_misses_total", "Model artifacts actually derived by the shared platform cache.", pf.Misses)

	bs := sim.ReadBatchStats()
	counter("cryowire_sim_batches_total", "Lockstep simulation batches run.", bs.Batches)
	counter("cryowire_sim_batch_lanes_total", "Simulation lanes carried by lockstep batches.", bs.Lanes)
	counter("cryowire_sim_batch_cache_hits_total", "Lane specs served by batch dedup instead of simulating.", bs.CacheHits)
	counter("cryowire_sim_batch_cache_misses_total", "Lane specs actually simulated by the batch runner.", bs.CacheMisses)
	counter("cryowire_sim_batch_lane_failures_total", "Lanes that ended in a per-lane error.", bs.LaneFailures)
	gauge("cryowire_sim_batch_lanes", "Simulation lanes currently running in lockstep batches.", float64(bs.ActiveLanes))
	occupancy := 0.0
	if bs.Batches > 0 {
		occupancy = float64(bs.Lanes) / float64(bs.Batches)
	}
	gauge("cryowire_sim_batch_occupancy", "Mean lanes per batch over the process lifetime.", occupancy)

	sur := surrogate.ReadStats()
	counter("cryowire_surrogate_fits_total", "Surrogate models fitted from journals or in-run history.", sur.Fits)
	counter("cryowire_surrogate_predictions_total", "Surrogate predictions served to search strategies.", sur.Predictions)
	counter("cryowire_surrogate_sims_skipped_total", "Simulations skipped because the surrogate placed the point outside the predicted Pareto band.", sur.SimsSkipped)

	ss := shard.ReadStats()
	counter("cryowire_shard_dispatched_total", "Shards handed to an executor by the coordinator.", ss.Dispatched)
	counter("cryowire_shard_redispatched_total", "Failed shards re-dispatched locally from their journal checkpoint.", ss.Redispatched)
	counter("cryowire_shard_http_retries_total", "Retried HTTP attempts against shard replicas.", ss.HTTPRetries)
	counter("cryowire_shard_merged_shards_total", "Shard journals merged into a coordinator journal.", ss.MergedShards)
	counter("cryowire_shard_merged_entries_total", "Journal entries carried through shard merges.", ss.MergedEntries)
	if len(ss.Replicas) > 0 {
		bases := make([]string, 0, len(ss.Replicas))
		for base := range ss.Replicas {
			bases = append(bases, base)
		}
		sort.Strings(bases)
		fmt.Fprintf(&b, "# HELP cryowire_shard_replica_requests_total HTTP requests sent to each shard replica.\n# TYPE cryowire_shard_replica_requests_total counter\n")
		for _, base := range bases {
			fmt.Fprintf(&b, "cryowire_shard_replica_requests_total{replica=%q} %d\n", base, ss.Replicas[base].Requests)
		}
		fmt.Fprintf(&b, "# HELP cryowire_shard_replica_errors_total Failed HTTP requests per shard replica.\n# TYPE cryowire_shard_replica_errors_total counter\n")
		for _, base := range bases {
			fmt.Fprintf(&b, "cryowire_shard_replica_errors_total{replica=%q} %d\n", base, ss.Replicas[base].Errors)
		}
		fmt.Fprintf(&b, "# HELP cryowire_shard_replica_latency_seconds_sum Cumulative HTTP request latency per shard replica.\n# TYPE cryowire_shard_replica_latency_seconds_sum counter\n")
		for _, base := range bases {
			fmt.Fprintf(&b, "cryowire_shard_replica_latency_seconds_sum{replica=%q} %s\n", base, formatProm(ss.Replicas[base].LatencySumSeconds))
		}
	}

	if js != nil {
		counter("cryowire_http_rate_limited_total", "Job submissions rejected with 429 by the per-client token bucket.", m.rejectedRate.Load())
		counter("cryowire_jobs_submitted_total", "Async DSE jobs accepted.", js.Submitted)
		counter("cryowire_jobs_completed_total", "Async DSE jobs that finished with a result.", js.Completed)
		counter("cryowire_jobs_failed_total", "Async DSE jobs that ended in an error.", js.Failed)
		counter("cryowire_jobs_canceled_total", "Async DSE jobs canceled by clients.", js.Canceled)
		counter("cryowire_jobs_resumed_total", "Interrupted jobs resumed from their journals at startup.", js.Resumed)
		counter("cryowire_jobs_eval_retries_total", "Transient evaluation failures retried with backoff.", js.Retries)
		statuses := make([]string, 0, len(js.ByStatus))
		for st := range js.ByStatus {
			statuses = append(statuses, string(st))
		}
		sort.Strings(statuses)
		fmt.Fprintf(&b, "# HELP cryowire_jobs Jobs in the store by status.\n# TYPE cryowire_jobs gauge\n")
		for _, st := range statuses {
			fmt.Fprintf(&b, "cryowire_jobs{status=%q} %d\n", st, js.ByStatus[jobs.Status(st)])
		}
	}

	gauge("cryowire_uptime_seconds", "Seconds since the server started.", time.Since(m.start).Seconds())
	return b.String()
}

// formatProm renders a float the way Prometheus clients expect.
func formatProm(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// snapshot returns the expvar view of the serving counters.
func (m *metrics) snapshot(lru lruStats, pf platformStats) map[string]any {
	m.mu.Lock()
	reqs := uint64(0)
	for _, v := range m.requests {
		reqs += v
	}
	latCount, latSum := m.latCount, m.latSum
	m.mu.Unlock()
	return map[string]any{
		"requests_total":        reqs,
		"inflight":              m.inflight.Load(),
		"coalesced_total":       m.coalesced.Load(),
		"rejected_busy_total":   m.rejectedBusy.Load(),
		"rejected_drain_total":  m.rejectedDrain.Load(),
		"latency_sum_seconds":   latSum,
		"latency_count":         latCount,
		"response_cache":        lru,
		"platform_cache_hits":   pf.Hits,
		"platform_cache_misses": pf.Misses,
		"uptime_seconds":        time.Since(m.start).Seconds(),
	}
}

// expvar integration: one process-wide "cryowire_server" var that
// always reflects the most recently constructed server, published at
// most once (expvar.Publish panics on duplicates, and tests construct
// many servers per process).
var (
	expvarOnce sync.Once
	expvarSrv  atomic.Pointer[Server]
)

func publishExpvar(s *Server) {
	expvarSrv.Store(s)
	expvarOnce.Do(func() {
		expvar.Publish("cryowire_server", expvar.Func(func() any {
			cur := expvarSrv.Load()
			if cur == nil {
				return nil
			}
			return cur.metrics.snapshot(cur.cache.Stats(), cur.platformStats())
		}))
	})
}
