package noc

// Energy accumulates switching-activity counters in physical units —
// the Orion-2.0-style accounting behind the NoC power comparison
// (Fig 22). Wire energy scales with driven millimetres × flits; router
// energy with traversals and buffer writes; bus arbitration with grant
// events. The power package converts these into watts via V²·E_unit.
type Energy struct {
	// WireMMFlits is the total wire length driven, in mm·flits.
	WireMMFlits float64
	// RouterTraversals counts crossbar passes.
	RouterTraversals int64
	// BufferWrites counts input-buffer enqueues.
	BufferWrites int64
	// Arbitrations counts bus grant events.
	Arbitrations int64
}

// Add accumulates another counter set.
func (e *Energy) Add(o Energy) {
	e.WireMMFlits += o.WireMMFlits
	e.RouterTraversals += o.RouterTraversals
	e.BufferWrites += o.BufferWrites
	e.Arbitrations += o.Arbitrations
}

// tileMM is the physical length of one tile hop.
const tileMM = 2.0

// EnergyMeter is implemented by networks that track activity.
type EnergyMeter interface {
	Energy() Energy
}

// Energy implements EnergyMeter for router networks.
func (rn *RouterNet) Energy() Energy { return rn.energy }

// Energy implements EnergyMeter for buses.
func (b *Bus) Energy() Energy { return b.energy }

// Energy implements EnergyMeter for interleaved buses.
func (ib *InterleavedBus) Energy() Energy {
	var e Energy
	for _, b := range ib.buses {
		e.Add(b.Energy())
	}
	return e
}

var (
	_ EnergyMeter = (*RouterNet)(nil)
	_ EnergyMeter = (*Bus)(nil)
	_ EnergyMeter = (*InterleavedBus)(nil)
)
