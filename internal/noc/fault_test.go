package noc

import (
	"math/rand"
	"testing"

	"cryowire/internal/fault"
)

func mustInjector(t *testing.T, cfg fault.Config) *fault.Injector {
	t.Helper()
	in, err := fault.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// The acceptance-criteria test: kill one H-tree segment and assert the
// CryoBus broadcast degrades from its 1-cycle span to a finite
// multi-cycle span instead of panicking or keeping the healthy timing.
func TestKilledHTreeSegmentDegradesBroadcast(t *testing.T) {
	healthy := NewHTree(64)
	// Kill the level-2 trunk of quadrant 0 (the L2-hub→root segment).
	deg, err := DegradeHTree(healthy, []HTreeSegment{{Level: 2, Index: 0}})
	if err != nil {
		t.Fatal(err)
	}
	// The dead 3-hop trunk detours over 2·3+2 = 8 hops, so quadrant-0
	// leaves now sit 1+2+8 = 11 hops from the root and the broadcast
	// span doubles that.
	if got := deg.ReqHops(0); got != 11 {
		t.Errorf("degraded quadrant-0 climb = %d hops, want 11", got)
	}
	if got := deg.ReqHops(63); got != 6 {
		t.Errorf("unaffected quadrant climb = %d hops, want healthy 6", got)
	}
	if got := deg.BroadcastHops(); got != 22 {
		t.Errorf("degraded broadcast span = %d hops, want 22", got)
	}
	// Local traffic inside an intact block keeps its healthy distance.
	if got, want := deg.PathHops(0, 1), healthy.PathHops(0, 1); got != want {
		t.Errorf("intact-block path = %d hops, want %d", got, want)
	}
	// On 77 K wires the healthy 12-hop span is the famous 1-cycle
	// broadcast; the degraded span must be a finite multi-cycle one.
	tm := bus77()
	h, d := tm.WireCycles(healthy.BroadcastHops()), tm.WireCycles(deg.BroadcastHops())
	if h != 1 {
		t.Fatalf("healthy CryoBus broadcast = %d cycles, want 1", h)
	}
	if d <= h {
		t.Errorf("degraded broadcast = %d cycles, want > %d", d, h)
	}
}

func TestDegradeHTreeRejectsUnknownSegment(t *testing.T) {
	base := NewHTree(64)
	for _, bad := range []HTreeSegment{{Level: 3, Index: 0}, {Level: -1, Index: 0}, {Level: 0, Index: 64}, {Level: 2, Index: 4}} {
		if _, err := DegradeHTree(base, []HTreeSegment{bad}); err == nil {
			t.Errorf("segment %+v accepted, want error", bad)
		}
	}
}

func TestDegradedSerpentineAddsDetours(t *testing.T) {
	base := NewSerpentine(64)
	in := mustInjector(t, fault.Config{Seed: 21, LinkFailureRate: 0.3})
	deg := degradeSerpentineWith(base, in, "test")
	if deg == nil {
		t.Fatal("30% failure rate left the whole serpentine intact")
	}
	if got, want := deg.BroadcastHops(), base.BroadcastHops(); got <= want {
		t.Errorf("degraded serpentine span = %d hops, want > healthy %d", got, want)
	}
	// A path crossing no dead segment keeps its healthy cost.
	for a := 0; a < 64; a++ {
		for b := 0; b < 64; b++ {
			if deg.PathHops(a, b) < base.PathHops(a, b) {
				t.Fatalf("degraded path %d→%d shorter than healthy", a, b)
			}
		}
	}
}

// runBusTraffic drives a deterministic uniform load and returns the
// stats. The rng only shapes the offered traffic, never the faults.
func runBusTraffic(b *Bus, cycles int, seed int64) Stats {
	rng := rand.New(rand.NewSource(seed))
	var id int64
	for cyc := 0; cyc < cycles; cyc++ {
		for s := 0; s < b.Nodes(); s++ {
			if rng.Float64() < 0.005 {
				p := &Packet{ID: id, Src: s, Dst: Broadcast, Flits: 1, InjectedAt: b.Cycle()}
				id++
				b.TryInject(p)
			}
		}
		b.Step()
	}
	return *b.Stats()
}

func TestZeroBusFaultRatesBitForBit(t *testing.T) {
	// An injector whose bus-relevant rates are all zero (here: only
	// MemSlowRate is active, which buses never consult) must leave the
	// bus results bit-for-bit identical to an uninjected run.
	plain := NewCryoBus(64, bus77())
	faulted := NewCryoBus(64, bus77())
	faulted.AttachInjector(mustInjector(t, fault.Config{Seed: 3, MemSlowRate: 0.5}), "data")
	a := runBusTraffic(plain, 4000, 7)
	b := runBusTraffic(faulted, 4000, 7)
	if a != b {
		t.Errorf("zero-bus-fault stats diverged: healthy %+v vs injected %+v", a, b)
	}
}

func TestCryoBusCompletesDegraded(t *testing.T) {
	// At a 10% segment-failure rate the CryoBus must keep delivering —
	// slower, never hung.
	healthy := NewCryoBus(64, bus77())
	faulted := NewCryoBus(64, bus77())
	faulted.AttachInjector(mustInjector(t, fault.Config{Seed: 5, LinkFailureRate: 0.10}), "data")
	if _, ok := faulted.Layout().(*DegradedHTree); !ok {
		t.Fatalf("10%% failure rate with seed 5 degraded nothing (layout %T)", faulted.Layout())
	}
	h := runBusTraffic(healthy, 6000, 11)
	f := runBusTraffic(faulted, 6000, 11)
	if f.Delivered == 0 {
		t.Fatal("degraded CryoBus delivered nothing")
	}
	if f.AvgLatency() <= h.AvgLatency() {
		t.Errorf("degraded latency %.2f not worse than healthy %.2f", f.AvgLatency(), h.AvgLatency())
	}
	if faulted.ZeroLoadLatency() <= healthy.ZeroLoadLatency() {
		t.Errorf("degraded zero-load %.2f not worse than healthy %.2f", faulted.ZeroLoadLatency(), healthy.ZeroLoadLatency())
	}
}

func TestFlitCorruptionForcesBoundedRetransmits(t *testing.T) {
	b := NewCryoBus(64, bus77())
	in := mustInjector(t, fault.Config{Seed: 1, FlitCorruptionRate: 1, MaxRetries: 4})
	b.AttachInjector(in, "data")
	p := &Packet{ID: 42, Src: 0, Dst: Broadcast, Flits: 1, InjectedAt: 0}
	if !b.TryInject(p) {
		t.Fatal("inject failed")
	}
	for i := 0; i < 2000 && b.Stats().Delivered == 0; i++ {
		b.Step()
	}
	st := b.Stats()
	if st.Delivered != 1 {
		t.Fatalf("packet never delivered despite bounded retries (retransmits %d)", st.Retransmits)
	}
	// Corruption rate 1 burns the whole retry budget, then the ECC
	// assumption delivers the final attempt.
	if st.Retransmits != int64(in.MaxRetries()) {
		t.Errorf("retransmits = %d, want %d", st.Retransmits, in.MaxRetries())
	}
	healthy := NewCryoBus(64, bus77())
	hp := &Packet{ID: 42, Src: 0, Dst: Broadcast, Flits: 1, InjectedAt: 0}
	healthy.TryInject(hp)
	for i := 0; i < 2000 && healthy.Stats().Delivered == 0; i++ {
		healthy.Step()
	}
	if st.MaxLatency <= healthy.Stats().MaxLatency {
		t.Errorf("retransmitted latency %d not worse than healthy %d", st.MaxLatency, healthy.Stats().MaxLatency)
	}
}

func TestGrantStallsDelayButDeliver(t *testing.T) {
	b := NewCryoBus(64, bus77())
	b.AttachInjector(mustInjector(t, fault.Config{Seed: 9, GrantStallRate: 0.5}), "req")
	st := runBusTraffic(b, 4000, 13)
	if st.GrantStalls == 0 {
		t.Error("50% grant-stall rate stalled nothing")
	}
	if st.Delivered == 0 {
		t.Error("grant stalls starved the bus completely")
	}
}

func TestRouterNetApplyFaults(t *testing.T) {
	healthy := NewMesh(64, timing77(1))
	faulted := NewMesh(64, timing77(1))
	faulted.ApplyFaults(mustInjector(t, fault.Config{Seed: 2, LinkFailureRate: 0.2}), "mesh")
	if faulted.ZeroLoadLatency() <= healthy.ZeroLoadLatency() {
		t.Errorf("faulted mesh zero-load %.2f not worse than healthy %.2f",
			faulted.ZeroLoadLatency(), healthy.ZeroLoadLatency())
	}
	// Traffic still drains: the spare wires are slow, not dead.
	rng := rand.New(rand.NewSource(3))
	var id int64
	injected := 0
	for cyc := 0; cyc < 4000; cyc++ {
		if cyc < 1000 {
			for s := 0; s < 64; s++ {
				if rng.Float64() < 0.01 {
					p := &Packet{ID: id, Src: s, Dst: Uniform{}.Dest(s, 64, rng), Flits: 1, InjectedAt: faulted.Cycle()}
					id++
					if faulted.TryInject(p) {
						injected++
					}
				}
			}
		}
		faulted.Step()
	}
	if got := faulted.Stats().Delivered; got != int64(injected) {
		t.Errorf("faulted mesh delivered %d of %d injected", got, injected)
	}
}

func TestApplyFaultsInactiveIsNoOp(t *testing.T) {
	a := NewMesh(64, timing77(1))
	b := NewMesh(64, timing77(1))
	b.ApplyFaults(nil, "mesh")
	b.ApplyFaults(mustInjector(t, fault.Config{Seed: 4}), "mesh")
	if a.ZeroLoadLatency() != b.ZeroLoadLatency() {
		t.Error("inactive injector changed the mesh")
	}
}
