package noc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cryowire/internal/phys"
)

func mosfet() *phys.MOSFET { return phys.DefaultMOSFET() }

func timing300(router int) Timing { return MeshTiming(phys.Nominal45, mosfet(), router) }
func timing77(router int) Timing  { return MeshTiming(Op77(), mosfet(), router) }
func bus300() Timing              { return BusTiming(phys.Nominal45, mosfet()) }
func bus77() Timing               { return BusTiming(Op77(), mosfet()) }

func TestTimingAnchors(t *testing.T) {
	t300 := timing300(1)
	t77 := timing77(1)
	if t300.HopsPerCycle != 4 {
		t.Errorf("300K hops/cycle = %d, want 4", t300.HopsPerCycle)
	}
	if t77.HopsPerCycle != 12 {
		t.Errorf("77K hops/cycle = %d, want 12", t77.HopsPerCycle)
	}
	// §5.1: router frequency improves only ≈9.3 % at 77 K.
	gain := t77.FreqGHz/t300.FreqGHz - 1
	if gain < 0.07 || gain > 0.12 {
		t.Errorf("router frequency gain at 77K = %.1f%%, want ≈9.3%%", gain*100)
	}
}

func TestMeshXYRouting(t *testing.T) {
	m := NewMesh(64, timing300(1))
	// XY distance equals Manhattan distance for every pair.
	for a := 0; a < 64; a += 7 {
		for b := 0; b < 64; b += 5 {
			if a == b {
				continue
			}
			ax, ay := a%8, a/8
			bx, by := b%8, b/8
			want := abs(ax-bx) + abs(ay-by)
			if got := m.HopsBetween(a, b); got != want {
				t.Fatalf("mesh hops %d→%d = %d, want %d", a, b, got, want)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestFlattenedButterflyTwoHops(t *testing.T) {
	fb := NewFlattenedButterfly(64, timing300(1))
	for a := 0; a < 64; a += 3 {
		for b := 0; b < 64; b += 7 {
			if a/4 == b/4 {
				continue
			}
			if h := fb.HopsBetween(a, b); h > 2 {
				t.Fatalf("FB hops %d→%d = %d, want ≤ 2", a, b, h)
			}
		}
	}
}

func TestCMeshConcentration(t *testing.T) {
	cm := NewCMesh(64, timing300(1))
	if cm.Nodes() != 64 {
		t.Fatalf("nodes = %d", cm.Nodes())
	}
	if got := len(cm.routers); got != 16 {
		t.Fatalf("CMesh routers = %d, want 16", got)
	}
	// Same-router nodes are zero hops apart.
	if h := cm.HopsBetween(0, 3); h != 0 {
		t.Errorf("same-router hops = %d, want 0", h)
	}
}

func TestMeshDeliversUnderLightLoad(t *testing.T) {
	m := NewMesh(64, timing300(1))
	rng := rand.New(rand.NewSource(1))
	var id int64
	injected := 0
	for cyc := 0; cyc < 3000; cyc++ {
		if cyc < 1000 {
			for s := 0; s < 64; s++ {
				if rng.Float64() < 0.01 {
					p := &Packet{ID: id, Src: s, Dst: Uniform{}.Dest(s, 64, rng), Flits: 1, InjectedAt: m.Cycle()}
					id++
					if m.TryInject(p) {
						injected++
					}
				}
			}
		}
		m.Step()
	}
	st := m.Stats()
	if st.Delivered != int64(injected) {
		t.Errorf("delivered %d of %d injected (light load must fully drain)", st.Delivered, injected)
	}
	if st.AvgLatency() <= 0 {
		t.Error("zero average latency")
	}
	// Light-load latency must be near zero-load.
	if st.AvgLatency() > 2.5*m.ZeroLoadLatency() {
		t.Errorf("light-load latency %v vs zero-load %v", st.AvgLatency(), m.ZeroLoadLatency())
	}
}

func TestRouterNetRejectsBroadcast(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic injecting broadcast into a router network")
		}
	}()
	m := NewMesh(64, timing300(1))
	m.TryInject(&Packet{Src: 0, Dst: Broadcast, Flits: 1})
}

func TestMatrixArbiterFairness(t *testing.T) {
	a := NewMatrixArbiter(4)
	req := []bool{true, true, true, true}
	grants := make(map[int]int)
	for i := 0; i < 400; i++ {
		g, err := a.Grant(req)
		if err != nil {
			t.Fatal(err)
		}
		if g < 0 {
			t.Fatal("arbiter granted nobody with all requesting")
		}
		grants[g]++
	}
	for i := 0; i < 4; i++ {
		if grants[i] != 100 {
			t.Errorf("requester %d got %d grants of 400, want 100 (LRU fairness)", i, grants[i])
		}
	}
	// No request → no grant.
	if g, err := a.Grant([]bool{false, false, false, false}); err != nil || g != -1 {
		t.Errorf("grant with no requests = %d, %v, want -1, nil", g, err)
	}
}

func TestMatrixArbiterSingleRequester(t *testing.T) {
	a := NewMatrixArbiter(8)
	req := make([]bool, 8)
	req[5] = true
	for i := 0; i < 10; i++ {
		if g, err := a.Grant(req); err != nil || g != 5 {
			t.Fatalf("grant = %d, %v, want 5, nil", g, err)
		}
	}
}

func TestMatrixArbiterStarvationFreedom(t *testing.T) {
	// One hot requester asking every cycle must not starve a requester
	// that asks every cycle too but starts as lowest priority: with the
	// LRU matrix, any persistent requester is granted within n cycles.
	const n = 8
	a := NewMatrixArbiter(n)
	req := make([]bool, n)
	for i := range req {
		req[i] = true
	}
	lastGrant := make([]int, n)
	for i := range lastGrant {
		lastGrant[i] = -1
	}
	for cyc := 0; cyc < 1000; cyc++ {
		g, err := a.Grant(req)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if i != g && lastGrant[i] >= 0 && cyc-lastGrant[i] > n {
				t.Fatalf("requester %d starved: no grant between cycles %d and %d", i, lastGrant[i], cyc)
			}
		}
		lastGrant[g] = cyc
	}
}

func TestMatrixArbiterAdversarialPatterns(t *testing.T) {
	const n = 4
	t.Run("one hot vs the field", func(t *testing.T) {
		// Requester 0 asks every cycle; the others ask on alternating
		// cycles. Nobody may be locked out, and requester 0 must not
		// monopolize the bus.
		a := NewMatrixArbiter(n)
		grants := make([]int, n)
		for cyc := 0; cyc < 800; cyc++ {
			req := []bool{true, cyc%2 == 0, cyc%2 == 1, cyc%2 == 0}
			g, err := a.Grant(req)
			if err != nil {
				t.Fatal(err)
			}
			if g < 0 {
				t.Fatal("no grant while requests pending")
			}
			grants[g]++
		}
		for i, c := range grants {
			if c == 0 {
				t.Errorf("requester %d never granted", i)
			}
		}
		if grants[0] > 500 {
			t.Errorf("hot requester monopolized: %d of 800 grants", grants[0])
		}
	})
	t.Run("alternating pairs", func(t *testing.T) {
		// Even and odd requesters alternate; within each phase the LRU
		// matrix must keep splitting grants evenly.
		a := NewMatrixArbiter(n)
		grants := make([]int, n)
		for cyc := 0; cyc < 400; cyc++ {
			even := cyc%2 == 0
			req := []bool{even, !even, even, !even}
			g, err := a.Grant(req)
			if err != nil {
				t.Fatal(err)
			}
			grants[g]++
		}
		for i, c := range grants {
			if c != 100 {
				t.Errorf("requester %d got %d of 400 grants, want 100", i, c)
			}
		}
	})
}

func TestMatrixArbiterMisSizedRequestSlice(t *testing.T) {
	a := NewMatrixArbiter(4)
	for _, bad := range [][]bool{nil, {true}, make([]bool, 5)} {
		g, err := a.Grant(bad)
		if err == nil {
			t.Errorf("mis-sized request slice (len %d) not rejected", len(bad))
		}
		if g != -1 {
			t.Errorf("mis-sized request slice granted %d", g)
		}
	}
	// The arbiter must stay usable after a rejected call.
	if g, err := a.Grant([]bool{true, false, false, false}); err != nil || g != 0 {
		t.Errorf("grant after rejection = %d, %v, want 0, nil", g, err)
	}
}

func TestFig20BroadcastLatencies(t *testing.T) {
	// Fig 20 decomposition: broadcast cycles for the four bus designs.
	cases := []struct {
		bus  *Bus
		want float64
	}{
		{NewSharedBus300(64, bus300()), 8}, // 30 hops / 4 per cycle
		{NewSharedBus77(64, bus77()), 3},   // 30 / 12
		{NewHTreeBus300(64, bus300()), 3},  // 12 / 4
		{NewCryoBus(64, bus77()), 1},       // 12 / 12 — the 1-cycle broadcast
	}
	for _, c := range cases {
		_, _, _, bc := c.bus.Breakdown()
		if bc != c.want {
			t.Errorf("%s broadcast = %v cycles, want %v", c.bus.Name(), bc, c.want)
		}
	}
}

func TestCryoBusControlCycle(t *testing.T) {
	// §5.2.3: the dynamic link connection costs one extra control cycle
	// in the grant path but must not appear in the broadcast occupancy.
	cb := NewCryoBus(64, bus77())
	_, arb, grant, _ := cb.Breakdown()
	plain := NewSharedBus77(64, bus77())
	_, _, plainGrant, _ := plain.Breakdown()
	if arb != 1 {
		t.Errorf("arbitration = %v, want 1", arb)
	}
	if grant <= plainGrant-1 {
		t.Errorf("CryoBus grant+control (%v) should include the extra control cycle", grant)
	}
}

func TestBusZeroLoadOrdering(t *testing.T) {
	sb300 := NewSharedBus300(64, bus300())
	sb77 := NewSharedBus77(64, bus77())
	cb := NewCryoBus(64, bus77())
	if !(cb.ZeroLoadLatency() < sb77.ZeroLoadLatency() && sb77.ZeroLoadLatency() < sb300.ZeroLoadLatency()) {
		t.Errorf("zero-load ordering wrong: CryoBus %v, 77K bus %v, 300K bus %v",
			cb.ZeroLoadLatency(), sb77.ZeroLoadLatency(), sb300.ZeroLoadLatency())
	}
	// CryoBus must undercut even the 77 K mesh (Guideline #1).
	mesh77 := NewMesh(64, timing77(1))
	if cb.ZeroLoadLatency() >= mesh77.ZeroLoadLatency() {
		t.Errorf("CryoBus zero-load %v not below 77K mesh %v", cb.ZeroLoadLatency(), mesh77.ZeroLoadLatency())
	}
}

func TestHTreeLayoutGeometry(t *testing.T) {
	h := NewHTree(64)
	if h.BroadcastHops() != 12 {
		t.Errorf("H-tree broadcast hops = %d, want 12", h.BroadcastHops())
	}
	if h.ReqHops(0) != 6 || h.ReqHops(63) != 6 {
		t.Error("every H-tree leaf should be 6 hops from the root arbiter")
	}
	s := NewSerpentine(64)
	if s.BroadcastHops() != 30 {
		t.Errorf("serpentine broadcast hops = %d, want 30 (§5.2.1)", s.BroadcastHops())
	}
	// Path hops: same 2×2 block is cheap, across the die is the span.
	if d := h.PathHops(0, 1); d != 2 {
		t.Errorf("H-tree neighbor path = %d, want 2", d)
	}
	if d := h.PathHops(0, 63); d != 12 {
		t.Errorf("H-tree corner-to-corner = %d, want 12", d)
	}
	if d := h.PathHops(5, 5); d != 0 {
		t.Errorf("self path = %d, want 0", d)
	}
}

func TestHTreePathSymmetryProperty(t *testing.T) {
	h := NewHTree(64)
	f := func(a, b uint8) bool {
		x, y := int(a)%64, int(b)%64
		return h.PathHops(x, y) == h.PathHops(y, x) && h.PathHops(x, y) <= h.BroadcastHops()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBusDeliversBroadcasts(t *testing.T) {
	cb := NewCryoBus(64, bus77())
	p := &Packet{ID: 1, Src: 10, Dst: Broadcast, Flits: 1, InjectedAt: 0}
	if !cb.TryInject(p) {
		t.Fatal("inject failed on idle bus")
	}
	for i := 0; i < 50; i++ {
		cb.Step()
	}
	if cb.Stats().Delivered != 1 {
		t.Fatalf("broadcast not delivered")
	}
	// Zero-load CryoBus transaction: ~1 req + 1 arb + 1+1 grant/control +
	// 1 broadcast ≈ 5 cycles.
	if lat := cb.Stats().AvgLatency(); lat < 3 || lat > 8 {
		t.Errorf("CryoBus zero-load broadcast latency = %v cycles, want ≈5", lat)
	}
}

func TestSaturationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweep is slow")
	}
	cfg := SweepConfig{Pattern: Uniform{}, Seed: 42, WarmupCycles: 1000, MeasureCycles: 4000}
	sat300 := SaturationRate(func() Network { return NewSharedBus300(64, bus300()) }, cfg)
	sat77 := SaturationRate(func() Network { return NewSharedBus77(64, bus77()) }, cfg)
	satCryo := SaturationRate(func() Network { return NewCryoBus(64, bus77()) }, cfg)
	if !(sat300 < sat77 && sat77 < satCryo) {
		t.Errorf("saturation ordering wrong: 300K bus %v, 77K bus %v, CryoBus %v", sat300, sat77, satCryo)
	}
	// Guideline #2 quantities: the 77 K shared bus roughly triples the
	// 300 K bandwidth (8-cycle vs 3-cycle broadcasts); CryoBus roughly
	// triples it again.
	if sat77/sat300 < 1.8 {
		t.Errorf("77K/300K bus bandwidth ratio = %v, want ≳2.5", sat77/sat300)
	}
	if satCryo/sat77 < 1.8 {
		t.Errorf("CryoBus/77K bus bandwidth ratio = %v, want ≳2.5", satCryo/sat77)
	}
}

func TestInterleavingDoublesBandwidth(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweep is slow")
	}
	cfg := SweepConfig{Pattern: Uniform{}, Seed: 7, WarmupCycles: 1000, MeasureCycles: 4000}
	one := SaturationRate(func() Network { return NewCryoBus(64, bus77()) }, cfg)
	two := SaturationRate(func() Network {
		return NewInterleavedBus(2, func() *Bus { return NewCryoBus(64, bus77()) })
	}, cfg)
	if two < 1.5*one {
		t.Errorf("2-way interleaving bandwidth %v vs 1-way %v: want ≈2×", two, one)
	}
}

func TestLoadLatencyCurveShape(t *testing.T) {
	cfg := SweepConfig{
		Pattern: Uniform{}, Seed: 3,
		Rates:        []float64{0.001, 0.004, 0.008, 0.02, 0.06, 0.15},
		WarmupCycles: 800, MeasureCycles: 2500,
	}
	pts := LoadLatency(func() Network { return NewMesh(64, timing77(1)) }, cfg)
	if len(pts) < 2 {
		t.Fatalf("sweep returned %d points", len(pts))
	}
	// Latency is non-decreasing in offered load (within noise).
	for i := 1; i < len(pts); i++ {
		if pts[i].AvgLatency < pts[i-1].AvgLatency*0.9 {
			t.Errorf("latency dropped with load: %v then %v", pts[i-1], pts[i])
		}
	}
	// First point is near zero-load.
	z := NewMesh(64, timing77(1)).ZeroLoadLatency()
	if pts[0].AvgLatency > 2*z {
		t.Errorf("low-rate latency %v vs zero-load %v", pts[0].AvgLatency, z)
	}
}

func TestPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, name := range []string{"uniform", "transpose", "bitreverse", "hotspot", "burst"} {
		p, err := PatternByName(name)
		if err != nil {
			t.Fatalf("PatternByName(%s): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("pattern name %q != %q", p.Name(), name)
		}
		for src := 0; src < 64; src++ {
			d := p.Dest(src, 64, rng)
			if d < 0 || d >= 64 {
				t.Fatalf("%s dest out of range: %d", name, d)
			}
			if d == src {
				t.Fatalf("%s produced self-destination for %d", name, src)
			}
		}
	}
	if _, err := PatternByName("nope"); err == nil {
		t.Error("unknown pattern should error")
	}
}

func TestTransposeIsInvolution(t *testing.T) {
	p := Transpose{}
	for src := 0; src < 64; src++ {
		if src%8 == src/8 {
			continue // diagonal nodes are remapped, not transposed
		}
		d := p.Dest(src, 64, nil)
		if back := p.Dest(d, 64, nil); back != src {
			t.Errorf("transpose not an involution at %d: %d → %d", src, d, back)
		}
	}
}

func TestHybridDelivers(t *testing.T) {
	h := NewHybridCryoBus(bus77(), timing77(1))
	if h.Nodes() != 256 {
		t.Fatalf("hybrid nodes = %d, want 256", h.Nodes())
	}
	rng := rand.New(rand.NewSource(5))
	var id int64
	injected := 0
	for cyc := 0; cyc < 4000; cyc++ {
		if cyc < 1500 {
			for s := 0; s < 256; s += 4 {
				if rng.Float64() < 0.008 {
					p := &Packet{ID: id, Src: s, Dst: Uniform{}.Dest(s, 256, rng), Flits: 1, InjectedAt: h.Cycle()}
					id++
					if h.TryInject(p) {
						injected++
					}
				}
			}
		}
		h.Step()
	}
	st := h.Stats()
	if st.Delivered != int64(injected) {
		t.Errorf("hybrid delivered %d of %d", st.Delivered, injected)
	}
	if st.AvgLatency() <= 0 || st.AvgLatency() > 100 {
		t.Errorf("hybrid light-load latency = %v cycles", st.AvgLatency())
	}
}

func TestBusRejectsWhenFull(t *testing.T) {
	b := NewBus(BusConfig{Name: "tiny", Nodes: 4, Layout: NewSerpentine(4), Timing: bus300(), QueueCap: 2})
	ok1 := b.TryInject(&Packet{ID: 1, Src: 0, Dst: Broadcast, Flits: 1})
	ok2 := b.TryInject(&Packet{ID: 2, Src: 0, Dst: Broadcast, Flits: 1})
	ok3 := b.TryInject(&Packet{ID: 3, Src: 0, Dst: Broadcast, Flits: 1})
	if !ok1 || !ok2 {
		t.Error("first two injections should fit")
	}
	if ok3 {
		t.Error("third injection should be rejected by the queue cap")
	}
}

func TestWireCycles(t *testing.T) {
	tm := Timing{FreqGHz: 4, HopsPerCycle: 4}
	cases := map[int]int{0: 0, 1: 1, 4: 1, 5: 2, 12: 3, 30: 8}
	for hops, want := range cases {
		if got := tm.WireCycles(hops); got != want {
			t.Errorf("WireCycles(%d) = %d, want %d", hops, got, want)
		}
	}
	if ns := tm.CyclesToNS(8); ns != 2.0 {
		t.Errorf("8 cycles @4GHz = %v ns, want 2", ns)
	}
}

func TestRingTopology(t *testing.T) {
	ring := NewRing(16, timing300(1))
	// Shortest-direction routing: max hops = n/2.
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if a == b {
				continue
			}
			want := (b - a + 16) % 16
			if back := (a - b + 16) % 16; back < want {
				want = back
			}
			if got := ring.HopsBetween(a, b); got != want {
				t.Fatalf("ring hops %d→%d = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestRingDeliversTraffic(t *testing.T) {
	ring := NewRing(16, timing300(1))
	rng := rand.New(rand.NewSource(2))
	injected := 0
	var id int64
	for cyc := 0; cyc < 2000; cyc++ {
		if cyc < 800 {
			for s := 0; s < 16; s++ {
				if rng.Float64() < 0.02 {
					p := &Packet{ID: id, Src: s, Dst: Uniform{}.Dest(s, 16, rng), Flits: 1, InjectedAt: ring.Cycle()}
					id++
					if ring.TryInject(p) {
						injected++
					}
				}
			}
		}
		ring.Step()
	}
	if got := ring.Stats().Delivered; got != int64(injected) {
		t.Errorf("ring delivered %d of %d", got, injected)
	}
}

func TestRingSlowerThanFlattenedButterfly(t *testing.T) {
	// The ring's long average path is why commercial ring CPUs cap out
	// at modest core counts; FB's direct links beat it at 64 nodes.
	ring := NewRing(64, timing300(1))
	fb := NewFlattenedButterfly(64, timing300(1))
	if ring.ZeroLoadLatency() <= fb.ZeroLoadLatency() {
		t.Errorf("ring zero-load %v should exceed FB %v at 64 nodes",
			ring.ZeroLoadLatency(), fb.ZeroLoadLatency())
	}
}

func TestEnergyCountersMesh(t *testing.T) {
	m := NewMesh(64, timing300(1))
	p := &Packet{ID: 1, Src: 0, Dst: 63, Flits: 2, InjectedAt: 0}
	if !m.TryInject(p) {
		t.Fatal("inject failed")
	}
	for i := 0; i < 200; i++ {
		m.Step()
	}
	e := m.Energy()
	// 0→63 is 14 router hops × 2mm × 2 flits = 56 mm·flits.
	if e.RouterTraversals != 14 {
		t.Errorf("router traversals = %d, want 14", e.RouterTraversals)
	}
	if e.WireMMFlits != 56 {
		t.Errorf("wire energy = %v mm·flits, want 56", e.WireMMFlits)
	}
}

func TestEnergyDynamicLinksSaveWire(t *testing.T) {
	// The §5.2.3 power argument: for directed transfers, dynamic links
	// drive only the source→destination path.
	run := func(dyn bool) float64 {
		b := NewBus(BusConfig{Name: "e", Nodes: 64, Layout: NewHTree(64),
			Timing: bus77(), ControlCycles: 1, DynamicLinks: dyn})
		p := &Packet{ID: 1, Src: 0, Dst: 1, Flits: 1, InjectedAt: 0}
		b.TryInject(p)
		for i := 0; i < 100; i++ {
			b.Step()
		}
		return b.Energy().WireMMFlits
	}
	static := run(false)
	dynamic := run(true)
	if dynamic >= static {
		t.Errorf("dynamic-link wire energy %v not below static %v", dynamic, static)
	}
	// Neighbor transfer: 2 hops × 2mm vs full 12-hop broadcast.
	if dynamic != 4 || static != 24 {
		t.Errorf("wire energy = %v/%v mm, want 4/24", dynamic, static)
	}
}

func TestBroadcastAlwaysFullSpan(t *testing.T) {
	b := NewCryoBus(64, bus77())
	p := &Packet{ID: 1, Src: 5, Dst: Broadcast, Flits: 1, InjectedAt: 0}
	b.TryInject(p)
	for i := 0; i < 100; i++ {
		b.Step()
	}
	if got := b.Energy().WireMMFlits; got != 24 {
		t.Errorf("broadcast wire energy = %v mm, want the full 24mm H-tree span", got)
	}
	if b.Energy().Arbitrations != 1 {
		t.Errorf("arbitrations = %d, want 1", b.Energy().Arbitrations)
	}
}
