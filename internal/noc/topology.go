package noc

import "fmt"

// NewMesh builds an n-node 2D mesh (one node per router, XY routing) —
// the Fig 15(a) baseline. Router pitch is one 2 mm tile.
func NewMesh(nodes int, timing Timing) *RouterNet {
	side := gridSide(nodes)
	if side*side != nodes {
		panic(fmt.Sprintf("noc: mesh needs a square node count, got %d", nodes))
	}
	rn := newRouterNet(fmt.Sprintf("Mesh-%d", nodes), nodes, 1, timing)
	const pitch = 1 // tile hops between adjacent routers
	hop := timing.WireCycles(pitch)
	linkIndex := make([][4]int, nodes) // E, W, N, S link index per router
	for i := range linkIndex {
		linkIndex[i] = [4]int{-1, -1, -1, -1}
	}
	for r := 0; r < nodes; r++ {
		x, y := r%side, r/side
		if x+1 < side {
			linkIndex[r][0] = len(rn.routers[r].links)
			rn.addLink(r, r+1, hop, pitch)
		}
		if x > 0 {
			linkIndex[r][1] = len(rn.routers[r].links)
			rn.addLink(r, r-1, hop, pitch)
		}
		if y+1 < side {
			linkIndex[r][2] = len(rn.routers[r].links)
			rn.addLink(r, r+side, hop, pitch)
		}
		if y > 0 {
			linkIndex[r][3] = len(rn.routers[r].links)
			rn.addLink(r, r-side, hop, pitch)
		}
	}
	rn.route = func(cur, dst int) int {
		cx, cy := cur%side, cur/side
		dx, dy := dst%side, dst/side
		switch { // XY: resolve X first
		case dx > cx:
			return linkIndex[cur][0]
		case dx < cx:
			return linkIndex[cur][1]
		case dy > cy:
			return linkIndex[cur][2]
		default:
			return linkIndex[cur][3]
		}
	}
	rn.computeZeroLoad()
	return rn
}

// NewCMesh builds a concentrated mesh (Fig 15(c)): 4 nodes per router,
// router pitch two tiles, XY routing.
func NewCMesh(nodes int, timing Timing) *RouterNet {
	const conc = 4
	if nodes%conc != 0 {
		panic(fmt.Sprintf("noc: cmesh needs a multiple of %d nodes, got %d", conc, nodes))
	}
	routers := nodes / conc
	side := gridSide(routers)
	if side*side != routers {
		panic(fmt.Sprintf("noc: cmesh router count %d not square", routers))
	}
	rn := newRouterNet(fmt.Sprintf("CMesh-%d", nodes), nodes, conc, timing)
	const pitch = 2 // doubled router pitch
	hop := timing.WireCycles(pitch)
	linkIndex := make([][4]int, routers)
	for i := range linkIndex {
		linkIndex[i] = [4]int{-1, -1, -1, -1}
	}
	for r := 0; r < routers; r++ {
		x, y := r%side, r/side
		if x+1 < side {
			linkIndex[r][0] = len(rn.routers[r].links)
			rn.addLink(r, r+1, hop, pitch)
		}
		if x > 0 {
			linkIndex[r][1] = len(rn.routers[r].links)
			rn.addLink(r, r-1, hop, pitch)
		}
		if y+1 < side {
			linkIndex[r][2] = len(rn.routers[r].links)
			rn.addLink(r, r+side, hop, pitch)
		}
		if y > 0 {
			linkIndex[r][3] = len(rn.routers[r].links)
			rn.addLink(r, r-side, hop, pitch)
		}
	}
	rn.route = func(cur, dst int) int {
		cx, cy := cur%side, cur/side
		dx, dy := dst%side, dst/side
		switch {
		case dx > cx:
			return linkIndex[cur][0]
		case dx < cx:
			return linkIndex[cur][1]
		case dy > cy:
			return linkIndex[cur][2]
		default:
			return linkIndex[cur][3]
		}
	}
	rn.computeZeroLoad()
	return rn
}

// NewRing builds a bidirectional ring — the NoC of the commercial
// validation CPUs (§3.2.1: Sandy Bridge through Skylake use ring
// buses). Shortest-direction routing; router pitch one tile.
func NewRing(nodes int, timing Timing) *RouterNet {
	rn := newRouterNet(fmt.Sprintf("Ring-%d", nodes), nodes, 1, timing)
	hop := timing.WireCycles(1)
	cw := make([]int, nodes)  // clockwise link index per router
	ccw := make([]int, nodes) // counter-clockwise link index
	for r := 0; r < nodes; r++ {
		cw[r] = len(rn.routers[r].links)
		rn.addLink(r, (r+1)%nodes, hop, 1)
		ccw[r] = len(rn.routers[r].links)
		rn.addLink(r, (r+nodes-1)%nodes, hop, 1)
	}
	rn.route = func(cur, dst int) int {
		fwd := (dst - cur + nodes) % nodes
		if fwd <= nodes/2 {
			return cw[cur]
		}
		return ccw[cur]
	}
	rn.computeZeroLoad()
	return rn
}

// NewFlattenedButterfly builds a 2D flattened butterfly (Fig 15(b)):
// 4 nodes per router on a 4×4 router grid, with direct links between
// every pair of routers sharing a row or a column — at most 2 hops,
// with links up to six tiles long (the reason FB benefits somewhat more
// from fast wires than Mesh, §5.1).
func NewFlattenedButterfly(nodes int, timing Timing) *RouterNet {
	const conc = 4
	routers := nodes / conc
	side := gridSide(routers)
	if side*side != routers || nodes%conc != 0 {
		panic(fmt.Sprintf("noc: flattened butterfly needs 4·k² nodes, got %d", nodes))
	}
	rn := newRouterNet(fmt.Sprintf("FB-%d", nodes), nodes, conc, timing)
	// links[cur][dst] = output link index at cur (row/col neighbors only).
	links := make([]map[int]int, routers)
	for r := range links {
		links[r] = make(map[int]int)
	}
	for r := 0; r < routers; r++ {
		x, y := r%side, r/side
		for nx := 0; nx < side; nx++ { // row links
			if nx == x {
				continue
			}
			d := y*side + nx
			dist := nx - x
			if dist < 0 {
				dist = -dist
			}
			links[r][d] = len(rn.routers[r].links)
			rn.addLink(r, d, timing.WireCycles(2*dist), 2*dist) // pitch 2 tiles per index
		}
		for ny := 0; ny < side; ny++ { // column links
			if ny == y {
				continue
			}
			d := ny*side + x
			dist := ny - y
			if dist < 0 {
				dist = -dist
			}
			links[r][d] = len(rn.routers[r].links)
			rn.addLink(r, d, timing.WireCycles(2*dist), 2*dist)
		}
	}
	rn.route = func(cur, dst int) int {
		if li, ok := links[cur][dst]; ok {
			return li // direct row/col link
		}
		// Route in the row first toward the destination column.
		cx := cur % side
		cy := cur / side
		dx := dst % side
		_ = cx
		mid := cy*side + dx
		return links[cur][mid]
	}
	rn.computeZeroLoad()
	return rn
}
