// Package noc is a cycle-level on-chip network simulator in the spirit
// of BookSim (§5): router-based topologies (Mesh, Concentrated Mesh,
// Flattened Butterfly), shared buses (conventional serpentine,
// H-tree-shaped CryoBus with dynamic link connection and matrix
// arbitration), address-interleaved buses, and the 256-core hybrid
// CryoBus. Wire-link speed enters as "tile hops per NoC cycle" (4 at
// 300 K, 12 at 77 K from the wire-link model), which is the lever the
// fast cryogenic global wires pull.
package noc

import (
	"fmt"
	"math"

	"cryowire/internal/phys"
	"cryowire/internal/wire"
)

// Packet is the unit of transfer. A broadcast packet (snoop) has
// Dst == Broadcast.
type Packet struct {
	ID       int64
	Src, Dst int
	// Flits is the serialization length in link cycles (1 for control/
	// snoop packets, more for data).
	Flits      int
	InjectedAt int64
	// Slot is simulator-owned scratch: an intrusive reference (slot
	// index + 1; 0 means unreferenced) that lets the owning simulator
	// find its bookkeeping for this packet without a map lookup.
	// Networks must carry it untouched.
	Slot int32
}

// Broadcast as a destination delivers the packet to every other node.
const Broadcast = -1

// Network is a steppable cycle-level interconnect.
type Network interface {
	Name() string
	Nodes() int
	// TryInject offers a packet at its source this cycle; it reports
	// false when the source queue is full (back-pressure).
	TryInject(p *Packet) bool
	// Step advances one NoC cycle.
	Step()
	// Cycle returns the current cycle number.
	Cycle() int64
	// Stats returns accumulated delivery statistics.
	Stats() *Stats
	// ZeroLoadLatency returns the analytic contention-free latency in
	// cycles for an average transfer (the Fig 16 ingredient).
	ZeroLoadLatency() float64
}

// Stats accumulates delivered-packet statistics.
type Stats struct {
	Delivered    int64
	TotalLatency int64 // sum over delivered packets, cycles
	MaxLatency   int64
	// Retransmits counts transfers that arrived corrupted and were
	// NACKed and re-sent (fault injection only).
	Retransmits int64
	// GrantStalls counts arbitration cycles whose grant pulse was lost
	// (fault injection only).
	GrantStalls int64
}

// Record notes a delivery.
func (s *Stats) Record(p *Packet, now int64) {
	lat := now - p.InjectedAt
	s.Delivered++
	s.TotalLatency += lat
	if lat > s.MaxLatency {
		s.MaxLatency = lat
	}
}

// AvgLatency returns the mean packet latency in cycles.
func (s *Stats) AvgLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Delivered)
}

// Timing captures the temperature-dependent NoC clocking of Table 4.
type Timing struct {
	Name         string
	FreqGHz      float64 // NoC clock
	HopsPerCycle int     // 2 mm tile hops a signal covers per cycle
	RouterCycles int     // per-router pipeline depth (1 aggressive, 3 industrial)
}

// routerCritPath is the router's critical path decomposition: heavily
// logic-dominated (arbiters, crossbar control), giving the marginal
// +9.3 % frequency at 77 K that strands router-based NoCs (§5.1).
const (
	routerTrFrac   = 0.98
	routerWireFrac = 0.02
)

// RouterSpeedup returns the router clock gain at op relative to 300 K.
func RouterSpeedup(op phys.OperatingPoint, m *phys.MOSFET) float64 {
	local := wire.NewLine(wire.Local, 0.3, 4)
	wireSp := wire.Speedup(local, op, m, false)
	d := routerTrFrac*m.GateDelayFactor(op) + routerWireFrac/wireSp
	return 1 / d
}

// MeshTiming returns mesh timing at the operating point, with the given
// router pipeline depth.
func MeshTiming(op phys.OperatingPoint, m *phys.MOSFET, routerCycles int) Timing {
	const base = 4.0
	return Timing{
		Name:         fmt.Sprintf("mesh@%gK", float64(op.T)),
		FreqGHz:      base * RouterSpeedup(op, m),
		HopsPerCycle: wire.NoCHopsPerCycle(op, m),
		RouterCycles: routerCycles,
	}
}

// BusTiming returns shared-bus timing: buses have no routers and run at
// the 4 GHz system clock; only the wire speed changes with temperature.
func BusTiming(op phys.OperatingPoint, m *phys.MOSFET) Timing {
	return Timing{
		Name:         fmt.Sprintf("bus@%gK", float64(op.T)),
		FreqGHz:      4.0,
		HopsPerCycle: wire.NoCHopsPerCycle(op, m),
		RouterCycles: 0,
	}
}

// WireCycles converts a distance in tile hops to link cycles.
func (t Timing) WireCycles(tileHops int) int {
	if tileHops <= 0 {
		return 0
	}
	c := int(math.Ceil(float64(tileHops) / float64(t.HopsPerCycle)))
	if c < 1 {
		c = 1
	}
	return c
}

// CyclesToNS converts NoC cycles to nanoseconds.
func (t Timing) CyclesToNS(cycles float64) float64 {
	return cycles / t.FreqGHz
}

// Op77 is the nominal-voltage 77 K point.
func Op77() phys.OperatingPoint { return wire.At77() }

// Op77Scaled is the voltage-optimized 77 K NoC/LLC point of Table 4
// (Vdd 0.55 V / Vth 0.225 V).
func Op77Scaled() phys.OperatingPoint {
	return phys.OperatingPoint{T: phys.T77, Vdd: 0.55, Vth: 0.225}
}
