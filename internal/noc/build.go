package noc

import (
	"fmt"

	"cryowire/internal/fault"
)

// Error-returning topology constructors. The New* constructors panic on
// impossible shapes, which is fine for the static, known-good call
// sites inside experiments and tests; anything reachable from the
// public cryowire API (user-supplied node counts) must use these
// Build* variants instead: they validate first and only then delegate
// to the (now guaranteed panic-free) New* builder.

// validSquare checks that nodes lays out on a square grid.
func validSquare(kind string, nodes int) error {
	if nodes <= 0 {
		return fmt.Errorf("noc: %s needs a positive node count, got %d", kind, nodes)
	}
	side := gridSide(nodes)
	if side*side != nodes {
		return fmt.Errorf("noc: %s needs a square node count, got %d", kind, nodes)
	}
	return nil
}

// BuildMesh is the validating variant of NewMesh.
func BuildMesh(nodes int, timing Timing) (*RouterNet, error) {
	if err := validSquare("mesh", nodes); err != nil {
		return nil, err
	}
	return NewMesh(nodes, timing), nil
}

// BuildCMesh is the validating variant of NewCMesh.
func BuildCMesh(nodes int, timing Timing) (*RouterNet, error) {
	const conc = 4
	if nodes <= 0 || nodes%conc != 0 {
		return nil, fmt.Errorf("noc: cmesh needs a positive multiple of %d nodes, got %d", conc, nodes)
	}
	if err := validSquare("cmesh router grid", nodes/conc); err != nil {
		return nil, err
	}
	return NewCMesh(nodes, timing), nil
}

// BuildRing is the validating variant of NewRing.
func BuildRing(nodes int, timing Timing) (*RouterNet, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("noc: ring needs at least 2 nodes, got %d", nodes)
	}
	return NewRing(nodes, timing), nil
}

// BuildFlattenedButterfly is the validating variant of
// NewFlattenedButterfly.
func BuildFlattenedButterfly(nodes int, timing Timing) (*RouterNet, error) {
	const conc = 4
	if nodes <= 0 || nodes%conc != 0 {
		return nil, fmt.Errorf("noc: flattened butterfly needs 4·k² nodes, got %d", nodes)
	}
	if err := validSquare("flattened butterfly router grid", nodes/conc); err != nil {
		return nil, err
	}
	return NewFlattenedButterfly(nodes, timing), nil
}

// BuildTorus is the validating variant of NewTorus.
func BuildTorus(nodes int, timing Timing) (*RouterNet, error) {
	if err := validSquare("torus", nodes); err != nil {
		return nil, err
	}
	return NewTorus(nodes, timing), nil
}

// designBuilders is the single name→constructor table behind both
// DesignNames and NewByName (and, through them, the public facade's
// NoCDesignNames/NoCLoadLatency), so the advertised list can never
// drift from what the factory actually builds.
var designBuilders = []struct {
	name string
	mk   func(nodes int, mesh, bus Timing) (Network, error)
}{
	{"mesh", func(n int, m, _ Timing) (Network, error) { return BuildMesh(n, m) }},
	{"torus", func(n int, m, _ Timing) (Network, error) { return BuildTorus(n, m) }},
	{"ring", func(n int, m, _ Timing) (Network, error) { return BuildRing(n, m) }},
	{"cmesh", func(n int, m, _ Timing) (Network, error) { return BuildCMesh(n, m) }},
	{"fbfly", func(n int, m, _ Timing) (Network, error) { return BuildFlattenedButterfly(n, m) }},
	{"sharedbus", func(n int, _, b Timing) (Network, error) { return NewSharedBus77(n, b), nil }},
	{"cryobus", func(n int, _, b Timing) (Network, error) { return NewCryoBus(n, b), nil }},
	{"cryobus-2way", func(n int, _, b Timing) (Network, error) {
		return NewInterleavedBus(2, func() *Bus { return NewCryoBus(n, b) }), nil
	}},
}

// DesignNames lists the named interconnect designs NewByName builds, in
// canonical order.
func DesignNames() []string {
	out := make([]string, len(designBuilders))
	for i, d := range designBuilders {
		out[i] = d.name
	}
	return out
}

// NewByName builds a named interconnect over nodes. Router designs
// clock at the mesh timing, bus designs at the bus timing; invalid node
// counts and unknown names are errors (bus constructors accept any
// positive node count, so only mesh-family shapes can fail).
func NewByName(name string, nodes int, mesh, bus Timing) (Network, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("noc: design %q needs a positive node count, got %d", name, nodes)
	}
	for _, d := range designBuilders {
		if d.name == name {
			return d.mk(nodes, mesh, bus)
		}
	}
	return nil, fmt.Errorf("noc: unknown NoC design %q (have %v)", name, DesignNames())
}

// ApplyFaults degrades the router network per the fault scenario: every
// link the injector declares dead is replaced by its slow spare wire
// (roughly triple the flight time plus the mux turns on and off the
// spare), and the zero-load latency is recomputed over the degraded
// link set. Routing is unchanged — the spare follows the same path —
// so connectivity and deadlock-freedom are preserved. The domain string
// namespaces this network's fault pattern (defaults to the network
// name). Call before traffic starts; a nil or inactive injector is a
// no-op.
func (rn *RouterNet) ApplyFaults(inj *fault.Injector, domain string) {
	if inj == nil || !inj.Config().Active() {
		return
	}
	if domain == "" {
		domain = rn.name
	}
	id := 0
	degraded := false
	for ri := range rn.routers {
		r := &rn.routers[ri]
		for li := range r.links {
			if inj.LinkDown(domain, id) {
				lnk := &r.links[li]
				lnk.wireCycles = lnk.wireCycles*3 + 2
				degraded = true
			}
			id++
		}
	}
	if degraded {
		rn.computeZeroLoad()
	}
}
