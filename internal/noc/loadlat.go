package noc

import (
	"context"
	"math/rand"

	"cryowire/internal/par"
)

// SweepPoint is one measurement of a load-latency curve.
type SweepPoint struct {
	InjectionRate float64 // packets per node per cycle
	AvgLatency    float64 // cycles
	Saturated     bool
}

// SweepConfig controls a load-latency sweep.
type SweepConfig struct {
	Pattern Pattern
	Rates   []float64
	// WarmupCycles and MeasureCycles default to 2000/8000.
	WarmupCycles, MeasureCycles int
	Seed                        int64
	// DataFlits, when >1, marks a fraction of packets as multi-flit
	// data transfers (0 keeps all packets single-flit control).
	DataFlits    int
	DataFraction float64
	// Workers bounds the sweep's fan-out; 0 or 1 sweeps serially. Each
	// rate seeds its own generator from (Seed, rate), so parallel sweeps
	// return byte-identical points to serial ones.
	Workers int
	// Ctx, when non-nil, cancels the sweep between rates: LoadLatency
	// returns the points measured so far and SaturationRate the last
	// rate examined. Callers that care must check Ctx.Err() afterwards.
	Ctx context.Context
}

// ctx returns the sweep's cancellation context, never nil.
func (c SweepConfig) ctx() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

func (c *SweepConfig) defaults() {
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 2000
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 8000
	}
	if c.Pattern == nil {
		c.Pattern = Uniform{}
	}
}

// sourceState is the open-loop per-node generator with a source queue:
// generated packets wait here when the network exerts back-pressure, so
// saturation shows up as unbounded latency rather than lost packets.
type sourceState struct {
	pending []*Packet
	burstOn bool
}

// LoadLatency sweeps injection rates over fresh networks built by mk
// and returns one point per rate. The sweep stops after the first rate
// that saturates (standard BookSim methodology: latency beyond a large
// multiple of zero-load, or throughput collapse). With cfg.Workers > 1
// the rates are measured concurrently on fresh networks and the result
// is truncated at the first saturated rate, so the returned points are
// byte-identical to a serial sweep.
func LoadLatency(mk func() Network, cfg SweepConfig) []SweepPoint {
	cfg.defaults()
	if cfg.Workers > 1 {
		pts := make([]SweepPoint, len(cfg.Rates))
		if err := par.ForCtx(cfg.ctx(), len(cfg.Rates), cfg.Workers, func(i int) {
			pts[i] = measureRate(mk(), cfg.Rates[i], cfg)
		}); err != nil {
			// Canceled: keep the deterministic measured prefix. Every
			// measured point has AvgLatency > 0 (a delivery takes at least
			// one cycle and saturation reports SaturationLatency), so a
			// zero-valued slot marks the first rate that never ran.
			done := 0
			for done < len(pts) && pts[done].AvgLatency > 0 {
				done++
			}
			pts = pts[:done]
		}
		for i, p := range pts {
			if p.Saturated {
				return pts[:i+1]
			}
		}
		return pts
	}
	var out []SweepPoint
	for _, rate := range cfg.Rates {
		if cfg.ctx().Err() != nil {
			break
		}
		p := measureRate(mk(), rate, cfg)
		out = append(out, p)
		if p.Saturated {
			break
		}
	}
	return out
}

// measureRate runs one injection rate to steady state.
func measureRate(n Network, rate float64, cfg SweepConfig) SweepPoint {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(rate*1e7)))
	nodes := n.Nodes()
	srcs := make([]sourceState, nodes)
	burst, bursty := cfg.Pattern.(Burst)
	var injectedMeasured, generated int64
	satLat := SaturationLatency(n)

	base := n.Stats().Delivered
	baseLat := n.Stats().TotalLatency
	total := cfg.WarmupCycles + cfg.MeasureCycles
	var id int64
	for cyc := 0; cyc < total; cyc++ {
		if cyc == cfg.WarmupCycles {
			base = n.Stats().Delivered
			baseLat = n.Stats().TotalLatency
		}
		now := n.Cycle()
		for s := 0; s < nodes; s++ {
			st := &srcs[s]
			// Generation: Bernoulli at the offered rate; bursty sources
			// concentrate the same offered load into on-periods.
			genRate := rate
			if bursty {
				p := burst.onProb()
				// Two-state Markov chain with mean on-fraction p and
				// geometric dwell times.
				if st.burstOn {
					if rng.Float64() < (1-p)/10 {
						st.burstOn = false
					}
				} else if rng.Float64() < p/10 {
					st.burstOn = true
				}
				if !st.burstOn {
					genRate = 0
				} else {
					genRate = rate / p
				}
			}
			if genRate > 0 && rng.Float64() < genRate {
				pk := &Packet{ID: id, Src: s, Flits: 1, InjectedAt: now}
				id++
				pk.Dst = cfg.Pattern.Dest(s, nodes, rng)
				if cfg.DataFlits > 1 && rng.Float64() < cfg.DataFraction {
					pk.Flits = cfg.DataFlits
				}
				st.pending = append(st.pending, pk)
				generated++
			}
			// Drain the source queue into the network.
			for len(st.pending) > 0 && n.TryInject(st.pending[0]) {
				if cyc >= cfg.WarmupCycles {
					injectedMeasured++
				}
				st.pending = st.pending[1:]
			}
			// A source queue exploding past any reasonable bound is
			// saturation; bail early to keep sweeps fast.
			if len(st.pending) > 512 {
				return SweepPoint{InjectionRate: rate, AvgLatency: satLat, Saturated: true}
			}
		}
		n.Step()
	}
	st := n.Stats()
	delivered := st.Delivered - base
	if delivered == 0 {
		return SweepPoint{InjectionRate: rate, AvgLatency: satLat, Saturated: true}
	}
	avg := float64(st.TotalLatency-baseLat) / float64(delivered)
	sat := avg >= satLat
	// Throughput collapse: deliveries far below the offered load.
	offered := rate * float64(nodes) * float64(cfg.MeasureCycles)
	if offered > 100 && float64(delivered) < 0.6*offered {
		sat = true
	}
	return SweepPoint{InjectionRate: rate, AvgLatency: avg, Saturated: sat}
}

// saturationLadder is the geometric rate grid SaturationRate walks.
func saturationLadder() []float64 {
	var out []float64
	for rate := 0.0005; rate < 0.6; rate *= 1.35 {
		out = append(out, rate)
	}
	return out
}

// SaturationRate estimates the injection rate at which the network
// saturates by walking a geometric rate grid — the "bandwidth limit"
// quoted for Figs 18/21/25/26. With cfg.Workers > 1 the grid is
// measured in worker-sized batches, stopping at the batch containing
// the first saturated rung; every rung seeds independently, so the
// answer matches the serial walk exactly.
func SaturationRate(mk func() Network, cfg SweepConfig) float64 {
	cfg.defaults()
	ladder := saturationLadder()
	if cfg.Workers > 1 {
		pts := make([]SweepPoint, len(ladder))
		for lo := 0; lo < len(ladder); lo += cfg.Workers {
			hi := lo + cfg.Workers
			if hi > len(ladder) {
				hi = len(ladder)
			}
			if err := par.ForCtx(cfg.ctx(), hi-lo, cfg.Workers, func(i int) {
				pts[lo+i] = measureRate(mk(), ladder[lo+i], cfg)
			}); err != nil {
				return ladder[lo]
			}
			for i := lo; i < hi; i++ {
				if pts[i].Saturated {
					return ladder[i]
				}
			}
		}
		return ladder[len(ladder)-1]
	}
	last := 0.0
	for _, rate := range ladder {
		if cfg.ctx().Err() != nil {
			break
		}
		p := measureRate(mk(), rate, cfg)
		if p.Saturated {
			return rate
		}
		last = rate
	}
	return last
}
