package noc

import (
	"testing"

	"cryowire/internal/phys"
)

func factoryTimings() (mesh, bus Timing) {
	m := phys.DefaultMOSFET()
	op := Op77()
	return MeshTiming(op, m, 1), BusTiming(op, m)
}

// DesignNames must list exactly the designs the factory builds — the
// facade's NoCDesignNames reads this list, so drift here breaks the
// public contract.
func TestDesignNamesComplete(t *testing.T) {
	want := []string{"mesh", "torus", "ring", "cmesh", "fbfly", "sharedbus", "cryobus", "cryobus-2way"}
	got := DesignNames()
	if len(got) != len(want) {
		t.Fatalf("DesignNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DesignNames()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// Every advertised name must build a working 64-node network with a
// positive zero-load latency.
func TestNewByNameBuildsEveryDesign(t *testing.T) {
	meshT, busT := factoryTimings()
	for _, name := range DesignNames() {
		n, err := NewByName(name, 64, meshT, busT)
		if err != nil {
			t.Fatalf("NewByName(%q, 64): %v", name, err)
		}
		if n == nil {
			t.Fatalf("NewByName(%q, 64) returned a nil network", name)
		}
		if n.Nodes() != 64 {
			t.Errorf("NewByName(%q, 64).Nodes() = %d", name, n.Nodes())
		}
		if zl := n.ZeroLoadLatency(); zl <= 0 {
			t.Errorf("NewByName(%q, 64).ZeroLoadLatency() = %v, want > 0", name, zl)
		}
	}
}

func TestNewByNameErrors(t *testing.T) {
	meshT, busT := factoryTimings()
	if _, err := NewByName("hypercube", 64, meshT, busT); err == nil {
		t.Error("NewByName accepted an unknown design name")
	}
	for _, nodes := range []int{0, -8} {
		if _, err := NewByName("mesh", nodes, meshT, busT); err == nil {
			t.Errorf("NewByName(mesh, %d) accepted a non-positive node count", nodes)
		}
	}
	// Mesh-family designs need a square (or 4·k²) layout; 60 is neither.
	for _, name := range []string{"mesh", "torus", "cmesh", "fbfly"} {
		if _, err := NewByName(name, 60, meshT, busT); err == nil {
			t.Errorf("NewByName(%q, 60) accepted a non-square node count", name)
		}
	}
}
