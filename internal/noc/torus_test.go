package noc

import (
	"math/rand"
	"testing"
)

func TestTorusWrapRouting(t *testing.T) {
	tr := NewTorus(64, timing300(1))
	// Corner to corner: the torus wraps, so (0,0)→(7,7) is 1+1 hops.
	if h := tr.HopsBetween(0, 63); h != 2 {
		t.Errorf("torus corner-to-corner hops = %d, want 2 (wrap)", h)
	}
	// Maximum distance is side/2 per dimension = 8.
	for a := 0; a < 64; a += 5 {
		for b := 0; b < 64; b += 3 {
			if a == b {
				continue
			}
			if h := tr.HopsBetween(a, b); h > 8 {
				t.Fatalf("torus hops %d→%d = %d, want ≤ 8", a, b, h)
			}
		}
	}
}

func TestTorusBeatsMeshZeroLoad(t *testing.T) {
	tr := NewTorus(64, timing300(1))
	m := NewMesh(64, timing300(1))
	// Wrap links halve average hops; even with the folded 2-pitch links
	// the torus should not be slower at 77K-class wire speed.
	tr77 := NewTorus(64, timing77(1))
	m77 := NewMesh(64, timing77(1))
	if tr77.ZeroLoadLatency() >= m77.ZeroLoadLatency() {
		t.Errorf("77K torus zero-load %v not below mesh %v", tr77.ZeroLoadLatency(), m77.ZeroLoadLatency())
	}
	_ = tr
	_ = m
}

func TestTorusDeliversTraffic(t *testing.T) {
	tr := NewTorus(64, timing300(1))
	rng := rand.New(rand.NewSource(8))
	injected := 0
	var id int64
	for cyc := 0; cyc < 3000; cyc++ {
		if cyc < 1000 {
			for s := 0; s < 64; s++ {
				if rng.Float64() < 0.01 {
					p := &Packet{ID: id, Src: s, Dst: Uniform{}.Dest(s, 64, rng), Flits: 1, InjectedAt: tr.Cycle()}
					id++
					if tr.TryInject(p) {
						injected++
					}
				}
			}
		}
		tr.Step()
	}
	if got := tr.Stats().Delivered; got != int64(injected) {
		t.Errorf("torus delivered %d of %d", got, injected)
	}
}

func TestTornadoPattern(t *testing.T) {
	p := Tornado{}
	// Node (0,0) on an 8×8 grid targets (3,0).
	if d := p.Dest(0, 64, nil); d != 3 {
		t.Errorf("tornado dest of node 0 = %d, want 3", d)
	}
	for src := 0; src < 64; src++ {
		d := p.Dest(src, 64, nil)
		if d == src || d < 0 || d >= 64 {
			t.Fatalf("tornado produced invalid destination %d for %d", d, src)
		}
		// Tornado stays within the row (except the self-remap).
		if d/8 != src/8 && d != (src+1)%64 {
			t.Errorf("tornado left the row: %d → %d", src, d)
		}
	}
}

func TestNeighborPattern(t *testing.T) {
	p := Neighbor{}
	if d := p.Dest(5, 64, nil); d != 6 {
		t.Errorf("neighbor dest of 5 = %d, want 6", d)
	}
	if d := p.Dest(63, 64, nil); d != 0 {
		t.Errorf("neighbor dest of 63 = %d, want 0 (wrap)", d)
	}
}

func TestTornadoHurtsRingMoreThanUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweep is slow")
	}
	cfg := SweepConfig{Seed: 6, WarmupCycles: 800, MeasureCycles: 2500}
	mk := func() Network { return NewRing(16, timing300(1)) }
	cfg.Pattern = Uniform{}
	uni := SaturationRate(mk, cfg)
	cfg.Pattern = Tornado{}
	tor := SaturationRate(mk, cfg)
	if tor > uni {
		t.Errorf("tornado saturation %v should not beat uniform %v on a ring", tor, uni)
	}
}

func TestNewPatternsRegistered(t *testing.T) {
	for _, name := range []string{"tornado", "neighbor"} {
		p, err := PatternByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Errorf("pattern %q name mismatch", name)
		}
	}
}
