package noc

// HybridCryoBus is the 256-core directory-based hybrid of §7.3
// (Fig 26a): four 64-core CryoBus clusters joined by a small global
// mesh of gateway routers. Snooping is given up (all transfers are
// directed), but intra-cluster traffic keeps CryoBus's 1-cycle
// transfers and inter-cluster traffic crosses at most the global mesh.
type HybridCryoBus struct {
	name     string
	clusters []*Bus
	global   *RouterNet
	now      int64
	stats    Stats
	// retry queues for phase transitions that hit back-pressure.
	toGlobal  []*hop2
	toCluster []*hop3
	// phase1 maps in-flight leg packets back to their originals.
	phase1 pendingMap
}

type hop2 struct {
	orig *Packet
	pkt  *Packet
}

type hop3 struct {
	orig *Packet
	pkt  *Packet
}

// clusterSize is the CryoBus scalability unit.
const clusterSize = 64

// gatewayNode is the cluster-local node adjacent to the root hub that
// bridges onto the global mesh.
const gatewayNode = 27 // center-adjacent tile of the 8×8 grid

// NewHybridCryoBus builds the 4-cluster, 256-node hybrid with the
// given bus and mesh timing (normally both 77 K).
func NewHybridCryoBus(busTiming, meshTiming Timing) *HybridCryoBus {
	h := &HybridCryoBus{name: "Hybrid CryoBus-256"}
	for i := 0; i < 4; i++ {
		h.clusters = append(h.clusters, NewCryoBus(clusterSize, busTiming))
	}
	// Global mesh: 2×2 gateway routers, one per cluster, spaced a full
	// cluster die apart (8 tiles).
	g := newRouterNet("global-mesh", 4, 1, meshTiming)
	hopCyc := meshTiming.WireCycles(8)
	link := make([]map[int]int, 4)
	for r := 0; r < 4; r++ {
		link[r] = make(map[int]int)
	}
	add := func(a, b int) {
		link[a][b] = len(g.routers[a].links)
		g.addLink(a, b, hopCyc, 8)
	}
	// 2×2 torus-free mesh: 0-1, 2-3 rows; 0-2, 1-3 columns.
	add(0, 1)
	add(1, 0)
	add(2, 3)
	add(3, 2)
	add(0, 2)
	add(2, 0)
	add(1, 3)
	add(3, 1)
	g.route = func(cur, dst int) int {
		cx, cy := cur%2, cur/2
		dx, dy := dst%2, dst/2
		if dx != cx {
			return link[cur][cy*2+dx]
		}
		if dy != cy {
			return link[cur][dy*2+cx]
		}
		panic("hybrid: route called with cur == dst")
	}
	g.computeZeroLoad()
	h.global = g

	// Phase hand-offs.
	for ci, c := range h.clusters {
		ci := ci
		c.OnDeliver = func(p *Packet, now int64) { h.clusterDelivered(ci, p, now) }
	}
	g.OnDeliver = func(p *Packet, now int64) { h.globalDelivered(p, now) }
	return h
}

// pendingMap is the phase-packet registry: leg packet → original.
type pendingMap map[*Packet]*Packet

func (h *HybridCryoBus) cluster(node int) int { return node / clusterSize }
func (h *HybridCryoBus) local(node int) int   { return node % clusterSize }

// TryInject implements Network.
func (h *HybridCryoBus) TryInject(p *Packet) bool {
	if p.Dst == Broadcast {
		panic("noc: hybrid CryoBus is directory-based; broadcasts unsupported (§7.3)")
	}
	h.ensureMaps()
	ci, cj := h.cluster(p.Src), h.cluster(p.Dst)
	if ci == cj {
		local := &Packet{ID: p.ID, Src: h.local(p.Src), Dst: h.local(p.Dst), Flits: p.Flits, InjectedAt: p.InjectedAt}
		h.phase1[local] = p
		if !h.clusters[ci].TryInject(local) {
			delete(h.phase1, local)
			return false
		}
		return true
	}
	// Inter-cluster: first ride the source cluster bus to the gateway.
	leg := &Packet{ID: p.ID, Src: h.local(p.Src), Dst: gatewayNode, Flits: p.Flits, InjectedAt: p.InjectedAt}
	h.phase1[leg] = p
	if !h.clusters[ci].TryInject(leg) {
		delete(h.phase1, leg)
		return false
	}
	return true
}

func (h *HybridCryoBus) ensureMaps() {
	if h.phase1 == nil {
		h.phase1 = make(pendingMap)
	}
}

// clusterDelivered handles a completed bus leg.
func (h *HybridCryoBus) clusterDelivered(ci int, leg *Packet, now int64) {
	orig := h.phase1[leg]
	delete(h.phase1, leg)
	if orig == nil {
		return // stray; should not happen
	}
	if h.cluster(orig.Dst) == ci && h.local(orig.Dst) == leg.Dst {
		// Final leg complete.
		h.stats.Record(orig, now)
		return
	}
	// Leg 1 complete at the gateway: cross the global mesh.
	g := &Packet{ID: orig.ID, Src: ci, Dst: h.cluster(orig.Dst), Flits: orig.Flits, InjectedAt: orig.InjectedAt}
	h.phase1[g] = orig
	if !h.global.TryInject(g) {
		h.toGlobal = append(h.toGlobal, &hop2{orig: orig, pkt: g})
	}
}

// globalDelivered handles a completed mesh crossing.
func (h *HybridCryoBus) globalDelivered(g *Packet, now int64) {
	orig := h.phase1[g]
	delete(h.phase1, g)
	if orig == nil {
		return
	}
	cj := h.cluster(orig.Dst)
	leg := &Packet{ID: orig.ID, Src: gatewayNode, Dst: h.local(orig.Dst), Flits: orig.Flits, InjectedAt: orig.InjectedAt}
	h.phase1[leg] = orig
	if !h.clusters[cj].TryInject(leg) {
		h.toCluster = append(h.toCluster, &hop3{orig: orig, pkt: leg})
	}
}

// Step implements Network.
func (h *HybridCryoBus) Step() {
	h.ensureMaps()
	// Retry stalled phase transitions first.
	keepG := h.toGlobal[:0]
	for _, e := range h.toGlobal {
		if !h.global.TryInject(e.pkt) {
			keepG = append(keepG, e)
		}
	}
	h.toGlobal = keepG
	keepC := h.toCluster[:0]
	for _, e := range h.toCluster {
		cj := h.cluster(e.orig.Dst)
		if !h.clusters[cj].TryInject(e.pkt) {
			keepC = append(keepC, e)
		}
	}
	h.toCluster = keepC
	for _, c := range h.clusters {
		c.Step()
	}
	h.global.Step()
	h.now++
}

// Name implements Network.
func (h *HybridCryoBus) Name() string { return h.name }

// Nodes implements Network.
func (h *HybridCryoBus) Nodes() int { return 4 * clusterSize }

// Cycle implements Network.
func (h *HybridCryoBus) Cycle() int64 { return h.now }

// Stats implements Network.
func (h *HybridCryoBus) Stats() *Stats { return &h.stats }

// ZeroLoadLatency implements Network: mix of intra-cluster bus latency
// (3/4 of traffic crosses clusters under uniform traffic).
func (h *HybridCryoBus) ZeroLoadLatency() float64 {
	intra := h.clusters[0].ZeroLoadLatency()
	inter := intra + h.global.ZeroLoadLatency() + h.clusters[0].ZeroLoadLatency()
	return 0.25*intra + 0.75*inter
}

var _ Network = (*HybridCryoBus)(nil)
