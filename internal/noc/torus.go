package noc

import "fmt"

// NewTorus builds a 2D folded torus: a mesh with wrap-around links,
// halving the average hop count at the cost of longer (folded) links —
// a useful design-space companion to the Fig 15 topologies.
func NewTorus(nodes int, timing Timing) *RouterNet {
	side := gridSide(nodes)
	if side*side != nodes {
		panic(fmt.Sprintf("noc: torus needs a square node count, got %d", nodes))
	}
	rn := newRouterNet(fmt.Sprintf("Torus-%d", nodes), nodes, 1, timing)
	// Folded-torus layout: physical link length is two tile pitches for
	// every hop (neighbouring nodes are interleaved), which keeps all
	// links equal instead of one huge wrap wire.
	const foldedPitch = 2
	hop := timing.WireCycles(foldedPitch)
	type dirLinks struct{ e, w, n, s int }
	links := make([]dirLinks, nodes)
	for r := 0; r < nodes; r++ {
		x, y := r%side, r/side
		east := y*side + (x+1)%side
		west := y*side + (x+side-1)%side
		north := ((y+1)%side)*side + x
		south := ((y+side-1)%side)*side + x
		links[r].e = len(rn.routers[r].links)
		rn.addLink(r, east, hop, foldedPitch)
		links[r].w = len(rn.routers[r].links)
		rn.addLink(r, west, hop, foldedPitch)
		links[r].n = len(rn.routers[r].links)
		rn.addLink(r, north, hop, foldedPitch)
		links[r].s = len(rn.routers[r].links)
		rn.addLink(r, south, hop, foldedPitch)
	}
	rn.route = func(cur, dst int) int {
		cx, cy := cur%side, cur/side
		dx, dy := dst%side, dst/side
		if cx != dx {
			fwd := (dx - cx + side) % side
			if fwd <= side/2 {
				return links[cur].e
			}
			return links[cur].w
		}
		fwd := (dy - cy + side) % side
		if fwd <= side/2 {
			return links[cur].n
		}
		return links[cur].s
	}
	rn.computeZeroLoad()
	return rn
}
