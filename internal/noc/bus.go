package noc

import (
	"fmt"
	"math"

	"cryowire/internal/fault"
)

// MatrixArbiter is the least-recently-granted arbiter CryoBus uses
// (§5.2.2): a priority matrix where prio[i][j] means i beats j; after a
// grant the winner drops below everyone else.
type MatrixArbiter struct {
	n    int
	prio [][]bool
}

// NewMatrixArbiter builds an arbiter for n requesters.
func NewMatrixArbiter(n int) *MatrixArbiter {
	a := &MatrixArbiter{n: n, prio: make([][]bool, n)}
	for i := range a.prio {
		a.prio[i] = make([]bool, n)
		for j := range a.prio[i] {
			a.prio[i][j] = i < j
		}
	}
	return a
}

// Grant picks the highest-priority requester (or -1) and updates the
// matrix so the winner becomes lowest priority. A request slice of the
// wrong size is a wiring bug and is reported as an error.
func (a *MatrixArbiter) Grant(requests []bool) (int, error) {
	if len(requests) != a.n {
		return -1, fmt.Errorf("noc: arbiter sized %d got %d requests", a.n, len(requests))
	}
	granted := -1
	for i := 0; i < a.n; i++ {
		if !requests[i] {
			continue
		}
		wins := true
		for j := 0; j < a.n; j++ {
			if j != i && requests[j] && !a.prio[i][j] {
				wins = false
				break
			}
		}
		if wins {
			granted = i
			break
		}
	}
	if granted >= 0 {
		for j := 0; j < a.n; j++ {
			if j != granted {
				a.prio[granted][j] = false
				a.prio[j][granted] = true
			}
		}
	}
	return granted, nil
}

// BusLayout describes the physical shape of a bus in 2 mm tile hops.
type BusLayout interface {
	Name() string
	// BroadcastHops is the span a broadcast must cover (the max
	// core-to-core distance).
	BroadcastHops() int
	// ReqHops is the distance from a node to the central arbiter.
	ReqHops(node int) int
	// PathHops is the distance between two nodes along the bus wires —
	// what a dynamic-link point-to-point transfer covers.
	PathHops(a, b int) int
}

// SerpentineLayout is the scaled conventional bidirectional bus of
// Fig 15(d): nodes attach in dual-ported pairs along a snake over the
// tile grid (30-hop span for 64 nodes).
type SerpentineLayout struct {
	NodesN int
	Side   int
}

// NewSerpentine lays out n nodes on a √n grid.
func NewSerpentine(n int) SerpentineLayout {
	return SerpentineLayout{NodesN: n, Side: gridSide(n)}
}

// Name implements BusLayout.
func (s SerpentineLayout) Name() string { return "serpentine" }

// tap returns the bus tap index of a node.
func (s SerpentineLayout) tap(node int) int {
	y := node / s.Side
	x := node % s.Side
	if y%2 == 1 {
		x = s.Side - 1 - x
	}
	return (y*s.Side + x) / 2
}

// BroadcastHops implements BusLayout: nodes/2 − 2 (30 for 64 nodes).
func (s SerpentineLayout) BroadcastHops() int {
	h := s.NodesN/2 - 2
	if h < 1 {
		h = 1
	}
	return h
}

// ReqHops implements BusLayout: distance to the mid-bus arbiter.
func (s SerpentineLayout) ReqHops(node int) int {
	mid := s.BroadcastHops() / 2
	d := s.tap(node) - mid
	if d < 0 {
		d = -d
	}
	return d
}

// PathHops implements BusLayout.
func (s SerpentineLayout) PathHops(a, b int) int {
	d := s.tap(a) - s.tap(b)
	if d < 0 {
		d = -d
	}
	return d
}

// HTreeLayout is CryoBus's H-tree-shaped bus (§5.2.1): a 3-level
// quadtree over the tile grid whose hubs sit at block centers. Leaf to
// root is 6 hops (1+2+3), so the maximum leaf-to-leaf span is 12 hops —
// 2.5× shorter than the serpentine — and every contiguous segment is
// ≤6 mm (the Fig 10 validation length).
type HTreeLayout struct {
	NodesN int
	Side   int
}

// NewHTree lays out n nodes (n must give a square grid).
func NewHTree(n int) HTreeLayout {
	return HTreeLayout{NodesN: n, Side: gridSide(n)}
}

// Name implements BusLayout.
func (h HTreeLayout) Name() string { return "h-tree" }

// levelHops are the per-level climb costs: leaf→L1 hub, L1→L2, L2→root.
var levelHops = [3]int{1, 2, 3}

// BroadcastHops implements BusLayout: up to the root and down — 12.
func (h HTreeLayout) BroadcastHops() int {
	total := 0
	for _, v := range levelHops {
		total += v
	}
	return 2 * total
}

// ReqHops implements BusLayout: every leaf is 6 hops from the central
// arbiter at the root.
func (h HTreeLayout) ReqHops(int) int {
	total := 0
	for _, v := range levelHops {
		total += v
	}
	return total
}

// quad returns the node's block index at quadtree level l (0 = 2×2
// blocks, 1 = 4×4 quadrants).
func (h HTreeLayout) quad(node, l int) int {
	x, y := node%h.Side, node/h.Side
	shift := l + 1
	return (y>>shift)*(h.Side>>shift) + (x >> shift)
}

// PathHops implements BusLayout: climb to the lowest common hub and
// descend.
func (h HTreeLayout) PathHops(a, b int) int {
	if a == b {
		return 0
	}
	if h.quad(a, 0) == h.quad(b, 0) {
		return 2 * levelHops[0]
	}
	if h.quad(a, 1) == h.quad(b, 1) {
		return 2 * (levelHops[0] + levelHops[1])
	}
	return h.BroadcastHops()
}

// BusConfig assembles a complete shared-bus design.
type BusConfig struct {
	Name   string
	Nodes  int
	Layout BusLayout
	Timing Timing
	// ControlCycles is the extra cycle CryoBus spends distributing
	// cross-link switch settings with the grant (§5.2.2, ③).
	ControlCycles int
	// DynamicLinks enables point-to-point transfers over only the links
	// on the source→destination path (data responses); without it every
	// transfer drives the whole bus.
	DynamicLinks bool
	// QueueCap bounds each node's outstanding request queue.
	QueueCap int
	// Injector, when set and active, injects faults: dead layout
	// segments (degrading the broadcast span), corrupted transfers
	// (NACK + backoff retransmit), and lost grant pulses.
	Injector *fault.Injector
	// FaultDomain namespaces this bus's fault pattern so e.g. request
	// and data buses fail independently. Defaults to Name.
	FaultDomain string
}

// pktq is a ring-deque packet FIFO. Node queues used to be plain slices
// advanced with q = q[1:], which leaks capacity and forces a fresh
// backing array every QueueCap injections; the ring reaches the queue
// cap once and never allocates again. pushFront exists for the NACK
// path, which re-heads a corrupted transfer for retransmission.
type pktq struct {
	buf  []*Packet // ring storage; len is always a power of two
	head int
	n    int
}

func (q *pktq) front() *Packet { return q.buf[q.head] }

func (q *pktq) pushBack(p *Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = p
	q.n++
}

func (q *pktq) pushFront(p *Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.head = (q.head - 1) & (len(q.buf) - 1)
	q.buf[q.head] = p
	q.n++
}

func (q *pktq) popFront() *Packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return p
}

func (q *pktq) grow() {
	size := 2 * len(q.buf)
	if size < 4 {
		size = 4
	}
	nb := make([]*Packet, size)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = nb
	q.head = 0
}

// Bus is a cycle-level snooping-bus simulator: requests travel on
// dedicated request wires to the central matrix arbiter; the granted
// node's transfer occupies the shared wires for its serialization time;
// delivery completes when the broadcast (or dynamic-link transfer)
// reaches the far end.
type Bus struct {
	cfg      BusConfig
	arb      *MatrixArbiter
	queues   []pktq
	now      int64
	busFree  int64
	inflight []busInflight
	stats    Stats
	reqs     []bool // scratch
	energy   Energy
	inj      *fault.Injector
	domain   string
	retry    map[*Packet]*retryState
	// OnDeliver, when set, receives delivered packets instead of the
	// internal stats (used by composite networks such as the hybrid).
	OnDeliver func(p *Packet, now int64)
}

type busInflight struct {
	p         *Packet
	deliverAt int64
}

// retryState tracks a NACKed packet waiting out its backoff.
type retryState struct {
	attempts   int
	eligibleAt int64
}

// NewBus builds the bus.
func NewBus(cfg BusConfig) *Bus {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	b := &Bus{
		cfg:    cfg,
		arb:    NewMatrixArbiter(cfg.Nodes),
		queues: make([]pktq, cfg.Nodes),
		reqs:   make([]bool, cfg.Nodes),
	}
	if cfg.Injector != nil {
		b.AttachInjector(cfg.Injector, cfg.FaultDomain)
	}
	return b
}

// AttachInjector arms the bus with a fault scenario: the injector
// decides which layout segments are dead (the layout is rebuilt over
// the surviving topology, degrading broadcast timing), which transfers
// arrive corrupted, and which grant pulses are lost. The domain string
// namespaces this bus's fault pattern (defaults to the bus name). Must
// be called before traffic starts. A nil or inactive injector leaves
// the bus — and its cycle-exact behavior — untouched.
func (b *Bus) AttachInjector(inj *fault.Injector, domain string) {
	if inj == nil || !inj.Config().Active() {
		return
	}
	if domain == "" {
		domain = b.cfg.Name
	}
	b.inj = inj
	b.domain = domain
	b.retry = make(map[*Packet]*retryState)
	switch l := b.cfg.Layout.(type) {
	case HTreeLayout:
		if d := degradeHTreeWith(l, inj, domain); d != nil {
			b.cfg.Layout = d
		}
	case SerpentineLayout:
		if d := degradeSerpentineWith(l, inj, domain); d != nil {
			b.cfg.Layout = d
		}
	}
}

// Layout exposes the (possibly degraded) bus layout.
func (b *Bus) Layout() BusLayout { return b.cfg.Layout }

// Name implements Network.
func (b *Bus) Name() string { return b.cfg.Name }

// Nodes implements Network.
func (b *Bus) Nodes() int { return b.cfg.Nodes }

// Cycle implements Network.
func (b *Bus) Cycle() int64 { return b.now }

// Stats implements Network.
func (b *Bus) Stats() *Stats { return &b.stats }

// Timing exposes the bus clocking.
func (b *Bus) Timing() Timing { return b.cfg.Timing }

// TryInject implements Network.
func (b *Bus) TryInject(p *Packet) bool {
	q := &b.queues[p.Src]
	if q.n >= b.cfg.QueueCap {
		return false
	}
	// InjectedAt is owned by the caller.
	q.pushBack(p)
	return true
}

// transferHops returns the wire span one transaction activates.
func (b *Bus) transferHops(p *Packet) int {
	hops := b.cfg.Layout.BroadcastHops()
	if b.cfg.DynamicLinks && p.Dst != Broadcast {
		hops = b.cfg.Layout.PathHops(p.Src, p.Dst)
		if hops == 0 {
			hops = 1
		}
	}
	return hops
}

// transferCycles returns the bus occupancy of one transaction.
func (b *Bus) transferCycles(p *Packet) int {
	c := b.cfg.Timing.WireCycles(b.transferHops(p))
	flits := p.Flits
	if flits < 1 {
		flits = 1
	}
	return c + flits - 1
}

// grantLatency returns request-wire + arbitration + grant-wire +
// control cycles for a node.
func (b *Bus) grantLatency(node int) int64 {
	req := b.cfg.Timing.WireCycles(b.cfg.Layout.ReqHops(node))
	return int64(req + 1 + req + b.cfg.ControlCycles)
}

// Step implements Network.
func (b *Bus) Step() {
	now := b.now
	// Deliveries.
	keep := b.inflight[:0]
	for _, f := range b.inflight {
		if f.deliverAt <= now {
			if b.OnDeliver != nil {
				b.OnDeliver(f.p, now)
			} else {
				b.stats.Record(f.p, now)
			}
		} else {
			keep = append(keep, f)
		}
	}
	b.inflight = keep
	// Arbitration: one new owner whenever the bus is free. A request is
	// visible at the arbiter after its request-wire flight time (and,
	// for a NACKed packet, after its retransmit backoff has elapsed).
	if b.busFree <= now {
		if b.inj.StallGrant(b.domain, now) {
			// The grant pulse is lost this cycle: requesters keep
			// waiting and re-arbitrate next cycle.
			b.stats.GrantStalls++
			b.now++
			return
		}
		for i := range b.reqs {
			b.reqs[i] = false
			if b.queues[i].n > 0 {
				head := b.queues[i].front()
				reqWire := int64(b.cfg.Timing.WireCycles(b.cfg.Layout.ReqHops(i)))
				if head.InjectedAt+reqWire > now {
					continue
				}
				if rs, ok := b.retry[head]; ok && rs.eligibleAt > now {
					continue
				}
				b.reqs[i] = true
			}
		}
		// reqs is sized to the arbiter by construction, so Grant cannot
		// fail.
		g, _ := b.arb.Grant(b.reqs)
		if g >= 0 {
			p := b.queues[g].popFront()
			tc := int64(b.transferCycles(p))
			flits := p.Flits
			if flits < 1 {
				flits = 1
			}
			b.energy.Arbitrations++
			b.energy.WireMMFlits += float64(b.transferHops(p)) * tileMM * float64(flits)
			// Arbitration and grant/control distribution are pipelined
			// with the previous transfer ("it does not worsen the
			// contention", §5.2.3): the bus is occupied for the transfer
			// time only, while each packet's latency still pays its own
			// grant path.
			grantLat := int64(1+b.cfg.ControlCycles) + int64(b.cfg.Timing.WireCycles(b.cfg.Layout.ReqHops(g)))
			start := now + grantLat
			b.busFree = now + tc
			attempts := 0
			if rs, ok := b.retry[p]; ok {
				attempts = rs.attempts
			}
			if b.inj.CorruptTransfer(b.domain, p.ID, attempts) && attempts < b.inj.MaxRetries() {
				// The transfer arrived corrupted: the receivers NACK it
				// and the source retransmits after an exponential
				// backoff. The corrupted attempt still occupied the bus
				// and drove the wires.
				b.stats.Retransmits++
				b.queues[g].pushFront(p)
				b.retry[p] = &retryState{attempts: attempts + 1, eligibleAt: now + tc + b.inj.Backoff(attempts+1)}
			} else {
				// Clean transfer — or the retry budget is exhausted and
				// the ECC layer is assumed to correct the residue, so
				// the packet is delivered rather than hanging forever.
				delete(b.retry, p)
				b.inflight = append(b.inflight, busInflight{p: p, deliverAt: start + tc})
			}
		}
	}
	b.now++
}

// ZeroLoadLatency implements Network: average over nodes of request +
// arbitration + grant + control + broadcast.
func (b *Bus) ZeroLoadLatency() float64 {
	total := 0.0
	for n := 0; n < b.cfg.Nodes; n++ {
		p := &Packet{Src: n, Dst: Broadcast, Flits: 1}
		total += float64(b.grantLatency(n)) + float64(b.transferCycles(p))
	}
	return total / float64(b.cfg.Nodes)
}

// Breakdown returns the zero-load latency components in cycles for a
// representative (average-distance) node — the Fig 20 decomposition.
func (b *Bus) Breakdown() (request, arbitration, grantAndControl, broadcast float64) {
	var reqSum float64
	for n := 0; n < b.cfg.Nodes; n++ {
		reqSum += float64(b.cfg.Timing.WireCycles(b.cfg.Layout.ReqHops(n)))
	}
	request = reqSum / float64(b.cfg.Nodes)
	arbitration = 1
	grantAndControl = request + float64(b.cfg.ControlCycles)
	broadcast = float64(b.cfg.Timing.WireCycles(b.cfg.Layout.BroadcastHops()))
	return request, arbitration, grantAndControl, broadcast
}

// --- Standard bus designs -------------------------------------------------

// NewSharedBus300 returns the conventional serpentine bus at 300 K.
func NewSharedBus300(nodes int, t Timing) *Bus {
	return NewBus(BusConfig{Name: "300K Shared bus", Nodes: nodes, Layout: NewSerpentine(nodes), Timing: t})
}

// NewSharedBus77 returns the serpentine bus with 77 K wires.
func NewSharedBus77(nodes int, t Timing) *Bus {
	return NewBus(BusConfig{Name: "77K Shared bus", Nodes: nodes, Layout: NewSerpentine(nodes), Timing: t})
}

// NewHTreeBus300 returns the H-tree topology at 300 K (topology-only
// ablation of Fig 20).
func NewHTreeBus300(nodes int, t Timing) *Bus {
	return NewBus(BusConfig{Name: "300K H-tree bus", Nodes: nodes, Layout: NewHTree(nodes), Timing: t, ControlCycles: 1, DynamicLinks: true})
}

// NewCryoBus returns the full CryoBus: H-tree topology, dynamic link
// connection (1 extra control cycle, point-to-point data transfers) on
// 77 K wires.
func NewCryoBus(nodes int, t Timing) *Bus {
	return NewBus(BusConfig{Name: "CryoBus", Nodes: nodes, Layout: NewHTree(nodes), Timing: t, ControlCycles: 1, DynamicLinks: true})
}

// InterleavedBus is k address-interleaved buses (§7.1): transactions
// are striped across buses by address, multiplying bandwidth while
// keeping each bus's snooping protocol intact.
type InterleavedBus struct {
	name  string
	buses []*Bus
	stats Stats
}

// NewInterleavedBus stripes k copies of the given bus design.
func NewInterleavedBus(k int, mk func() *Bus) *InterleavedBus {
	ib := &InterleavedBus{}
	for i := 0; i < k; i++ {
		ib.buses = append(ib.buses, mk())
	}
	ib.name = fmt.Sprintf("%s (%d-way)", ib.buses[0].Name(), k)
	return ib
}

// Name implements Network.
func (ib *InterleavedBus) Name() string { return ib.name }

// Nodes implements Network.
func (ib *InterleavedBus) Nodes() int { return ib.buses[0].Nodes() }

// Cycle implements Network.
func (ib *InterleavedBus) Cycle() int64 { return ib.buses[0].Cycle() }

// Stats implements Network: aggregated over the stripes.
func (ib *InterleavedBus) Stats() *Stats {
	agg := Stats{}
	for _, b := range ib.buses {
		s := b.Stats()
		agg.Delivered += s.Delivered
		agg.TotalLatency += s.TotalLatency
		agg.Retransmits += s.Retransmits
		agg.GrantStalls += s.GrantStalls
		if s.MaxLatency > agg.MaxLatency {
			agg.MaxLatency = s.MaxLatency
		}
	}
	return &agg
}

// TryInject implements Network: the packet's address (ID at this
// abstraction) picks the stripe.
func (ib *InterleavedBus) TryInject(p *Packet) bool {
	idx := int(p.ID) % len(ib.buses)
	if idx < 0 {
		idx = -idx
	}
	return ib.buses[idx].TryInject(p)
}

// Step implements Network.
func (ib *InterleavedBus) Step() {
	for _, b := range ib.buses {
		b.Step()
	}
}

// SetOnDeliver installs a delivery hook on every stripe.
func (ib *InterleavedBus) SetOnDeliver(f func(p *Packet, now int64)) {
	for _, b := range ib.buses {
		b.OnDeliver = f
	}
}

// AttachInjector arms every stripe with the fault scenario, each under
// its own sub-domain so physically distinct stripes fail independently.
func (ib *InterleavedBus) AttachInjector(inj *fault.Injector, domain string) {
	if domain == "" {
		domain = ib.name
	}
	for i, b := range ib.buses {
		b.AttachInjector(inj, fmt.Sprintf("%s/stripe%d", domain, i))
	}
}

// Stripes exposes the per-stripe buses (read-only use).
func (ib *InterleavedBus) Stripes() []*Bus { return ib.buses }

// ZeroLoadLatency implements Network (same as a single stripe).
func (ib *InterleavedBus) ZeroLoadLatency() float64 {
	return ib.buses[0].ZeroLoadLatency()
}

// saturated is the latency multiple of zero-load beyond which a sweep
// declares the network saturated.
const saturationFactor = 25.0

// SaturationLatency returns the sweep cut-off for a network.
func SaturationLatency(n Network) float64 {
	z := n.ZeroLoadLatency()
	if z < 1 {
		z = 1
	}
	return math.Max(50, saturationFactor*z)
}
