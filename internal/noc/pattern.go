package noc

import (
	"fmt"
	"math/rand"
)

// Pattern generates destinations for synthetic traffic (§5.1, §7.2).
type Pattern interface {
	Name() string
	// Dest picks the destination for a packet injected at src.
	Dest(src, nodes int, rng *rand.Rand) int
}

// Uniform is uniform-random traffic — the pattern most favorable to
// router-based NoCs (§7.2).
type Uniform struct{}

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (Uniform) Dest(src, nodes int, rng *rand.Rand) int {
	d := rng.Intn(nodes - 1)
	if d >= src {
		d++
	}
	return d
}

// Transpose sends (x,y) → (y,x) on the square grid.
type Transpose struct{}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (Transpose) Dest(src, nodes int, _ *rand.Rand) int {
	side := gridSide(nodes)
	x, y := src%side, src/side
	d := x*side + y
	if d == src {
		d = (src + nodes/2) % nodes
	}
	return d
}

// BitReverse sends node i to the bit-reversal of i.
type BitReverse struct{}

// Name implements Pattern.
func (BitReverse) Name() string { return "bitreverse" }

// Dest implements Pattern.
func (BitReverse) Dest(src, nodes int, _ *rand.Rand) int {
	bits := 0
	for 1<<bits < nodes {
		bits++
	}
	d := 0
	for i := 0; i < bits; i++ {
		if src&(1<<i) != 0 {
			d |= 1 << (bits - 1 - i)
		}
	}
	if d == src {
		d = (src + nodes/2) % nodes
	}
	return d % nodes
}

// Hotspot sends a fraction of traffic to a small set of hot nodes and
// the rest uniformly.
type Hotspot struct {
	// HotFraction of packets target a hot node (default 0.2 when zero).
	HotFraction float64
	// Hot lists the hot nodes (defaults to node 0).
	Hot []int
}

// Name implements Pattern.
func (Hotspot) Name() string { return "hotspot" }

// Dest implements Pattern.
func (h Hotspot) Dest(src, nodes int, rng *rand.Rand) int {
	frac := h.HotFraction
	if frac == 0 {
		frac = 0.2
	}
	hot := h.Hot
	if len(hot) == 0 {
		hot = []int{0}
	}
	if rng.Float64() < frac {
		d := hot[rng.Intn(len(hot))]
		if d != src {
			return d
		}
	}
	return Uniform{}.Dest(src, nodes, rng)
}

// Burst is on/off (bursty) uniform traffic: sources alternate between
// an active state injecting at the full offered rate and a quiet state.
type Burst struct {
	// OnProb is the steady-state fraction of time a source is bursting
	// (default 0.3); burstiness raises instantaneous load by 1/OnProb.
	OnProb float64
}

// Name implements Pattern.
func (Burst) Name() string { return "burst" }

// Dest implements Pattern.
func (Burst) Dest(src, nodes int, rng *rand.Rand) int {
	return Uniform{}.Dest(src, nodes, rng)
}

// onProb returns the configured or default burst duty cycle.
func (b Burst) onProb() float64 {
	if b.OnProb <= 0 || b.OnProb > 1 {
		return 0.3
	}
	return b.OnProb
}

// Tornado sends each node halfway around its row — the classic
// adversarial pattern for rings and tori.
type Tornado struct{}

// Name implements Pattern.
func (Tornado) Name() string { return "tornado" }

// Dest implements Pattern.
func (Tornado) Dest(src, nodes int, _ *rand.Rand) int {
	side := gridSide(nodes)
	x, y := src%side, src/side
	d := y*side + (x+side/2-1)%side
	if d == src {
		d = (src + 1) % nodes
	}
	return d
}

// Neighbor sends to the next node — the friendliest possible pattern,
// the bandwidth upper bound for mesh-class networks.
type Neighbor struct{}

// Name implements Pattern.
func (Neighbor) Name() string { return "neighbor" }

// Dest implements Pattern.
func (Neighbor) Dest(src, nodes int, _ *rand.Rand) int {
	return (src + 1) % nodes
}

// gridSide returns the square-grid side for n nodes.
func gridSide(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// PatternByName looks up a pattern for the CLI and experiments.
func PatternByName(name string) (Pattern, error) {
	switch name {
	case "uniform":
		return Uniform{}, nil
	case "transpose":
		return Transpose{}, nil
	case "bitreverse":
		return BitReverse{}, nil
	case "hotspot":
		return Hotspot{}, nil
	case "burst":
		return Burst{}, nil
	case "tornado":
		return Tornado{}, nil
	case "neighbor":
		return Neighbor{}, nil
	default:
		return nil, fmt.Errorf("noc: unknown traffic pattern %q", name)
	}
}
