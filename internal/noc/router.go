package noc

import (
	"fmt"
)

// arrival is a queued packet with the cycle it becomes visible to the
// router (covers router pipeline + link traversal).
type arrival struct {
	p       *Packet
	readyAt int64
}

// rlink is a directed router-to-router link.
type rlink struct {
	to         int // destination router
	wireCycles int // link traversal time
	tileHops   int // physical length in tile hops (energy accounting)
	dstPort    int // input port index at the destination router
}

// port is an input buffer (per incoming link, plus one injection port).
// The queue is a ring deque rather than an appended-and-resliced slice:
// occupancy is credit-bounded by inCap, so after the ring grows to the
// credit ceiling once, enqueue/dequeue never allocate again — this was
// the NoC's dominant steady-state allocation site. reserved counts
// in-flight packets that have been granted the buffer but not yet
// arrived — the credit mechanism.
type port struct {
	buf      []arrival // ring storage; len is always a power of two
	head     int       // index of the queue front
	n        int       // live entries
	reserved int
}

func (pt *port) occupancy() int { return pt.n + pt.reserved }

// front returns the queue head; valid only when n > 0.
func (pt *port) front() *arrival { return &pt.buf[pt.head] }

func (pt *port) push(a arrival) {
	if pt.n == len(pt.buf) {
		pt.grow()
	}
	pt.buf[(pt.head+pt.n)&(len(pt.buf)-1)] = a
	pt.n++
}

func (pt *port) pop() arrival {
	a := pt.buf[pt.head]
	pt.buf[pt.head] = arrival{} // drop the packet reference
	pt.head = (pt.head + 1) & (len(pt.buf) - 1)
	pt.n--
	return a
}

// grow doubles the ring (minimum 4 slots), unwrapping entries to the
// front so the mask arithmetic stays valid.
func (pt *port) grow() {
	size := 2 * len(pt.buf)
	if size < 4 {
		size = 4
	}
	nb := make([]arrival, size)
	for i := 0; i < pt.n; i++ {
		nb[i] = pt.buf[(pt.head+i)&(len(pt.buf)-1)]
	}
	pt.buf = nb
	pt.head = 0
}

// router is one node of a router-based network.
type router struct {
	links   []rlink
	ports   []port
	rr      []int // round-robin arbiter state per output link
	outBusy []int64
}

// RouterNet is a generic input-queued, credit-flow-controlled,
// packet-level router network. Mesh, CMesh and Flattened Butterfly are
// instances with different link sets and routing functions.
type RouterNet struct {
	name    string
	nodes   int
	conc    int // nodes concentrated per router
	routers []router
	// route returns the output link index at router cur toward router
	// dst (cur != dst).
	route  func(cur, dst int) int
	timing Timing
	now    int64
	stats  Stats
	inCap  int
	// zeroLoad caches the analytic zero-load latency.
	zeroLoad float64
	// OnDeliver, when set, receives delivered packets instead of the
	// internal stats (used by composite networks such as the hybrid).
	OnDeliver func(p *Packet, now int64)
	energy    Energy
}

// deliver routes a completed packet to the hook or the stats.
func (rn *RouterNet) deliver(p *Packet, now int64) {
	if rn.OnDeliver != nil {
		rn.OnDeliver(p, now)
		return
	}
	rn.stats.Record(p, now)
}

// Name implements Network.
func (rn *RouterNet) Name() string { return rn.name }

// Nodes implements Network.
func (rn *RouterNet) Nodes() int { return rn.nodes }

// Cycle implements Network.
func (rn *RouterNet) Cycle() int64 { return rn.now }

// Stats implements Network.
func (rn *RouterNet) Stats() *Stats { return &rn.stats }

// Timing exposes the network clocking.
func (rn *RouterNet) Timing() Timing { return rn.timing }

// nodeRouter maps a node to its router.
func (rn *RouterNet) nodeRouter(node int) int { return node / rn.conc }

// addLink wires a directed link of the given physical length and
// allocates the input port at the destination.
func (rn *RouterNet) addLink(from, to, wireCycles, tileHops int) {
	dst := &rn.routers[to]
	dst.ports = append(dst.ports, port{})
	src := &rn.routers[from]
	src.links = append(src.links, rlink{to: to, wireCycles: wireCycles, tileHops: tileHops, dstPort: len(dst.ports) - 1})
	src.rr = append(src.rr, 0)
	src.outBusy = append(src.outBusy, 0)
}

// TryInject implements Network.
func (rn *RouterNet) TryInject(p *Packet) bool {
	if p.Dst == Broadcast {
		panic("noc: router-based networks carry no broadcasts (directory protocol); use a bus")
	}
	r := &rn.routers[rn.nodeRouter(p.Src)]
	inj := &r.ports[0]
	if inj.occupancy() >= rn.inCap {
		return false
	}
	// InjectedAt is owned by the caller (it may predate this cycle when
	// the packet waited in a source queue).
	inj.push(arrival{p: p, readyAt: rn.now})
	return true
}

// Step implements Network: one cycle of routing, switch arbitration and
// link traversal across all routers.
func (rn *RouterNet) Step() {
	now := rn.now
	for ri := range rn.routers {
		r := &rn.routers[ri]
		// Ejection first: deliver any head packet destined here. The
		// ejection port is modeled with infinite sink bandwidth per
		// router cycle for each input port.
		for pi := range r.ports {
			pt := &r.ports[pi]
			for pt.n > 0 && pt.front().readyAt <= now && rn.nodeRouter(pt.front().p.Dst) == ri {
				rn.deliver(pt.front().p, now)
				pt.pop()
			}
		}
		// Switch allocation: one grant per output link per cycle.
		for li := range r.links {
			if r.outBusy[li] > now {
				continue
			}
			lnk := r.links[li]
			dst := &rn.routers[lnk.to]
			dpt := &dst.ports[lnk.dstPort]
			if dpt.occupancy() >= rn.inCap {
				continue // no credit downstream
			}
			// Round-robin over input ports for fairness.
			n := len(r.ports)
			granted := -1
			for k := 0; k < n; k++ {
				pi := (r.rr[li] + k) % n
				pt := &r.ports[pi]
				if pt.n == 0 || pt.front().readyAt > now {
					continue
				}
				p := pt.front().p
				if rn.nodeRouter(p.Dst) == ri {
					continue // ejection handles it
				}
				if rn.route(ri, rn.nodeRouter(p.Dst)) != li {
					continue
				}
				granted = pi
				break
			}
			if granted < 0 {
				continue
			}
			pt := &r.ports[granted]
			a := pt.pop()
			r.rr[li] = (granted + 1) % n
			flits := a.p.Flits
			if flits < 1 {
				flits = 1
			}
			r.outBusy[li] = now + int64(flits)
			rn.energy.RouterTraversals++
			rn.energy.BufferWrites++
			rn.energy.WireMMFlits += float64(lnk.tileHops) * tileMM * float64(flits)
			// The packet becomes visible downstream after the router
			// pipeline and the wire flight time; the buffer slot is
			// held from the send (conservative credit accounting).
			lat := int64(rn.timing.RouterCycles + lnk.wireCycles)
			if lat < 1 {
				lat = 1
			}
			dpt.push(arrival{p: a.p, readyAt: now + lat})
		}
	}
	rn.now++
}

// ZeroLoadLatency implements Network: the all-pairs average of
// contention-free path latency (router pipeline + wire cycles per hop),
// including the final ejection cycle.
func (rn *RouterNet) ZeroLoadLatency() float64 {
	return rn.zeroLoad
}

func (rn *RouterNet) computeZeroLoad() {
	total := 0.0
	pairs := 0
	nr := len(rn.routers)
	for s := 0; s < nr; s++ {
		for d := 0; d < nr; d++ {
			if s == d {
				continue
			}
			cyc := 0
			cur := s
			for cur != d {
				li := rn.route(cur, d)
				lnk := rn.routers[cur].links[li]
				c := rn.timing.RouterCycles + lnk.wireCycles
				if c < 1 {
					c = 1
				}
				cyc += c
				cur = lnk.to
			}
			total += float64(cyc + 1) // +1 ejection
			pairs++
		}
	}
	if pairs > 0 {
		rn.zeroLoad = total / float64(pairs)
	}
}

// HopsBetween returns the router-hop count between two nodes (for
// tests and topology diagnostics).
func (rn *RouterNet) HopsBetween(a, b int) int {
	cur, d := rn.nodeRouter(a), rn.nodeRouter(b)
	hops := 0
	for cur != d {
		lnk := rn.routers[cur].links[rn.route(cur, d)]
		cur = lnk.to
		hops++
		if hops > len(rn.routers) {
			panic(fmt.Sprintf("noc: routing loop in %s between %d and %d", rn.name, a, b))
		}
	}
	return hops
}

// defaultInputCap is the per-port buffering: 4 VCs × 3 flit-buffers as
// in the Table 4 router configuration, at packet granularity.
const defaultInputCap = 12

// newRouterNet allocates the shell; callers add links and set route.
func newRouterNet(name string, nodes, conc int, timing Timing) *RouterNet {
	nr := nodes / conc
	rn := &RouterNet{
		name:   name,
		nodes:  nodes,
		conc:   conc,
		timing: timing,
		inCap:  defaultInputCap,
	}
	rn.routers = make([]router, nr)
	for i := range rn.routers {
		// Port 0 is the injection port (shared by concentrated nodes).
		rn.routers[i].ports = append(rn.routers[i].ports, port{})
	}
	return rn
}
