package noc

import (
	"fmt"

	"cryowire/internal/fault"
)

// This file implements CryoBus graceful degradation: when H-tree
// segments (or serpentine chain segments) are dead, the bus does not
// panic or silently keep its healthy 1-cycle-broadcast timing — it
// recomputes every request/grant/broadcast distance over the surviving
// topology. A dead segment is bypassed on the chip's ordinary
// neighbouring tile wires (the maintenance detour), so a span of h
// hops degrades to 2·h+2 hops: connectivity survives, the 1-cycle
// broadcast does not. The degraded bus therefore reports honest
// multi-cycle latencies instead of hanging or lying.

// detourHops is the bypass cost of a dead segment of length h tile
// hops: the signal is re-routed around the failed wire over the
// neighbouring tiles' spare wiring, roughly doubling the distance plus
// the two extra turns onto and off the detour.
func detourHops(h int) int { return 2*h + 2 }

// HTreeSegment identifies one physical segment of the H-tree.
type HTreeSegment struct {
	// Level is the climb level: 0 = leaf→L1 hub, 1 = L1→L2 hub,
	// 2 = L2 hub→root.
	Level int
	// Index is the block index at that level (node index at level 0,
	// 2×2-block index at level 1, quadrant index at level 2).
	Index int
}

// DegradedHTree is an H-tree layout with a set of dead segments. It
// satisfies BusLayout with the degraded distances.
type DegradedHTree struct {
	base HTreeLayout
	// upCost[n] is the n-th leaf's total climb cost to the root over
	// the surviving topology.
	upCost []int
	// segCost[l][i] is the cost of the level-l segment of block i.
	segCost [3][]int
	failed  []HTreeSegment
	maxUp   int
}

// DegradeHTree applies the given dead segments to an H-tree layout.
// Unknown (out-of-range) segments are rejected.
func DegradeHTree(base HTreeLayout, failed []HTreeSegment) (*DegradedHTree, error) {
	d := &DegradedHTree{base: base, failed: append([]HTreeSegment(nil), failed...)}
	counts := [3]int{base.NodesN, blockCount(base, 0), blockCount(base, 1)}
	for l := 0; l < 3; l++ {
		d.segCost[l] = make([]int, counts[l])
		for i := range d.segCost[l] {
			d.segCost[l][i] = levelHops[l]
		}
	}
	for _, s := range failed {
		if s.Level < 0 || s.Level > 2 || s.Index < 0 || s.Index >= counts[s.Level] {
			return nil, fmt.Errorf("noc: no H-tree segment at level %d index %d", s.Level, s.Index)
		}
		d.segCost[s.Level][s.Index] = detourHops(levelHops[s.Level])
	}
	d.upCost = make([]int, base.NodesN)
	for n := range d.upCost {
		c := d.segCost[0][n] + d.segCost[1][base.quad(n, 0)] + d.segCost[2][base.quad(n, 1)]
		d.upCost[n] = c
		if c > d.maxUp {
			d.maxUp = c
		}
	}
	return d, nil
}

// blockCount returns the number of blocks at quadtree level l.
func blockCount(h HTreeLayout, l int) int {
	shift := l + 1
	side := h.Side >> shift
	if side < 1 {
		side = 1
	}
	return side * side
}

// degradeHTreeWith draws the dead-segment set from the injector.
// Returns nil when every segment survived (keep the healthy layout —
// and its bit-for-bit-identical timing).
func degradeHTreeWith(base HTreeLayout, inj *fault.Injector, domain string) *DegradedHTree {
	var failed []HTreeSegment
	counts := [3]int{base.NodesN, blockCount(base, 0), blockCount(base, 1)}
	for l := 0; l < 3; l++ {
		for i := 0; i < counts[l]; i++ {
			if inj.LinkDown(fmt.Sprintf("%s/htree-l%d", domain, l), i) {
				failed = append(failed, HTreeSegment{Level: l, Index: i})
			}
		}
	}
	if len(failed) == 0 {
		return nil
	}
	// Indices are in range by construction, so DegradeHTree cannot fail.
	d, _ := DegradeHTree(base, failed)
	return d
}

// Name implements BusLayout.
func (d *DegradedHTree) Name() string {
	return fmt.Sprintf("h-tree (%d dead segments)", len(d.failed))
}

// FailedSegments returns the dead-segment set.
func (d *DegradedHTree) FailedSegments() []HTreeSegment {
	return append([]HTreeSegment(nil), d.failed...)
}

// BroadcastHops implements BusLayout: the worst source climbs to the
// root and the wavefront descends to the worst leaf, both over the
// surviving topology. Healthy this is 2·6 = 12.
func (d *DegradedHTree) BroadcastHops() int { return 2 * d.maxUp }

// ReqHops implements BusLayout: the leaf's surviving-path distance to
// the central arbiter at the root.
func (d *DegradedHTree) ReqHops(node int) int { return d.upCost[node] }

// PathHops implements BusLayout: climb to the lowest common hub and
// descend, each leg over its surviving segments.
func (d *DegradedHTree) PathHops(a, b int) int {
	if a == b {
		return 0
	}
	h := d.base
	if h.quad(a, 0) == h.quad(b, 0) {
		return d.segCost[0][a] + d.segCost[0][b]
	}
	if h.quad(a, 1) == h.quad(b, 1) {
		return d.segCost[0][a] + d.segCost[1][h.quad(a, 0)] +
			d.segCost[0][b] + d.segCost[1][h.quad(b, 0)]
	}
	return d.upCost[a] + d.upCost[b]
}

// DegradedSerpentine is the serpentine bus with dead chain segments:
// every path crossing a dead inter-tap segment pays the detour
// surcharge on top of the healthy distance.
type DegradedSerpentine struct {
	base SerpentineLayout
	// failedAt lists the dead segment positions (segment i spans tap i
	// to tap i+1), sorted ascending.
	failedAt []int
	// surcharge is the extra cost a path pays per dead segment it
	// crosses.
	surcharge int
}

// degradeSerpentineWith draws dead chain segments from the injector;
// nil when the chain is intact.
func degradeSerpentineWith(base SerpentineLayout, inj *fault.Injector, domain string) *DegradedSerpentine {
	maxTap := base.NodesN/2 - 1
	var failed []int
	for i := 0; i < maxTap; i++ {
		if inj.LinkDown(domain+"/serpentine", i) {
			failed = append(failed, i)
		}
	}
	if len(failed) == 0 {
		return nil
	}
	return &DegradedSerpentine{base: base, failedAt: failed, surcharge: detourHops(1) - 1}
}

// Name implements BusLayout.
func (d *DegradedSerpentine) Name() string {
	return fmt.Sprintf("serpentine (%d dead segments)", len(d.failedAt))
}

// deadBetween counts dead segments strictly inside [lo, hi).
func (d *DegradedSerpentine) deadBetween(lo, hi int) int {
	if lo > hi {
		lo, hi = hi, lo
	}
	n := 0
	for _, f := range d.failedAt {
		if f >= lo && f < hi {
			n++
		}
	}
	return n
}

// BroadcastHops implements BusLayout: the healthy span plus a detour
// surcharge per dead segment anywhere on the chain (a broadcast drives
// the whole chain).
func (d *DegradedSerpentine) BroadcastHops() int {
	return d.base.BroadcastHops() + d.surcharge*len(d.failedAt)
}

// ReqHops implements BusLayout: healthy distance to the mid-chain
// arbiter plus detours crossed en route.
func (d *DegradedSerpentine) ReqHops(node int) int {
	mid := d.base.BroadcastHops() / 2
	tap := d.base.tap(node)
	h := tap - mid
	if h < 0 {
		h = -h
	}
	return h + d.surcharge*d.deadBetween(tap, mid)
}

// PathHops implements BusLayout.
func (d *DegradedSerpentine) PathHops(a, b int) int {
	ta, tb := d.base.tap(a), d.base.tap(b)
	h := ta - tb
	if h < 0 {
		h = -h
	}
	return h + d.surcharge*d.deadBetween(ta, tb)
}

var (
	_ BusLayout = (*DegradedHTree)(nil)
	_ BusLayout = (*DegradedSerpentine)(nil)
)
