// Package buildinfo reports what this binary was built from, using
// only the metadata the Go toolchain already embeds
// (debug.ReadBuildInfo) — no ldflags stamping, no extra build steps.
// The CLI's -version flag and the server's /healthz document the same
// values, so "which build is running?" has one answer everywhere.
package buildinfo

import "runtime/debug"

// Version returns the module version of the main module: a tag for
// released builds, a pseudo-version for module-mode builds in between,
// and "(devel)" for plain `go build` trees. "unknown" means the binary
// carries no build info at all (stripped, or built outside modules).
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok || bi.Main.Version == "" {
		return "unknown"
	}
	return bi.Main.Version
}

// GoVersion returns the Go toolchain that built the binary.
func GoVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	return bi.GoVersion
}

// Revision returns the VCS revision the binary was built from, with a
// "+dirty" suffix for modified trees; empty when the build carries no
// VCS stamp (e.g. `go build` outside a repository or with -buildvcs=off).
func Revision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "+dirty"
			}
		}
	}
	return rev + modified
}
