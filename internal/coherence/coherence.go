// Package coherence implements the two cache-coherence protocols of
// Table 4: a directory-based MESI protocol (used by the Mesh designs,
// with the L3 slices keeping directory state for their address range)
// and a snooping MESI protocol (used by CryoBus). Given a memory access
// it returns the network message sequence ("legs") the protocol
// generates, which the full-system simulator turns into real packets on
// the cycle-level NoC.
package coherence

import (
	"fmt"
	"math/bits"
)

// State is a MESI line state.
type State int

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// LegKind classifies one message of a transaction.
type LegKind int

// Message kinds.
const (
	// Request is a control message to the home node (directory) or a
	// broadcast (snoop).
	Request LegKind = iota
	// Forward is a directory-to-owner intervention.
	Forward
	// Data carries a cache line.
	Data
	// Invalidate is a directory-to-sharer invalidation (acks are
	// folded into the same leg's round trip).
	Invalidate
)

// Leg is one network message of a coherence transaction. To == -1
// denotes a broadcast.
type Leg struct {
	From, To int
	Kind     LegKind
}

// Transaction is the ordered message sequence a protocol produced,
// plus whether DRAM is accessed at the home node (L3 miss) and whether
// the L3 array is accessed.
type Transaction struct {
	Legs     []Leg
	L3Access bool
	DRAM     bool
	// Invalidations is the parallel fan-out stage of a directory write
	// to a shared line: one message per sharer, all of which must be
	// delivered (acks collected) before the data leg may proceed. The
	// fan-out is what makes widely-shared lines (locks, barrier flags)
	// pathological on directory protocols; a snooping broadcast
	// invalidates everyone for free.
	Invalidations []Leg
	// CacheToCache reports that the data came from a remote L2, not
	// the L3/DRAM (the fast path snooping gives barrier-heavy code).
	CacheToCache bool
}

// reset clears the transaction for reuse, keeping the slice capacity so
// a recycled Transaction appends without allocating.
func (tx *Transaction) reset() {
	tx.Legs = tx.Legs[:0]
	tx.Invalidations = tx.Invalidations[:0]
	tx.L3Access = false
	tx.DRAM = false
	tx.CacheToCache = false
}

// line is the tracked global state of one cache line. Sharers are a
// bitset so iteration is deterministic (simulation reproducibility).
type line struct {
	state   State
	owner   int
	sharers bitset
}

// bitset tracks up to 256 sharer cores.
type bitset [4]uint64

func (b *bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b *bitset) clear()         { *b = bitset{} }
func (b *bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// count returns the number of set bits.
func (b *bitset) count() int {
	n := 0
	for _, w := range b {
		for w != 0 {
			w &= w - 1
			n++
		}
	}
	return n
}

func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }

// Directory is the home-node-based MESI protocol engine. One Directory
// instance tracks all lines; the home node of a line is supplied by the
// caller (address interleaving across L3 slices).
type Directory struct {
	lines    map[uint64]*line
	order    []uint64 // FIFO eviction order (deterministic)
	capLines int
}

// NewDirectory builds a directory bounded to about capLines tracked
// lines (older lines are evicted silently, mimicking finite L3/
// directory capacity).
func NewDirectory(capLines int) *Directory {
	if capLines <= 0 {
		capLines = 1 << 16
	}
	return &Directory{lines: make(map[uint64]*line), capLines: capLines}
}

// get fetches or creates the line entry. At capacity the oldest line is
// evicted and its entry recycled, so a full directory churns addresses
// without allocating.
func (d *Directory) get(addr uint64) *line {
	l, ok := d.lines[addr]
	if !ok {
		for len(d.lines) >= d.capLines && len(d.order) > 0 {
			victim := d.order[0]
			d.order = d.order[1:]
			l = d.lines[victim]
			delete(d.lines, victim)
		}
		if l == nil {
			l = &line{}
		}
		*l = line{state: Invalid, owner: -1}
		d.lines[addr] = l
		d.order = append(d.order, addr)
	}
	return l
}

// State reports the tracked state of addr (Invalid if untracked).
func (d *Directory) State(addr uint64) (State, int, int) {
	l, ok := d.lines[addr]
	if !ok {
		return Invalid, -1, 0
	}
	return l.state, l.owner, l.sharers.count()
}

// Access performs a read (write=false) or write (write=true) by core
// against the line whose L3 home slice is home, returning the message
// sequence. l3Hit tells the protocol whether the home L3 slice holds
// the line when no cache owns it.
func (d *Directory) Access(addr uint64, core, home int, write, l3Hit bool) Transaction {
	var tx Transaction
	d.AccessInto(&tx, addr, core, home, write, l3Hit)
	return tx
}

// AccessInto is Access writing into a caller-owned Transaction: the
// transaction is reset and its slices reused, so a caller that recycles
// Transactions (the simulator's txn pool) generates no garbage per
// access. The produced sequence is identical to Access.
func (d *Directory) AccessInto(tx *Transaction, addr uint64, core, home int, write, l3Hit bool) {
	l := d.get(addr)
	tx.reset()
	req := Leg{From: core, To: home, Kind: Request}
	tx.Legs = append(tx.Legs, req)
	switch l.state {
	case Invalid:
		tx.L3Access = true
		tx.DRAM = !l3Hit
		tx.Legs = append(tx.Legs, Leg{From: home, To: core, Kind: Data})
		if write {
			l.state = Modified
			l.owner = core
		} else {
			l.state = Exclusive
			l.owner = core
		}
	case Exclusive, Modified:
		if l.owner == core {
			// Silent upgrade/hit at the owner — still a directory call
			// because the simulator only consults us on L2 misses; treat
			// as L3-refresh.
			tx.L3Access = true
			tx.Legs = append(tx.Legs, Leg{From: home, To: core, Kind: Data})
			if write {
				l.state = Modified
			}
			break
		}
		// 3-hop: forward to owner, owner supplies the data.
		tx.CacheToCache = true
		tx.Legs = append(tx.Legs,
			Leg{From: home, To: l.owner, Kind: Forward},
			Leg{From: l.owner, To: core, Kind: Data},
		)
		if write {
			l.sharers.clear()
			l.state = Modified
			l.owner = core
		} else {
			l.sharers.set(l.owner)
			l.sharers.set(core)
			l.state = Shared
			l.owner = -1
		}
	case Shared:
		if write {
			// Invalidate every sharer; the requester's data waits for
			// all acks. Iterated inline (ascending, like bitset.each) so
			// the hot path carries no escaping closure.
			for wi, w := range l.sharers {
				for w != 0 {
					sh := wi*64 + trailingZeros(w)
					w &= w - 1
					if sh != core {
						tx.Invalidations = append(tx.Invalidations, Leg{From: home, To: sh, Kind: Invalidate})
					}
				}
			}
			tx.L3Access = true
			tx.Legs = append(tx.Legs, Leg{From: home, To: core, Kind: Data})
			l.sharers.clear()
			l.state = Modified
			l.owner = core
		} else {
			tx.L3Access = true
			tx.Legs = append(tx.Legs, Leg{From: home, To: core, Kind: Data})
			l.sharers.set(core)
		}
	}
}

// CheckInvariants verifies the MESI global invariants over all tracked
// lines; it returns the first violation found.
func (d *Directory) CheckInvariants() error {
	for addr, l := range d.lines {
		switch l.state {
		case Modified, Exclusive:
			if l.owner < 0 {
				return fmt.Errorf("coherence: line %#x in %v without owner", addr, l.state)
			}
			if l.sharers.count() != 0 {
				return fmt.Errorf("coherence: line %#x in %v with %d sharers", addr, l.state, l.sharers.count())
			}
		case Shared:
			if l.owner != -1 {
				return fmt.Errorf("coherence: line %#x Shared with owner %d", addr, l.owner)
			}
			if l.sharers.count() == 0 {
				return fmt.Errorf("coherence: line %#x Shared with no sharers", addr)
			}
		}
	}
	return nil
}

// Snoop is the broadcast-based MESI engine for the CryoBus designs:
// every L2 miss broadcasts on the bus; the owner (or the home L3
// slice) answers with a directed data transfer that CryoBus's dynamic
// link connection routes point-to-point (§5.2.3).
type Snoop struct {
	lines    map[uint64]*line
	order    []uint64
	capLines int
}

// NewSnoop builds the snooping engine.
func NewSnoop(capLines int) *Snoop {
	if capLines <= 0 {
		capLines = 1 << 16
	}
	return &Snoop{lines: make(map[uint64]*line), capLines: capLines}
}

func (s *Snoop) get(addr uint64) *line {
	l, ok := s.lines[addr]
	if !ok {
		for len(s.lines) >= s.capLines && len(s.order) > 0 {
			victim := s.order[0]
			s.order = s.order[1:]
			l = s.lines[victim]
			delete(s.lines, victim)
		}
		if l == nil {
			l = &line{}
		}
		*l = line{state: Invalid, owner: -1}
		s.lines[addr] = l
		s.order = append(s.order, addr)
	}
	return l
}

// Access performs the snooping transaction. The broadcast request is
// one bus transaction; the data reply is a directed transfer.
func (s *Snoop) Access(addr uint64, core, home int, write, l3Hit bool) Transaction {
	var tx Transaction
	s.AccessInto(&tx, addr, core, home, write, l3Hit)
	return tx
}

// AccessInto is Access writing into a caller-owned Transaction (see
// Directory.AccessInto): reset-and-reuse semantics, identical sequence.
func (s *Snoop) AccessInto(tx *Transaction, addr uint64, core, home int, write, l3Hit bool) {
	l := s.get(addr)
	tx.reset()
	// Snoop broadcast: the request itself reaches every cache.
	tx.Legs = append(tx.Legs, Leg{From: core, To: -1, Kind: Request})
	supplier := home
	switch l.state {
	case Modified, Exclusive:
		if l.owner != core {
			supplier = l.owner
			tx.CacheToCache = true
		} else {
			tx.L3Access = true
		}
	case Shared:
		// Any sharer or the L3 supplies; L3 is the common case.
		tx.L3Access = true
	case Invalid:
		tx.L3Access = true
		tx.DRAM = !l3Hit
	}
	tx.Legs = append(tx.Legs, Leg{From: supplier, To: core, Kind: Data})
	// State update: the broadcast invalidates on writes — no extra
	// messages needed (that is the snooping advantage).
	if write {
		l.state = Modified
		l.owner = core
		l.sharers.clear()
	} else {
		switch l.state {
		case Invalid:
			l.state = Exclusive
			l.owner = core
		case Exclusive, Modified:
			if l.owner != core {
				l.sharers.set(l.owner)
				l.sharers.set(core)
				l.state = Shared
				l.owner = -1
			}
		case Shared:
			l.sharers.set(core)
		}
	}
}

// State reports the tracked state of addr.
func (s *Snoop) State(addr uint64) (State, int, int) {
	l, ok := s.lines[addr]
	if !ok {
		return Invalid, -1, 0
	}
	return l.state, l.owner, l.sharers.count()
}

// CheckInvariants verifies the MESI invariants for the snooping engine.
func (s *Snoop) CheckInvariants() error {
	d := Directory{lines: s.lines}
	return d.CheckInvariants()
}
