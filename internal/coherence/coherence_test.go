package coherence

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDirectoryColdReadIsExclusive(t *testing.T) {
	d := NewDirectory(0)
	tx := d.Access(0x40, 3, 10, false, true)
	st, owner, sharers := d.State(0x40)
	if st != Exclusive || owner != 3 || sharers != 0 {
		t.Errorf("after cold read: %v owner %d sharers %d, want E/3/0", st, owner, sharers)
	}
	if tx.DRAM {
		t.Error("L3 hit should not touch DRAM")
	}
	if !tx.L3Access {
		t.Error("cold read must access the L3")
	}
	// Two legs: request to home, data back.
	if len(tx.Legs) != 2 || tx.Legs[0].Kind != Request || tx.Legs[1].Kind != Data {
		t.Errorf("cold read legs = %+v", tx.Legs)
	}
}

func TestDirectoryColdWriteIsModified(t *testing.T) {
	d := NewDirectory(0)
	d.Access(0x80, 5, 9, true, false)
	st, owner, _ := d.State(0x80)
	if st != Modified || owner != 5 {
		t.Errorf("after cold write: %v owner %d, want M/5", st, owner)
	}
}

func TestDirectoryThreeHopForward(t *testing.T) {
	d := NewDirectory(0)
	d.Access(0x40, 1, 10, true, true) // core 1 owns M
	tx := d.Access(0x40, 2, 10, false, true)
	if !tx.CacheToCache {
		t.Error("read of a remote-M line must be cache-to-cache")
	}
	// 3-hop: request (2→10), forward (10→1), data (1→2).
	if len(tx.Legs) != 3 {
		t.Fatalf("legs = %+v, want 3-hop", tx.Legs)
	}
	if tx.Legs[1].Kind != Forward || tx.Legs[1].To != 1 {
		t.Errorf("forward leg wrong: %+v", tx.Legs[1])
	}
	if tx.Legs[2].From != 1 || tx.Legs[2].To != 2 || tx.Legs[2].Kind != Data {
		t.Errorf("data leg wrong: %+v", tx.Legs[2])
	}
	st, _, sharers := d.State(0x40)
	if st != Shared || sharers != 2 {
		t.Errorf("after downgrade: %v with %d sharers, want S/2", st, sharers)
	}
}

func TestDirectoryWriteInvalidatesSharers(t *testing.T) {
	d := NewDirectory(0)
	d.Access(0x40, 1, 10, false, true)
	d.Access(0x40, 2, 10, false, true)
	tx := d.Access(0x40, 3, 10, true, true)
	// Both sharers get individual invalidations — the directory
	// fan-out a snooping broadcast avoids.
	if len(tx.Invalidations) != 2 {
		t.Errorf("write to a 2-sharer line produced %d invalidations, want 2", len(tx.Invalidations))
	}
	for _, leg := range tx.Invalidations {
		if leg.Kind != Invalidate || leg.From != 10 {
			t.Errorf("bad invalidation leg %+v", leg)
		}
	}
	st, owner, sharers := d.State(0x40)
	if st != Modified || owner != 3 || sharers != 0 {
		t.Errorf("after write: %v/%d/%d, want M/3/0", st, owner, sharers)
	}
}

func TestDirectoryInvariantsUnderRandomTraffic(t *testing.T) {
	d := NewDirectory(4096)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(512)) * 64
		core := rng.Intn(64)
		write := rng.Float64() < 0.3
		d.Access(addr, core, int(addr/64)%64, write, rng.Float64() < 0.7)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnoopBroadcastShape(t *testing.T) {
	s := NewSnoop(0)
	tx := s.Access(0x40, 7, 12, false, true)
	if len(tx.Legs) != 2 {
		t.Fatalf("snoop legs = %+v", tx.Legs)
	}
	if tx.Legs[0].To != -1 || tx.Legs[0].Kind != Request {
		t.Errorf("first leg must be a broadcast request: %+v", tx.Legs[0])
	}
	if tx.Legs[1].Kind != Data || tx.Legs[1].To != 7 {
		t.Errorf("second leg must be directed data: %+v", tx.Legs[1])
	}
}

func TestSnoopCacheToCacheSupply(t *testing.T) {
	s := NewSnoop(0)
	s.Access(0x40, 1, 12, true, true) // core 1 in M
	tx := s.Access(0x40, 2, 12, false, true)
	if !tx.CacheToCache {
		t.Error("snoop on remote-M line must be cache-to-cache")
	}
	if tx.Legs[1].From != 1 {
		t.Errorf("data should come from the owner, got %+v", tx.Legs[1])
	}
	// No extra invalidation messages on writes — the broadcast itself
	// invalidates (the snooping advantage for barrier-heavy code).
	tx = s.Access(0x40, 3, 12, true, true)
	for _, leg := range tx.Legs {
		if leg.Kind == Invalidate || leg.Kind == Forward {
			t.Errorf("snoop write produced %v leg — broadcast should cover it", leg.Kind)
		}
	}
}

func TestSnoopWriteFewerLegsThanDirectory(t *testing.T) {
	// The structural reason snooping wins on shared data: a write to a
	// widely-shared line is 2 legs on the bus vs ≥3 with a directory.
	d := NewDirectory(0)
	s := NewSnoop(0)
	for core := 0; core < 8; core++ {
		d.Access(0x100, core, 4, false, true)
		s.Access(0x100, core, 4, false, true)
	}
	dtx := d.Access(0x100, 9, 4, true, true)
	stx := s.Access(0x100, 9, 4, true, true)
	dMsgs := len(dtx.Legs) + len(dtx.Invalidations)
	sMsgs := len(stx.Legs) + len(stx.Invalidations)
	if sMsgs >= dMsgs {
		t.Errorf("snoop write messages %d not fewer than directory %d", sMsgs, dMsgs)
	}
	if len(stx.Invalidations) != 0 {
		t.Error("snooping must not emit explicit invalidations")
	}
}

func TestSnoopInvariantsUnderRandomTraffic(t *testing.T) {
	s := NewSnoop(4096)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(512)) * 64
		s.Access(addr, rng.Intn(64), int(addr/64)%64, rng.Float64() < 0.3, rng.Float64() < 0.7)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteMakesExclusiveOwnerProperty(t *testing.T) {
	// Property: after any write by core c, the line is Modified and
	// owned by c with no sharers — in both protocols.
	f := func(seed int64, coreRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDirectory(0)
		s := NewSnoop(0)
		// Random warm-up traffic.
		for i := 0; i < 50; i++ {
			addr := uint64(rng.Intn(8)) * 64
			d.Access(addr, rng.Intn(16), 3, rng.Float64() < 0.5, true)
			s.Access(addr, rng.Intn(16), 3, rng.Float64() < 0.5, true)
		}
		c := int(coreRaw) % 16
		d.Access(0x40, c, 3, true, true)
		s.Access(0x40, c, 3, true, true)
		ds, downer, dsh := d.State(0x40)
		ss, sowner, ssh := s.State(0x40)
		return ds == Modified && downer == c && dsh == 0 &&
			ss == Modified && sowner == c && ssh == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCapacityEviction(t *testing.T) {
	d := NewDirectory(16)
	for i := 0; i < 100; i++ {
		d.Access(uint64(i)*64, i%8, 3, false, true)
	}
	if len(d.lines) > 16 {
		t.Errorf("directory grew to %d lines, cap 16", len(d.lines))
	}
	if err := d.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if st.String() != want {
			t.Errorf("%d.String() = %q want %q", int(st), st.String(), want)
		}
	}
	if State(42).String() == "" {
		t.Error("unknown state should stringify")
	}
}
