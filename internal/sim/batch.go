package sim

import (
	"fmt"

	"cryowire/internal/workload"
)

// LaneSpec names one simulation to run: the design × workload × config
// triple a lane is built from. It is the unit the BatchRunner dedups
// and batches over.
type LaneSpec struct {
	Design  Design
	Profile workload.Profile
	Config  Config
}

// LaneError is the typed per-lane failure of a batched run: it names
// which lane (position in the submitted spec slice) failed and on what
// design × workload, and wraps the underlying cause so errors.Is/As see
// through it (context cancellation, *StallError, validation errors).
// One failed lane never aborts its batch — the other lanes run to
// completion and return their own results.
type LaneError struct {
	// Lane is the index of the failed spec in the slice the caller
	// submitted (to NewBatch or BatchRunner.RunCtx).
	Lane int
	// Design and Workload echo the failed spec.
	Design   string
	Workload string
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *LaneError) Error() string {
	return fmt.Sprintf("sim: lane %d (%s/%s): %v", e.Lane, e.Design, e.Workload, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *LaneError) Unwrap() error { return e.Err }

// batchStride is how many cycles a lane advances per lockstep turn.
// Lanes are fully independent, so the stride is invisible in the
// results — it only sets the granularity at which the shared loop
// rotates between lanes, long enough that each lane's pools and wheel
// stay hot in cache across its turn, short enough that the lanes'
// working sets time-share the cache rather than evicting each other
// wholesale.
const batchStride = 64

// Batch drives N lanes through one shared cycle loop in lockstep. The
// lanes are stored in structure-of-arrays form ([]lane, []runControl,
// []Result, []error) so the loop walks flat slices. Each lane owns its
// RNG, timing wheel, pools and networks — nothing is shared — so every
// lane's Result is bit-identical to the same spec run alone through
// System.Run, regardless of batch size or membership.
type Batch struct {
	lanes   []lane
	rcs     []runControl
	results []Result
	errs    []error
}

// NewBatch builds one lane per spec. A spec that fails validation gets
// a *LaneError recorded in its slot instead of failing the batch; the
// remaining lanes are unaffected.
func NewBatch(specs []LaneSpec) *Batch {
	b := &Batch{
		lanes:   make([]lane, len(specs)),
		rcs:     make([]runControl, len(specs)),
		results: make([]Result, len(specs)),
		errs:    make([]error, len(specs)),
	}
	for i, sp := range specs {
		if err := b.lanes[i].init(sp.Design, sp.Profile, sp.Config); err != nil {
			b.errs[i] = &LaneError{Lane: i, Design: sp.Design.Name, Workload: sp.Profile.Name, Err: err}
		}
	}
	return b
}

// Run advances all lanes to completion and returns their results and
// errors, index-aligned with the specs. A lane that fails (watchdog
// stall, context cancellation) stops advancing and yields a *LaneError
// in its slot; the other lanes keep running. Run blocks until every
// lane has finished or failed.
func (b *Batch) Run() ([]Result, []error) {
	live := 0
	for i := range b.lanes {
		if b.errs[i] != nil {
			continue
		}
		b.lanes[i].beginRun(&b.rcs[i])
		live++
	}
	bstats.batches.Add(1)
	bstats.lanes.Add(uint64(live))
	bstats.activeBatches.Add(1)
	bstats.activeLanes.Add(int64(live))
	defer bstats.activeBatches.Add(-1)

	for live > 0 {
		for i := range b.lanes {
			rc := &b.rcs[i]
			if b.errs[i] != nil || rc.finished {
				continue
			}
			ln := &b.lanes[i]
			for k := 0; k < batchStride && !rc.finished && rc.err == nil; k++ {
				ln.runCycle(rc)
			}
			if rc.err != nil {
				b.errs[i] = &LaneError{Lane: i, Design: ln.design.Name, Workload: ln.prof.Name, Err: rc.err}
				bstats.laneFailures.Add(1)
				live--
				bstats.activeLanes.Add(-1)
				continue
			}
			if rc.finished {
				b.results[i] = ln.buildResult(rc)
				live--
				bstats.activeLanes.Add(-1)
			}
		}
	}
	return b.results, b.errs
}
