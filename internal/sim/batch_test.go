package sim

import (
	"context"
	"errors"
	"testing"

	"cryowire/internal/workload"
)

// batchTestCfg keeps the batch property tests fast: results only need
// to be compared, not statistically meaningful.
func batchTestCfg() Config { return Config{WarmupCycles: 600, MeasureCycles: 2000, Seed: 1} }

// batchTestSpecs returns a mixed grid of specs: different designs,
// workloads and seeds, including snooping and directory protocols.
func batchTestSpecs(t *testing.T) []LaneSpec {
	t.Helper()
	f := NewFactory()
	designs := []Design{f.Baseline300(), f.CHPMesh(), f.CHPCryoBus()}
	var specs []LaneSpec
	for wi, wl := range []string{"ferret", "streamcluster"} {
		p, err := workload.ByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		for di, d := range designs {
			cfg := batchTestCfg()
			cfg.Seed = int64(1 + wi*len(designs) + di)
			specs = append(specs, LaneSpec{Design: d, Profile: p, Config: cfg})
		}
	}
	return specs
}

// standalone runs one spec through the classic single-run engine.
func standalone(t *testing.T, sp LaneSpec) Result {
	t.Helper()
	s, err := New(sp.Design, sp.Profile, sp.Config)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestBatchOfOneMatchesRun is the batch-of-one identity guarantee: a
// single-lane batch produces exactly the bytes System.Run produces.
// Result contains only comparable fields, so == is byte equality.
func TestBatchOfOneMatchesRun(t *testing.T) {
	for _, sp := range batchTestSpecs(t) {
		want := standalone(t, sp)
		res, errs := NewBatch([]LaneSpec{sp}).Run()
		if errs[0] != nil {
			t.Fatalf("%s/%s: %v", sp.Design.Name, sp.Profile.Name, errs[0])
		}
		if res[0] != want {
			t.Errorf("%s/%s: batch-of-one diverged:\n got %+v\nwant %+v",
				sp.Design.Name, sp.Profile.Name, res[0], want)
		}
	}
}

// TestBatchLaneIsolation is the shuffled-batch property test: permuting
// batch membership and batch size never changes any lane's Result.
// Each spec's reference comes from a standalone run; every permutation
// × batch size must reproduce it bit-for-bit.
func TestBatchLaneIsolation(t *testing.T) {
	specs := batchTestSpecs(t)
	want := make([]Result, len(specs))
	for i, sp := range specs {
		want[i] = standalone(t, sp)
	}
	perms := [][]int{
		{0, 1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1, 0},
		{3, 0, 5, 1, 4, 2},
		{2, 5, 0, 4, 1, 3},
	}
	for _, lanes := range []int{1, 2, 3, 5, 8} {
		r := &BatchRunner{Lanes: lanes}
		for pi, perm := range perms {
			shuffled := make([]LaneSpec, len(perm))
			for k, i := range perm {
				shuffled[k] = specs[i]
			}
			res, errs := r.RunCtx(context.Background(), shuffled)
			for k, i := range perm {
				if errs[k] != nil {
					t.Fatalf("lanes=%d perm=%d lane %d: %v", lanes, pi, k, errs[k])
				}
				if res[k] != want[i] {
					t.Errorf("lanes=%d perm=%d: spec %d diverged inside batch:\n got %+v\nwant %+v",
						lanes, pi, i, res[k], want[i])
				}
			}
		}
	}
}

// TestBatchRunnerDedup checks that identical specs are simulated once
// and still all receive the right result, and that a ResultCache
// carries completions across calls.
func TestBatchRunnerDedup(t *testing.T) {
	specs := batchTestSpecs(t)
	dup := append(append([]LaneSpec{}, specs...), specs[0], specs[3])
	want := make([]Result, len(specs))
	for i, sp := range specs {
		want[i] = standalone(t, sp)
	}
	cache := NewResultCache()
	r := &BatchRunner{Cache: cache}
	res, errs := r.RunCtx(context.Background(), dup)
	for k := range dup {
		if errs[k] != nil {
			t.Fatalf("lane %d: %v", k, errs[k])
		}
	}
	for i := range specs {
		if res[i] != want[i] {
			t.Errorf("spec %d diverged", i)
		}
	}
	if res[len(specs)] != want[0] || res[len(specs)+1] != want[3] {
		t.Error("in-call duplicate got wrong result")
	}
	if got := len(cache.m); got != len(specs) {
		t.Errorf("cache holds %d entries, want %d (duplicates must not re-simulate)", got, len(specs))
	}
	// Second call: everything served from the cache.
	res2, errs2 := r.RunCtx(context.Background(), specs)
	for i := range specs {
		if errs2[i] != nil {
			t.Fatalf("cached lane %d: %v", i, errs2[i])
		}
		if res2[i] != want[i] {
			t.Errorf("cached spec %d diverged", i)
		}
	}
}

// TestBatchLaneErrorIsolation mixes a failing lane (invalid design) and
// a pre-canceled lane into a healthy batch: the healthy lanes must
// still match their standalone references, and the failures must be
// typed *LaneErrors that unwrap to their causes.
func TestBatchLaneErrorIsolation(t *testing.T) {
	specs := batchTestSpecs(t)[:3]
	want := make([]Result, len(specs))
	for i, sp := range specs {
		want[i] = standalone(t, sp)
	}
	bad := specs[0]
	bad.Design.Cores = 1 // fails Validate
	canceledCtx, cancel := context.WithCancel(context.Background())
	cancel()
	stuck := specs[1]
	stuck.Config.Seed = 999 // distinct fingerprint: must not dedup against specs[1]
	stuck.Config = stuck.Config.WithContext(canceledCtx)

	mixed := []LaneSpec{specs[0], bad, specs[1], stuck, specs[2]}
	r := &BatchRunner{Lanes: len(mixed)}
	res, errs := r.RunCtx(context.Background(), mixed)

	for k, i := range map[int]int{0: 0, 2: 1, 4: 2} {
		if errs[k] != nil {
			t.Fatalf("healthy lane %d: %v", k, errs[k])
		}
		if res[k] != want[i] {
			t.Errorf("healthy lane %d diverged from standalone reference", k)
		}
	}
	var le *LaneError
	if !errors.As(errs[1], &le) {
		t.Fatalf("invalid-design lane error %T, want *LaneError", errs[1])
	}
	if le.Lane != 1 {
		t.Errorf("LaneError.Lane = %d, want 1", le.Lane)
	}
	if !errors.As(errs[3], &le) || !errors.Is(errs[3], context.Canceled) {
		t.Errorf("canceled lane error = %v, want *LaneError wrapping context.Canceled", errs[3])
	}
	if le.Lane != 3 {
		t.Errorf("LaneError.Lane = %d, want 3", le.Lane)
	}
}

// TestBatchedStepAllocs pins the allocation-free steady state of the
// batched cycle loop: once warmed, advancing lanes through runCycle
// allocates nothing per turn.
func TestBatchedStepAllocs(t *testing.T) {
	specs := batchTestSpecs(t)[:3]
	for i := range specs {
		specs[i].Config = Config{WarmupCycles: 1 << 30, MeasureCycles: 1 << 30, Seed: specs[i].Config.Seed,
			Watchdog: Watchdog{Disabled: true}}
	}
	b := NewBatch(specs)
	for i := range b.lanes {
		if b.errs[i] != nil {
			t.Fatal(b.errs[i])
		}
		b.lanes[i].beginRun(&b.rcs[i])
	}
	turn := func() {
		for i := range b.lanes {
			for k := 0; k < batchStride; k++ {
				b.lanes[i].runCycle(&b.rcs[i])
			}
		}
	}
	// Warm the pools well past the startup transient.
	for n := 0; n < 256; n++ {
		turn()
	}
	// The single-run engine amortizes to <0.1 allocs per cycle (pool
	// high-water trickle; BenchmarkSystemStep reports 0 allocs/op,
	// ~10 B/op). The batched path must stay in that regime: a bound of
	// 0.25 allocs per lane-cycle tolerates the trickle while failing
	// loudly on any new per-cycle allocation (which would be ≥ 1.0).
	laneCycles := float64(len(b.lanes) * batchStride)
	avg := testing.AllocsPerRun(500, turn) / laneCycles
	if avg > 0.25 {
		t.Errorf("batched stepping allocates %.3f objects/lane-cycle, want ~0", avg)
	}
}
