package sim

import "fmt"

// Watchdog configures the deadlock/livelock detector that guards
// System.Run. The zero value enables the detector with defaults; set
// Disabled to run unguarded.
type Watchdog struct {
	// Disabled turns the detector off.
	Disabled bool
	// CheckInterval is how often (in NoC cycles) the detector samples
	// the system (default 1000).
	CheckInterval int
	// NoProgressCycles is the window with neither a committed
	// instruction nor a completed transaction after which the run is
	// declared stalled (default 4000).
	NoProgressCycles int
	// MaxPacketAge is the in-flight packet age ceiling in cycles
	// (default 25000 — far above any healthy delivery, including a
	// fully backed-off retransmit chain).
	MaxPacketAge int64
}

// Watchdog defaults.
const (
	defaultCheckInterval    = 1000
	defaultNoProgressCycles = 4000
	defaultMaxPacketAge     = 25000
)

// withDefaults fills zero fields.
func (w Watchdog) withDefaults() Watchdog {
	if w.CheckInterval <= 0 {
		w.CheckInterval = defaultCheckInterval
	}
	if w.NoProgressCycles <= 0 {
		w.NoProgressCycles = defaultNoProgressCycles
	}
	if w.MaxPacketAge <= 0 {
		w.MaxPacketAge = defaultMaxPacketAge
	}
	return w
}

// StallError is the watchdog's cycle-stamped diagnosis of a deadlocked
// or livelocked simulation.
type StallError struct {
	Design   string
	Workload string
	// Cycle is when the detector fired.
	Cycle int64
	// Reason is the tripped check, human-readable.
	Reason string
	// OldestPacketAge is the age of the oldest in-flight packet at the
	// time of the diagnosis.
	OldestPacketAge int64
	// InflightPackets and OutstandingTxns size the stuck state.
	InflightPackets int
	OutstandingTxns int
}

// Error implements error.
func (e *StallError) Error() string {
	return fmt.Sprintf("sim: %s/%s stalled at cycle %d: %s (%d packets in flight, oldest %d cycles old, %d outstanding txns)",
		e.Design, e.Workload, e.Cycle, e.Reason, e.InflightPackets, e.OldestPacketAge, e.OutstandingTxns)
}

// watchdogState is the detector's sampling memory.
type watchdogState struct {
	cfg Watchdog
	// lastProgressAt is the last sample cycle at which committed
	// instructions or completed transactions had advanced.
	lastProgressAt int64
	lastCommitted  float64
	lastCompleted  int64
}

// stallError assembles the diagnosis. In-flight packets live in the
// slot table (free slots have a nil pkt), so the scan skips holes.
func (s *lane) stallError(reason string) *StallError {
	oldest := int64(0)
	for i := range s.slots {
		p := s.slots[i].pkt
		if p == nil {
			continue
		}
		if age := s.now - p.InjectedAt; age > oldest {
			oldest = age
		}
	}
	outstanding := 0
	for i := range s.cores {
		outstanding += len(s.cores[i].txns)
	}
	return &StallError{
		Design:          s.design.Name,
		Workload:        s.prof.Name,
		Cycle:           s.now,
		Reason:          reason,
		OldestPacketAge: oldest,
		InflightPackets: s.inflightN,
		OutstandingTxns: outstanding,
	}
}

// checkWatchdog runs the detector's three checks. Call every
// CheckInterval cycles; returns nil while the system is live.
func (s *lane) checkWatchdog(w *watchdogState) *StallError {
	committed := s.totalCommitted()
	// Progress: either commits or transaction completions count —
	// during a barrier storm no core commits, but transactions keep
	// completing, which is forward progress.
	if committed > w.lastCommitted || s.completed > w.lastCompleted {
		w.lastCommitted = committed
		w.lastCompleted = s.completed
		w.lastProgressAt = s.now
	} else if s.now-w.lastProgressAt >= int64(w.cfg.NoProgressCycles) {
		return s.stallError(fmt.Sprintf("no instruction commits or transaction completions for %d cycles", s.now-w.lastProgressAt))
	}
	// Packet age: a delivery taking this long means the message is
	// circling or wedged, not merely queued. The watchdog only samples
	// every CheckInterval cycles, so the slot-table scan stays far off
	// the cycle loop's profile.
	for i := range s.slots {
		p := s.slots[i].pkt
		if p == nil {
			continue
		}
		if age := s.now - p.InjectedAt; age > w.cfg.MaxPacketAge {
			return s.stallError(fmt.Sprintf("in-flight packet %d aged %d cycles (ceiling %d)", p.ID, age, w.cfg.MaxPacketAge))
		}
	}
	// Credit leak: every outstanding token must be backed by a live
	// transaction, or completions have been lost and the MLP window
	// will wedge shut.
	for i := range s.cores {
		c := &s.cores[i]
		if c.outstanding != len(c.txns) {
			return s.stallError(fmt.Sprintf("core %d leaked credits: %d outstanding vs %d live transactions", i, c.outstanding, len(c.txns)))
		}
	}
	return nil
}
