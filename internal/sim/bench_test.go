package sim

import (
	"testing"

	"cryowire/internal/workload"
)

// benchSystem builds the flagship design on the given net kind, warmed
// past the cold-start transient so the benchmark loop measures the
// steady-state cycle path.
func benchSystem(b testing.TB, mk func(*Factory) Design, wl string) *System {
	b.Helper()
	p, err := workload.ByName(wl)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(mk(NewFactory()), p, Config{WarmupCycles: 1, MeasureCycles: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		s.Step()
	}
	return s
}

// BenchmarkSystemStep is the tentpole hot path: one call per NoC cycle,
// tens of thousands per evaluation. The timing wheel, intrusive
// inflight refs and the txn/packet/event pools all land here.
func BenchmarkSystemStep(b *testing.B) {
	s := benchSystem(b, func(f *Factory) Design { return f.CHPMesh() }, "ferret")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkBusStep is the same cycle path on the snooping CryoBus
// (split request/data buses, broadcast delivery).
func BenchmarkBusStep(b *testing.B) {
	s := benchSystem(b, func(f *Factory) Design { return f.CryoSPCryoBus() }, "streamcluster")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
